#include "skypeer/sim/fault_plan.h"

namespace skypeer::sim {

double FaultPlan::DropProbFor(int src, int dst) const {
  const auto it = link_drop_prob.find({src, dst});
  return it != link_drop_prob.end() ? it->second : drop_prob;
}

bool FaultPlan::LinkDownAt(int src, int dst, double t) const {
  const auto it = link_down.find({src, dst});
  if (it == link_down.end()) {
    return false;
  }
  for (const DownInterval& interval : it->second) {
    if (interval.Contains(t)) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::NodeDownAt(int node, double t) const {
  const auto it = node_down.find(node);
  if (it == node_down.end()) {
    return false;
  }
  for (const DownInterval& interval : it->second) {
    if (interval.Contains(t)) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::HasFaults() const {
  return drop_prob > 0.0 || delay_jitter > 0.0 || !link_drop_prob.empty() ||
         !link_down.empty() || !node_down.empty();
}

void FaultPlan::CrashNode(int node, double begin, double end) {
  node_down[node].push_back(DownInterval{begin, end});
}

void FaultPlan::TakeLinkDown(int a, int b, double begin, double end) {
  link_down[{a, b}].push_back(DownInterval{begin, end});
  link_down[{b, a}].push_back(DownInterval{begin, end});
}

void FaultPlan::SetLinkDropProb(int a, int b, double prob) {
  link_drop_prob[{a, b}] = prob;
  link_drop_prob[{b, a}] = prob;
}

}  // namespace skypeer::sim
