#include "skypeer/sim/churn_plan.h"

#include <algorithm>
#include <cmath>

#include "skypeer/common/rng.h"

namespace skypeer::sim {

const char* ChurnKindName(ChurnKind kind) {
  switch (kind) {
    case ChurnKind::kJoin:
      return "join";
    case ChurnKind::kRemove:
      return "remove";
    case ChurnKind::kReplace:
      return "replace";
  }
  return "?";
}

void ChurnPlan::AddEvent(ChurnEvent event) {
  // Insert before the first strictly later event so equal (slot, time)
  // pairs keep insertion order.
  auto it = std::upper_bound(
      events.begin(), events.end(), event,
      [](const ChurnEvent& a, const ChurnEvent& b) {
        if (a.slot != b.slot) {
          return a.slot < b.slot;
        }
        return a.time < b.time;
      });
  events.insert(it, event);
}

int ChurnPlan::MaxSlot() const {
  return events.empty() ? -1 : events.back().slot;
}

std::pair<size_t, size_t> ChurnPlan::SlotRange(int s) const {
  const auto lower = std::lower_bound(
      events.begin(), events.end(), s,
      [](const ChurnEvent& e, int slot) { return e.slot < slot; });
  const auto upper = std::upper_bound(
      events.begin(), events.end(), s,
      [](int slot, const ChurnEvent& e) { return slot < e.slot; });
  return {static_cast<size_t>(lower - events.begin()),
          static_cast<size_t>(upper - events.begin())};
}

ChurnPlan ChurnPlan::Seeded(int num_events, double rate, uint64_t seed,
                            int num_slots, int num_super_peers) {
  ChurnPlan plan;
  if (num_events <= 0 || num_slots <= 0 || num_super_peers <= 0) {
    return plan;
  }
  Rng rng(seed);
  static const ChurnKind kCycle[] = {ChurnKind::kJoin, ChurnKind::kRemove,
                                     ChurnKind::kReplace};
  for (int i = 0; i < num_events; ++i) {
    ChurnEvent event;
    event.slot = static_cast<int>(rng.UniformInt(0, num_slots - 1));
    // Exponential in-query time with mean `rate` seconds; 1 - Uniform()
    // is in (0, 1], so the log argument never hits zero.
    event.time = -rate * std::log(1.0 - rng.Uniform());
    event.kind = kCycle[i % 3];
    event.node = static_cast<int>(rng.UniformInt(0, num_super_peers - 1));
    event.seed = rng.Fork();
    plan.AddEvent(event);
  }
  return plan;
}

}  // namespace skypeer::sim
