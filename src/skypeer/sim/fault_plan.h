#ifndef SKYPEER_SIM_FAULT_PLAN_H_
#define SKYPEER_SIM_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

namespace skypeer::sim {

/// Half-open interval [begin, end) of virtual time during which a link or
/// a node is unavailable.
struct DownInterval {
  double begin = 0.0;
  double end = std::numeric_limits<double>::infinity();

  bool Contains(double t) const { return t >= begin && t < end; }
};

/// \brief Declarative, seeded fault schedule for the simulator.
///
/// All faults are pure functions of the virtual clock plus one dedicated
/// RNG stream (owned by the simulator and reseeded from `seed` on every
/// `Reset`), so a plan reproduces the exact same drop/jitter/crash
/// pattern on every run of the same event sequence — faults never break
/// the simulator's bit-reproducibility, they are part of it.
///
/// Semantics:
///  * `drop_prob` / `link_drop_prob`: each transmitted message is lost
///    independently with this probability. The link occupancy and wire
///    statistics still account for the transmission (the loss happens in
///    flight, not at the sender).
///  * `delay_jitter`: extra propagation delay, uniform in [0, jitter),
///    added per message. Jitter may reorder deliveries on a link —
///    protocols must tolerate reordering.
///  * `link_down`: messages whose transmission starts inside a down
///    interval are lost (keyed per direction; `TakeLinkDown` registers
///    both).
///  * `node_down`: deliveries (messages and timers) to a node inside a
///    down interval are silently discarded; since a node only acts when
///    handling a delivery, a crashed node neither sends nor computes.
struct FaultPlan {
  /// Seed of the dedicated fault RNG stream.
  uint64_t seed = 0;
  /// Global per-message loss probability in [0, 1).
  double drop_prob = 0.0;
  /// Upper bound of the uniform extra propagation delay, in seconds.
  double delay_jitter = 0.0;
  /// Per-direction loss probability overriding `drop_prob`.
  std::map<std::pair<int, int>, double> link_drop_prob;
  /// Per-direction outage intervals.
  std::map<std::pair<int, int>, std::vector<DownInterval>> link_down;
  /// Per-node crash/recover intervals.
  std::map<int, std::vector<DownInterval>> node_down;

  /// Loss probability of direction (src, dst).
  double DropProbFor(int src, int dst) const;

  bool LinkDownAt(int src, int dst, double t) const;
  bool NodeDownAt(int node, double t) const;

  /// True when the plan can affect any message at all.
  bool HasFaults() const;

  // --- builder helpers --------------------------------------------------

  /// Crashes `node` over [begin, end); the default end never recovers.
  void CrashNode(int node, double begin = 0.0,
                 double end = std::numeric_limits<double>::infinity());

  /// Takes both directions of link (a, b) down over [begin, end).
  void TakeLinkDown(int a, int b, double begin, double end);

  /// Sets the loss probability of both directions of link (a, b).
  void SetLinkDropProb(int a, int b, double prob);
};

}  // namespace skypeer::sim

#endif  // SKYPEER_SIM_FAULT_PLAN_H_
