#ifndef SKYPEER_SIM_SIMULATOR_H_
#define SKYPEER_SIM_SIMULATOR_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "skypeer/common/macros.h"
#include "skypeer/common/rng.h"
#include "skypeer/sim/fault_plan.h"
#include "skypeer/sim/message.h"

namespace skypeer::sim {

/// A participant in the simulation. Nodes are registered with the
/// simulator and receive messages through `HandleMessage`, inside which
/// they may charge CPU time and send further messages.
class Node {
 public:
  virtual ~Node() = default;

  /// Invoked when `message` is delivered to this node. `simulator` is the
  /// owning simulator; use it to reply, forward, or charge CPU cost.
  virtual void HandleMessage(class Simulator* simulator,
                             const Message& message) = 0;
};

/// Network parameters of a point-to-point connection.
struct LinkParams {
  /// Bytes per second; infinity disables transfer delay. The paper's
  /// evaluation assumes 4 KB/s per connection (§6).
  double bandwidth = 4096.0;
  /// Fixed propagation delay in seconds, added on top of transfer time.
  double latency = 0.0;
};

inline constexpr double kInfiniteBandwidth =
    std::numeric_limits<double>::infinity();

/// Why a budgeted `Run` returned.
enum class RunStatus {
  kCompleted,            ///< The event queue drained.
  kEventBudgetExceeded,  ///< `max_events` deliveries were processed.
  kTimeBudgetExceeded,   ///< The next event lies past `max_virtual_time`.
};

/// Safety valve for `Run`: protocols with retransmission can in principle
/// storm; a budget turns a livelock into a reported status. Zero /
/// infinity (the defaults) mean unlimited.
struct RunBudget {
  uint64_t max_events = 0;
  double max_virtual_time = std::numeric_limits<double>::infinity();
};

/// \brief Deterministic discrete-event simulator of a message-passing
/// network with per-node serial CPUs and per-direction FIFO links.
///
/// Model:
///  * Each node has a virtual clock (`busy_until`). A delivered message
///    begins processing at `max(arrival, busy_until)`; `ChargeCpu` inside
///    the handler advances the clock, serializing all work on the node.
///  * Each link direction is FIFO with finite bandwidth: a message sent at
///    (virtual) time t starts transmitting at `max(t, link_busy)`,
///    occupies the link for `bytes / bandwidth`, and arrives after an
///    additional `latency`.
///  * Events with equal timestamps are processed in send order (a
///    monotonic sequence number), making runs bit-for-bit reproducible.
///  * An optional `FaultPlan` injects message loss, delay jitter, link
///    outages and node crashes, all driven by the virtual clock and a
///    dedicated RNG stream reseeded from the plan on every `Reset` —
///    faulty runs are exactly as reproducible as fault-free ones.
///  * Nodes may schedule timers; timer events travel through the same
///    ordered queue as messages (and are suppressed while the target node
///    is crashed), so timer-driven protocols stay deterministic.
///
/// The same network can be re-run under different link parameters (e.g.
/// infinite bandwidth to isolate the computational critical path) via
/// `Reset` + `SetAllLinkParams`.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a node (not owned). Returns its id.
  int AddNode(Node* node);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Creates the bidirectional connection (a, b). Each direction is an
  /// independent FIFO channel with the given parameters.
  void Connect(int a, int b, const LinkParams& params = {});

  bool AreConnected(int a, int b) const;

  /// Overrides the parameters of every existing link.
  void SetAllLinkParams(const LinkParams& params);

  /// Installs a fault schedule; takes effect for subsequent sends and
  /// deliveries. The dedicated fault RNG is seeded from `plan.seed` now
  /// and reseeded on every `Reset`, so each run of the same event
  /// sequence sees the same fault pattern.
  void SetFaultPlan(FaultPlan plan);

  /// Removes the fault schedule; the simulator becomes fault-free again.
  void ClearFaultPlan();

  /// The installed plan, or nullptr.
  const FaultPlan* fault_plan() const {
    return fault_plan_.has_value() ? &*fault_plan_ : nullptr;
  }

  /// Sends a message from node `src` (the currently handling node) to the
  /// adjacent node `dst`. Departure time is `src`'s current virtual clock.
  void Send(int src, int dst, size_t bytes,
            std::shared_ptr<const MessageBody> body);

  /// Injects an external message delivered to `dst` at time
  /// `max(now, dst clock)`; used to start protocols. Carries no wire cost.
  void Post(int dst, std::shared_ptr<const MessageBody> body);

  /// Schedules `body` for delivery to `node` after `delay` seconds of
  /// virtual time (from `max(now, node clock)`). The timer travels
  /// through the ordered event queue like any message (src == dst ==
  /// `node`, zero wire cost) and is suppressed if the node is crashed at
  /// fire time. Returns a handle for `CancelTimer`.
  uint64_t ScheduleTimer(int node, double delay,
                         std::shared_ptr<const MessageBody> body);

  /// Cancels a scheduled timer; the event is discarded when it surfaces.
  /// Cancelling an already-fired or unknown timer is a no-op.
  void CancelTimer(uint64_t timer_id);

  /// Advances the virtual clock of the currently handling node by
  /// `seconds` of CPU work. Must only be called from inside a handler.
  void ChargeCpu(double seconds);

  /// Processes events until the queue drains.
  void Run() { Run(RunBudget{}); }

  /// Processes events until the queue drains or the budget is exhausted.
  /// On a budget stop the remaining events stay queued; calling again
  /// resumes where the previous call stopped.
  RunStatus Run(const RunBudget& budget);

  /// Timestamp of the event currently being processed (or last processed).
  double now() const { return now_; }

  /// Virtual clock of a node (when it becomes idle).
  double NodeClock(int node) const {
    SKYPEER_CHECK(node >= 0 && node < num_nodes());
    return clock_[node];
  }

  /// Virtual clock of the node whose handler is currently running,
  /// including CPU charged so far in this handler. Must only be called
  /// from inside a handler.
  double CurrentNodeClock() const {
    SKYPEER_CHECK(handling_node_ >= 0);
    return clock_[handling_node_];
  }

  /// Sum of wire bytes over all `Send` calls since the last `Reset`.
  uint64_t total_bytes() const { return total_bytes_; }

  /// Number of `Send` calls since the last `Reset`.
  uint64_t num_messages() const { return num_messages_; }

  /// Messages lost in flight (drop probability or link outage) since the
  /// last `Reset`. Lost messages still count in `total_bytes` /
  /// `num_messages` — the sender did transmit them.
  uint64_t dropped_messages() const { return dropped_messages_; }

  /// Deliveries (messages and timers) discarded because the destination
  /// node was crashed at arrival time, since the last `Reset`.
  uint64_t suppressed_deliveries() const { return suppressed_deliveries_; }

  /// Largest node clock — the makespan of the completed run.
  double MaxClock() const;

  /// Clears pending events, statistics, node clocks and link backlogs;
  /// topology, link parameters and the fault plan survive (the fault RNG
  /// is reseeded so re-runs see identical fault streams). Nodes must
  /// reset their own protocol state separately (see
  /// `SuperPeer::ResetProtocolState`).
  void Reset();

 private:
  struct LinkState {
    LinkParams params;
    double busy_until = 0.0;  // Outgoing channel occupancy.
  };

  struct Event {
    double time;
    uint64_t seq;
    /// Non-zero for timer events (see `ScheduleTimer`).
    uint64_t timer_id;
    Message message;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  LinkState* FindLink(int src, int dst);

  std::vector<Node*> nodes_;
  std::vector<double> clock_;
  // Directed link states keyed by (src, dst).
  std::map<std::pair<int, int>, LinkState> links_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  uint64_t next_seq_ = 0;
  double now_ = 0.0;
  int handling_node_ = -1;
  uint64_t total_bytes_ = 0;
  uint64_t num_messages_ = 0;
  // Fault injection (absent: zero overhead on the hot path).
  std::optional<FaultPlan> fault_plan_;
  std::optional<Rng> fault_rng_;
  uint64_t dropped_messages_ = 0;
  uint64_t suppressed_deliveries_ = 0;
  // Timers.
  uint64_t next_timer_id_ = 1;
  std::unordered_set<uint64_t> cancelled_timers_;
};

}  // namespace skypeer::sim

#endif  // SKYPEER_SIM_SIMULATOR_H_
