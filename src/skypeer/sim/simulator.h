#ifndef SKYPEER_SIM_SIMULATOR_H_
#define SKYPEER_SIM_SIMULATOR_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "skypeer/common/macros.h"
#include "skypeer/sim/message.h"

namespace skypeer::sim {

/// A participant in the simulation. Nodes are registered with the
/// simulator and receive messages through `HandleMessage`, inside which
/// they may charge CPU time and send further messages.
class Node {
 public:
  virtual ~Node() = default;

  /// Invoked when `message` is delivered to this node. `simulator` is the
  /// owning simulator; use it to reply, forward, or charge CPU cost.
  virtual void HandleMessage(class Simulator* simulator,
                             const Message& message) = 0;
};

/// Network parameters of a point-to-point connection.
struct LinkParams {
  /// Bytes per second; infinity disables transfer delay. The paper's
  /// evaluation assumes 4 KB/s per connection (§6).
  double bandwidth = 4096.0;
  /// Fixed propagation delay in seconds, added on top of transfer time.
  double latency = 0.0;
};

inline constexpr double kInfiniteBandwidth =
    std::numeric_limits<double>::infinity();

/// \brief Deterministic discrete-event simulator of a message-passing
/// network with per-node serial CPUs and per-direction FIFO links.
///
/// Model:
///  * Each node has a virtual clock (`busy_until`). A delivered message
///    begins processing at `max(arrival, busy_until)`; `ChargeCpu` inside
///    the handler advances the clock, serializing all work on the node.
///  * Each link direction is FIFO with finite bandwidth: a message sent at
///    (virtual) time t starts transmitting at `max(t, link_busy)`,
///    occupies the link for `bytes / bandwidth`, and arrives after an
///    additional `latency`.
///  * Events with equal timestamps are processed in send order (a
///    monotonic sequence number), making runs bit-for-bit reproducible.
///
/// The same network can be re-run under different link parameters (e.g.
/// infinite bandwidth to isolate the computational critical path) via
/// `Reset` + `SetAllLinkParams`.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a node (not owned). Returns its id.
  int AddNode(Node* node);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Creates the bidirectional connection (a, b). Each direction is an
  /// independent FIFO channel with the given parameters.
  void Connect(int a, int b, const LinkParams& params = {});

  bool AreConnected(int a, int b) const;

  /// Overrides the parameters of every existing link.
  void SetAllLinkParams(const LinkParams& params);

  /// Sends a message from node `src` (the currently handling node) to the
  /// adjacent node `dst`. Departure time is `src`'s current virtual clock.
  void Send(int src, int dst, size_t bytes,
            std::shared_ptr<const MessageBody> body);

  /// Injects an external message delivered to `dst` at time
  /// `max(now, dst clock)`; used to start protocols. Carries no wire cost.
  void Post(int dst, std::shared_ptr<const MessageBody> body);

  /// Advances the virtual clock of the currently handling node by
  /// `seconds` of CPU work. Must only be called from inside a handler.
  void ChargeCpu(double seconds);

  /// Processes events until the queue drains.
  void Run();

  /// Timestamp of the event currently being processed (or last processed).
  double now() const { return now_; }

  /// Virtual clock of a node (when it becomes idle).
  double NodeClock(int node) const {
    SKYPEER_CHECK(node >= 0 && node < num_nodes());
    return clock_[node];
  }

  /// Virtual clock of the node whose handler is currently running,
  /// including CPU charged so far in this handler. Must only be called
  /// from inside a handler.
  double CurrentNodeClock() const {
    SKYPEER_CHECK(handling_node_ >= 0);
    return clock_[handling_node_];
  }

  /// Sum of wire bytes over all `Send` calls since the last `Reset`.
  uint64_t total_bytes() const { return total_bytes_; }

  /// Number of `Send` calls since the last `Reset`.
  uint64_t num_messages() const { return num_messages_; }

  /// Largest node clock — the makespan of the completed run.
  double MaxClock() const;

  /// Clears pending events, statistics, node clocks and link backlogs;
  /// topology and link parameters survive. Nodes must reset their own
  /// protocol state separately.
  void Reset();

 private:
  struct LinkState {
    LinkParams params;
    double busy_until = 0.0;  // Outgoing channel occupancy.
  };

  struct Event {
    double time;
    uint64_t seq;
    Message message;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  LinkState* FindLink(int src, int dst);

  std::vector<Node*> nodes_;
  std::vector<double> clock_;
  // Directed link states keyed by (src, dst).
  std::map<std::pair<int, int>, LinkState> links_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  uint64_t next_seq_ = 0;
  double now_ = 0.0;
  int handling_node_ = -1;
  uint64_t total_bytes_ = 0;
  uint64_t num_messages_ = 0;
};

}  // namespace skypeer::sim

#endif  // SKYPEER_SIM_SIMULATOR_H_
