#ifndef SKYPEER_SIM_MESSAGE_H_
#define SKYPEER_SIM_MESSAGE_H_

#include <cstddef>
#include <memory>

namespace skypeer::sim {

/// Base class of message payloads. Protocol layers (the SKYPEER engine)
/// derive concrete message types from it; the simulator only cares about
/// the declared wire size in bytes.
struct MessageBody {
  virtual ~MessageBody() = default;
};

/// A message in flight or being delivered.
struct Message {
  /// Sending node id, or -1 for externally injected messages.
  int src = -1;
  /// Receiving node id.
  int dst = -1;
  /// Wire size used for bandwidth accounting. The payload is shared
  /// in-memory; `bytes` models what serialization would cost.
  size_t bytes = 0;
  std::shared_ptr<const MessageBody> body;
};

}  // namespace skypeer::sim

#endif  // SKYPEER_SIM_MESSAGE_H_
