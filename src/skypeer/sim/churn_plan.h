#ifndef SKYPEER_SIM_CHURN_PLAN_H_
#define SKYPEER_SIM_CHURN_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace skypeer::sim {

/// Kind of a scheduled membership change.
enum class ChurnKind {
  kJoin,     ///< A fresh peer joins a super-peer.
  kRemove,   ///< An existing peer of the super-peer departs.
  kReplace,  ///< An existing peer republishes a fresh data set.
};

const char* ChurnKindName(ChurnKind kind);

/// One scheduled membership change. Events are grouped into query
/// *slots*: all events of slot `s` take effect with the `s`-th query the
/// network executes after the plan is installed (queries beyond the last
/// slot run churn-free). `time` is the simulated instant, seconds into
/// that query, at which the affected super-peer is charged the
/// maintenance cost on its virtual clock; the membership change itself is
/// applied atomically between queries so that every query sees exactly
/// one epoch of every store.
struct ChurnEvent {
  int slot = 0;             ///< Query ordinal the event rides on.
  double time = 0.0;        ///< Seconds into the query (>= 0).
  ChurnKind kind = ChurnKind::kJoin;
  int node = 0;             ///< Affected super-peer node id.
  uint64_t seed = 0;        ///< Per-event stream (victim pick, fresh data).
};

/// \brief Declarative, seeded churn schedule, the membership counterpart
/// of `FaultPlan`.
///
/// A plan is consumed passively by the engine: it never touches the
/// simulator's state by itself. Determinism contract: a fixed plan yields
/// a bit-identical interleaving of query results and simulated metrics at
/// any thread count, paged or in-memory, and composes with any
/// `FaultPlan` (events scheduled at a crashed super-peer are suppressed
/// by the simulator exactly like any other delivery).
struct ChurnPlan {
  /// Events sorted by (slot, time, insertion order).
  std::vector<ChurnEvent> events;

  bool empty() const { return events.empty(); }
  size_t size() const { return events.size(); }

  /// Appends an event, keeping `events` sorted by (slot, time) with
  /// insertion order as the tie break.
  void AddEvent(ChurnEvent event);

  /// Largest slot index present, or -1 for an empty plan.
  int MaxSlot() const;

  /// The contiguous range of events with `slot == s` as [begin, end)
  /// indices into `events`.
  std::pair<size_t, size_t> SlotRange(int s) const;

  /// Builds a seeded plan of `num_events` events spread over query slots
  /// [0, num_slots): per event the slot and the affected super-peer are
  /// uniform, the kind cycles join/remove/replace, and the in-query time
  /// is exponential with mean `rate` seconds. Each event carries a forked
  /// seed for its own choices (victim pick, fresh data).
  static ChurnPlan Seeded(int num_events, double rate, uint64_t seed,
                          int num_slots, int num_super_peers);
};

}  // namespace skypeer::sim

#endif  // SKYPEER_SIM_CHURN_PLAN_H_
