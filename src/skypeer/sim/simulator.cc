#include "skypeer/sim/simulator.h"

#include <algorithm>
#include <utility>

namespace skypeer::sim {

int Simulator::AddNode(Node* node) {
  SKYPEER_CHECK(node != nullptr);
  nodes_.push_back(node);
  clock_.push_back(0.0);
  return static_cast<int>(nodes_.size()) - 1;
}

void Simulator::Connect(int a, int b, const LinkParams& params) {
  SKYPEER_CHECK(a >= 0 && a < num_nodes());
  SKYPEER_CHECK(b >= 0 && b < num_nodes());
  SKYPEER_CHECK(a != b);
  links_[{a, b}] = LinkState{params, 0.0};
  links_[{b, a}] = LinkState{params, 0.0};
}

bool Simulator::AreConnected(int a, int b) const {
  return links_.find({a, b}) != links_.end();
}

void Simulator::SetAllLinkParams(const LinkParams& params) {
  for (auto& [key, link] : links_) {
    link.params = params;
  }
}

void Simulator::SetFaultPlan(FaultPlan plan) {
  fault_rng_.emplace(plan.seed);
  fault_plan_ = std::move(plan);
}

void Simulator::ClearFaultPlan() {
  fault_plan_.reset();
  fault_rng_.reset();
}

Simulator::LinkState* Simulator::FindLink(int src, int dst) {
  auto it = links_.find({src, dst});
  return it == links_.end() ? nullptr : &it->second;
}

void Simulator::Send(int src, int dst, size_t bytes,
                     std::shared_ptr<const MessageBody> body) {
  SKYPEER_CHECK(src >= 0 && src < num_nodes());
  SKYPEER_CHECK(dst >= 0 && dst < num_nodes());
  LinkState* link = FindLink(src, dst);
  SKYPEER_CHECK(link != nullptr);  // Only adjacent nodes may communicate.

  const double departure = clock_[src];
  const double start = std::max(departure, link->busy_until);
  const double transfer =
      link->params.bandwidth == kInfiniteBandwidth
          ? 0.0
          : static_cast<double>(bytes) / link->params.bandwidth;
  link->busy_until = start + transfer;
  double arrival = start + transfer + link->params.latency;

  // The transmission happened either way: wire statistics and link
  // occupancy account for lost messages too (the loss is in flight).
  total_bytes_ += bytes;
  ++num_messages_;

  if (fault_plan_.has_value()) {
    if (fault_plan_->LinkDownAt(src, dst, start)) {
      ++dropped_messages_;
      return;
    }
    const double drop_prob = fault_plan_->DropProbFor(src, dst);
    if (drop_prob > 0.0 && fault_rng_->Uniform() < drop_prob) {
      ++dropped_messages_;
      return;
    }
    if (fault_plan_->delay_jitter > 0.0) {
      arrival += fault_rng_->Uniform(0.0, fault_plan_->delay_jitter);
    }
  }

  events_.push(Event{arrival, next_seq_++, /*timer_id=*/0,
                     Message{src, dst, bytes, std::move(body)}});
}

void Simulator::Post(int dst, std::shared_ptr<const MessageBody> body) {
  SKYPEER_CHECK(dst >= 0 && dst < num_nodes());
  events_.push(Event{now_, next_seq_++, /*timer_id=*/0,
                     Message{-1, dst, 0, std::move(body)}});
}

uint64_t Simulator::ScheduleTimer(int node, double delay,
                                  std::shared_ptr<const MessageBody> body) {
  SKYPEER_CHECK(node >= 0 && node < num_nodes());
  SKYPEER_CHECK(delay >= 0.0);
  const double fire = std::max(now_, clock_[node]) + delay;
  const uint64_t timer_id = next_timer_id_++;
  events_.push(Event{fire, next_seq_++, timer_id,
                     Message{node, node, 0, std::move(body)}});
  return timer_id;
}

void Simulator::CancelTimer(uint64_t timer_id) {
  if (timer_id != 0) {
    cancelled_timers_.insert(timer_id);
  }
}

void Simulator::ChargeCpu(double seconds) {
  SKYPEER_CHECK(handling_node_ >= 0);
  SKYPEER_CHECK(seconds >= 0.0);
  clock_[handling_node_] += seconds;
}

RunStatus Simulator::Run(const RunBudget& budget) {
  uint64_t processed = 0;
  while (!events_.empty()) {
    if (events_.top().time > budget.max_virtual_time) {
      return RunStatus::kTimeBudgetExceeded;
    }
    if (budget.max_events > 0 && processed >= budget.max_events) {
      return RunStatus::kEventBudgetExceeded;
    }
    Event event = events_.top();
    events_.pop();
    if (event.timer_id != 0 &&
        cancelled_timers_.erase(event.timer_id) > 0) {
      continue;  // Cancelled before firing.
    }
    now_ = event.time;
    ++processed;
    const int dst = event.message.dst;
    if (fault_plan_.has_value() && fault_plan_->NodeDownAt(dst, event.time)) {
      // Crashed destination: the delivery (message or timer) vanishes.
      ++suppressed_deliveries_;
      continue;
    }
    // Processing starts once the node has finished earlier work.
    clock_[dst] = std::max(clock_[dst], event.time);
    handling_node_ = dst;
    nodes_[dst]->HandleMessage(this, event.message);
    handling_node_ = -1;
  }
  return RunStatus::kCompleted;
}

double Simulator::MaxClock() const {
  double max_clock = 0.0;
  for (double c : clock_) {
    max_clock = std::max(max_clock, c);
  }
  return max_clock;
}

void Simulator::Reset() {
  while (!events_.empty()) {
    events_.pop();
  }
  std::fill(clock_.begin(), clock_.end(), 0.0);
  for (auto& [key, link] : links_) {
    link.busy_until = 0.0;
  }
  now_ = 0.0;
  handling_node_ = -1;
  total_bytes_ = 0;
  num_messages_ = 0;
  next_seq_ = 0;
  dropped_messages_ = 0;
  suppressed_deliveries_ = 0;
  next_timer_id_ = 1;
  cancelled_timers_.clear();
  if (fault_plan_.has_value()) {
    // Reseed the dedicated stream: every run of the same event sequence
    // (e.g. the engine's two measurement passes) sees identical faults.
    fault_rng_.emplace(fault_plan_->seed);
  }
}

}  // namespace skypeer::sim
