#include "skypeer/sim/simulator.h"

#include <algorithm>
#include <utility>

namespace skypeer::sim {

int Simulator::AddNode(Node* node) {
  SKYPEER_CHECK(node != nullptr);
  nodes_.push_back(node);
  clock_.push_back(0.0);
  return static_cast<int>(nodes_.size()) - 1;
}

void Simulator::Connect(int a, int b, const LinkParams& params) {
  SKYPEER_CHECK(a >= 0 && a < num_nodes());
  SKYPEER_CHECK(b >= 0 && b < num_nodes());
  SKYPEER_CHECK(a != b);
  links_[{a, b}] = LinkState{params, 0.0};
  links_[{b, a}] = LinkState{params, 0.0};
}

bool Simulator::AreConnected(int a, int b) const {
  return links_.find({a, b}) != links_.end();
}

void Simulator::SetAllLinkParams(const LinkParams& params) {
  for (auto& [key, link] : links_) {
    link.params = params;
  }
}

Simulator::LinkState* Simulator::FindLink(int src, int dst) {
  auto it = links_.find({src, dst});
  return it == links_.end() ? nullptr : &it->second;
}

void Simulator::Send(int src, int dst, size_t bytes,
                     std::shared_ptr<const MessageBody> body) {
  SKYPEER_CHECK(src >= 0 && src < num_nodes());
  SKYPEER_CHECK(dst >= 0 && dst < num_nodes());
  LinkState* link = FindLink(src, dst);
  SKYPEER_CHECK(link != nullptr);  // Only adjacent nodes may communicate.

  const double departure = clock_[src];
  const double start = std::max(departure, link->busy_until);
  const double transfer =
      link->params.bandwidth == kInfiniteBandwidth
          ? 0.0
          : static_cast<double>(bytes) / link->params.bandwidth;
  link->busy_until = start + transfer;
  const double arrival = start + transfer + link->params.latency;

  total_bytes_ += bytes;
  ++num_messages_;
  events_.push(
      Event{arrival, next_seq_++, Message{src, dst, bytes, std::move(body)}});
}

void Simulator::Post(int dst, std::shared_ptr<const MessageBody> body) {
  SKYPEER_CHECK(dst >= 0 && dst < num_nodes());
  events_.push(
      Event{now_, next_seq_++, Message{-1, dst, 0, std::move(body)}});
}

void Simulator::ChargeCpu(double seconds) {
  SKYPEER_CHECK(handling_node_ >= 0);
  SKYPEER_CHECK(seconds >= 0.0);
  clock_[handling_node_] += seconds;
}

void Simulator::Run() {
  while (!events_.empty()) {
    Event event = events_.top();
    events_.pop();
    now_ = event.time;
    const int dst = event.message.dst;
    // Processing starts once the node has finished earlier work.
    clock_[dst] = std::max(clock_[dst], event.time);
    handling_node_ = dst;
    nodes_[dst]->HandleMessage(this, event.message);
    handling_node_ = -1;
  }
}

double Simulator::MaxClock() const {
  double max_clock = 0.0;
  for (double c : clock_) {
    max_clock = std::max(max_clock, c);
  }
  return max_clock;
}

void Simulator::Reset() {
  while (!events_.empty()) {
    events_.pop();
  }
  std::fill(clock_.begin(), clock_.end(), 0.0);
  for (auto& [key, link] : links_) {
    link.busy_until = 0.0;
  }
  now_ = 0.0;
  handling_node_ = -1;
  total_bytes_ = 0;
  num_messages_ = 0;
  next_seq_ = 0;
}

}  // namespace skypeer::sim
