#include "skypeer/topology/overlay.h"

#include <algorithm>

#include "skypeer/common/macros.h"

namespace skypeer {

const char* BackboneTopologyName(BackboneTopology topology) {
  switch (topology) {
    case BackboneTopology::kWaxman:
      return "waxman";
    case BackboneTopology::kHypercube:
      return "hypercube";
  }
  return "unknown";
}

int DefaultNumSuperPeers(int num_peers) {
  const double fraction = num_peers >= 20000 ? 0.01 : 0.05;
  return std::max(1, static_cast<int>(num_peers * fraction));
}

Status ValidateOverlayConfig(const OverlayConfig& config) {
  if (config.num_peers < 1) {
    return Status::InvalidArgument("num_peers must be >= 1");
  }
  if (config.num_super_peers < 0) {
    return Status::InvalidArgument("num_super_peers must be >= 0");
  }
  const int num_super_peers = config.num_super_peers > 0
                                  ? config.num_super_peers
                                  : DefaultNumSuperPeers(config.num_peers);
  if (num_super_peers > config.num_peers) {
    return Status::InvalidArgument("more super-peers than peers");
  }
  if (config.degree_sp < 0.0) {
    return Status::InvalidArgument("degree_sp must be >= 0");
  }
  return Status::OK();
}

Overlay BuildOverlay(const OverlayConfig& config) {
  SKYPEER_CHECK(ValidateOverlayConfig(config).ok());
  const int num_super_peers = config.num_super_peers > 0
                                  ? config.num_super_peers
                                  : DefaultNumSuperPeers(config.num_peers);
  Rng rng(config.seed);
  Overlay overlay;
  switch (config.topology) {
    case BackboneTopology::kWaxman:
      overlay.backbone =
          GenerateWaxmanGraph(num_super_peers, config.degree_sp, &rng);
      break;
    case BackboneTopology::kHypercube:
      overlay.backbone = GenerateHypercubeGraph(num_super_peers);
      break;
  }
  overlay.peer_super_peer.resize(config.num_peers);
  overlay.super_peer_peers.resize(num_super_peers);
  for (int peer = 0; peer < config.num_peers; ++peer) {
    const int super_peer = peer % num_super_peers;
    overlay.peer_super_peer[peer] = super_peer;
    overlay.super_peer_peers[super_peer].push_back(peer);
  }
  return overlay;
}

}  // namespace skypeer
