#include "skypeer/topology/graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "skypeer/common/macros.h"

namespace skypeer {

bool Graph::HasEdge(int a, int b) const {
  const std::vector<int>& adj = adjacency_[a];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

bool Graph::AddEdge(int a, int b) {
  SKYPEER_CHECK(a >= 0 && a < num_nodes());
  SKYPEER_CHECK(b >= 0 && b < num_nodes());
  if (a == b || HasEdge(a, b)) {
    return false;
  }
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++num_edges_;
  return true;
}

std::vector<int> Graph::HopDistances(int source) const {
  std::vector<int> dist(num_nodes(), -1);
  if (num_nodes() == 0) {
    return dist;
  }
  std::queue<int> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop();
    for (int next : adjacency_[node]) {
      if (dist[next] == -1) {
        dist[next] = dist[node] + 1;
        frontier.push(next);
      }
    }
  }
  return dist;
}

bool Graph::IsConnected() const {
  if (num_nodes() == 0) {
    return true;
  }
  const std::vector<int> dist = HopDistances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](int d) { return d == -1; });
}

double Graph::AveragePathLength(int sample_sources, Rng* rng) const {
  SKYPEER_CHECK(sample_sources >= 1);
  double sum = 0.0;
  size_t pairs = 0;
  for (int s = 0; s < sample_sources; ++s) {
    const int source = static_cast<int>(rng->UniformInt(0, num_nodes() - 1));
    for (int d : HopDistances(source)) {
      if (d > 0) {
        sum += d;
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
}

std::vector<int> Graph::EulerTourWalk(int root) const {
  SKYPEER_CHECK(root >= 0 && root < num_nodes());
  std::vector<int> walk = {root};
  std::vector<char> visited(num_nodes(), 0);
  visited[root] = 1;
  // Iterative DFS carrying (node, next-neighbor-index) so deep graphs do
  // not overflow the stack.
  std::vector<std::pair<int, size_t>> stack = {{root, 0}};
  while (!stack.empty()) {
    const int node = stack.back().first;
    const std::vector<int>& neighbors = adjacency_[node];
    bool descended = false;
    while (stack.back().second < neighbors.size()) {
      const int child = neighbors[stack.back().second++];
      if (!visited[child]) {
        visited[child] = 1;
        walk.push_back(child);
        stack.push_back({child, 0});
        descended = true;
        break;
      }
    }
    if (!descended) {
      stack.pop_back();
      if (!stack.empty()) {
        walk.push_back(stack.back().first);
      }
    }
  }
  return walk;
}

Graph GenerateHypercubeGraph(int num_nodes) {
  SKYPEER_CHECK(num_nodes >= 1);
  Graph graph(num_nodes);
  if (num_nodes == 1) {
    return graph;
  }
  int bits = 0;
  while ((1 << bits) < num_nodes) {
    ++bits;
  }
  for (int node = 0; node < num_nodes; ++node) {
    for (int b = 0; b < bits; ++b) {
      int neighbor = node ^ (1 << b);
      // Missing corners of the partial cube collapse onto the node with
      // the offending top bit cleared (always existing, since clearing a
      // set bit decreases the id).
      while (neighbor >= num_nodes) {
        int top = bits - 1;
        while ((neighbor & (1 << top)) == 0) {
          --top;
        }
        neighbor &= ~(1 << top);
      }
      if (neighbor != node) {
        graph.AddEdge(node, neighbor);
      }
    }
  }
  SKYPEER_DCHECK(graph.IsConnected());
  return graph;
}

Graph GenerateWaxmanGraph(int num_nodes, double target_avg_degree, Rng* rng) {
  SKYPEER_CHECK(num_nodes >= 1);
  SKYPEER_CHECK(target_avg_degree >= 0.0);
  Graph graph(num_nodes);
  if (num_nodes == 1) {
    return graph;
  }

  // Node positions in the unit square.
  std::vector<double> x(num_nodes);
  std::vector<double> y(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    x[i] = rng->Uniform();
    y[i] = rng->Uniform();
  }

  // Waxman weight w(u,v) = exp(-dist / (beta * L)), L = max distance.
  constexpr double kBeta = 0.3;
  const double scale_length = kBeta * std::sqrt(2.0);
  std::vector<double> weight;
  weight.reserve(static_cast<size_t>(num_nodes) * (num_nodes - 1) / 2);
  double weight_sum = 0.0;
  for (int i = 0; i < num_nodes; ++i) {
    for (int j = i + 1; j < num_nodes; ++j) {
      const double dist = std::hypot(x[i] - x[j], y[i] - y[j]);
      const double w = std::exp(-dist / scale_length);
      weight.push_back(w);
      weight_sum += w;
    }
  }

  // Calibrate a global factor so the expected edge count yields the
  // requested average degree.
  const double target_edges = target_avg_degree * num_nodes / 2.0;
  const double factor = weight_sum > 0.0 ? target_edges / weight_sum : 0.0;
  size_t pair = 0;
  for (int i = 0; i < num_nodes; ++i) {
    for (int j = i + 1; j < num_nodes; ++j, ++pair) {
      const double probability = std::min(1.0, factor * weight[pair]);
      if (rng->Uniform() < probability) {
        graph.AddEdge(i, j);
      }
    }
  }

  // Connectivity repair: attach every extra component through its
  // geometrically closest pair to the already connected part.
  std::vector<int> component(num_nodes, -1);
  int num_components = 0;
  for (int i = 0; i < num_nodes; ++i) {
    if (component[i] != -1) {
      continue;
    }
    std::queue<int> frontier;
    component[i] = num_components;
    frontier.push(i);
    while (!frontier.empty()) {
      const int node = frontier.front();
      frontier.pop();
      for (int next : graph.Neighbors(node)) {
        if (component[next] == -1) {
          component[next] = num_components;
          frontier.push(next);
        }
      }
    }
    ++num_components;
  }
  for (int c = 1; c < num_components; ++c) {
    int best_a = -1;
    int best_b = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    for (int a = 0; a < num_nodes; ++a) {
      if (component[a] != c) {
        continue;
      }
      for (int b = 0; b < num_nodes; ++b) {
        if (component[b] == c) {
          continue;
        }
        const double dist = std::hypot(x[a] - x[b], y[a] - y[b]);
        if (dist < best_dist) {
          best_dist = dist;
          best_a = a;
          best_b = b;
        }
      }
    }
    graph.AddEdge(best_a, best_b);
    // Merge component c into the component of best_b.
    const int target = component[best_b];
    for (int i = 0; i < num_nodes; ++i) {
      if (component[i] == c) {
        component[i] = target;
      }
    }
  }
  SKYPEER_DCHECK(graph.IsConnected());
  return graph;
}

}  // namespace skypeer
