#ifndef SKYPEER_TOPOLOGY_OVERLAY_H_
#define SKYPEER_TOPOLOGY_OVERLAY_H_

#include <vector>

#include "skypeer/common/rng.h"
#include "skypeer/common/status.h"
#include "skypeer/topology/graph.h"

namespace skypeer {

/// Shape of the super-peer backbone.
enum class BackboneTopology {
  /// GT-ITM style connected random graph (the paper's setting).
  kWaxman,
  /// HyperCuP-style partial hypercube (Edutella's backbone, paper §2);
  /// `degree_sp` is ignored — the degree is ~log2(N_sp).
  kHypercube,
};

const char* BackboneTopologyName(BackboneTopology topology);

/// Parameters of the two-tier super-peer overlay (paper §3.1).
struct OverlayConfig {
  int num_peers = 4000;
  /// Number of super-peers; 0 selects the paper's rule — 5% of the peers,
  /// dropping to 1% once num_peers >= 20000.
  int num_super_peers = 0;
  /// Average super-peer connectivity DEG_sp (paper varies 4..7).
  double degree_sp = 4.0;
  BackboneTopology topology = BackboneTopology::kWaxman;
  uint64_t seed = 1;
};

/// Applies the paper's super-peer sizing rule (§6): N_sp = 5% · N_p, or
/// 1% · N_p when N_p >= 20000 (at least one).
int DefaultNumSuperPeers(int num_peers);

/// \brief The materialized two-tier topology: a random-graph super-peer
/// backbone plus an even assignment of peers to super-peers.
struct Overlay {
  Graph backbone{0};
  /// peer id -> super-peer id.
  std::vector<int> peer_super_peer;
  /// super-peer id -> ids of its associated peers.
  std::vector<std::vector<int>> super_peer_peers;

  int num_peers() const { return static_cast<int>(peer_super_peer.size()); }
  int num_super_peers() const { return backbone.num_nodes(); }
};

/// Validates an `OverlayConfig` without building anything.
Status ValidateOverlayConfig(const OverlayConfig& config);

/// Builds the overlay: Waxman backbone of `num_super_peers` nodes with
/// average degree `degree_sp`, peers dealt round-robin so every super-peer
/// serves an (almost) equal share. Config must validate.
Overlay BuildOverlay(const OverlayConfig& config);

}  // namespace skypeer

#endif  // SKYPEER_TOPOLOGY_OVERLAY_H_
