#ifndef SKYPEER_TOPOLOGY_GRAPH_H_
#define SKYPEER_TOPOLOGY_GRAPH_H_

#include <cstddef>
#include <vector>

#include "skypeer/common/rng.h"

namespace skypeer {

/// \brief Simple undirected graph with adjacency lists; the super-peer
/// backbone topology.
class Graph {
 public:
  explicit Graph(int num_nodes) : adjacency_(num_nodes) {}

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  size_t num_edges() const { return num_edges_; }
  double AverageDegree() const {
    return adjacency_.empty()
               ? 0.0
               : 2.0 * static_cast<double>(num_edges_) / num_nodes();
  }

  const std::vector<int>& Neighbors(int node) const {
    return adjacency_[node];
  }

  bool HasEdge(int a, int b) const;

  /// Adds the undirected edge (a, b); ignores duplicates and self-loops.
  /// Returns true if the edge was new.
  bool AddEdge(int a, int b);

  /// True if every node is reachable from node 0 (or the graph is empty).
  bool IsConnected() const;

  /// BFS hop distances from `source` (-1 for unreachable nodes).
  std::vector<int> HopDistances(int source) const;

  /// Average shortest-path hop count over sampled source nodes; the
  /// routing-path statistic behind Fig 4(e)'s DEG_sp effect.
  double AveragePathLength(int sample_sources, Rng* rng) const;

  /// Euler-tour walk of a DFS spanning tree rooted at `root`: a sequence
  /// of nodes starting and ending at `root`, with consecutive entries
  /// adjacent, that visits every node reachable from `root` (each tree
  /// edge traversed twice; length 2 * (#reachable - 1) + 1). Used by the
  /// pipelined query variant.
  std::vector<int> EulerTourWalk(int root) const;

 private:
  std::vector<std::vector<int>> adjacency_;
  size_t num_edges_ = 0;
};

/// \brief Generates a (partial) hypercube topology in the spirit of
/// HyperCuP, the super-peer backbone of Edutella (Nejdl et al., WWW'03,
/// cited in the paper's §2): node `i` links to every node differing in
/// exactly one bit of its id. For `num_nodes` short of a full power of
/// two, missing corners collapse onto their lower neighbors, keeping the
/// graph connected with logarithmic diameter.
Graph GenerateHypercubeGraph(int num_nodes);

/// \brief Generates a connected Waxman random graph (the model behind
/// GT-ITM's flat random topologies, which the paper used).
///
/// Nodes get uniform positions in the unit square; edge probability decays
/// exponentially with Euclidean distance, globally scaled so the expected
/// average degree matches `target_avg_degree`. If the sampled graph is
/// disconnected, each extra component is attached through its
/// geometrically closest node pair, so connectivity never fails.
Graph GenerateWaxmanGraph(int num_nodes, double target_avg_degree, Rng* rng);

}  // namespace skypeer

#endif  // SKYPEER_TOPOLOGY_GRAPH_H_
