#ifndef SKYPEER_COMMON_DOMINANCE_BATCH_H_
#define SKYPEER_COMMON_DOMINANCE_BATCH_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "skypeer/common/macros.h"

namespace skypeer {

/// \file
/// Batched dominance kernels over fixed-width blocks of u-projected
/// points. Every SKYPEER variant funnels through the window dominance
/// test of Algorithm 1 — quadratic in window size, run once per scanned
/// point — so this layer restructures it from one-point-at-a-time scalar
/// loops (`dominance.h`) into block kernels that test `kDomBlockWidth`
/// candidates per iteration.
///
/// The kernels perform the *same double comparisons* as the scalar code
/// and reduce block results in lane-index order, so every boolean outcome
/// — and therefore skylines, scan counts, thresholds and all simulated
/// metrics — is bit-identical across the scalar, auto-vectorized and
/// explicit-SIMD paths. Dispatch is runtime (AVX2 on x86-64, NEON on
/// AArch64, compiler-vectorizable blocked loops otherwise) and can be
/// pinned to the scalar path with the `SKYPEER_FORCE_SCALAR` environment
/// variable or `SetForceScalarKernels` for differential testing.

/// Number of points per block of a `BlockedProjection`. Eight doubles per
/// dimension = two AVX2 vectors or four NEON vectors.
inline constexpr size_t kDomBlockWidth = 8;

/// \brief Blocked structure-of-arrays storage for k-dimensional projected
/// points: block `b` holds points `[b*8, b*8+8)` as `k` contiguous runs of
/// 8 doubles, one per dimension (dim-major within the block).
///
/// Padding lanes of a partial final block — and lanes of points removed
/// with `Kill` — hold `+inf` on every dimension, which makes them inert
/// for "does any stored point dominate q" queries (`+inf` never
/// dominates a finite point, strictly or not) without any separate
/// liveness mask. The reverse kernel (`DominatedMask`) reports `+inf`
/// lanes as dominated; callers that `Kill` entries must filter the mask
/// through their own liveness bookkeeping (padding lanes past `size()`
/// are cleared by the kernel itself).
class BlockedProjection {
 public:
  explicit BlockedProjection(int k) : k_(k) { SKYPEER_CHECK(k >= 1); }

  int k() const { return k_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t num_blocks() const {
    return (size_ + kDomBlockWidth - 1) / kDomBlockWidth;
  }

  void Reserve(size_t n) {
    data_.reserve(((n + kDomBlockWidth - 1) / kDomBlockWidth) *
                  kDomBlockWidth * static_cast<size_t>(k_));
  }

  /// Appends a point given by `k()` coordinates. The domain is NaN-free
  /// (skyline coordinates are real costs); NaN would silently corrupt
  /// every comparison-based kernel, so it is rejected in debug builds.
  void Append(const double* row) {
    if (size_ % kDomBlockWidth == 0) {
      data_.resize(data_.size() + kDomBlockWidth * static_cast<size_t>(k_),
                   std::numeric_limits<double>::infinity());
    }
    double* block = BlockData(size_ / kDomBlockWidth);
    const size_t lane = size_ % kDomBlockWidth;
    for (int d = 0; d < k_; ++d) {
      SKYPEER_DCHECK(!std::isnan(row[d]));
      block[static_cast<size_t>(d) * kDomBlockWidth + lane] = row[d];
    }
    ++size_;
  }

  /// Overwrites point `i` with `+inf` so it can never again dominate a
  /// query point. Used when the owning window evicts a candidate.
  void Kill(size_t i) {
    SKYPEER_DCHECK(i < size_);
    double* block = BlockData(i / kDomBlockWidth);
    const size_t lane = i % kDomBlockWidth;
    for (int d = 0; d < k_; ++d) {
      block[static_cast<size_t>(d) * kDomBlockWidth + lane] =
          std::numeric_limits<double>::infinity();
    }
  }

  /// Gathers the `k()` coordinates of point `i` into `out`.
  void Row(size_t i, double* out) const {
    SKYPEER_DCHECK(i < size_);
    const double* block = BlockData(i / kDomBlockWidth);
    const size_t lane = i % kDomBlockWidth;
    for (int d = 0; d < k_; ++d) {
      out[d] = block[static_cast<size_t>(d) * kDomBlockWidth + lane];
    }
  }

  void Clear() {
    data_.clear();
    size_ = 0;
  }

  const double* BlockData(size_t b) const {
    return data_.data() + b * kDomBlockWidth * static_cast<size_t>(k_);
  }

 private:
  double* BlockData(size_t b) {
    return data_.data() + b * kDomBlockWidth * static_cast<size_t>(k_);
  }

  int k_;
  size_t size_ = 0;
  std::vector<double> data_;
};

/// Which kernel implementation the dispatcher resolved to.
enum class DomKernelMode {
  kScalar,  ///< Blocked loops, no explicit SIMD (compiler may auto-vectorize).
  kAvx2,    ///< Explicit AVX2 intrinsics (x86-64, runtime-detected).
  kNeon,    ///< Explicit NEON intrinsics (AArch64).
};

/// The active implementation: `SKYPEER_FORCE_SCALAR` (env, non-empty and
/// not "0") or `SetForceScalarKernels(true)` pins `kScalar`; otherwise the
/// best path the CPU supports.
DomKernelMode ActiveDomKernelMode();

/// Short name of a mode: "scalar", "avx2", "neon".
const char* DomKernelModeName(DomKernelMode mode);

/// Overrides dispatch for testing: `true` forces the scalar path, `false`
/// restores default dispatch (`SKYPEER_FORCE_SCALAR` re-checked, then CPU
/// detection). Thread-safe; affects subsequently issued kernel calls
/// process-wide.
void SetForceScalarKernels(bool force);

/// True if some stored point of `w` dominates `q` (`k()` coordinates) —
/// strictly on every dimension when `strict` (ext-dominance), the usual
/// `<= everywhere, < somewhere` otherwise. Killed and padding lanes are
/// `+inf` and never dominate. Equivalent to OR-ing `Dominates(p_i, q)`
/// over all stored points; evaluated blockwise with early exit.
bool AnyDominates(const BlockedProjection& w, const double* q, bool strict);

/// For every stored point `i`, sets bit `i % 8` of `out_masks[i / 8]` to
/// whether `p` dominates point `i`. `out_masks` must hold `num_blocks()`
/// bytes. Padding lanes past `size()` are reported as 0; killed (`+inf`)
/// lanes are reported as dominated and must be filtered by the caller.
void DominatedMask(const BlockedProjection& w, const double* p, bool strict,
                   uint8_t* out_masks);

/// Row-major variant of `AnyDominates` for data that lives in an existing
/// layout (R-tree leaf entries, survivor unions): row `i` starts at
/// `rows + i * stride` and spans `k` doubles. Exactly equivalent to
/// OR-ing `Dominates(row_i, q)` over the `n` rows.
bool AnyDominatesRows(const double* rows, size_t stride, size_t n, int k,
                      const double* q, bool strict);

/// Row-major variant of `DominatedMask`: `out[i]` is set to 1 when `p`
/// dominates row `i`, 0 otherwise. `out` must hold `n` bytes.
void DominatedFlagsRows(const double* rows, size_t stride, size_t n, int k,
                        const double* p, bool strict, uint8_t* out);

/// Batched `f(p) = min_i p[i]` over `n` row-major `dims`-dimensional rows
/// (paper §5.1); `out` receives `n` values. Reduces each row in dimension
/// order, so results are bit-identical to scalar `MinCoord`.
void BatchMinCoord(const double* rows, size_t n, int dims, double* out);

/// Summary-vs-window probe of the block-skipping scans: true when some
/// stored point of `w` dominates `m`, the u-projected per-dimension
/// *minimum vector* of an upcoming 8-wide store block (`k()`
/// coordinates). Dominating the min-vector implies dominating every point
/// of the block (each is coordinate-wise >= the minima), so a true return
/// licenses rejecting the whole block without per-point tests. Runs the
/// same comparisons as `AnyDominates`, hence bit-identical across
/// scalar/SIMD dispatch.
bool AnyDominatesSummary(const BlockedProjection& w, const double* m,
                         bool strict);

}  // namespace skypeer

#endif  // SKYPEER_COMMON_DOMINANCE_BATCH_H_
