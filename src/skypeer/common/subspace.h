#ifndef SKYPEER_COMMON_SUBSPACE_H_
#define SKYPEER_COMMON_SUBSPACE_H_

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "skypeer/common/macros.h"

namespace skypeer {

/// Maximum data dimensionality supported by the bitmask representation.
inline constexpr int kMaxDims = 32;

/// \brief A non-empty subset of the dimensions `{0, ..., d-1}` of a space,
/// represented as a bitmask (the paper's `U ⊆ D`).
///
/// Bit `i` set means dimension `i` participates in the (sub)space. The
/// default-constructed value is the empty set, which is not a valid query
/// subspace but serves as an "unset" sentinel. Value type, freely copyable.
class Subspace {
 public:
  /// Constructs the empty set.
  constexpr Subspace() = default;

  /// Constructs from a raw bitmask.
  constexpr explicit Subspace(uint32_t mask) : mask_(mask) {}

  /// The full space of dimensionality `dims` ({d_0, ..., d_{dims-1}}).
  /// `dims` beyond `kMaxDims` cannot be represented as a bitmask and is
  /// rejected rather than silently truncated to a 32-d subspace.
  static constexpr Subspace FullSpace(int dims) {
    SKYPEER_CHECK(dims >= 0 && dims <= kMaxDims);
    return Subspace(dims == kMaxDims ? ~uint32_t{0}
                                     : ((uint32_t{1} << dims) - 1));
  }

  /// A subspace from an explicit dimension list, e.g. `FromDims({0, 3})`.
  static Subspace FromDims(std::initializer_list<int> dims) {
    uint32_t mask = 0;
    for (int d : dims) {
      SKYPEER_DCHECK(d >= 0 && d < kMaxDims);
      mask |= uint32_t{1} << d;
    }
    return Subspace(mask);
  }

  /// A subspace from a dimension vector.
  static Subspace FromDims(const std::vector<int>& dims) {
    uint32_t mask = 0;
    for (int d : dims) {
      SKYPEER_DCHECK(d >= 0 && d < kMaxDims);
      mask |= uint32_t{1} << d;
    }
    return Subspace(mask);
  }

  constexpr uint32_t mask() const { return mask_; }
  constexpr bool empty() const { return mask_ == 0; }

  /// Number of dimensions in the subspace (the paper's `k`).
  constexpr int Count() const { return std::popcount(mask_); }

  /// True if dimension `dim` participates.
  constexpr bool Contains(int dim) const {
    return (mask_ >> dim & uint32_t{1}) != 0;
  }

  /// True if every dimension of `other` is also in `*this`.
  constexpr bool IsSupersetOf(Subspace other) const {
    return (mask_ & other.mask_) == other.mask_;
  }

  /// Dimensions of the subspace in ascending order.
  std::vector<int> Dims() const {
    std::vector<int> dims;
    dims.reserve(Count());
    for (uint32_t m = mask_; m != 0; m &= m - 1) {
      dims.push_back(std::countr_zero(m));
    }
    return dims;
  }

  /// Debug form, e.g. "{0,2,5}".
  std::string ToString() const;

  friend constexpr bool operator==(Subspace a, Subspace b) {
    return a.mask_ == b.mask_;
  }

  /// Iterates over the set dimensions in ascending order, allocation-free:
  /// `for (int dim : subspace) { ... }`.
  class Iterator {
   public:
    constexpr explicit Iterator(uint32_t mask) : mask_(mask) {}
    constexpr int operator*() const { return std::countr_zero(mask_); }
    constexpr Iterator& operator++() {
      mask_ &= mask_ - 1;
      return *this;
    }
    friend constexpr bool operator==(Iterator a, Iterator b) {
      return a.mask_ == b.mask_;
    }

   private:
    uint32_t mask_;
  };

  constexpr Iterator begin() const { return Iterator(mask_); }
  constexpr Iterator end() const { return Iterator(0); }

 private:
  uint32_t mask_ = 0;
};

/// Enumerates all non-empty subspaces of the full space of dimensionality
/// `dims` (2^dims - 1 of them, ascending mask order). Intended for small
/// `dims` (tests, the SkyCube oracle).
std::vector<Subspace> AllSubspaces(int dims);

/// Enumerates all subspaces of exactly `k` dimensions out of `dims`.
std::vector<Subspace> SubspacesOfSize(int dims, int k);

}  // namespace skypeer

#endif  // SKYPEER_COMMON_SUBSPACE_H_
