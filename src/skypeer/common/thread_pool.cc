#include "skypeer/common/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

#include "skypeer/common/macros.h"

namespace skypeer {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  SKYPEER_CHECK(num_threads >= 1);
  workers_.reserve(num_threads - 1);
  for (int i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain.
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty()) {
    task();
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SKYPEER_CHECK(!stop_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  // Shared loop state. Helpers that start after the caller already
  // drained every index find `next >= n` and return without touching
  // `fn`, so the state (held alive by the shared_ptr) is all they need.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();

  const auto claim_loop = [state, n, &fn]() {
    for (;;) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) {
          state->error = std::current_exception();
        }
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->cv.notify_all();
      }
    }
  };

  // Enqueue up to one helper per worker; the caller claims indices too,
  // so progress never depends on a worker being free (re-entrancy).
  const size_t helpers = std::min<size_t>(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SKYPEER_CHECK(!stop_);
    for (size_t h = 0; h < helpers; ++h) {
      queue_.emplace(claim_loop);
    }
  }
  cv_.notify_all();

  claim_loop();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] { return state->done.load() == n; });
  if (state->error) {
    std::rethrow_exception(state->error);
  }
}

namespace {

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;
int g_requested_concurrency = 0;  // 0: hardware_concurrency.

int ResolveConcurrency(int n) {
  if (n > 0) {
    return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool* ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool =
        std::make_unique<ThreadPool>(ResolveConcurrency(g_requested_concurrency));
  }
  return g_global_pool.get();
}

void ThreadPool::SetGlobalConcurrency(int n) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_requested_concurrency = n;
  if (g_global_pool &&
      g_global_pool->num_threads() != ResolveConcurrency(n)) {
    g_global_pool.reset();  // Recreated lazily at the new size.
  }
}

int ThreadPool::GlobalConcurrency() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  return g_global_pool ? g_global_pool->num_threads()
                       : ResolveConcurrency(g_requested_concurrency);
}

}  // namespace skypeer
