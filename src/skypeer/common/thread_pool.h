#ifndef SKYPEER_COMMON_THREAD_POOL_H_
#define SKYPEER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace skypeer {

/// \brief A fixed-size worker pool with a FIFO work queue.
///
/// Concurrency 1 starts no worker threads and runs everything inline on
/// the calling thread, which is bit-identical to the historical
/// sequential code paths. `ParallelFor` is re-entrant: it may be called
/// from inside a pool task (the caller participates in the index loop
/// instead of blocking on a free worker), so a parallel batch driver can
/// nest parallel per-query work without deadlocking the pool.
class ThreadPool {
 public:
  /// Starts `num_threads - 1 >= 0` workers (the calling thread always
  /// participates in `ParallelFor`). `num_threads` must be >= 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Enqueues `fn` for execution on a worker. The future resolves once it
  /// ran; an exception thrown by `fn` propagates through the future. With
  /// concurrency 1 the task runs inline before `Submit` returns.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs `fn(0), ..., fn(n-1)`, distributing indices over the workers
  /// and the calling thread, and returns once every index completed.
  /// Execution order is unspecified — callers must aggregate
  /// deterministically (e.g. write into a pre-sized vector by index).
  /// The first exception thrown by any invocation is rethrown on the
  /// caller after the loop drains. With concurrency 1 this is a plain
  /// sequential loop.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // --- process-wide default pool ----------------------------------------

  /// The pool the engine uses by default. Sized by the most recent
  /// `SetGlobalConcurrency` call, else by `hardware_concurrency`.
  static ThreadPool* Global();

  /// Sets the global pool's concurrency; `n == 0` selects
  /// `hardware_concurrency`, `1` restores fully sequential execution.
  /// Any existing global pool is drained and replaced on next use. Call
  /// between workloads, not while work is in flight.
  static void SetGlobalConcurrency(int n);

  /// Concurrency the global pool has (or would be created with).
  static int GlobalConcurrency();

 private:
  void WorkerLoop();

  const int num_threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace skypeer

#endif  // SKYPEER_COMMON_THREAD_POOL_H_
