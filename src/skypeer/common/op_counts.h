#ifndef SKYPEER_COMMON_OP_COUNTS_H_
#define SKYPEER_COMMON_OP_COUNTS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace skypeer {

/// \brief Machine-independent operation counts of a skyline computation.
///
/// Every algorithmic layer (dominance kernels' call sites, R-tree
/// traversal, f-sorted threshold scans, progressive merging, wire
/// serialization) reports its work as counts of logical operations.
/// Counts are *logical*: a batched dominance test over a window of `n`
/// candidates counts `n` dominance tests regardless of whether the
/// scalar or the SIMD kernel executed it, so counts are bit-identical
/// across kernel dispatch, thread counts and machines. A `CostModel`
/// turns counts into deterministic virtual CPU seconds.
struct OpCounts {
  /// Point-vs-point (or point-vs-window-entry) dominance tests.
  uint64_t dominance_tests = 0;
  /// R-tree nodes entered during AnyDominates / EraseDominated / Insert
  /// descents.
  uint64_t rtree_node_visits = 0;
  /// Points consumed from an f-sorted list during a threshold scan.
  uint64_t scan_steps = 0;
  /// Heap pops performed while merging f-sorted skyline lists.
  uint64_t merge_pulls = 0;
  /// Comparison-sort work units: n * ceil(log2 n) per sort or bulk load.
  uint64_t sort_steps = 0;
  /// Bytes serialized onto the wire (queries, replies, acks).
  uint64_t bytes_serialized = 0;
  /// Store pages read by f-sorted scans. Logical, like every other
  /// counter: a scan charges the pages spanning its examined prefix as a
  /// pure function of (scan extent, page geometry), identically whether
  /// the store is resident in memory or paged through the buffer
  /// manager — physical pool hits, prefetch timing and evictions never
  /// enter the counts (they are reported out-of-band).
  uint64_t page_reads = 0;
  /// Bytes of those page reads (page_reads * page size; whole pages).
  uint64_t page_bytes = 0;
  /// Block-summary dominance probes performed by block-skipping scans
  /// (`--block-skip`): one per 8-wide store block whose zone-map
  /// min-vector was tested against the scan window. Logical, like
  /// `page_reads`: a pure function of (summary, scan state), charged
  /// identically in both store modes.
  uint64_t summary_tests = 0;
  /// Store blocks whose points were all rejected via their summary
  /// min-vector (full or partial consumption) — each one saved up to 8
  /// per-point window tests, and a run of them can leave whole pages
  /// unread.
  uint64_t blocks_skipped = 0;

  OpCounts& operator+=(const OpCounts& other) {
    dominance_tests += other.dominance_tests;
    rtree_node_visits += other.rtree_node_visits;
    scan_steps += other.scan_steps;
    merge_pulls += other.merge_pulls;
    sort_steps += other.sort_steps;
    bytes_serialized += other.bytes_serialized;
    page_reads += other.page_reads;
    page_bytes += other.page_bytes;
    summary_tests += other.summary_tests;
    blocks_skipped += other.blocks_skipped;
    return *this;
  }

  friend OpCounts operator+(OpCounts a, const OpCounts& b) {
    a += b;
    return a;
  }

  friend bool operator==(const OpCounts& a, const OpCounts& b) {
    return a.dominance_tests == b.dominance_tests &&
           a.rtree_node_visits == b.rtree_node_visits &&
           a.scan_steps == b.scan_steps && a.merge_pulls == b.merge_pulls &&
           a.sort_steps == b.sort_steps &&
           a.bytes_serialized == b.bytes_serialized &&
           a.page_reads == b.page_reads && a.page_bytes == b.page_bytes &&
           a.summary_tests == b.summary_tests &&
           a.blocks_skipped == b.blocks_skipped;
  }
  friend bool operator!=(const OpCounts& a, const OpCounts& b) {
    return !(a == b);
  }

  uint64_t total() const {
    return dominance_tests + rtree_node_visits + scan_steps + merge_pulls +
           sort_steps + bytes_serialized + page_reads + page_bytes +
           summary_tests + blocks_skipped;
  }

  std::string ToString() const {
    return "dom=" + std::to_string(dominance_tests) +
           " rtree=" + std::to_string(rtree_node_visits) +
           " scan=" + std::to_string(scan_steps) +
           " merge=" + std::to_string(merge_pulls) +
           " sort=" + std::to_string(sort_steps) +
           " bytes=" + std::to_string(bytes_serialized) +
           " pages=" + std::to_string(page_reads) +
           " pagebytes=" + std::to_string(page_bytes) +
           " sumtests=" + std::to_string(summary_tests) +
           " skipped=" + std::to_string(blocks_skipped);
  }
};

/// Work units charged for comparison-sorting (or bulk-loading an R-tree
/// over) `n` items: n * ceil(log2 n), 0 for n <= 1.
inline uint64_t SortCost(size_t n) {
  if (n <= 1) {
    return 0;
  }
  uint64_t levels = 0;
  size_t m = n - 1;
  while (m > 0) {
    m >>= 1;
    ++levels;
  }
  return static_cast<uint64_t>(n) * levels;
}

}  // namespace skypeer

#endif  // SKYPEER_COMMON_OP_COUNTS_H_
