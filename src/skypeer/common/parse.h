#ifndef SKYPEER_COMMON_PARSE_H_
#define SKYPEER_COMMON_PARSE_H_

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace skypeer {

/// \file
/// Strict numeric parsing for command-line flags, shared by the CLI and
/// the benches. The whole token must be a number within the given range;
/// anything else prints a diagnostic naming the flag and exits nonzero.
/// `atoi`-style silent zeros would quietly run (or bench) a zero-sized
/// configuration — `--peers 10k` must be an error, not 0 peers.

/// Parses `text` as a base-10 integer in [min_value, max_value].
inline long long ParseIntFlag(const char* flag, const char* text,
                              long long min_value, long long max_value) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s: '%s' is not an integer\n", flag, text);
    std::exit(1);
  }
  if (value < min_value || value > max_value) {
    std::fprintf(stderr, "%s: %lld out of range [%lld, %lld]\n", flag, value,
                 min_value, max_value);
    std::exit(1);
  }
  return value;
}

/// Parses `text` as a non-negative base-10 integer into the full uint64
/// range (seeds, chunk sizes).
inline uint64_t ParseU64Flag(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  if (text[0] == '-') {
    std::fprintf(stderr, "%s: '%s' must be non-negative\n", flag, text);
    std::exit(1);
  }
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s: '%s' is not an unsigned integer\n", flag, text);
    std::exit(1);
  }
  return value;
}

/// Parses `text` as a finite double in [min_value, max_value]. NaN and
/// infinities are rejected (a NaN would slip through naive range checks —
/// every comparison against it is false).
inline double ParseDoubleFlag(const char* flag, const char* text,
                              double min_value, double max_value) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE ||
      !std::isfinite(value)) {
    std::fprintf(stderr, "%s: '%s' is not a finite number\n", flag, text);
    std::exit(1);
  }
  if (value < min_value || value > max_value) {
    std::fprintf(stderr, "%s: %g out of range [%g, %g]\n", flag, value,
                 min_value, max_value);
    std::exit(1);
  }
  return value;
}

}  // namespace skypeer

#endif  // SKYPEER_COMMON_PARSE_H_
