#include "skypeer/common/dominance_batch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SKYPEER_HAVE_AVX2_PATH 1
#endif

#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define SKYPEER_HAVE_NEON_PATH 1
#endif

namespace skypeer {

namespace {

constexpr size_t kW = kDomBlockWidth;

/// One implementation of every kernel. Blocked-storage kernels receive the
/// raw block data plus the logical point count (padding lanes are +inf).
struct KernelTable {
  DomKernelMode mode;
  bool (*any_dominates)(const double* blocks, size_t n, int k, const double* q,
                        bool strict);
  void (*dominated_mask)(const double* blocks, size_t n, int k,
                         const double* p, bool strict, uint8_t* out_masks);
  bool (*any_dominates_rows)(const double* rows, size_t stride, size_t n,
                             int k, const double* q, bool strict);
  void (*dominated_flags_rows)(const double* rows, size_t stride, size_t n,
                               int k, const double* p, bool strict,
                               uint8_t* out);
  void (*min_coord)(const double* rows, size_t n, int dims, double* out);
};

// --- scalar / compiler-vectorizable blocked loops ---------------------------

bool ScalarAnyDominates(const double* blocks, size_t n, int k, const double* q,
                        bool strict) {
  const size_t num_blocks = (n + kW - 1) / kW;
  for (size_t b = 0; b < num_blocks; ++b) {
    const double* block = blocks + b * kW * static_cast<size_t>(k);
    // Padding and killed lanes are +inf: they fail `<= q[d]` and `< q[d]`
    // on every dimension, so all 8 lanes can run unconditionally.
    uint8_t dom[kW];
    uint8_t lt[kW];
    for (size_t l = 0; l < kW; ++l) {
      dom[l] = 1;
      lt[l] = 0;
    }
    for (int d = 0; d < k; ++d) {
      const double* row = block + static_cast<size_t>(d) * kW;
      const double qd = q[d];
      uint8_t live = 0;
      if (strict) {
        for (size_t l = 0; l < kW; ++l) {
          dom[l] &= static_cast<uint8_t>(row[l] < qd);
          live |= dom[l];
        }
      } else {
        for (size_t l = 0; l < kW; ++l) {
          dom[l] &= static_cast<uint8_t>(row[l] <= qd);
          lt[l] |= static_cast<uint8_t>(row[l] < qd);
          live |= dom[l];
        }
      }
      if (!live) {
        break;
      }
    }
    uint8_t any = 0;
    for (size_t l = 0; l < kW; ++l) {
      any |= static_cast<uint8_t>(dom[l] & (strict ? 1 : lt[l]));
    }
    if (any) {
      return true;
    }
  }
  return false;
}

void ScalarDominatedMask(const double* blocks, size_t n, int k,
                         const double* p, bool strict, uint8_t* out_masks) {
  const size_t num_blocks = (n + kW - 1) / kW;
  for (size_t b = 0; b < num_blocks; ++b) {
    const double* block = blocks + b * kW * static_cast<size_t>(k);
    uint8_t dom[kW];
    uint8_t gt[kW];
    for (size_t l = 0; l < kW; ++l) {
      dom[l] = 1;
      gt[l] = 0;
    }
    for (int d = 0; d < k; ++d) {
      const double* row = block + static_cast<size_t>(d) * kW;
      const double pd = p[d];
      uint8_t live = 0;
      if (strict) {
        for (size_t l = 0; l < kW; ++l) {
          dom[l] &= static_cast<uint8_t>(pd < row[l]);
          live |= dom[l];
        }
      } else {
        for (size_t l = 0; l < kW; ++l) {
          dom[l] &= static_cast<uint8_t>(pd <= row[l]);
          gt[l] |= static_cast<uint8_t>(pd < row[l]);
          live |= dom[l];
        }
      }
      if (!live) {
        break;
      }
    }
    uint8_t mask = 0;
    for (size_t l = 0; l < kW; ++l) {
      mask |= static_cast<uint8_t>((dom[l] & (strict ? 1 : gt[l])) << l);
    }
    if (b == num_blocks - 1 && n % kW != 0) {
      mask &= static_cast<uint8_t>((1u << (n % kW)) - 1);
    }
    out_masks[b] = mask;
  }
}

/// Per-row scalar dominance over `k` contiguous doubles; mirrors
/// `Dominates`/`ExtDominates` from dominance.h on the full k-space.
inline bool RowDominates(const double* e, const double* q, int k,
                         bool strict) {
  bool strictly = false;
  for (int d = 0; d < k; ++d) {
    if (strict ? e[d] >= q[d] : e[d] > q[d]) {
      return false;
    }
    if (e[d] < q[d]) {
      strictly = true;
    }
  }
  return strict || strictly;
}

bool ScalarAnyDominatesRows(const double* rows, size_t stride, size_t n,
                            int k, const double* q, bool strict) {
  for (size_t i = 0; i < n; ++i) {
    if (RowDominates(rows + i * stride, q, k, strict)) {
      return true;
    }
  }
  return false;
}

void ScalarDominatedFlagsRows(const double* rows, size_t stride, size_t n,
                              int k, const double* p, bool strict,
                              uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const double* e = rows + i * stride;
    bool strictly = false;
    bool dominates = true;
    for (int d = 0; d < k; ++d) {
      if (strict ? p[d] >= e[d] : p[d] > e[d]) {
        dominates = false;
        break;
      }
      if (p[d] < e[d]) {
        strictly = true;
      }
    }
    out[i] = static_cast<uint8_t>(dominates && (strict || strictly));
  }
}

void ScalarMinCoord(const double* rows, size_t n, int dims, double* out) {
  size_t i = 0;
  // Blocks of 8 rows, reduced dimension-by-dimension so the lane loop is
  // uniform (compiler-vectorizable with gathers) and the reduction order
  // per row matches scalar `MinCoord` exactly.
  for (; i + kW <= n; i += kW) {
    double acc[kW];
    for (size_t l = 0; l < kW; ++l) {
      acc[l] = rows[(i + l) * static_cast<size_t>(dims)];
    }
    for (int d = 1; d < dims; ++d) {
      for (size_t l = 0; l < kW; ++l) {
        const double v = rows[(i + l) * static_cast<size_t>(dims) + d];
        acc[l] = v < acc[l] ? v : acc[l];
      }
    }
    for (size_t l = 0; l < kW; ++l) {
      out[i + l] = acc[l];
    }
  }
  for (; i < n; ++i) {
    const double* row = rows + i * static_cast<size_t>(dims);
    double m = row[0];
    for (int d = 1; d < dims; ++d) {
      m = row[d] < m ? row[d] : m;
    }
    out[i] = m;
  }
}

constexpr KernelTable kScalarTable = {
    DomKernelMode::kScalar,     ScalarAnyDominates,
    ScalarDominatedMask,        ScalarAnyDominatesRows,
    ScalarDominatedFlagsRows,   ScalarMinCoord,
};

// --- AVX2 -------------------------------------------------------------------

#ifdef SKYPEER_HAVE_AVX2_PATH

/// Lower/upper half of one block: lanes [0,4) and [4,8). Templated on
/// strictness because `_mm256_cmp_pd` predicates must be immediates.
template <bool kStrict>
__attribute__((target("avx2"))) inline int BlockDomMaskAvx2(
    const double* block, int k, const double* q) {
  __m256d dom_lo = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  __m256d dom_hi = dom_lo;
  __m256d lt_lo = _mm256_setzero_pd();
  __m256d lt_hi = _mm256_setzero_pd();
  for (int d = 0; d < k; ++d) {
    const double* row = block + static_cast<size_t>(d) * kW;
    const __m256d qd = _mm256_set1_pd(q[d]);
    const __m256d e_lo = _mm256_loadu_pd(row);
    const __m256d e_hi = _mm256_loadu_pd(row + 4);
    if constexpr (kStrict) {
      dom_lo = _mm256_and_pd(dom_lo, _mm256_cmp_pd(e_lo, qd, _CMP_LT_OQ));
      dom_hi = _mm256_and_pd(dom_hi, _mm256_cmp_pd(e_hi, qd, _CMP_LT_OQ));
    } else {
      dom_lo = _mm256_and_pd(dom_lo, _mm256_cmp_pd(e_lo, qd, _CMP_LE_OQ));
      dom_hi = _mm256_and_pd(dom_hi, _mm256_cmp_pd(e_hi, qd, _CMP_LE_OQ));
      lt_lo = _mm256_or_pd(lt_lo, _mm256_cmp_pd(e_lo, qd, _CMP_LT_OQ));
      lt_hi = _mm256_or_pd(lt_hi, _mm256_cmp_pd(e_hi, qd, _CMP_LT_OQ));
    }
    if (_mm256_movemask_pd(dom_lo) == 0 && _mm256_movemask_pd(dom_hi) == 0) {
      return 0;
    }
  }
  if constexpr (!kStrict) {
    dom_lo = _mm256_and_pd(dom_lo, lt_lo);
    dom_hi = _mm256_and_pd(dom_hi, lt_hi);
  }
  return _mm256_movemask_pd(dom_lo) | (_mm256_movemask_pd(dom_hi) << 4);
}

__attribute__((target("avx2"))) bool Avx2AnyDominates(const double* blocks,
                                                      size_t n, int k,
                                                      const double* q,
                                                      bool strict) {
  const size_t num_blocks = (n + kW - 1) / kW;
  for (size_t b = 0; b < num_blocks; ++b) {
    const double* block = blocks + b * kW * static_cast<size_t>(k);
    const int mask = strict ? BlockDomMaskAvx2<true>(block, k, q)
                            : BlockDomMaskAvx2<false>(block, k, q);
    if (mask != 0) {
      return true;
    }
  }
  return false;
}

/// Bit l set when p dominates the block's lane l (reverse direction of
/// BlockDomMaskAvx2: all e >= p and, non-strict, some e > p).
template <bool kStrict>
__attribute__((target("avx2"))) inline int BlockRevDomMaskAvx2(
    const double* block, int k, const double* p) {
  __m256d dom_lo = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  __m256d dom_hi = dom_lo;
  __m256d gt_lo = _mm256_setzero_pd();
  __m256d gt_hi = _mm256_setzero_pd();
  for (int d = 0; d < k; ++d) {
    const double* row = block + static_cast<size_t>(d) * kW;
    const __m256d pd = _mm256_set1_pd(p[d]);
    const __m256d e_lo = _mm256_loadu_pd(row);
    const __m256d e_hi = _mm256_loadu_pd(row + 4);
    if constexpr (kStrict) {
      dom_lo = _mm256_and_pd(dom_lo, _mm256_cmp_pd(e_lo, pd, _CMP_GT_OQ));
      dom_hi = _mm256_and_pd(dom_hi, _mm256_cmp_pd(e_hi, pd, _CMP_GT_OQ));
    } else {
      dom_lo = _mm256_and_pd(dom_lo, _mm256_cmp_pd(e_lo, pd, _CMP_GE_OQ));
      dom_hi = _mm256_and_pd(dom_hi, _mm256_cmp_pd(e_hi, pd, _CMP_GE_OQ));
      gt_lo = _mm256_or_pd(gt_lo, _mm256_cmp_pd(e_lo, pd, _CMP_GT_OQ));
      gt_hi = _mm256_or_pd(gt_hi, _mm256_cmp_pd(e_hi, pd, _CMP_GT_OQ));
    }
    if (_mm256_movemask_pd(dom_lo) == 0 && _mm256_movemask_pd(dom_hi) == 0) {
      return 0;
    }
  }
  if constexpr (!kStrict) {
    dom_lo = _mm256_and_pd(dom_lo, gt_lo);
    dom_hi = _mm256_and_pd(dom_hi, gt_hi);
  }
  return _mm256_movemask_pd(dom_lo) | (_mm256_movemask_pd(dom_hi) << 4);
}

__attribute__((target("avx2"))) void Avx2DominatedMask(const double* blocks,
                                                       size_t n, int k,
                                                       const double* p,
                                                       bool strict,
                                                       uint8_t* out_masks) {
  const size_t num_blocks = (n + kW - 1) / kW;
  for (size_t b = 0; b < num_blocks; ++b) {
    const double* block = blocks + b * kW * static_cast<size_t>(k);
    int mask = strict ? BlockRevDomMaskAvx2<true>(block, k, p)
                      : BlockRevDomMaskAvx2<false>(block, k, p);
    if (b == num_blocks - 1 && n % kW != 0) {
      mask &= (1 << (n % kW)) - 1;
    }
    out_masks[b] = static_cast<uint8_t>(mask);
  }
}

/// Load mask for the trailing `m` (1..3) lanes of a 4-double slice.
__attribute__((target("avx2"))) inline __m256i TailMaskAvx2(int m) {
  return _mm256_set_epi64x(m > 3 ? -1 : 0, m > 2 ? -1 : 0, m > 1 ? -1 : 0,
                           m > 0 ? -1 : 0);
}

/// Dominance of one row-major point over dims-slices of width 4: tests
/// e-dominates-q like RowDominates.
template <bool kStrict>
__attribute__((target("avx2"))) inline bool RowDominatesAvx2(const double* e,
                                                             const double* q,
                                                             int k) {
  int lt_any = 0;
  int d = 0;
  for (; d + 4 <= k; d += 4) {
    const __m256d ev = _mm256_loadu_pd(e + d);
    const __m256d qv = _mm256_loadu_pd(q + d);
    int le;
    if constexpr (kStrict) {
      le = _mm256_movemask_pd(_mm256_cmp_pd(ev, qv, _CMP_LT_OQ));
    } else {
      le = _mm256_movemask_pd(_mm256_cmp_pd(ev, qv, _CMP_LE_OQ));
    }
    if (le != 0xF) {
      return false;
    }
    lt_any |= _mm256_movemask_pd(_mm256_cmp_pd(ev, qv, _CMP_LT_OQ));
  }
  const int rem = k - d;
  if (rem > 0) {
    const __m256i mask = TailMaskAvx2(rem);
    const __m256d ev = _mm256_maskload_pd(e + d, mask);
    const __m256d qv = _mm256_maskload_pd(q + d, mask);
    const int active = (1 << rem) - 1;
    int le;
    if constexpr (kStrict) {
      le = _mm256_movemask_pd(_mm256_cmp_pd(ev, qv, _CMP_LT_OQ));
    } else {
      le = _mm256_movemask_pd(_mm256_cmp_pd(ev, qv, _CMP_LE_OQ));
    }
    if ((le & active) != active) {
      return false;
    }
    lt_any |= _mm256_movemask_pd(_mm256_cmp_pd(ev, qv, _CMP_LT_OQ)) & active;
  }
  return kStrict || lt_any != 0;
}

__attribute__((target("avx2"))) bool Avx2AnyDominatesRows(
    const double* rows, size_t stride, size_t n, int k, const double* q,
    bool strict) {
  if (strict) {
    for (size_t i = 0; i < n; ++i) {
      if (RowDominatesAvx2<true>(rows + i * stride, q, k)) {
        return true;
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (RowDominatesAvx2<false>(rows + i * stride, q, k)) {
        return true;
      }
    }
  }
  return false;
}

__attribute__((target("avx2"))) void Avx2DominatedFlagsRows(
    const double* rows, size_t stride, size_t n, int k, const double* p,
    bool strict, uint8_t* out) {
  if (strict) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(RowDominatesAvx2<true>(p, rows + i * stride, k));
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      out[i] =
          static_cast<uint8_t>(RowDominatesAvx2<false>(p, rows + i * stride, k));
    }
  }
}

// Min-coord stays on the blocked scalar kernel even when AVX2 is
// available: the rows are row-major, so an explicit-SIMD version needs a
// strided gather per dimension (`_mm256_set_pd` of four row pointers),
// which measured consistently *slower* than the compiler-vectorized
// blocked loop at every k <= 16 (bench_dominance_kernels, MinCoord
// rows). The result is bitwise the same either way.
constexpr KernelTable kAvx2Table = {
    DomKernelMode::kAvx2,     Avx2AnyDominates,
    Avx2DominatedMask,        Avx2AnyDominatesRows,
    Avx2DominatedFlagsRows,   ScalarMinCoord,
};

#endif  // SKYPEER_HAVE_AVX2_PATH

// --- NEON -------------------------------------------------------------------

#ifdef SKYPEER_HAVE_NEON_PATH

/// 8-bit lane mask of one block (bit l = lane l dominates q).
inline int BlockDomMaskNeon(const double* block, int k, const double* q,
                            bool strict) {
  uint64x2_t dom[4];
  uint64x2_t lt[4];
  for (int h = 0; h < 4; ++h) {
    dom[h] = vdupq_n_u64(~uint64_t{0});
    lt[h] = vdupq_n_u64(0);
  }
  for (int d = 0; d < k; ++d) {
    const double* row = block + static_cast<size_t>(d) * kW;
    const float64x2_t qd = vdupq_n_f64(q[d]);
    uint64_t live = 0;
    for (int h = 0; h < 4; ++h) {
      const float64x2_t e = vld1q_f64(row + 2 * h);
      if (strict) {
        dom[h] = vandq_u64(dom[h], vcltq_f64(e, qd));
      } else {
        dom[h] = vandq_u64(dom[h], vcleq_f64(e, qd));
        lt[h] = vorrq_u64(lt[h], vcltq_f64(e, qd));
      }
      live |= vgetq_lane_u64(dom[h], 0) | vgetq_lane_u64(dom[h], 1);
    }
    if (!live) {
      return 0;
    }
  }
  int mask = 0;
  for (int h = 0; h < 4; ++h) {
    const uint64x2_t m = strict ? dom[h] : vandq_u64(dom[h], lt[h]);
    mask |= static_cast<int>(vgetq_lane_u64(m, 0) & 1) << (2 * h);
    mask |= static_cast<int>(vgetq_lane_u64(m, 1) & 1) << (2 * h + 1);
  }
  return mask;
}

bool NeonAnyDominates(const double* blocks, size_t n, int k, const double* q,
                      bool strict) {
  const size_t num_blocks = (n + kW - 1) / kW;
  for (size_t b = 0; b < num_blocks; ++b) {
    if (BlockDomMaskNeon(blocks + b * kW * static_cast<size_t>(k), k, q,
                         strict) != 0) {
      return true;
    }
  }
  return false;
}

inline int BlockRevDomMaskNeon(const double* block, int k, const double* p,
                               bool strict) {
  uint64x2_t dom[4];
  uint64x2_t gt[4];
  for (int h = 0; h < 4; ++h) {
    dom[h] = vdupq_n_u64(~uint64_t{0});
    gt[h] = vdupq_n_u64(0);
  }
  for (int d = 0; d < k; ++d) {
    const double* row = block + static_cast<size_t>(d) * kW;
    const float64x2_t pd = vdupq_n_f64(p[d]);
    uint64_t live = 0;
    for (int h = 0; h < 4; ++h) {
      const float64x2_t e = vld1q_f64(row + 2 * h);
      if (strict) {
        dom[h] = vandq_u64(dom[h], vcgtq_f64(e, pd));
      } else {
        dom[h] = vandq_u64(dom[h], vcgeq_f64(e, pd));
        gt[h] = vorrq_u64(gt[h], vcgtq_f64(e, pd));
      }
      live |= vgetq_lane_u64(dom[h], 0) | vgetq_lane_u64(dom[h], 1);
    }
    if (!live) {
      return 0;
    }
  }
  int mask = 0;
  for (int h = 0; h < 4; ++h) {
    const uint64x2_t m = strict ? dom[h] : vandq_u64(dom[h], gt[h]);
    mask |= static_cast<int>(vgetq_lane_u64(m, 0) & 1) << (2 * h);
    mask |= static_cast<int>(vgetq_lane_u64(m, 1) & 1) << (2 * h + 1);
  }
  return mask;
}

void NeonDominatedMask(const double* blocks, size_t n, int k, const double* p,
                       bool strict, uint8_t* out_masks) {
  const size_t num_blocks = (n + kW - 1) / kW;
  for (size_t b = 0; b < num_blocks; ++b) {
    int mask = BlockRevDomMaskNeon(blocks + b * kW * static_cast<size_t>(k),
                                   k, p, strict);
    if (b == num_blocks - 1 && n % kW != 0) {
      mask &= (1 << (n % kW)) - 1;
    }
    out_masks[b] = static_cast<uint8_t>(mask);
  }
}

constexpr KernelTable kNeonTable = {
    DomKernelMode::kNeon,       NeonAnyDominates,
    NeonDominatedMask,          ScalarAnyDominatesRows,
    ScalarDominatedFlagsRows,   ScalarMinCoord,
};

#endif  // SKYPEER_HAVE_NEON_PATH

// --- dispatch ---------------------------------------------------------------

bool EnvForcesScalar() {
  const char* env = std::getenv("SKYPEER_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

const KernelTable* DetectTable() {
  if (EnvForcesScalar()) {
    return &kScalarTable;
  }
#ifdef SKYPEER_HAVE_AVX2_PATH
  if (__builtin_cpu_supports("avx2")) {
    return &kAvx2Table;
  }
#endif
#ifdef SKYPEER_HAVE_NEON_PATH
  return &kNeonTable;
#endif
  return &kScalarTable;
}

std::atomic<const KernelTable*> g_table{nullptr};

const KernelTable* Table() {
  const KernelTable* table = g_table.load(std::memory_order_acquire);
  if (table == nullptr) {
    // Benign race: concurrent first calls detect the same table.
    table = DetectTable();
    g_table.store(table, std::memory_order_release);
  }
  return table;
}

}  // namespace

DomKernelMode ActiveDomKernelMode() { return Table()->mode; }

const char* DomKernelModeName(DomKernelMode mode) {
  switch (mode) {
    case DomKernelMode::kScalar:
      return "scalar";
    case DomKernelMode::kAvx2:
      return "avx2";
    case DomKernelMode::kNeon:
      return "neon";
  }
  return "unknown";
}

void SetForceScalarKernels(bool force) {
  if (force) {
    g_table.store(&kScalarTable, std::memory_order_release);
  } else {
    g_table.store(DetectTable(), std::memory_order_release);
  }
}

bool AnyDominates(const BlockedProjection& w, const double* q, bool strict) {
  if (w.empty()) {
    return false;
  }
  return Table()->any_dominates(w.BlockData(0), w.size(), w.k(), q, strict);
}

void DominatedMask(const BlockedProjection& w, const double* p, bool strict,
                   uint8_t* out_masks) {
  if (w.empty()) {
    return;
  }
  Table()->dominated_mask(w.BlockData(0), w.size(), w.k(), p, strict,
                          out_masks);
}

bool AnyDominatesRows(const double* rows, size_t stride, size_t n, int k,
                      const double* q, bool strict) {
  if (n == 0) {
    return false;
  }
  return Table()->any_dominates_rows(rows, stride, n, k, q, strict);
}

void DominatedFlagsRows(const double* rows, size_t stride, size_t n, int k,
                        const double* p, bool strict, uint8_t* out) {
  if (n == 0) {
    return;
  }
  Table()->dominated_flags_rows(rows, stride, n, k, p, strict, out);
}

void BatchMinCoord(const double* rows, size_t n, int dims, double* out) {
  if (n == 0) {
    return;
  }
  Table()->min_coord(rows, n, dims, out);
}

bool AnyDominatesSummary(const BlockedProjection& w, const double* m,
                         bool strict) {
  // A window point that dominates the min-vector dominates every point of
  // the summarized block: each block point is coordinate-wise >= the
  // min-vector, so non-strict dominance carries over (the strictly-better
  // coordinate stays strictly better) and strict dominance trivially does.
  // Equal-point ties are safe too — `w == m` non-strictly never passes the
  // non-strict test (no strictly smaller coordinate), so a duplicated
  // skyline point can never skip away its own copies. The probe therefore
  // reuses the forward kernel verbatim and inherits its bit-exact
  // scalar/SIMD equivalence.
  return AnyDominates(w, m, strict);
}

}  // namespace skypeer
