#include "skypeer/common/subspace.h"

#include <string>
#include <vector>

namespace skypeer {

std::string Subspace::ToString() const {
  std::string result = "{";
  bool first = true;
  for (int dim : *this) {
    if (!first) {
      result += ",";
    }
    result += std::to_string(dim);
    first = false;
  }
  result += "}";
  return result;
}

std::vector<Subspace> AllSubspaces(int dims) {
  SKYPEER_CHECK(dims >= 1 && dims <= 24);  // 2^24 is already 16M subspaces.
  const uint32_t limit = uint32_t{1} << dims;
  std::vector<Subspace> result;
  result.reserve(limit - 1);
  for (uint32_t mask = 1; mask < limit; ++mask) {
    result.push_back(Subspace(mask));
  }
  return result;
}

std::vector<Subspace> SubspacesOfSize(int dims, int k) {
  SKYPEER_CHECK(dims >= 1 && dims <= 24);
  SKYPEER_CHECK(k >= 1 && k <= dims);
  std::vector<Subspace> result;
  const uint32_t limit = uint32_t{1} << dims;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    if (std::popcount(mask) == k) {
      result.push_back(Subspace(mask));
    }
  }
  return result;
}

}  // namespace skypeer
