#ifndef SKYPEER_COMMON_STATUS_H_
#define SKYPEER_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace skypeer {

/// Error category for fallible library operations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kInternal = 5,
};

/// \brief Result of a fallible operation (configuration validation,
/// network construction, ...). The library does not throw exceptions.
///
/// A `Status` is either OK (the default) or carries a code and a
/// human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Returns the symbolic name of `code` ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// Early-return helper: propagates a non-OK status to the caller.
#define SKYPEER_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::skypeer::Status status_macro_ = (expr);  \
    if (!status_macro_.ok()) {                 \
      return status_macro_;                    \
    }                                          \
  } while (false)

}  // namespace skypeer

#endif  // SKYPEER_COMMON_STATUS_H_
