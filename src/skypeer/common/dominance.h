#ifndef SKYPEER_COMMON_DOMINANCE_H_
#define SKYPEER_COMMON_DOMINANCE_H_

#include <cmath>

#include "skypeer/common/macros.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// \file
/// Dominance tests on raw coordinate rows. Skylines are computed under min
/// conditions on every dimension (paper §3.1): smaller is better, values
/// are assumed non-negative. The domain is NaN-free: a NaN coordinate
/// makes every comparison false, which silently breaks the transitivity
/// every algorithm here relies on (and the early-exit in
/// `CompareDominance`), so debug builds assert against it.

/// True if `p` dominates `q` on subspace `u`: `p[i] <= q[i]` on every
/// dimension of `u`, strictly smaller on at least one.
inline bool Dominates(const double* p, const double* q, Subspace u) {
  bool strictly_smaller = false;
  for (int dim : u) {
    SKYPEER_DCHECK(!std::isnan(p[dim]) && !std::isnan(q[dim]));
    if (p[dim] > q[dim]) {
      return false;
    }
    if (p[dim] < q[dim]) {
      strictly_smaller = true;
    }
  }
  return strictly_smaller;
}

/// True if `p` *ext-dominates* `q` on subspace `u` (paper Definition 1):
/// `p[i] < q[i]` strictly on every dimension of `u`. Ext-dominance is
/// stricter than dominance, so the extended skyline is a superset of the
/// skyline — and (Observation 4) a superset of every subspace skyline.
inline bool ExtDominates(const double* p, const double* q, Subspace u) {
  for (int dim : u) {
    SKYPEER_DCHECK(!std::isnan(p[dim]) && !std::isnan(q[dim]));
    if (p[dim] >= q[dim]) {
      return false;
    }
  }
  return true;
}

/// Three-way dominance relation on subspace `u`, used by divide & conquer.
enum class DomRelation {
  kPDominatesQ,
  kQDominatesP,
  kIncomparable,  ///< Neither dominates (also covers equal points).
};

/// Classifies the dominance relation between `p` and `q` on `u` in a
/// single pass.
inline DomRelation CompareDominance(const double* p, const double* q,
                                    Subspace u) {
  bool p_smaller = false;
  bool q_smaller = false;
  for (int dim : u) {
    SKYPEER_DCHECK(!std::isnan(p[dim]) && !std::isnan(q[dim]));
    if (p[dim] < q[dim]) {
      p_smaller = true;
    } else if (q[dim] < p[dim]) {
      q_smaller = true;
    }
    if (p_smaller && q_smaller) {
      return DomRelation::kIncomparable;
    }
  }
  if (p_smaller && !q_smaller) {
    return DomRelation::kPDominatesQ;
  }
  if (q_smaller && !p_smaller) {
    return DomRelation::kQDominatesP;
  }
  return DomRelation::kIncomparable;
}

}  // namespace skypeer

#endif  // SKYPEER_COMMON_DOMINANCE_H_
