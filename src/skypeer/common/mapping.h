#ifndef SKYPEER_COMMON_MAPPING_H_
#define SKYPEER_COMMON_MAPPING_H_

#include <algorithm>
#include <limits>

#include "skypeer/common/subspace.h"

namespace skypeer {

/// \file
/// The one-dimensional mapping of paper §5.1. Each d-dimensional point `p`
/// maps to `f(p) = min_{i=1..d} p[i]`, computed once over the *full* space
/// D. `dist_U(p) = max_{i in U} p[i]` is the L∞ distance from the origin
/// restricted to the query subspace, recomputed per query.
///
/// Observation 5: if `p_sky` is a skyline point of U then any point with
/// `f(p) > dist_U(p_sky)` is strictly larger than `p_sky` on every
/// dimension of U (since `f(p) <= p[i]` for all i), hence dominated — and
/// even ext-dominated. This justifies the threshold-based scan
/// termination of Algorithms 1 and 2.

/// `f(p)`: minimum coordinate over the full space of dimensionality `dims`.
inline double MinCoord(const double* p, int dims) {
  double result = p[0];
  for (int i = 1; i < dims; ++i) {
    result = std::min(result, p[i]);
  }
  return result;
}

/// `dist_U(p)`: maximum coordinate over the dimensions of `u` (L∞ distance
/// from the origin within the subspace).
inline double DistU(const double* p, Subspace u) {
  double result = -std::numeric_limits<double>::infinity();
  for (int dim : u) {
    result = std::max(result, p[dim]);
  }
  return result;
}

}  // namespace skypeer

#endif  // SKYPEER_COMMON_MAPPING_H_
