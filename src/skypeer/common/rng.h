#ifndef SKYPEER_COMMON_RNG_H_
#define SKYPEER_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace skypeer {

/// \brief Deterministic random source. Every stochastic component of the
/// library (data generation, topology, workloads) takes an explicit seed;
/// equal seeds reproduce identical runs bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Derives an independent child seed; lets components own private
  /// streams without correlating with the parent's subsequent draws.
  uint64_t Fork() {
    // SplitMix64 step over a fresh 64-bit draw.
    uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace skypeer

#endif  // SKYPEER_COMMON_RNG_H_
