#ifndef SKYPEER_COMMON_MACROS_H_
#define SKYPEER_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Lightweight check macros. The library does not use exceptions; invariant
/// violations abort with a diagnostic. `SKYPEER_CHECK` is always active,
/// `SKYPEER_DCHECK` compiles out in NDEBUG builds.

#define SKYPEER_CHECK(condition)                                            \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "SKYPEER_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define SKYPEER_DCHECK(condition) \
  do {                            \
  } while (false)
#else
#define SKYPEER_DCHECK(condition) SKYPEER_CHECK(condition)
#endif

#endif  // SKYPEER_COMMON_MACROS_H_
