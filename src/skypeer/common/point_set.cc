#include "skypeer/common/point_set.h"

#include <algorithm>
#include <string>
#include <vector>

namespace skypeer {

PointSet::PointSet(int dims,
                   std::initializer_list<std::initializer_list<double>> rows)
    : dims_(dims) {
  SKYPEER_CHECK(dims >= 1);
  PointId next_id = 0;
  for (const auto& row : rows) {
    SKYPEER_CHECK(static_cast<int>(row.size()) == dims);
    values_.insert(values_.end(), row.begin(), row.end());
    ids_.push_back(next_id++);
  }
}

void PointSet::AppendAll(const PointSet& other) {
  SKYPEER_CHECK(other.dims() == dims_);
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  ids_.insert(ids_.end(), other.ids_.begin(), other.ids_.end());
}

void PointSet::Permute(const std::vector<size_t>& order) {
  SKYPEER_CHECK(order.size() == size());
  std::vector<double> new_values;
  new_values.reserve(values_.size());
  std::vector<PointId> new_ids;
  new_ids.reserve(ids_.size());
  for (size_t i : order) {
    SKYPEER_DCHECK(i < size());
    const double* row = (*this)[i];
    new_values.insert(new_values.end(), row, row + dims_);
    new_ids.push_back(ids_[i]);
  }
  values_ = std::move(new_values);
  ids_ = std::move(new_ids);
}

bool PointSet::ContainsId(PointId id) const {
  return std::find(ids_.begin(), ids_.end(), id) != ids_.end();
}

std::string PointSet::ToString() const {
  std::string result;
  for (size_t i = 0; i < size(); ++i) {
    result += "#" + std::to_string(ids_[i]) + " (";
    const double* row = (*this)[i];
    for (int d = 0; d < dims_; ++d) {
      if (d > 0) {
        result += ", ";
      }
      result += std::to_string(row[d]);
    }
    result += ")\n";
  }
  return result;
}

}  // namespace skypeer
