#ifndef SKYPEER_COMMON_POINT_SET_H_
#define SKYPEER_COMMON_POINT_SET_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "skypeer/common/macros.h"

namespace skypeer {

/// Identifier of a data point, unique across the whole (distributed)
/// dataset.
using PointId = uint64_t;

/// \brief A set of d-dimensional points in flat row-major storage.
///
/// `PointSet` is the unit of data exchanged between all algorithms in this
/// library: peer datasets, extended skylines, query results. Coordinates
/// are stored contiguously (`num_points * dims` doubles) so that a million
/// points never pay per-point allocation; each point additionally carries a
/// 64-bit id that survives projection, shipping and merging.
///
/// Rows are accessed as raw `const double*` pointers of length `dims()`.
/// Appending may reallocate, invalidating previously obtained row pointers.
class PointSet {
 public:
  /// Creates an empty set of points of dimensionality `dims` (>= 1).
  explicit PointSet(int dims) : dims_(dims) { SKYPEER_CHECK(dims >= 1); }

  /// Convenience constructor for tests/examples:
  /// `PointSet(2, {{1, 2}, {3, 4}})` with ids 0, 1, ....
  PointSet(int dims, std::initializer_list<std::initializer_list<double>> rows);

  PointSet(const PointSet&) = default;
  PointSet& operator=(const PointSet&) = default;
  PointSet(PointSet&&) = default;
  PointSet& operator=(PointSet&&) = default;

  int dims() const { return dims_; }
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// Row pointer of point `i`; valid until the next mutation.
  const double* operator[](size_t i) const {
    SKYPEER_DCHECK(i < size());
    return values_.data() + i * static_cast<size_t>(dims_);
  }

  /// Mutable row pointer of point `i`.
  double* mutable_row(size_t i) {
    SKYPEER_DCHECK(i < size());
    return values_.data() + i * static_cast<size_t>(dims_);
  }

  PointId id(size_t i) const {
    SKYPEER_DCHECK(i < size());
    return ids_[i];
  }

  void Reserve(size_t n) {
    values_.reserve(n * static_cast<size_t>(dims_));
    ids_.reserve(n);
  }

  /// Appends a point given by `dims()` coordinates at `row`.
  void Append(const double* row, PointId id) {
    values_.insert(values_.end(), row, row + dims_);
    ids_.push_back(id);
  }

  /// Appends the point at index `i` of `other` (same dimensionality).
  void AppendFrom(const PointSet& other, size_t i) {
    SKYPEER_DCHECK(other.dims() == dims_);
    Append(other[i], other.id(i));
  }

  /// Appends all points of `other` (same dimensionality).
  void AppendAll(const PointSet& other);

  /// Removes all points, keeping capacity.
  void Clear() {
    values_.clear();
    ids_.clear();
  }

  /// Reorders points so they appear in the order given by `order`
  /// (a permutation of [0, size())).
  void Permute(const std::vector<size_t>& order);

  /// True if some point of the set has id `id` (linear scan; test helper).
  bool ContainsId(PointId id) const;

  /// Ids of all points, in storage order.
  std::vector<PointId> Ids() const { return ids_; }

  /// Raw coordinate storage (size() * dims() doubles, row-major).
  const std::vector<double>& values() const { return values_; }

  /// Debug form listing every point; intended for small sets.
  std::string ToString() const;

 private:
  int dims_;
  std::vector<double> values_;
  std::vector<PointId> ids_;
};

}  // namespace skypeer

#endif  // SKYPEER_COMMON_POINT_SET_H_
