#ifndef SKYPEER_ENGINE_PEER_H_
#define SKYPEER_ENGINE_PEER_H_

#include <utility>

#include "skypeer/algo/extended_skyline.h"
#include "skypeer/algo/result_list.h"
#include "skypeer/common/point_set.h"

namespace skypeer {

/// \brief A simple peer: owns a horizontal partition of the dataset and,
/// during the pre-processing phase (§5.3), computes its local extended
/// skyline for upload to its super-peer.
///
/// After pre-processing the raw partition may be discarded (the protocol
/// never touches it again); `data_size()` keeps the original cardinality
/// for statistics either way.
class Peer {
 public:
  Peer(int id, PointSet data)
      : id_(id), data_size_(data.size()), data_(std::move(data)) {}

  int id() const { return id_; }

  /// Number of points originally held (survives `DiscardData`).
  size_t data_size() const { return data_size_; }

  /// The raw partition; empty after `DiscardData`.
  const PointSet& data() const { return data_; }

  /// Computes the extended skyline of the partition in the full space —
  /// the set this peer sends to its super-peer. Idempotent.
  const ResultList& ComputeExtendedSkyline() {
    if (!ext_computed_) {
      ext_ = ExtendedSkyline(data_);
      ext_computed_ = true;
    }
    return ext_;
  }

  bool ext_computed() const { return ext_computed_; }
  const ResultList& extended_skyline() const { return ext_; }

  /// Releases the raw partition (keeps the extended skyline, if computed).
  void DiscardData() {
    data_ = PointSet(data_.dims());
  }

  /// Releases the extended skyline (after the super-peer merged it).
  void DiscardExtendedSkyline() {
    ext_ = ResultList(ext_.points.dims());
  }

 private:
  int id_;
  size_t data_size_;
  PointSet data_;
  ResultList ext_{1};
  bool ext_computed_ = false;
};

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_PEER_H_
