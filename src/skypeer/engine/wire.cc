#include "skypeer/engine/wire.h"

#include <cstring>

#include "skypeer/common/macros.h"

namespace skypeer {

namespace {

constexpr uint32_t kMagic = 0x534b5950;  // "SKYP"

// Header: magic (4) + subspace mask (4) + point count (8).
constexpr size_t kHeaderBytes = 16;

template <typename T>
void Put(std::vector<uint8_t>* out, T value) {
  uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->insert(out->end(), bytes, bytes + sizeof(T));
}

template <typename T>
bool Get(const uint8_t* data, size_t size, size_t* offset, T* value) {
  if (*offset + sizeof(T) > size) {
    return false;
  }
  std::memcpy(value, data + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

size_t EncodedListBytes(int k, size_t n) {
  // Per point: k projected coordinates + f + id, 8 bytes each.
  return kHeaderBytes + n * ((static_cast<size_t>(k) + 1) * 8 + 8);
}

std::vector<uint8_t> EncodeResultList(const ResultList& list, Subspace u) {
  SKYPEER_CHECK(!u.empty());
  SKYPEER_CHECK(list.f.size() == list.points.size());
  const int k = u.Count();
  std::vector<uint8_t> out;
  out.reserve(EncodedListBytes(k, list.size()));
  Put<uint32_t>(&out, kMagic);
  Put<uint32_t>(&out, u.mask());
  Put<uint64_t>(&out, list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    const double* row = list.points[i];
    for (int dim : u) {
      Put<double>(&out, row[dim]);
    }
    Put<double>(&out, list.f[i]);
    Put<uint64_t>(&out, list.points.id(i));
  }
  SKYPEER_DCHECK(out.size() == EncodedListBytes(k, list.size()));
  return out;
}

Status DecodeResultList(const uint8_t* data, size_t size, WireList* out) {
  SKYPEER_CHECK(out != nullptr);
  size_t offset = 0;
  uint32_t magic = 0;
  if (!Get(data, size, &offset, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad magic");
  }
  uint32_t mask = 0;
  if (!Get(data, size, &offset, &mask) || mask == 0) {
    return Status::InvalidArgument("bad subspace mask");
  }
  uint64_t count = 0;
  if (!Get(data, size, &offset, &count)) {
    return Status::InvalidArgument("truncated header");
  }
  const Subspace u(mask);
  const int k = u.Count();
  if (size != EncodedListBytes(k, count)) {
    return Status::InvalidArgument("size does not match header");
  }
  out->subspace = u;
  out->coords.clear();
  out->coords.reserve(count * k);
  out->f.clear();
  out->f.reserve(count);
  out->ids.clear();
  out->ids.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    for (int c = 0; c < k; ++c) {
      double value = 0.0;
      if (!Get(data, size, &offset, &value)) {
        return Status::InvalidArgument("truncated coordinates");
      }
      out->coords.push_back(value);
    }
    double f = 0.0;
    uint64_t id = 0;
    if (!Get(data, size, &offset, &f) || !Get(data, size, &offset, &id)) {
      return Status::InvalidArgument("truncated point");
    }
    out->f.push_back(f);
    out->ids.push_back(id);
  }
  return Status::OK();
}

}  // namespace skypeer
