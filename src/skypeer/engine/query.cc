#include "skypeer/engine/query.h"

namespace skypeer {

const char* VariantName(Variant variant) {
  switch (variant) {
    case Variant::kNaive:
      return "naive";
    case Variant::kFTFM:
      return "FTFM";
    case Variant::kFTPM:
      return "FTPM";
    case Variant::kRTFM:
      return "RTFM";
    case Variant::kRTPM:
      return "RTPM";
    case Variant::kPipeline:
      return "PIPE";
  }
  return "unknown";
}

bool UsesRefinedThreshold(Variant variant) {
  return variant == Variant::kRTFM || variant == Variant::kRTPM;
}

bool UsesProgressiveMerging(Variant variant) {
  return variant == Variant::kFTPM || variant == Variant::kRTPM;
}

bool SupportsParallelLocalScan(Variant variant) {
  return variant == Variant::kNaive || variant == Variant::kFTFM ||
         variant == Variant::kFTPM;
}

bool RefinesThresholdOnPath(Variant variant) {
  return UsesRefinedThreshold(variant) || variant == Variant::kPipeline;
}

}  // namespace skypeer
