#include "skypeer/engine/experiment.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "skypeer/common/macros.h"
#include "skypeer/common/rng.h"
#include "skypeer/common/thread_pool.h"

namespace skypeer {

std::vector<QueryTask> GenerateWorkload(int dims, int query_dims,
                                        int num_queries, int num_super_peers,
                                        uint64_t seed) {
  SKYPEER_CHECK(query_dims >= 1 && query_dims <= dims);
  SKYPEER_CHECK(num_super_peers >= 1);
  Rng rng(seed);
  std::vector<int> all_dims(dims);
  std::iota(all_dims.begin(), all_dims.end(), 0);

  std::vector<QueryTask> tasks;
  tasks.reserve(num_queries);
  for (int q = 0; q < num_queries; ++q) {
    std::shuffle(all_dims.begin(), all_dims.end(), rng.engine());
    QueryTask task;
    task.subspace = Subspace::FromDims(
        std::vector<int>(all_dims.begin(), all_dims.begin() + query_dims));
    task.initiator_sp = static_cast<int>(rng.UniformInt(0, num_super_peers - 1));
    tasks.push_back(task);
  }
  return tasks;
}

namespace {

// Snapshot the shared physical counters (cache, buffer pool) into the
// aggregate at workload end. These are observability only — in parallel
// workloads their values depend on thread interleaving.
void SnapshotPhysicalCounters(const SkypeerNetwork& network,
                              AggregateMetrics* aggregate) {
  if (const SubspaceScanTraceCache* cache = network.result_cache()) {
    const SubspaceScanTraceCache::Stats stats = cache->stats();
    aggregate->cache_hits = stats.hits;
    aggregate->cache_misses = stats.misses;
    aggregate->cache_evictions = stats.evictions;
    aggregate->cache_entries = stats.entries;
    aggregate->cache_bytes = stats.bytes;
  }
  if (const BufferManager* buffer = network.buffer_manager()) {
    const BufferManager::Stats stats = buffer->stats();
    aggregate->buffer_hits = stats.hits;
    aggregate->buffer_misses = stats.misses;
    aggregate->buffer_evictions = stats.evictions;
    aggregate->buffer_prefetches = stats.prefetches_issued;
  }
}

}  // namespace

AggregateMetrics RunWorkload(SkypeerNetwork* network,
                             const std::vector<QueryTask>& tasks,
                             Variant variant) {
  AggregateMetrics aggregate;
  ThreadPool* pool = network->pool();
  const size_t workers =
      std::min<size_t>(static_cast<size_t>(pool->num_threads()), tasks.size());
  if (workers <= 1 || !network->SupportsParallelWorkloads()) {
    for (const QueryTask& task : tasks) {
      const QueryResult result =
          network->ExecuteQuery(task.subspace, task.initiator_sp, variant);
      aggregate.Add(result.metrics);
    }
    SnapshotPhysicalCounters(*network, &aggregate);
    return aggregate;
  }

  // Queries of a workload are independent (read-only stores; with the
  // cache enabled the replicas share one thread-safe cache whose entries
  // and scan counters are order-independent), so each worker executes a
  // round-robin slice of the tasks against its own store replica.
  // Metrics are aggregated in task order afterwards, making the result
  // identical to the sequential loop.
  std::vector<std::unique_ptr<SkypeerNetwork>> replicas;
  replicas.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    replicas.push_back(network->CloneForQueries());
  }
  std::vector<QueryMetrics> per_task(tasks.size());
  pool->ParallelFor(workers, [&](size_t w) {
    SkypeerNetwork* net = w == 0 ? network : replicas[w - 1].get();
    for (size_t t = w; t < tasks.size(); t += workers) {
      per_task[t] =
          net->ExecuteQuery(tasks[t].subspace, tasks[t].initiator_sp, variant)
              .metrics;
    }
  });
  for (const QueryMetrics& metrics : per_task) {
    aggregate.Add(metrics);
  }
  // Parent counters only: replicas hold private buffer pools, and the
  // cache is the shared instance, so the parent sees the workload total.
  SnapshotPhysicalCounters(*network, &aggregate);
  return aggregate;
}

}  // namespace skypeer
