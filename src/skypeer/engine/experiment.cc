#include "skypeer/engine/experiment.h"

#include <algorithm>
#include <numeric>

#include "skypeer/common/macros.h"
#include "skypeer/common/rng.h"

namespace skypeer {

std::vector<QueryTask> GenerateWorkload(int dims, int query_dims,
                                        int num_queries, int num_super_peers,
                                        uint64_t seed) {
  SKYPEER_CHECK(query_dims >= 1 && query_dims <= dims);
  SKYPEER_CHECK(num_super_peers >= 1);
  Rng rng(seed);
  std::vector<int> all_dims(dims);
  std::iota(all_dims.begin(), all_dims.end(), 0);

  std::vector<QueryTask> tasks;
  tasks.reserve(num_queries);
  for (int q = 0; q < num_queries; ++q) {
    std::shuffle(all_dims.begin(), all_dims.end(), rng.engine());
    QueryTask task;
    task.subspace = Subspace::FromDims(
        std::vector<int>(all_dims.begin(), all_dims.begin() + query_dims));
    task.initiator_sp = static_cast<int>(rng.UniformInt(0, num_super_peers - 1));
    tasks.push_back(task);
  }
  return tasks;
}

AggregateMetrics RunWorkload(SkypeerNetwork* network,
                             const std::vector<QueryTask>& tasks,
                             Variant variant) {
  AggregateMetrics aggregate;
  for (const QueryTask& task : tasks) {
    const QueryResult result =
        network->ExecuteQuery(task.subspace, task.initiator_sp, variant);
    aggregate.Add(result.metrics);
  }
  return aggregate;
}

}  // namespace skypeer
