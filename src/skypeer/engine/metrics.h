#ifndef SKYPEER_ENGINE_METRICS_H_
#define SKYPEER_ENGINE_METRICS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "skypeer/common/macros.h"
#include "skypeer/common/op_counts.h"

namespace skypeer {

/// Measurements of one distributed query execution; the quantities the
/// paper's evaluation plots (§6): computational time (network delays
/// ignored), total response time (4 KB/s links) and transferred volume.
struct QueryMetrics {
  /// Completion time of a run with infinite bandwidth and zero latency —
  /// the critical path of CPU work only.
  double computational_time_s = 0.0;
  /// Completion time under the configured link parameters.
  double total_time_s = 0.0;
  /// Sum of wire bytes over all transmissions (each hop counted).
  uint64_t bytes_transferred = 0;
  /// Number of point-to-point messages.
  uint64_t messages = 0;
  /// Size of the final subspace skyline.
  size_t result_size = 0;
  /// Sum over super-peers of the store points their local scans consumed
  /// (Algorithm 1's `scanned`); the threshold's pruning power shows as
  /// this staying far below the total store size.
  size_t store_points_scanned = 0;
  /// Sum of the local result sizes before merging.
  size_t local_result_points = 0;
  /// Super-peers that processed the query (= all, on a connected
  /// backbone).
  int super_peers_participated = 0;
  /// Machine-independent operation counts summed over all super-peers
  /// (node-id order): dominance tests, R-tree visits, scan steps, merge
  /// pulls, sorts and serialized bytes. Identical across runs, thread
  /// counts and kernel dispatch regardless of the cost-model mode.
  OpCounts ops;

  // --- reliability / fault-injection (reliable protocol only) ----------

  /// True when the answer is a *partial* result: the coverage report
  /// shows unreached super-peers (crashes, give-ups) or the query
  /// deadline fired before every subtree replied. A partial answer is
  /// still the exact skyline of the covered stores — degradation is
  /// reported, never silent.
  bool partial = false;
  /// Super-peers whose local results the answer covers (initiator
  /// included). Equals `super_peers_total` on a fault-free run.
  int super_peers_reached = 0;
  /// Backbone size the coverage is measured against; 0 when the reliable
  /// protocol is disabled.
  int super_peers_total = 0;
  /// Envelope retransmissions across all super-peers (run 1, configured
  /// links).
  uint64_t retransmits = 0;
  /// Hops abandoned after `max_retries` retransmissions.
  uint64_t hops_gave_up = 0;
  /// Messages the fault plan lost in flight (run 1).
  uint64_t messages_dropped = 0;
  /// The coverage report: sorted ids of the super-peers whose local
  /// results the answer covers (empty when the reliable protocol is
  /// disabled). `super_peers_reached` is its size.
  std::vector<int> covered;

  double volume_kb() const { return bytes_transferred / 1024.0; }

  /// Fraction of super-peers the answer covers, in [0, 1]. With the
  /// reliable protocol disabled `super_peers_total` stays 0 (no coverage
  /// report exists); that degenerate case is *defined* as full coverage
  /// 1.0 — legacy runs always complete — rather than dividing by zero.
  double coverage() const {
    return super_peers_total == 0
               ? 1.0
               : static_cast<double>(super_peers_reached) / super_peers_total;
  }
};

/// Statistics of the pre-processing phase (§5.3), reported in Fig. 3(a).
struct PreprocessStats {
  /// Total points across all peers (n).
  size_t total_points = 0;
  /// Sum of peer extended-skyline sizes — what peers transmit upward.
  size_t peer_ext_points = 0;
  /// Sum of merged super-peer store sizes — what super-peers retain.
  size_t super_peer_ext_points = 0;
  /// CPU seconds spent by peers computing local extended skylines.
  /// Measured host time under the measured cost model; deterministic
  /// model seconds under calibrated/unit.
  double peer_cpu_s = 0.0;
  /// CPU seconds spent by super-peers merging.
  double super_peer_cpu_s = 0.0;
  /// Op counts of the peer phase (local extended skylines), summed in
  /// peer order.
  OpCounts peer_ops;
  /// Op counts of the super-peer merge phase, summed in node-id order.
  OpCounts super_peer_ops;

  /// SEL_p: fraction of the dataset transmitted from peers to super-peers.
  double sel_p() const {
    return total_points == 0
               ? 0.0
               : static_cast<double>(peer_ext_points) / total_points;
  }
  /// SEL_sp: fraction of the dataset stored at super-peers after merging.
  double sel_sp() const {
    return total_points == 0
               ? 0.0
               : static_cast<double>(super_peer_ext_points) / total_points;
  }
  /// SEL_sp / SEL_p: survivors of the super-peer merge.
  double sel_ratio() const {
    return peer_ext_points == 0 ? 0.0
                                : static_cast<double>(super_peer_ext_points) /
                                      peer_ext_points;
  }
};

/// \brief A sampled metric: keeps every observation for mean, extrema and
/// percentile reporting (workloads are at most a few hundred queries, so
/// retention is cheap).
class MetricSeries {
 public:
  void Add(double value) { samples_.push_back(value); }

  size_t count() const { return samples_.size(); }

  double sum() const {
    double total = 0.0;
    for (double v : samples_) {
      total += v;
    }
    return total;
  }

  /// Empty series are defined, not UB: mean/min/max all report 0.0 (a
  /// workload of zero queries aggregates to zeros, never NaN).
  double mean() const { return samples_.empty() ? 0.0 : sum() / count(); }

  double min() const {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }

  double max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Percentile by the nearest-rank method; `p` in [0, 100] (CHECKed).
  /// `Percentile(50)` is the median, `Percentile(100)` the maximum, and
  /// `Percentile(0)` — where nearest-rank's ceil(p/100*n) would yield
  /// rank 0 — is defined as the minimum (the rank is clamped to 1). An
  /// empty series reports 0.0, matching mean/min/max.
  double Percentile(double p) const {
    SKYPEER_CHECK(p >= 0.0 && p <= 100.0);
    if (samples_.empty()) {
      return 0.0;
    }
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const size_t rank = static_cast<size_t>(
        std::max(1.0, std::ceil(p / 100.0 * sorted.size())));
    return sorted[rank - 1];
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Aggregation of `QueryMetrics` over a workload: per-metric series with
/// means (the paper reports averages) plus percentiles for tail analysis.
struct AggregateMetrics {
  size_t queries = 0;
  MetricSeries comp_s;
  MetricSeries total_s;
  MetricSeries kb;
  MetricSeries messages;
  MetricSeries result;
  MetricSeries scanned;
  /// Reliability series (all zero when the reliable protocol is off).
  MetricSeries retransmits;
  MetricSeries gave_up;
  MetricSeries coverage;
  size_t partial_queries = 0;
  /// Sum of per-query op counts over the workload.
  OpCounts total_ops;

  // --- out-of-band physical counters ------------------------------------
  // Snapshots of shared structures at workload end, NOT per-query sums:
  // in parallel workloads they depend on thread interleaving, so they are
  // observability only and never enter determinism comparisons.

  /// Per-subspace trace cache counters (zero when the cache is off).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;
  /// Buffer-manager counters (zero in the in-memory store mode).
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;
  uint64_t buffer_evictions = 0;
  uint64_t buffer_prefetches = 0;

  void Add(const QueryMetrics& metrics) {
    ++queries;
    total_ops += metrics.ops;
    comp_s.Add(metrics.computational_time_s);
    total_s.Add(metrics.total_time_s);
    kb.Add(metrics.volume_kb());
    messages.Add(static_cast<double>(metrics.messages));
    result.Add(static_cast<double>(metrics.result_size));
    scanned.Add(static_cast<double>(metrics.store_points_scanned));
    retransmits.Add(static_cast<double>(metrics.retransmits));
    gave_up.Add(static_cast<double>(metrics.hops_gave_up));
    coverage.Add(metrics.coverage());
    if (metrics.partial) {
      ++partial_queries;
    }
  }

  double avg_comp_s() const { return comp_s.mean(); }
  double avg_total_s() const { return total_s.mean(); }
  double avg_kb() const { return kb.mean(); }
  double avg_messages() const { return messages.mean(); }
  double avg_result() const { return result.mean(); }
  double avg_retransmits() const { return retransmits.mean(); }
  double avg_gave_up() const { return gave_up.mean(); }
  double avg_coverage() const { return coverage.mean(); }
};

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_METRICS_H_
