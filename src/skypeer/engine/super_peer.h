#ifndef SKYPEER_ENGINE_SUPER_PEER_H_
#define SKYPEER_ENGINE_SUPER_PEER_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/macros.h"
#include "skypeer/common/op_counts.h"
#include "skypeer/common/status.h"
#include "skypeer/common/subspace.h"
#include "skypeer/engine/cost_model.h"
#include "skypeer/engine/query.h"
#include "skypeer/engine/reliable.h"
#include "skypeer/engine/subspace_cache.h"
#include "skypeer/sim/simulator.h"
#include "skypeer/storage/paged_store.h"
#include "skypeer/storage/store_view.h"

namespace skypeer {

class ThreadPool;

/// \brief A super-peer node: stores the merged extended skyline of its
/// associated peers and executes the SKYPEER protocol (paper Algorithm 3)
/// for all variants plus the naive baseline.
///
/// Pre-processing (§5.3): peers upload their extended skylines via
/// `AddPeerList`; `FinalizePreprocessing` merges them (Algorithm 2 under
/// ext-dominance) into the query-time store, sorted by `f`.
///
/// Query time: on the first copy of a flooded query the super-peer adopts
/// the sender as its parent in the implicit spanning tree, forwards the
/// query to all other neighbors, computes its local subspace skyline
/// (Algorithm 1, threshold-constrained), waits for one reply per
/// forwarded neighbor (flood duplicates answer immediately with an empty
/// reply) and routes results towards the initiator — merged (progressive
/// merging) or bundled unmerged (fixed merging).
///
/// CPU cost of every local computation is measured on the host and charged
/// to the node's virtual clock, so simulated times reflect this
/// implementation's real relative costs.
class SuperPeer : public sim::Node {
 public:
  /// `id` must equal the node's simulator id; `dims` is the data
  /// dimensionality.
  SuperPeer(int id, int dims, const WireModel& wire)
      : id_(id), dims_(dims), wire_(wire), store_(dims) {}

  int id() const { return id_; }

  /// Neighboring super-peer simulator ids (the backbone edges).
  void SetNeighbors(std::vector<int> neighbors) {
    neighbors_ = std::move(neighbors);
  }
  const std::vector<int>& neighbors() const { return neighbors_; }

  // --- pre-processing -------------------------------------------------

  /// Keep the per-peer uploaded lists after merging. Required for
  /// `RemovePeer` (a departure can resurrect points another peer's list
  /// ext-dominated, so the merge must be redone from the retained
  /// inputs). Costs memory proportional to SEL_p; off by default.
  void set_retain_peer_lists(bool retain) { retain_peer_lists_ = retain; }

  /// Registers the extended skyline uploaded by peer `peer_id`.
  void AddPeerList(int peer_id, ResultList list);

  /// Merges all registered peer lists into the store (ext-dominance
  /// Algorithm 2). Returns host CPU seconds spent; when `ops` is
  /// non-null the merge's operation counts are added to it.
  double FinalizePreprocessing(OpCounts* ops = nullptr);

  /// The merged extended skyline this super-peer serves queries from.
  /// Only valid in the default in-memory mode; a paged node keeps its
  /// store out of RAM (use `MaterializeStore` / `StoreSize` instead).
  const ResultList& store() const {
    SKYPEER_CHECK(!paged_store_.valid());
    return store_;
  }

  /// Routes this node's store through `buffer` (page-granular blocked-SoA
  /// layout, `page_size` bytes per page). Must be called before the store
  /// is built; every subsequent build/merge spills through the buffer
  /// manager and scans stream via pinned pages. Results, thresholds and
  /// all operation counts are bit-identical to the in-memory mode.
  void ConfigurePaging(BufferManager* buffer, size_t page_size) {
    SKYPEER_CHECK(buffer != nullptr);
    SKYPEER_CHECK(store_.empty() && !paged_store_.valid());
    buffer_ = buffer;
    page_size_ = page_size;
  }

  /// Page geometry used for logical page charging while the store stays
  /// in memory; must match the `--page-size` a paged run would use so
  /// the two modes bill identical `page_reads`/`page_bytes`.
  void set_page_size(size_t page_size) { page_size_ = page_size; }

  /// Number of rows in the store, valid in both store modes.
  size_t StoreSize() const {
    return paged_store_.valid() ? paged_store_.size() : store_.size();
  }

  /// Decodes the store into an in-memory `ResultList` (both modes) —
  /// snapshot persistence and replica cloning use this instead of
  /// `store()` so they work against paged nodes too.
  ResultList MaterializeStore() const {
    return paged_store_.valid() ? paged_store_.Materialize() : store_;
  }

  /// The store as a scan view: pinned pages when paged, the resident list
  /// otherwise. Page-charging geometry is identical in both modes, and so
  /// is the attached zone-map summary (the paged store carries its own;
  /// resident stores attach `store_summary_`, built by the same shared
  /// function at install time). While a pinned epoch is older than the
  /// current store epoch the view serves the pinned (retired) epoch, so
  /// an in-flight query never observes a churn install.
  StoreView View() const {
    if (scan_epoch_ != store_epoch_) {
      const EpochStore& epoch = retired_.at(scan_epoch_);
      return epoch.paged.valid()
                 ? StoreView(&epoch.paged)
                 : StoreView(&epoch.store, page_size_, &epoch.summary);
    }
    return paged_store_.valid()
               ? StoreView(&paged_store_)
               : StoreView(&store_, page_size_, &store_summary_);
  }

  // --- epoch-versioned stores -------------------------------------------

  /// Epoch of the current store: 0 before the first install, advanced by
  /// one on every `InstallStore` (initial merge, churn maintenance,
  /// snapshot restore).
  uint64_t store_epoch() const { return store_epoch_; }

  /// Pins the current store epoch for an in-flight query and returns it.
  /// Until the matching `UnpinStoreEpoch`, `View()` keeps serving this
  /// epoch even if churn installs newer ones (the pinned store — pages
  /// included, in paged mode — is retired intact, never torn). The trace
  /// cache is keyed by epoch, so pinned-epoch scans never pollute later
  /// epochs' entries.
  uint64_t PinStoreEpoch();

  /// Releases a pin taken by `PinStoreEpoch`. A retired epoch whose last
  /// pin is released is dropped (paged mode frees its pages; page ids are
  /// never recycled, so no stale frame can be read). `View()` reverts to
  /// the current epoch.
  void UnpinStoreEpoch(uint64_t epoch);

  /// Retired epochs still held alive by pins (0 in steady state).
  size_t RetiredEpochCount() const { return retired_.size(); }

  /// Replaces the store wholesale (snapshot restore). The list must be
  /// f-sorted. Clears the result cache and retained peer lists and marks
  /// the node preprocessed.
  void SetStore(ResultList store);

  // --- churn (the paper's §5.3 join protocol + its future-work
  // --- failure handling) -----------------------------------------------

  /// A new peer joins after pre-processing: its extended skyline is
  /// merged *incrementally* into the store (ext-skyline merging is
  /// associative, so no other peer list needs reprocessing — the cheap
  /// join the paper describes). Fails if the id is already present.
  /// When `maintenance_ops` is non-null the merge's logical operation
  /// counts are added to it (identical paged vs resident — maintenance
  /// never charges physical page or materialization work).
  Status JoinPeer(int peer_id, ResultList list,
                  OpCounts* maintenance_ops = nullptr);

  /// Peer departure / failure. Requires `set_retain_peer_lists(true)`
  /// before pre-processing. NotFound if the peer is unknown.
  ///
  /// Default (incremental) path: the departing peer's points are dropped
  /// from the f-sorted store — every survivor provably stays in the final
  /// ext-skyline, a departure only *resurrects* points — and only the
  /// resurrection candidates (surviving peers' retained list points not
  /// in the pre-removal store) are re-merged, seeded against the
  /// survivors under the exact Observation-5 threshold. The result —
  /// points, order, summary — is bit-identical to a full rebuild from the
  /// retained lists (`set_verify_maintenance` checks it against that
  /// oracle). `maintenance_ops` as in `JoinPeer`.
  Status RemovePeer(int peer_id, OpCounts* maintenance_ops = nullptr);

  /// When false, `RemovePeer` falls back to the full rebuild from the
  /// retained lists (the legacy path, kept as the oracle). Default true.
  void set_incremental_maintenance(bool enable) {
    incremental_maintenance_ = enable;
  }

  /// When true, every incremental `RemovePeer` additionally runs the full
  /// rebuild and CHECKs the incremental result bit-identical to it (ids,
  /// coordinates, f-order). Testing aid; default false.
  void set_verify_maintenance(bool verify) { verify_maintenance_ = verify; }

  /// Ids of the peers currently contributing to the store (retained mode
  /// only).
  std::vector<int> RetainedPeerIds() const;

  // --- per-subspace result cache ----------------------------------------

  /// Caches the unconstrained local scan trace per query mask; repeated
  /// queries on the same subspace then replay the trace under the
  /// incoming threshold (exact result, scan count and final threshold,
  /// zero dominance tests) instead of rescanning the store.
  /// Invalidated by churn. The naive baseline never uses it.
  void set_enable_cache(bool enable) { cache_enabled_ = enable; }

  /// Installs a shared result cache (see `SubspaceScanTraceCache`): replica
  /// clones of a network attach the original's cache so a workload warms
  /// one structure regardless of which replica serves a query. Entries of
  /// this node live under its id. Without this call an enabled cache is
  /// created privately on first use.
  void SetResultCache(std::shared_ptr<SubspaceScanTraceCache> cache) {
    cache_ = std::move(cache);
  }

  /// Thread pool the chunked parallel scan uses; nullptr (the default)
  /// resolves `ThreadPool::Global()` at call time (so replacing the
  /// global pool never leaves a dangling pointer here).
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Chunk size of the chunked parallel threshold scan (Algorithm 1 split
  /// over the global thread pool; see `ParallelSortedSkyline`). 0 keeps
  /// the scan sequential. Results, thresholds and scan counts are
  /// identical at any thread count for a fixed chunk size; the scan count
  /// can exceed the sequential scan's for the same store.
  void set_scan_chunk_size(size_t chunk) { scan_chunk_size_ = chunk; }

  /// Enables zone-map block skipping in this node's threshold scans (see
  /// `ThresholdScanOptions::block_skip`): store blocks whose summary
  /// min-vector is dominated by the live window are consumed without
  /// per-point dominance tests, and whole pages of such blocks are never
  /// read. Results, thresholds and scan counts are bit-identical either
  /// way; op counts gain `summary_tests`/`blocks_skipped` and shed the
  /// skipped dominance/scan/page charges. All nodes of a network should
  /// agree on the setting (the network builder wires it uniformly).
  void set_block_skip(bool enable) { block_skip_ = enable; }

  /// Maximum size of the broadcast filter set this node selects when it
  /// initiates a non-naive query (see `SelectFilterSet`): sampled from
  /// its local subspace skyline and attached to the flooded query so
  /// every receiver can seed its scan window. 0 (the default) disables
  /// the filter axis. The merged answer is bit-identical either way —
  /// filter points prune remote candidates the final merge would have
  /// removed anyway.
  void set_filter_set_size(size_t size) { filter_set_size_ = size; }

  // --- query protocol ---------------------------------------------------

  /// Enables the reliable per-hop transport (envelopes, ACKs,
  /// retransmission, rerouting, deadline) for this node's protocol
  /// traffic; all nodes of a network must agree on the setting.
  void SetReliableParams(const ReliableParams& params) { reliable_ = params; }
  const ReliableParams& reliable_params() const { return reliable_; }

  /// Backbone size the initiator measures coverage against (reliable
  /// mode).
  void set_num_super_peers(int n) { num_super_peers_ = n; }

  /// Clears any in-flight query state; call between query executions.
  void ResetQueryState() {
    query_.reset();
    staged_.reset();
  }

  /// Clears *all* per-query protocol state: the query state proper
  /// (`ResetQueryState`), plus the reliable transport's in-flight
  /// envelopes, acknowledgement bookkeeping, duplicate-suppression sets
  /// and counters. `Simulator::Reset` discards pending events and timers;
  /// this is the matching node-side reset the simulator docs require —
  /// call both before re-running a query on the same network.
  void ResetProtocolState();

  /// Counters of the reliable transport since the last
  /// `ResetProtocolState`.
  struct ReliabilityStats {
    /// Envelopes retransmitted after an acknowledgement timeout.
    uint64_t retransmits = 0;
    /// Hops abandoned after `max_retries` retransmissions.
    uint64_t gave_up = 0;
    /// Envelope payloads suppressed as duplicates (retransmit overlap).
    uint64_t duplicates_suppressed = 0;
    /// Deliveries ignored as stale (wrong query id, late reply, post-
    /// completion traffic).
    uint64_t stale_ignored = 0;
    /// Replies rerouted around an unreachable parent.
    uint64_t rerouted = 0;
  };
  const ReliabilityStats& reliability_stats() const { return rstats_; }

  /// Pre-executes the local scan this node would run for a query on
  /// `subspace` under `variant` arriving with `threshold`, measuring its
  /// CPU cost on the executing (worker) thread. When the real query
  /// message arrives with exactly these parameters, `ComputeLocal`
  /// consumes the staged result and charges the recorded cost to the
  /// virtual clock; on any parameter mismatch the scan silently reruns
  /// inline, so staging can never change results or metrics — it only
  /// moves host CPU work off the simulator thread. Safe to call
  /// concurrently on *different* SuperPeer instances (it touches only
  /// this node's store and cache). Cleared by `ResetQueryState`.
  /// `filter` is the broadcast filter set the query will carry (null for
  /// none); the staged scan is only consumed by a query with a matching
  /// filter fingerprint.
  void StageLocalScan(const Subspace& subspace, Variant variant,
                      double threshold,
                      std::shared_ptr<const ResultList> filter = nullptr);

  /// Speculative variant of `StageLocalScan` for the threshold-refining
  /// strategies (RT*M, pipeline): pre-executes the local scan under
  /// `fixed_threshold` — the initiator's threshold, an upper bound on
  /// whatever refined value the protocol will actually deliver — and
  /// records enough state to *reconcile* exactly when the true threshold
  /// arrives. `ComputeLocal` then reproduces the result, final threshold
  /// and scan count the sequential execution under the refined threshold
  /// would have produced, bit-identically:
  ///  - sequential scans record a `ScanTrace` replayed in O(scan length);
  ///  - with the cache enabled the speculative scan warms the shared
  ///    trace cache and the reconcile replays it at the refined value;
  ///  - chunked scans (`set_scan_chunk_size` > 0 and a store larger than
  ///    one chunk) are only consumed on an exact threshold match — their
  ///    per-chunk seeds depend on the initial threshold, so a trace
  ///    replay would diverge — and otherwise rerun inline.
  /// Like `StageLocalScan` this never changes results or simulated
  /// metrics (measure_cpu=false); it only moves host CPU off the
  /// simulator thread. `filter` as in `StageLocalScan`.
  void StageSpeculativeScan(const Subspace& subspace, Variant variant,
                            double fixed_threshold,
                            std::shared_ptr<const ResultList> filter = nullptr);

  /// Threshold the staged scan ended with — for FT*M the value the
  /// initiator floods. Requires a preceding `StageLocalScan`.
  double StagedThreshold() const;

  /// Local result of the staged scan. Requires a preceding
  /// `StageLocalScan` / `StageSpeculativeScan`. The network staging wave
  /// uses the initiator's staged local to construct — content-identically
  /// to what the protocol run will select — the filter set the other
  /// nodes stage under.
  std::shared_ptr<const ResultList> StagedLocal() const;

  void HandleMessage(sim::Simulator* simulator,
                     const sim::Message& message) override;

  /// True once this node (as initiator) produced the final answer.
  bool finished() const { return query_.has_value() && query_->finished; }

  /// The final global subspace skyline (initiator only, after finished).
  const ResultList& final_result() const;

  /// Virtual time at which the final answer was complete.
  double finish_time() const;

  /// Reliable mode, initiator, after finished: true when the answer does
  /// not cover every super-peer (crashes / give-ups / deadline) — the
  /// result is the exact skyline of the covered stores only.
  bool partial() const;

  /// Reliable mode, initiator, after finished: ids of the super-peers
  /// whose local results the answer covers (this node included), sorted.
  std::vector<int> coverage() const;

  /// Per-node counters of the last executed query.
  struct LastQueryStats {
    /// True if this node processed the query (received at least one
    /// copy).
    bool participated = false;
    /// Store points the local scan consumed (all of them for naive).
    size_t scanned = 0;
    /// Size of the local subspace skyline shipped/merged.
    size_t local_result = 0;
    /// Threshold this node's local scan ended with (the value RT*M
    /// forwards); infinity until the node computed.
    double final_threshold = std::numeric_limits<double>::infinity();
    /// Operation counts this node accumulated for the query (scans,
    /// merges, serialization) since the last `ResetProtocolState`.
    OpCounts ops;
  };
  LastQueryStats last_query_stats() const;

  /// When false, no CPU is charged to the virtual clock (useful for
  /// deterministic transfer-only tests). Op counts are accumulated
  /// either way.
  void set_measure_cpu(bool measure) { measure_cpu_ = measure; }

  /// How local computation is converted into virtual CPU seconds: the
  /// measured host time of this run (default), or deterministic
  /// seconds derived from counted operations (calibrated / unit).
  void SetCostModel(const CostModel& model) { cost_ = model; }
  const CostModel& cost_model() const { return cost_; }

 private:
  /// In-flight state of the (single) active query at this node.
  struct QueryState {
    uint64_t query_id = 0;
    Subspace subspace;
    Variant variant = Variant::kFTPM;
    /// Threshold this node computed its local skyline under (after
    /// refinement, for RT*M).
    double threshold = 0.0;
    /// Neighbor the query arrived from (-1 at the initiator).
    int parent = -1;
    bool is_initiator = false;
    /// Replies still outstanding from forwarded neighbors.
    int pending = 0;
    /// Result lists received from children (unmerged). Legacy (non-
    /// reliable) transport only; the reliable path tracks children in
    /// `child_done` / `collected_by_child` instead.
    std::vector<std::shared_ptr<const ResultList>> collected;
    /// This node's local subspace skyline.
    std::shared_ptr<const ResultList> local;
    /// Broadcast filter set travelling with the query (null = none):
    /// selected by the initiator after its own — unfiltered — local scan,
    /// adopted by every receiver before computing.
    std::shared_ptr<const ResultList> filter;
    /// `FilterFingerprint(*filter)`, 0 when `filter` is null. Keys the
    /// staged-scan match and the trace cache.
    uint64_t filter_fp = 0;
    bool finished = false;
    ResultList final{1};
    double finish_time = 0.0;
    /// Store points consumed by the local scan.
    size_t scanned = 0;

    // --- reliable transport ---------------------------------------------
    /// Per forwarded neighbor: false while its reply is outstanding, true
    /// once it replied or its hop was given up. Makes late replies after
    /// a spurious give-up detectable instead of corrupting `pending`.
    std::map<int, bool> child_done;
    /// Non-duplicate child replies keyed by child id — a canonical merge
    /// input order independent of arrival order, so lossy runs merge the
    /// same lists in the same order as fault-free ones.
    std::map<int, std::vector<std::shared_ptr<const ResultList>>>
        collected_by_child;
    /// Rerouted replies folded in as extra data, keyed by origin id.
    std::map<int, std::vector<std::shared_ptr<const ResultList>>> extras;
    /// Super-peers whose local results this node's upward reply covers.
    std::set<int> contributors;
    /// Non-initiator: upward reply already sent (later rerouted arrivals
    /// are relayed to the parent instead of folded locally).
    bool replied = false;
    /// Reroute origins already folded or relayed — each detoured subtree
    /// is processed once per node, which also breaks relay cycles.
    std::set<int> reroutes_handled;
    /// Initiator: the per-query deadline fired before completion.
    bool deadline_fired = false;
    /// Initiator: coverage is short or the deadline fired.
    bool partial = false;
  };

  /// A local scan computed ahead of message delivery by `StageLocalScan`
  /// or `StageSpeculativeScan`.
  struct StagedScan {
    uint32_t mask = 0;
    Variant variant = Variant::kFTPM;
    double threshold_in = 0.0;
    /// Fingerprint of the filter the scan was staged under (0 = none); a
    /// query only consumes the staged result on an exact match.
    uint64_t filter_fp = 0;
    std::shared_ptr<const ResultList> local;
    double threshold_out = 0.0;
    size_t scanned = 0;
    /// Work seconds of the scan as self-measured on the staging thread
    /// (per-chunk work summed for chunked scans — no pool queue wait).
    double cpu_s = 0.0;
    /// Operation counts of the staged scan.
    OpCounts ops;
    /// Staged under an upper-bound threshold; `ComputeLocal` may
    /// reconcile it against any arriving threshold <= `threshold_in`.
    bool speculative = false;
    /// Event log of the speculative sequential scan, replayable under
    /// tighter thresholds. Unset (`has_trace` false) on the cache and
    /// chunked-scan paths.
    bool has_trace = false;
    ScanTrace trace;
  };

  /// One reliably sent envelope awaiting its acknowledgement.
  enum class HopKind { kQuery, kReply, kPipeline };
  struct Outbound {
    HopKind kind = HopKind::kQuery;
    int dst = -1;
    size_t bytes = 0;
    std::shared_ptr<const ReliableEnvelope> envelope;
    int attempts = 0;
    uint64_t timer_id = 0;
    /// Reply hops: the payload (for reroute resends) and the neighbors
    /// already given up on.
    std::shared_ptr<const ReplyMessage> reply;
    std::vector<int> tried;
    /// Pipeline hops: the payload (for Euler-tour skips on give-up).
    std::shared_ptr<const PipelineMessage> pipeline;
  };

  void HandleStart(sim::Simulator* simulator, const StartQueryMessage& start);
  void HandleQuery(sim::Simulator* simulator, const sim::Message& message,
                   const QueryMessage& query);
  void HandleReply(sim::Simulator* simulator, int src,
                   const ReplyMessage& reply);
  void HandlePipeline(sim::Simulator* simulator, int src,
                      const PipelineMessage& message);

  // --- reliable transport ----------------------------------------------

  /// Wraps `payload` in an envelope, sends it to `dst`, and arms the
  /// retransmission timer. `payload_bytes` excludes the envelope framing.
  void SendEnvelope(sim::Simulator* simulator, int dst, size_t payload_bytes,
                    std::shared_ptr<const sim::MessageBody> payload,
                    Outbound hop);
  void HandleEnvelope(sim::Simulator* simulator, const sim::Message& message,
                      const ReliableEnvelope& envelope);
  void HandleAck(sim::Simulator* simulator, const AckMessage& ack);
  void HandleRetransmit(sim::Simulator* simulator,
                        const RetransmitTimer& timer);
  void HandleDeadline(sim::Simulator* simulator, const DeadlineTimer& timer);

  /// A forwarded query's target exhausted its retries: count the child as
  /// done without a contribution (a crashed neighbor never replies).
  void OnChildUnreachable(sim::Simulator* simulator, int child);
  /// A reply's parent hop exhausted its retries: resend via another
  /// backbone edge (the flood is idempotent, alternate paths are safe).
  void RerouteReply(sim::Simulator* simulator, Outbound hop);
  /// A pipeline hop exhausted its retries: skip the crashed branch by
  /// jumping to the next occurrence of this node on the Euler tour.
  void SkipPipelineHop(sim::Simulator* simulator, const Outbound& hop);
  /// A reply that could not travel the spanning tree edge (reroute):
  /// fold it in as extra data or relay it onward.
  void HandleReroutedReply(sim::Simulator* simulator,
                           const ReplyMessage& reply);
  /// Reliable sends of the two protocol reply flavors.
  void SendReplyReliable(sim::Simulator* simulator, int dst,
                         std::shared_ptr<const ReplyMessage> reply,
                         int query_dims, std::vector<int> tried);
  /// Initiator resolution shared by the normal completion path and the
  /// deadline: merges whatever is collected, sets coverage and the
  /// partial flag.
  void FinishInitiator(sim::Simulator* simulator, QueryState* state);
  /// `contributors` is the covered-super-peer list the forwarded message
  /// carries (reliable mode; empty and unused otherwise).
  void ForwardPipeline(sim::Simulator* simulator,
                       const PipelineMessage& previous, double threshold,
                       std::shared_ptr<const ResultList> accumulated,
                       std::vector<int> contributors);

  /// Computes the local subspace skyline under `state->threshold` and
  /// stores it in `state->local`, charging measured CPU. Updates
  /// `state->threshold` to the (possibly lower) final scan threshold.
  /// Consumes a matching staged scan instead of recomputing.
  void ComputeLocal(sim::Simulator* simulator, QueryState* state);

  /// The simulator-free scan core shared by `ComputeLocal` and
  /// `StageLocalScan`: evaluates `subspace` against the store under
  /// `threshold_in` for `variant` (including the cache path) and writes
  /// the resulting list, tightened threshold and scan count. `ops`
  /// receives the scan's operation counts (the cache path reports the
  /// replay's counts only — trace fills are amortized cache warming) and
  /// `cpu_s` the work seconds self-measured on the executing threads
  /// (per-chunk times summed for chunked scans, never pool queue wait).
  /// `filter` / `filter_fp` is the broadcast filter set the scan seeds
  /// its window with (null/0 = none); the fingerprint keys the trace
  /// cache so filtered and unfiltered traces never cross.
  void RunLocalScan(const Subspace& subspace, Variant variant,
                    double threshold_in, const ResultList* filter,
                    uint64_t filter_fp,
                    std::shared_ptr<const ResultList>* local,
                    double* threshold_out, size_t* scanned, OpCounts* ops,
                    double* cpu_s);

  /// Initiator only, after its local scan: selects the broadcast filter
  /// set from `state->local` when `filter_set_size_` > 0 and the variant
  /// is not naive, charging the selection pass to the query's ops.
  void MaybeSelectFilter(sim::Simulator* simulator, QueryState* state);

  /// Accumulates `ops` into the per-query counters and charges the
  /// virtual clock: measured host seconds (`measured_s`) under the
  /// measured cost model, `cost_.Seconds(ops)` under calibrated/unit.
  /// Must run inside a simulator handler when `measure_cpu_` is on.
  void ChargeOps(sim::Simulator* simulator, const OpCounts& ops,
                 double measured_s);

  /// Counts `bytes` as serialization work before a wire send; counted
  /// cost models additionally charge the (deterministic) CPU seconds,
  /// shifting the message's departure time like real marshalling would.
  void ChargeSerialization(sim::Simulator* simulator, size_t bytes);

  /// Floods the query to every neighbor except `state->parent`; sets
  /// `pending`.
  void ForwardQuery(sim::Simulator* simulator, QueryState* state);

  /// All children replied: route upstream (non-initiator) or produce the
  /// final answer (initiator).
  void Complete(sim::Simulator* simulator, QueryState* state);

  void SendReply(sim::Simulator* simulator, int dst, uint64_t query_id,
                 bool duplicate,
                 std::vector<std::shared_ptr<const ResultList>> lists,
                 int query_dims);

  /// Rebuilds `store_` from `peer_lists_` (retained mode). Merge
  /// statistics are added to `stats` when non-null.
  void RebuildStore(ThresholdScanStats* stats = nullptr);

  /// The incremental `RemovePeer` core: given the departing peer's
  /// retained list (already erased from `peer_lists_`), computes the
  /// post-removal store in canonical (f, peer rank, list position) order
  /// — bit-identical to `RebuildStore`'s merge — touching only the
  /// survivors and the resurrection candidates. Logical op counts of the
  /// drop pass, candidate merge and final splice are added to `ops`.
  ResultList RemoveIncremental(const ResultList& departed, OpCounts* ops);

  /// Installs the new store list under the next store epoch: spilled
  /// through the buffer manager in paged mode (dropping the previous
  /// store's pages), kept resident otherwise. `store_` stays a
  /// dims-correct empty list while paged. If the outgoing epoch is
  /// pinned it is retired intact instead of destroyed; `View()` keeps
  /// serving it until the last pin is released.
  void InstallStore(ResultList store);

  /// A retired store epoch kept alive by in-flight query pins: the full
  /// resident-or-paged store state of a superseded `InstallStore`
  /// generation. Dropped when its last pin is released (`~PagedStore`
  /// then frees the pages).
  struct EpochStore {
    ResultList store{1};
    PagedStore paged;
    StoreSummary summary;
    int pins = 0;
  };

  int id_;
  int dims_;
  WireModel wire_;
  ResultList store_;
  /// Beyond-RAM store (see ConfigurePaging); invalid in in-memory mode.
  PagedStore paged_store_;
  /// Zone-map summary of the resident store (in-memory mode only — the
  /// paged store owns its own); rebuilt by `InstallStore` on every store
  /// change, so churn rebuilds and snapshot restores stay covered.
  StoreSummary store_summary_;
  /// Epoch of the current store (see store_epoch()).
  uint64_t store_epoch_ = 0;
  /// Epoch `View()` serves: the current epoch in steady state, the
  /// pinned epoch between `PinStoreEpoch` and the last matching unpin.
  uint64_t scan_epoch_ = 0;
  /// Pins on the *current* epoch; moved into the `EpochStore` when an
  /// install retires it.
  int current_pins_ = 0;
  /// Retired epochs still pinned, keyed by epoch id.
  std::map<uint64_t, EpochStore> retired_;
  /// Incremental vs full-rebuild `RemovePeer` (see the setters).
  bool incremental_maintenance_ = true;
  bool verify_maintenance_ = false;
  BufferManager* buffer_ = nullptr;
  /// Page geometry used for logical page charging in *both* modes.
  size_t page_size_ = kDefaultPageSize;
  /// Uploaded peer lists awaiting the merge; emptied by
  /// FinalizePreprocessing unless retention is on.
  std::map<int, ResultList> peer_lists_;
  bool retain_peer_lists_ = false;
  bool preprocessed_ = false;
  std::vector<int> neighbors_;
  std::optional<QueryState> query_;
  std::optional<StagedScan> staged_;
  // Reliable transport state (unused while `reliable_.enabled` is off).
  ReliableParams reliable_;
  int num_super_peers_ = 0;
  uint64_t next_hop_seq_ = 1;
  std::map<uint64_t, Outbound> outbound_;
  /// Envelope deliveries already processed: (src, query id, seq).
  std::set<std::tuple<int, uint64_t, uint64_t>> seen_;
  uint64_t deadline_timer_id_ = 0;
  ReliabilityStats rstats_;
  bool measure_cpu_ = true;
  /// Converts local work into virtual CPU seconds (see SetCostModel).
  CostModel cost_;
  /// Operation counts accumulated since the last `ResetProtocolState`
  /// (both simulation runs of a query charge identically).
  OpCounts query_ops_;
  bool cache_enabled_ = false;
  size_t scan_chunk_size_ = 0;
  /// Zone-map block skipping in local threshold scans (see
  /// set_block_skip).
  bool block_skip_ = false;
  /// Broadcast filter-set size bound this node uses as initiator
  /// (see set_filter_set_size); 0 disables the filter axis.
  size_t filter_set_size_ = 0;
  ThreadPool* pool_ = nullptr;  // nullptr resolves the global pool.
  /// Unconstrained per-subspace skylines under this node's id; possibly
  /// shared with replica clones (see SetResultCache). Created on first
  /// use when `cache_enabled_` and none was installed.
  std::shared_ptr<SubspaceScanTraceCache> cache_;
};

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_SUPER_PEER_H_
