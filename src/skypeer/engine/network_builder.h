#ifndef SKYPEER_ENGINE_NETWORK_BUILDER_H_
#define SKYPEER_ENGINE_NETWORK_BUILDER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/common/point_set.h"
#include "skypeer/common/status.h"
#include "skypeer/common/subspace.h"
#include "skypeer/data/generator.h"
#include "skypeer/engine/metrics.h"
#include "skypeer/engine/query.h"
#include "skypeer/engine/subspace_cache.h"
#include "skypeer/engine/super_peer.h"
#include "skypeer/sim/churn_plan.h"
#include "skypeer/sim/simulator.h"
#include "skypeer/storage/buffer_manager.h"
#include "skypeer/storage/page_layout.h"
#include "skypeer/topology/overlay.h"

namespace skypeer {

class ThreadPool;

/// Configuration of a simulated SKYPEER deployment. Defaults are the
/// paper's (§6): 4000 peers, N_sp = 5% (1% from 20000 peers on), 250
/// 8-dimensional uniform points per peer, DEG_sp = 4, 4 KB/s links.
struct NetworkConfig {
  int num_peers = 4000;
  /// 0 selects the paper's N_sp rule; see DefaultNumSuperPeers.
  int num_super_peers = 0;
  int points_per_peer = 250;
  int dims = 8;
  double degree_sp = 4.0;
  /// Backbone shape: the paper's random graph or a HyperCuP cube.
  BackboneTopology topology = BackboneTopology::kWaxman;
  Distribution distribution = Distribution::kUniform;
  /// Link bandwidth in bytes/second and propagation latency in seconds.
  double bandwidth = 4096.0;
  double latency = 0.0;
  uint64_t seed = 1;
  /// Keep every raw peer partition concatenated for ground-truth
  /// verification (memory-heavy; tests only).
  bool retain_peer_data = false;
  /// Charge measured host CPU to virtual clocks. Disable for
  /// deterministic transfer-only analyses.
  bool measure_cpu = true;
  /// How local computation is priced into virtual CPU seconds: measured
  /// host time of this run (default, noisy but hardware-faithful), or
  /// deterministic seconds derived from counted operations
  /// (`CostModel::Calibrated()` / `Unit()`), which make every simulated
  /// time bit-reproducible across runs, hosts, thread counts and kernel
  /// dispatch. Ignored while `measure_cpu` is false.
  CostModel cost_model;
  /// Support peer churn (JoinPeer / RemovePeer) after pre-processing:
  /// super-peers retain the uploaded per-peer lists (memory ~ SEL_p of
  /// the dataset).
  bool dynamic_membership = false;
  /// Incremental membership maintenance (see `SuperPeer::RemovePeer`): a
  /// departure drops the peer's points from the f-sorted store and
  /// re-merges only the resurrection candidates. false restores the full
  /// rebuild from the retained lists (the legacy path, kept as the
  /// oracle). Store contents, order and every query metric are
  /// bit-identical either way.
  bool incremental_maintenance = true;
  /// Check every incremental removal against the full-rebuild oracle
  /// (CHECK-fails the process on any divergence). Testing aid; implies
  /// full-rebuild cost on every removal.
  bool verify_maintenance = false;
  /// Scheduled churn (requires `dynamic_membership`): size of a seeded
  /// plan of membership events — joins, removals and data replacements
  /// cycling — spread over the first `churn_events` query slots (see
  /// `sim::ChurnPlan::Seeded`). Each event's membership change applies
  /// atomically between queries while its maintenance cost is charged on
  /// the affected super-peer's virtual clock at a seeded instant *inside*
  /// the slot's query, identically in both simulation runs — so churn
  /// shapes simulated times deterministically and composes with any
  /// fault plan. 0 disables scheduled churn (direct JoinPeer/RemovePeer
  /// calls remain available).
  int churn_events = 0;
  /// Mean (seconds) of the exponential in-query instant at which a
  /// scheduled event's maintenance cost lands on the virtual clock.
  double churn_rate = 0.05;
  /// Seed of the churn plan's dedicated RNG stream; 0 derives it from
  /// `seed`. Identical seeds reproduce identical schedules.
  uint64_t churn_seed = 0;
  /// Cache each super-peer's unconstrained local scan trace per query
  /// subspace; repeated queries on a subspace replay the trace under the
  /// incoming threshold — the exact truncated-scan result with zero
  /// dominance tests.
  bool enable_cache = false;
  /// Bound on the number of scan traces the per-subspace cache retains
  /// (least-recently-used eviction, deterministic under a fixed query
  /// order). 0 (default) keeps the cache unbounded. Results and
  /// simulated metrics are identical at any cap — an evicted entry is
  /// refilled by the same pure function of (store, subspace, filter).
  size_t cache_max_entries = 0;
  /// Store page size in bytes (power of two in [4 KiB, 1 MiB]). Fixes
  /// the blocked-SoA page geometry used for the *logical*
  /// `page_reads`/`page_bytes` charges in both store modes, and the
  /// physical page size when `buffer_pages` > 0.
  size_t page_size = kDefaultPageSize;
  /// Beyond-RAM super-peer stores: when > 0 (minimum 2), every
  /// super-peer spills its f-sorted store to disk pages in the paged
  /// blocked-SoA layout and scans stream through a shared pinning buffer
  /// manager of this many frames, with deterministic read-ahead on the
  /// network's pool. Results, thresholds and every metric (operation
  /// counts included) are bit-identical to the in-memory default (0);
  /// only physical pool statistics (hits/misses/evictions) differ.
  size_t buffer_pages = 0;
  /// Chunk size of the chunked parallel threshold scan at super-peers
  /// (`ParallelSortedSkyline`): local scans over stores larger than one
  /// chunk split into contiguous chunks executed on the global thread
  /// pool and merged. 0 keeps Algorithm 1 sequential. Results, simulated
  /// times, volume and messages are identical either way; only
  /// `store_points_scanned` may differ from the sequential scan's count
  /// (deterministically, for a fixed chunk size).
  size_t scan_chunk_size = 0;
  /// Zone-map block skipping in every super-peer's threshold scans (see
  /// `ThresholdScanOptions::block_skip`): 8-wide store blocks whose
  /// summary min-vector is dominated by the live scan window are consumed
  /// without per-point dominance tests, and pages made only of such
  /// blocks are never read in paged mode. Results, thresholds, scan
  /// counts, volume and messages are bit-identical either way; op counts
  /// gain `summary_tests`/`blocks_skipped` and shed the skipped
  /// dominance/scan/page charges — identically across store modes,
  /// thread counts and kernels. Off by default.
  bool block_skip = false;
  /// Speculative staged parallelism for the threshold-refining variants
  /// (RT*M and the pipeline), whose local scans otherwise execute
  /// strictly sequentially along the routing path: every non-initiator
  /// super-peer pre-scans concurrently under the initiator's fixed
  /// threshold (an upper bound on any refined value) and the result is
  /// reconciled exactly when the true refined threshold arrives. Results,
  /// volume, messages and simulated times (measure_cpu=false) are
  /// bit-identical to the sequential execution at any thread count; only
  /// host wall-clock time changes. No effect on naive/FT*M (which PR 1's
  /// non-speculative staging already parallelizes) or below 2 threads.
  bool speculative_rt = false;
  /// Sampled filter-point broadcast (communication-optimal axis): the
  /// initiator attaches at most this many points of its local subspace
  /// skyline — the per-dimension minima plus an even f-rank sample (see
  /// algo/filter_set.h) — to the flooded query, and every receiving
  /// super-peer seeds its scan window with them before scanning. Filter
  /// points prune local results that the final merge would discard
  /// anyway, so the answer stays bit-identical to the unfiltered run for
  /// every variant, while ext-SKY shipping volume drops. Filter bytes are
  /// charged to query volume (`WireModel::FilterBytes`). 0 (default)
  /// disables the filter; naive ignores it (it floods before the
  /// initiator computes anything to sample from).
  size_t filter_set_size = 0;
  /// Worker threads scoped to this network: staging waves, preprocessing
  /// and chunked scans of this instance run on a private pool of this
  /// size instead of the process-wide `ThreadPool::Global()`. 0 (default)
  /// keeps using the global pool; 1 forces this network sequential
  /// regardless of the global setting. Replica clones share the parent's
  /// pool.
  int threads = 0;
  WireModel wire;

  // --- fault injection + reliable query protocol ------------------------

  /// Run the query protocol over the reliable per-hop transport:
  /// envelopes with per-hop acknowledgements, timer-driven retransmission
  /// with exponential backoff, duplicate suppression, rerouting around
  /// unreachable neighbors and graceful partial results with a coverage
  /// report. Required whenever faults below can lose messages.
  bool reliable = false;
  /// Seed of the fault plan's dedicated RNG stream; 0 derives it from
  /// `seed`. Identical seeds reproduce identical fault patterns.
  uint64_t fault_seed = 0;
  /// Probability that any transmission is lost in flight. Requires
  /// `reliable`.
  double drop_prob = 0.0;
  /// Uniform extra delay in [0, delay_jitter) seconds added to every
  /// arrival (may reorder deliveries across links).
  double delay_jitter = 0.0;
  /// Reliable transport: base acknowledgement timeout (seconds) before a
  /// hop retransmits; backs off exponentially per attempt.
  double ack_timeout = 0.25;
  /// Reliable transport: retransmissions before a hop is abandoned and
  /// recovery (child write-off / reply reroute / pipeline skip) kicks in.
  int max_retries = 8;
  /// Reliable transport: initiator deadline (seconds of virtual time per
  /// run); when it fires the initiator answers with whatever subtree
  /// results arrived, flagged partial. 0 disables the deadline.
  double query_deadline = 0.0;
  /// Super-peers crashed from time 0 for every query (never deliver,
  /// never reply). Requires `reliable`.
  std::vector<int> crashed_sps;
};

/// Outcome of one distributed query: the exact global subspace skyline
/// plus the measured costs.
struct QueryResult {
  ResultList skyline{1};
  QueryMetrics metrics;
};

/// \brief A fully materialized SKYPEER network: topology, super-peer
/// nodes, generated data, and the event simulator — the library's main
/// entry point.
///
/// Lifecycle: construct, `Preprocess()` once (peers compute and upload
/// extended skylines; super-peers merge), then `ExecuteQuery` any number
/// of times. Each query runs twice under the hood — once with configured
/// links for total time/volume, once with infinite bandwidth for the
/// computational-time critical path (the two measurements of §6).
class SkypeerNetwork {
 public:
  /// Checks a configuration without building anything.
  static Status Validate(const NetworkConfig& config);

  /// Builds topology and nodes. `config` must validate.
  explicit SkypeerNetwork(const NetworkConfig& config);

  /// Out-of-line so `owned_pool_` can destroy the forward-declared
  /// `ThreadPool`.
  ~SkypeerNetwork();

  /// Runs the pre-processing phase (§5.3). Call exactly once.
  PreprocessStats Preprocess();

  /// Installs externally produced stores (snapshot restore; see
  /// engine/persistence.h), one f-sorted list per super-peer, and marks
  /// the network query-ready. Ground truth and churn remain unavailable.
  Status AdoptStores(std::vector<ResultList> stores);

  bool preprocessed() const { return preprocessed_; }

  /// Executes a subspace skyline query from the given initiator
  /// super-peer under the chosen strategy. Requires `Preprocess()`.
  ///
  /// When the global thread pool (see common/thread_pool.h) has more than
  /// one thread and the variant's local scans are threshold-independent
  /// (naive, FT*M), the per-super-peer scans are staged concurrently
  /// before the simulator replays the protocol. Results and simulated
  /// metrics are identical to the sequential execution — only host
  /// wall-clock time changes.
  QueryResult ExecuteQuery(Subspace subspace, int initiator_sp,
                           Variant variant);

  /// Builds a query-serving replica of this preprocessed network: same
  /// configuration and overlay, stores copied via `AdoptStores`. Used by
  /// parallel workload drivers to execute independent queries
  /// concurrently; churn and ground truth stay with the original.
  std::unique_ptr<SkypeerNetwork> CloneForQueries() const;

  /// True once a workload batch may be distributed over
  /// `CloneForQueries` replicas with bit-identical aggregates — i.e. the
  /// network is preprocessed and no churn plan is installed. The
  /// per-subspace cache no longer restricts this: replicas share one
  /// thread-safe cache whose entries (scan traces) are pure functions of
  /// (store, subspace, epoch), and the trace replay answering a query is
  /// identical on hit and miss, so aggregates do not depend on query
  /// order. A churn plan *does* restrict it: events ride on query slots,
  /// so the workload must execute serially on this network for every
  /// query to see the membership state its slot prescribes.
  bool SupportsParallelWorkloads() const {
    return preprocessed_ && churn_plan_.empty();
  }

  /// The pool this network schedules parallel work on: the private pool
  /// when `config.threads > 0` (or the parent's, for replica clones),
  /// else `ThreadPool::Global()`. Never null.
  ThreadPool* pool() const;

  /// Centralized skyline over the union of all peer data; requires
  /// `retain_peer_data`. The oracle for exactness tests.
  PointSet GroundTruthSkyline(Subspace subspace) const;

  /// Installs (or replaces) the simulator's fault plan, overriding the
  /// one derived from the configuration — the hook tests and drivers use
  /// for time-windowed crashes, link outages and per-link loss. The
  /// plan's RNG is reseeded on every query run, so the same plan yields
  /// the same fault pattern on every execution.
  void SetFaultPlan(sim::FaultPlan plan);

  /// Clears all per-query protocol state — simulator events, timers and
  /// statistics plus every super-peer's query and reliable-transport
  /// state. Query execution does this implicitly before each run; call it
  /// when driving the simulator directly between executions.
  void ResetProtocolState();

  // --- churn (requires `dynamic_membership`) ----------------------------

  /// A new peer joins under `super_peer` with the given raw dataset
  /// (points are re-identified to stay globally unique). The peer's
  /// extended skyline is computed and merged incrementally into the
  /// super-peer's store. Returns the new peer's id via `out_peer_id`
  /// (optional). When `maintenance_ops` is non-null the super-peer
  /// merge's logical operation counts are added to it.
  Status JoinPeer(int super_peer, PointSet data, int* out_peer_id = nullptr,
                  OpCounts* maintenance_ops = nullptr);

  /// Peer departure or failure: the owning super-peer drops the peer's
  /// contribution from its store — incrementally by default, or by full
  /// rebuild under `incremental_maintenance = false` (see
  /// `SuperPeer::RemovePeer`); retained ground-truth data is updated
  /// accordingly. `maintenance_ops` as in `JoinPeer`.
  Status RemovePeer(int peer_id, OpCounts* maintenance_ops = nullptr);

  /// Replaces a peer's dataset in place (departure + rejoin under the
  /// same super-peer): the update path for peers whose local data
  /// changed. The peer is re-identified. `maintenance_ops` as in
  /// `JoinPeer`.
  Status ReplacePeerData(int peer_id, PointSet data,
                         OpCounts* maintenance_ops = nullptr);

  // --- scheduled churn (requires `dynamic_membership`) ------------------

  /// Installs (or replaces) the churn schedule, overriding the one
  /// derived from the configuration, and restarts the slot counter: the
  /// next `ExecuteQuery` is slot 0. Every event's node must be a valid
  /// super-peer id. Workloads stop parallelizing while a non-empty plan
  /// is installed (see `SupportsParallelWorkloads`).
  void SetChurnPlan(sim::ChurnPlan plan);

  /// The installed churn schedule (empty when none).
  const sim::ChurnPlan& churn_plan() const { return churn_plan_; }

  /// Applies one churn event's membership change now: kJoin generates a
  /// fresh uniform dataset from the event seed and joins it at
  /// `event.node`; kRemove / kReplace pick a seeded victim among the
  /// node's current peers (a deterministic skip, counted in
  /// `churn_stats().skipped`, when it has none). Scheduled execution
  /// calls this between queries; tests replay plans through it to build
  /// reference networks. Logical maintenance ops are added to
  /// `maintenance_ops` when non-null.
  Status ApplyChurnEvent(const sim::ChurnEvent& event,
                         OpCounts* maintenance_ops = nullptr);

  /// Running totals over every churn event applied through
  /// `ApplyChurnEvent` (scheduled execution or direct replay).
  struct ChurnStats {
    uint64_t joins = 0;
    uint64_t removals = 0;
    uint64_t replacements = 0;
    /// Scheduled remove/replace events that found no peer to act on.
    uint64_t skipped = 0;
    /// Logical operation counts of all maintenance work (identical
    /// paged vs resident; incremental vs rebuild differ — that is the
    /// cost the maintenance mode trades).
    OpCounts maintenance_ops;
  };
  const ChurnStats& churn_stats() const { return churn_stats_; }

  const Overlay& overlay() const { return overlay_; }
  const NetworkConfig& config() const { return config_; }
  int num_super_peers() const { return overlay_.num_super_peers(); }
  int num_peers() const { return overlay_.num_peers(); }
  int dims() const { return config_.dims; }
  size_t total_points() const { return total_points_; }
  const SuperPeer& super_peer(int i) const { return *super_peers_[i]; }
  const PointSet& all_data() const { return all_data_; }

  /// The shared buffer manager backing paged stores; nullptr in the
  /// in-memory default. Its statistics are physical (hit/miss/eviction)
  /// and out-of-band — they never feed simulated metrics.
  const BufferManager* buffer_manager() const { return buffer_.get(); }

  /// The shared per-subspace trace cache; nullptr unless `enable_cache`.
  const SubspaceScanTraceCache* result_cache() const {
    return result_cache_.get();
  }

 private:
  struct RunOutcome {
    double completion_s = 0.0;
    uint64_t bytes = 0;
    uint64_t messages = 0;
    /// Reliable mode only (legacy runs always finish completely).
    bool finished = false;
    bool partial = false;
    std::vector<int> coverage;
    uint64_t retransmits = 0;
    uint64_t gave_up = 0;
    uint64_t dropped = 0;
    /// Per-node counters of *this* run (reliable mode reports run 1;
    /// under faults the two runs can realize different fault patterns).
    int participated = 0;
    size_t scanned = 0;
    size_t local_points = 0;
    /// Operation counts summed over all super-peers in node-id order.
    OpCounts ops;
  };

  RunOutcome RunOnce(Subspace subspace, int initiator_sp, Variant variant,
                     const sim::LinkParams& params, ResultList* result);

  /// One maintenance-cost timer riding on the current query (see
  /// `ExecuteQuery`): scheduled identically in both simulation runs.
  struct ChurnTick {
    int node = 0;
    double time = 0.0;
    OpCounts ops;
  };

  NetworkConfig config_;
  Overlay overlay_;
  sim::Simulator simulator_;
  /// Backs every super-peer's paged store (`buffer_pages` > 0 only).
  /// Declared before `super_peers_` so it is destroyed after them — the
  /// stores drop their pages on destruction.
  std::unique_ptr<BufferManager> buffer_;
  std::vector<std::unique_ptr<SuperPeer>> super_peers_;
  /// Private pool when `config_.threads > 0`; replica clones point
  /// `pool_` at the parent's pool instead of owning one.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;  // nullptr resolves the global pool.
  /// Shared with every super-peer (and replica clones) when the cache is
  /// enabled, so one workload warms one structure.
  std::shared_ptr<SubspaceScanTraceCache> result_cache_;
  PointSet all_data_;
  size_t total_points_ = 0;
  bool preprocessed_ = false;
  uint64_t next_query_id_ = 1;
  // Churn bookkeeping (dynamic_membership only).
  int next_peer_id_ = 0;
  PointId next_point_id_ = 0;
  /// peer id -> [first, last) range of its point ids.
  std::map<int, std::pair<PointId, PointId>> peer_point_ranges_;
  /// Scheduled churn (empty = none): the plan, the slot the next query
  /// occupies, the ticks of the in-flight query, and running totals.
  sim::ChurnPlan churn_plan_;
  int churn_slot_ = 0;
  std::vector<ChurnTick> pending_ticks_;
  ChurnStats churn_stats_;
};

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_NETWORK_BUILDER_H_
