#include "skypeer/engine/reliable.h"

#include <algorithm>
#include <cmath>

namespace skypeer {

double RetryTimeout(const ReliableParams& params, int attempt, size_t bytes) {
  double transfer = 0.0;
  if (params.bandwidth_hint > 0.0 && std::isfinite(params.bandwidth_hint)) {
    transfer = 2.0 * static_cast<double>(bytes) / params.bandwidth_hint;
  }
  // Cap the shift: past ~2^20 the timeout is far beyond any simulated
  // deadline anyway and further doubling would only risk overflow.
  const int shift = std::min(attempt, 20);
  return transfer + params.ack_timeout * static_cast<double>(1ULL << shift);
}

}  // namespace skypeer
