#ifndef SKYPEER_ENGINE_EXPERIMENT_H_
#define SKYPEER_ENGINE_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "skypeer/common/subspace.h"
#include "skypeer/engine/metrics.h"
#include "skypeer/engine/network_builder.h"
#include "skypeer/engine/query.h"

namespace skypeer {

/// One query of a workload: a subspace plus a randomly selected initiator
/// super-peer.
struct QueryTask {
  Subspace subspace;
  int initiator_sp = 0;
};

/// Generates the paper's query workload (§6): `num_queries` subspaces of
/// exactly `query_dims` dimensions, each dimension subset equally likely,
/// each query issued from a uniformly random initiator super-peer.
/// Deterministic in `seed`.
std::vector<QueryTask> GenerateWorkload(int dims, int query_dims,
                                        int num_queries, int num_super_peers,
                                        uint64_t seed);

/// Runs every task of the workload under `variant` and averages the
/// metrics. The same task vector can be replayed across variants for a
/// paired comparison.
///
/// When the global thread pool (common/thread_pool.h) has more than one
/// thread and the network's queries are order-independent (no result
/// cache), the tasks are distributed over store replicas and executed
/// concurrently; metrics are still aggregated in task order, so the
/// returned aggregate is identical to the sequential loop's.
AggregateMetrics RunWorkload(SkypeerNetwork* network,
                             const std::vector<QueryTask>& tasks,
                             Variant variant);

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_EXPERIMENT_H_
