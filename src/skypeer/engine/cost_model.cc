#include "skypeer/engine/cost_model.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace skypeer {

const char* CostModelModeName(CostModelMode mode) {
  switch (mode) {
    case CostModelMode::kMeasured:
      return "measured";
    case CostModelMode::kCalibrated:
      return "calibrated";
    case CostModelMode::kUnit:
      return "unit";
  }
  return "?";
}

bool ParseCostModelMode(const std::string& name, CostModelMode* mode) {
  if (name == "measured") {
    *mode = CostModelMode::kMeasured;
  } else if (name == "calibrated") {
    *mode = CostModelMode::kCalibrated;
  } else if (name == "unit") {
    *mode = CostModelMode::kUnit;
  } else {
    return false;
  }
  return true;
}

double CostModel::Seconds(const OpCounts& ops) const {
  return static_cast<double>(ops.dominance_tests) * dominance_test_s +
         static_cast<double>(ops.rtree_node_visits) * rtree_node_visit_s +
         static_cast<double>(ops.scan_steps) * scan_step_s +
         static_cast<double>(ops.merge_pulls) * merge_pull_s +
         static_cast<double>(ops.sort_steps) * sort_step_s +
         static_cast<double>(ops.bytes_serialized) * byte_s +
         static_cast<double>(ops.page_reads) * page_read_s +
         static_cast<double>(ops.page_bytes) * page_byte_s +
         static_cast<double>(ops.summary_tests) * summary_test_s +
         static_cast<double>(ops.blocks_skipped) * block_skip_s;
}

std::string CostModel::ToProfileString() const {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "dominance_test_s=%.6e\n"
                "rtree_node_visit_s=%.6e\n"
                "scan_step_s=%.6e\n"
                "merge_pull_s=%.6e\n"
                "sort_step_s=%.6e\n"
                "byte_s=%.6e\n"
                "page_read_s=%.6e\n"
                "page_byte_s=%.6e\n"
                "summary_test_s=%.6e\n"
                "block_skip_s=%.6e\n",
                dominance_test_s, rtree_node_visit_s, scan_step_s,
                merge_pull_s, sort_step_s, byte_s, page_read_s, page_byte_s,
                summary_test_s, block_skip_s);
  return buffer;
}

bool CostModel::LoadProfileString(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return false;
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || parsed < 0.0) {
      return false;
    }
    if (key == "dominance_test_s") {
      dominance_test_s = parsed;
    } else if (key == "rtree_node_visit_s") {
      rtree_node_visit_s = parsed;
    } else if (key == "scan_step_s") {
      scan_step_s = parsed;
    } else if (key == "merge_pull_s") {
      merge_pull_s = parsed;
    } else if (key == "sort_step_s") {
      sort_step_s = parsed;
    } else if (key == "byte_s") {
      byte_s = parsed;
    } else if (key == "page_read_s") {
      page_read_s = parsed;
    } else if (key == "page_byte_s") {
      page_byte_s = parsed;
    } else if (key == "summary_test_s") {
      summary_test_s = parsed;
    } else if (key == "block_skip_s") {
      block_skip_s = parsed;
    }
    // Unknown keys are ignored for forward compatibility.
  }
  return true;
}

}  // namespace skypeer
