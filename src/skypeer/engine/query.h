#ifndef SKYPEER_ENGINE_QUERY_H_
#define SKYPEER_ENGINE_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/common/op_counts.h"
#include "skypeer/common/subspace.h"
#include "skypeer/sim/message.h"

namespace skypeer {

/// The query-processing strategies of the paper (Table 2) plus the naive
/// baseline of §3.2. The two optimization axes are threshold propagation
/// (Fixed: the initiator's threshold is flooded unchanged; Refined: each
/// super-peer tightens it before forwarding) and merging (Fixed: all local
/// results are shipped to the initiator unmerged; Progressive: every
/// super-peer merges what it relays).
enum class Variant {
  kNaive,  ///< No threshold, BNL locally, central BNL merge at P_init.
  kFTFM,   ///< Fixed Threshold, Fixed Merging.
  kFTPM,   ///< Fixed Threshold, Progressive Merging.
  kRTFM,   ///< Refined Threshold, Fixed Merging.
  kRTPM,   ///< Refined Threshold, Progressive Merging.
  /// Extension comparator (not in the paper's Table 2): the query walks
  /// an Euler tour of the backbone spanning tree, each super-peer merging
  /// its local result into one accumulated list (the pipelined style of
  /// Wu et al., EDBT'06, cited in §2). Minimal per-hop state, fully
  /// serial execution.
  kPipeline,
};

const char* VariantName(Variant variant);

/// The paper's five strategies (Table 2 + naive), in presentation order.
/// The pipeline extension is excluded so figure reproductions match the
/// paper; compare against it via `Variant::kPipeline` explicitly.
inline constexpr Variant kAllVariants[] = {Variant::kNaive, Variant::kFTFM,
                                           Variant::kFTPM, Variant::kRTFM,
                                           Variant::kRTPM};

/// True for RTFM / RTPM (paper: "RT*M").
bool UsesRefinedThreshold(Variant variant);
/// True for FTPM / RTPM (paper: "*TPM").
bool UsesProgressiveMerging(Variant variant);
/// True when every super-peer's local scan for `variant` runs under a
/// threshold that is known before the flood reaches it — infinity for
/// naive, the initiator's value for FT*M — so the scans can be staged
/// concurrently before the simulation replays the protocol. RT*M and the
/// pipeline refine the threshold along the routing path, which makes
/// their scans inherently sequential.
bool SupportsParallelLocalScan(Variant variant);
/// True when `variant` tightens the query threshold along the routing
/// path (RT*M and the pipeline) — the variants whose local scans are
/// threshold-path-dependent and therefore need *speculative* staging
/// (scan under the initiator's fixed threshold, reconcile when the
/// refined value arrives) to run in parallel. Complementary to
/// `SupportsParallelLocalScan` except for naive, which needs neither.
bool RefinesThresholdOnPath(Variant variant);

/// \brief Byte-size model of serialized protocol traffic.
///
/// In memory, points always keep their full `d` coordinates; on the wire a
/// result entry ships only the `k` queried coordinates, its `f(p)` value
/// (needed by receivers to merge in sorted order) and its id. The volume
/// measurements of Figs. 3(c,d), 4(a,c,e,f) derive from this model.
struct WireModel {
  size_t coord_bytes = 8;         ///< One coordinate or `f` value.
  size_t id_bytes = 8;            ///< Point identifier.
  size_t query_bytes = 64;        ///< Query message (mask, threshold, ids).
  size_t reply_header_bytes = 32; ///< Fixed reply overhead.
  size_t list_header_bytes = 16;  ///< Per-list framing inside a reply.
  /// One quantized filter-point coordinate (see algo/filter_set.h:
  /// coordinates round up onto a coarse power-of-two grid, so a byte
  /// suffices). Filter points are never emitted, so they ship without id
  /// or f value.
  size_t filter_coord_bytes = 1;
  /// Reliable-transport framing (query id, sequence number) wrapped
  /// around every payload when the reliable protocol is enabled.
  size_t envelope_bytes = 16;
  /// One per-hop acknowledgement (query id, sequence number, headers).
  size_t ack_bytes = 24;

  /// Wire size of one result point for query dimensionality `k`.
  size_t PointBytes(int k) const {
    return (static_cast<size_t>(k) + 1) * coord_bytes + id_bytes;
  }

  /// Wire size of a reply bundling `lists` lists with `points` points in
  /// total, for query dimensionality `k`.
  size_t ReplyBytes(int k, size_t lists, size_t points) const {
    return reply_header_bytes + lists * list_header_bytes +
           points * PointBytes(k);
  }

  /// Wire size of a contributor id vector attached to reliable-mode
  /// replies for the coverage report.
  size_t ContributorBytes(size_t contributors) const {
    return contributors * id_bytes;
  }

  /// Wire size of a broadcast filter set of `points` points attached to a
  /// flooded query (or pipeline hop) for query dimensionality `k`. Filter
  /// points ship as `k` grid-quantized coordinates each (no id, no f —
  /// they are pruners, never result candidates) inside one framed list;
  /// zero points means no filter rides the message and costs nothing. The
  /// compact encoding is what makes the broadcast pay for itself: the
  /// flood re-sends the filter on every backbone edge, so at full result
  /// width (`PointBytes`) the filter would cost more than the reply
  /// points it prunes.
  size_t FilterBytes(int k, size_t points) const {
    return points == 0
               ? 0
               : list_header_bytes +
                     points * static_cast<size_t>(k) * filter_coord_bytes;
  }
};

/// Injected by the engine at the initiator super-peer to start a query.
struct StartQueryMessage : sim::MessageBody {
  uint64_t query_id = 0;
  Subspace subspace;
  Variant variant = Variant::kFTPM;
  /// Pipeline variant only: the Euler-tour walk (adjacent node ids,
  /// starting and ending at the initiator) the query travels.
  std::vector<int> route;
};

/// The travelling query + accumulated result of the pipeline variant.
struct PipelineMessage : sim::MessageBody {
  uint64_t query_id = 0;
  Subspace subspace;
  double threshold = 0.0;
  /// Shared with StartQueryMessage::route.
  std::shared_ptr<const std::vector<int>> route;
  /// Index of the receiving node within `route`.
  size_t position = 0;
  /// Skyline of everything merged so far along the walk.
  std::shared_ptr<const ResultList> accumulated;
  /// Reliable mode: super-peers whose local results `accumulated`
  /// includes (coverage report; hops skipped around crashes are absent).
  std::vector<int> contributors;
  /// Broadcast filter set selected by the initiator (null = none); every
  /// super-peer on the tour seeds its local scan window with it. Shared
  /// immutably, so retransmitted envelopes carry the identical object.
  std::shared_ptr<const ResultList> filter;
};

/// The flooded query `q(U, t)` of Algorithm 3.
struct QueryMessage : sim::MessageBody {
  uint64_t query_id = 0;
  Subspace subspace;
  Variant variant = Variant::kFTPM;
  /// Pruning threshold attached to the query; infinity for naive.
  double threshold = 0.0;
  /// Broadcast filter set selected by the initiator (null = none): a
  /// size-bounded sample of its local subspace skyline that receivers
  /// seed their scan windows with before scanning (see filter_set.h).
  /// Charged to query volume via `WireModel::FilterBytes`. Shared
  /// immutably across all flood hops and retransmissions.
  std::shared_ptr<const ResultList> filter;
};

/// Scheduled-churn maintenance tick (see `sim::ChurnPlan`): fires as a
/// node timer at the churn event's simulated in-query time, at the
/// affected super-peer, carrying the logical operation counts of the
/// membership maintenance that event performed. The handler charges them
/// to the node's virtual clock and per-query ops — identically in both
/// simulation runs of a query, so churn costs shape simulated times
/// deterministically. Deliveries to a crashed node are suppressed by the
/// simulator like any other timer, which is how churn composes with
/// crash windows.
struct ChurnTickMessage : sim::MessageBody {
  OpCounts ops;
};

/// A reply travelling back towards the initiator. Fixed merging bundles
/// the sender's own and all relayed lists unmerged; progressive merging
/// always carries exactly one merged list. Lists are shared immutably so
/// relaying does not copy point data in the simulator's memory (the wire
/// cost is still charged per hop).
struct ReplyMessage : sim::MessageBody {
  uint64_t query_id = 0;
  /// True when the sender had already processed this query through
  /// another neighbor (flood duplicate); carries no lists.
  bool duplicate = false;
  std::vector<std::shared_ptr<const ResultList>> lists;
  /// Reliable mode: super-peers whose local results `lists` covers (the
  /// sender's own subtree); the coverage report is the union of these at
  /// the initiator. Empty for flood duplicates.
  std::vector<int> contributors;
  /// Reliable mode: >= 0 when this reply could not reach its spanning
  /// tree parent and was rerouted via another backbone edge; holds the id
  /// of the node whose parent was unreachable. Receivers fold such
  /// replies in as extra data (or relay them further towards the
  /// initiator) instead of consuming a child-reply slot.
  int reroute_origin = -1;

  size_t TotalPoints() const {
    size_t total = 0;
    for (const auto& list : lists) {
      total += list->size();
    }
    return total;
  }
};

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_QUERY_H_
