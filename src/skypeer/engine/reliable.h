#ifndef SKYPEER_ENGINE_RELIABLE_H_
#define SKYPEER_ENGINE_RELIABLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "skypeer/sim/message.h"

namespace skypeer {

/// \brief Parameters of the reliable per-hop transport (see DESIGN.md,
/// "Fault model and the reliable query protocol").
///
/// With `enabled`, every protocol message (query, reply, pipeline) is
/// wrapped in a `ReliableEnvelope` carrying a per-sender hop sequence
/// number; the receiver acknowledges every envelope (including
/// duplicates, whose payload it suppresses) and the sender retransmits
/// unacknowledged envelopes under exponential backoff until `max_retries`
/// is exhausted. At-least-once delivery plus receiver-side duplicate
/// suppression yields effectively-once payload processing.
struct ReliableParams {
  bool enabled = false;
  /// Base acknowledgement timeout in seconds; attempt k waits
  /// `RetryTimeout(k)` = expected round-trip transfer + ack_timeout·2^k.
  double ack_timeout = 0.25;
  /// Retransmissions before the sender gives a hop up (the original send
  /// plus `max_retries` retries). Give-ups trigger the failure paths:
  /// a forwarded query's target counts as unreachable, replies reroute
  /// via the remaining backbone edges, pipeline hops skip ahead on the
  /// Euler tour.
  int max_retries = 8;
  /// Virtual-time budget of one query at the initiator; when it expires
  /// the initiator completes with whatever it has collected and flags the
  /// result partial. 0 disables the deadline.
  double query_deadline = 0.0;
  /// Expected link bandwidth (bytes/s) used to size retransmission
  /// timeouts so large transfers on slow links are not declared lost
  /// while still in transit. Purely a timeout heuristic — correctness
  /// never depends on it.
  double bandwidth_hint = 4096.0;
};

/// Reliable wrapper around one protocol message. `seq` is unique per
/// sender (monotonic across its lifetime), so (src, query_id, seq)
/// identifies a hop delivery for duplicate suppression.
struct ReliableEnvelope : sim::MessageBody {
  uint64_t query_id = 0;
  uint64_t seq = 0;
  std::shared_ptr<const sim::MessageBody> payload;
};

/// Per-hop acknowledgement of one envelope.
struct AckMessage : sim::MessageBody {
  uint64_t query_id = 0;
  uint64_t seq = 0;
};

/// Self-timer arming one envelope's retransmission.
struct RetransmitTimer : sim::MessageBody {
  uint64_t seq = 0;
};

/// Self-timer bounding one query at the initiator.
struct DeadlineTimer : sim::MessageBody {
  uint64_t query_id = 0;
};

/// Timeout of retransmission attempt `attempt` (0 = the original send)
/// for an envelope of `bytes` wire bytes: twice the expected one-way
/// transfer (envelope out, ack back, queueing slack) plus the backed-off
/// base timeout.
double RetryTimeout(const ReliableParams& params, int attempt, size_t bytes);

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_RELIABLE_H_
