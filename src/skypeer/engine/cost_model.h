#ifndef SKYPEER_ENGINE_COST_MODEL_H_
#define SKYPEER_ENGINE_COST_MODEL_H_

#include <string>

#include "skypeer/common/op_counts.h"

namespace skypeer {

/// How super-peers convert local computation into virtual CPU seconds.
enum class CostModelMode {
  /// Charge measured host wall time (per-thread work time for chunked
  /// scans). Reflects this build's real relative costs but jitters
  /// run-to-run and machine-to-machine.
  kMeasured,
  /// Charge counted operations times calibrated per-op constants.
  /// Bit-reproducible across runs, thread counts, kernel dispatch and
  /// machines.
  kCalibrated,
  /// Charge one second per counted operation. Bit-reproducible; useful
  /// for reading op counts directly off the time metrics in tests.
  kUnit,
};

const char* CostModelModeName(CostModelMode mode);

/// Parses "measured" | "calibrated" | "unit" into `*mode`. Returns false
/// on anything else.
bool ParseCostModelMode(const std::string& name, CostModelMode* mode);

/// \brief Converts `OpCounts` into deterministic virtual CPU seconds.
///
/// The model is a linear cost function: each operation class has a
/// per-op cost in seconds, and `Seconds` returns the dot product with
/// the counts. The committed defaults (`Calibrated()`) were measured
/// once with `skypeer_cli --calibrate` on a 2020s x86-64 server; any
/// fixed profile yields bit-identical metrics everywhere, so the
/// absolute scale only matters for realism, never for reproducibility.
struct CostModel {
  CostModelMode mode = CostModelMode::kMeasured;

  // Per-operation costs in seconds.
  double dominance_test_s = 2.0e-9;
  double rtree_node_visit_s = 2.5e-8;
  double scan_step_s = 1.2e-8;
  double merge_pull_s = 4.0e-8;
  double sort_step_s = 1.0e-8;
  double byte_s = 2.5e-10;
  // Store-page I/O: a fixed per-page cost (seek + request overhead of one
  // buffer-pool fill) plus a per-byte streaming cost. Charged against the
  // *logical* page counts, so paged and in-memory runs bill identically.
  double page_read_s = 2.0e-5;
  double page_byte_s = 5.0e-10;
  // Block-skipping scans: one zone-map probe is a batched dominance test
  // against the whole window (priced like an R-tree node visit), and a
  // skipped block costs only the bookkeeping of jumping it.
  double summary_test_s = 2.5e-8;
  double block_skip_s = 1.0e-9;

  /// Virtual seconds for `ops` under this profile.
  double Seconds(const OpCounts& ops) const;

  /// True when CPU charges come from op counts (calibrated or unit).
  bool counted() const { return mode != CostModelMode::kMeasured; }

  static CostModel Measured() { return CostModel{CostModelMode::kMeasured}; }
  static CostModel Calibrated() {
    return CostModel{CostModelMode::kCalibrated};
  }
  static CostModel Unit() {
    CostModel model{CostModelMode::kUnit};
    model.dominance_test_s = 1.0;
    model.rtree_node_visit_s = 1.0;
    model.scan_step_s = 1.0;
    model.merge_pull_s = 1.0;
    model.sort_step_s = 1.0;
    model.byte_s = 1.0;
    model.page_read_s = 1.0;
    model.page_byte_s = 1.0;
    model.summary_test_s = 1.0;
    model.block_skip_s = 1.0;
    return model;
  }

  /// Serializes the per-op costs as `key=value` lines (the profile file
  /// format).
  std::string ToProfileString() const;

  /// Parses a profile produced by `ToProfileString` (unknown keys and
  /// blank/comment lines are ignored) into this model's constants.
  /// Returns false on a malformed line.
  bool LoadProfileString(const std::string& text);
};

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_COST_MODEL_H_
