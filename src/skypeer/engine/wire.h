#ifndef SKYPEER_ENGINE_WIRE_H_
#define SKYPEER_ENGINE_WIRE_H_

#include <cstdint>
#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/common/status.h"
#include "skypeer/common/subspace.h"
#include "skypeer/engine/query.h"

namespace skypeer {

/// \brief A result list as it would travel on the wire: for each point,
/// only the `k` coordinates of the query subspace, the `f(p)` value
/// (receivers merge in `f` order) and the point id.
///
/// The simulator never serializes for real — payloads are shared in
/// memory and the `WireModel` only *accounts* bytes — but this codec
/// proves the byte model is achievable: `Encode`'s output size equals
/// `WireModel::PointBytes(k) * n` plus the fixed header, and decoding
/// round-trips every value the protocol relies on.
struct WireList {
  Subspace subspace;
  /// Row-major `k = subspace.Count()` projected coordinates per point.
  std::vector<double> coords;
  std::vector<double> f;
  std::vector<PointId> ids;

  size_t size() const { return ids.size(); }
};

/// Serializes the `u`-projection of `list` (which holds full-dimensional
/// points) into a little-endian byte buffer.
std::vector<uint8_t> EncodeResultList(const ResultList& list, Subspace u);

/// Parses a buffer produced by `EncodeResultList`. Returns
/// InvalidArgument on any malformed input (bad magic, truncation,
/// inconsistent sizes).
Status DecodeResultList(const uint8_t* data, size_t size, WireList* out);

/// The exact encoded size of an `n`-point list for query dimensionality
/// `k`; matches `Encode`'s output byte-for-byte and underpins the
/// `WireModel` accounting used by the simulator.
size_t EncodedListBytes(int k, size_t n);

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_WIRE_H_
