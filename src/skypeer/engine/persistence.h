#ifndef SKYPEER_ENGINE_PERSISTENCE_H_
#define SKYPEER_ENGINE_PERSISTENCE_H_

#include <string>

#include "skypeer/common/status.h"
#include "skypeer/engine/network_builder.h"

namespace skypeer {

/// \file
/// Persistence of the pre-processing result. The pre-processing phase
/// (§5.3) is the expensive part of a deployment — peers compute extended
/// skylines over the whole dataset and super-peers merge them. These
/// helpers snapshot every super-peer store to a single binary file (the
/// wire codec of `engine/wire.h`, full-space projection) so experiment
/// harnesses can build once and re-query many times.
///
/// A snapshot is tied to the network shape: dims and super-peer count are
/// embedded and checked on load. Ground-truth data and churn bookkeeping
/// are NOT part of the snapshot; a loaded network answers queries but
/// cannot verify against `GroundTruthSkyline` or accept churn.

/// Writes every super-peer store of a preprocessed network to `path`.
Status SaveStores(const SkypeerNetwork& network, const std::string& path);

/// Restores super-peer stores from `path` into a freshly constructed
/// (not yet preprocessed) network of matching dims and super-peer count,
/// and marks it ready for queries.
Status LoadStores(SkypeerNetwork* network, const std::string& path);

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_PERSISTENCE_H_
