#ifndef SKYPEER_ENGINE_ZIPF_WORKLOAD_H_
#define SKYPEER_ENGINE_ZIPF_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "skypeer/engine/experiment.h"

namespace skypeer {

/// Configuration of a skewed query workload. The paper's workload picks
/// every k-subset of dimensions with uniform probability; real users are
/// not uniform — a few criteria combinations (price+distance, ...) carry
/// most of the load. Zipf-ranked subspace popularity models that and is
/// the regime where the super-peer result cache pays off.
struct ZipfWorkloadConfig {
  int query_dims = 3;
  int num_queries = 100;
  /// Zipf exponent; 0 degenerates to the uniform workload, larger values
  /// concentrate queries on fewer subspaces.
  double exponent = 1.0;
  uint64_t seed = 1;
};

/// Generates `num_queries` tasks whose subspaces are drawn from all
/// C(dims, query_dims) candidates with Zipf(exponent) popularity over a
/// seed-shuffled rank order; initiators are uniform. Deterministic in the
/// seed.
std::vector<QueryTask> GenerateZipfWorkload(int dims,
                                            const ZipfWorkloadConfig& config,
                                            int num_super_peers);

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_ZIPF_WORKLOAD_H_
