#ifndef SKYPEER_ENGINE_SUBSPACE_CACHE_H_
#define SKYPEER_ENGINE_SUBSPACE_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>

#include "skypeer/algo/sorted_skyline.h"

namespace skypeer {

/// \brief Thread-safe cache of unconstrained per-subspace scan traces,
/// keyed by (super-peer id, subspace mask, filter fingerprint).
///
/// The cached value is the event trace of the sequential threshold scan
/// over the owning super-peer's store with no threshold (see
/// `TracedSortedSkyline`); `ReplayScanTrace` then reproduces the exact
/// scan result — survivors, consumed-point count, final threshold — for
/// *any* incoming threshold without a single dominance test. A trace is
/// a pure function of (store, mask, broadcast filter set), so any filler
/// — the query path, a speculative staging worker, or a
/// `CloneForQueries` replica whose store is a copy of the original's —
/// produces bit-identical traces. That makes a single shared instance
/// safe to attach to a whole replica group: whichever thread fills an
/// entry first, every reader replays the same trace, and workload
/// aggregates stay independent of query order.
///
/// The filter fingerprint (`FilterFingerprint`, 0 = no filter) is part of
/// the key because a filtered scan's accept/evict decisions differ from
/// an unfiltered one's: replaying a no-filter trace for a filtered query
/// (or a trace recorded under a different initiator's filter) would
/// silently return the wrong survivors — the same class of inexactness
/// the threshold-constrained cache of PR 3 had. Entries are immutable
/// once published; churn invalidates per super-peer.
class SubspaceScanTraceCache {
 public:
  /// The cached unconstrained scan trace of `super_peer` for `mask` under
  /// the filter identified by `filter_fp` (0 = no filter), or null.
  std::shared_ptr<const ScanTrace> Lookup(int super_peer, uint32_t mask,
                                          uint64_t filter_fp) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find({super_peer, mask, filter_fp});
    return it == entries_.end() ? nullptr : it->second;
  }

  /// Publishes `trace` for (super_peer, mask, filter_fp) and returns the
  /// entry. If another thread published first, its (identical) trace wins
  /// and is returned instead, so concurrent fillers converge on one
  /// object.
  std::shared_ptr<const ScanTrace> Insert(
      int super_peer, uint32_t mask, uint64_t filter_fp,
      std::shared_ptr<const ScanTrace> trace) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = entries_.emplace(
        std::make_tuple(super_peer, mask, filter_fp), std::move(trace));
    return it->second;
  }

  /// Drops every entry of `super_peer` — call when its store changes
  /// (churn, snapshot restore).
  void Invalidate(int super_peer) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase(
        entries_.lower_bound({super_peer, 0, 0}),
        entries_.upper_bound({super_peer, UINT32_MAX, UINT64_MAX}));
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::tuple<int, uint32_t, uint64_t>,
           std::shared_ptr<const ScanTrace>>
      entries_;
};

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_SUBSPACE_CACHE_H_
