#ifndef SKYPEER_ENGINE_SUBSPACE_CACHE_H_
#define SKYPEER_ENGINE_SUBSPACE_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "skypeer/algo/sorted_skyline.h"

namespace skypeer {

/// \brief Thread-safe cache of unconstrained per-subspace scan traces,
/// keyed by (super-peer id, subspace mask).
///
/// The cached value is the event trace of the sequential threshold scan
/// over the owning super-peer's store with no threshold (see
/// `TracedSortedSkyline`); `ReplayScanTrace` then reproduces the exact
/// scan result — survivors, consumed-point count, final threshold — for
/// *any* incoming threshold without a single dominance test. A trace is
/// a pure function of (store, mask), so any filler — the query path, a
/// speculative staging worker, or a `CloneForQueries` replica whose
/// store is a copy of the original's — produces bit-identical traces.
/// That makes a single shared instance safe to attach to a whole replica
/// group: whichever thread fills an entry first, every reader replays
/// the same trace, and workload aggregates stay independent of query
/// order. Entries are immutable once published; churn invalidates per
/// super-peer.
class SubspaceScanTraceCache {
 public:
  /// The cached unconstrained scan trace of `super_peer` for `mask`, or
  /// null.
  std::shared_ptr<const ScanTrace> Lookup(int super_peer,
                                          uint32_t mask) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find({super_peer, mask});
    return it == entries_.end() ? nullptr : it->second;
  }

  /// Publishes `trace` for (super_peer, mask) and returns the entry.
  /// If another thread published first, its (identical) trace wins and is
  /// returned instead, so concurrent fillers converge on one object.
  std::shared_ptr<const ScanTrace> Insert(
      int super_peer, uint32_t mask, std::shared_ptr<const ScanTrace> trace) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] =
        entries_.emplace(std::make_pair(super_peer, mask), std::move(trace));
    return it->second;
  }

  /// Drops every entry of `super_peer` — call when its store changes
  /// (churn, snapshot restore).
  void Invalidate(int super_peer) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase(entries_.lower_bound({super_peer, 0}),
                   entries_.upper_bound({super_peer, UINT32_MAX}));
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<int, uint32_t>, std::shared_ptr<const ScanTrace>>
      entries_;
};

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_SUBSPACE_CACHE_H_
