#ifndef SKYPEER_ENGINE_SUBSPACE_CACHE_H_
#define SKYPEER_ENGINE_SUBSPACE_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>

#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/macros.h"

namespace skypeer {

/// \brief Thread-safe cache of unconstrained per-subspace scan traces,
/// keyed by (super-peer id, store epoch, subspace mask, filter
/// fingerprint).
///
/// The cached value is the event trace of the sequential threshold scan
/// over the owning super-peer's store with no threshold (see
/// `TracedSortedSkyline`); `ReplayScanTrace` then reproduces the exact
/// scan result — survivors, consumed-point count, final threshold — for
/// *any* incoming threshold without a single dominance test. A trace is
/// a pure function of (store, mask, broadcast filter set), so any filler
/// — the query path, a speculative staging worker, or a
/// `CloneForQueries` replica whose store is a copy of the original's —
/// produces bit-identical traces. That makes a single shared instance
/// safe to attach to a whole replica group: whichever thread fills an
/// entry first, every reader replays the same trace, and workload
/// aggregates stay independent of query order.
///
/// The filter fingerprint (`FilterFingerprint`, 0 = no filter) is part of
/// the key because a filtered scan's accept/evict decisions differ from
/// an unfiltered one's: replaying a no-filter trace for a filtered query
/// (or a trace recorded under a different initiator's filter) would
/// silently return the wrong survivors — the same class of inexactness
/// the threshold-constrained cache of PR 3 had. Entries are immutable
/// once published; churn invalidates per super-peer.
///
/// The store epoch is part of the key because churn installs may happen
/// while a pinned query still scans the *previous* epoch of the same
/// super-peer (see `SuperPeer::PinStoreEpoch`): without the epoch, a
/// pinned query's old-store trace fill could serve later queries of the
/// new store. Epochs are never reused, so a stale entry can never alias
/// a live one; `Invalidate` still drops every epoch of a super-peer in
/// one scoped range erase.
///
/// Capacity: `max_entries` > 0 bounds the cache with least-recently-used
/// eviction (a lookup hit or an insert refreshes the entry's recency;
/// the stalest entry is evicted on overflow). Eviction order is a pure
/// function of the lookup/insert sequence, so a fixed query order evicts
/// identically on every run. Because an evicted entry is refilled by the
/// same pure function and the miss path's replay equals the hit path's,
/// simulated metrics are identical at any cap — only the physical
/// hit/miss/eviction counters below differ.
class SubspaceScanTraceCache {
 public:
  /// Physical cache counters — out-of-band observability, never part of
  /// simulated metrics (their values depend on thread interleaving in
  /// parallel workloads).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Entries and trace bytes currently resident.
    uint64_t entries = 0;
    uint64_t bytes = 0;
  };

  /// `max_entries` = 0 keeps the cache unbounded.
  explicit SubspaceScanTraceCache(size_t max_entries = 0)
      : max_entries_(max_entries) {}

  /// The cached unconstrained scan trace of `super_peer`'s store epoch
  /// `epoch` for `mask` under the filter identified by `filter_fp` (0 =
  /// no filter), or null. A hit refreshes the entry's recency.
  std::shared_ptr<const ScanTrace> Lookup(int super_peer, uint64_t epoch,
                                          uint32_t mask,
                                          uint64_t filter_fp) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find({super_peer, epoch, mask, filter_fp});
    if (it == entries_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    TouchLocked(&it->second, it->first);
    return it->second.trace;
  }

  /// Publishes `trace` for (super_peer, epoch, mask, filter_fp) and
  /// returns the entry. If another thread published first, its
  /// (identical) trace wins and is returned instead, so concurrent
  /// fillers converge on one object. Evicts the least-recently-used
  /// entries while over capacity.
  std::shared_ptr<const ScanTrace> Insert(
      int super_peer, uint64_t epoch, uint32_t mask, uint64_t filter_fp,
      std::shared_ptr<const ScanTrace> trace) {
    std::lock_guard<std::mutex> lock(mutex_);
    const Key key{super_peer, epoch, mask, filter_fp};
    const auto [it, inserted] = entries_.emplace(key, Entry{});
    if (inserted) {
      it->second.trace = std::move(trace);
      bytes_ += it->second.trace->ByteSize();
    }
    TouchLocked(&it->second, key);
    if (inserted && max_entries_ > 0) {
      while (entries_.size() > max_entries_) {
        EvictLocked();
      }
    }
    return it->second.trace;
  }

  /// Drops every entry of `super_peer` (all epochs) — call when its
  /// store changes (churn, snapshot restore). Scoped: entries of other
  /// super-peers are untouched.
  void Invalidate(int super_peer) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto begin = entries_.lower_bound({super_peer, 0, 0, 0});
    const auto end = entries_.upper_bound(
        {super_peer, UINT64_MAX, UINT32_MAX, UINT64_MAX});
    for (auto it = begin; it != end; ++it) {
      bytes_ -= it->second.trace->ByteSize();
      recency_.erase(it->second.tick);
    }
    entries_.erase(begin, end);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  size_t max_entries() const { return max_entries_; }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats stats = stats_;
    stats.entries = entries_.size();
    stats.bytes = bytes_;
    return stats;
  }

 private:
  /// (super-peer id, store epoch, subspace mask, filter fingerprint).
  using Key = std::tuple<int, uint64_t, uint32_t, uint64_t>;
  struct Entry {
    std::shared_ptr<const ScanTrace> trace;
    /// Recency stamp; key into `recency_`.
    uint64_t tick = 0;
  };

  void TouchLocked(Entry* entry, const Key& key) const {
    if (entry->tick != 0) {
      recency_.erase(entry->tick);
    }
    entry->tick = ++tick_;
    recency_.emplace(entry->tick, key);
  }

  void EvictLocked() {
    SKYPEER_DCHECK(!recency_.empty());
    const auto oldest = recency_.begin();
    const auto it = entries_.find(oldest->second);
    SKYPEER_DCHECK(it != entries_.end());
    bytes_ -= it->second.trace->ByteSize();
    entries_.erase(it);
    recency_.erase(oldest);
    ++stats_.evictions;
  }

  const size_t max_entries_;
  mutable std::mutex mutex_;
  mutable std::map<Key, Entry> entries_;
  /// tick -> key, ordered stalest-first. Ticks start at 1 (0 = unset).
  mutable std::map<uint64_t, Key> recency_;
  mutable uint64_t tick_ = 0;
  mutable uint64_t bytes_ = 0;
  mutable Stats stats_;
};

}  // namespace skypeer

#endif  // SKYPEER_ENGINE_SUBSPACE_CACHE_H_
