#include "skypeer/engine/super_peer.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/merge.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/macros.h"
#include "skypeer/common/mapping.h"

namespace skypeer {

namespace {

/// Measures host wall time of a computation and charges it to the virtual
/// clock of the node whose handler is running.
class ScopedCpuCharge {
 public:
  ScopedCpuCharge(sim::Simulator* simulator, bool enabled)
      : simulator_(simulator),
        enabled_(enabled),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedCpuCharge() {
    if (enabled_) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_;
      simulator_->ChargeCpu(std::max(0.0, elapsed.count()));
    }
  }

  ScopedCpuCharge(const ScopedCpuCharge&) = delete;
  ScopedCpuCharge& operator=(const ScopedCpuCharge&) = delete;

 private:
  sim::Simulator* simulator_;
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

void SuperPeer::AddPeerList(int peer_id, ResultList list) {
  SKYPEER_CHECK(list.points.dims() == dims_);
  SKYPEER_CHECK(!preprocessed_);
  const bool inserted =
      peer_lists_.emplace(peer_id, std::move(list)).second;
  SKYPEER_CHECK(inserted);  // Duplicate upload.
}

void SuperPeer::RebuildStore() {
  ThresholdScanOptions options;
  options.ext = true;
  std::vector<const ResultList*> inputs;
  inputs.reserve(peer_lists_.size());
  for (const auto& [peer_id, list] : peer_lists_) {
    inputs.push_back(&list);
  }
  // Zero inputs (every peer departed) merge to the empty store.
  store_ =
      MergeSortedSkylines(dims_, inputs, Subspace::FullSpace(dims_), options);
  if (cache_ != nullptr) {
    cache_->Invalidate(id_);
  }
}

double SuperPeer::FinalizePreprocessing() {
  const auto start = std::chrono::steady_clock::now();
  RebuildStore();
  preprocessed_ = true;
  if (!retain_peer_lists_) {
    peer_lists_.clear();
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

void SuperPeer::SetStore(ResultList store) {
  SKYPEER_CHECK(store.points.dims() == dims_);
  SKYPEER_CHECK(store.IsSorted());
  store_ = std::move(store);
  peer_lists_.clear();
  if (cache_ != nullptr) {
    cache_->Invalidate(id_);
  }
  preprocessed_ = true;
}

Status SuperPeer::JoinPeer(int peer_id, ResultList list) {
  if (!preprocessed_) {
    return Status::FailedPrecondition("pre-processing has not run yet");
  }
  if (list.points.dims() != dims_) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  if (retain_peer_lists_) {
    if (peer_lists_.count(peer_id) > 0) {
      return Status::InvalidArgument("peer id already present");
    }
  }
  // Incremental merge (§5.3): ext-skyline merging is associative, so the
  // existing store and the newcomer's list suffice.
  ThresholdScanOptions options;
  options.ext = true;
  std::vector<const ResultList*> inputs = {&store_, &list};
  ResultList merged =
      MergeSortedSkylines(inputs, Subspace::FullSpace(dims_), options);
  store_ = std::move(merged);
  if (retain_peer_lists_) {
    peer_lists_.emplace(peer_id, std::move(list));
  }
  if (cache_ != nullptr) {
    cache_->Invalidate(id_);
  }
  return Status::OK();
}

Status SuperPeer::RemovePeer(int peer_id) {
  if (!retain_peer_lists_) {
    return Status::FailedPrecondition(
        "peer removal requires set_retain_peer_lists(true)");
  }
  if (peer_lists_.erase(peer_id) == 0) {
    return Status::NotFound("unknown peer id");
  }
  // A departure can resurrect points the departed list ext-dominated, so
  // the store is rebuilt from the remaining retained lists.
  RebuildStore();
  return Status::OK();
}

std::vector<int> SuperPeer::RetainedPeerIds() const {
  std::vector<int> ids;
  ids.reserve(peer_lists_.size());
  for (const auto& [peer_id, list] : peer_lists_) {
    ids.push_back(peer_id);
  }
  return ids;
}

const ResultList& SuperPeer::final_result() const {
  SKYPEER_CHECK(finished());
  return query_->final;
}

double SuperPeer::finish_time() const {
  SKYPEER_CHECK(finished());
  return query_->finish_time;
}

void SuperPeer::HandleMessage(sim::Simulator* simulator,
                              const sim::Message& message) {
  if (const auto* start =
          dynamic_cast<const StartQueryMessage*>(message.body.get())) {
    HandleStart(simulator, *start);
  } else if (const auto* query =
                 dynamic_cast<const QueryMessage*>(message.body.get())) {
    HandleQuery(simulator, message, *query);
  } else if (const auto* reply =
                 dynamic_cast<const ReplyMessage*>(message.body.get())) {
    HandleReply(simulator, *reply);
  } else if (const auto* pipeline =
                 dynamic_cast<const PipelineMessage*>(message.body.get())) {
    HandlePipeline(simulator, *pipeline);
  } else {
    SKYPEER_CHECK(false);  // Unknown message type.
  }
}

void SuperPeer::RunLocalScan(const Subspace& subspace, Variant variant,
                             double threshold_in,
                             std::shared_ptr<const ResultList>* local,
                             double* threshold_out, size_t* scanned) {
  if (variant == Variant::kNaive) {
    // The baseline ignores the f-ordering and the threshold: a plain BNL
    // over the store, then sorted for shipping.
    PointSet skyline = BnlSkyline(store_.points, subspace);
    *local = std::make_shared<const ResultList>(BuildSortedByF(skyline));
    *threshold_out = threshold_in;
    *scanned = store_.size();
    return;
  }

  if (cache_enabled_) {
    // Serve from the per-subspace cache: the event trace of the
    // *unconstrained* sequential scan is recorded once; every incoming
    // threshold then replays it into the exact truncated-scan result —
    // same survivors, same consumed-point count, same final threshold as
    // a fresh Algorithm 1 pass — without a single dominance test.
    // (Filtering a cached skyline *list* is not enough: the store is
    // f-sorted in full space while dominance is tested in the query
    // subspace, so a point's dominator can lie beyond the threshold
    // cutoff — the truncated scan keeps such a point, the unconstrained
    // skyline has already dropped it.) The cache is thread-safe and may
    // be shared across replica clones: the trace is a pure function of
    // (store, mask), so whichever filler publishes first, every reader
    // replays the same trace, and the replay is identical on hit and
    // miss, which keeps workload aggregates independent of query order.
    // The fill must be the sequential scan — a chunked scan cannot
    // produce the sequential event order — so `scan_chunk_size_` does
    // not apply here.
    if (cache_ == nullptr) {
      cache_ = std::make_shared<SubspaceScanTraceCache>();
    }
    std::shared_ptr<const ScanTrace> entry =
        cache_->Lookup(id_, subspace.mask());
    if (entry == nullptr) {
      auto trace = std::make_shared<ScanTrace>();
      TracedSortedSkyline(store_, subspace, {}, nullptr, trace.get());
      entry = cache_->Insert(id_, subspace.mask(), std::move(trace));
    }
    ThresholdScanStats stats;
    *local = std::make_shared<const ResultList>(
        ReplayScanTrace(store_, *entry, threshold_in, &stats));
    *threshold_out = stats.final_threshold;
    *scanned = stats.scanned;
    return;
  }

  ThresholdScanOptions options;
  options.initial_threshold = threshold_in;
  ThresholdScanStats stats;
  // Bit-identical to the sequential scan; chunk size 0 or a store no
  // larger than one chunk runs sequentially.
  *local = std::make_shared<const ResultList>(
      ParallelSortedSkyline(store_, subspace, scan_chunk_size_, options,
                            &stats, pool_));
  // The scan threshold only ever tightens; RT*M forwards this value.
  *threshold_out = stats.final_threshold;
  *scanned = stats.scanned;
}

void SuperPeer::StageLocalScan(const Subspace& subspace, Variant variant,
                               double threshold) {
  StagedScan staged;
  staged.mask = subspace.mask();
  staged.variant = variant;
  staged.threshold_in = threshold;
  const auto start = std::chrono::steady_clock::now();
  RunLocalScan(subspace, variant, threshold, &staged.local,
               &staged.threshold_out, &staged.scanned);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  staged.cpu_s = std::max(0.0, elapsed.count());
  staged_ = std::move(staged);
}

double SuperPeer::StagedThreshold() const {
  SKYPEER_CHECK(staged_.has_value());
  return staged_->threshold_out;
}

void SuperPeer::StageSpeculativeScan(const Subspace& subspace, Variant variant,
                                     double fixed_threshold) {
  SKYPEER_CHECK(RefinesThresholdOnPath(variant));
  StagedScan staged;
  staged.mask = subspace.mask();
  staged.variant = variant;
  staged.threshold_in = fixed_threshold;
  staged.speculative = true;
  const auto start = std::chrono::steady_clock::now();
  if (variant != Variant::kNaive && !cache_enabled_ &&
      (scan_chunk_size_ == 0 || store_.size() <= scan_chunk_size_)) {
    // Sequential scan: record the event trace so the reconcile can replay
    // the scan under the refined threshold without any dominance test.
    ThresholdScanOptions options;
    options.initial_threshold = fixed_threshold;
    ThresholdScanStats stats;
    staged.local = std::make_shared<const ResultList>(TracedSortedSkyline(
        store_, subspace, options, &stats, &staged.trace));
    staged.threshold_out = stats.final_threshold;
    staged.scanned = stats.scanned;
    staged.has_trace = true;
  } else {
    // Cache path: the scan warms the shared trace cache (a pure function
    // of the store, so identical to what the protocol run would insert)
    // and the reconcile replays it at the refined value. Chunked path:
    // per-chunk threshold seeds depend on the initial threshold, so the
    // staged result is only valid on an exact match (hop-1 RT*M nodes,
    // which receive precisely the initiator's threshold); deeper nodes
    // rerun inline.
    RunLocalScan(subspace, variant, fixed_threshold, &staged.local,
                 &staged.threshold_out, &staged.scanned);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  staged.cpu_s = std::max(0.0, elapsed.count());
  staged_ = std::move(staged);
}

void SuperPeer::ComputeLocal(sim::Simulator* simulator, QueryState* state) {
  if (staged_.has_value() && staged_->mask == state->subspace.mask() &&
      staged_->variant == state->variant &&
      staged_->threshold_in == state->threshold) {
    if (measure_cpu_) {
      simulator->ChargeCpu(staged_->cpu_s);
    }
    state->local = std::move(staged_->local);
    state->threshold = staged_->threshold_out;
    state->scanned = staged_->scanned;
    staged_.reset();
    return;
  }
  if (staged_.has_value() && staged_->speculative &&
      staged_->mask == state->subspace.mask() &&
      staged_->variant == state->variant &&
      state->threshold < staged_->threshold_in) {
    // Reconcile a speculative scan against the refined threshold the
    // protocol actually delivered. The node really did run the fixed scan
    // (off-thread) plus the reconcile below, so both are charged.
    if (staged_->has_trace) {
      if (measure_cpu_) {
        simulator->ChargeCpu(staged_->cpu_s);
      }
      ScopedCpuCharge charge(simulator, measure_cpu_);
      ThresholdScanStats stats;
      state->local = std::make_shared<const ResultList>(ReplayScanTrace(
          store_, staged_->trace, state->threshold, &stats));
      state->threshold = stats.final_threshold;
      state->scanned = stats.scanned;
      staged_.reset();
      return;
    }
    if (cache_enabled_ && state->variant != Variant::kNaive) {
      // The speculative scan warmed the trace cache; replaying it under
      // the refined threshold is exactly the sequential cache-hit path.
      if (measure_cpu_) {
        simulator->ChargeCpu(staged_->cpu_s);
      }
      staged_.reset();
      ScopedCpuCharge charge(simulator, measure_cpu_);
      RunLocalScan(state->subspace, state->variant, state->threshold,
                   &state->local, &state->threshold, &state->scanned);
      return;
    }
    // Chunked speculative scan under a strictly looser threshold: the
    // per-chunk seeds would differ, so fall through to the inline rerun.
  }
  staged_.reset();
  ScopedCpuCharge charge(simulator, measure_cpu_);
  RunLocalScan(state->subspace, state->variant, state->threshold,
               &state->local, &state->threshold, &state->scanned);
}

SuperPeer::LastQueryStats SuperPeer::last_query_stats() const {
  LastQueryStats stats;
  if (!query_.has_value()) {
    return stats;
  }
  stats.participated = true;
  stats.scanned = query_->scanned;
  stats.local_result = query_->local != nullptr ? query_->local->size() : 0;
  stats.final_threshold = query_->threshold;
  return stats;
}

void SuperPeer::ForwardQuery(sim::Simulator* simulator, QueryState* state) {
  auto query = std::make_shared<QueryMessage>();
  query->query_id = state->query_id;
  query->subspace = state->subspace;
  query->variant = state->variant;
  query->threshold = state->threshold;
  state->pending = 0;
  for (int neighbor : neighbors_) {
    if (neighbor == state->parent) {
      continue;
    }
    simulator->Send(id_, neighbor, wire_.query_bytes, query);
    ++state->pending;
  }
}

void SuperPeer::SendReply(sim::Simulator* simulator, int dst,
                          uint64_t query_id, bool duplicate,
                          std::vector<std::shared_ptr<const ResultList>> lists,
                          int query_dims) {
  auto reply = std::make_shared<ReplyMessage>();
  reply->query_id = query_id;
  reply->duplicate = duplicate;
  reply->lists = std::move(lists);
  const size_t bytes = wire_.ReplyBytes(query_dims, reply->lists.size(),
                                        reply->TotalPoints());
  simulator->Send(id_, dst, bytes, std::move(reply));
}

void SuperPeer::HandleStart(sim::Simulator* simulator,
                            const StartQueryMessage& start) {
  SKYPEER_CHECK(!query_.has_value());  // One query at a time.
  query_.emplace();
  QueryState* state = &*query_;
  state->query_id = start.query_id;
  state->subspace = start.subspace;
  state->variant = start.variant;
  state->parent = -1;
  state->is_initiator = true;
  state->threshold = std::numeric_limits<double>::infinity();

  if (state->variant == Variant::kPipeline) {
    // The initiator seeds the accumulated result with its local skyline
    // and sends the query on its Euler-tour walk.
    ComputeLocal(simulator, state);
    if (start.route.size() <= 1) {
      state->final = *state->local;
      state->finished = true;
      state->finish_time = simulator->CurrentNodeClock();
      return;
    }
    PipelineMessage seed;
    seed.query_id = state->query_id;
    seed.subspace = state->subspace;
    seed.route = std::make_shared<const std::vector<int>>(start.route);
    seed.position = 0;
    ForwardPipeline(simulator, seed, state->threshold, state->local);
    return;
  }

  if (state->variant == Variant::kNaive) {
    // No threshold to compute: flood first so other super-peers start
    // working as early as possible, then evaluate locally.
    ForwardQuery(simulator, state);
    ComputeLocal(simulator, state);
  } else {
    // §5.2.3: the initiator first runs the local computation to obtain
    // the initial threshold t, then forwards q(U, t).
    ComputeLocal(simulator, state);
    ForwardQuery(simulator, state);
  }
  if (state->pending == 0) {
    Complete(simulator, state);
  }
}

void SuperPeer::HandleQuery(sim::Simulator* simulator,
                            const sim::Message& message,
                            const QueryMessage& query) {
  if (query_.has_value() && query_->query_id == query.query_id) {
    // Flood duplicate: the sender still awaits one reply from us.
    SendReply(simulator, message.src, query.query_id, /*duplicate=*/true, {},
              query.subspace.Count());
    return;
  }
  SKYPEER_CHECK(!query_.has_value());
  query_.emplace();
  QueryState* state = &*query_;
  state->query_id = query.query_id;
  state->subspace = query.subspace;
  state->variant = query.variant;
  state->threshold = query.threshold;
  state->parent = message.src;
  state->is_initiator = false;

  if (UsesRefinedThreshold(state->variant)) {
    // RT*M: compute first; the refined (lower) threshold is attached to
    // the forwarded query (§5.2.3, Algorithm 3 lines 3-6).
    ComputeLocal(simulator, state);
    ForwardQuery(simulator, state);
  } else {
    // FT*M / naive: forward immediately, then compute.
    ForwardQuery(simulator, state);
    ComputeLocal(simulator, state);
  }
  if (state->pending == 0) {
    Complete(simulator, state);
  }
}

void SuperPeer::HandleReply(sim::Simulator* simulator,
                            const ReplyMessage& reply) {
  SKYPEER_CHECK(query_.has_value());
  QueryState* state = &*query_;
  SKYPEER_CHECK(state->query_id == reply.query_id);
  SKYPEER_CHECK(state->pending > 0);
  --state->pending;
  if (!reply.duplicate) {
    state->collected.insert(state->collected.end(), reply.lists.begin(),
                            reply.lists.end());
  }
  if (state->pending == 0) {
    Complete(simulator, state);
  }
}

void SuperPeer::ForwardPipeline(sim::Simulator* simulator,
                                const PipelineMessage& previous,
                                double threshold,
                                std::shared_ptr<const ResultList> accumulated) {
  auto next = std::make_shared<PipelineMessage>();
  next->query_id = previous.query_id;
  next->subspace = previous.subspace;
  next->threshold = threshold;
  next->route = previous.route;
  next->position = previous.position + 1;
  next->accumulated = std::move(accumulated);
  const int dst = (*next->route)[next->position];
  const size_t bytes =
      wire_.query_bytes +
      wire_.ReplyBytes(next->subspace.Count(), 1, next->accumulated->size());
  simulator->Send(id_, dst, bytes, std::move(next));
}

void SuperPeer::HandlePipeline(sim::Simulator* simulator,
                               const PipelineMessage& message) {
  SKYPEER_CHECK((*message.route)[message.position] == id_);

  if (message.position + 1 == message.route->size()) {
    // The walk has returned to the initiator: the accumulated list is the
    // global subspace skyline.
    SKYPEER_CHECK(query_.has_value());
    QueryState* state = &*query_;
    SKYPEER_CHECK(state->is_initiator);
    SKYPEER_CHECK(state->query_id == message.query_id);
    state->final = *message.accumulated;
    state->finished = true;
    state->finish_time = simulator->CurrentNodeClock();
    return;
  }

  if (query_.has_value() && query_->query_id == message.query_id) {
    // Revisit on the Euler tour: pass the query through unchanged.
    ForwardPipeline(simulator, message, message.threshold,
                    message.accumulated);
    return;
  }

  // First visit: compute the local skyline under the travelling threshold
  // and fold it into the accumulated result.
  SKYPEER_CHECK(!query_.has_value());
  query_.emplace();
  QueryState* state = &*query_;
  state->query_id = message.query_id;
  state->subspace = message.subspace;
  state->variant = Variant::kPipeline;
  state->threshold = message.threshold;
  state->parent = -1;
  state->is_initiator = false;
  ComputeLocal(simulator, state);

  std::shared_ptr<const ResultList> merged;
  double threshold = state->threshold;
  {
    ScopedCpuCharge charge(simulator, measure_cpu_);
    std::vector<const ResultList*> inputs = {message.accumulated.get(),
                                             state->local.get()};
    ThresholdScanOptions options;
    options.initial_threshold = message.threshold;
    ThresholdScanStats stats;
    merged = std::make_shared<const ResultList>(
        MergeSortedSkylines(inputs, state->subspace, options, &stats));
    threshold = std::min(threshold, stats.final_threshold);
  }
  ForwardPipeline(simulator, message, threshold, std::move(merged));
}

void SuperPeer::Complete(sim::Simulator* simulator, QueryState* state) {
  SKYPEER_CHECK(state->local != nullptr);

  if (!state->is_initiator) {
    std::vector<std::shared_ptr<const ResultList>> lists;
    if (UsesProgressiveMerging(state->variant)) {
      // *TPM: merge everything received with the local result before
      // relaying (Algorithm 3 lines 15-16).
      ScopedCpuCharge charge(simulator, measure_cpu_);
      std::vector<const ResultList*> inputs;
      inputs.reserve(state->collected.size() + 1);
      for (const auto& list : state->collected) {
        inputs.push_back(list.get());
      }
      inputs.push_back(state->local.get());
      ThresholdScanOptions options;
      options.initial_threshold = state->threshold;
      lists.push_back(std::make_shared<const ResultList>(
          MergeSortedSkylines(inputs, state->subspace, options)));
    } else {
      // *TFM / naive: relay children bundles unmerged plus our own list.
      lists = std::move(state->collected);
      lists.push_back(state->local);
    }
    SendReply(simulator, state->parent, state->query_id, /*duplicate=*/false,
              std::move(lists), state->subspace.Count());
    return;
  }

  // Initiator: final merge.
  {
    ScopedCpuCharge charge(simulator, measure_cpu_);
    if (state->variant == Variant::kNaive) {
      // Central dominance-based merge of everything, the §3.2 baseline.
      PointSet all(dims_);
      for (const auto& list : state->collected) {
        all.AppendAll(list->points);
      }
      all.AppendAll(state->local->points);
      state->final = BuildSortedByF(BnlSkyline(all, state->subspace));
    } else {
      std::vector<const ResultList*> inputs;
      inputs.reserve(state->collected.size() + 1);
      for (const auto& list : state->collected) {
        inputs.push_back(list.get());
      }
      inputs.push_back(state->local.get());
      ThresholdScanOptions options;
      options.initial_threshold = state->threshold;
      state->final =
          MergeSortedSkylines(inputs, state->subspace, options);
    }
  }
  state->finished = true;
  state->finish_time = simulator->CurrentNodeClock();
}

}  // namespace skypeer
