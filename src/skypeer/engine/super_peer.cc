#include "skypeer/engine/super_peer.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/filter_set.h"
#include "skypeer/algo/merge.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/macros.h"
#include "skypeer/common/mapping.h"

namespace skypeer {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return std::max(0.0, elapsed.count());
}

}  // namespace

void SuperPeer::ChargeOps(sim::Simulator* simulator, const OpCounts& ops,
                          double measured_s) {
  query_ops_ += ops;
  if (!measure_cpu_) {
    return;
  }
  if (cost_.counted()) {
    simulator->ChargeCpu(cost_.Seconds(ops));
  } else {
    simulator->ChargeCpu(std::max(0.0, measured_s));
  }
}

void SuperPeer::ChargeSerialization(sim::Simulator* simulator, size_t bytes) {
  OpCounts ops;
  ops.bytes_serialized = bytes;
  query_ops_ += ops;
  // The measured model never charged marshalling (wire cost lives in the
  // link model); counted models price it so the charge — and thus the
  // departure shift — is deterministic.
  if (measure_cpu_ && cost_.counted()) {
    simulator->ChargeCpu(cost_.Seconds(ops));
  }
}

void SuperPeer::AddPeerList(int peer_id, ResultList list) {
  SKYPEER_CHECK(list.points.dims() == dims_);
  SKYPEER_CHECK(!preprocessed_);
  const bool inserted =
      peer_lists_.emplace(peer_id, std::move(list)).second;
  SKYPEER_CHECK(inserted);  // Duplicate upload.
}

void SuperPeer::RebuildStore(ThresholdScanStats* stats) {
  ThresholdScanOptions options;
  options.ext = true;
  std::vector<const ResultList*> inputs;
  inputs.reserve(peer_lists_.size());
  for (const auto& [peer_id, list] : peer_lists_) {
    inputs.push_back(&list);
  }
  // Zero inputs (every peer departed) merge to the empty store.
  InstallStore(MergeSortedSkylines(dims_, inputs, Subspace::FullSpace(dims_),
                                   options, stats));
  if (cache_ != nullptr) {
    cache_->Invalidate(id_);
  }
}

void SuperPeer::InstallStore(ResultList store) {
  if (current_pins_ > 0) {
    // The outgoing epoch is pinned by an in-flight query: retire it
    // intact — resident list, paged pages and summary — instead of
    // destroying it. `View()` keeps serving it through `scan_epoch_`
    // until the last pin is released.
    EpochStore retiring;
    retiring.store = std::move(store_);
    retiring.paged = std::move(paged_store_);
    retiring.summary = std::move(store_summary_);
    retiring.pins = current_pins_;
    current_pins_ = 0;
    retired_.emplace(store_epoch_, std::move(retiring));
    store_ = ResultList(dims_);
  }
  ++store_epoch_;
  if (buffer_ != nullptr) {
    // Spill through the buffer manager: fresh page ids (never recycled),
    // so any frame still holding a page of the previous store is
    // unreachable; the old pages themselves are dropped by Release()
    // inside Build-then-move — or travel with their retired epoch when
    // pinned. The paged store builds and carries its own summary.
    paged_store_ = PagedStore::Build(store, buffer_);
    store_ = ResultList(dims_);
    store_summary_ = StoreSummary();
  } else {
    store_ = std::move(store);
    // Same shared builder and page geometry as the paged mode, so skip
    // decisions never diverge between modes. Rebuilt on every install —
    // initial merge, churn maintenance, incremental join, snapshot
    // restore — so an emptied store never keeps the previous summary.
    store_summary_ =
        StoreSummary::Build(store_, PageLayout(page_size_, dims_));
  }
  if (retired_.count(scan_epoch_) == 0) {
    scan_epoch_ = store_epoch_;
  }
}

uint64_t SuperPeer::PinStoreEpoch() {
  // One scan epoch at a time: the engine serializes queries per network,
  // so pins only ever stack on the same (current) epoch. A pin while an
  // older epoch is still retired-and-pinned would redirect its view.
  SKYPEER_CHECK(retired_.empty());
  ++current_pins_;
  scan_epoch_ = store_epoch_;
  return store_epoch_;
}

void SuperPeer::UnpinStoreEpoch(uint64_t epoch) {
  if (epoch == store_epoch_) {
    SKYPEER_CHECK(current_pins_ > 0);
    --current_pins_;
  } else {
    const auto it = retired_.find(epoch);
    SKYPEER_CHECK(it != retired_.end());
    SKYPEER_CHECK(it->second.pins > 0);
    if (--it->second.pins == 0) {
      // Last pin gone: the retired epoch dies here. In paged mode
      // ~PagedStore releases its pages; ids are never recycled, so no
      // frame can serve them again.
      retired_.erase(it);
    }
  }
  scan_epoch_ = store_epoch_;
}

double SuperPeer::FinalizePreprocessing(OpCounts* ops) {
  const auto start = std::chrono::steady_clock::now();
  ThresholdScanStats stats;
  RebuildStore(&stats);
  preprocessed_ = true;
  if (!retain_peer_lists_) {
    peer_lists_.clear();
  }
  if (ops != nullptr) {
    *ops += stats.ops;
  }
  return SecondsSince(start);
}

void SuperPeer::SetStore(ResultList store) {
  SKYPEER_CHECK(store.points.dims() == dims_);
  SKYPEER_CHECK(store.IsSorted());
  InstallStore(std::move(store));
  peer_lists_.clear();
  if (cache_ != nullptr) {
    cache_->Invalidate(id_);
  }
  preprocessed_ = true;
}

Status SuperPeer::JoinPeer(int peer_id, ResultList list,
                           OpCounts* maintenance_ops) {
  if (!preprocessed_) {
    return Status::FailedPrecondition("pre-processing has not run yet");
  }
  if (list.points.dims() != dims_) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  if (retain_peer_lists_) {
    if (peer_lists_.count(peer_id) > 0) {
      return Status::InvalidArgument("peer id already present");
    }
  }
  // Incremental merge (§5.3): ext-skyline merging is associative, so the
  // existing store and the newcomer's list suffice.
  ThresholdScanOptions options;
  options.ext = true;
  // A paged store must come back into memory for the merge — the
  // incremental join is a churn-path operation, not a scan. The
  // materialization is not part of the logical maintenance cost (it has
  // no resident-mode counterpart), so maintenance ops stay identical
  // paged vs in-memory.
  ResultList materialized(dims_);
  const ResultList* current = &store_;
  if (paged_store_.valid()) {
    materialized = paged_store_.Materialize();
    current = &materialized;
  }
  std::vector<const ResultList*> inputs = {current, &list};
  ThresholdScanStats stats;
  ResultList merged = MergeSortedSkylines(inputs, Subspace::FullSpace(dims_),
                                          options, &stats);
  InstallStore(std::move(merged));
  if (retain_peer_lists_) {
    peer_lists_.emplace(peer_id, std::move(list));
  }
  if (cache_ != nullptr) {
    cache_->Invalidate(id_);
  }
  if (maintenance_ops != nullptr) {
    *maintenance_ops += stats.ops;
  }
  return Status::OK();
}

Status SuperPeer::RemovePeer(int peer_id, OpCounts* maintenance_ops) {
  if (!retain_peer_lists_) {
    return Status::FailedPrecondition(
        "peer removal requires set_retain_peer_lists(true)");
  }
  const auto it = peer_lists_.find(peer_id);
  if (it == peer_lists_.end()) {
    return Status::NotFound("unknown peer id");
  }
  const ResultList departed = std::move(it->second);
  peer_lists_.erase(it);
  if (!incremental_maintenance_) {
    // Legacy path, kept as the oracle: redo the full merge from the
    // remaining retained lists. RebuildStore routes the empty store (the
    // last peer departed) through InstallStore too, so the summary and
    // paged state always describe the store that is actually served.
    ThresholdScanStats stats;
    RebuildStore(&stats);
    if (maintenance_ops != nullptr) {
      *maintenance_ops += stats.ops;
    }
    return Status::OK();
  }
  OpCounts ops;
  ResultList next = RemoveIncremental(departed, &ops);
  if (verify_maintenance_) {
    // Checked oracle: the incremental result must be bit-identical to
    // the full rebuild's merge — same ids, coordinates and f, in the
    // same canonical order.
    ThresholdScanOptions options;
    options.ext = true;
    std::vector<const ResultList*> inputs;
    inputs.reserve(peer_lists_.size());
    for (const auto& [pid, list] : peer_lists_) {
      inputs.push_back(&list);
    }
    const ResultList oracle = MergeSortedSkylines(
        dims_, inputs, Subspace::FullSpace(dims_), options);
    SKYPEER_CHECK(oracle.size() == next.size());
    for (size_t i = 0; i < next.size(); ++i) {
      SKYPEER_CHECK(oracle.points.id(i) == next.points.id(i));
      SKYPEER_CHECK(oracle.f[i] == next.f[i]);
      for (int d = 0; d < dims_; ++d) {
        SKYPEER_CHECK(oracle.points[i][d] == next.points[i][d]);
      }
    }
  }
  // The empty store (last peer departed) flows through the same install
  // builder as every other store change: summary, paged state and epoch
  // all advance — nothing is left describing the previous store.
  InstallStore(std::move(next));
  if (cache_ != nullptr) {
    cache_->Invalidate(id_);
  }
  if (maintenance_ops != nullptr) {
    *maintenance_ops += ops;
  }
  return Status::OK();
}

ResultList SuperPeer::RemoveIncremental(const ResultList& departed,
                                        OpCounts* ops) {
  // Canonical store order is the full merge's heap order: ascending f,
  // f-ties broken by the owning peer's rank in id order, then by
  // position inside the peer's (f-sorted) list. Removing a peer
  // preserves the survivors' relative ranks, so the old store minus the
  // departing points is already canonically ordered for the new peer
  // set — only the resurrection candidates need merging back in.
  const ResultList old = MaterializeStore();
  const Subspace full = Subspace::FullSpace(dims_);

  std::unordered_set<PointId> departing;
  departing.reserve(departed.size());
  for (size_t i = 0; i < departed.size(); ++i) {
    departing.insert(departed.points.id(i));
  }
  std::unordered_set<PointId> in_store;
  in_store.reserve(old.size());
  for (size_t i = 0; i < old.size(); ++i) {
    in_store.insert(old.points.id(i));
  }

  // Drop pass: the survivors. Every one of them stays in the final store
  // (a departure only shrinks the set of potential ext-dominators), and
  // the minimum of their dist values is the exact Observation-5 cutoff
  // for the candidate scan: a candidate with f above it sits strictly
  // above some survivor on every dimension, hence is ext-dominated.
  ResultList survivors(dims_);
  double seed_threshold = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < old.size(); ++i) {
    if (departing.count(old.points.id(i)) > 0) {
      continue;
    }
    survivors.points.Append(old.points[i], old.points.id(i));
    survivors.f.push_back(old.f[i]);
    seed_threshold = std::min(seed_threshold, DistU(old.points[i], full));
  }
  ops->scan_steps += old.size();

  // Resurrection candidates: surviving peers' retained points that were
  // not in the pre-removal store — both the ext-dominated (shadowed by a
  // departed point) and the merge's threshold-truncated tail. Visited in
  // canonical (f, rank, position) order via a heap over the per-peer
  // f-sorted lists, offered into an accumulator seeded with the
  // survivors (seeds prune but are never emitted), and cut off at the
  // exact threshold above.
  ThresholdScanOptions options;
  options.ext = true;
  options.initial_threshold = seed_threshold;
  SkylineAccumulator acc(dims_, full, options);
  acc.SeedWindow(survivors);

  struct Cursor {
    const ResultList* list = nullptr;
    size_t pos = 0;
    int rank = 0;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(peer_lists_.size());
  int rank = 0;
  for (const auto& [pid, list] : peer_lists_) {
    Cursor cursor{&list, 0, rank++};
    while (cursor.pos < list.size() &&
           in_store.count(list.points.id(cursor.pos)) > 0) {
      ++cursor.pos;
    }
    if (cursor.pos < list.size()) {
      cursors.push_back(cursor);
    }
  }
  const auto later = [](const Cursor& a, const Cursor& b) {
    const double fa = a.list->f[a.pos];
    const double fb = b.list->f[b.pos];
    if (fa != fb) {
      return fa > fb;
    }
    return a.rank > b.rank;
  };
  std::make_heap(cursors.begin(), cursors.end(), later);
  ResultList resurrected(dims_);
  while (!cursors.empty()) {
    std::pop_heap(cursors.begin(), cursors.end(), later);
    Cursor cursor = cursors.back();
    cursors.pop_back();
    const double f = cursor.list->f[cursor.pos];
    if (f > acc.threshold()) {
      break;  // Observation 5: no later candidate can survive.
    }
    ops->merge_pulls += 1;
    acc.Offer((*cursor.list).points[cursor.pos],
              cursor.list->points.id(cursor.pos), f);
    ++cursor.pos;
    while (cursor.pos < cursor.list->size() &&
           in_store.count(cursor.list->points.id(cursor.pos)) > 0) {
      ++cursor.pos;
    }
    if (cursor.pos < cursor.list->size()) {
      cursors.push_back(cursor);
      std::push_heap(cursors.begin(), cursors.end(), later);
    }
  }
  ResultList result = acc.TakeResult();
  *ops += acc.ops();

  // Splice pass: two-way merge of the survivors (canonically ordered
  // subsequence of the old store) and the resurrected points (offered in
  // canonical order, so emitted in it) on (f, rank, position) — the
  // exact order the full rebuild's heap would produce.
  std::unordered_map<PointId, std::pair<int, size_t>> order;
  rank = 0;
  for (const auto& [pid, list] : peer_lists_) {
    for (size_t i = 0; i < list.size(); ++i) {
      order.emplace(list.points.id(i), std::make_pair(rank, i));
    }
    ++rank;
  }
  ResultList merged(dims_);
  size_t a = 0;
  size_t b = 0;
  const auto take_survivor = [&]() {
    if (b >= result.size()) {
      return true;
    }
    if (a >= survivors.size()) {
      return false;
    }
    if (survivors.f[a] != result.f[b]) {
      return survivors.f[a] < result.f[b];
    }
    return order.at(survivors.points.id(a)) < order.at(result.points.id(b));
  };
  while (a < survivors.size() || b < result.size()) {
    ops->merge_pulls += 1;
    if (take_survivor()) {
      merged.points.Append(survivors.points[a], survivors.points.id(a));
      merged.f.push_back(survivors.f[a]);
      ++a;
    } else {
      merged.points.Append(result.points[b], result.points.id(b));
      merged.f.push_back(result.f[b]);
      ++b;
    }
  }
  return merged;
}

std::vector<int> SuperPeer::RetainedPeerIds() const {
  std::vector<int> ids;
  ids.reserve(peer_lists_.size());
  for (const auto& [peer_id, list] : peer_lists_) {
    ids.push_back(peer_id);
  }
  return ids;
}

const ResultList& SuperPeer::final_result() const {
  SKYPEER_CHECK(finished());
  return query_->final;
}

double SuperPeer::finish_time() const {
  SKYPEER_CHECK(finished());
  return query_->finish_time;
}

bool SuperPeer::partial() const {
  SKYPEER_CHECK(finished());
  return query_->partial;
}

std::vector<int> SuperPeer::coverage() const {
  SKYPEER_CHECK(finished());
  return std::vector<int>(query_->contributors.begin(),
                          query_->contributors.end());
}

void SuperPeer::ResetProtocolState() {
  ResetQueryState();
  outbound_.clear();
  seen_.clear();
  next_hop_seq_ = 1;
  deadline_timer_id_ = 0;
  rstats_ = ReliabilityStats{};
  query_ops_ = OpCounts{};
}

void SuperPeer::HandleMessage(sim::Simulator* simulator,
                              const sim::Message& message) {
  if (const auto* envelope =
          dynamic_cast<const ReliableEnvelope*>(message.body.get())) {
    HandleEnvelope(simulator, message, *envelope);
  } else if (const auto* ack =
                 dynamic_cast<const AckMessage*>(message.body.get())) {
    HandleAck(simulator, *ack);
  } else if (const auto* retransmit =
                 dynamic_cast<const RetransmitTimer*>(message.body.get())) {
    HandleRetransmit(simulator, *retransmit);
  } else if (const auto* deadline =
                 dynamic_cast<const DeadlineTimer*>(message.body.get())) {
    HandleDeadline(simulator, *deadline);
  } else if (const auto* start =
                 dynamic_cast<const StartQueryMessage*>(message.body.get())) {
    HandleStart(simulator, *start);
  } else if (const auto* query =
                 dynamic_cast<const QueryMessage*>(message.body.get())) {
    HandleQuery(simulator, message, *query);
  } else if (const auto* reply =
                 dynamic_cast<const ReplyMessage*>(message.body.get())) {
    HandleReply(simulator, message.src, *reply);
  } else if (const auto* pipeline =
                 dynamic_cast<const PipelineMessage*>(message.body.get())) {
    HandlePipeline(simulator, message.src, *pipeline);
  } else if (const auto* churn =
                 dynamic_cast<const ChurnTickMessage*>(message.body.get())) {
    // Scheduled churn maintenance lands on this node's virtual clock at
    // the event's simulated time. The ops are logical (no measured
    // seconds — the membership change itself already ran outside the
    // simulation), so the charge is identical in both simulation runs,
    // across store modes and under every cost model.
    ChargeOps(simulator, churn->ops, 0.0);
  } else if (reliable_.enabled) {
    ++rstats_.stale_ignored;  // Unknown payloads are tolerated, not fatal.
  } else {
    SKYPEER_CHECK(false);  // Unknown message type.
  }
}

// --- reliable transport --------------------------------------------------

void SuperPeer::SendEnvelope(sim::Simulator* simulator, int dst,
                             size_t payload_bytes,
                             std::shared_ptr<const sim::MessageBody> payload,
                             Outbound hop) {
  SKYPEER_CHECK(reliable_.enabled);
  SKYPEER_CHECK(query_.has_value());
  auto envelope = std::make_shared<ReliableEnvelope>();
  envelope->query_id = query_->query_id;
  envelope->seq = next_hop_seq_++;
  envelope->payload = std::move(payload);

  hop.dst = dst;
  hop.bytes = payload_bytes + wire_.envelope_bytes;
  hop.envelope = envelope;
  hop.attempts = 0;
  ChargeSerialization(simulator, hop.bytes);
  simulator->Send(id_, dst, hop.bytes, envelope);

  auto timer = std::make_shared<RetransmitTimer>();
  timer->seq = envelope->seq;
  hop.timer_id = simulator->ScheduleTimer(
      id_, RetryTimeout(reliable_, 0, hop.bytes), std::move(timer));
  outbound_[envelope->seq] = std::move(hop);
}

void SuperPeer::HandleEnvelope(sim::Simulator* simulator,
                               const sim::Message& message,
                               const ReliableEnvelope& envelope) {
  if (!reliable_.enabled || message.src < 0) {
    ++rstats_.stale_ignored;
    return;
  }
  // Always acknowledge — the sender may be retransmitting because our
  // previous acknowledgement was lost, not because the payload was.
  auto ack = std::make_shared<AckMessage>();
  ack->query_id = envelope.query_id;
  ack->seq = envelope.seq;
  ChargeSerialization(simulator, wire_.ack_bytes);
  simulator->Send(id_, message.src, wire_.ack_bytes, std::move(ack));

  // Effectively-once: at-least-once delivery plus (src, query, seq)
  // suppression. A retransmitted hop never re-triggers scans, merges or
  // metric counting.
  if (!seen_.insert({message.src, envelope.query_id, envelope.seq}).second) {
    ++rstats_.duplicates_suppressed;
    return;
  }
  // Stale traffic from an earlier query is acknowledged (to quiesce the
  // sender) but its payload is discarded.
  if (query_.has_value() && envelope.query_id != query_->query_id) {
    ++rstats_.stale_ignored;
    return;
  }
  const sim::MessageBody* payload = envelope.payload.get();
  if (const auto* query = dynamic_cast<const QueryMessage*>(payload)) {
    sim::Message inner = message;
    inner.body = envelope.payload;
    HandleQuery(simulator, inner, *query);
  } else if (const auto* reply = dynamic_cast<const ReplyMessage*>(payload)) {
    if (reply->reroute_origin >= 0) {
      HandleReroutedReply(simulator, *reply);
    } else {
      HandleReply(simulator, message.src, *reply);
    }
  } else if (const auto* pipeline =
                 dynamic_cast<const PipelineMessage*>(payload)) {
    HandlePipeline(simulator, message.src, *pipeline);
  } else {
    ++rstats_.stale_ignored;
  }
}

void SuperPeer::HandleAck(sim::Simulator* simulator, const AckMessage& ack) {
  const auto it = outbound_.find(ack.seq);
  if (it == outbound_.end() ||
      it->second.envelope->query_id != ack.query_id) {
    return;  // Already resolved (or a stale stray) — nothing to do.
  }
  simulator->CancelTimer(it->second.timer_id);
  outbound_.erase(it);
}

void SuperPeer::HandleRetransmit(sim::Simulator* simulator,
                                 const RetransmitTimer& timer) {
  const auto it = outbound_.find(timer.seq);
  if (it == outbound_.end()) {
    return;  // Acknowledged after the timer was already in flight.
  }
  Outbound& hop = it->second;
  ++hop.attempts;
  if (hop.attempts > reliable_.max_retries) {
    ++rstats_.gave_up;
    Outbound failed = std::move(hop);
    outbound_.erase(it);
    switch (failed.kind) {
      case HopKind::kQuery:
        OnChildUnreachable(simulator, failed.dst);
        break;
      case HopKind::kReply:
        RerouteReply(simulator, std::move(failed));
        break;
      case HopKind::kPipeline:
        SkipPipelineHop(simulator, failed);
        break;
    }
    return;
  }
  ++rstats_.retransmits;
  ChargeSerialization(simulator, hop.bytes);
  simulator->Send(id_, hop.dst, hop.bytes, hop.envelope);
  auto next_timer = std::make_shared<RetransmitTimer>();
  next_timer->seq = timer.seq;
  hop.timer_id = simulator->ScheduleTimer(
      id_, RetryTimeout(reliable_, hop.attempts, hop.bytes),
      std::move(next_timer));
}

void SuperPeer::HandleDeadline(sim::Simulator* simulator,
                               const DeadlineTimer& timer) {
  if (!query_.has_value() || query_->query_id != timer.query_id ||
      query_->finished || !query_->is_initiator) {
    return;
  }
  QueryState* state = &*query_;
  state->deadline_fired = true;
  // Quiesce the transport: outstanding hops will never improve this
  // answer.
  for (auto& [seq, hop] : outbound_) {
    simulator->CancelTimer(hop.timer_id);
  }
  outbound_.clear();
  FinishInitiator(simulator, state);
}

void SuperPeer::OnChildUnreachable(sim::Simulator* simulator, int child) {
  if (!query_.has_value() || query_->finished) {
    return;
  }
  QueryState* state = &*query_;
  const auto it = state->child_done.find(child);
  if (it == state->child_done.end() || it->second) {
    return;
  }
  it->second = true;
  --state->pending;
  if (state->pending == 0) {
    Complete(simulator, state);
  }
}

void SuperPeer::RerouteReply(sim::Simulator* simulator, Outbound hop) {
  if (!query_.has_value() || hop.reply == nullptr) {
    return;
  }
  hop.tried.push_back(hop.dst);
  for (int neighbor : neighbors_) {
    if (std::find(hop.tried.begin(), hop.tried.end(), neighbor) !=
        hop.tried.end()) {
      continue;
    }
    auto rerouted = std::make_shared<ReplyMessage>(*hop.reply);
    if (rerouted->reroute_origin < 0) {
      rerouted->reroute_origin = id_;
    }
    ++rstats_.rerouted;
    SendReplyReliable(simulator, neighbor, std::move(rerouted),
                      query_->subspace.Count(), std::move(hop.tried));
    return;
  }
  // Every backbone edge is exhausted: the data is stranded; the
  // initiator's deadline (or give-up accounting) surfaces the loss as a
  // partial result instead of a hang.
}

void SuperPeer::SkipPipelineHop(sim::Simulator* simulator,
                                const Outbound& hop) {
  if (!query_.has_value() || query_->finished || hop.pipeline == nullptr) {
    return;
  }
  const PipelineMessage& failed = *hop.pipeline;
  const std::vector<int>& route = *failed.route;
  const auto resume = [&](size_t position, int dst) {
    auto next = std::make_shared<PipelineMessage>(failed);
    next->position = position;
    const size_t bytes =
        wire_.query_bytes +
        wire_.ReplyBytes(next->subspace.Count(), 1,
                         next->accumulated->size()) +
        wire_.ContributorBytes(next->contributors.size()) +
        wire_.FilterBytes(next->subspace.Count(),
                          next->filter != nullptr ? next->filter->size() : 0);
    Outbound skip;
    skip.kind = HopKind::kPipeline;
    skip.pipeline = next;
    SendEnvelope(simulator, dst, bytes, next, std::move(skip));
  };
  // Resume the walk at the earliest later route position this node can
  // legally hand the message to: right after a later occurrence of itself
  // (the tour's own continuation), or directly at a later occurrence of a
  // backbone neighbor — adjacency keeps the hop sendable, non-tree edges
  // route around crashed subtrees, and a revisited receiver passes the
  // walk through unchanged. Taking the *earliest* such position keeps the
  // skipped gap (and thus the coverage loss) minimal. Occurrences of the
  // node that just failed are avoided; other crashed nodes are discovered
  // by their own retry cycles.
  const int failed_dst = route[failed.position];
  for (size_t p = failed.position + 1; p < route.size(); ++p) {
    if (route[p] == id_) {
      if (p + 1 < route.size() && route[p + 1] != failed_dst) {
        resume(p + 1, route[p + 1]);
        return;
      }
      continue;
    }
    if (route[p] == failed_dst) {
      continue;
    }
    if (std::find(neighbors_.begin(), neighbors_.end(), route[p]) !=
        neighbors_.end()) {
      resume(p, route[p]);
      return;
    }
  }
  // No later route position is reachable from here (typically the final
  // return hop to an initiator that is not our backbone neighbor). The
  // walk itself is over, but the accumulated result is not lost: convert
  // it into a rerouted reply and send it home along the tour-predecessor
  // chain, whose hops all delivered at least once.
  QueryState* state = &*query_;
  if (state->is_initiator) {
    state->contributors.insert(failed.contributors.begin(),
                               failed.contributors.end());
    state->extras[id_].push_back(failed.accumulated);
    FinishInitiator(simulator, state);
    return;
  }
  auto stranded = std::make_shared<ReplyMessage>();
  stranded->query_id = failed.query_id;
  stranded->duplicate = false;
  stranded->lists.push_back(failed.accumulated);
  stranded->contributors = failed.contributors;
  stranded->reroute_origin = id_;
  ++rstats_.rerouted;
  SendReplyReliable(simulator, state->parent, std::move(stranded),
                    state->subspace.Count(), {});
}

void SuperPeer::HandleReroutedReply(sim::Simulator* simulator,
                                    const ReplyMessage& reply) {
  if (!query_.has_value() || reply.query_id != query_->query_id ||
      reply.reroute_origin == id_) {
    // Unknown query, or our own rerouted data echoed back through a
    // cycle: drop it (the cycle guard below handles repeats).
    ++rstats_.stale_ignored;
    return;
  }
  QueryState* state = &*query_;
  if (state->finished) {
    ++rstats_.stale_ignored;
    return;
  }
  const int origin = reply.reroute_origin;
  if (!state->reroutes_handled.insert(origin).second) {
    ++rstats_.duplicates_suppressed;  // Already folded or relayed.
    return;
  }
  if (!state->is_initiator &&
      (state->replied || state->variant == Variant::kPipeline)) {
    // Our answer already left (or, on the pipeline, we never answer
    // upstream at all): relay the stray towards the initiator. Pipeline
    // parents are the tour predecessors, so the chain terminates there.
    SendReplyReliable(simulator, state->parent,
                      std::make_shared<ReplyMessage>(reply),
                      state->subspace.Count(), {});
    return;
  }
  // Fold the detoured subtree in as extra data — unless everything it
  // covers already arrived through the spanning tree.
  bool fresh = false;
  for (int contributor : reply.contributors) {
    if (state->contributors.count(contributor) == 0) {
      fresh = true;
      break;
    }
  }
  if (fresh) {
    auto& bucket = state->extras[origin];
    bucket.insert(bucket.end(), reply.lists.begin(), reply.lists.end());
    state->contributors.insert(reply.contributors.begin(),
                               reply.contributors.end());
  } else {
    ++rstats_.duplicates_suppressed;
  }
  if (state->is_initiator && state->variant == Variant::kPipeline &&
      !state->finished) {
    // The walk's token was converted into this reply when it stranded —
    // nothing further is in flight, so answer with what came home.
    FinishInitiator(simulator, state);
  }
}

void SuperPeer::SendReplyReliable(sim::Simulator* simulator, int dst,
                                  std::shared_ptr<const ReplyMessage> reply,
                                  int query_dims, std::vector<int> tried) {
  const size_t bytes =
      wire_.ReplyBytes(query_dims, reply->lists.size(), reply->TotalPoints()) +
      wire_.ContributorBytes(reply->contributors.size());
  Outbound hop;
  hop.kind = HopKind::kReply;
  hop.reply = reply;
  hop.tried = std::move(tried);
  SendEnvelope(simulator, dst, bytes, std::move(reply), std::move(hop));
}

// --- local computation ---------------------------------------------------

void SuperPeer::RunLocalScan(const Subspace& subspace, Variant variant,
                             double threshold_in, const ResultList* filter,
                             uint64_t filter_fp,
                             std::shared_ptr<const ResultList>* local,
                             double* threshold_out, size_t* scanned,
                             OpCounts* ops, double* cpu_s) {
  *ops = OpCounts{};
  const StoreView view = View();
  if (variant == Variant::kNaive) {
    // The baseline ignores the f-ordering and the threshold: a plain BNL
    // over the store, then sorted for shipping.
    const auto start = std::chrono::steady_clock::now();
    PointSet skyline = BnlSkylineView(view, subspace, /*ext=*/false, ops);
    ops->sort_steps += SortCost(skyline.size());
    *local = std::make_shared<const ResultList>(BuildSortedByF(skyline));
    *threshold_out = threshold_in;
    *scanned = view.size();
    *cpu_s = SecondsSince(start);
    return;
  }

  if (cache_enabled_) {
    // Serve from the per-subspace cache: the event trace of the
    // *unconstrained* sequential scan is recorded once; every incoming
    // threshold then replays it into the exact truncated-scan result —
    // same survivors, same consumed-point count, same final threshold as
    // a fresh Algorithm 1 pass — without a single dominance test.
    // (Filtering a cached skyline *list* is not enough: the store is
    // f-sorted in full space while dominance is tested in the query
    // subspace, so a point's dominator can lie beyond the threshold
    // cutoff — the truncated scan keeps such a point, the unconstrained
    // skyline has already dropped it.) The cache is thread-safe and may
    // be shared across replica clones: the trace is a pure function of
    // (store, mask, filter), so whichever filler publishes first, every
    // reader replays the same trace, and the replay is identical on hit
    // and miss, which keeps workload aggregates independent of query
    // order. The filter fingerprint is part of the key: a filtered scan's
    // accept/evict events differ from an unfiltered one's, so replaying
    // across filter configurations would be exactly the PR 3 class of
    // cache inexactness. The fill must be the sequential scan — a chunked
    // scan cannot produce the sequential event order — so
    // `scan_chunk_size_` does not apply here.
    const auto start = std::chrono::steady_clock::now();
    if (cache_ == nullptr) {
      cache_ = std::make_shared<SubspaceScanTraceCache>();
    }
    std::shared_ptr<const ScanTrace> entry =
        cache_->Lookup(id_, scan_epoch_, subspace.mask(), filter_fp);
    if (entry == nullptr) {
      auto trace = std::make_shared<ScanTrace>();
      ThresholdScanOptions fill_options;
      fill_options.block_skip = block_skip_;
      fill_options.filter = filter;
      TracedSortedSkyline(view, subspace, fill_options, nullptr,
                          trace.get());
      // Keyed by the epoch the scan actually read (`scan_epoch_`), so a
      // pinned query's old-epoch fill can never serve queries of a newer
      // store.
      entry = cache_->Insert(id_, scan_epoch_, subspace.mask(), filter_fp,
                             std::move(trace));
    }
    ThresholdScanStats stats;
    *local = std::make_shared<const ResultList>(
        ReplayScanTrace(view, *entry, threshold_in, &stats));
    *threshold_out = stats.final_threshold;
    *scanned = stats.scanned;
    // Only the replay is counted: the fill is amortized cache warming, and
    // excluding it keeps counted charges independent of hit/miss order
    // (replicas sharing a cache see different orders). Measured time still
    // covers the whole call, preserving the measured model's semantics.
    *ops = stats.ops;
    *cpu_s = SecondsSince(start);
    return;
  }

  ThresholdScanOptions options;
  options.initial_threshold = threshold_in;
  options.block_skip = block_skip_;
  options.filter = filter;
  ThresholdScanStats stats;
  // Bit-identical to the sequential scan; chunk size 0 or a store no
  // larger than one chunk runs sequentially.
  *local = std::make_shared<const ResultList>(
      ParallelSortedSkyline(view, subspace, scan_chunk_size_, options,
                            &stats, pool_));
  // The scan threshold only ever tightens; RT*M forwards this value.
  *threshold_out = stats.final_threshold;
  *scanned = stats.scanned;
  *ops = stats.ops;
  // Per-chunk work summed across the executing threads — unlike the wall
  // time of this call it contains no pool queueing, so an 8-thread run is
  // charged the same work as a 1-thread run of the same chunking.
  *cpu_s = stats.cpu_seconds;
}

void SuperPeer::StageLocalScan(const Subspace& subspace, Variant variant,
                               double threshold,
                               std::shared_ptr<const ResultList> filter) {
  if (filter != nullptr && filter->empty()) {
    filter = nullptr;
  }
  StagedScan staged;
  staged.mask = subspace.mask();
  staged.variant = variant;
  staged.threshold_in = threshold;
  staged.filter_fp = filter != nullptr ? FilterFingerprint(*filter) : 0;
  RunLocalScan(subspace, variant, threshold, filter.get(), staged.filter_fp,
               &staged.local, &staged.threshold_out, &staged.scanned,
               &staged.ops, &staged.cpu_s);
  staged_ = std::move(staged);
}

double SuperPeer::StagedThreshold() const {
  SKYPEER_CHECK(staged_.has_value());
  return staged_->threshold_out;
}

std::shared_ptr<const ResultList> SuperPeer::StagedLocal() const {
  SKYPEER_CHECK(staged_.has_value());
  return staged_->local;
}

void SuperPeer::StageSpeculativeScan(const Subspace& subspace, Variant variant,
                                     double fixed_threshold,
                                     std::shared_ptr<const ResultList> filter) {
  SKYPEER_CHECK(RefinesThresholdOnPath(variant));
  if (filter != nullptr && filter->empty()) {
    filter = nullptr;
  }
  StagedScan staged;
  staged.mask = subspace.mask();
  staged.variant = variant;
  staged.threshold_in = fixed_threshold;
  staged.filter_fp = filter != nullptr ? FilterFingerprint(*filter) : 0;
  staged.speculative = true;
  const StoreView view = View();
  // Mirrors ParallelSortedSkyline's sequential fallback, including the
  // page-snapped chunk size, so "sequential" is decided identically here
  // and inside the scan.
  const size_t chunk = SnapChunkToPages(view.layout(), scan_chunk_size_);
  if (variant != Variant::kNaive && !cache_enabled_ &&
      (chunk == 0 || view.size() <= chunk)) {
    // Sequential scan: record the event trace so the reconcile can replay
    // the scan under the refined threshold without any dominance test.
    // The filter seeds are baked into the recorded events; the staged
    // fingerprint guards the match.
    ThresholdScanOptions options;
    options.initial_threshold = fixed_threshold;
    options.block_skip = block_skip_;
    options.filter = filter.get();
    ThresholdScanStats stats;
    staged.local = std::make_shared<const ResultList>(TracedSortedSkyline(
        view, subspace, options, &stats, &staged.trace));
    staged.threshold_out = stats.final_threshold;
    staged.scanned = stats.scanned;
    staged.ops = stats.ops;
    staged.cpu_s = stats.cpu_seconds;
    staged.has_trace = true;
  } else {
    // Cache path: the scan warms the shared trace cache (a pure function
    // of the store and filter, so identical to what the protocol run
    // would insert) and the reconcile replays it at the refined value.
    // Chunked path: per-chunk threshold seeds depend on the initial
    // threshold, so the staged result is only valid on an exact match
    // (hop-1 RT*M nodes, which receive precisely the initiator's
    // threshold); deeper nodes rerun inline.
    RunLocalScan(subspace, variant, fixed_threshold, filter.get(),
                 staged.filter_fp, &staged.local, &staged.threshold_out,
                 &staged.scanned, &staged.ops, &staged.cpu_s);
  }
  staged_ = std::move(staged);
}

void SuperPeer::MaybeSelectFilter(sim::Simulator* simulator,
                                  QueryState* state) {
  if (filter_set_size_ == 0 || state->variant == Variant::kNaive) {
    return;
  }
  SKYPEER_CHECK(state->local != nullptr);
  // Selected from this node's (unfiltered) local result, so every filter
  // point is a member of one of the final merge's inputs: whatever the
  // filter prunes remotely, the merge would have removed anyway.
  const auto start = std::chrono::steady_clock::now();
  OpCounts ops;
  state->filter = BuildQueryFilter(*state->local, state->subspace,
                                   filter_set_size_, &ops);
  state->filter_fp =
      state->filter != nullptr ? FilterFingerprint(*state->filter) : 0;
  ChargeOps(simulator, ops, SecondsSince(start));
}

void SuperPeer::ComputeLocal(sim::Simulator* simulator, QueryState* state) {
  if (staged_.has_value() && staged_->mask == state->subspace.mask() &&
      staged_->variant == state->variant &&
      staged_->filter_fp == state->filter_fp &&
      staged_->threshold_in == state->threshold) {
    // Exact match: the staged scan is the inline scan, so its ops (and,
    // under the measured model, its self-measured work seconds) are the
    // inline charge.
    ChargeOps(simulator, staged_->ops, staged_->cpu_s);
    state->local = std::move(staged_->local);
    state->threshold = staged_->threshold_out;
    state->scanned = staged_->scanned;
    staged_.reset();
    return;
  }
  if (staged_.has_value() && staged_->speculative &&
      staged_->mask == state->subspace.mask() &&
      staged_->variant == state->variant &&
      staged_->filter_fp == state->filter_fp &&
      state->threshold < staged_->threshold_in) {
    // Reconcile a speculative scan against the refined threshold the
    // protocol actually delivered. Under the measured model the node
    // really did run the fixed scan (off-thread) plus the reconcile, so
    // both are charged. Counted models charge the replay's ops only —
    // they equal the ops of the direct scan under the refined threshold,
    // so speculative staging leaves counted charges bit-identical to the
    // non-speculative execution.
    if (staged_->has_trace) {
      if (measure_cpu_ && !cost_.counted()) {
        simulator->ChargeCpu(staged_->cpu_s);
      }
      const auto start = std::chrono::steady_clock::now();
      ThresholdScanStats stats;
      state->local = std::make_shared<const ResultList>(ReplayScanTrace(
          View(), staged_->trace, state->threshold, &stats));
      state->threshold = stats.final_threshold;
      state->scanned = stats.scanned;
      staged_.reset();
      ChargeOps(simulator, stats.ops, SecondsSince(start));
      return;
    }
    if (cache_enabled_ && state->variant != Variant::kNaive) {
      // The speculative scan warmed the trace cache; replaying it under
      // the refined threshold is exactly the sequential cache-hit path.
      if (measure_cpu_ && !cost_.counted()) {
        simulator->ChargeCpu(staged_->cpu_s);
      }
      staged_.reset();
      OpCounts ops;
      double cpu_s = 0.0;
      RunLocalScan(state->subspace, state->variant, state->threshold,
                   state->filter.get(), state->filter_fp, &state->local,
                   &state->threshold, &state->scanned, &ops, &cpu_s);
      ChargeOps(simulator, ops, cpu_s);
      return;
    }
    // Chunked speculative scan under a strictly looser threshold: the
    // per-chunk seeds would differ, so fall through to the inline rerun.
  }
  staged_.reset();
  OpCounts ops;
  double cpu_s = 0.0;
  RunLocalScan(state->subspace, state->variant, state->threshold,
               state->filter.get(), state->filter_fp, &state->local,
               &state->threshold, &state->scanned, &ops, &cpu_s);
  ChargeOps(simulator, ops, cpu_s);
}

SuperPeer::LastQueryStats SuperPeer::last_query_stats() const {
  LastQueryStats stats;
  stats.ops = query_ops_;
  if (!query_.has_value()) {
    return stats;
  }
  stats.participated = true;
  stats.scanned = query_->scanned;
  stats.local_result = query_->local != nullptr ? query_->local->size() : 0;
  stats.final_threshold = query_->threshold;
  return stats;
}

// --- flood / reply protocol ----------------------------------------------

void SuperPeer::ForwardQuery(sim::Simulator* simulator, QueryState* state) {
  auto query = std::make_shared<QueryMessage>();
  query->query_id = state->query_id;
  query->subspace = state->subspace;
  query->variant = state->variant;
  query->threshold = state->threshold;
  query->filter = state->filter;
  // The broadcast filter rides every flood hop and is charged to query
  // volume — the volume/pruning trade-off bench_filter_volume measures.
  const size_t query_bytes =
      wire_.query_bytes +
      wire_.FilterBytes(state->subspace.Count(),
                        state->filter != nullptr ? state->filter->size() : 0);
  state->pending = 0;
  for (int neighbor : neighbors_) {
    if (neighbor == state->parent) {
      continue;
    }
    if (reliable_.enabled) {
      state->child_done[neighbor] = false;
      Outbound hop;
      hop.kind = HopKind::kQuery;
      SendEnvelope(simulator, neighbor, query_bytes, query, std::move(hop));
    } else {
      ChargeSerialization(simulator, query_bytes);
      simulator->Send(id_, neighbor, query_bytes, query);
    }
    ++state->pending;
  }
}

void SuperPeer::SendReply(sim::Simulator* simulator, int dst,
                          uint64_t query_id, bool duplicate,
                          std::vector<std::shared_ptr<const ResultList>> lists,
                          int query_dims) {
  auto reply = std::make_shared<ReplyMessage>();
  reply->query_id = query_id;
  reply->duplicate = duplicate;
  reply->lists = std::move(lists);
  const size_t bytes = wire_.ReplyBytes(query_dims, reply->lists.size(),
                                        reply->TotalPoints());
  ChargeSerialization(simulator, bytes);
  simulator->Send(id_, dst, bytes, std::move(reply));
}

void SuperPeer::HandleStart(sim::Simulator* simulator,
                            const StartQueryMessage& start) {
  SKYPEER_CHECK(!query_.has_value());  // One query at a time.
  query_.emplace();
  QueryState* state = &*query_;
  state->query_id = start.query_id;
  state->subspace = start.subspace;
  state->variant = start.variant;
  state->parent = -1;
  state->is_initiator = true;
  state->threshold = std::numeric_limits<double>::infinity();
  if (reliable_.enabled) {
    state->contributors.insert(id_);
    if (reliable_.query_deadline > 0.0) {
      auto deadline = std::make_shared<DeadlineTimer>();
      deadline->query_id = state->query_id;
      deadline_timer_id_ = simulator->ScheduleTimer(
          id_, reliable_.query_deadline, std::move(deadline));
    }
  }

  if (state->variant == Variant::kPipeline) {
    // The initiator seeds the accumulated result with its local skyline
    // and sends the query on its Euler-tour walk.
    ComputeLocal(simulator, state);
    if (start.route.size() <= 1) {
      state->final = *state->local;
      state->finished = true;
      state->finish_time = simulator->CurrentNodeClock();
      if (reliable_.enabled) {
        state->partial =
            static_cast<int>(state->contributors.size()) < num_super_peers_;
        if (deadline_timer_id_ != 0) {
          simulator->CancelTimer(deadline_timer_id_);
          deadline_timer_id_ = 0;
        }
      }
      return;
    }
    // The filter travels the whole tour so every node on the walk can
    // seed its scan; selected after the local scan (its source list).
    MaybeSelectFilter(simulator, state);
    PipelineMessage seed;
    seed.query_id = state->query_id;
    seed.subspace = state->subspace;
    seed.route = std::make_shared<const std::vector<int>>(start.route);
    seed.position = 0;
    seed.filter = state->filter;
    std::vector<int> contributors;
    if (reliable_.enabled) {
      contributors.push_back(id_);
    }
    ForwardPipeline(simulator, seed, state->threshold, state->local,
                    std::move(contributors));
    return;
  }

  if (state->variant == Variant::kNaive) {
    // No threshold to compute: flood first so other super-peers start
    // working as early as possible, then evaluate locally.
    ForwardQuery(simulator, state);
    ComputeLocal(simulator, state);
  } else {
    // §5.2.3: the initiator first runs the local computation to obtain
    // the initial threshold t, then forwards q(U, t) — with the filter
    // set sampled from the local result attached. (Naive floods before
    // computing, so it has no list to sample from and never carries a
    // filter.)
    ComputeLocal(simulator, state);
    MaybeSelectFilter(simulator, state);
    ForwardQuery(simulator, state);
  }
  if (state->pending == 0) {
    Complete(simulator, state);
  }
}

void SuperPeer::HandleQuery(sim::Simulator* simulator,
                            const sim::Message& message,
                            const QueryMessage& query) {
  if (query_.has_value() && query_->query_id == query.query_id) {
    // Flood duplicate: the sender still awaits one reply from us.
    if (reliable_.enabled) {
      auto reply = std::make_shared<ReplyMessage>();
      reply->query_id = query.query_id;
      reply->duplicate = true;
      SendReplyReliable(simulator, message.src, std::move(reply),
                        query.subspace.Count(), {});
    } else {
      SendReply(simulator, message.src, query.query_id, /*duplicate=*/true,
                {}, query.subspace.Count());
    }
    return;
  }
  if (reliable_.enabled) {
    if (query_.has_value()) {
      // A different query while one is active: tolerated (stale), the
      // legacy invariant of one query at a time still holds per run.
      ++rstats_.stale_ignored;
      return;
    }
  } else {
    SKYPEER_CHECK(!query_.has_value());
  }
  query_.emplace();
  QueryState* state = &*query_;
  state->query_id = query.query_id;
  state->subspace = query.subspace;
  state->variant = query.variant;
  state->threshold = query.threshold;
  state->filter = query.filter;
  state->filter_fp =
      query.filter != nullptr ? FilterFingerprint(*query.filter) : 0;
  state->parent = message.src;
  state->is_initiator = false;
  if (reliable_.enabled) {
    state->contributors.insert(id_);
  }

  if (UsesRefinedThreshold(state->variant)) {
    // RT*M: compute first; the refined (lower) threshold is attached to
    // the forwarded query (§5.2.3, Algorithm 3 lines 3-6).
    ComputeLocal(simulator, state);
    ForwardQuery(simulator, state);
  } else {
    // FT*M / naive: forward immediately, then compute.
    ForwardQuery(simulator, state);
    ComputeLocal(simulator, state);
  }
  if (state->pending == 0) {
    Complete(simulator, state);
  }
}

void SuperPeer::HandleReply(sim::Simulator* simulator, int src,
                            const ReplyMessage& reply) {
  if (!reliable_.enabled) {
    SKYPEER_CHECK(query_.has_value());
    QueryState* state = &*query_;
    SKYPEER_CHECK(state->query_id == reply.query_id);
    SKYPEER_CHECK(state->pending > 0);
    --state->pending;
    if (!reply.duplicate) {
      state->collected.insert(state->collected.end(), reply.lists.begin(),
                              reply.lists.end());
    }
    if (state->pending == 0) {
      Complete(simulator, state);
    }
    return;
  }

  if (!query_.has_value() || reply.query_id != query_->query_id ||
      query_->finished) {
    ++rstats_.stale_ignored;
    return;
  }
  QueryState* state = &*query_;
  const auto it = state->child_done.find(src);
  if (it == state->child_done.end()) {
    ++rstats_.stale_ignored;  // Not one of our forwarded neighbors.
    return;
  }
  if (it->second) {
    // The hop to this child was given up (its acks were lost but the
    // deliveries were not) and its real answer arrived late: recover the
    // data through the reroute path instead of corrupting `pending`.
    if (!reply.duplicate) {
      auto recovered = std::make_shared<ReplyMessage>(reply);
      recovered->reroute_origin = src;
      HandleReroutedReply(simulator, *recovered);
    } else {
      ++rstats_.stale_ignored;
    }
    return;
  }
  it->second = true;
  --state->pending;
  if (!reply.duplicate) {
    state->collected_by_child[src] = reply.lists;
    state->contributors.insert(reply.contributors.begin(),
                               reply.contributors.end());
  }
  if (state->pending == 0) {
    Complete(simulator, state);
  }
}

// --- pipeline variant ----------------------------------------------------

void SuperPeer::ForwardPipeline(sim::Simulator* simulator,
                                const PipelineMessage& previous,
                                double threshold,
                                std::shared_ptr<const ResultList> accumulated,
                                std::vector<int> contributors) {
  auto next = std::make_shared<PipelineMessage>();
  next->query_id = previous.query_id;
  next->subspace = previous.subspace;
  next->threshold = threshold;
  next->route = previous.route;
  next->position = previous.position + 1;
  next->accumulated = std::move(accumulated);
  next->contributors = std::move(contributors);
  next->filter = previous.filter;
  const int dst = (*next->route)[next->position];
  const size_t bytes =
      wire_.query_bytes +
      wire_.ReplyBytes(next->subspace.Count(), 1, next->accumulated->size()) +
      wire_.ContributorBytes(next->contributors.size()) +
      wire_.FilterBytes(next->subspace.Count(),
                        next->filter != nullptr ? next->filter->size() : 0);
  if (reliable_.enabled) {
    Outbound hop;
    hop.kind = HopKind::kPipeline;
    hop.pipeline = next;
    SendEnvelope(simulator, dst, bytes, next, std::move(hop));
  } else {
    ChargeSerialization(simulator, bytes);
    simulator->Send(id_, dst, bytes, std::move(next));
  }
}

void SuperPeer::HandlePipeline(sim::Simulator* simulator, int src,
                               const PipelineMessage& message) {
  if (reliable_.enabled) {
    if ((*message.route)[message.position] != id_) {
      ++rstats_.stale_ignored;  // Mis-addressed hop — tolerate.
      return;
    }
  } else {
    SKYPEER_CHECK((*message.route)[message.position] == id_);
  }

  if (message.position + 1 == message.route->size()) {
    // The walk has returned to the initiator: the accumulated list is the
    // global subspace skyline.
    if (reliable_.enabled) {
      if (!query_.has_value() || !query_->is_initiator ||
          query_->query_id != message.query_id || query_->finished) {
        ++rstats_.stale_ignored;
        return;
      }
    } else {
      SKYPEER_CHECK(query_.has_value());
      SKYPEER_CHECK(query_->is_initiator);
      SKYPEER_CHECK(query_->query_id == message.query_id);
    }
    QueryState* state = &*query_;
    state->final = *message.accumulated;
    if (reliable_.enabled) {
      state->contributors.insert(message.contributors.begin(),
                                 message.contributors.end());
      state->partial =
          static_cast<int>(state->contributors.size()) < num_super_peers_ ||
          state->deadline_fired;
      if (deadline_timer_id_ != 0) {
        simulator->CancelTimer(deadline_timer_id_);
        deadline_timer_id_ = 0;
      }
    }
    state->finished = true;
    state->finish_time = simulator->CurrentNodeClock();
    return;
  }

  if (query_.has_value() && query_->query_id == message.query_id) {
    // Revisit on the Euler tour: pass the query through unchanged.
    ForwardPipeline(simulator, message, message.threshold,
                    message.accumulated, message.contributors);
    return;
  }

  // First visit: compute the local skyline under the travelling threshold
  // and fold it into the accumulated result.
  if (reliable_.enabled) {
    if (query_.has_value()) {
      ++rstats_.stale_ignored;
      return;
    }
  } else {
    SKYPEER_CHECK(!query_.has_value());
  }
  query_.emplace();
  QueryState* state = &*query_;
  state->query_id = message.query_id;
  state->subspace = message.subspace;
  state->variant = Variant::kPipeline;
  state->threshold = message.threshold;
  state->filter = message.filter;
  state->filter_fp =
      message.filter != nullptr ? FilterFingerprint(*message.filter) : 0;
  // Reliable mode remembers the tour predecessor: the chain of first-visit
  // senders always leads back to the initiator over hops that worked at
  // least once, which is the escape route when the walk strands.
  state->parent = reliable_.enabled ? src : -1;
  state->is_initiator = false;
  ComputeLocal(simulator, state);

  std::shared_ptr<const ResultList> merged;
  double threshold = state->threshold;
  {
    std::vector<const ResultList*> inputs = {message.accumulated.get(),
                                             state->local.get()};
    ThresholdScanOptions options;
    options.initial_threshold = message.threshold;
    options.dedup_ids = reliable_.enabled;
    ThresholdScanStats stats;
    merged = std::make_shared<const ResultList>(
        MergeSortedSkylines(inputs, state->subspace, options, &stats));
    threshold = std::min(threshold, stats.final_threshold);
    ChargeOps(simulator, stats.ops, stats.cpu_seconds);
  }
  std::vector<int> contributors = message.contributors;
  if (reliable_.enabled) {
    contributors.push_back(id_);
  }
  ForwardPipeline(simulator, message, threshold, std::move(merged),
                  std::move(contributors));
}

// --- completion ----------------------------------------------------------

void SuperPeer::FinishInitiator(sim::Simulator* simulator,
                                QueryState* state) {
  SKYPEER_CHECK(reliable_.enabled);
  SKYPEER_CHECK(state->is_initiator);
  SKYPEER_CHECK(state->local != nullptr);
  {
    const auto start = std::chrono::steady_clock::now();
    OpCounts ops;
    if (state->variant == Variant::kNaive) {
      // Central dominance-based merge; overlapping inputs (reroute
      // detours) are deduplicated by point id — copies of a point never
      // dominate each other, so BNL alone would keep both.
      PointSet all(dims_);
      std::unordered_set<PointId> seen_points;
      const auto append = [&](const ResultList& list) {
        for (size_t i = 0; i < list.size(); ++i) {
          if (seen_points.insert(list.points.id(i)).second) {
            all.Append(list.points[i], list.points.id(i));
          }
        }
      };
      for (const auto& [child, lists] : state->collected_by_child) {
        for (const auto& list : lists) {
          append(*list);
        }
      }
      for (const auto& [origin, lists] : state->extras) {
        for (const auto& list : lists) {
          append(*list);
        }
      }
      append(*state->local);
      PointSet skyline = BnlSkyline(all, state->subspace, /*ext=*/false, &ops);
      ops.sort_steps += SortCost(skyline.size());
      state->final = BuildSortedByF(skyline);
    } else {
      std::vector<const ResultList*> inputs;
      for (const auto& [child, lists] : state->collected_by_child) {
        for (const auto& list : lists) {
          inputs.push_back(list.get());
        }
      }
      for (const auto& [origin, lists] : state->extras) {
        for (const auto& list : lists) {
          inputs.push_back(list.get());
        }
      }
      inputs.push_back(state->local.get());
      ThresholdScanOptions options;
      options.initial_threshold = state->threshold;
      options.dedup_ids = true;
      ThresholdScanStats stats;
      state->final = MergeSortedSkylines(dims_, inputs, state->subspace,
                                         options, &stats);
      ops = stats.ops;
    }
    ChargeOps(simulator, ops, SecondsSince(start));
  }
  state->partial =
      static_cast<int>(state->contributors.size()) < num_super_peers_ ||
      state->deadline_fired;
  state->finished = true;
  state->finish_time = simulator->CurrentNodeClock();
  if (deadline_timer_id_ != 0) {
    simulator->CancelTimer(deadline_timer_id_);
    deadline_timer_id_ = 0;
  }
}

void SuperPeer::Complete(sim::Simulator* simulator, QueryState* state) {
  SKYPEER_CHECK(state->local != nullptr);

  if (reliable_.enabled) {
    if (state->finished) {
      return;  // The deadline already resolved this query.
    }
    if (!state->is_initiator) {
      auto reply = std::make_shared<ReplyMessage>();
      reply->query_id = state->query_id;
      reply->duplicate = false;
      if (UsesProgressiveMerging(state->variant)) {
        // Canonical input order — children by id, then detoured extras
        // by origin id, own list last — so lossy runs merge exactly like
        // fault-free ones regardless of reply arrival order.
        const auto start = std::chrono::steady_clock::now();
        std::vector<const ResultList*> inputs;
        for (const auto& [child, lists] : state->collected_by_child) {
          for (const auto& list : lists) {
            inputs.push_back(list.get());
          }
        }
        for (const auto& [origin, lists] : state->extras) {
          for (const auto& list : lists) {
            inputs.push_back(list.get());
          }
        }
        inputs.push_back(state->local.get());
        ThresholdScanOptions options;
        options.initial_threshold = state->threshold;
        options.dedup_ids = true;
        ThresholdScanStats stats;
        reply->lists.push_back(std::make_shared<const ResultList>(
            MergeSortedSkylines(dims_, inputs, state->subspace, options,
                                &stats)));
        ChargeOps(simulator, stats.ops, SecondsSince(start));
      } else {
        for (const auto& [child, lists] : state->collected_by_child) {
          reply->lists.insert(reply->lists.end(), lists.begin(), lists.end());
        }
        for (const auto& [origin, lists] : state->extras) {
          reply->lists.insert(reply->lists.end(), lists.begin(), lists.end());
        }
        reply->lists.push_back(state->local);
      }
      reply->contributors.assign(state->contributors.begin(),
                                 state->contributors.end());
      state->replied = true;
      SendReplyReliable(simulator, state->parent, std::move(reply),
                        state->subspace.Count(), {});
      return;
    }
    FinishInitiator(simulator, state);
    return;
  }

  if (!state->is_initiator) {
    std::vector<std::shared_ptr<const ResultList>> lists;
    if (UsesProgressiveMerging(state->variant)) {
      // *TPM: merge everything received with the local result before
      // relaying (Algorithm 3 lines 15-16).
      const auto start = std::chrono::steady_clock::now();
      std::vector<const ResultList*> inputs;
      inputs.reserve(state->collected.size() + 1);
      for (const auto& list : state->collected) {
        inputs.push_back(list.get());
      }
      inputs.push_back(state->local.get());
      ThresholdScanOptions options;
      options.initial_threshold = state->threshold;
      ThresholdScanStats stats;
      lists.push_back(std::make_shared<const ResultList>(
          MergeSortedSkylines(inputs, state->subspace, options, &stats)));
      ChargeOps(simulator, stats.ops, SecondsSince(start));
    } else {
      // *TFM / naive: relay children bundles unmerged plus our own list.
      lists = std::move(state->collected);
      lists.push_back(state->local);
    }
    SendReply(simulator, state->parent, state->query_id, /*duplicate=*/false,
              std::move(lists), state->subspace.Count());
    return;
  }

  // Initiator: final merge.
  {
    const auto start = std::chrono::steady_clock::now();
    OpCounts ops;
    if (state->variant == Variant::kNaive) {
      // Central dominance-based merge of everything, the §3.2 baseline.
      PointSet all(dims_);
      for (const auto& list : state->collected) {
        all.AppendAll(list->points);
      }
      all.AppendAll(state->local->points);
      PointSet skyline = BnlSkyline(all, state->subspace, /*ext=*/false, &ops);
      ops.sort_steps += SortCost(skyline.size());
      state->final = BuildSortedByF(skyline);
    } else {
      std::vector<const ResultList*> inputs;
      inputs.reserve(state->collected.size() + 1);
      for (const auto& list : state->collected) {
        inputs.push_back(list.get());
      }
      inputs.push_back(state->local.get());
      ThresholdScanOptions options;
      options.initial_threshold = state->threshold;
      ThresholdScanStats stats;
      state->final =
          MergeSortedSkylines(inputs, state->subspace, options, &stats);
      ops = stats.ops;
    }
    ChargeOps(simulator, ops, SecondsSince(start));
  }
  state->finished = true;
  state->finish_time = simulator->CurrentNodeClock();
}

}  // namespace skypeer
