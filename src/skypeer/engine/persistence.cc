#include "skypeer/engine/persistence.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "skypeer/engine/wire.h"

namespace skypeer {

namespace {

constexpr uint32_t kSnapshotMagic = 0x534b5053;  // "SKPS"
constexpr uint32_t kSnapshotVersion = 1;

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file != nullptr) {
      std::fclose(file);
    }
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* file, uint32_t value) {
  return std::fwrite(&value, sizeof(value), 1, file) == 1;
}
bool WriteU64(std::FILE* file, uint64_t value) {
  return std::fwrite(&value, sizeof(value), 1, file) == 1;
}
bool ReadU32(std::FILE* file, uint32_t* value) {
  return std::fread(value, sizeof(*value), 1, file) == 1;
}
bool ReadU64(std::FILE* file, uint64_t* value) {
  return std::fread(value, sizeof(*value), 1, file) == 1;
}

}  // namespace

Status SaveStores(const SkypeerNetwork& network, const std::string& path) {
  if (!network.preprocessed()) {
    return Status::FailedPrecondition("network is not preprocessed");
  }
  FileHandle file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  const Subspace full = Subspace::FullSpace(network.dims());
  if (!WriteU32(file.get(), kSnapshotMagic) ||
      !WriteU32(file.get(), kSnapshotVersion) ||
      !WriteU32(file.get(), static_cast<uint32_t>(network.dims())) ||
      !WriteU32(file.get(),
                static_cast<uint32_t>(network.num_super_peers()))) {
    return Status::Internal("write failed: " + path);
  }
  for (int sp = 0; sp < network.num_super_peers(); ++sp) {
    const std::vector<uint8_t> encoded =
        EncodeResultList(network.super_peer(sp).MaterializeStore(), full);
    if (!WriteU64(file.get(), encoded.size()) ||
        (!encoded.empty() &&
         std::fwrite(encoded.data(), 1, encoded.size(), file.get()) !=
             encoded.size())) {
      return Status::Internal("write failed: " + path);
    }
  }
  return Status::OK();
}

Status LoadStores(SkypeerNetwork* network, const std::string& path) {
  SKYPEER_CHECK(network != nullptr);
  FileHandle file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open file: " + path);
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t dims = 0;
  uint32_t num_super_peers = 0;
  if (!ReadU32(file.get(), &magic) || magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a SKYPEER snapshot: " + path);
  }
  if (!ReadU32(file.get(), &version) || version != kSnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  if (!ReadU32(file.get(), &dims) ||
      static_cast<int>(dims) != network->dims()) {
    return Status::InvalidArgument("snapshot dimensionality mismatch");
  }
  if (!ReadU32(file.get(), &num_super_peers) ||
      static_cast<int>(num_super_peers) != network->num_super_peers()) {
    return Status::InvalidArgument("snapshot super-peer count mismatch");
  }

  std::vector<ResultList> stores;
  stores.reserve(num_super_peers);
  for (uint32_t sp = 0; sp < num_super_peers; ++sp) {
    uint64_t encoded_size = 0;
    if (!ReadU64(file.get(), &encoded_size)) {
      return Status::InvalidArgument("truncated snapshot");
    }
    std::vector<uint8_t> encoded(encoded_size);
    if (encoded_size > 0 &&
        std::fread(encoded.data(), 1, encoded_size, file.get()) !=
            encoded_size) {
      return Status::InvalidArgument("truncated snapshot");
    }
    WireList wire;
    SKYPEER_RETURN_IF_ERROR(
        DecodeResultList(encoded.data(), encoded.size(), &wire));
    if (wire.subspace != Subspace::FullSpace(network->dims())) {
      return Status::InvalidArgument("snapshot store is not full-space");
    }
    ResultList store(network->dims());
    store.points.Reserve(wire.size());
    for (size_t i = 0; i < wire.size(); ++i) {
      store.points.Append(wire.coords.data() + i * dims, wire.ids[i]);
      store.f.push_back(wire.f[i]);
    }
    if (!store.IsSorted()) {
      return Status::InvalidArgument("snapshot store is not f-sorted");
    }
    stores.push_back(std::move(store));
  }
  return network->AdoptStores(std::move(stores));
}

}  // namespace skypeer
