#include "skypeer/engine/network_builder.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include <limits>

#include "skypeer/algo/extended_skyline.h"
#include "skypeer/algo/filter_set.h"
#include "skypeer/algo/sfs.h"
#include "skypeer/common/macros.h"
#include "skypeer/common/rng.h"
#include "skypeer/common/thread_pool.h"
#include "skypeer/engine/peer.h"

namespace skypeer {

Status SkypeerNetwork::Validate(const NetworkConfig& config) {
  if (config.dims < 1 || config.dims > kMaxDims) {
    return Status::InvalidArgument("dims must be in [1, 32]");
  }
  if (config.points_per_peer < 0) {
    return Status::InvalidArgument("points_per_peer must be >= 0");
  }
  if (config.bandwidth <= 0.0) {
    return Status::InvalidArgument("bandwidth must be positive");
  }
  if (config.latency < 0.0) {
    return Status::InvalidArgument("latency must be >= 0");
  }
  if (config.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  if (config.page_size < kMinPageSize || config.page_size > kMaxPageSize ||
      (config.page_size & (config.page_size - 1)) != 0) {
    return Status::InvalidArgument(
        "page_size must be a power of two in [4096, 1048576]");
  }
  const size_t bytes_per_block =
      (static_cast<size_t>(config.dims) + 2) * kDomBlockWidth * sizeof(double);
  if (config.page_size < bytes_per_block) {
    return Status::InvalidArgument("page_size cannot hold one block");
  }
  if (config.buffer_pages == 1) {
    return Status::InvalidArgument(
        "buffer_pages must be 0 (in-memory) or >= 2");
  }
  if (config.drop_prob < 0.0 || config.drop_prob >= 1.0) {
    return Status::InvalidArgument("drop_prob must be in [0, 1)");
  }
  if (config.delay_jitter < 0.0) {
    return Status::InvalidArgument("delay_jitter must be >= 0");
  }
  if (config.ack_timeout <= 0.0) {
    return Status::InvalidArgument("ack_timeout must be positive");
  }
  if (config.max_retries < 0) {
    return Status::InvalidArgument("max_retries must be >= 0");
  }
  if (config.query_deadline < 0.0) {
    return Status::InvalidArgument("query_deadline must be >= 0");
  }
  if (!config.reliable &&
      (config.drop_prob > 0.0 || !config.crashed_sps.empty())) {
    // The legacy transport deadlocks on lost messages; only delay jitter
    // (reordering) is tolerable without the reliable protocol.
    return Status::InvalidArgument(
        "message loss (drop_prob, crashed_sps) requires reliable=true");
  }
  for (int sp : config.crashed_sps) {
    if (sp < 0) {
      return Status::InvalidArgument("crashed_sps ids must be >= 0");
    }
  }
  if (config.churn_events < 0) {
    return Status::InvalidArgument("churn_events must be >= 0");
  }
  if (config.churn_events > 0 && !config.dynamic_membership) {
    return Status::InvalidArgument(
        "scheduled churn (churn_events) requires dynamic_membership");
  }
  if (config.churn_events > 0 && config.churn_rate <= 0.0) {
    return Status::InvalidArgument("churn_rate must be positive");
  }
  OverlayConfig overlay_config;
  overlay_config.num_peers = config.num_peers;
  overlay_config.num_super_peers = config.num_super_peers;
  overlay_config.degree_sp = config.degree_sp;
  overlay_config.topology = config.topology;
  return ValidateOverlayConfig(overlay_config);
}

SkypeerNetwork::SkypeerNetwork(const NetworkConfig& config)
    : config_(config), all_data_(config.dims) {
  SKYPEER_CHECK(Validate(config).ok());

  Rng rng(config_.seed);
  OverlayConfig overlay_config;
  overlay_config.num_peers = config_.num_peers;
  overlay_config.num_super_peers = config_.num_super_peers;
  overlay_config.degree_sp = config_.degree_sp;
  overlay_config.topology = config_.topology;
  overlay_config.seed = rng.Fork();
  overlay_ = BuildOverlay(overlay_config);

  if (config_.threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.threads);
    pool_ = owned_pool_.get();
  }
  if (config_.enable_cache) {
    result_cache_ =
        std::make_shared<SubspaceScanTraceCache>(config_.cache_max_entries);
  }
  if (config_.buffer_pages > 0) {
    buffer_ = std::make_unique<BufferManager>(config_.page_size,
                                              config_.buffer_pages, pool());
  }

  const int num_sp = overlay_.num_super_peers();
  super_peers_.reserve(num_sp);
  for (int i = 0; i < num_sp; ++i) {
    super_peers_.push_back(
        std::make_unique<SuperPeer>(i, config_.dims, config_.wire));
    super_peers_.back()->set_thread_pool(pool_);
    super_peers_.back()->SetCostModel(config_.cost_model);
    super_peers_.back()->set_page_size(config_.page_size);
    super_peers_.back()->set_incremental_maintenance(
        config_.incremental_maintenance);
    super_peers_.back()->set_verify_maintenance(config_.verify_maintenance);
    if (buffer_ != nullptr) {
      super_peers_.back()->ConfigurePaging(buffer_.get(), config_.page_size);
    }
    if (result_cache_ != nullptr) {
      super_peers_.back()->SetResultCache(result_cache_);
    }
    const int sim_id = simulator_.AddNode(super_peers_.back().get());
    SKYPEER_CHECK(sim_id == i);
  }
  const sim::LinkParams params{config_.bandwidth, config_.latency};
  for (int a = 0; a < num_sp; ++a) {
    std::vector<int> neighbors = overlay_.backbone.Neighbors(a);
    super_peers_[a]->SetNeighbors(neighbors);
    for (int b : neighbors) {
      if (a < b) {
        simulator_.Connect(a, b, params);
      }
    }
  }

  if (config_.reliable) {
    ReliableParams reliable;
    reliable.enabled = true;
    reliable.ack_timeout = config_.ack_timeout;
    reliable.max_retries = config_.max_retries;
    reliable.query_deadline = config_.query_deadline;
    reliable.bandwidth_hint = config_.bandwidth;
    for (auto& sp : super_peers_) {
      sp->SetReliableParams(reliable);
      sp->set_num_super_peers(num_sp);
    }
  }
  sim::FaultPlan plan;
  plan.seed = config_.fault_seed != 0
                  ? config_.fault_seed
                  : config_.seed ^ 0xfa0171fa0171fa01ULL;
  plan.drop_prob = config_.drop_prob;
  plan.delay_jitter = config_.delay_jitter;
  for (int sp : config_.crashed_sps) {
    SKYPEER_CHECK(sp < num_sp);
    plan.CrashNode(sp);
  }
  if (plan.HasFaults()) {
    simulator_.SetFaultPlan(std::move(plan));
  }

  if (config_.churn_events > 0) {
    const uint64_t churn_seed = config_.churn_seed != 0
                                    ? config_.churn_seed
                                    : config_.seed ^ 0xc4a221c4a221c4a2ULL;
    churn_plan_ = sim::ChurnPlan::Seeded(
        config_.churn_events, config_.churn_rate, churn_seed,
        /*num_slots=*/config_.churn_events, num_sp);
  }
}

void SkypeerNetwork::SetChurnPlan(sim::ChurnPlan plan) {
  SKYPEER_CHECK(config_.dynamic_membership || plan.empty());
  for (const sim::ChurnEvent& event : plan.events) {
    SKYPEER_CHECK(event.node >= 0 && event.node < num_super_peers());
    SKYPEER_CHECK(event.time >= 0.0);
  }
  churn_plan_ = std::move(plan);
  churn_slot_ = 0;
}

Status SkypeerNetwork::ApplyChurnEvent(const sim::ChurnEvent& event,
                                       OpCounts* maintenance_ops) {
  if (!preprocessed_) {
    return Status::FailedPrecondition("network is not preprocessed yet");
  }
  if (!config_.dynamic_membership) {
    return Status::FailedPrecondition(
        "dynamic_membership is disabled in the configuration");
  }
  if (event.node < 0 || event.node >= num_super_peers()) {
    return Status::OutOfRange("churn event node out of range");
  }
  Rng rng(event.seed);
  OpCounts ops;
  Status status = Status::OK();
  switch (event.kind) {
    case sim::ChurnKind::kJoin: {
      // Fresh peers always draw uniform data: the event seed alone
      // determines the dataset, so a replayed plan joins bit-identical
      // points regardless of store mode or thread count. Ids are
      // reassigned by JoinPeer.
      PointSet data = GenerateUniform(config_.dims, config_.points_per_peer,
                                      &rng, /*first_id=*/0);
      status = JoinPeer(event.node, std::move(data), nullptr, &ops);
      if (status.ok()) {
        ++churn_stats_.joins;
      }
      break;
    }
    case sim::ChurnKind::kRemove: {
      const auto& peers = overlay_.super_peer_peers[event.node];
      if (peers.empty()) {
        ++churn_stats_.skipped;  // Deterministic no-op: nothing to remove.
        break;
      }
      const int victim =
          peers[rng.UniformInt(0, static_cast<int>(peers.size()) - 1)];
      status = RemovePeer(victim, &ops);
      if (status.ok()) {
        ++churn_stats_.removals;
      }
      break;
    }
    case sim::ChurnKind::kReplace: {
      const auto& peers = overlay_.super_peer_peers[event.node];
      if (peers.empty()) {
        ++churn_stats_.skipped;
        break;
      }
      const int victim =
          peers[rng.UniformInt(0, static_cast<int>(peers.size()) - 1)];
      PointSet data = GenerateUniform(config_.dims, config_.points_per_peer,
                                      &rng, /*first_id=*/0);
      status = ReplacePeerData(victim, std::move(data), &ops);
      if (status.ok()) {
        ++churn_stats_.replacements;
      }
      break;
    }
  }
  churn_stats_.maintenance_ops += ops;
  if (maintenance_ops != nullptr) {
    *maintenance_ops += ops;
  }
  return status;
}

void SkypeerNetwork::SetFaultPlan(sim::FaultPlan plan) {
  simulator_.SetFaultPlan(std::move(plan));
}

void SkypeerNetwork::ResetProtocolState() {
  simulator_.Reset();
  for (auto& sp : super_peers_) {
    sp->ResetProtocolState();
  }
}

SkypeerNetwork::~SkypeerNetwork() = default;

ThreadPool* SkypeerNetwork::pool() const {
  return pool_ != nullptr ? pool_ : ThreadPool::Global();
}

PreprocessStats SkypeerNetwork::Preprocess() {
  SKYPEER_CHECK(!preprocessed_);
  PreprocessStats stats;
  Rng rng(config_.seed ^ 0x5eed5eed5eed5eedULL);

  // Phase 1 (sequential): consume the master RNG in the historical order
  // — per super-peer a centroid draw (clustered only), then one fork per
  // associated peer — so the generated dataset is bit-identical at any
  // thread count.
  struct PeerJob {
    int sp = 0;
    int peer_id = 0;
    uint64_t seed = 0;
    PointId first_id = 0;
    std::vector<double> centroid;  // Clustered distribution only.
    // Worker outputs.
    PointSet data{1};
    ResultList ext{1};
    size_t data_size = 0;
    double cpu_s = 0.0;
    OpCounts ops;
  };
  std::vector<PeerJob> jobs;
  jobs.reserve(overlay_.num_peers());
  for (int sp = 0; sp < overlay_.num_super_peers(); ++sp) {
    super_peers_[sp]->set_retain_peer_lists(config_.dynamic_membership);
    super_peers_[sp]->set_enable_cache(config_.enable_cache);
    super_peers_[sp]->set_scan_chunk_size(config_.scan_chunk_size);
    super_peers_[sp]->set_block_skip(config_.block_skip);
    super_peers_[sp]->set_filter_set_size(config_.filter_set_size);
    // The clustered workload has each super-peer pick a centroid; its
    // associated peers draw Gaussian points around it (§6).
    std::vector<double> centroid;
    if (config_.distribution == Distribution::kClustered) {
      centroid = RandomCentroid(config_.dims, &rng);
    }
    for (int peer_id : overlay_.super_peer_peers[sp]) {
      PeerJob job;
      job.sp = sp;
      job.peer_id = peer_id;
      job.seed = rng.Fork();
      job.first_id = static_cast<PointId>(peer_id) * config_.points_per_peer;
      job.centroid = centroid;
      jobs.push_back(std::move(job));
    }
  }

  // Phase 2 (parallel): every peer generates its partition and computes
  // its extended skyline independently — the embarrassingly parallel
  // bulk of pre-processing.
  pool()->ParallelFor(jobs.size(), [&](size_t i) {
    PeerJob& job = jobs[i];
    Rng peer_rng(job.seed);
    PointSet data(config_.dims);
    switch (config_.distribution) {
      case Distribution::kUniform:
        data = GenerateUniform(config_.dims, config_.points_per_peer,
                               &peer_rng, job.first_id);
        break;
      case Distribution::kClustered:
        data = GenerateClustered(job.centroid, config_.points_per_peer,
                                 kClusterStdDev, &peer_rng, job.first_id);
        break;
      case Distribution::kCorrelated:
        data = GenerateCorrelated(config_.dims, config_.points_per_peer,
                                  &peer_rng, job.first_id);
        break;
      case Distribution::kAnticorrelated:
        data = GenerateAnticorrelated(config_.dims, config_.points_per_peer,
                                      &peer_rng, job.first_id);
        break;
    }
    job.data_size = data.size();
    const auto start = std::chrono::steady_clock::now();
    // What Peer::ComputeExtendedSkyline runs.
    ThresholdScanStats scan_stats;
    job.ext = ExtendedSkyline(data, &scan_stats);
    job.ops = scan_stats.ops;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    job.cpu_s = elapsed.count();
    if (config_.retain_peer_data) {
      job.data = std::move(data);
    }
  });

  // Phase 3 (sequential, job order): aggregate statistics and upload the
  // lists in the same peer order as the sequential code did.
  for (PeerJob& job : jobs) {
    if (config_.retain_peer_data) {
      all_data_.AppendAll(job.data);
    }
    stats.total_points += job.data_size;
    if (config_.dynamic_membership) {
      peer_point_ranges_[job.peer_id] = {
          job.first_id, job.first_id + static_cast<PointId>(job.data_size)};
    }
    stats.peer_ops += job.ops;
    stats.peer_cpu_s += config_.cost_model.counted()
                            ? config_.cost_model.Seconds(job.ops)
                            : job.cpu_s;
    stats.peer_ext_points += job.ext.size();
    super_peers_[job.sp]->AddPeerList(job.peer_id, std::move(job.ext));
  }
  jobs.clear();

  // Phase 4 (parallel): each super-peer merges its uploaded lists.
  std::vector<double> merge_cpu_s(overlay_.num_super_peers(), 0.0);
  std::vector<OpCounts> merge_ops(overlay_.num_super_peers());
  pool()->ParallelFor(overlay_.num_super_peers(), [&](size_t sp) {
    merge_cpu_s[sp] = super_peers_[sp]->FinalizePreprocessing(&merge_ops[sp]);
  });
  for (int sp = 0; sp < overlay_.num_super_peers(); ++sp) {
    stats.super_peer_ops += merge_ops[sp];
    stats.super_peer_cpu_s += config_.cost_model.counted()
                                  ? config_.cost_model.Seconds(merge_ops[sp])
                                  : merge_cpu_s[sp];
    stats.super_peer_ext_points += super_peers_[sp]->StoreSize();
  }
  total_points_ = stats.total_points;
  next_peer_id_ = config_.num_peers;
  next_point_id_ =
      static_cast<PointId>(config_.num_peers) * config_.points_per_peer;
  preprocessed_ = true;
  return stats;
}

Status SkypeerNetwork::AdoptStores(std::vector<ResultList> stores) {
  if (preprocessed_) {
    return Status::FailedPrecondition("network is already preprocessed");
  }
  if (static_cast<int>(stores.size()) != num_super_peers()) {
    return Status::InvalidArgument("store count does not match super-peers");
  }
  size_t total = 0;
  for (const ResultList& store : stores) {
    if (store.points.dims() != config_.dims) {
      return Status::InvalidArgument("store dimensionality mismatch");
    }
    if (!store.IsSorted()) {
      return Status::InvalidArgument("store is not f-sorted");
    }
    total += store.size();
  }
  for (int sp = 0; sp < num_super_peers(); ++sp) {
    super_peers_[sp]->set_enable_cache(config_.enable_cache);
    super_peers_[sp]->set_scan_chunk_size(config_.scan_chunk_size);
    super_peers_[sp]->set_block_skip(config_.block_skip);
    super_peers_[sp]->set_filter_set_size(config_.filter_set_size);
    super_peers_[sp]->SetStore(std::move(stores[sp]));
  }
  // Only the retained fraction is known after a restore.
  total_points_ = total;
  preprocessed_ = true;
  return Status::OK();
}

Status SkypeerNetwork::JoinPeer(int super_peer, PointSet data,
                                int* out_peer_id, OpCounts* maintenance_ops) {
  if (!preprocessed_) {
    return Status::FailedPrecondition("network is not preprocessed yet");
  }
  if (!config_.dynamic_membership) {
    return Status::FailedPrecondition(
        "dynamic_membership is disabled in the configuration");
  }
  if (super_peer < 0 || super_peer >= num_super_peers()) {
    return Status::OutOfRange("no such super-peer");
  }
  if (data.dims() != config_.dims) {
    return Status::InvalidArgument("dimensionality mismatch");
  }

  // Re-identify the points so ids stay globally unique.
  PointSet fresh(config_.dims);
  fresh.Reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    fresh.Append(data[i], next_point_id_ + i);
  }
  const int peer_id = next_peer_id_++;
  peer_point_ranges_[peer_id] = {
      next_point_id_, next_point_id_ + static_cast<PointId>(fresh.size())};
  next_point_id_ += fresh.size();
  total_points_ += fresh.size();
  if (config_.retain_peer_data) {
    all_data_.AppendAll(fresh);
  }

  Peer peer(peer_id, std::move(fresh));
  SKYPEER_RETURN_IF_ERROR(super_peers_[super_peer]->JoinPeer(
      peer_id, peer.ComputeExtendedSkyline(), maintenance_ops));

  // Overlay bookkeeping.
  overlay_.peer_super_peer.resize(
      std::max<size_t>(overlay_.peer_super_peer.size(), peer_id + 1), -1);
  overlay_.peer_super_peer[peer_id] = super_peer;
  overlay_.super_peer_peers[super_peer].push_back(peer_id);

  if (out_peer_id != nullptr) {
    *out_peer_id = peer_id;
  }
  return Status::OK();
}

Status SkypeerNetwork::RemovePeer(int peer_id, OpCounts* maintenance_ops) {
  if (!config_.dynamic_membership) {
    return Status::FailedPrecondition(
        "dynamic_membership is disabled in the configuration");
  }
  const auto range_it = peer_point_ranges_.find(peer_id);
  if (range_it == peer_point_ranges_.end()) {
    return Status::NotFound("unknown peer id");
  }
  const int super_peer = overlay_.peer_super_peer[peer_id];
  SKYPEER_RETURN_IF_ERROR(
      super_peers_[super_peer]->RemovePeer(peer_id, maintenance_ops));

  const auto [lo, hi] = range_it->second;
  total_points_ -= static_cast<size_t>(hi - lo);
  peer_point_ranges_.erase(range_it);
  if (config_.retain_peer_data) {
    PointSet remaining(config_.dims);
    remaining.Reserve(all_data_.size());
    for (size_t i = 0; i < all_data_.size(); ++i) {
      if (all_data_.id(i) < lo || all_data_.id(i) >= hi) {
        remaining.AppendFrom(all_data_, i);
      }
    }
    all_data_ = std::move(remaining);
  }

  // Overlay bookkeeping.
  overlay_.peer_super_peer[peer_id] = -1;
  auto& peers = overlay_.super_peer_peers[super_peer];
  peers.erase(std::find(peers.begin(), peers.end(), peer_id));
  return Status::OK();
}

SkypeerNetwork::RunOutcome SkypeerNetwork::RunOnce(
    Subspace subspace, int initiator_sp, Variant variant,
    const sim::LinkParams& params, ResultList* result) {
  simulator_.Reset();
  simulator_.SetAllLinkParams(params);
  for (auto& sp : super_peers_) {
    sp->ResetProtocolState();
    sp->set_measure_cpu(config_.measure_cpu);
  }

  // Scheduled-churn maintenance ticks riding on this query (see
  // ExecuteQuery): identical timers in both simulation runs, so the
  // charged maintenance cost shapes both measured times the same way.
  // A tick whose node is crashed at fire time is suppressed by the
  // simulator like any other timer — churn composes with crash windows.
  for (const ChurnTick& tick : pending_ticks_) {
    auto body = std::make_shared<ChurnTickMessage>();
    body->ops = tick.ops;
    simulator_.ScheduleTimer(tick.node, tick.time, std::move(body));
  }

  // Stage the per-super-peer local scans concurrently when the variant's
  // scan thresholds are known up front: infinity everywhere for naive;
  // for FT*M the initiator computes first (threshold infinity) and every
  // other node then scans under the initiator's flooded value. The
  // simulator consumes the staged results when it replays the protocol,
  // so results and simulated metrics match the sequential run exactly.
  ThreadPool* staging_pool = pool();
  const int num_sp = num_super_peers();
  if (staging_pool->num_threads() > 1 && num_sp > 1) {
    if (SupportsParallelLocalScan(variant)) {
      double threshold = std::numeric_limits<double>::infinity();
      std::shared_ptr<const ResultList> filter;
      if (variant != Variant::kNaive) {
        super_peers_[initiator_sp]->StageLocalScan(subspace, variant,
                                                   threshold);
        threshold = super_peers_[initiator_sp]->StagedThreshold();
        if (config_.filter_set_size > 0) {
          // The filter the protocol will broadcast: sampled from the
          // initiator's staged local result. Selection ops are charged by
          // the protocol run itself (`MaybeSelectFilter`), not here.
          filter =
              BuildQueryFilter(*super_peers_[initiator_sp]->StagedLocal(),
                               subspace, config_.filter_set_size, nullptr);
        }
      }
      staging_pool->ParallelFor(num_sp, [&](size_t sp) {
        if (variant != Variant::kNaive &&
            static_cast<int>(sp) == initiator_sp) {
          return;  // Already staged above (under threshold infinity).
        }
        super_peers_[sp]->StageLocalScan(subspace, variant, threshold,
                                         filter);
      });
    } else if (config_.speculative_rt && RefinesThresholdOnPath(variant)) {
      // Speculative wave for the threshold-refining variants: the
      // initiator scans under infinity exactly as the protocol will, and
      // every other node pre-scans under the initiator's fixed threshold
      // — provably an upper bound on whatever refined value reaches it,
      // so `ComputeLocal` can reconcile the staged scan into the exact
      // sequential result when the true threshold arrives.
      super_peers_[initiator_sp]->StageLocalScan(
          subspace, variant, std::numeric_limits<double>::infinity());
      const double fixed = super_peers_[initiator_sp]->StagedThreshold();
      std::shared_ptr<const ResultList> filter;
      if (config_.filter_set_size > 0) {
        filter = BuildQueryFilter(*super_peers_[initiator_sp]->StagedLocal(),
                                  subspace, config_.filter_set_size, nullptr);
      }
      staging_pool->ParallelFor(num_sp, [&](size_t sp) {
        if (static_cast<int>(sp) == initiator_sp) {
          return;
        }
        super_peers_[sp]->StageSpeculativeScan(subspace, variant, fixed,
                                               filter);
      });
    }
  }

  auto start = std::make_shared<StartQueryMessage>();
  start->query_id = next_query_id_++;
  start->subspace = subspace;
  start->variant = variant;
  if (variant == Variant::kPipeline) {
    start->route = overlay_.backbone.EulerTourWalk(initiator_sp);
  }
  simulator_.Post(initiator_sp, std::move(start));
  // Retransmission give-up bounds make faulty runs terminate on their
  // own; the event budget is a safety valve that turns any residual
  // livelock into a crash instead of a hang.
  sim::RunBudget budget;
  if (config_.reliable) {
    budget.max_events = 200'000'000;
  }
  const sim::RunStatus status = simulator_.Run(budget);
  SKYPEER_CHECK(status == sim::RunStatus::kCompleted);

  SuperPeer* initiator = super_peers_[initiator_sp].get();
  RunOutcome outcome;
  outcome.finished = initiator->finished();
  if (!config_.reliable) {
    SKYPEER_CHECK(outcome.finished);
  }
  if (outcome.finished) {
    *result = initiator->final_result();
    outcome.completion_s = initiator->finish_time();
    if (config_.reliable) {
      outcome.partial = initiator->partial();
      outcome.coverage = initiator->coverage();
    }
  } else {
    // The initiator itself was crashed (or the walk stranded with no
    // deadline set): a graceful empty partial answer instead of a CHECK.
    *result = ResultList(config_.dims);
    outcome.completion_s = simulator_.now();
    outcome.partial = true;
  }
  outcome.bytes = simulator_.total_bytes();
  outcome.messages = simulator_.num_messages();
  for (const auto& sp : super_peers_) {
    outcome.ops += sp->last_query_stats().ops;
  }
  if (config_.reliable) {
    outcome.dropped = simulator_.dropped_messages();
    for (const auto& sp : super_peers_) {
      const SuperPeer::ReliabilityStats& rstats = sp->reliability_stats();
      outcome.retransmits += rstats.retransmits;
      outcome.gave_up += rstats.gave_up;
      const SuperPeer::LastQueryStats stats = sp->last_query_stats();
      if (stats.participated) {
        ++outcome.participated;
        outcome.scanned += stats.scanned;
        outcome.local_points += stats.local_result;
      }
    }
  }
  return outcome;
}

QueryResult SkypeerNetwork::ExecuteQuery(Subspace subspace, int initiator_sp,
                                         Variant variant) {
  SKYPEER_CHECK(preprocessed_);
  SKYPEER_CHECK(!subspace.empty());
  SKYPEER_CHECK(Subspace::FullSpace(config_.dims).IsSupersetOf(subspace));
  SKYPEER_CHECK(initiator_sp >= 0 && initiator_sp < num_super_peers());

  // Scheduled churn riding on this query slot: pin every super-peer's
  // pre-churn store epoch, then apply the slot's membership changes
  // durably. The pinned epochs keep both simulation runs serving the
  // stores the query started on — an in-flight query is never torn by an
  // install — while the maintenance cost lands on the affected node's
  // virtual clock at the event's seeded in-query time (the ticks below,
  // scheduled by RunOnce in both runs). The *next* query sees the
  // post-churn stores.
  std::vector<uint64_t> pinned_epochs;
  if (!churn_plan_.empty()) {
    const int slot = churn_slot_++;
    const auto [begin, end] = churn_plan_.SlotRange(slot);
    if (begin != end) {
      pinned_epochs.reserve(super_peers_.size());
      for (auto& sp : super_peers_) {
        pinned_epochs.push_back(sp->PinStoreEpoch());
      }
      for (size_t i = begin; i < end; ++i) {
        const sim::ChurnEvent& event = churn_plan_.events[i];
        ChurnTick tick;
        tick.node = event.node;
        tick.time = event.time;
        SKYPEER_CHECK(ApplyChurnEvent(event, &tick.ops).ok());
        pending_ticks_.push_back(std::move(tick));
      }
    }
  }

  QueryResult query_result;

  // Run 1: configured links — total response time and traffic volume.
  const sim::LinkParams network_params{config_.bandwidth, config_.latency};
  const RunOutcome total = RunOnce(subspace, initiator_sp, variant,
                                   network_params, &query_result.skyline);

  // Run 2: infinite bandwidth — pure computational critical path.
  const sim::LinkParams compute_params{sim::kInfiniteBandwidth, 0.0};
  ResultList compute_result(config_.dims);
  const RunOutcome compute = RunOnce(subspace, initiator_sp, variant,
                                     compute_params, &compute_result);
  if (!config_.reliable) {
    SKYPEER_DCHECK(compute_result.size() == query_result.skyline.size());
  }

  // Both runs are done: release the pinned pre-churn epochs (retired
  // stores drop now — pages included) and retire the ticks.
  pending_ticks_.clear();
  for (size_t sp = 0; sp < pinned_epochs.size(); ++sp) {
    super_peers_[sp]->UnpinStoreEpoch(pinned_epochs[sp]);
  }

  query_result.metrics.total_time_s = total.completion_s;
  query_result.metrics.computational_time_s = compute.completion_s;
  query_result.metrics.bytes_transferred = total.bytes;
  query_result.metrics.messages = total.messages;
  query_result.metrics.result_size = query_result.skyline.size();
  // Like volume/messages this reports run 1 — under faults the compute
  // run can realize a different pattern; fault-free runs count the same.
  query_result.metrics.ops = total.ops;
  if (config_.reliable) {
    // Reliable mode reports run 1 (configured links): under faults the
    // two runs realize different timings and thus potentially different
    // fault patterns, and run 1 is the measurement the answer came from.
    query_result.metrics.partial = total.partial;
    query_result.metrics.super_peers_reached =
        static_cast<int>(total.coverage.size());
    query_result.metrics.covered = total.coverage;
    query_result.metrics.super_peers_total = num_super_peers();
    query_result.metrics.retransmits = total.retransmits;
    query_result.metrics.hops_gave_up = total.gave_up;
    query_result.metrics.messages_dropped = total.dropped;
    query_result.metrics.super_peers_participated = total.participated;
    query_result.metrics.store_points_scanned = total.scanned;
    query_result.metrics.local_result_points = total.local_points;
    return query_result;
  }
  // Per-node counters of the compute run (identical protocol trace; the
  // states are still live after RunOnce).
  for (const auto& sp : super_peers_) {
    const SuperPeer::LastQueryStats stats = sp->last_query_stats();
    if (stats.participated) {
      ++query_result.metrics.super_peers_participated;
      query_result.metrics.store_points_scanned += stats.scanned;
      query_result.metrics.local_result_points += stats.local_result;
    }
  }
  return query_result;
}

std::unique_ptr<SkypeerNetwork> SkypeerNetwork::CloneForQueries() const {
  SKYPEER_CHECK(preprocessed_);
  NetworkConfig config = config_;
  // Replicas only serve queries: no raw data, no churn bookkeeping or
  // schedule (the original owns all membership changes), and no private
  // pool of their own — they share the parent's (below), so a workload's
  // nested ParallelFor calls stay re-entrant on one pool.
  config.retain_peer_data = false;
  config.dynamic_membership = false;
  config.churn_events = 0;
  config.threads = 0;
  auto clone = std::make_unique<SkypeerNetwork>(config);
  clone->pool_ = pool_;
  for (auto& sp : clone->super_peers_) {
    sp->set_thread_pool(pool_);
  }
  std::vector<ResultList> stores;
  stores.reserve(super_peers_.size());
  for (const auto& sp : super_peers_) {
    stores.push_back(sp->MaterializeStore());
  }
  SKYPEER_CHECK(clone->AdoptStores(std::move(stores)).ok());
  // Share the result cache *after* AdoptStores: a replica's stores are
  // copies of the parent's, so the parent's warm entries stay valid —
  // installing the shared cache after the SetStore invalidations (which
  // only touched the clone's empty private cache) preserves them.
  if (result_cache_ != nullptr) {
    clone->result_cache_ = result_cache_;
    for (auto& sp : clone->super_peers_) {
      sp->SetResultCache(result_cache_);
    }
  }
  clone->total_points_ = total_points_;
  return clone;
}

Status SkypeerNetwork::ReplacePeerData(int peer_id, PointSet data,
                                       OpCounts* maintenance_ops) {
  if (!config_.dynamic_membership) {
    return Status::FailedPrecondition(
        "dynamic_membership is disabled in the configuration");
  }
  const auto range_it = peer_point_ranges_.find(peer_id);
  if (range_it == peer_point_ranges_.end()) {
    return Status::NotFound("unknown peer id");
  }
  if (data.dims() != config_.dims) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  const int super_peer = overlay_.peer_super_peer[peer_id];
  SKYPEER_RETURN_IF_ERROR(RemovePeer(peer_id, maintenance_ops));
  // Rejoin under the same super-peer; the peer receives a fresh id (point
  // ids must stay globally unique across the update).
  return JoinPeer(super_peer, std::move(data), nullptr, maintenance_ops);
}

PointSet SkypeerNetwork::GroundTruthSkyline(Subspace subspace) const {
  SKYPEER_CHECK(config_.retain_peer_data);
  return SfsSkyline(all_data_, subspace);
}

}  // namespace skypeer
