#include "skypeer/engine/zipf_workload.h"

#include <algorithm>
#include <cmath>

#include "skypeer/common/macros.h"
#include "skypeer/common/rng.h"

namespace skypeer {

std::vector<QueryTask> GenerateZipfWorkload(int dims,
                                            const ZipfWorkloadConfig& config,
                                            int num_super_peers) {
  SKYPEER_CHECK(config.query_dims >= 1 && config.query_dims <= dims);
  SKYPEER_CHECK(config.exponent >= 0.0);
  SKYPEER_CHECK(num_super_peers >= 1);

  std::vector<Subspace> candidates = SubspacesOfSize(dims, config.query_dims);
  Rng rng(config.seed);
  // Random popularity ranking of the candidate subspaces.
  std::shuffle(candidates.begin(), candidates.end(), rng.engine());

  // Cumulative Zipf weights: weight(rank r) = 1 / (r+1)^exponent.
  std::vector<double> cumulative(candidates.size());
  double total = 0.0;
  for (size_t r = 0; r < candidates.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), config.exponent);
    cumulative[r] = total;
  }

  std::vector<QueryTask> tasks;
  tasks.reserve(config.num_queries);
  for (int q = 0; q < config.num_queries; ++q) {
    const double draw = rng.Uniform() * total;
    const size_t rank = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), draw) -
        cumulative.begin());
    QueryTask task;
    task.subspace = candidates[std::min(rank, candidates.size() - 1)];
    task.initiator_sp =
        static_cast<int>(rng.UniformInt(0, num_super_peers - 1));
    tasks.push_back(task);
  }
  return tasks;
}

}  // namespace skypeer
