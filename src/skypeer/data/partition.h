#ifndef SKYPEER_DATA_PARTITION_H_
#define SKYPEER_DATA_PARTITION_H_

#include <cstddef>
#include <vector>

#include "skypeer/common/point_set.h"
#include "skypeer/common/rng.h"

namespace skypeer {

/// Horizontally partitions `all` into `parts` contiguous slices of sizes
/// differing by at most one (the paper's "dataset was horizontally
/// partitioned evenly among the peers").
std::vector<PointSet> PartitionEvenly(const PointSet& all, size_t parts);

/// Horizontally partitions `all` into `parts` even slices after a random
/// shuffle, destroying any ordering correlation between id and location.
std::vector<PointSet> PartitionShuffled(const PointSet& all, size_t parts,
                                        Rng* rng);

}  // namespace skypeer

#endif  // SKYPEER_DATA_PARTITION_H_
