#include "skypeer/data/generator.h"

#include <algorithm>
#include <cmath>

#include "skypeer/common/macros.h"

namespace skypeer {

const char* DistributionName(Distribution distribution) {
  switch (distribution) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kClustered:
      return "clustered";
    case Distribution::kCorrelated:
      return "correlated";
    case Distribution::kAnticorrelated:
      return "anticorrelated";
  }
  return "unknown";
}

PointSet GenerateUniform(int dims, size_t n, Rng* rng, PointId first_id) {
  PointSet points(dims);
  points.Reserve(n);
  std::vector<double> row(dims);
  for (size_t i = 0; i < n; ++i) {
    for (int d = 0; d < dims; ++d) {
      row[d] = rng->Uniform();
    }
    points.Append(row.data(), first_id + i);
  }
  return points;
}

std::vector<double> RandomCentroid(int dims, Rng* rng) {
  std::vector<double> centroid(dims);
  for (int d = 0; d < dims; ++d) {
    centroid[d] = rng->Uniform();
  }
  return centroid;
}

PointSet GenerateClustered(const std::vector<double>& centroid, size_t n,
                           double stddev, Rng* rng, PointId first_id) {
  const int dims = static_cast<int>(centroid.size());
  SKYPEER_CHECK(dims >= 1);
  PointSet points(dims);
  points.Reserve(n);
  std::vector<double> row(dims);
  for (size_t i = 0; i < n; ++i) {
    for (int d = 0; d < dims; ++d) {
      row[d] = std::clamp(rng->Gaussian(centroid[d], stddev), 0.0, 1.0);
    }
    points.Append(row.data(), first_id + i);
  }
  return points;
}

PointSet GenerateCorrelated(int dims, size_t n, Rng* rng, PointId first_id) {
  PointSet points(dims);
  points.Reserve(n);
  std::vector<double> row(dims);
  for (size_t i = 0; i < n; ++i) {
    const double base = rng->Uniform();
    for (int d = 0; d < dims; ++d) {
      row[d] = std::clamp(base + rng->Gaussian(0.0, 0.05), 0.0, 1.0);
    }
    points.Append(row.data(), first_id + i);
  }
  return points;
}

PointSet GenerateAnticorrelated(int dims, size_t n, Rng* rng,
                                PointId first_id) {
  PointSet points(dims);
  points.Reserve(n);
  std::vector<double> row(dims);
  for (size_t i = 0; i < n; ++i) {
    // Draw uniform coordinates, then shift the point towards the
    // anti-correlation hyperplane sum = dims / 2.
    double sum = 0.0;
    for (int d = 0; d < dims; ++d) {
      row[d] = rng->Uniform();
      sum += row[d];
    }
    const double target =
        dims / 2.0 + rng->Gaussian(0.0, 0.05 * std::sqrt(dims));
    const double shift = (target - sum) / dims;
    for (int d = 0; d < dims; ++d) {
      row[d] = std::clamp(row[d] + shift, 0.0, 1.0);
    }
    points.Append(row.data(), first_id + i);
  }
  return points;
}

}  // namespace skypeer
