#ifndef SKYPEER_DATA_GENERATOR_H_
#define SKYPEER_DATA_GENERATOR_H_

#include <cstddef>
#include <vector>

#include "skypeer/common/point_set.h"
#include "skypeer/common/rng.h"

namespace skypeer {

/// Synthetic data distributions used by the paper's evaluation (§6) plus
/// the two standard skyline benchmarks (correlated / anti-correlated) as
/// extensions.
enum class Distribution {
  kUniform,         ///< Independent uniform coordinates in [0, 1).
  kClustered,       ///< Gaussian around a centroid (variance 0.025).
  kCorrelated,      ///< Coordinates positively correlated (small skyline).
  kAnticorrelated,  ///< Coordinates trade off against each other
                    ///< (large skyline).
};

const char* DistributionName(Distribution distribution);

/// Gaussian standard deviation of the clustered dataset: the paper uses
/// variance 0.025 on each axis.
inline constexpr double kClusterStdDev = 0.15811388300841897;  // sqrt(0.025)

/// `n` points with independent uniform coordinates in the unit space,
/// ids `first_id, first_id + 1, ...`.
PointSet GenerateUniform(int dims, size_t n, Rng* rng, PointId first_id = 0);

/// A uniformly random cluster centroid in the unit space (the paper has
/// each super-peer pick these for its associated peers).
std::vector<double> RandomCentroid(int dims, Rng* rng);

/// `n` points whose coordinates follow a Gaussian with mean
/// `centroid[axis]` and standard deviation `stddev` on each axis, clamped
/// to [0, 1] (the library assumes non-negative values).
PointSet GenerateClustered(const std::vector<double>& centroid, size_t n,
                           double stddev, Rng* rng, PointId first_id = 0);

/// `n` correlated points: a common base value per point plus small
/// per-axis jitter. Skylines shrink under correlation.
PointSet GenerateCorrelated(int dims, size_t n, Rng* rng, PointId first_id = 0);

/// `n` anti-correlated points: coordinates are jittered around the
/// hyperplane `sum = dims/2`, so being good in one dimension costs
/// another. Skylines grow large under anti-correlation.
PointSet GenerateAnticorrelated(int dims, size_t n, Rng* rng,
                                PointId first_id = 0);

}  // namespace skypeer

#endif  // SKYPEER_DATA_GENERATOR_H_
