#include "skypeer/data/partition.h"

#include <algorithm>
#include <numeric>

#include "skypeer/common/macros.h"

namespace skypeer {

namespace {

std::vector<PointSet> PartitionByOrder(const PointSet& all,
                                       const std::vector<size_t>& order,
                                       size_t parts) {
  SKYPEER_CHECK(parts >= 1);
  const size_t n = all.size();
  std::vector<PointSet> result;
  result.reserve(parts);
  size_t next = 0;
  for (size_t p = 0; p < parts; ++p) {
    // Sizes differ by at most one: the first (n % parts) slices get one
    // extra point.
    const size_t share = n / parts + (p < n % parts ? 1 : 0);
    PointSet slice(all.dims());
    slice.Reserve(share);
    for (size_t i = 0; i < share; ++i) {
      slice.AppendFrom(all, order[next++]);
    }
    result.push_back(std::move(slice));
  }
  SKYPEER_CHECK(next == n);
  return result;
}

}  // namespace

std::vector<PointSet> PartitionEvenly(const PointSet& all, size_t parts) {
  std::vector<size_t> order(all.size());
  std::iota(order.begin(), order.end(), size_t{0});
  return PartitionByOrder(all, order, parts);
}

std::vector<PointSet> PartitionShuffled(const PointSet& all, size_t parts,
                                        Rng* rng) {
  std::vector<size_t> order(all.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::shuffle(order.begin(), order.end(), rng->engine());
  return PartitionByOrder(all, order, parts);
}

}  // namespace skypeer
