#include "skypeer/rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "skypeer/common/dominance_batch.h"

namespace skypeer {

/// Tree node. Entry `i` occupies `bounds[i*2*dims, (i+1)*2*dims)` as
/// `[lo_0..lo_{d-1}, hi_0..hi_{d-1}]`. Leaf entries are degenerate boxes
/// (lo == hi) with a payload; internal entries carry a child whose MBR the
/// bounds equal exactly (tightness is an invariant).
struct RTree::Node {
  explicit Node(bool is_leaf) : leaf(is_leaf) {}

  bool leaf;
  int count = 0;
  std::vector<double> bounds;
  std::vector<std::unique_ptr<Node>> children;  // internal nodes only
  std::vector<uint64_t> payloads;               // leaf nodes only

  double* Lo(int i, int dims) { return bounds.data() + i * 2 * dims; }
  double* Hi(int i, int dims) { return bounds.data() + i * 2 * dims + dims; }
  const double* Lo(int i, int dims) const {
    return bounds.data() + i * 2 * dims;
  }
  const double* Hi(int i, int dims) const {
    return bounds.data() + i * 2 * dims + dims;
  }
};

namespace {

double Area(const double* lo, const double* hi, int dims) {
  double area = 1.0;
  for (int d = 0; d < dims; ++d) {
    area *= hi[d] - lo[d];
  }
  return area;
}

/// Area of the union box of (lo1,hi1) and (lo2,hi2).
double UnionArea(const double* lo1, const double* hi1, const double* lo2,
                 const double* hi2, int dims) {
  double area = 1.0;
  for (int d = 0; d < dims; ++d) {
    area *= std::max(hi1[d], hi2[d]) - std::min(lo1[d], lo2[d]);
  }
  return area;
}

void ExtendBox(double* lo, double* hi, const double* add_lo,
               const double* add_hi, int dims) {
  for (int d = 0; d < dims; ++d) {
    lo[d] = std::min(lo[d], add_lo[d]);
    hi[d] = std::max(hi[d], add_hi[d]);
  }
}

bool BoxContainsPoint(const double* lo, const double* hi, const double* p,
                      int dims) {
  for (int d = 0; d < dims; ++d) {
    if (p[d] < lo[d] || p[d] > hi[d]) {
      return false;
    }
  }
  return true;
}

bool BoxesIntersect(const double* lo1, const double* hi1, const double* lo2,
                    const double* hi2, int dims) {
  for (int d = 0; d < dims; ++d) {
    if (lo1[d] > hi2[d] || lo2[d] > hi1[d]) {
      return false;
    }
  }
  return true;
}

/// True if the box could contain a point dominating `q`: its lower corner
/// must not exceed `q` on any dimension.
bool BoxMayDominate(const double* lo, const double* q, bool strict, int dims) {
  for (int d = 0; d < dims; ++d) {
    if (strict ? lo[d] >= q[d] : lo[d] > q[d]) {
      return false;
    }
  }
  return true;
}

/// True if the box could contain a point dominated by `p`: its upper
/// corner must not fall below `p` on any dimension.
bool BoxMayBeDominated(const double* hi, const double* p, bool strict,
                       int dims) {
  for (int d = 0; d < dims; ++d) {
    if (strict ? hi[d] <= p[d] : hi[d] < p[d]) {
      return false;
    }
  }
  return true;
}

}  // namespace

RTree::RTree(int dims, int max_entries)
    : dims_(dims),
      max_entries_(max_entries),
      min_entries_(std::max(1, max_entries / 3)),
      root_(std::make_unique<Node>(/*is_leaf=*/true)) {
  SKYPEER_CHECK(dims >= 1);
  SKYPEER_CHECK(max_entries >= 4);
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

void RTree::Clear() {
  root_ = std::make_unique<Node>(/*is_leaf=*/true);
  size_ = 0;
}

// --- insertion -------------------------------------------------------------

std::unique_ptr<RTree::Node> RTree::InsertRec(Node* node, const double* point,
                                              uint64_t payload,
                                              uint64_t* node_visits) {
  if (node_visits != nullptr) {
    ++*node_visits;
  }
  if (node->leaf) {
    node->bounds.insert(node->bounds.end(), point, point + dims_);
    node->bounds.insert(node->bounds.end(), point, point + dims_);
    node->payloads.push_back(payload);
    ++node->count;
  } else {
    // ChooseLeaf step: least enlargement, ties by smaller area.
    int best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (int i = 0; i < node->count; ++i) {
      const double* lo = node->Lo(i, dims_);
      const double* hi = node->Hi(i, dims_);
      const double area = Area(lo, hi, dims_);
      const double enlargement = UnionArea(lo, hi, point, point, dims_) - area;
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = i;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    std::unique_ptr<Node> split =
        InsertRec(node->children[best].get(), point, payload, node_visits);
    ExtendBox(node->Lo(best, dims_), node->Hi(best, dims_), point, point,
              dims_);
    if (split != nullptr) {
      // Recompute the entry for the (shrunk) original child and add the
      // sibling as a new entry.
      Node* child = node->children[best].get();
      std::copy(child->Lo(0, dims_), child->Hi(0, dims_) + dims_,
                node->Lo(best, dims_));
      for (int i = 1; i < child->count; ++i) {
        ExtendBox(node->Lo(best, dims_), node->Hi(best, dims_),
                  child->Lo(i, dims_), child->Hi(i, dims_), dims_);
      }
      Node* sibling = split.get();
      node->bounds.insert(node->bounds.end(), sibling->Lo(0, dims_),
                          sibling->Hi(0, dims_) + dims_);
      const int si = node->count;
      ++node->count;
      node->children.push_back(std::move(split));
      for (int i = 1; i < sibling->count; ++i) {
        ExtendBox(node->Lo(si, dims_), node->Hi(si, dims_),
                  sibling->Lo(i, dims_), sibling->Hi(i, dims_), dims_);
      }
    }
  }
  if (node->count > max_entries_) {
    return QuadraticSplit(node);
  }
  return nullptr;
}

std::unique_ptr<RTree::Node> RTree::QuadraticSplit(Node* node) {
  const int n = node->count;
  // Pick the two seeds wasting the most area if grouped together.
  int seed_a = 0;
  int seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double waste =
          UnionArea(node->Lo(i, dims_), node->Hi(i, dims_), node->Lo(j, dims_),
                    node->Hi(j, dims_), dims_) -
          Area(node->Lo(i, dims_), node->Hi(i, dims_), dims_) -
          Area(node->Lo(j, dims_), node->Hi(j, dims_), dims_);
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<int> group_a = {seed_a};
  std::vector<int> group_b = {seed_b};
  std::vector<double> mbr_a(node->Lo(seed_a, dims_),
                            node->Hi(seed_a, dims_) + dims_);
  std::vector<double> mbr_b(node->Lo(seed_b, dims_),
                            node->Hi(seed_b, dims_) + dims_);

  std::vector<int> remaining;
  for (int i = 0; i < n; ++i) {
    if (i != seed_a && i != seed_b) {
      remaining.push_back(i);
    }
  }

  while (!remaining.empty()) {
    const int total = n;
    // If one group must take all remaining entries to reach min fill, do so.
    if (static_cast<int>(group_a.size()) + static_cast<int>(remaining.size()) <=
        min_entries_) {
      for (int i : remaining) {
        group_a.push_back(i);
      }
      remaining.clear();
      break;
    }
    if (static_cast<int>(group_b.size()) + static_cast<int>(remaining.size()) <=
        min_entries_) {
      for (int i : remaining) {
        group_b.push_back(i);
      }
      remaining.clear();
      break;
    }
    (void)total;
    // Pick the entry with the strongest preference for one group.
    int best_idx = 0;
    double best_diff = -1.0;
    double best_da = 0.0;
    double best_db = 0.0;
    for (size_t r = 0; r < remaining.size(); ++r) {
      const int i = remaining[r];
      const double da =
          UnionArea(mbr_a.data(), mbr_a.data() + dims_, node->Lo(i, dims_),
                    node->Hi(i, dims_), dims_) -
          Area(mbr_a.data(), mbr_a.data() + dims_, dims_);
      const double db =
          UnionArea(mbr_b.data(), mbr_b.data() + dims_, node->Lo(i, dims_),
                    node->Hi(i, dims_), dims_) -
          Area(mbr_b.data(), mbr_b.data() + dims_, dims_);
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best_idx = static_cast<int>(r);
        best_da = da;
        best_db = db;
      }
    }
    const int i = remaining[best_idx];
    remaining.erase(remaining.begin() + best_idx);
    bool to_a;
    if (best_da != best_db) {
      to_a = best_da < best_db;
    } else {
      to_a = group_a.size() <= group_b.size();
    }
    if (to_a) {
      group_a.push_back(i);
      ExtendBox(mbr_a.data(), mbr_a.data() + dims_, node->Lo(i, dims_),
                node->Hi(i, dims_), dims_);
    } else {
      group_b.push_back(i);
      ExtendBox(mbr_b.data(), mbr_b.data() + dims_, node->Lo(i, dims_),
                node->Hi(i, dims_), dims_);
    }
  }

  // Materialize group A in `node` and group B in the sibling.
  auto sibling = std::make_unique<Node>(node->leaf);
  std::vector<double> new_bounds;
  new_bounds.reserve(group_a.size() * 2 * dims_);
  std::vector<std::unique_ptr<Node>> new_children;
  std::vector<uint64_t> new_payloads;
  for (int i : group_a) {
    new_bounds.insert(new_bounds.end(), node->Lo(i, dims_),
                      node->Hi(i, dims_) + dims_);
    if (node->leaf) {
      new_payloads.push_back(node->payloads[i]);
    } else {
      new_children.push_back(std::move(node->children[i]));
    }
  }
  for (int i : group_b) {
    sibling->bounds.insert(sibling->bounds.end(), node->Lo(i, dims_),
                           node->Hi(i, dims_) + dims_);
    if (node->leaf) {
      sibling->payloads.push_back(node->payloads[i]);
    } else {
      sibling->children.push_back(std::move(node->children[i]));
    }
  }
  sibling->count = static_cast<int>(group_b.size());
  node->bounds = std::move(new_bounds);
  node->children = std::move(new_children);
  node->payloads = std::move(new_payloads);
  node->count = static_cast<int>(group_a.size());
  return sibling;
}

void RTree::GrowRoot(std::unique_ptr<Node> sibling) {
  auto new_root = std::make_unique<Node>(/*is_leaf=*/false);
  for (Node* child : {root_.get(), sibling.get()}) {
    std::vector<double> mbr(child->Lo(0, dims_), child->Hi(0, dims_) + dims_);
    for (int i = 1; i < child->count; ++i) {
      ExtendBox(mbr.data(), mbr.data() + dims_, child->Lo(i, dims_),
                child->Hi(i, dims_), dims_);
    }
    new_root->bounds.insert(new_root->bounds.end(), mbr.begin(), mbr.end());
    ++new_root->count;
  }
  new_root->children.push_back(std::move(root_));
  new_root->children.push_back(std::move(sibling));
  root_ = std::move(new_root);
}

void RTree::Insert(const double* point, uint64_t payload,
                   uint64_t* node_visits) {
  std::unique_ptr<Node> split =
      InsertRec(root_.get(), point, payload, node_visits);
  if (split != nullptr) {
    GrowRoot(std::move(split));
  }
  ++size_;
}

// --- deletion --------------------------------------------------------------

namespace {

/// Removes entry `i` from `node` by swapping in the last entry.
void SwapRemoveEntry(RTree::Node* node, int i, int dims) {
  const int last = node->count - 1;
  if (i != last) {
    std::copy(node->bounds.begin() + last * 2 * dims,
              node->bounds.begin() + (last + 1) * 2 * dims,
              node->bounds.begin() + i * 2 * dims);
    if (node->leaf) {
      node->payloads[i] = node->payloads[last];
    } else {
      node->children[i] = std::move(node->children[last]);
    }
  }
  node->bounds.resize(last * 2 * dims);
  if (node->leaf) {
    node->payloads.pop_back();
  } else {
    node->children.pop_back();
  }
  node->count = last;
}

/// Recomputes the MBR entry `i` of `node` from its child's entries.
void TightenEntry(RTree::Node* node, int i, int dims) {
  RTree::Node* child = node->children[i].get();
  std::copy(child->Lo(0, dims), child->Hi(0, dims) + dims, node->Lo(i, dims));
  for (int j = 1; j < child->count; ++j) {
    ExtendBox(node->Lo(i, dims), node->Hi(i, dims), child->Lo(j, dims),
              child->Hi(j, dims), dims);
  }
}

}  // namespace

namespace {

void HarvestPoints(RTree::Node* node, int dims,
                   std::vector<std::vector<double>>* coords,
                   std::vector<uint64_t>* payloads) {
  if (node->leaf) {
    for (int i = 0; i < node->count; ++i) {
      coords->emplace_back(node->Lo(i, dims), node->Lo(i, dims) + dims);
      payloads->push_back(node->payloads[i]);
    }
    return;
  }
  for (int i = 0; i < node->count; ++i) {
    HarvestPoints(node->children[i].get(), dims, coords, payloads);
  }
}

}  // namespace

void RTree::CleanupChildren(Node* node, std::vector<Orphan>* orphans) {
  for (int i = node->count - 1; i >= 0; --i) {
    Node* child = node->children[i].get();
    if (child->count == 0) {
      SwapRemoveEntry(node, i, dims_);
    } else if (child->count < min_entries_) {
      std::vector<std::vector<double>> coords;
      std::vector<uint64_t> payloads;
      HarvestPoints(child, dims_, &coords, &payloads);
      for (size_t j = 0; j < coords.size(); ++j) {
        orphans->push_back(Orphan{std::move(coords[j]), payloads[j]});
      }
      SwapRemoveEntry(node, i, dims_);
    } else {
      TightenEntry(node, i, dims_);
    }
  }
}

bool RTree::EraseRec(Node* node, const double* point, uint64_t payload,
                     std::vector<Orphan>* orphans) {
  if (node->leaf) {
    for (int i = 0; i < node->count; ++i) {
      if (node->payloads[i] == payload &&
          std::equal(point, point + dims_, node->Lo(i, dims_))) {
        SwapRemoveEntry(node, i, dims_);
        return true;
      }
    }
    return false;
  }
  for (int i = 0; i < node->count; ++i) {
    if (!BoxContainsPoint(node->Lo(i, dims_), node->Hi(i, dims_), point,
                          dims_)) {
      continue;
    }
    if (EraseRec(node->children[i].get(), point, payload, orphans)) {
      CleanupChildren(node, orphans);
      return true;
    }
  }
  return false;
}

void RTree::ShrinkRoot() {
  while (!root_->leaf && root_->count == 1) {
    root_ = std::move(root_->children[0]);
  }
  if (!root_->leaf && root_->count == 0) {
    root_ = std::make_unique<Node>(/*is_leaf=*/true);
  }
}

void RTree::ReinsertOrphans(std::vector<Orphan> orphans,
                            uint64_t* node_visits) {
  for (Orphan& orphan : orphans) {
    std::unique_ptr<Node> split = InsertRec(root_.get(), orphan.coords.data(),
                                            orphan.payload, node_visits);
    if (split != nullptr) {
      GrowRoot(std::move(split));
    }
  }
}

bool RTree::Erase(const double* point, uint64_t payload) {
  std::vector<Orphan> orphans;
  if (!EraseRec(root_.get(), point, payload, &orphans)) {
    return false;
  }
  ShrinkRoot();
  ReinsertOrphans(std::move(orphans), nullptr);
  --size_;
  return true;
}

void RTree::RemoveDominatedRec(Node* node, const double* p, bool strict,
                               std::vector<uint64_t>* payloads,
                               std::vector<Orphan>* orphans,
                               uint64_t* node_visits) {
  if (node_visits != nullptr) {
    ++*node_visits;
  }
  if (node->leaf) {
    // Batch the dominance tests over the leaf's point rows (stride
    // 2*dims: lo == hi boxes) before mutating. The descending
    // swap-remove walk only ever swaps already-visited, kept entries
    // into lower slots, so precomputed flags at original positions see
    // exactly the entries the one-at-a-time loop tested.
    uint8_t flags[64];
    const int count = node->count;
    std::vector<uint8_t> heap_flags;
    uint8_t* flag_ptr = flags;
    if (count > 64) {
      heap_flags.resize(static_cast<size_t>(count));
      flag_ptr = heap_flags.data();
    }
    DominatedFlagsRows(node->Lo(0, dims_), 2 * static_cast<size_t>(dims_),
                       static_cast<size_t>(count), dims_, p, strict, flag_ptr);
    for (int i = count - 1; i >= 0; --i) {
      if (flag_ptr[i]) {
        payloads->push_back(node->payloads[i]);
        SwapRemoveEntry(node, i, dims_);
      }
    }
    return;
  }
  bool any_descent = false;
  for (int i = 0; i < node->count; ++i) {
    if (BoxMayBeDominated(node->Hi(i, dims_), p, strict, dims_)) {
      RemoveDominatedRec(node->children[i].get(), p, strict, payloads,
                         orphans, node_visits);
      any_descent = true;
    }
  }
  if (any_descent) {
    CleanupChildren(node, orphans);
  }
}

std::vector<uint64_t> RTree::EraseDominated(const double* p, bool strict,
                                            uint64_t* node_visits) {
  std::vector<uint64_t> payloads;
  std::vector<Orphan> orphans;
  RemoveDominatedRec(root_.get(), p, strict, &payloads, &orphans, node_visits);
  ShrinkRoot();
  ReinsertOrphans(std::move(orphans), node_visits);
  size_ -= payloads.size();
  return payloads;
}

// --- bulk loading ------------------------------------------------------------

namespace {

/// Splits `total` items into chunks of at most `max_size`, each at least
/// `min_size` (except when total < min_size, which yields one chunk).
std::vector<size_t> ChunkSizes(size_t total, size_t max_size,
                               size_t min_size) {
  std::vector<size_t> sizes;
  if (total == 0) {
    return sizes;
  }
  size_t remaining = total;
  while (remaining > max_size) {
    // Leave enough for the final chunk to reach min_size.
    size_t take = max_size;
    if (remaining - take > 0 && remaining - take < min_size) {
      take = remaining - min_size;
    }
    sizes.push_back(take);
    remaining -= take;
  }
  sizes.push_back(remaining);
  return sizes;
}

/// Recursive Sort-Tile-Recursive ordering: arranges `order[first, last)`
/// so that consecutive runs of `leaf_capacity` points form spatially
/// clustered tiles.
void StrTile(const double* points, int dims, size_t leaf_capacity,
             std::vector<size_t>* order, size_t first, size_t last, int dim) {
  const size_t len = last - first;
  if (len <= leaf_capacity || dim >= dims) {
    return;
  }
  auto begin = order->begin() + first;
  auto end = order->begin() + last;
  std::sort(begin, end, [points, dims, dim](size_t a, size_t b) {
    return points[a * dims + dim] < points[b * dims + dim];
  });
  if (dim == dims - 1) {
    return;  // Final dimension: consecutive chunks are the tiles.
  }
  const size_t num_leaves = (len + leaf_capacity - 1) / leaf_capacity;
  const int remaining_dims = dims - dim;
  const size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(
             std::pow(static_cast<double>(num_leaves),
                      1.0 / static_cast<double>(remaining_dims)))));
  const size_t slab_size = (len + slabs - 1) / slabs;
  for (size_t s = first; s < last; s += slab_size) {
    StrTile(points, dims, leaf_capacity, order, s, std::min(last, s + slab_size),
            dim + 1);
  }
}

}  // namespace

RTree RTree::BulkLoad(int dims, const double* points, const uint64_t* payloads,
                      size_t n, int max_entries) {
  RTree tree(dims, max_entries);
  if (n == 0) {
    return tree;
  }

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  StrTile(points, dims, static_cast<size_t>(max_entries), &order, 0, n, 0);

  // Pack leaves.
  std::vector<std::unique_ptr<Node>> level;
  const std::vector<size_t> leaf_sizes =
      ChunkSizes(n, static_cast<size_t>(max_entries),
                 static_cast<size_t>(tree.min_entries_));
  size_t next = 0;
  for (size_t size : leaf_sizes) {
    auto leaf = std::make_unique<Node>(/*is_leaf=*/true);
    leaf->bounds.reserve(size * 2 * dims);
    leaf->payloads.reserve(size);
    for (size_t e = 0; e < size; ++e) {
      const double* p = points + order[next] * dims;
      leaf->bounds.insert(leaf->bounds.end(), p, p + dims);
      leaf->bounds.insert(leaf->bounds.end(), p, p + dims);
      leaf->payloads.push_back(payloads[order[next]]);
      ++next;
    }
    leaf->count = static_cast<int>(size);
    level.push_back(std::move(leaf));
  }

  // Pack upper levels until a single root remains. Children are already
  // in tile order, so sequential grouping preserves spatial clustering.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    const std::vector<size_t> sizes =
        ChunkSizes(level.size(), static_cast<size_t>(max_entries),
                   static_cast<size_t>(tree.min_entries_));
    size_t child = 0;
    for (size_t size : sizes) {
      auto parent = std::make_unique<Node>(/*is_leaf=*/false);
      parent->bounds.reserve(size * 2 * dims);
      parent->children.reserve(size);
      for (size_t e = 0; e < size; ++e) {
        Node* node = level[child].get();
        std::vector<double> mbr(node->Lo(0, dims), node->Hi(0, dims) + dims);
        for (int i = 1; i < node->count; ++i) {
          ExtendBox(mbr.data(), mbr.data() + dims, node->Lo(i, dims),
                    node->Hi(i, dims), dims);
        }
        parent->bounds.insert(parent->bounds.end(), mbr.begin(), mbr.end());
        parent->children.push_back(std::move(level[child]));
        ++child;
      }
      parent->count = static_cast<int>(size);
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
  }

  tree.root_ = std::move(level.front());
  tree.size_ = n;
  return tree;
}

// --- queries ---------------------------------------------------------------

namespace {

bool AnyDominatesRec(const RTree::Node* node, const double* q, bool strict,
                     int dims, uint64_t* node_visits) {
  if (node_visits != nullptr) {
    ++*node_visits;
  }
  if (node->leaf) {
    // Leaf entries are degenerate boxes: the point rows sit at stride
    // 2*dims starting from the first entry's lower corner.
    return AnyDominatesRows(node->Lo(0, dims), 2 * static_cast<size_t>(dims),
                            static_cast<size_t>(node->count), dims, q, strict);
  }
  for (int i = 0; i < node->count; ++i) {
    if (BoxMayDominate(node->Lo(i, dims), q, strict, dims) &&
        AnyDominatesRec(node->children[i].get(), q, strict, dims,
                        node_visits)) {
      return true;
    }
  }
  return false;
}

void CollectDominatedRec(const RTree::Node* node, const double* p, bool strict,
                         int dims, std::vector<uint64_t>* payloads) {
  if (node->leaf) {
    uint8_t flags[64];
    const int count = node->count;
    std::vector<uint8_t> heap_flags;
    uint8_t* flag_ptr = flags;
    if (count > 64) {
      heap_flags.resize(static_cast<size_t>(count));
      flag_ptr = heap_flags.data();
    }
    DominatedFlagsRows(node->Lo(0, dims), 2 * static_cast<size_t>(dims),
                       static_cast<size_t>(count), dims, p, strict, flag_ptr);
    for (int i = 0; i < count; ++i) {
      if (flag_ptr[i]) {
        payloads->push_back(node->payloads[i]);
      }
    }
    return;
  }
  for (int i = 0; i < node->count; ++i) {
    if (BoxMayBeDominated(node->Hi(i, dims), p, strict, dims)) {
      CollectDominatedRec(node->children[i].get(), p, strict, dims, payloads);
    }
  }
}

void WindowRec(const RTree::Node* node, const double* lo, const double* hi,
               int dims, std::vector<uint64_t>* payloads) {
  if (node->leaf) {
    for (int i = 0; i < node->count; ++i) {
      if (BoxContainsPoint(lo, hi, node->Lo(i, dims), dims)) {
        payloads->push_back(node->payloads[i]);
      }
    }
    return;
  }
  for (int i = 0; i < node->count; ++i) {
    if (BoxesIntersect(node->Lo(i, dims), node->Hi(i, dims), lo, hi, dims)) {
      WindowRec(node->children[i].get(), lo, hi, dims, payloads);
    }
  }
}

}  // namespace

bool RTree::AnyDominates(const double* q, bool strict,
                         uint64_t* node_visits) const {
  return AnyDominatesRec(root_.get(), q, strict, dims_, node_visits);
}

void RTree::CollectDominated(const double* p, bool strict,
                             std::vector<uint64_t>* payloads) const {
  CollectDominatedRec(root_.get(), p, strict, dims_, payloads);
}

void RTree::WindowQuery(const double* lo, const double* hi,
                        std::vector<uint64_t>* payloads) const {
  WindowRec(root_.get(), lo, hi, dims_, payloads);
}

// --- nearest neighbor --------------------------------------------------------

namespace {

/// True if the box [entry_lo, entry_hi] can intersect the query region.
bool EntryIntersectsRegion(const double* entry_lo, const double* entry_hi,
                           const double* lo, const double* hi,
                           uint32_t strict_mask, int dims) {
  for (int d = 0; d < dims; ++d) {
    const bool strict = (strict_mask >> d & 1u) != 0;
    if (entry_hi[d] < lo[d]) {
      return false;
    }
    if (strict ? entry_lo[d] >= hi[d] : entry_lo[d] > hi[d]) {
      return false;
    }
  }
  return true;
}

/// Lower bound on the coordinate sum of any region point inside the box.
double MinSumInRegion(const double* entry_lo, const double* lo, int dims) {
  double sum = 0.0;
  for (int d = 0; d < dims; ++d) {
    sum += std::max(entry_lo[d], lo[d]);
  }
  return sum;
}

bool PointInRegion(const double* p, const double* lo, const double* hi,
                   uint32_t strict_mask, int dims) {
  for (int d = 0; d < dims; ++d) {
    const bool strict = (strict_mask >> d & 1u) != 0;
    if (p[d] < lo[d] || (strict ? p[d] >= hi[d] : p[d] > hi[d])) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool RTree::NearestBySum(const double* lo, const double* hi,
                         uint32_t strict_upper_mask, double* out_point,
                         uint64_t* out_payload) const {
  // Best-first search over (bound, node/entry).
  struct Candidate {
    double bound;
    const Node* node;  // nullptr for a leaf entry hit.
    const double* point;
    uint64_t payload;
  };
  auto later = [](const Candidate& a, const Candidate& b) {
    return a.bound > b.bound;
  };
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(later)>
      queue(later);
  queue.push(Candidate{0.0, root_.get(), nullptr, 0});

  while (!queue.empty()) {
    const Candidate candidate = queue.top();
    queue.pop();
    if (candidate.node == nullptr) {
      // The cheapest frontier element is an actual point: done.
      std::copy(candidate.point, candidate.point + dims_, out_point);
      *out_payload = candidate.payload;
      return true;
    }
    const Node* node = candidate.node;
    for (int i = 0; i < node->count; ++i) {
      const double* entry_lo = node->Lo(i, dims_);
      const double* entry_hi = node->Hi(i, dims_);
      if (!EntryIntersectsRegion(entry_lo, entry_hi, lo, hi,
                                 strict_upper_mask, dims_)) {
        continue;
      }
      if (node->leaf) {
        if (PointInRegion(entry_lo, lo, hi, strict_upper_mask, dims_)) {
          queue.push(Candidate{MinSumInRegion(entry_lo, lo, dims_), nullptr,
                               entry_lo, node->payloads[i]});
        }
      } else {
        queue.push(Candidate{MinSumInRegion(entry_lo, lo, dims_),
                             node->children[i].get(), nullptr, 0});
      }
    }
  }
  return false;
}

// --- validation ------------------------------------------------------------

namespace {

struct ValidationResult {
  size_t num_points = 0;
  int depth = 0;
};

ValidationResult ValidateRec(const RTree::Node* node, int dims,
                             int max_entries, int min_entries, bool is_root) {
  SKYPEER_CHECK(node->count <= max_entries);
  if (!is_root) {
    SKYPEER_CHECK(node->count >= min_entries);
  }
  SKYPEER_CHECK(static_cast<int>(node->bounds.size()) ==
                node->count * 2 * dims);
  ValidationResult result;
  if (node->leaf) {
    SKYPEER_CHECK(static_cast<int>(node->payloads.size()) == node->count);
    SKYPEER_CHECK(node->children.empty());
    for (int i = 0; i < node->count; ++i) {
      // Leaf boxes are degenerate.
      SKYPEER_CHECK(std::equal(node->Lo(i, dims), node->Lo(i, dims) + dims,
                               node->Hi(i, dims)));
    }
    result.num_points = static_cast<size_t>(node->count);
    result.depth = 1;
    return result;
  }
  SKYPEER_CHECK(static_cast<int>(node->children.size()) == node->count);
  SKYPEER_CHECK(node->payloads.empty());
  int child_depth = -1;
  for (int i = 0; i < node->count; ++i) {
    const RTree::Node* child = node->children[i].get();
    SKYPEER_CHECK(child != nullptr);
    SKYPEER_CHECK(child->count > 0);
    // The stored entry must equal the recomputed child MBR exactly.
    std::vector<double> mbr(child->Lo(0, dims), child->Hi(0, dims) + dims);
    for (int j = 1; j < child->count; ++j) {
      ExtendBox(mbr.data(), mbr.data() + dims, child->Lo(j, dims),
                child->Hi(j, dims), dims);
    }
    SKYPEER_CHECK(std::equal(mbr.begin(), mbr.end(), node->Lo(i, dims)));
    ValidationResult child_result =
        ValidateRec(child, dims, max_entries, min_entries, /*is_root=*/false);
    result.num_points += child_result.num_points;
    if (child_depth == -1) {
      child_depth = child_result.depth;
    } else {
      SKYPEER_CHECK(child_depth == child_result.depth);  // Uniform depth.
    }
  }
  result.depth = child_depth + 1;
  return result;
}

}  // namespace

size_t RTree::CheckInvariants() const {
  ValidationResult result = ValidateRec(root_.get(), dims_, max_entries_,
                                        min_entries_, /*is_root=*/true);
  SKYPEER_CHECK(result.num_points == size_);
  return result.num_points;
}

int RTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[0].get();
    ++h;
  }
  return h;
}

}  // namespace skypeer
