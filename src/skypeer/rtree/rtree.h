#ifndef SKYPEER_RTREE_RTREE_H_
#define SKYPEER_RTREE_RTREE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "skypeer/common/macros.h"

namespace skypeer {

/// \brief Main-memory R-tree over points with runtime dimensionality.
///
/// The paper (§5.2.1) speeds up the dominance test of Algorithm 1 with "a
/// main-memory R-tree with dimensionality equal to the query
/// dimensionality"; this is that structure. It indexes k-dimensional
/// points (leaf MBRs are degenerate boxes) tagged with a 64-bit payload,
/// and supports the three operations the skyline scan needs:
///
///  * `AnyDominates(q)` — is some indexed point dominating `q`?
///  * `EraseDominated(p)` — remove all indexed points dominated by `p`.
///  * `Insert(p, payload)`.
///
/// plus general window queries used by tests. Quadratic-split insertion
/// (Guttman); deletion condenses underfull nodes by reinserting their
/// points.
///
/// Dominance follows the library convention (min on every dimension):
/// `p` dominates `q` iff `p[i] <= q[i]` everywhere, strictly on at least
/// one dimension; the `strict` flavor requires `p[i] < q[i]` everywhere
/// (ext-dominance).
class RTree {
 public:
  /// Creates an empty tree indexing `dims`-dimensional points.
  /// `max_entries` is the node fan-out M (>= 4); the minimum fill is M/3.
  explicit RTree(int dims, int max_entries = 16);
  ~RTree();

  /// Builds a tree over `n` points at once with Sort-Tile-Recursive
  /// packing (Leutenegger et al.): points are recursively tiled into
  /// near-full leaves, yielding better-clustered nodes than repeated
  /// insertion. `points` is row-major `n * dims` doubles; `payloads` has
  /// one entry per point.
  static RTree BulkLoad(int dims, const double* points,
                        const uint64_t* payloads, size_t n,
                        int max_entries = 16);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  int dims() const { return dims_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts a point given by `dims()` coordinates with a payload.
  /// `node_visits`, when non-null, is incremented once per tree node the
  /// descent (and any split-triggered reinsertion) enters — the
  /// machine-independent work count of the operation. All counting
  /// out-params below share this convention and may alias a caller
  /// accumulator; pass nullptr to skip counting.
  void Insert(const double* point, uint64_t payload,
              uint64_t* node_visits = nullptr);

  /// Removes one indexed point equal to `point` with payload `payload`.
  /// Returns false if no such entry exists.
  bool Erase(const double* point, uint64_t payload);

  /// True if some indexed point dominates `q` (strictly on every
  /// dimension when `strict`).
  bool AnyDominates(const double* q, bool strict = false,
                    uint64_t* node_visits = nullptr) const;

  /// Appends payloads of all indexed points dominated by `p` (strictly on
  /// every dimension when `strict`).
  void CollectDominated(const double* p, bool strict,
                        std::vector<uint64_t>* payloads) const;

  /// Removes all indexed points dominated by `p` and returns their
  /// payloads (strict = ext-dominance).
  std::vector<uint64_t> EraseDominated(const double* p, bool strict = false,
                                       uint64_t* node_visits = nullptr);

  /// Appends payloads of all points inside the closed box [lo, hi].
  void WindowQuery(const double* lo, const double* hi,
                   std::vector<uint64_t>* payloads) const;

  /// Finds the point with the smallest coordinate sum inside the box
  /// [lo, hi] (half-open on dimensions whose bit is set in
  /// `strict_upper_mask`: coordinate must be < hi[d] there). Best-first
  /// search. Returns false if the region is empty; otherwise fills
  /// `out_point` (dims() doubles) and `out_payload`. Used by the
  /// nearest-neighbor skyline algorithm (Kossmann et al., VLDB'02).
  bool NearestBySum(const double* lo, const double* hi,
                    uint32_t strict_upper_mask, double* out_point,
                    uint64_t* out_payload) const;

  /// Removes all entries.
  void Clear();

  /// Validates structural invariants (tight MBRs, fill factors, uniform
  /// leaf depth, size bookkeeping). Aborts on violation; returns the
  /// number of indexed points. Test helper.
  size_t CheckInvariants() const;

  /// Height of the tree (1 = the root is a leaf).
  int height() const;

  /// Opaque node type (defined in rtree.cc; public so that file-local
  /// helpers can name it).
  struct Node;

 private:
  /// A harvested point awaiting reinsertion during tree condensation.
  struct Orphan {
    std::vector<double> coords;
    uint64_t payload;
  };

  std::unique_ptr<Node> InsertRec(Node* node, const double* point,
                                  uint64_t payload, uint64_t* node_visits);
  std::unique_ptr<Node> QuadraticSplit(Node* node);
  void GrowRoot(std::unique_ptr<Node> sibling);
  void CleanupChildren(Node* node, std::vector<Orphan>* orphans);
  bool EraseRec(Node* node, const double* point, uint64_t payload,
                std::vector<Orphan>* orphans);
  void RemoveDominatedRec(Node* node, const double* p, bool strict,
                          std::vector<uint64_t>* payloads,
                          std::vector<Orphan>* orphans,
                          uint64_t* node_visits);
  void ShrinkRoot();
  void ReinsertOrphans(std::vector<Orphan> orphans, uint64_t* node_visits);

  int dims_;
  int max_entries_;
  int min_entries_;
  size_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace skypeer

#endif  // SKYPEER_RTREE_RTREE_H_
