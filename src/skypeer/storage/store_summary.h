#ifndef SKYPEER_STORAGE_STORE_SUMMARY_H_
#define SKYPEER_STORAGE_STORE_SUMMARY_H_

#include <cstddef>
#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/storage/page_layout.h"

namespace skypeer {

/// \brief Always-resident zone-map summary of an f-sorted blocked-SoA
/// store: per 8-wide block the per-dimension minima (full-dimensional,
/// projected onto the query subspace at probe time) plus the block's
/// `[f_min, f_max]` range, and per page the fold of its blocks.
///
/// The summary is what block-skipping threshold scans
/// (`ThresholdScanOptions::block_skip`) consult before touching a block:
/// a block whose min-vector is dominated by a live window point
/// contributes nothing and is consumed without per-point dominance tests
/// — and, when its `f` range also fits under the running threshold,
/// without reading the block at all, so runs of skipped blocks leave
/// whole pages unpinned and unread.
///
/// Built by one shared pure function of `(list, layout)` — the same
/// `BatchMinCoord` kernel reduction in both store modes — so a paged
/// store and its in-memory twin carry bit-identical summaries and every
/// skip decision (hence every result and every simulated metric) is
/// identical across store modes, thread counts and kernel dispatch.
/// Block geometry depends only on `kDomBlockWidth`; only the page-level
/// fold (used for physical read-ahead filtering) depends on the page
/// size.
///
/// Size: `(dims + 2)` doubles per 8 points — under 5% of the store for
/// typical dimensionalities, held in memory even when the store pages to
/// disk (consulting it never pins a frame).
class StoreSummary {
 public:
  StoreSummary() = default;

  /// Builds the summary of f-sorted `list` under `layout`. Per-dimension
  /// block minima are reduced with the `BatchMinCoord` kernels in fixed
  /// lane order; `f` ranges come straight off the sorted `f` column.
  static StoreSummary Build(const ResultList& list, const PageLayout& layout);

  /// False on a default-constructed summary (scans then fall back to the
  /// plain full scan even when skipping was requested).
  bool valid() const { return dims_ > 0; }
  int dims() const { return dims_; }
  /// Number of points of the summarized store.
  size_t size() const { return size_; }
  size_t num_blocks() const { return block_f_min_.size(); }
  size_t num_pages() const { return page_f_min_.size(); }

  /// Per-dimension minima over the (up to 8) points of block `b`;
  /// `dims()` doubles.
  const double* block_min(size_t b) const { return &block_min_[b * dims_]; }
  /// `f` of the first point of block `b` (blocks are f-sorted).
  double block_f_min(size_t b) const { return block_f_min_[b]; }
  /// `f` of the last live point of block `b`.
  double block_f_max(size_t b) const { return block_f_max_[b]; }

  /// Fold of the block minima of page `p`; `dims()` doubles.
  const double* page_min(size_t p) const { return &page_min_[p * dims_]; }
  double page_f_min(size_t p) const { return page_f_min_[p]; }
  double page_f_max(size_t p) const { return page_f_max_[p]; }

 private:
  int dims_ = 0;
  size_t size_ = 0;
  // Block-level zone maps, row-major `dims_` doubles per block.
  std::vector<double> block_min_;
  std::vector<double> block_f_min_;
  std::vector<double> block_f_max_;
  // Page-level fold of the blocks (geometry from the build layout).
  std::vector<double> page_min_;
  std::vector<double> page_f_min_;
  std::vector<double> page_f_max_;
};

}  // namespace skypeer

#endif  // SKYPEER_STORAGE_STORE_SUMMARY_H_
