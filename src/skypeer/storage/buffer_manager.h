#ifndef SKYPEER_STORAGE_BUFFER_MANAGER_H_
#define SKYPEER_STORAGE_BUFFER_MANAGER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace skypeer {

class ThreadPool;

/// \brief A pinning buffer pool over a temporary page file.
///
/// Fixed number of page-sized frames; pages are pinned into frames on
/// demand and replaced with a deterministic second-chance clock sweep
/// over unpinned frames. Pages are write-once (stores are immutable once
/// built), so eviction never writes back. `Prefetch` schedules a
/// best-effort asynchronous fill on the supplied thread pool; a `Pin`
/// that catches up with a still-queued prefetch claims the frame and
/// performs the read itself, so pinners never wait on queued pool work
/// (only on reads already in flight) — that makes the pinning discipline
/// deadlock-free for any pool size.
///
/// Page ids are allocated once and never recycled (their file offsets
/// are), so a frame left over from a dropped store can never be returned
/// for a live page. All pool statistics are physical host behavior —
/// they never feed the deterministic op counts or simulated clocks.
///
/// Thread safety: all public methods are safe to call concurrently.
class BufferManager {
 public:
  struct Stats {
    uint64_t hits = 0;              ///< Pins served from a resident frame.
    uint64_t misses = 0;            ///< Pins that performed a read.
    uint64_t evictions = 0;         ///< Resident pages replaced.
    uint64_t prefetches_issued = 0; ///< Async fills scheduled.
    uint64_t prefetch_hits = 0;     ///< Pins served by a completed prefetch.
    uint64_t pages_written = 0;     ///< Build-time page writes.
  };

  /// Creates `num_frames >= 2` frames of `page_size` bytes each, backed
  /// by a fresh `std::tmpfile()`. `prefetch_pool` (may be null: prefetch
  /// disabled) must outlive the manager.
  BufferManager(size_t page_size, size_t num_frames,
                ThreadPool* prefetch_pool = nullptr);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  size_t page_size() const { return page_size_; }
  size_t num_frames() const { return frames_.size(); }

  /// Allocates a fresh page id (file space is reused, ids are not).
  uint64_t AllocatePage();

  /// Writes `page_size()` bytes to `page_id`. Pages are write-once:
  /// the page must not currently be resident.
  void WritePage(uint64_t page_id, const void* bytes);

  /// Frees `page_id`'s file space and invalidates any frame holding it.
  /// The page must not be pinned.
  void DropPage(uint64_t page_id);

  /// Pins `page_id` into a frame and returns its bytes; blocks until a
  /// frame is available when all frames are pinned. Balance with
  /// `Unpin`. The pointer stays valid until the matching `Unpin`.
  const std::byte* Pin(uint64_t page_id);
  void Unpin(uint64_t page_id);

  /// Best-effort asynchronous fill of `page_id`: a no-op without a pool,
  /// when the page is already resident or queued, or when no frame is
  /// free without waiting.
  void Prefetch(uint64_t page_id);

  Stats stats() const;

 private:
  enum class FrameState : uint8_t { kEmpty, kQueued, kLoading, kReady };

  struct Frame {
    uint64_t page_id = kNoPage;
    int pin_count = 0;
    bool ref = false;        // second-chance bit
    bool doomed = false;     // dropped while a read was in flight
    bool prefetched = false; // filled by prefetch, not yet pinned
    FrameState state = FrameState::kEmpty;
    std::unique_ptr<std::byte[]> data;
  };

  static constexpr uint64_t kNoPage = ~uint64_t{0};
  static constexpr size_t kNoFrame = ~size_t{0};

  /// Clock sweep for an evictable frame (empty, or ready and unpinned);
  /// `kNoFrame` when every frame is pinned or mid-read.
  size_t FindVictimLocked();
  void EvictLocked(size_t frame_index);
  void ReadAt(uint64_t offset, std::byte* out) const;
  void WriteAt(uint64_t offset, const void* bytes) const;

  const size_t page_size_;
  ThreadPool* const pool_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Frame> frames_;
  std::unordered_map<uint64_t, size_t> page_table_;  // page id -> frame
  std::unordered_map<uint64_t, uint64_t> offsets_;   // page id -> file offset
  std::vector<uint64_t> free_offsets_;
  uint64_t next_offset_ = 0;
  uint64_t next_page_id_ = 0;
  size_t clock_hand_ = 0;
  size_t outstanding_prefetches_ = 0;
  Stats stats_;

  std::FILE* file_ = nullptr;
  int fd_ = -1;
};

}  // namespace skypeer

#endif  // SKYPEER_STORAGE_BUFFER_MANAGER_H_
