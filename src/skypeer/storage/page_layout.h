#ifndef SKYPEER_STORAGE_PAGE_LAYOUT_H_
#define SKYPEER_STORAGE_PAGE_LAYOUT_H_

#include <cstddef>
#include <cstdint>

#include "skypeer/common/dominance_batch.h"
#include "skypeer/common/macros.h"
#include "skypeer/common/op_counts.h"

namespace skypeer {

/// Default store page size in bytes (one classic DB page).
inline constexpr size_t kDefaultPageSize = 4096;
/// Bounds enforced on the `--page-size` flag.
inline constexpr size_t kMinPageSize = 4096;
inline constexpr size_t kMaxPageSize = 1 << 20;

/// \brief Geometry of the paged blocked-SoA store layout.
///
/// A page holds `blocks_per_page()` groups of `kDomBlockWidth` (8)
/// consecutive f-sorted points. Within a block the coordinates are
/// dim-major — exactly the lane layout `BlockedProjection` and the SIMD
/// dominance kernels consume — followed by an 8-wide `f` strip and an
/// 8-wide id strip:
///
///   block = [dim0 x8][dim1 x8]...[dim(d-1) x8][f x8][id x8]
///
/// so `bytes_per_block() = (dims + 2) * 8 * sizeof(double)`. Tail lanes
/// of the last block are padded with +inf coordinates/f (the same
/// convention `BlockedProjection` uses for killed lanes). Any page-tail
/// slack smaller than a block is zeroed.
///
/// The layout is a pure function of (page size, dims) and is shared by
/// paged *and* in-memory stores: logical `page_reads`/`page_bytes`
/// charges derive from it alone, which is what keeps every metric
/// bit-identical between the two modes.
struct PageLayout {
  size_t page_size = kDefaultPageSize;
  int dims = 1;

  PageLayout() = default;
  PageLayout(size_t page_size_in, int dims_in)
      : page_size(page_size_in), dims(dims_in) {
    SKYPEER_CHECK(dims >= 1);
    SKYPEER_CHECK(page_size >= bytes_per_block());
  }

  size_t bytes_per_block() const {
    return (static_cast<size_t>(dims) + 2) * kDomBlockWidth * sizeof(double);
  }
  size_t doubles_per_block() const {
    return (static_cast<size_t>(dims) + 2) * kDomBlockWidth;
  }
  size_t blocks_per_page() const { return page_size / bytes_per_block(); }
  size_t points_per_page() const { return blocks_per_page() * kDomBlockWidth; }

  /// Pages needed to hold `n` points.
  size_t PagesForPoints(size_t n) const {
    const size_t ppp = points_per_page();
    return (n + ppp - 1) / ppp;
  }
};

/// Positions whose `f` value a threshold scan over [begin, end) read:
/// every consumed point plus, when the scan stopped on the threshold
/// before `end`, the first rejected position. A pure function of the
/// scan outcome, so replays and chunked scans charge identically to the
/// direct scan they reproduce.
inline size_t ScanExamined(size_t begin, size_t end, size_t scanned) {
  return scanned + ((begin + scanned < end) ? 1 : 0);
}

/// Charges the logical page reads of a threshold scan over [begin, end)
/// that consumed `scanned` points: the pages spanning the examined
/// prefix, whole pages each. Charged identically for paged and
/// in-memory stores (see `PageLayout`).
inline void ChargeScanPages(const PageLayout& layout, size_t begin, size_t end,
                            size_t scanned, OpCounts* ops) {
  const size_t examined = ScanExamined(begin, end, scanned);
  if (examined == 0) {
    return;
  }
  const size_t ppp = layout.points_per_page();
  const size_t first = begin / ppp;
  const size_t last = (begin + examined - 1) / ppp;
  const uint64_t pages = static_cast<uint64_t>(last - first + 1);
  ops->page_reads += pages;
  ops->page_bytes += pages * static_cast<uint64_t>(layout.page_size);
}

/// Rounds `chunk` up to a whole number of pages (0 stays 0, meaning
/// "sequential"). Chunked parallel scans snap their chunk size with this
/// in both store modes, so concurrent chunk cursors never share a frame
/// and per-chunk page charges stay disjoint.
inline size_t SnapChunkToPages(const PageLayout& layout, size_t chunk) {
  if (chunk == 0) {
    return 0;
  }
  const size_t ppp = layout.points_per_page();
  const size_t rem = chunk % ppp;
  return rem == 0 ? chunk : chunk + (ppp - rem);
}

}  // namespace skypeer

#endif  // SKYPEER_STORAGE_PAGE_LAYOUT_H_
