#ifndef SKYPEER_STORAGE_PAGED_STORE_H_
#define SKYPEER_STORAGE_PAGED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/storage/buffer_manager.h"
#include "skypeer/storage/page_layout.h"
#include "skypeer/storage/store_summary.h"

namespace skypeer {

/// \brief An immutable f-sorted store spilled to pages (see `PageLayout`)
/// owned by a `BufferManager`.
///
/// Built once from a `ResultList` (write-through, no frames consumed),
/// then read through `StoreCursor` pins. Rebuilding a super-peer's store
/// after churn builds a new `PagedStore` with freshly allocated page ids
/// and releases the old pages — stale frames are unreachable by
/// construction because page ids are never recycled.
class PagedStore {
 public:
  PagedStore() = default;
  ~PagedStore() { Release(); }

  PagedStore(PagedStore&& other) noexcept { *this = std::move(other); }
  PagedStore& operator=(PagedStore&& other) noexcept {
    if (this != &other) {
      Release();
      buffer_ = other.buffer_;
      layout_ = other.layout_;
      size_ = other.size_;
      pages_ = std::move(other.pages_);
      summary_ = std::move(other.summary_);
      other.buffer_ = nullptr;
      other.size_ = 0;
      other.pages_.clear();
      other.summary_ = StoreSummary();
    }
    return *this;
  }

  PagedStore(const PagedStore&) = delete;
  PagedStore& operator=(const PagedStore&) = delete;

  /// Spills `list` (f-sorted) into freshly allocated pages of `buffer`.
  static PagedStore Build(const ResultList& list, BufferManager* buffer);

  bool valid() const { return buffer_ != nullptr; }
  size_t size() const { return size_; }
  int dims() const { return layout_.dims; }
  const PageLayout& layout() const { return layout_; }
  size_t num_pages() const { return pages_.size(); }
  uint64_t page_id(size_t page_index) const { return pages_[page_index]; }
  BufferManager* buffer() const { return buffer_; }

  /// Always-resident zone-map summary of the spilled store, built by
  /// `Build` from the same list with the shared `StoreSummary::Build`
  /// — bit-identical to the summary the in-memory mode builds, so skip
  /// decisions never diverge between modes. Null while invalid.
  const StoreSummary* summary() const {
    return valid() ? &summary_ : nullptr;
  }

  /// Reads the whole store back into memory (persistence, cloning and
  /// churn-merge inputs). Bit-exact inverse of `Build`.
  ResultList Materialize() const;

  /// Drops every page and detaches from the buffer manager.
  void Release();

 private:
  BufferManager* buffer_ = nullptr;
  PageLayout layout_;
  size_t size_ = 0;
  std::vector<uint64_t> pages_;
  StoreSummary summary_;
};

}  // namespace skypeer

#endif  // SKYPEER_STORAGE_PAGED_STORE_H_
