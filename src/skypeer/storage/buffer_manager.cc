#include "skypeer/storage/buffer_manager.h"

#include <unistd.h>

#include <cerrno>

#include "skypeer/common/macros.h"
#include "skypeer/common/thread_pool.h"

namespace skypeer {

BufferManager::BufferManager(size_t page_size, size_t num_frames,
                             ThreadPool* prefetch_pool)
    : page_size_(page_size), pool_(prefetch_pool) {
  SKYPEER_CHECK(page_size_ > 0);
  SKYPEER_CHECK(num_frames >= 2);
  frames_.resize(num_frames);
  for (Frame& frame : frames_) {
    frame.data = std::make_unique<std::byte[]>(page_size_);
  }
  file_ = std::tmpfile();
  SKYPEER_CHECK(file_ != nullptr);
  fd_ = fileno(file_);
  SKYPEER_CHECK(fd_ >= 0);
}

BufferManager::~BufferManager() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return outstanding_prefetches_ == 0; });
  }
  std::fclose(file_);
}

uint64_t BufferManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t offset;
  if (!free_offsets_.empty()) {
    offset = free_offsets_.back();
    free_offsets_.pop_back();
  } else {
    offset = next_offset_;
    next_offset_ += page_size_;
  }
  const uint64_t id = next_page_id_++;
  offsets_.emplace(id, offset);
  return id;
}

void BufferManager::WritePage(uint64_t page_id, const void* bytes) {
  uint64_t offset;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = offsets_.find(page_id);
    SKYPEER_CHECK(it != offsets_.end());
    SKYPEER_CHECK(page_table_.find(page_id) == page_table_.end());
    offset = it->second;
    ++stats_.pages_written;
  }
  WriteAt(offset, bytes);
}

void BufferManager::DropPage(uint64_t page_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto offset_it = offsets_.find(page_id);
  SKYPEER_CHECK(offset_it != offsets_.end());
  free_offsets_.push_back(offset_it->second);
  offsets_.erase(offset_it);
  const auto frame_it = page_table_.find(page_id);
  if (frame_it == page_table_.end()) {
    return;
  }
  Frame& frame = frames_[frame_it->second];
  SKYPEER_CHECK(frame.pin_count == 0);
  if (frame.state == FrameState::kLoading) {
    // A read is writing the frame buffer; the loader clears it on
    // completion.
    frame.doomed = true;
    return;
  }
  // Queued prefetches notice the reassignment and skip themselves.
  page_table_.erase(frame_it);
  frame.page_id = kNoPage;
  frame.state = FrameState::kEmpty;
  frame.ref = false;
  frame.prefetched = false;
}

size_t BufferManager::FindVictimLocked() {
  for (size_t step = 0; step < 2 * frames_.size(); ++step) {
    const size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    Frame& frame = frames_[index];
    if (frame.state == FrameState::kEmpty) {
      return index;
    }
    if (frame.pin_count > 0 || frame.state != FrameState::kReady) {
      continue;
    }
    if (frame.ref) {
      frame.ref = false;
      continue;
    }
    return index;
  }
  return kNoFrame;
}

void BufferManager::EvictLocked(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  if (frame.page_id != kNoPage) {
    page_table_.erase(frame.page_id);
    frame.page_id = kNoPage;
    ++stats_.evictions;
  }
  frame.state = FrameState::kEmpty;
  frame.ref = false;
  frame.doomed = false;
  frame.prefetched = false;
}

const std::byte* BufferManager::Pin(uint64_t page_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto it = page_table_.find(page_id);
    if (it != page_table_.end()) {
      Frame& frame = frames_[it->second];
      if (frame.state == FrameState::kLoading) {
        // The read is actively running on another thread; it finishes
        // without needing this thread, so waiting cannot deadlock.
        cv_.wait(lock);
        continue;
      }
      if (frame.state == FrameState::kQueued) {
        // Claim the queued prefetch and do the read ourselves rather
        // than wait on pool scheduling.
        frame.state = FrameState::kLoading;
        frame.pin_count = 1;
        frame.ref = true;
        ++stats_.misses;
        const uint64_t offset = offsets_.at(page_id);
        lock.unlock();
        ReadAt(offset, frame.data.get());
        lock.lock();
        frame.state = FrameState::kReady;
        frame.prefetched = false;
        cv_.notify_all();
        return frame.data.get();
      }
      ++frame.pin_count;
      frame.ref = true;
      ++stats_.hits;
      if (frame.prefetched) {
        ++stats_.prefetch_hits;
        frame.prefetched = false;
      }
      return frame.data.get();
    }

    const size_t victim = FindVictimLocked();
    if (victim == kNoFrame) {
      // Every frame is pinned or mid-read; cursors release their pin
      // before requesting the next page, so capacity frees up.
      cv_.wait(lock);
      continue;
    }
    EvictLocked(victim);
    Frame& frame = frames_[victim];
    const auto offset_it = offsets_.find(page_id);
    SKYPEER_CHECK(offset_it != offsets_.end());
    frame.page_id = page_id;
    frame.pin_count = 1;
    frame.ref = true;
    frame.state = FrameState::kLoading;
    page_table_.emplace(page_id, victim);
    ++stats_.misses;
    const uint64_t offset = offset_it->second;
    lock.unlock();
    ReadAt(offset, frame.data.get());
    lock.lock();
    frame.state = FrameState::kReady;
    cv_.notify_all();
    return frame.data.get();
  }
}

void BufferManager::Unpin(uint64_t page_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = page_table_.find(page_id);
  SKYPEER_CHECK(it != page_table_.end());
  Frame& frame = frames_[it->second];
  SKYPEER_CHECK(frame.pin_count > 0);
  if (--frame.pin_count == 0) {
    cv_.notify_all();
  }
}

void BufferManager::Prefetch(uint64_t page_id) {
  if (pool_ == nullptr) {
    return;
  }
  size_t victim;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (page_table_.find(page_id) != page_table_.end()) {
      return;
    }
    if (offsets_.find(page_id) == offsets_.end()) {
      return;
    }
    victim = FindVictimLocked();
    if (victim == kNoFrame) {
      return;
    }
    EvictLocked(victim);
    Frame& frame = frames_[victim];
    frame.page_id = page_id;
    frame.ref = true;
    frame.state = FrameState::kQueued;
    frame.prefetched = true;
    page_table_.emplace(page_id, victim);
    ++stats_.prefetches_issued;
    ++outstanding_prefetches_;
  }
  pool_->Submit([this, page_id, victim] {
    uint64_t offset = 0;
    bool run = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      Frame& frame = frames_[victim];
      // Skip if a pinner claimed the fill or the page was dropped.
      if (frame.page_id == page_id && frame.state == FrameState::kQueued) {
        frame.state = FrameState::kLoading;
        offset = offsets_.at(page_id);
        run = true;
      }
    }
    if (run) {
      ReadAt(offset, frames_[victim].data.get());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (run) {
      Frame& frame = frames_[victim];
      frame.state = FrameState::kReady;
      if (frame.doomed) {
        page_table_.erase(frame.page_id);
        frame.page_id = kNoPage;
        frame.state = FrameState::kEmpty;
        frame.doomed = false;
        frame.prefetched = false;
      }
    }
    --outstanding_prefetches_;
    cv_.notify_all();
  });
}

BufferManager::Stats BufferManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void BufferManager::ReadAt(uint64_t offset, std::byte* out) const {
  size_t done = 0;
  while (done < page_size_) {
    const ssize_t n = pread(fd_, out + done, page_size_ - done,
                            static_cast<off_t>(offset + done));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    SKYPEER_CHECK(n > 0);
    done += static_cast<size_t>(n);
  }
}

void BufferManager::WriteAt(uint64_t offset, const void* bytes) const {
  const std::byte* in = static_cast<const std::byte*>(bytes);
  size_t done = 0;
  while (done < page_size_) {
    const ssize_t n = pwrite(fd_, in + done, page_size_ - done,
                             static_cast<off_t>(offset + done));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    SKYPEER_CHECK(n > 0);
    done += static_cast<size_t>(n);
  }
}

}  // namespace skypeer
