#include "skypeer/storage/paged_store.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "skypeer/common/macros.h"

namespace skypeer {

PagedStore PagedStore::Build(const ResultList& list, BufferManager* buffer) {
  SKYPEER_CHECK(buffer != nullptr);
  PagedStore store;
  store.buffer_ = buffer;
  store.layout_ = PageLayout(buffer->page_size(), list.points.dims());
  store.size_ = list.size();
  // The summary stays resident even though the store itself spills; it is
  // built from the list (not the spilled pages) with the same shared
  // function the in-memory mode uses, so both modes carry bit-identical
  // zone maps.
  store.summary_ = StoreSummary::Build(list, store.layout_);

  const PageLayout& layout = store.layout_;
  const size_t dims = static_cast<size_t>(layout.dims);
  const size_t num_pages = layout.PagesForPoints(store.size_);
  store.pages_.reserve(num_pages);

  constexpr double kPad = std::numeric_limits<double>::infinity();
  std::vector<double> page(layout.page_size / sizeof(double));
  for (size_t p = 0; p < num_pages; ++p) {
    std::fill(page.begin(), page.end(), 0.0);
    for (size_t b = 0; b < layout.blocks_per_page(); ++b) {
      double* block = page.data() + b * layout.doubles_per_block();
      for (size_t lane = 0; lane < kDomBlockWidth; ++lane) {
        const size_t i =
            p * layout.points_per_page() + b * kDomBlockWidth + lane;
        if (i < store.size_) {
          const double* row = list.points[i];
          for (size_t d = 0; d < dims; ++d) {
            block[d * kDomBlockWidth + lane] = row[d];
          }
          block[dims * kDomBlockWidth + lane] = list.f[i];
          const PointId id = list.points.id(i);
          std::memcpy(&block[(dims + 1) * kDomBlockWidth + lane], &id,
                      sizeof(PointId));
        } else {
          for (size_t d = 0; d <= dims; ++d) {
            block[d * kDomBlockWidth + lane] = kPad;
          }
          const PointId id = ~PointId{0};
          std::memcpy(&block[(dims + 1) * kDomBlockWidth + lane], &id,
                      sizeof(PointId));
        }
      }
    }
    const uint64_t page_id = buffer->AllocatePage();
    buffer->WritePage(page_id, page.data());
    store.pages_.push_back(page_id);
  }
  return store;
}

ResultList PagedStore::Materialize() const {
  ResultList out(layout_.dims);
  out.points.Reserve(size_);
  out.f.reserve(size_);
  const size_t dims = static_cast<size_t>(layout_.dims);
  std::vector<double> row(dims);
  for (size_t p = 0; p < pages_.size(); ++p) {
    const double* page =
        reinterpret_cast<const double*>(buffer_->Pin(pages_[p]));
    const size_t first = p * layout_.points_per_page();
    const size_t count =
        std::min(layout_.points_per_page(), size_ - first);
    for (size_t local = 0; local < count; ++local) {
      const double* block =
          page + (local / kDomBlockWidth) * layout_.doubles_per_block();
      const size_t lane = local % kDomBlockWidth;
      for (size_t d = 0; d < dims; ++d) {
        row[d] = block[d * kDomBlockWidth + lane];
      }
      PointId id;
      std::memcpy(&id, &block[(dims + 1) * kDomBlockWidth + lane],
                  sizeof(PointId));
      out.points.Append(row.data(), id);
      out.f.push_back(block[dims * kDomBlockWidth + lane]);
    }
    buffer_->Unpin(pages_[p]);
  }
  return out;
}

void PagedStore::Release() {
  if (buffer_ == nullptr) {
    return;
  }
  for (uint64_t page_id : pages_) {
    buffer_->DropPage(page_id);
  }
  pages_.clear();
  buffer_ = nullptr;
  size_ = 0;
  summary_ = StoreSummary();
}

}  // namespace skypeer
