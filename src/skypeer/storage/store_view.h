#ifndef SKYPEER_STORAGE_STORE_VIEW_H_
#define SKYPEER_STORAGE_STORE_VIEW_H_

#include <cstddef>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/storage/paged_store.h"
#include "skypeer/storage/store_summary.h"

namespace skypeer {

/// \brief Uniform read-only view over an f-sorted store, either resident
/// (`ResultList`) or paged (`PagedStore`).
///
/// The view is a cheap immutable descriptor; per-scan state (the pinned
/// frame, the gathered row) lives in `StoreCursor`, so concurrent chunk
/// scans each open their own cursor. Both modes carry a `PageLayout`:
/// logical page charges and page-snapped chunking derive from the layout
/// alone, which keeps paged and in-memory runs bit-identical.
class StoreView {
 public:
  /// View over a resident list; `page_size` fixes the logical page
  /// geometry (the default mirrors the `--page-size` default). `summary`
  /// optionally attaches a zone-map summary of the same list (see
  /// `StoreSummary`); without one, block-skipping scans fall back to the
  /// plain full scan.
  explicit StoreView(const ResultList* list,
                     size_t page_size = kDefaultPageSize,
                     const StoreSummary* summary = nullptr)
      : list_(list), layout_(page_size, list->points.dims()),
        summary_(summary) {}

  /// View over a paged store; its own summary (built at spill time) rides
  /// along automatically.
  explicit StoreView(const PagedStore* store)
      : store_(store), layout_(store->layout()), summary_(store->summary()) {}

  size_t size() const { return list_ != nullptr ? list_->size() : store_->size(); }
  bool empty() const { return size() == 0; }
  int dims() const { return layout_.dims; }
  const PageLayout& layout() const { return layout_; }
  bool paged() const { return store_ != nullptr; }
  const ResultList* list() const { return list_; }
  const PagedStore* paged_store() const { return store_; }
  /// Zone-map summary of this store, or null when none was attached
  /// (valid summaries only; an invalid one is reported as null).
  const StoreSummary* summary() const {
    return (summary_ != nullptr && summary_->valid()) ? summary_ : nullptr;
  }

 private:
  const ResultList* list_ = nullptr;
  const PagedStore* store_ = nullptr;
  PageLayout layout_;
  const StoreSummary* summary_ = nullptr;
};

/// \brief Stateful reader over a `StoreView`.
///
/// Random access API (`f(i)`, `row(i)`, `id(i)`); sequential use in
/// ascending `i` is the fast path. On a paged view the cursor keeps
/// exactly one page pinned — it releases the current pin before pinning
/// the next page, so any number of concurrent cursors make progress on a
/// pool of >= 2 frames — and issues deterministic read-ahead for the
/// next pages along scan order whenever it crosses a page boundary
/// moving forward. `row(i)` returns a pointer valid until the next
/// cursor call.
class StoreCursor {
 public:
  /// Pages of read-ahead issued when the cursor crosses into a new page.
  static constexpr size_t kPrefetchDepth = 2;
  /// How far past the current page the read-ahead looks for non-skipped
  /// pages when a prefetch filter is installed.
  static constexpr size_t kPrefetchLookahead = 8;

  /// Predicate consulted by the read-ahead: true means "this page will
  /// (predictably) be skipped entirely, do not prefetch it".
  using PrefetchFilter = std::function<bool(size_t page_index)>;

  explicit StoreCursor(const StoreView& view)
      : list_(view.list()), store_(view.paged_store()), layout_(view.layout()) {
    if (store_ != nullptr) {
      row_scratch_.resize(static_cast<size_t>(layout_.dims));
    }
  }
  ~StoreCursor() { ReleasePage(); }

  StoreCursor(const StoreCursor&) = delete;
  StoreCursor& operator=(const StoreCursor&) = delete;

  /// Installs a read-ahead filter: forward page crossings then prefetch
  /// the first `kPrefetchDepth` upcoming pages the filter does *not*
  /// predict-skip (looking at most `kPrefetchLookahead` pages ahead), so
  /// read-ahead jumps over pages a block-skipping scan will never touch.
  /// Purely physical: prefetches are best-effort hints and never enter
  /// logical op counts, so an imperfect prediction (the window tightens
  /// after the hint) costs at most one wasted or missed prefetch.
  void set_prefetch_filter(PrefetchFilter filter) {
    prefetch_filter_ = std::move(filter);
  }

  double f(size_t i) {
    if (list_ != nullptr) {
      return list_->f[i];
    }
    const double* block = Block(i);
    return block[static_cast<size_t>(layout_.dims) * kDomBlockWidth +
                 i % kDomBlockWidth];
  }

  const double* row(size_t i) {
    if (list_ != nullptr) {
      return list_->points[i];
    }
    const double* block = Block(i);
    const size_t lane = i % kDomBlockWidth;
    for (size_t d = 0; d < row_scratch_.size(); ++d) {
      row_scratch_[d] = block[d * kDomBlockWidth + lane];
    }
    return row_scratch_.data();
  }

  PointId id(size_t i) {
    if (list_ != nullptr) {
      return list_->points.id(i);
    }
    const double* block = Block(i);
    PointId id;
    std::memcpy(
        &id,
        &block[(static_cast<size_t>(layout_.dims) + 1) * kDomBlockWidth +
               i % kDomBlockWidth],
        sizeof(PointId));
    return id;
  }

 private:
  static constexpr size_t kNoPage = ~size_t{0};

  /// Pointer to the 8-wide block holding point `i`, pinning its page.
  const double* Block(size_t i) {
    const size_t page = i / layout_.points_per_page();
    if (page != current_page_) {
      EnterPage(page);
    }
    const size_t local = i % layout_.points_per_page();
    return page_data_ + (local / kDomBlockWidth) * layout_.doubles_per_block();
  }

  void EnterPage(size_t page) {
    BufferManager* buffer = store_->buffer();
    const bool forward = current_page_ == kNoPage || page > current_page_;
    ReleasePage();
    page_data_ =
        reinterpret_cast<const double*>(buffer->Pin(store_->page_id(page)));
    current_page_ = page;
    if (forward) {
      const size_t last = store_->num_pages() - 1;
      size_t issued = 0;
      for (size_t ahead = 1;
           issued < kPrefetchDepth && ahead <= kPrefetchLookahead; ++ahead) {
        if (page + ahead > last) {
          break;
        }
        if (prefetch_filter_ && prefetch_filter_(page + ahead)) {
          continue;  // scan will jump this page; read ahead past it
        }
        buffer->Prefetch(store_->page_id(page + ahead));
        ++issued;
      }
    }
  }

  void ReleasePage() {
    if (current_page_ != kNoPage) {
      store_->buffer()->Unpin(store_->page_id(current_page_));
      current_page_ = kNoPage;
      page_data_ = nullptr;
    }
  }

  const ResultList* list_ = nullptr;
  const PagedStore* store_ = nullptr;
  PageLayout layout_;
  size_t current_page_ = kNoPage;
  const double* page_data_ = nullptr;
  std::vector<double> row_scratch_;
  PrefetchFilter prefetch_filter_;
};

}  // namespace skypeer

#endif  // SKYPEER_STORAGE_STORE_VIEW_H_
