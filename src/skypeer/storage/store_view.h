#ifndef SKYPEER_STORAGE_STORE_VIEW_H_
#define SKYPEER_STORAGE_STORE_VIEW_H_

#include <cstddef>
#include <cstring>
#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/storage/paged_store.h"

namespace skypeer {

/// \brief Uniform read-only view over an f-sorted store, either resident
/// (`ResultList`) or paged (`PagedStore`).
///
/// The view is a cheap immutable descriptor; per-scan state (the pinned
/// frame, the gathered row) lives in `StoreCursor`, so concurrent chunk
/// scans each open their own cursor. Both modes carry a `PageLayout`:
/// logical page charges and page-snapped chunking derive from the layout
/// alone, which keeps paged and in-memory runs bit-identical.
class StoreView {
 public:
  /// View over a resident list; `page_size` fixes the logical page
  /// geometry (the default mirrors the `--page-size` default).
  explicit StoreView(const ResultList* list,
                     size_t page_size = kDefaultPageSize)
      : list_(list), layout_(page_size, list->points.dims()) {}

  /// View over a paged store.
  explicit StoreView(const PagedStore* store)
      : store_(store), layout_(store->layout()) {}

  size_t size() const { return list_ != nullptr ? list_->size() : store_->size(); }
  bool empty() const { return size() == 0; }
  int dims() const { return layout_.dims; }
  const PageLayout& layout() const { return layout_; }
  bool paged() const { return store_ != nullptr; }
  const ResultList* list() const { return list_; }
  const PagedStore* paged_store() const { return store_; }

 private:
  const ResultList* list_ = nullptr;
  const PagedStore* store_ = nullptr;
  PageLayout layout_;
};

/// \brief Stateful reader over a `StoreView`.
///
/// Random access API (`f(i)`, `row(i)`, `id(i)`); sequential use in
/// ascending `i` is the fast path. On a paged view the cursor keeps
/// exactly one page pinned — it releases the current pin before pinning
/// the next page, so any number of concurrent cursors make progress on a
/// pool of >= 2 frames — and issues deterministic read-ahead for the
/// next pages along scan order whenever it crosses a page boundary
/// moving forward. `row(i)` returns a pointer valid until the next
/// cursor call.
class StoreCursor {
 public:
  /// Pages of read-ahead issued when the cursor crosses into a new page.
  static constexpr size_t kPrefetchDepth = 2;

  explicit StoreCursor(const StoreView& view)
      : list_(view.list()), store_(view.paged_store()), layout_(view.layout()) {
    if (store_ != nullptr) {
      row_scratch_.resize(static_cast<size_t>(layout_.dims));
    }
  }
  ~StoreCursor() { ReleasePage(); }

  StoreCursor(const StoreCursor&) = delete;
  StoreCursor& operator=(const StoreCursor&) = delete;

  double f(size_t i) {
    if (list_ != nullptr) {
      return list_->f[i];
    }
    const double* block = Block(i);
    return block[static_cast<size_t>(layout_.dims) * kDomBlockWidth +
                 i % kDomBlockWidth];
  }

  const double* row(size_t i) {
    if (list_ != nullptr) {
      return list_->points[i];
    }
    const double* block = Block(i);
    const size_t lane = i % kDomBlockWidth;
    for (size_t d = 0; d < row_scratch_.size(); ++d) {
      row_scratch_[d] = block[d * kDomBlockWidth + lane];
    }
    return row_scratch_.data();
  }

  PointId id(size_t i) {
    if (list_ != nullptr) {
      return list_->points.id(i);
    }
    const double* block = Block(i);
    PointId id;
    std::memcpy(
        &id,
        &block[(static_cast<size_t>(layout_.dims) + 1) * kDomBlockWidth +
               i % kDomBlockWidth],
        sizeof(PointId));
    return id;
  }

 private:
  static constexpr size_t kNoPage = ~size_t{0};

  /// Pointer to the 8-wide block holding point `i`, pinning its page.
  const double* Block(size_t i) {
    const size_t page = i / layout_.points_per_page();
    if (page != current_page_) {
      EnterPage(page);
    }
    const size_t local = i % layout_.points_per_page();
    return page_data_ + (local / kDomBlockWidth) * layout_.doubles_per_block();
  }

  void EnterPage(size_t page) {
    BufferManager* buffer = store_->buffer();
    const bool forward = current_page_ == kNoPage || page > current_page_;
    ReleasePage();
    page_data_ =
        reinterpret_cast<const double*>(buffer->Pin(store_->page_id(page)));
    current_page_ = page;
    if (forward) {
      const size_t last = store_->num_pages() - 1;
      for (size_t ahead = 1; ahead <= kPrefetchDepth; ++ahead) {
        if (page + ahead > last) {
          break;
        }
        buffer->Prefetch(store_->page_id(page + ahead));
      }
    }
  }

  void ReleasePage() {
    if (current_page_ != kNoPage) {
      store_->buffer()->Unpin(store_->page_id(current_page_));
      current_page_ = kNoPage;
      page_data_ = nullptr;
    }
  }

  const ResultList* list_ = nullptr;
  const PagedStore* store_ = nullptr;
  PageLayout layout_;
  size_t current_page_ = kNoPage;
  const double* page_data_ = nullptr;
  std::vector<double> row_scratch_;
};

}  // namespace skypeer

#endif  // SKYPEER_STORAGE_STORE_VIEW_H_
