#include "skypeer/storage/store_summary.h"

#include <algorithm>
#include <limits>

#include "skypeer/common/dominance_batch.h"
#include "skypeer/common/macros.h"

namespace skypeer {

StoreSummary StoreSummary::Build(const ResultList& list,
                                 const PageLayout& layout) {
  StoreSummary summary;
  summary.dims_ = layout.dims;
  summary.size_ = list.size();
  const size_t n = list.size();
  const size_t dims = static_cast<size_t>(layout.dims);
  const size_t num_blocks = (n + kDomBlockWidth - 1) / kDomBlockWidth;
  summary.block_min_.resize(num_blocks * dims);
  summary.block_f_min_.resize(num_blocks);
  summary.block_f_max_.resize(num_blocks);

  // Per-block minima via the BatchMinCoord kernels on a dim-major 8-lane
  // strip (exactly the blocked page layout of one block's coordinates):
  // with (rows = strip, n = dims, dims = 8) each "row" is one dimension's
  // 8 lanes and out[d] reduces them in fixed lane order. Padding lanes
  // are +inf and never win.
  constexpr double kPad = std::numeric_limits<double>::infinity();
  std::vector<double> strip(dims * kDomBlockWidth);
  for (size_t b = 0; b < num_blocks; ++b) {
    std::fill(strip.begin(), strip.end(), kPad);
    const size_t begin = b * kDomBlockWidth;
    const size_t end = std::min(n, begin + kDomBlockWidth);
    for (size_t i = begin; i < end; ++i) {
      const double* row = list.points[i];
      const size_t lane = i - begin;
      for (size_t d = 0; d < dims; ++d) {
        strip[d * kDomBlockWidth + lane] = row[d];
      }
    }
    BatchMinCoord(strip.data(), dims, static_cast<int>(kDomBlockWidth),
                  &summary.block_min_[b * dims]);
    summary.block_f_min_[b] = list.f[begin];
    summary.block_f_max_[b] = list.f[end - 1];
  }

  // Page-level fold in ascending block order. Only min/max comparisons,
  // so the fold order cannot change any comparison outcome downstream.
  const size_t num_pages = layout.PagesForPoints(n);
  const size_t bpp = layout.blocks_per_page();
  summary.page_min_.resize(num_pages * dims, kPad);
  summary.page_f_min_.resize(num_pages);
  summary.page_f_max_.resize(num_pages);
  for (size_t p = 0; p < num_pages; ++p) {
    const size_t first = p * bpp;
    const size_t last = std::min(num_blocks, first + bpp);
    SKYPEER_DCHECK(first < last);
    double* fold = &summary.page_min_[p * dims];
    for (size_t b = first; b < last; ++b) {
      const double* m = &summary.block_min_[b * dims];
      for (size_t d = 0; d < dims; ++d) {
        fold[d] = std::min(fold[d], m[d]);
      }
    }
    summary.page_f_min_[p] = summary.block_f_min_[first];
    summary.page_f_max_[p] = summary.block_f_max_[last - 1];
  }
  return summary;
}

}  // namespace skypeer
