#ifndef SKYPEER_ALGO_SFS_H_
#define SKYPEER_ALGO_SFS_H_

#include "skypeer/common/point_set.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// \brief Sort-Filter-Skyline (Chomicki et al., ICDE'03): pre-sorts the
/// input by a monotone function (the coordinate sum over `u`), after which
/// a point can only be dominated by points that precede it, so no window
/// eviction is ever needed.
///
/// Returns the skyline of `input` on subspace `u`, sorted by ascending
/// coordinate sum; with `ext` the extended skyline instead.
PointSet SfsSkyline(const PointSet& input, Subspace u, bool ext = false);

}  // namespace skypeer

#endif  // SKYPEER_ALGO_SFS_H_
