#ifndef SKYPEER_ALGO_NN_SKYLINE_H_
#define SKYPEER_ALGO_NN_SKYLINE_H_

#include <cstddef>

#include "skypeer/common/point_set.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// Counters reported by the NN-skyline computation.
struct NnSkylineStats {
  /// Nearest-neighbor searches issued (= regions processed).
  size_t nn_queries = 0;
  /// Peak size of the region to-do list.
  size_t max_todo = 0;
};

/// \brief Nearest-neighbor skyline (Kossmann, Ramsak & Rost, VLDB'02 —
/// the paper's reference [11]): progressively emits skyline points by
/// repeated nearest-neighbor search on an R-tree over the query-subspace
/// projection.
///
/// The point minimizing the coordinate sum within a "not yet dominated"
/// region is always a skyline point; emitting it splits the region into
/// |U| overlapping subregions (one per dimension, upper-bounded strictly
/// by the new point's coordinate), which are processed until exhausted.
/// Points tying an emitted point on every queried coordinate are also
/// skyline members and are collected in a final equality pass, so the
/// result is exact even with duplicate attribute values.
///
/// NN-skyline is progressive (first results arrive immediately) but its
/// region list can grow combinatorially with |U| and the skyline size —
/// the classic trade-off this library's Algorithm 1 avoids.
PointSet NnSkyline(const PointSet& input, Subspace u,
                   NnSkylineStats* stats = nullptr);

}  // namespace skypeer

#endif  // SKYPEER_ALGO_NN_SKYLINE_H_
