#include "skypeer/algo/anchored_skyline.h"

#include <algorithm>
#include <limits>

#include "skypeer/common/macros.h"
#include "skypeer/common/rng.h"

namespace skypeer {

namespace {

/// Plain Lloyd k-means over the rows of `points`; returns per-point
/// cluster assignments (clusters may come out empty).
std::vector<int> KMeansAssign(const PointSet& points, int k, int iterations,
                              uint64_t seed) {
  const int dims = points.dims();
  const size_t n = points.size();
  Rng rng(seed);
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  for (int c = 0; c < k; ++c) {
    const size_t pick = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(n) - 1));
    centers.emplace_back(points[pick], points[pick] + dims);
  }
  std::vector<int> assignment(n, 0);
  for (int iter = 0; iter < iterations; ++iter) {
    // Assign.
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        double dist = 0.0;
        for (int d = 0; d < dims; ++d) {
          const double delta = points[i][d] - centers[c][d];
          dist += delta * delta;
        }
        if (dist < best) {
          best = dist;
          assignment[i] = c;
        }
      }
    }
    // Update.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const int c = assignment[i];
      ++counts[c];
      for (int d = 0; d < dims; ++d) {
        sums[c][d] += points[i][d];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        continue;  // Keep the stale center; the cluster may refill.
      }
      for (int d = 0; d < dims; ++d) {
        centers[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }
  return assignment;
}

}  // namespace

AnchoredSkylineIndex::AnchoredSkylineIndex(const PointSet& points,
                                           const Options& options)
    : points_(points) {
  SKYPEER_CHECK(options.num_anchors >= 1);
  const int dims = points_.dims();
  if (points_.empty()) {
    return;
  }
  const int k =
      std::min<int>(options.num_anchors, static_cast<int>(points_.size()));
  const std::vector<int> assignment =
      KMeansAssign(points_, k, options.kmeans_iterations, options.seed);

  // Lower corners per cluster.
  std::vector<std::vector<double>> lower(
      k, std::vector<double>(dims, std::numeric_limits<double>::infinity()));
  std::vector<size_t> counts(k, 0);
  for (size_t i = 0; i < points_.size(); ++i) {
    const int c = assignment[i];
    ++counts[c];
    for (int d = 0; d < dims; ++d) {
      lower[c][d] = std::min(lower[c][d], points_[i][d]);
    }
  }

  // Materialize the non-empty clusters; remap assignments.
  std::vector<int> remap(k, -1);
  for (int c = 0; c < k; ++c) {
    if (counts[c] == 0) {
      continue;
    }
    remap[c] = static_cast<int>(clusters_.size());
    clusters_.emplace_back();
    clusters_.back().lower = std::move(lower[c]);
  }
  for (size_t i = 0; i < points_.size(); ++i) {
    Cluster& cluster = clusters_[remap[assignment[i]]];
    double key = std::numeric_limits<double>::infinity();
    for (int d = 0; d < dims; ++d) {
      key = std::min(key, points_[i][d] - cluster.lower[d]);
    }
    cluster.tree.Insert(key, i);
  }
}

PointSet AnchoredSkylineIndex::Query(Subspace u,
                                     ThresholdScanStats* stats) const {
  SKYPEER_CHECK(!u.empty());
  const int dims = points_.dims();
  ThresholdScanOptions accumulator_options;
  SkylineAccumulator accumulator(dims, u, accumulator_options);

  struct Scan {
    BPlusTree::Cursor cursor;
    const Cluster* cluster;
    /// Prune bound: min over accepted candidates s of
    /// max_{i in U}(s[i] - L_c[i]).
    double threshold = std::numeric_limits<double>::infinity();
  };
  std::vector<Scan> scans;
  scans.reserve(clusters_.size());
  for (const Cluster& cluster : clusters_) {
    scans.push_back(Scan{cluster.tree.Begin(), &cluster,
                         std::numeric_limits<double>::infinity()});
  }

  size_t consumed = 0;
  while (true) {
    // Pick the processable cursor with the smallest key (greedy: points
    // near their cluster's corner enter the window early and set tight
    // thresholds).
    int best = -1;
    double best_key = std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < scans.size(); ++s) {
      if (scans[s].cursor.Valid() &&
          scans[s].cursor.key() <= scans[s].threshold &&
          scans[s].cursor.key() < best_key) {
        best = static_cast<int>(s);
        best_key = scans[s].cursor.key();
      }
    }
    if (best == -1) {
      break;  // Every remaining point is beyond its cluster threshold.
    }
    Scan& scan = scans[best];
    const size_t row = scan.cursor.payload();
    scan.cursor.Next();
    ++consumed;

    // The accumulator's own f-based pruning is bypassed (f = -inf); the
    // per-cluster thresholds above do that job.
    if (accumulator.Offer(points_[row], points_.id(row),
                          -std::numeric_limits<double>::infinity())) {
      // A new candidate tightens every cluster's bound.
      const double* s = points_[row];
      for (Scan& other : scans) {
        double reach = -std::numeric_limits<double>::infinity();
        for (int dim : u) {
          reach = std::max(reach, s[dim] - other.cluster->lower[dim]);
        }
        other.threshold = std::min(other.threshold, reach);
      }
    }
  }

  if (stats != nullptr) {
    stats->scanned = consumed;
    stats->final_threshold = std::numeric_limits<double>::quiet_NaN();
  }
  ResultList result = accumulator.TakeResult();
  return std::move(result.points);
}

}  // namespace skypeer
