#include "skypeer/algo/skycube.h"

#include <algorithm>

#include "skypeer/algo/bnl.h"
#include "skypeer/common/macros.h"

namespace skypeer {

SkyCube::SkyCube(const PointSet& points) : dims_(points.dims()) {
  SKYPEER_CHECK(dims_ <= 12);
  const uint32_t limit = uint32_t{1} << dims_;
  skylines_.resize(limit);
  for (uint32_t mask = 1; mask < limit; ++mask) {
    PointSet skyline = BnlSkyline(points, Subspace(mask));
    skylines_[mask] = skyline.Ids();
  }
}

const std::vector<PointId>& SkyCube::Skyline(Subspace u) const {
  SKYPEER_CHECK(!u.empty());
  SKYPEER_CHECK(u.mask() < skylines_.size());
  return skylines_[u.mask()];
}

std::vector<PointId> SkyCube::UnionOfAllSkylines() const {
  std::vector<PointId> result;
  for (size_t mask = 1; mask < skylines_.size(); ++mask) {
    result.insert(result.end(), skylines_[mask].begin(),
                  skylines_[mask].end());
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace skypeer
