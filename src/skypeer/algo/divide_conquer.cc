#include "skypeer/algo/divide_conquer.h"

#include <algorithm>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/common/dominance.h"
#include "skypeer/common/macros.h"

namespace skypeer {

namespace {

constexpr size_t kBaseCaseSize = 64;

PointSet Recurse(const PointSet& input, Subspace u, bool ext, int depth) {
  if (input.size() <= kBaseCaseSize) {
    return BnlSkyline(input, u, ext);
  }

  // Choose a queried dimension with a non-degenerate split, starting from
  // the depth-th one (round robin over |u| dimensions).
  const std::vector<int> dims = u.Dims();
  const int k = static_cast<int>(dims.size());
  int split_dim = -1;
  double median = 0.0;
  std::vector<double> values(input.size());
  for (int attempt = 0; attempt < k; ++attempt) {
    const int dim = dims[(depth + attempt) % k];
    for (size_t i = 0; i < input.size(); ++i) {
      values[i] = input[i][dim];
    }
    auto mid = values.begin() + values.size() / 2;
    std::nth_element(values.begin(), mid, values.end());
    const double candidate = *mid;
    // The split is `< median` vs `>= median`; it degenerates when no
    // value is strictly below the median.
    const double min_value = *std::min_element(values.begin(), values.end());
    if (min_value < candidate) {
      split_dim = dim;
      median = candidate;
      break;
    }
  }
  if (split_dim == -1) {
    // All queried coordinates constant: nothing dominates anything.
    return BnlSkyline(input, u, ext);
  }

  PointSet better(input.dims());
  PointSet worse(input.dims());
  for (size_t i = 0; i < input.size(); ++i) {
    if (input[i][split_dim] < median) {
      better.AppendFrom(input, i);
    } else {
      worse.AppendFrom(input, i);
    }
  }
  SKYPEER_DCHECK(!better.empty() && !worse.empty());

  PointSet sky_better = Recurse(better, u, ext, depth + 1);
  PointSet sky_worse = Recurse(worse, u, ext, depth + 1);

  // No worse-half point dominates a better-half point (strictly larger on
  // split_dim), so only the worse skyline needs filtering.
  PointSet result(input.dims());
  result.AppendAll(sky_better);
  for (size_t i = 0; i < sky_worse.size(); ++i) {
    const double* p = sky_worse[i];
    bool dominated = false;
    for (size_t j = 0; j < sky_better.size(); ++j) {
      if (ext ? ExtDominates(sky_better[j], p, u)
              : Dominates(sky_better[j], p, u)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      result.AppendFrom(sky_worse, i);
    }
  }
  return result;
}

}  // namespace

PointSet DivideConquerSkyline(const PointSet& input, Subspace u, bool ext) {
  SKYPEER_CHECK(!u.empty());
  return Recurse(input, u, ext, /*depth=*/0);
}

}  // namespace skypeer
