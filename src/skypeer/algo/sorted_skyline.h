#ifndef SKYPEER_ALGO_SORTED_SKYLINE_H_
#define SKYPEER_ALGO_SORTED_SKYLINE_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/common/point_set.h"
#include "skypeer/common/subspace.h"
#include "skypeer/rtree/rtree.h"

namespace skypeer {

/// Options shared by the threshold-based scan algorithms (paper
/// Algorithms 1 and 2).
struct ThresholdScanOptions {
  /// Use ext-dominance (strict on every dimension) instead of dominance;
  /// the scan then computes the extended skyline of the input.
  bool ext = false;

  /// Threshold the scan starts from. SKYPEER propagates the initiator's
  /// threshold here (paper §5.2.3); infinity means unconstrained.
  double initial_threshold = std::numeric_limits<double>::infinity();

  /// Index the running skyline in an R-tree of query dimensionality
  /// (§5.2.1). When false a linear scan over the window is used, which is
  /// faster for small inputs and serves as a differential-testing twin.
  bool use_rtree = true;
};

/// Counters reported by the scan algorithms.
struct ThresholdScanStats {
  /// Points consumed before the threshold terminated the scan.
  size_t scanned = 0;
  /// Threshold value when the scan stopped (min dist_U over the result).
  double final_threshold = std::numeric_limits<double>::infinity();
};

/// \brief Incrementally maintains a (extended) subspace skyline under
/// ascending-`f` insertion order. The shared core of Algorithms 1 and 2.
///
/// Offer points in non-decreasing `f(p)` order; the accumulator discards
/// dominated points, evicts points the newcomer dominates, and tracks the
/// pruning threshold `min dist_U` (Observation 5). Once
/// `f(p) > threshold()` no future point can survive and the caller may
/// stop scanning.
class SkylineAccumulator {
 public:
  /// `u` is the query subspace over points of dimensionality `dims`.
  SkylineAccumulator(int dims, Subspace u, const ThresholdScanOptions& options);
  ~SkylineAccumulator();

  SkylineAccumulator(const SkylineAccumulator&) = delete;
  SkylineAccumulator& operator=(const SkylineAccumulator&) = delete;

  /// Considers point `p` (full-dimensional row) with the given id and
  /// `f`-value. Returns true if `p` entered the running skyline.
  /// Pre: `f` values are offered in non-decreasing order.
  bool Offer(const double* p, PointId id, double f);

  /// Current pruning threshold: points with `f > threshold()` can never
  /// enter the skyline (Observation 5); with `f == threshold()` ties are
  /// still possible, so callers scan while `f <= threshold()`.
  double threshold() const { return threshold_; }

  /// Number of points currently in the running skyline.
  size_t alive() const { return alive_; }

  /// Extracts the result, sorted ascending by `f` (insertion order with
  /// evicted points dropped). The accumulator is left empty.
  ResultList TakeResult();

 private:
  bool IsDominatedLinear(const double* proj) const;
  void EvictDominatedLinear(const double* proj);

  int dims_;
  Subspace u_;
  bool strict_;
  bool use_rtree_;
  double threshold_;

  // Candidate window: points appended in offer order; `alive_flags_[i]`
  // clears when candidate i is evicted by a later dominator.
  PointSet window_points_;
  std::vector<double> window_f_;
  std::vector<char> alive_flags_;
  std::vector<double> window_proj_;  // u-projected coords, row-major k-dim
  size_t alive_ = 0;

  std::unique_ptr<RTree> rtree_;  // over u-projections, when use_rtree_
  std::vector<uint64_t> scratch_payloads_;
};

/// \brief Paper Algorithm 1: local subspace skyline computation over a
/// list sorted by `f(p)`.
///
/// Scans `input` in ascending `f` order and stops as soon as
/// `f(p) > threshold` (exactness note: the paper scans while
/// `f(p) < threshold`; we include ties to stay exact on inputs with equal
/// coordinates). Returns the (extended, if `options.ext`) skyline of the
/// input restricted to subspace `u`, sorted by `f`.
ResultList SortedSkyline(const ResultList& input, Subspace u,
                         const ThresholdScanOptions& options = {},
                         ThresholdScanStats* stats = nullptr);

}  // namespace skypeer

#endif  // SKYPEER_ALGO_SORTED_SKYLINE_H_
