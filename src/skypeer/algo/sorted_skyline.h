#ifndef SKYPEER_ALGO_SORTED_SKYLINE_H_
#define SKYPEER_ALGO_SORTED_SKYLINE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/common/dominance_batch.h"
#include "skypeer/common/op_counts.h"
#include "skypeer/common/point_set.h"
#include "skypeer/common/subspace.h"
#include "skypeer/rtree/rtree.h"
#include "skypeer/storage/store_view.h"

namespace skypeer {

class ThreadPool;

/// Options shared by the threshold-based scan algorithms (paper
/// Algorithms 1 and 2).
struct ThresholdScanOptions {
  /// Use ext-dominance (strict on every dimension) instead of dominance;
  /// the scan then computes the extended skyline of the input.
  bool ext = false;

  /// Threshold the scan starts from. SKYPEER propagates the initiator's
  /// threshold here (paper §5.2.3); infinity means unconstrained.
  double initial_threshold = std::numeric_limits<double>::infinity();

  /// Index the running skyline in an R-tree of query dimensionality
  /// (§5.2.1). When false a linear scan over the window is used, which is
  /// faster for small inputs and serves as a differential-testing twin.
  bool use_rtree = true;

  /// Window compaction policy of `SkylineAccumulator`: evicted slots are
  /// dropped once the window holds at least `compact_min_window` entries
  /// and fewer than `compact_live_fraction` of them are alive. The
  /// defaults reproduce the historical `alive * 2 < size && size >= 64`
  /// rule exactly; raising the fraction bounds the window more tightly on
  /// evict-heavy streams at the cost of more frequent copies.
  size_t compact_min_window = 64;
  double compact_live_fraction = 0.5;

  /// `MergeSortedSkylines` only: skip points whose id was already offered
  /// by an earlier list position. Copies of the same point never dominate
  /// each other, so merging inputs that overlap (e.g. a reply that
  /// travelled both the spanning tree and a reroute detour in the
  /// reliable protocol) would otherwise duplicate skyline points. A no-op
  /// on disjoint inputs — fault-free runs are bit-identical with or
  /// without it.
  bool dedup_ids = false;

  /// Consult the store's zone-map summary (`StoreView::summary()`) before
  /// each 8-wide block: a block whose per-dimension min-vector, projected
  /// on the query subspace, is dominated by a live window entry (or a
  /// seeded filter point) is consumed without per-point dominance tests,
  /// and without reading the store at all when its `[f_min, f_max]` range
  /// also fits under the running threshold — runs of such blocks leave
  /// whole pages unread. Results, thresholds, scan counts and window
  /// evolution are bit-identical to the plain scan; op counts differ only
  /// in the new `summary_tests`/`blocks_skipped` charges and reduced
  /// dominance/scan/page charges, and are themselves bit-identical across
  /// store modes, thread counts and kernels (the probe is a pure function
  /// of summary, subspace and window). Ignored when the view carries no
  /// summary. Off by default for baseline comparability.
  bool block_skip = false;

  /// Threshold-scan algorithms only: broadcast filter set to seed the
  /// window with before scanning (`SkylineAccumulator::SeedWindow`).
  /// Filter points prune offers — and may themselves be evicted by
  /// dominating offers — but are never emitted in the result. Must
  /// outlive the scan. Null or empty means no filter. The filter does not
  /// tighten the threshold: a filter point is not necessarily a skyline
  /// point of the scanned input's home store, but every point it prunes
  /// is dominated by a point the query initiator already holds, so the
  /// final merged answer is unchanged (see filter_set.h).
  const ResultList* filter = nullptr;
};

/// Counters reported by the scan algorithms.
struct ThresholdScanStats {
  /// Points consumed before the threshold terminated the scan.
  size_t scanned = 0;
  /// Threshold value when the scan stopped (min dist_U over the result).
  double final_threshold = std::numeric_limits<double>::infinity();
  /// Logical operations the scan performed (machine-independent; see
  /// `OpCounts`). Replays report the counts of the equivalent direct
  /// scan, and chunked parallel scans sum per-chunk counts in chunk
  /// order, so `ops` is identical across thread counts and kernels.
  OpCounts ops;
  /// Host wall seconds of the scan's own work (per-chunk work summed for
  /// parallel scans — pool queueing time is excluded). Only meaningful
  /// to the measured cost model.
  double cpu_seconds = 0.0;
};

/// \brief Recorded event log of one sequential threshold scan, sufficient
/// to replay the same scan under any *tighter* initial threshold without
/// re-running a single dominance test.
///
/// A threshold scan's dominance outcomes on a shared prefix do not depend
/// on the initial threshold — only the stopping point does (the running
/// threshold under `t' <= t` is `min(t', running threshold under t)` at
/// every position). So a scan executed under an upper-bound threshold,
/// recording per scanned point whether it entered the window, its
/// `dist_U` (the threshold contribution of accepted points, kept even
/// when the point is later evicted) and the scan position of its evictor,
/// determines the result, scan count and final threshold of the scan
/// under any refined `t' <= t`: survivors are the accepted points before
/// the refined cut whose evictor lies at or past the cut. This is what
/// lets the engine scan speculatively under the initiator's fixed
/// threshold and reconcile exactly when the refined threshold arrives.
struct ScanTrace {
  /// `kNeverEvicted` in `evicted_at` marks points alive at trace end.
  static constexpr size_t kNeverEvicted = static_cast<size_t>(-1);

  /// Initial threshold the recorded scan ran under; replays require a
  /// threshold no larger than this.
  double threshold_in = std::numeric_limits<double>::infinity();
  /// Per scanned position: 1 if the point entered the running skyline.
  std::vector<char> accepted;
  /// Per scanned position: `dist_U` of accepted points (0 otherwise).
  std::vector<double> dist_u;
  /// Per scanned position: scan position of the offer that evicted the
  /// point, or `kNeverEvicted`. Rejected points are `kNeverEvicted` too
  /// (the `accepted` flag already excludes them from replays).
  std::vector<size_t> evicted_at;
  /// Cumulative op counts of the recorded scan after each position
  /// (window-evolution ops only — scan steps are not included and are
  /// reconstructed by the replay). Because the window evolves
  /// identically on the shared prefix of any tighter-threshold scan,
  /// `cum_ops[cut - 1]` is exactly the op count a direct scan truncated
  /// at `cut` would report.
  std::vector<OpCounts> cum_ops;
  /// True when the recorded scan ran with block skipping; replays then
  /// reconstruct the skip charges (summary probes, skipped blocks,
  /// reduced scan steps and page reads) from `block_rejected` instead of
  /// charging the full prefix.
  bool block_skip = false;
  /// Per probed store block of the recorded prefix (block `b` covers
  /// positions [8b, 8b+8)): 1 when the block's summary probe found a
  /// dominating window entry, so every point of it was rejected without
  /// per-point tests. The probe outcome is threshold-independent on the
  /// shared prefix, which is what makes skip traces replayable.
  std::vector<char> block_rejected;

  size_t size() const { return accepted.size(); }

  /// Payload bytes of this trace (element sizes, not capacities) — what
  /// the bounded `SubspaceScanTraceCache` accounts per entry.
  size_t ByteSize() const {
    return sizeof(ScanTrace) + accepted.size() * sizeof(char) +
           dist_u.size() * sizeof(double) +
           evicted_at.size() * sizeof(size_t) +
           cum_ops.size() * sizeof(OpCounts) +
           block_rejected.size() * sizeof(char);
  }
};

/// \brief Incrementally maintains a (extended) subspace skyline under
/// ascending-`f` insertion order. The shared core of Algorithms 1 and 2.
///
/// Offer points in non-decreasing `f(p)` order; the accumulator discards
/// dominated points, evicts points the newcomer dominates, and tracks the
/// pruning threshold `min dist_U` (Observation 5). Once
/// `f(p) > threshold()` no future point can survive and the caller may
/// stop scanning.
class SkylineAccumulator {
 public:
  /// `u` is the query subspace over points of dimensionality `dims`.
  SkylineAccumulator(int dims, Subspace u, const ThresholdScanOptions& options);
  ~SkylineAccumulator();

  SkylineAccumulator(const SkylineAccumulator&) = delete;
  SkylineAccumulator& operator=(const SkylineAccumulator&) = delete;

  /// Considers point `p` (full-dimensional row) with the given id and
  /// `f`-value. Returns true if `p` entered the running skyline.
  /// Pre: `f` values are offered in non-decreasing order.
  bool Offer(const double* p, PointId id, double f) {
    return OfferTagged(p, id, f, kNoTag, nullptr);
  }

  /// Tag value of points offered without one (and of `SeedWindow` seeds);
  /// never reported through `evicted_tags`.
  static constexpr uint64_t kNoTag = static_cast<uint64_t>(-1);

  /// `Offer` that additionally attaches a caller tag to the point and,
  /// when `evicted_tags` is non-null, appends the tags of the window
  /// entries this offer evicted. Used by the traced scan to record which
  /// scan position evicted which: the tag is the offer's scan position.
  bool OfferTagged(const double* p, PointId id, double f, uint64_t tag,
                   std::vector<uint64_t>* evicted_tags);

  /// Current pruning threshold: points with `f > threshold()` can never
  /// enter the skyline (Observation 5); with `f == threshold()` ties are
  /// still possible, so callers scan while `f <= threshold()`.
  double threshold() const { return threshold_; }

  /// Zone-map probe for block-skipping scans: true when some live window
  /// entry dominates `min_row` (a store block's per-dimension min-vector,
  /// full dimensionality) on this accumulator's subspace. Dominating the
  /// min-vector implies dominating every point of the block — the strict
  /// coordinate carries over through `w[j] < m[j] <= p[j]` — so a true
  /// probe proves the whole block would be rejected point by point.
  /// Op-free by design: callers charge `summary_tests` themselves so the
  /// accumulator's `ops()` (and the replayable `cum_ops` built from it)
  /// stay pure window-evolution counts.
  bool WindowRejectsSummary(const double* min_row) const;

  /// Number of points currently in the running skyline.
  size_t alive() const { return alive_; }

  /// Number of window slots (alive + not-yet-compacted evicted entries);
  /// bounded by the compaction policy in `ThresholdScanOptions`.
  size_t window_size() const { return window_points_.size(); }

  /// Logical operations performed by all offers so far. Dominance tests
  /// count the window entries examined per offer (not kernel-internal
  /// work), R-tree visits count nodes entered, and compaction rebuilds
  /// count as sort steps — all independent of kernel dispatch.
  const OpCounts& ops() const { return ops_; }

  /// Extracts the result, sorted ascending by `f` (insertion order with
  /// evicted points dropped and seed points excluded). The accumulator is
  /// left empty.
  ResultList TakeResult();

  /// Pre-populates the window with already-known points that reject (and
  /// may be evicted by) later offers but never appear in `TakeResult()`.
  /// Seeds need not be mutually non-dominated and need not precede future
  /// offers in `f` order — a dominated seed is an inert extra pruner, and
  /// no decision depends on a seed's `f` value (chunk seeding satisfies
  /// the f-order property; broadcast filter sets deliberately do not).
  /// Only valid on an empty accumulator; does not tighten `threshold()`
  /// (fold the seed's threshold into `options.initial_threshold` instead).
  void SeedWindow(const ResultList& seed);

 private:
  void EvictDominatedLinear(const double* proj,
                            std::vector<uint64_t>* evicted_tags);

  /// Drops evicted window slots once fewer than `compact_live_fraction_`
  /// of the entries are alive (and the window holds at least
  /// `compact_min_window_`), so the batched dominance tests and
  /// `window_proj_` stay proportional to the running skyline instead of
  /// every point ever offered. Rebuilds the R-tree payload indices when
  /// `use_rtree_`.
  void MaybeCompact();

  int dims_;
  Subspace u_;
  bool strict_;
  bool use_rtree_;
  size_t compact_min_window_;
  double compact_live_fraction_;
  double threshold_;

  // Candidate window: points appended in offer order; `alive_flags_[i]`
  // clears when candidate i is evicted by a later dominator, and
  // `emit_flags_[i]` is 0 for SeedWindow() entries, which participate in
  // dominance tests but are not part of the result.
  PointSet window_points_;
  std::vector<double> window_f_;
  std::vector<char> alive_flags_;
  std::vector<char> emit_flags_;
  std::vector<uint64_t> window_tags_;  // caller tags; kNoTag when untagged
  // u-projected coords, blocked SoA; evicted slots are Kill()ed to +inf so
  // the batched "does any window point dominate q" kernel needs no
  // liveness mask.
  BlockedProjection window_proj_;
  size_t alive_ = 0;

  std::unique_ptr<RTree> rtree_;  // over u-projections, when use_rtree_
  std::vector<uint64_t> scratch_payloads_;
  std::vector<uint8_t> scratch_masks_;  // per-block eviction bit masks
  OpCounts ops_;
};

/// \brief Paper Algorithm 1: local subspace skyline computation over a
/// store sorted by `f(p)` — resident or paged (see `StoreView`).
///
/// Scans `input` in ascending `f` order and stops as soon as
/// `f(p) > threshold` (exactness note: the paper scans while
/// `f(p) < threshold`; we include ties to stay exact on inputs with equal
/// coordinates). Returns the (extended, if `options.ext`) skyline of the
/// input restricted to subspace `u`, sorted by `f`. When `stats` is
/// requested, `stats->ops` additionally charges the logical store pages
/// spanning the examined prefix (`ChargeScanPages`), identically for
/// paged and resident stores of the same page geometry.
ResultList SortedSkyline(const StoreView& input, Subspace u,
                         const ThresholdScanOptions& options = {},
                         ThresholdScanStats* stats = nullptr);
inline ResultList SortedSkyline(const ResultList& input, Subspace u,
                                const ThresholdScanOptions& options = {},
                                ThresholdScanStats* stats = nullptr) {
  return SortedSkyline(StoreView(&input), u, options, stats);
}

/// \brief Algorithm 1 with event recording: identical result, threshold
/// and scan count as `SortedSkyline(input, u, options)`, but additionally
/// fills `trace` so the scan can later be replayed under any tighter
/// initial threshold via `ReplayScanTrace`.
ResultList TracedSortedSkyline(const StoreView& input, Subspace u,
                               const ThresholdScanOptions& options,
                               ThresholdScanStats* stats, ScanTrace* trace);
inline ResultList TracedSortedSkyline(const ResultList& input, Subspace u,
                                      const ThresholdScanOptions& options,
                                      ThresholdScanStats* stats,
                                      ScanTrace* trace) {
  return TracedSortedSkyline(StoreView(&input), u, options, stats, trace);
}

/// \brief Replays a recorded scan of `input` under `threshold_in`, which
/// must satisfy `threshold_in <= trace.threshold_in`. Returns exactly what
/// `SortedSkyline(input, u, {.initial_threshold = threshold_in})` would
/// — same points in the same order, same `stats->scanned`,
/// `stats->final_threshold` and op counts (including the page charges of
/// the equivalent direct scan) — in O(recorded scan length) with no
/// dominance tests. `input` must be the store the trace was recorded over.
ResultList ReplayScanTrace(const StoreView& input, const ScanTrace& trace,
                           double threshold_in,
                           ThresholdScanStats* stats = nullptr);
inline ResultList ReplayScanTrace(const ResultList& input,
                                  const ScanTrace& trace, double threshold_in,
                                  ThresholdScanStats* stats = nullptr) {
  return ReplayScanTrace(StoreView(&input), trace, threshold_in, stats);
}

/// \brief Chunked parallel form of Algorithm 1: splits the f-sorted input
/// into contiguous chunks of `chunk_size` points, scans them concurrently
/// on `pool` (the process-global pool when null) and cross-filters the
/// per-chunk survivors — in parallel, against one bulk-loaded R-tree over
/// their union — down to the exact skyline.
///
/// Returns a result bit-identical to `SortedSkyline(input, u, options)` at
/// any thread count, including `stats->final_threshold`. Chunk 0 — the
/// sequential scan's hot prefix — runs first; its final threshold plus the
/// `dist_U` of each earlier chunk's first point seed the remaining chunks
/// (Observation 5 justifies pruning against the `dist_U` of *any* point,
/// accepted or not, because `f(p) <= dist_U(p)`). The seeds depend only on
/// the input, so `stats->scanned` — the sum of the per-chunk scan counts —
/// is also reproducible across thread counts; it can exceed the sequential
/// scan count because later chunks cannot see thresholds discovered
/// concurrently.
///
/// `chunk_size` is snapped up to a whole number of store pages
/// (`SnapChunkToPages`) in both store modes, so concurrent chunk cursors
/// never share a buffer frame and per-chunk page charges are disjoint.
/// `chunk_size == 0` (or an input no larger than one snapped chunk) falls
/// back to the sequential scan.
ResultList ParallelSortedSkyline(const StoreView& input, Subspace u,
                                 size_t chunk_size,
                                 const ThresholdScanOptions& options = {},
                                 ThresholdScanStats* stats = nullptr,
                                 ThreadPool* pool = nullptr);
inline ResultList ParallelSortedSkyline(const ResultList& input, Subspace u,
                                        size_t chunk_size,
                                        const ThresholdScanOptions& options = {},
                                        ThresholdScanStats* stats = nullptr,
                                        ThreadPool* pool = nullptr) {
  return ParallelSortedSkyline(StoreView(&input), u, chunk_size, options,
                               stats, pool);
}

}  // namespace skypeer

#endif  // SKYPEER_ALGO_SORTED_SKYLINE_H_
