#include "skypeer/algo/merge.h"

#include <algorithm>
#include <chrono>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "skypeer/common/macros.h"

namespace skypeer {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ResultList MergeSortedSkylines(int dims,
                               const std::vector<const ResultList*>& lists,
                               Subspace u, const ThresholdScanOptions& options,
                               ThresholdScanStats* stats) {
  SKYPEER_CHECK(dims > 0);
  for (const ResultList* list : lists) {
    SKYPEER_CHECK(list != nullptr);
    SKYPEER_DCHECK(list->IsSorted());
    SKYPEER_CHECK(list->points.dims() == dims);
  }
  if (lists.empty()) {
    // Nothing to merge: the skyline of an empty union is empty, at the
    // unchanged initial threshold.
    if (stats != nullptr) {
      stats->scanned = 0;
      stats->final_threshold = options.initial_threshold;
      stats->ops = OpCounts{};
      stats->cpu_seconds = 0.0;
    }
    return ResultList(dims);
  }

  const auto start = std::chrono::steady_clock::now();
  SkylineAccumulator accumulator(dims, u, options);

  // Min-heap over list heads keyed by f; ties broken by list index for
  // determinism.
  struct Head {
    double f;
    size_t list;
    size_t pos;
  };
  auto greater = [](const Head& a, const Head& b) {
    if (a.f != b.f) {
      return a.f > b.f;
    }
    return a.list > b.list;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(greater)> heap(greater);
  for (size_t l = 0; l < lists.size(); ++l) {
    if (!lists[l]->empty()) {
      heap.push(Head{lists[l]->f[0], l, 0});
    }
  }

  std::unordered_set<PointId> offered_ids;
  size_t scanned = 0;
  uint64_t pulls = 0;
  while (!heap.empty()) {
    const Head head = heap.top();
    // "SKY_Us <- the list with the minimum first element" (Algorithm 2,
    // lines 5/13); stop once even the smallest head exceeds the threshold.
    if (head.f > accumulator.threshold()) {
      break;
    }
    heap.pop();
    ++pulls;
    const ResultList& list = *lists[head.list];
    // Copies of one point (overlapping inputs) never dominate each other;
    // offering both would duplicate the skyline entry.
    const bool duplicate_id =
        options.dedup_ids &&
        !offered_ids.insert(list.points.id(head.pos)).second;
    if (!duplicate_id) {
      accumulator.Offer(list.points[head.pos], list.points.id(head.pos),
                        head.f);
      ++scanned;
    }
    if (head.pos + 1 < list.size()) {
      heap.push(Head{list.f[head.pos + 1], head.list, head.pos + 1});
    }
  }

  if (stats != nullptr) {
    stats->scanned = scanned;
    stats->final_threshold = accumulator.threshold();
    stats->ops = accumulator.ops();
    stats->ops.merge_pulls = pulls;
    stats->cpu_seconds = SecondsSince(start);
  }
  return accumulator.TakeResult();
}

ResultList MergeSortedSkylines(const std::vector<const ResultList*>& lists,
                               Subspace u, const ThresholdScanOptions& options,
                               ThresholdScanStats* stats) {
  // With no lists there is no dims source; callers whose list set can be
  // empty must use the explicit-dims overload.
  SKYPEER_CHECK(!lists.empty());
  SKYPEER_CHECK(lists[0] != nullptr);
  return MergeSortedSkylines(lists[0]->points.dims(), lists, u, options,
                             stats);
}

ResultList MergeSortedSkylines(int dims, const std::vector<ResultList>& lists,
                               Subspace u, const ThresholdScanOptions& options,
                               ThresholdScanStats* stats) {
  std::vector<const ResultList*> pointers;
  pointers.reserve(lists.size());
  for (const ResultList& list : lists) {
    pointers.push_back(&list);
  }
  return MergeSortedSkylines(dims, pointers, u, options, stats);
}

ResultList MergeSortedSkylines(const std::vector<ResultList>& lists,
                               Subspace u, const ThresholdScanOptions& options,
                               ThresholdScanStats* stats) {
  SKYPEER_CHECK(!lists.empty());
  return MergeSortedSkylines(lists[0].points.dims(), lists, u, options, stats);
}

}  // namespace skypeer
