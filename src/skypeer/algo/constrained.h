#ifndef SKYPEER_ALGO_CONSTRAINED_H_
#define SKYPEER_ALGO_CONSTRAINED_H_

#include <vector>

#include "skypeer/common/point_set.h"
#include "skypeer/common/status.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// \brief A per-dimension range restriction for constrained subspace
/// skyline queries (Dellis et al., CIKM'06 — cited by the paper as the
/// generalization of all meaningful skyline queries).
///
/// Only the dimensions of `dims` are restricted; `lo`/`hi` are parallel
/// to `dims.Dims()` (ascending dimension order). A point participates in
/// the query iff every restricted coordinate lies in the closed range.
struct RangeConstraint {
  Subspace dims;
  std::vector<double> lo;
  std::vector<double> hi;

  /// An unconstrained query (matches every point).
  static RangeConstraint None() { return RangeConstraint{}; }

  bool Matches(const double* point) const {
    int i = 0;
    for (int dim : dims) {
      if (point[dim] < lo[i] || point[dim] > hi[i]) {
        return false;
      }
      ++i;
    }
    return true;
  }
};

/// Validates that `lo`/`hi` are parallel to the constrained dimensions
/// and each range is non-empty.
Status ValidateConstraint(const RangeConstraint& constraint);

/// \brief Constrained subspace skyline: the skyline on subspace `u` of
/// the points satisfying `constraint`.
///
/// Note that the *distributed* SKYPEER stores cannot answer constrained
/// queries losslessly (a point strictly dominated in the full space may
/// become a constrained-skyline point once its dominator is excluded by
/// the constraint), so this operator is provided on raw point sets only —
/// the centralized building block a constrained extension would ship to
/// peers. Returns the result in input order.
PointSet ConstrainedSkyline(const PointSet& input, Subspace u,
                            const RangeConstraint& constraint);

}  // namespace skypeer

#endif  // SKYPEER_ALGO_CONSTRAINED_H_
