#ifndef SKYPEER_ALGO_FILTER_SET_H_
#define SKYPEER_ALGO_FILTER_SET_H_

#include <cstdint>
#include <memory>

#include "skypeer/algo/result_list.h"
#include "skypeer/common/op_counts.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// \file
/// Sampled filter-point broadcast (Zhang & Zhang style): the query
/// initiator picks a small, size-bounded set of points from its own
/// f-sorted extended skyline and attaches it to the flooded query. Every
/// receiving super-peer seeds its scan window with the filter points
/// (emit-flagged off), so a large fraction of each remote store is
/// dominated away before a single candidate is shipped back. Because all
/// filter points are members of the initiator's local list — itself one of
/// the merge inputs — any point a filter prunes would have been removed at
/// the final merge anyway, and the merged answer stays bit-identical to
/// the no-filter oracle.
///
/// Filter points ship *quantized*: every coordinate is rounded up onto a
/// coarse 1/128 grid, so the wire cost is one byte per queried coordinate
/// instead of a full double (`WireModel::FilterBytes`) — the difference
/// between the broadcast paying for itself and drowning the reply
/// savings, since the flood re-transmits the filter on every backbone
/// edge. Rounding *up* is the safe direction: a coarse point q prunes p
/// only if q <= p in the subspace, and the original skyline member w
/// satisfies w <= q, so w dominates p too and the exactness argument
/// above goes through unchanged. The in-memory filter holds the decoded
/// wire form (quantized coordinates, f recomputed from them), so every
/// super-peer — including the simulation's staging wave — sees the
/// identical object a real deployment would.

/// Denominator of the filter quantization grid. A power of two, so
/// quantization (multiply, ceil, divide) is exact in binary floating
/// point and `Quantize(x) >= x` holds without a single rounding caveat;
/// 128 makes grid values for data in [0, 2) fit one byte on the wire.
inline constexpr double kFilterGridDenominator = 128.0;

/// Selects a deterministic filter set of at most `max_size` points from
/// `local` (an f-sorted list) for queries over subspace `u`.
///
/// Selection takes, in order: for each dimension of `u`, the point with
/// the minimum coordinate on that dimension (ties broken by smallest
/// index) — these are the strongest single-axis pruners; then evenly
/// spaced f-rank samples until `max_size` points are chosen. The chosen
/// points are emitted in `local`'s order with their coordinates quantized
/// up onto the wire grid (see `kFilterGridDenominator`) and f recomputed
/// from the quantized values — note the quantized f values need not be
/// ascending; seeded windows do not require f order. Selection depends
/// only on the list contents, the subspace, and `max_size` — it is stable
/// across runs, thread counts and kernels. Charges one pass of
/// `scan_steps` over `local` to `ops` when provided. Returns an empty
/// list when `max_size == 0` or `local` is empty.
ResultList SelectFilterSet(const ResultList& local, Subspace u,
                           size_t max_size, OpCounts* ops);

/// Convenience wrapper for the protocol layer: returns `SelectFilterSet`
/// boxed in a `shared_ptr` suitable for attaching to query messages, or
/// `nullptr` when the selection is empty (no filter to broadcast).
std::shared_ptr<const ResultList> BuildQueryFilter(const ResultList& local,
                                                   Subspace u,
                                                   size_t max_size,
                                                   OpCounts* ops);

/// Order-sensitive 64-bit FNV-1a fingerprint of a filter set (size, ids,
/// f values and all coordinates). Never returns 0, so 0 can denote "no
/// filter" in cache keys and staged-scan matching. Two scans over the
/// same store and subspace are interchangeable only if their filter
/// fingerprints match.
uint64_t FilterFingerprint(const ResultList& filter);

}  // namespace skypeer

#endif  // SKYPEER_ALGO_FILTER_SET_H_
