#include "skypeer/algo/bitmap_skyline.h"

#include <algorithm>
#include <vector>

#include "skypeer/common/macros.h"

namespace skypeer {

BitmapSkyline::BitmapSkyline(const PointSet& points) : points_(points) {
  const size_t n = points_.size();
  words_ = (n + 63) / 64;
  dims_.resize(points_.dims());
  for (int d = 0; d < points_.dims(); ++d) {
    // Rank-discretize dimension d.
    std::vector<double> values(n);
    for (size_t i = 0; i < n; ++i) {
      values[i] = points_[i][d];
    }
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

    Dimension& dimension = dims_[d];
    dimension.ranks.resize(n);
    dimension.slices.assign(sorted.size(),
                            std::vector<uint64_t>(words_, 0));
    for (size_t i = 0; i < n; ++i) {
      const uint32_t rank = static_cast<uint32_t>(
          std::lower_bound(sorted.begin(), sorted.end(), values[i]) -
          sorted.begin());
      dimension.ranks[i] = rank;
      dimension.slices[rank][i / 64] |= uint64_t{1} << (i % 64);
    }
    // Make the slices cumulative: slice r = points with rank <= r.
    for (size_t r = 1; r < dimension.slices.size(); ++r) {
      for (size_t w = 0; w < words_; ++w) {
        dimension.slices[r][w] |= dimension.slices[r - 1][w];
      }
    }
  }
}

const std::vector<uint64_t>* BitmapSkyline::SliceAtMost(int dim,
                                                        size_t i) const {
  return &dims_[dim].slices[dims_[dim].ranks[i]];
}

const std::vector<uint64_t>* BitmapSkyline::SliceBelow(int dim,
                                                       size_t i) const {
  const uint32_t rank = dims_[dim].ranks[i];
  if (rank == 0) {
    return nullptr;  // Nothing strictly below the smallest value.
  }
  return &dims_[dim].slices[rank - 1];
}

bool BitmapSkyline::IsDominated(size_t i, Subspace u, bool ext) const {
  SKYPEER_CHECK(!u.empty());
  SKYPEER_CHECK(i < points_.size());
  if (words_ == 0) {
    return false;
  }
  // AND factor: <= p (or < p, for ext) on every queried dimension.
  std::vector<uint64_t> candidates(words_, ~uint64_t{0});
  for (int dim : u) {
    const std::vector<uint64_t>* slice =
        ext ? SliceBelow(dim, i) : SliceAtMost(dim, i);
    if (slice == nullptr) {
      return false;  // ext with minimal value: nobody strictly below.
    }
    for (size_t w = 0; w < words_; ++w) {
      candidates[w] &= (*slice)[w];
    }
  }
  if (!ext) {
    // OR factor: strictly below p on at least one queried dimension.
    std::vector<uint64_t> strict(words_, 0);
    for (int dim : u) {
      const std::vector<uint64_t>* slice = SliceBelow(dim, i);
      if (slice == nullptr) {
        continue;
      }
      for (size_t w = 0; w < words_; ++w) {
        strict[w] |= (*slice)[w];
      }
    }
    for (size_t w = 0; w < words_; ++w) {
      candidates[w] &= strict[w];
    }
  }
  // Remove p itself (only relevant for the non-strict test, but cheap).
  candidates[i / 64] &= ~(uint64_t{1} << (i % 64));
  for (size_t w = 0; w < words_; ++w) {
    if (candidates[w] != 0) {
      return true;
    }
  }
  return false;
}

PointSet BitmapSkyline::Skyline(Subspace u, bool ext) const {
  PointSet result(points_.dims());
  for (size_t i = 0; i < points_.size(); ++i) {
    if (!IsDominated(i, u, ext)) {
      result.AppendFrom(points_, i);
    }
  }
  return result;
}

size_t BitmapSkyline::bitmap_bytes() const {
  size_t total = 0;
  for (const Dimension& dimension : dims_) {
    total += dimension.slices.size() * words_ * sizeof(uint64_t);
  }
  return total;
}

}  // namespace skypeer
