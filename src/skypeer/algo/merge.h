#ifndef SKYPEER_ALGO_MERGE_H_
#define SKYPEER_ALGO_MERGE_H_

#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// \brief Paper Algorithm 2: merges several `f`-sorted local skyline lists
/// into one skyline, pulling from the list with the smallest head.
///
/// Used both at query time (initiator / progressive merging of super-peer
/// results) and in the pre-processing phase (super-peer merging of peer
/// extended skylines, with `options.ext = true`). Each list is consumed
/// only until its head exceeds the running threshold, which is the point
/// of the algorithm: dominated tails are never even touched.
///
/// Returns the (extended) skyline of the union of all input lists on
/// subspace `u`, sorted by `f`. `dims` is the data dimensionality every
/// list must match; an empty `lists` vector yields an empty result (a
/// super-peer drained of all its peers merges zero lists).
ResultList MergeSortedSkylines(int dims,
                               const std::vector<const ResultList*>& lists,
                               Subspace u,
                               const ThresholdScanOptions& options = {},
                               ThresholdScanStats* stats = nullptr);

/// Overload inferring `dims` from the first list; `lists` must therefore
/// be non-empty. Prefer the explicit-`dims` form on paths where the list
/// set can shrink to nothing.
ResultList MergeSortedSkylines(const std::vector<const ResultList*>& lists,
                               Subspace u,
                               const ThresholdScanOptions& options = {},
                               ThresholdScanStats* stats = nullptr);

/// Convenience overloads for value vectors.
ResultList MergeSortedSkylines(int dims, const std::vector<ResultList>& lists,
                               Subspace u,
                               const ThresholdScanOptions& options = {},
                               ThresholdScanStats* stats = nullptr);
ResultList MergeSortedSkylines(const std::vector<ResultList>& lists,
                               Subspace u,
                               const ThresholdScanOptions& options = {},
                               ThresholdScanStats* stats = nullptr);

}  // namespace skypeer

#endif  // SKYPEER_ALGO_MERGE_H_
