#ifndef SKYPEER_ALGO_SKYCUBE_H_
#define SKYPEER_ALGO_SKYCUBE_H_

#include <vector>

#include "skypeer/common/point_set.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// \brief The SkyCube (Pei et al. / Yuan et al., VLDB'05): the skylines of
/// *all* 2^d - 1 non-empty subspaces of a dataset.
///
/// This library uses it as a brute-force oracle: the paper's central claim
/// (Observation 4: every subspace skyline is contained in the extended
/// skyline of the full space) is property-tested against it, and the
/// distributed engine's answers are cross-checked for every subspace.
/// Intended for small dimensionality (`d <= 12`); computation is one BNL
/// run per subspace.
class SkyCube {
 public:
  /// Computes the full cube of `points` (dimensionality d = points.dims()).
  explicit SkyCube(const PointSet& points);

  int dims() const { return dims_; }

  /// Skyline point ids of subspace `u`, in input order.
  const std::vector<PointId>& Skyline(Subspace u) const;

  /// Union of all subspace skyline ids (each id once, ascending). This is
  /// the minimal set a lossless subspace-skyline summary must contain;
  /// tests verify it is a subset of the extended skyline.
  std::vector<PointId> UnionOfAllSkylines() const;

 private:
  int dims_;
  /// Indexed by subspace mask; entry 0 unused.
  std::vector<std::vector<PointId>> skylines_;
};

}  // namespace skypeer

#endif  // SKYPEER_ALGO_SKYCUBE_H_
