#ifndef SKYPEER_ALGO_SKYBAND_H_
#define SKYPEER_ALGO_SKYBAND_H_

#include "skypeer/common/point_set.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// \brief k-skyband on subspace `u`: all points dominated by fewer than
/// `band` other points. `band == 1` is exactly the skyline; larger bands
/// give the "thick skyline" used for top-k style retrieval, a standard
/// extension of the skyline operator.
///
/// Returns the qualifying points in input order. `band` must be >= 1.
PointSet KSkyband(const PointSet& input, Subspace u, int band);

/// Number of points of `input` that dominate `p` on `u` (the "dominance
/// count"; a point is in the k-skyband iff its count is < band).
size_t DominanceCount(const PointSet& input, const double* p, Subspace u);

/// \brief *Extended* k-skyband on subspace `u`: all points *strictly*
/// dominated (ext-dominance, Definition 1) by fewer than `band` others.
///
/// This is the skyband analogue of the paper's extended skyline
/// (`band == 1` gives exactly `ext-SKY_U`), and it satisfies the skyband
/// version of Observation 4: the k-skyband of ANY subspace `V ⊆ U` is
/// contained in the extended k-skyband of `U` — an ext-dominator on `U`
/// dominates on every subspace, so a point with `>= band` ext-dominators
/// on `U` has `>= band` dominators on `V`. A peer uploading its extended
/// k-skyband therefore enables lossless distributed subspace k-skyband
/// queries, exactly as ext-SKY enables skylines (property-tested in
/// skyband_test.cc).
PointSet ExtKSkyband(const PointSet& input, Subspace u, int band);

}  // namespace skypeer

#endif  // SKYPEER_ALGO_SKYBAND_H_
