#ifndef SKYPEER_ALGO_TOP_K_DOMINATING_H_
#define SKYPEER_ALGO_TOP_K_DOMINATING_H_

#include <cstddef>
#include <vector>

#include "skypeer/common/point_set.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// A point together with its domination score.
struct DominatingPoint {
  PointId id = 0;
  /// Number of dataset points this point dominates on the query subspace.
  size_t score = 0;
};

/// \brief Top-k dominating query (Papadias et al., TODS'05 §Related):
/// returns the `k` points that dominate the most other points on subspace
/// `u` — a ranked alternative to the skyline that always returns exactly
/// `k` results (fewer only if the dataset is smaller).
///
/// Results are ordered by descending score; ties broken by ascending id
/// for determinism. The top-1 dominating point is always a skyline point,
/// but lower ranks need not be — this operator trades the skyline's
/// "no-magic-weights" purity for a controllable result size.
std::vector<DominatingPoint> TopKDominating(const PointSet& input, Subspace u,
                                            size_t k);

/// Domination scores of every point (parallel to input order).
std::vector<size_t> DominationScores(const PointSet& input, Subspace u);

}  // namespace skypeer

#endif  // SKYPEER_ALGO_TOP_K_DOMINATING_H_
