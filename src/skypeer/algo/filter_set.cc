#include "skypeer/algo/filter_set.h"

#include <bit>
#include <cmath>
#include <vector>

#include "skypeer/common/macros.h"
#include "skypeer/common/mapping.h"

namespace skypeer {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline void Mix(uint64_t value, uint64_t* hash) {
  for (int byte = 0; byte < 8; ++byte) {
    *hash ^= (value >> (byte * 8)) & 0xffULL;
    *hash *= kFnvPrime;
  }
}

/// Rounds a coordinate UP onto the 1/kFilterGridDenominator grid. The
/// grid denominator is a power of two, so multiplying, ceiling and
/// dividing are all exact in binary floating point — `Quantize(x) >= x`
/// holds exactly, which is what makes quantized filter points safe:
/// anything a coarse point q prunes satisfies w <= q <= p for the
/// original skyline member w, so w dominates it too and the final merge
/// would discard it anyway. Rounding up only ever costs pruning power,
/// never correctness.
inline double Quantize(double x) {
  return std::ceil(x * kFilterGridDenominator) / kFilterGridDenominator;
}

}  // namespace

ResultList SelectFilterSet(const ResultList& local, Subspace u,
                           size_t max_size, OpCounts* ops) {
  const int dims = local.points.dims();
  ResultList filter(dims);
  const size_t n = local.size();
  if (max_size == 0 || n == 0) {
    return filter;
  }
  SKYPEER_DCHECK(local.IsSorted());
  if (ops != nullptr) {
    // One selection pass over the local list (per-dimension minima).
    ops->scan_steps += n;
  }
  std::vector<char> chosen(n, 0);
  size_t count = 0;
  // Per-dimension minima of the query subspace: the strongest single-axis
  // pruners (a point minimal on dim i dominates everything that is worse
  // on every queried dimension). Ties break to the smallest index so the
  // choice is deterministic.
  for (int dim : u) {
    if (count >= max_size) {
      break;
    }
    size_t best = 0;
    for (size_t i = 1; i < n; ++i) {
      if (local.points[i][dim] < local.points[best][dim]) {
        best = i;
      }
    }
    if (!chosen[best]) {
      chosen[best] = 1;
      ++count;
    }
  }
  // Evenly spaced f-rank samples fill the remaining budget. The stride
  // depends only on (n, max_size); collisions with already-chosen indices
  // simply yield a smaller filter, never a different one.
  for (size_t j = 0; j < max_size && count < max_size; ++j) {
    const size_t index = j * n / max_size;
    if (!chosen[index]) {
      chosen[index] = 1;
      ++count;
    }
  }
  // Quantize every selected point up onto the coarse wire grid (what
  // receivers actually see: one byte per coordinate, see
  // `WireModel::FilterBytes`). f is recomputed from the quantized
  // coordinates so the in-memory filter is exactly the decoded wire form.
  filter.points.Reserve(count);
  filter.f.reserve(count);
  std::vector<double> quantized(static_cast<size_t>(dims));
  for (size_t i = 0; i < n; ++i) {
    if (chosen[i]) {
      const double* row = local.points[i];
      for (int d = 0; d < dims; ++d) {
        quantized[static_cast<size_t>(d)] = Quantize(row[d]);
      }
      filter.points.Append(quantized.data(), local.points.id(i));
      filter.f.push_back(MinCoord(quantized.data(), dims));
    }
  }
  return filter;
}

std::shared_ptr<const ResultList> BuildQueryFilter(const ResultList& local,
                                                   Subspace u,
                                                   size_t max_size,
                                                   OpCounts* ops) {
  ResultList filter = SelectFilterSet(local, u, max_size, ops);
  if (filter.empty()) {
    return nullptr;
  }
  return std::make_shared<const ResultList>(std::move(filter));
}

uint64_t FilterFingerprint(const ResultList& filter) {
  uint64_t hash = kFnvOffset;
  Mix(static_cast<uint64_t>(filter.size()), &hash);
  const int dims = filter.points.dims();
  Mix(static_cast<uint64_t>(dims), &hash);
  for (size_t i = 0; i < filter.size(); ++i) {
    Mix(filter.points.id(i), &hash);
    Mix(std::bit_cast<uint64_t>(filter.f[i]), &hash);
    const double* row = filter.points[i];
    for (int d = 0; d < dims; ++d) {
      Mix(std::bit_cast<uint64_t>(row[d]), &hash);
    }
  }
  if (hash == 0) {
    hash = 1;  // 0 is reserved for "no filter".
  }
  return hash;
}

}  // namespace skypeer
