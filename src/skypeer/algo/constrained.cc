#include "skypeer/algo/constrained.h"

#include "skypeer/algo/bnl.h"
#include "skypeer/common/macros.h"

namespace skypeer {

Status ValidateConstraint(const RangeConstraint& constraint) {
  const size_t k = static_cast<size_t>(constraint.dims.Count());
  if (constraint.lo.size() != k || constraint.hi.size() != k) {
    return Status::InvalidArgument(
        "lo/hi must be parallel to the constrained dimensions");
  }
  for (size_t i = 0; i < k; ++i) {
    if (constraint.lo[i] > constraint.hi[i]) {
      return Status::InvalidArgument("empty range");
    }
  }
  return Status::OK();
}

PointSet ConstrainedSkyline(const PointSet& input, Subspace u,
                            const RangeConstraint& constraint) {
  SKYPEER_CHECK(!u.empty());
  SKYPEER_CHECK(ValidateConstraint(constraint).ok());
  PointSet eligible(input.dims());
  for (size_t i = 0; i < input.size(); ++i) {
    if (constraint.Matches(input[i])) {
      eligible.AppendFrom(input, i);
    }
  }
  return BnlSkyline(eligible, u);
}

}  // namespace skypeer
