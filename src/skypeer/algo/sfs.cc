#include "skypeer/algo/sfs.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "skypeer/common/dominance.h"
#include "skypeer/common/macros.h"

namespace skypeer {

PointSet SfsSkyline(const PointSet& input, Subspace u, bool ext) {
  SKYPEER_CHECK(!u.empty());
  const size_t n = input.size();

  // Monotone sort key: sum of the queried coordinates. If p dominates q
  // (even non-strictly), sum(p) < sum(q), so dominators always precede.
  std::vector<double> key(n);
  for (size_t i = 0; i < n; ++i) {
    const double* p = input[i];
    double sum = 0.0;
    for (int dim : u) {
      sum += p[dim];
    }
    key[i] = sum;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&key](size_t a, size_t b) { return key[a] < key[b]; });

  PointSet result(input.dims());
  for (size_t i : order) {
    const double* p = input[i];
    bool dominated = false;
    for (size_t w = 0; w < result.size(); ++w) {
      if (ext ? ExtDominates(result[w], p, u) : Dominates(result[w], p, u)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      result.AppendFrom(input, i);
    }
  }
  return result;
}

}  // namespace skypeer
