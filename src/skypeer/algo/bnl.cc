#include "skypeer/algo/bnl.h"

#include <algorithm>
#include <vector>

#include "skypeer/common/dominance.h"
#include "skypeer/common/macros.h"

namespace skypeer {

PointSet BnlSkyline(const PointSet& input, Subspace u, bool ext,
                    OpCounts* ops) {
  SKYPEER_CHECK(!u.empty());
  const size_t n = input.size();
  uint64_t tests = 0;
  // Window of candidate indices into `input`.
  std::vector<size_t> window;
  for (size_t i = 0; i < n; ++i) {
    const double* p = input[i];
    bool dominated = false;
    size_t kept = 0;
    for (size_t w = 0; w < window.size(); ++w) {
      const double* q = input[window[w]];
      ++tests;
      if (ext ? ExtDominates(q, p, u) : Dominates(q, p, u)) {
        dominated = true;
        // Keep the remaining window untouched.
        for (; w < window.size(); ++w) {
          window[kept++] = window[w];
        }
        break;
      }
      ++tests;
      if (ext ? ExtDominates(p, q, u) : Dominates(p, q, u)) {
        continue;  // Evict q.
      }
      window[kept++] = window[w];
    }
    window.resize(kept);
    if (!dominated) {
      window.push_back(i);
    }
  }
  if (ops != nullptr) {
    ops->dominance_tests += tests;
    ops->scan_steps += n;
  }

  PointSet result(input.dims());
  result.Reserve(window.size());
  for (size_t i : window) {
    result.AppendFrom(input, i);
  }
  return result;
}

PointSet BnlSkylineView(const StoreView& input, Subspace u, bool ext,
                        OpCounts* ops) {
  SKYPEER_CHECK(!u.empty());
  const size_t n = input.size();
  const size_t dims = static_cast<size_t>(input.dims());
  uint64_t tests = 0;
  StoreCursor cursor(input);
  // Window of candidate row copies (row-major) with their ids — the same
  // candidates, in the same order, as `BnlSkyline`'s index window, but
  // independent of the input staying resident.
  std::vector<double> window_rows;
  std::vector<PointId> window_ids;
  for (size_t i = 0; i < n; ++i) {
    const double* p = cursor.row(i);
    const PointId id = cursor.id(i);
    bool dominated = false;
    size_t kept = 0;
    const size_t window_size = window_ids.size();
    for (size_t w = 0; w < window_size; ++w) {
      const double* q = window_rows.data() + w * dims;
      ++tests;
      if (ext ? ExtDominates(q, p, u) : Dominates(q, p, u)) {
        dominated = true;
        // Keep the remaining window untouched.
        for (; w < window_size; ++w) {
          if (kept != w) {
            std::copy_n(window_rows.data() + w * dims, dims,
                        window_rows.data() + kept * dims);
            window_ids[kept] = window_ids[w];
          }
          ++kept;
        }
        break;
      }
      ++tests;
      if (ext ? ExtDominates(p, q, u) : Dominates(p, q, u)) {
        continue;  // Evict q.
      }
      if (kept != w) {
        std::copy_n(window_rows.data() + w * dims, dims,
                    window_rows.data() + kept * dims);
        window_ids[kept] = window_ids[w];
      }
      ++kept;
    }
    window_rows.resize(kept * dims);
    window_ids.resize(kept);
    if (!dominated) {
      window_rows.insert(window_rows.end(), p, p + dims);
      window_ids.push_back(id);
    }
  }
  if (ops != nullptr) {
    ops->dominance_tests += tests;
    ops->scan_steps += n;
    ChargeScanPages(input.layout(), 0, n, n, ops);
  }

  PointSet result(input.dims());
  result.Reserve(window_ids.size());
  for (size_t w = 0; w < window_ids.size(); ++w) {
    result.Append(window_rows.data() + w * dims, window_ids[w]);
  }
  return result;
}

}  // namespace skypeer
