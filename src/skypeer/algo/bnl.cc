#include "skypeer/algo/bnl.h"

#include <vector>

#include "skypeer/common/dominance.h"
#include "skypeer/common/macros.h"

namespace skypeer {

PointSet BnlSkyline(const PointSet& input, Subspace u, bool ext,
                    OpCounts* ops) {
  SKYPEER_CHECK(!u.empty());
  const size_t n = input.size();
  uint64_t tests = 0;
  // Window of candidate indices into `input`.
  std::vector<size_t> window;
  for (size_t i = 0; i < n; ++i) {
    const double* p = input[i];
    bool dominated = false;
    size_t kept = 0;
    for (size_t w = 0; w < window.size(); ++w) {
      const double* q = input[window[w]];
      ++tests;
      if (ext ? ExtDominates(q, p, u) : Dominates(q, p, u)) {
        dominated = true;
        // Keep the remaining window untouched.
        for (; w < window.size(); ++w) {
          window[kept++] = window[w];
        }
        break;
      }
      ++tests;
      if (ext ? ExtDominates(p, q, u) : Dominates(p, q, u)) {
        continue;  // Evict q.
      }
      window[kept++] = window[w];
    }
    window.resize(kept);
    if (!dominated) {
      window.push_back(i);
    }
  }
  if (ops != nullptr) {
    ops->dominance_tests += tests;
    ops->scan_steps += n;
  }

  PointSet result(input.dims());
  result.Reserve(window.size());
  for (size_t i : window) {
    result.AppendFrom(input, i);
  }
  return result;
}

}  // namespace skypeer
