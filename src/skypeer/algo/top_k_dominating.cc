#include "skypeer/algo/top_k_dominating.h"

#include <algorithm>

#include "skypeer/common/dominance.h"
#include "skypeer/common/macros.h"

namespace skypeer {

std::vector<size_t> DominationScores(const PointSet& input, Subspace u) {
  SKYPEER_CHECK(!u.empty());
  const size_t n = input.size();
  std::vector<size_t> scores(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      // One pass per pair: classify the relation once.
      switch (CompareDominance(input[i], input[j], u)) {
        case DomRelation::kPDominatesQ:
          ++scores[i];
          break;
        case DomRelation::kQDominatesP:
          ++scores[j];
          break;
        case DomRelation::kIncomparable:
          break;
      }
    }
  }
  return scores;
}

std::vector<DominatingPoint> TopKDominating(const PointSet& input, Subspace u,
                                            size_t k) {
  const std::vector<size_t> scores = DominationScores(input, u);
  std::vector<DominatingPoint> ranked;
  ranked.reserve(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    ranked.push_back(DominatingPoint{input.id(i), scores[i]});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const DominatingPoint& a, const DominatingPoint& b) {
              if (a.score != b.score) {
                return a.score > b.score;
              }
              return a.id < b.id;
            });
  if (ranked.size() > k) {
    ranked.resize(k);
  }
  return ranked;
}

}  // namespace skypeer
