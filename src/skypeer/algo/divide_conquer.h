#ifndef SKYPEER_ALGO_DIVIDE_CONQUER_H_
#define SKYPEER_ALGO_DIVIDE_CONQUER_H_

#include "skypeer/common/point_set.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// \brief Divide & Conquer skyline (Börzsönyi et al., ICDE'01): partitions
/// the input by the median of one queried dimension, recurses, and filters
/// the worse half against the skyline of the better half.
///
/// The partition is strict (`< median` vs `>= median`), so no point of the
/// worse half can dominate a point of the better half and a one-sided
/// filter suffices. Degenerate splits fall back to BNL. With `ext` the
/// extended skyline is computed instead.
PointSet DivideConquerSkyline(const PointSet& input, Subspace u,
                              bool ext = false);

}  // namespace skypeer

#endif  // SKYPEER_ALGO_DIVIDE_CONQUER_H_
