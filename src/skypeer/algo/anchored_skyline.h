#ifndef SKYPEER_ALGO_ANCHORED_SKYLINE_H_
#define SKYPEER_ALGO_ANCHORED_SKYLINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/btree/bplus_tree.h"
#include "skypeer/common/point_set.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// \brief SUBSKY-style cluster-anchored subspace skyline index (after
/// Tao, Xiao & Pei, ICDE'06 — the centralized subspace-skyline method the
/// paper's §5.1 mapping is "inspired by").
///
/// The dataset is partitioned into clusters (k-means); each cluster `c`
/// stores its points in a B+-tree keyed by the anchored transform
///
///     f_c(p) = min_i (p[i] - L_c[i]),
///
/// where `L_c` is the cluster's coordinate-wise minimum corner. For a
/// query subspace `U`, once a skyline candidate `s` is known, every
/// cluster-`c` point with
///
///     f_c(p) > max_{i in U} (s[i] - L_c[i])
///
/// is strictly worse than `s` on all of `U` and can be skipped — the
/// anchored analogue of the paper's Observation 5 (which is the special
/// case of a single anchor at the origin). Clustering tightens the bound
/// for skewed data, so far fewer points are scanned than with one global
/// anchor.
///
/// The index answers any subspace exactly; queries run over per-cluster
/// B+-tree cursors against the per-cluster thresholds.
class AnchoredSkylineIndex {
 public:
  struct Options {
    /// Number of k-means clusters (anchors). 1 degenerates to a single
    /// global anchor.
    int num_anchors = 8;
    int kmeans_iterations = 5;
    uint64_t seed = 1;
  };

  /// Builds the index over a copy of `points`.
  AnchoredSkylineIndex(const PointSet& points, const Options& options);

  /// Exact subspace skyline of the indexed data. `stats`, if given,
  /// receives the number of points consumed across all clusters before
  /// the thresholds terminated the scan.
  PointSet Query(Subspace u, ThresholdScanStats* stats = nullptr) const;

  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  size_t cluster_size(int c) const { return clusters_[c].tree.size(); }
  const std::vector<double>& cluster_lower_corner(int c) const {
    return clusters_[c].lower;
  }

 private:
  struct Cluster {
    std::vector<double> lower;  ///< Coordinate-wise min of member points.
    BPlusTree tree;             ///< Keyed by f_c(p); payload = row index.
  };

  PointSet points_;
  std::vector<Cluster> clusters_;
};

}  // namespace skypeer

#endif  // SKYPEER_ALGO_ANCHORED_SKYLINE_H_
