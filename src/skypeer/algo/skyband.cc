#include "skypeer/algo/skyband.h"

#include "skypeer/common/dominance.h"
#include "skypeer/common/macros.h"

namespace skypeer {

size_t DominanceCount(const PointSet& input, const double* p, Subspace u) {
  size_t count = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    if (Dominates(input[i], p, u)) {
      ++count;
    }
  }
  return count;
}

PointSet ExtKSkyband(const PointSet& input, Subspace u, int band) {
  SKYPEER_CHECK(!u.empty());
  SKYPEER_CHECK(band >= 1);
  PointSet result(input.dims());
  for (size_t i = 0; i < input.size(); ++i) {
    size_t dominators = 0;
    bool qualifies = true;
    for (size_t j = 0; j < input.size(); ++j) {
      if (i != j && ExtDominates(input[j], input[i], u)) {
        if (++dominators >= static_cast<size_t>(band)) {
          qualifies = false;
          break;
        }
      }
    }
    if (qualifies) {
      result.AppendFrom(input, i);
    }
  }
  return result;
}

PointSet KSkyband(const PointSet& input, Subspace u, int band) {
  SKYPEER_CHECK(!u.empty());
  SKYPEER_CHECK(band >= 1);
  PointSet result(input.dims());
  for (size_t i = 0; i < input.size(); ++i) {
    size_t dominators = 0;
    bool qualifies = true;
    for (size_t j = 0; j < input.size(); ++j) {
      if (i != j && Dominates(input[j], input[i], u)) {
        if (++dominators >= static_cast<size_t>(band)) {
          qualifies = false;
          break;
        }
      }
    }
    if (qualifies) {
      result.AppendFrom(input, i);
    }
  }
  return result;
}

}  // namespace skypeer
