#ifndef SKYPEER_ALGO_EXTENDED_SKYLINE_H_
#define SKYPEER_ALGO_EXTENDED_SKYLINE_H_

#include "skypeer/algo/result_list.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/point_set.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// \brief Computes the extended skyline (paper §4) of `points` on subspace
/// `u`: all points not *strictly* dominated on every dimension of `u`.
///
/// By Observation 4, `ext-SKY_D` contains `SKY_V` for every `V ⊆ D`, which
/// is why it is the set peers ship to their super-peer in the
/// pre-processing phase (§5.3). Internally this sorts by `f` and runs the
/// threshold scan of Algorithm 1 under ext-dominance, as the paper
/// prescribes ("any of the existing skyline algorithms may be applied ...
/// if the domination test is replaced by the ext-domination definition").
///
/// Returns the result sorted ascending by `f`, ready for super-peer
/// merging. `stats`, if given, receives the scan counters.
ResultList ExtendedSkyline(const PointSet& points, Subspace u,
                           ThresholdScanStats* stats = nullptr);

/// Extended skyline on the full space of the input's dimensionality —
/// the exact set a peer transmits during pre-processing.
ResultList ExtendedSkyline(const PointSet& points,
                           ThresholdScanStats* stats = nullptr);

}  // namespace skypeer

#endif  // SKYPEER_ALGO_EXTENDED_SKYLINE_H_
