#ifndef SKYPEER_ALGO_RESULT_LIST_H_
#define SKYPEER_ALGO_RESULT_LIST_H_

#include <vector>

#include "skypeer/common/mapping.h"
#include "skypeer/common/point_set.h"

namespace skypeer {

/// \brief A list of full-dimensional points sorted ascending by the
/// one-dimensional mapping `f(p) = min_i p[i]` (paper §5.1).
///
/// This is the exchange format of the SKYPEER pipeline: super-peers store
/// their merged extended skyline as a `ResultList`, Algorithm 1 consumes
/// and produces it, and Algorithm 2 merges several of them. Points keep
/// all `d` coordinates in memory; the network-transfer byte model (which
/// only ships the queried coordinates plus `f`) lives in the engine.
struct ResultList {
  PointSet points;
  /// `f(points[i])`, non-decreasing in `i`.
  std::vector<double> f;

  explicit ResultList(int dims) : points(dims) {}

  size_t size() const { return points.size(); }
  bool empty() const { return points.empty(); }

  /// True if `f` is parallel to `points` and non-decreasing. Test helper.
  bool IsSorted() const {
    if (f.size() != points.size()) {
      return false;
    }
    for (size_t i = 1; i < f.size(); ++i) {
      if (f[i] < f[i - 1]) {
        return false;
      }
    }
    return true;
  }
};

/// Builds a `ResultList` from an unordered point set: computes `f` over the
/// full space and sorts ascending (stable on ties for determinism).
ResultList BuildSortedByF(const PointSet& input);

}  // namespace skypeer

#endif  // SKYPEER_ALGO_RESULT_LIST_H_
