#include "skypeer/algo/sorted_skyline.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "skypeer/common/dominance.h"
#include "skypeer/common/mapping.h"

namespace skypeer {

ResultList BuildSortedByF(const PointSet& input) {
  const int dims = input.dims();
  std::vector<double> f(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    f[i] = MinCoord(input[i], dims);
  }
  std::vector<size_t> order(input.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&f](size_t a, size_t b) { return f[a] < f[b]; });
  ResultList result(dims);
  result.points.Reserve(input.size());
  result.f.reserve(input.size());
  for (size_t i : order) {
    result.points.AppendFrom(input, i);
    result.f.push_back(f[i]);
  }
  return result;
}

SkylineAccumulator::SkylineAccumulator(int dims, Subspace u,
                                       const ThresholdScanOptions& options)
    : dims_(dims),
      u_(u),
      strict_(options.ext),
      use_rtree_(options.use_rtree),
      threshold_(options.initial_threshold),
      window_points_(dims) {
  SKYPEER_CHECK(!u.empty());
  if (use_rtree_) {
    rtree_ = std::make_unique<RTree>(u.Count());
  }
}

SkylineAccumulator::~SkylineAccumulator() = default;

bool SkylineAccumulator::IsDominatedLinear(const double* proj) const {
  const int k = u_.Count();
  for (size_t i = 0; i < window_points_.size(); ++i) {
    if (!alive_flags_[i]) {
      continue;
    }
    const double* q = window_proj_.data() + i * static_cast<size_t>(k);
    bool strictly = false;
    bool dominated = true;
    for (int d = 0; d < k; ++d) {
      if (strict_ ? q[d] >= proj[d] : q[d] > proj[d]) {
        dominated = false;
        break;
      }
      if (q[d] < proj[d]) {
        strictly = true;
      }
    }
    if (dominated && (strict_ || strictly)) {
      return true;
    }
  }
  return false;
}

void SkylineAccumulator::EvictDominatedLinear(const double* proj) {
  const int k = u_.Count();
  for (size_t i = 0; i < window_points_.size(); ++i) {
    if (!alive_flags_[i]) {
      continue;
    }
    const double* q = window_proj_.data() + i * static_cast<size_t>(k);
    bool strictly = false;
    bool dominates = true;
    for (int d = 0; d < k; ++d) {
      if (strict_ ? proj[d] >= q[d] : proj[d] > q[d]) {
        dominates = false;
        break;
      }
      if (proj[d] < q[d]) {
        strictly = true;
      }
    }
    if (dominates && (strict_ || strictly)) {
      alive_flags_[i] = 0;
      --alive_;
    }
  }
}

bool SkylineAccumulator::Offer(const double* p, PointId id, double f) {
  // Project onto the query subspace once.
  const int k = u_.Count();
  double proj[kMaxDims];
  {
    int j = 0;
    for (int dim : u_) {
      proj[j++] = p[dim];
    }
  }

  // Observation 5: beyond the threshold the point is dominated by the
  // skyline point that set the threshold. (Ties may survive; see header.)
  if (f > threshold_) {
    return false;
  }

  if (use_rtree_) {
    if (rtree_->AnyDominates(proj, strict_)) {
      return false;
    }
    scratch_payloads_ = rtree_->EraseDominated(proj, strict_);
    for (uint64_t idx : scratch_payloads_) {
      alive_flags_[idx] = 0;
      --alive_;
    }
  } else {
    if (IsDominatedLinear(proj)) {
      return false;
    }
    EvictDominatedLinear(proj);
  }

  const uint64_t index = window_points_.size();
  window_points_.Append(p, id);
  window_f_.push_back(f);
  alive_flags_.push_back(1);
  window_proj_.insert(window_proj_.end(), proj, proj + k);
  ++alive_;
  if (use_rtree_) {
    rtree_->Insert(proj, index);
  }

  // A dominator has dist_U no larger than any point it dominates, so the
  // minimum only ever decreases; track it incrementally.
  threshold_ = std::min(threshold_, DistU(p, u_));
  return true;
}

ResultList SkylineAccumulator::TakeResult() {
  ResultList result(dims_);
  result.points.Reserve(alive_);
  result.f.reserve(alive_);
  for (size_t i = 0; i < window_points_.size(); ++i) {
    if (alive_flags_[i]) {
      result.points.AppendFrom(window_points_, i);
      result.f.push_back(window_f_[i]);
    }
  }
  window_points_.Clear();
  window_f_.clear();
  alive_flags_.clear();
  window_proj_.clear();
  alive_ = 0;
  if (use_rtree_) {
    rtree_->Clear();
  }
  return result;
}

ResultList SortedSkyline(const ResultList& input, Subspace u,
                         const ThresholdScanOptions& options,
                         ThresholdScanStats* stats) {
  SKYPEER_DCHECK(input.IsSorted());
  SkylineAccumulator accumulator(input.points.dims(), u, options);
  size_t scanned = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    if (input.f[i] > accumulator.threshold()) {
      break;
    }
    accumulator.Offer(input.points[i], input.points.id(i), input.f[i]);
    ++scanned;
  }
  if (stats != nullptr) {
    stats->scanned = scanned;
    stats->final_threshold = accumulator.threshold();
  }
  return accumulator.TakeResult();
}

}  // namespace skypeer
