#include "skypeer/algo/sorted_skyline.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <vector>

#include "skypeer/common/dominance_batch.h"
#include "skypeer/common/mapping.h"
#include "skypeer/common/thread_pool.h"

namespace skypeer {

namespace {

/// Wall seconds since `start`; charged as the scan's own work time.
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Shared consume loop of every threshold-scan form: scans positions
/// [begin, end) of `input` in ascending order, offering each point whose
/// `f` is within the accumulator's running threshold, and returns the
/// number of points consumed. Scan-level charges (scan steps, page
/// charges and — under block skipping — summary probes and skipped
/// blocks) accumulate into `scan_ops`, kept apart from the accumulator's
/// window-evolution ops so traced scans record replayable `cum_ops`.
/// When `trace` is non-null, per-position events are recorded exactly as
/// `TracedSortedSkyline` documents (only the sequential `begin == 0`
/// forms trace, so eviction tags index the trace directly).
///
/// With `block_skip` and a store summary attached, each 8-wide block is
/// probed before its points: a block whose min-vector is dominated by a
/// live window entry is consumed without per-point offers — wholesale
/// (without reading the store at all) when its `[f_min, f_max]` range
/// fits under the running threshold, else by a per-position `f` walk
/// that keeps the stopping point bit-identical to the plain scan. Page
/// charges then switch from the whole-prefix `ChargeScanPages` to
/// incremental per-page touches, so pages covered only by wholesale-
/// skipped blocks are never charged (nor pinned on a paged store).
size_t RunThresholdScanLoop(const StoreView& input, Subspace u, size_t begin,
                            size_t end, bool block_skip,
                            SkylineAccumulator* acc, OpCounts* scan_ops,
                            ScanTrace* trace) {
  const StoreSummary* summary = input.summary();
  const bool skip = block_skip && summary != nullptr;
  if (trace != nullptr) {
    trace->block_skip = skip;
  }
  StoreCursor cursor(input);
  std::vector<uint64_t> evicted;
  const auto consume = [&](size_t i, double f) {
    const double* p = cursor.row(i);
    const PointId id = cursor.id(i);
    if (trace == nullptr) {
      acc->Offer(p, id, f);
      return;
    }
    evicted.clear();
    const bool accepted = acc->OfferTagged(p, id, f, i, &evicted);
    trace->accepted.push_back(accepted ? 1 : 0);
    trace->dist_u.push_back(accepted ? DistU(p, u) : 0.0);
    trace->evicted_at.push_back(ScanTrace::kNeverEvicted);
    for (uint64_t victim : evicted) {
      trace->evicted_at[victim] = i;
    }
    trace->cum_ops.push_back(acc->ops());
  };

  if (!skip) {
    size_t scanned = 0;
    for (size_t i = begin; i < end; ++i) {
      const double f = cursor.f(i);
      if (f > acc->threshold()) {
        break;
      }
      consume(i, f);
      ++scanned;
    }
    scan_ops->scan_steps += scanned;
    ChargeScanPages(input.layout(), begin, end, scanned, scan_ops);
    return scanned;
  }

  if (input.paged()) {
    // Physical-only read-ahead hint: upcoming pages whose summary fold
    // already satisfies both skip conditions will never be pinned by
    // this scan, so read-ahead jumps them. The filter consults the live
    // threshold and window, so a hint can be stale by the time the scan
    // arrives — that costs one synchronous pin, never correctness, and
    // logical charges do not see prefetches at all.
    cursor.set_prefetch_filter([acc, summary](size_t page) {
      return summary->page_f_max(page) <= acc->threshold() &&
             acc->WindowRejectsSummary(summary->page_min(page));
    });
  }

  const PageLayout& layout = input.layout();
  const size_t points_per_page = layout.points_per_page();
  size_t last_page = static_cast<size_t>(-1);
  // Incremental page charging: positions ascend and every 8-block sits
  // inside one page (pages hold whole blocks), so charging on page
  // change reproduces `ChargeScanPages` exactly when nothing skips
  // wholesale, and drops exactly the pages no position of which is
  // examined. Identical in both store modes — it reads the layout only.
  const auto touch = [&](size_t i) {
    const size_t page = i / points_per_page;
    if (page != last_page) {
      scan_ops->page_reads += 1;
      scan_ops->page_bytes += layout.page_size;
      last_page = page;
    }
  };
  // Positions consumed without an offer still get trace entries — the
  // exact entries the plain traced scan records for rejected points —
  // so traces are position-aligned regardless of skipping.
  const auto record_skipped = [&](size_t count) {
    if (trace == nullptr) {
      return;
    }
    for (size_t k = 0; k < count; ++k) {
      trace->accepted.push_back(0);
      trace->dist_u.push_back(0.0);
      trace->evicted_at.push_back(ScanTrace::kNeverEvicted);
      trace->cum_ops.push_back(acc->ops());
    }
  };

  size_t scanned = 0;
  size_t i = begin;
  while (i < end) {
    const size_t block = i / kDomBlockWidth;
    const size_t block_end = std::min(end, (block + 1) * kDomBlockWidth);
    // Cheapest test first: the block's own f minimum (its first point —
    // the store is f-sorted) already proves the stop condition without
    // touching the store or the window. Charges nothing, exactly like
    // the plain scan's terminating f-read.
    if (summary->block_f_min(block) > acc->threshold()) {
      break;
    }
    scan_ops->summary_tests += 1;
    const bool rejected = acc->WindowRejectsSummary(summary->block_min(block));
    if (trace != nullptr) {
      trace->block_rejected.push_back(rejected ? 1 : 0);
    }
    if (rejected) {
      scan_ops->blocks_skipped += 1;
      if (summary->block_f_max(block) <= acc->threshold()) {
        // Wholesale skip: every point of the block is within threshold
        // and dominated; consume the block without reading it. No scan
        // steps, no page touch — and rejected points have no side
        // effects on window or threshold, so nothing downstream can
        // tell the offers never ran.
        record_skipped(block_end - i);
        scanned += block_end - i;
        i = block_end;
        continue;
      }
      // The running threshold may cut inside this block: walk `f` only
      // (no dominance work — the probe already rejected every point) so
      // the stopping position, and with it `scanned`, stays
      // bit-identical to the plain scan.
      bool stopped = false;
      for (; i < block_end; ++i) {
        touch(i);
        if (cursor.f(i) > acc->threshold()) {
          stopped = true;
          break;
        }
        record_skipped(1);
        scan_ops->scan_steps += 1;
        ++scanned;
      }
      if (stopped) {
        break;
      }
      continue;
    }
    // Unrejected block: the plain per-point offer loop. Accepts may
    // tighten the threshold mid-block; later block probes see it.
    bool stopped = false;
    for (; i < block_end; ++i) {
      touch(i);
      const double f = cursor.f(i);
      if (f > acc->threshold()) {
        stopped = true;
        break;
      }
      consume(i, f);
      scan_ops->scan_steps += 1;
      ++scanned;
    }
    if (stopped) {
      break;
    }
  }
  return scanned;
}

}  // namespace

ResultList BuildSortedByF(const PointSet& input) {
  const int dims = input.dims();
  std::vector<double> f(input.size());
  BatchMinCoord(input.values().data(), input.size(), dims, f.data());
  std::vector<size_t> order(input.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&f](size_t a, size_t b) { return f[a] < f[b]; });
  ResultList result(dims);
  result.points.Reserve(input.size());
  result.f.reserve(input.size());
  for (size_t i : order) {
    result.points.AppendFrom(input, i);
    result.f.push_back(f[i]);
  }
  return result;
}

SkylineAccumulator::SkylineAccumulator(int dims, Subspace u,
                                       const ThresholdScanOptions& options)
    : dims_(dims),
      u_(u),
      strict_(options.ext),
      use_rtree_(options.use_rtree),
      compact_min_window_(options.compact_min_window),
      compact_live_fraction_(options.compact_live_fraction),
      threshold_(options.initial_threshold),
      window_points_(dims),
      window_proj_(u.Count()) {
  SKYPEER_CHECK(!u.empty());
  if (use_rtree_) {
    rtree_ = std::make_unique<RTree>(u.Count());
  }
}

SkylineAccumulator::~SkylineAccumulator() = default;

void SkylineAccumulator::EvictDominatedLinear(
    const double* proj, std::vector<uint64_t>* evicted_tags) {
  // One reverse-dominance bit mask per block, then evictions applied in
  // ascending index order (blocks ascending, bits via ctz) so the
  // `evicted_tags` order matches the historical per-point loop. Killed
  // lanes are +inf and come back flagged as "dominated"; `alive_flags_`
  // filters them out.
  ops_.dominance_tests += window_points_.size();
  scratch_masks_.resize(window_proj_.num_blocks());
  DominatedMask(window_proj_, proj, strict_, scratch_masks_.data());
  for (size_t b = 0; b < scratch_masks_.size(); ++b) {
    unsigned mask = scratch_masks_[b];
    while (mask != 0) {
      const size_t lane = static_cast<size_t>(__builtin_ctz(mask));
      mask &= mask - 1;
      const size_t i = b * kDomBlockWidth + lane;
      if (!alive_flags_[i]) {
        continue;
      }
      alive_flags_[i] = 0;
      window_proj_.Kill(i);
      --alive_;
      if (evicted_tags != nullptr && window_tags_[i] != kNoTag) {
        evicted_tags->push_back(window_tags_[i]);
      }
    }
  }
}

bool SkylineAccumulator::OfferTagged(const double* p, PointId id, double f,
                                     uint64_t tag,
                                     std::vector<uint64_t>* evicted_tags) {
  // Project onto the query subspace once.
  double proj[kMaxDims];
  {
    int j = 0;
    for (int dim : u_) {
      proj[j++] = p[dim];
    }
  }

  // Observation 5: beyond the threshold the point is dominated by the
  // skyline point that set the threshold. (Ties may survive; see header.)
  if (f > threshold_) {
    return false;
  }

  if (use_rtree_) {
    if (rtree_->AnyDominates(proj, strict_, &ops_.rtree_node_visits)) {
      return false;
    }
    scratch_payloads_ =
        rtree_->EraseDominated(proj, strict_, &ops_.rtree_node_visits);
    for (uint64_t idx : scratch_payloads_) {
      alive_flags_[idx] = 0;
      window_proj_.Kill(idx);
      --alive_;
      if (evicted_tags != nullptr && window_tags_[idx] != kNoTag) {
        evicted_tags->push_back(window_tags_[idx]);
      }
    }
  } else {
    // Killed lanes are +inf and never dominate, so the batched test needs
    // no liveness filtering. Count the logical window size, not the
    // kernel's internal lane count, so scalar and SIMD dispatch report
    // identical work.
    ops_.dominance_tests += window_points_.size();
    if (AnyDominates(window_proj_, proj, strict_)) {
      return false;
    }
    EvictDominatedLinear(proj, evicted_tags);
  }
  MaybeCompact();

  const uint64_t index = window_points_.size();
  window_points_.Append(p, id);
  window_f_.push_back(f);
  alive_flags_.push_back(1);
  emit_flags_.push_back(1);
  window_tags_.push_back(tag);
  window_proj_.Append(proj);
  ++alive_;
  if (use_rtree_) {
    rtree_->Insert(proj, index, &ops_.rtree_node_visits);
  }

  // A dominator has dist_U no larger than any point it dominates, so the
  // minimum only ever decreases; track it incrementally.
  threshold_ = std::min(threshold_, DistU(p, u_));
  return true;
}

bool SkylineAccumulator::WindowRejectsSummary(const double* min_row) const {
  double proj[kMaxDims];
  {
    int j = 0;
    for (int dim : u_) {
      proj[j++] = min_row[dim];
    }
  }
  // `window_proj_` is maintained by both the R-tree and the linear offer
  // paths, so the probe is one batched kernel call either way; killed
  // lanes are +inf and never dominate. Deliberately uncharged here —
  // callers account `summary_tests` in scan-level ops (see header).
  return AnyDominatesSummary(window_proj_, proj, strict_);
}

void SkylineAccumulator::MaybeCompact() {
  if (window_points_.size() < compact_min_window_ ||
      !(static_cast<double>(alive_) <
        compact_live_fraction_ * static_cast<double>(window_points_.size()))) {
    return;
  }
  const int k = u_.Count();
  PointSet points(dims_);
  points.Reserve(alive_);
  std::vector<double> f;
  f.reserve(alive_);
  std::vector<char> emit;
  emit.reserve(alive_);
  std::vector<uint64_t> tags;
  tags.reserve(alive_);
  // Gather alive projections into a row-major scratch (also the bulk-load
  // input when `use_rtree_`), then re-block.
  std::vector<double> proj_rows;
  proj_rows.reserve(alive_ * static_cast<size_t>(k));
  double row[kMaxDims];
  for (size_t i = 0; i < window_points_.size(); ++i) {
    if (!alive_flags_[i]) {
      continue;
    }
    points.AppendFrom(window_points_, i);
    f.push_back(window_f_[i]);
    emit.push_back(emit_flags_[i]);
    tags.push_back(window_tags_[i]);
    window_proj_.Row(i, row);
    proj_rows.insert(proj_rows.end(), row, row + k);
  }
  window_points_ = std::move(points);
  window_f_ = std::move(f);
  emit_flags_ = std::move(emit);
  window_tags_ = std::move(tags);
  window_proj_.Clear();
  window_proj_.Reserve(alive_);
  for (size_t i = 0; i < alive_; ++i) {
    window_proj_.Append(proj_rows.data() + i * static_cast<size_t>(k));
  }
  alive_flags_.assign(alive_, 1);
  if (use_rtree_) {
    // The payloads are window indices; renumber them 0..alive-1 to match
    // the compacted arrays.
    std::vector<uint64_t> payloads(alive_);
    std::iota(payloads.begin(), payloads.end(), uint64_t{0});
    *rtree_ = RTree::BulkLoad(k, proj_rows.data(), payloads.data(), alive_);
    ops_.sort_steps += SortCost(alive_);
  }
}

ResultList SkylineAccumulator::TakeResult() {
  ResultList result(dims_);
  result.points.Reserve(alive_);
  result.f.reserve(alive_);
  for (size_t i = 0; i < window_points_.size(); ++i) {
    if (alive_flags_[i] && emit_flags_[i]) {
      result.points.AppendFrom(window_points_, i);
      result.f.push_back(window_f_[i]);
    }
  }
  window_points_.Clear();
  window_f_.clear();
  alive_flags_.clear();
  emit_flags_.clear();
  window_tags_.clear();
  window_proj_.Clear();
  alive_ = 0;
  if (use_rtree_) {
    rtree_->Clear();
  }
  return result;
}

void SkylineAccumulator::SeedWindow(const ResultList& seed) {
  SKYPEER_CHECK(window_points_.empty());
  const int k = u_.Count();
  const size_t n = seed.size();
  window_points_.Reserve(n);
  window_f_.reserve(n);
  window_proj_.Reserve(n);
  // Row-major copy of the seed projections, kept as bulk-load input.
  std::vector<double> proj_rows;
  proj_rows.reserve(n * static_cast<size_t>(k));
  for (size_t i = 0; i < n; ++i) {
    window_points_.AppendFrom(seed.points, i);
    window_f_.push_back(seed.f[i]);
    const double* p = seed.points[i];
    for (int dim : u_) {
      proj_rows.push_back(p[dim]);
    }
    window_proj_.Append(proj_rows.data() + i * static_cast<size_t>(k));
  }
  alive_flags_.assign(n, 1);
  emit_flags_.assign(n, 0);
  window_tags_.assign(n, kNoTag);
  alive_ = n;
  if (use_rtree_ && n > 0) {
    // Seeds arrive all at once on an empty window: bulk loading beats n
    // incremental inserts.
    std::vector<uint64_t> payloads(n);
    std::iota(payloads.begin(), payloads.end(), uint64_t{0});
    *rtree_ = RTree::BulkLoad(k, proj_rows.data(), payloads.data(), n);
    ops_.sort_steps += SortCost(n);
  }
}

ResultList SortedSkyline(const StoreView& input, Subspace u,
                         const ThresholdScanOptions& options,
                         ThresholdScanStats* stats) {
  SKYPEER_DCHECK(input.list() == nullptr || input.list()->IsSorted());
  const auto start = std::chrono::steady_clock::now();
  SkylineAccumulator accumulator(input.dims(), u, options);
  if (options.filter != nullptr && !options.filter->empty()) {
    accumulator.SeedWindow(*options.filter);
  }
  OpCounts scan_ops;
  const size_t scanned =
      RunThresholdScanLoop(input, u, 0, input.size(), options.block_skip,
                           &accumulator, &scan_ops, nullptr);
  if (stats != nullptr) {
    stats->scanned = scanned;
    stats->final_threshold = accumulator.threshold();
    stats->ops = accumulator.ops();
    stats->ops += scan_ops;
    stats->cpu_seconds = SecondsSince(start);
  }
  return accumulator.TakeResult();
}

ResultList TracedSortedSkyline(const StoreView& input, Subspace u,
                               const ThresholdScanOptions& options,
                               ThresholdScanStats* stats, ScanTrace* trace) {
  SKYPEER_DCHECK(input.list() == nullptr || input.list()->IsSorted());
  SKYPEER_CHECK(trace != nullptr);
  trace->threshold_in = options.initial_threshold;
  trace->accepted.clear();
  trace->dist_u.clear();
  trace->evicted_at.clear();
  trace->cum_ops.clear();
  trace->block_skip = false;
  trace->block_rejected.clear();

  const auto start = std::chrono::steady_clock::now();
  SkylineAccumulator accumulator(input.dims(), u, options);
  if (options.filter != nullptr && !options.filter->empty()) {
    // The filter is baked into the recorded accept/evict decisions, so
    // replays need no filter knowledge — but a trace is only valid for
    // scans under the *same* filter (the cache keys on its fingerprint).
    accumulator.SeedWindow(*options.filter);
  }
  OpCounts scan_ops;
  const size_t scanned =
      RunThresholdScanLoop(input, u, 0, input.size(), options.block_skip,
                           &accumulator, &scan_ops, trace);
  if (stats != nullptr) {
    stats->scanned = scanned;
    stats->final_threshold = accumulator.threshold();
    stats->ops = accumulator.ops();
    stats->ops += scan_ops;
    stats->cpu_seconds = SecondsSince(start);
  }
  return accumulator.TakeResult();
}

ResultList ReplayScanTrace(const StoreView& input, const ScanTrace& trace,
                           double threshold_in, ThresholdScanStats* stats) {
  SKYPEER_CHECK(threshold_in <= trace.threshold_in);
  const auto start = std::chrono::steady_clock::now();
  // The running threshold under the tighter start is min(threshold_in,
  // running threshold of the recorded scan) at every position, so the
  // replayed scan stops within the recorded prefix: past its cut the
  // recorded scan's own threshold already rejected the next point.
  StoreCursor cursor(input);
  double threshold = threshold_in;
  size_t cut = 0;
  while (cut < trace.size() && cursor.f(cut) <= threshold) {
    if (trace.accepted[cut]) {
      threshold = std::min(threshold, trace.dist_u[cut]);
    }
    ++cut;
  }
  // Survivors: accepted before the cut and not evicted before it. An
  // eviction at position >= cut never happens in the replayed scan (its
  // evictor is past the stopping point), so the point stays alive.
  ResultList result(input.dims());
  for (size_t i = 0; i < cut; ++i) {
    if (trace.accepted[i] && trace.evicted_at[i] >= cut) {
      result.points.Append(cursor.row(i), cursor.id(i));
      result.f.push_back(cursor.f(i));
    }
  }
  if (stats != nullptr) {
    stats->scanned = cut;
    stats->final_threshold = threshold;
    // Ops of the *equivalent direct scan*, not of the (much cheaper)
    // replay: the window evolves identically on the shared prefix, so
    // the recorded cumulative counts at the cut are exact. Traces
    // recorded before cum_ops existed replay with zero window ops.
    stats->ops = OpCounts{};
    if (cut > 0 && trace.cum_ops.size() >= cut) {
      stats->ops = trace.cum_ops[cut - 1];
    }
    if (!trace.block_skip) {
      stats->ops.scan_steps += cut;
      ChargeScanPages(input.layout(), 0, input.size(), cut, &stats->ops);
    } else {
      // Closed-form reconstruction of the skip scan's charges at the
      // replayed cut, exact because the summary probes are
      // threshold-independent on the shared prefix:
      //  - A probed block's first point is always consumed (its f *is*
      //    the block f-minimum the entry check passed), so a stop at a
      //    block start means that block was never probed. Hence exactly
      //    ceil(cut / 8) blocks are probed.
      //  - A rejected block fully inside the cut is a wholesale skip
      //    under any tighter threshold too: were its f-maximum above the
      //    running threshold, the per-position walk would have stopped
      //    inside it and the cut could not pass its end. Such blocks
      //    charge nothing further.
      //  - Every other probed block walks from its start to the cut (or
      //    its end), one scan step per consumed position, touching its
      //    page — blocks ascend, so first-touch per page reproduces the
      //    incremental charging of the direct scan, including the stop
      //    position's page (always the last probed block's own page).
      const PageLayout& layout = input.layout();
      const size_t blocks = (cut + kDomBlockWidth - 1) / kDomBlockWidth;
      stats->ops.summary_tests += blocks;
      size_t last_page = static_cast<size_t>(-1);
      for (size_t b = 0; b < blocks; ++b) {
        const size_t block_begin = b * kDomBlockWidth;
        const size_t block_end =
            std::min(block_begin + kDomBlockWidth, input.size());
        const bool rejected =
            b < trace.block_rejected.size() && trace.block_rejected[b] != 0;
        if (rejected) {
          stats->ops.blocks_skipped += 1;
          if (block_end <= cut) {
            continue;
          }
        }
        stats->ops.scan_steps += std::min(cut, block_end) - block_begin;
        const size_t page = block_begin / layout.points_per_page();
        if (page != last_page) {
          stats->ops.page_reads += 1;
          stats->ops.page_bytes += layout.page_size;
          last_page = page;
        }
      }
    }
    stats->cpu_seconds = SecondsSince(start);
  }
  return result;
}

ResultList ParallelSortedSkyline(const StoreView& input, Subspace u,
                                 size_t chunk_size,
                                 const ThresholdScanOptions& options,
                                 ThresholdScanStats* stats, ThreadPool* pool) {
  // Whole-page chunks: concurrent chunk cursors never share a buffer
  // frame, and per-chunk page charges cover disjoint page ranges. The
  // snap depends only on the layout, so in-memory and paged runs split
  // identically.
  chunk_size = SnapChunkToPages(input.layout(), chunk_size);
  // Pages hold whole 8-wide blocks, so page-snapped chunks are also
  // block-aligned — in-memory mode included, where pages are purely
  // logical. Block-skipping chunk scans rely on this: a summary block
  // never straddles two chunks, so per-chunk probe sequences (and their
  // charges) are the same ones a sequential skip scan would issue.
  SKYPEER_DCHECK(chunk_size % kDomBlockWidth == 0);
  if (chunk_size == 0 || input.size() <= chunk_size) {
    return SortedSkyline(input, u, options, stats);
  }
  SKYPEER_DCHECK(input.list() == nullptr || input.list()->IsSorted());
  if (pool == nullptr) {
    pool = ThreadPool::Global();
  }
  const int dims = input.dims();
  const size_t num_chunks = (input.size() + chunk_size - 1) / chunk_size;

  std::vector<ResultList> chunk_results;
  chunk_results.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    chunk_results.emplace_back(dims);
  }
  std::vector<ThresholdScanStats> chunk_stats(num_chunks);

  const ResultList* broadcast_filter =
      (options.filter != nullptr && !options.filter->empty()) ? options.filter
                                                              : nullptr;
  // Seed list for chunks > 0; assigned after chunk 0 completes, before
  // the fan-out. With a broadcast filter it is the concatenation of the
  // filter and chunk 0's survivors (a dominated entry in the combined
  // list is an inert extra pruner), otherwise chunk 0's survivors alone.
  ResultList combined_seed(dims);
  const ResultList* later_seed = nullptr;

  const auto scan_chunk = [&](size_t c, double seed) {
    const auto chunk_start = std::chrono::steady_clock::now();
    ThresholdScanOptions chunk_options = options;
    chunk_options.initial_threshold = seed;
    SkylineAccumulator accumulator(dims, u, chunk_options);
    if (c == 0) {
      if (broadcast_filter != nullptr) {
        accumulator.SeedWindow(*broadcast_filter);
      }
    } else {
      // Chunk 0's survivors — the sequential scan's hot window — reject
      // most duplicated chunk-local survivors up front. They are
      // computed before the fan-out, so the rejections (and hence every
      // per-chunk result and scan count) stay deterministic; and they
      // remain in the survivor union themselves, so the cross-filter
      // below removes exactly the same points either way. The broadcast
      // filter rides along uniformly: any point only a filter point
      // dominates is rejected in every chunk alike, so it never reaches
      // the survivor union.
      accumulator.SeedWindow(*later_seed);
    }
    const size_t begin = c * chunk_size;
    const size_t end = std::min(input.size(), begin + chunk_size);
    OpCounts scan_ops;
    const size_t scanned =
        RunThresholdScanLoop(input, u, begin, end, options.block_skip,
                             &accumulator, &scan_ops, nullptr);
    chunk_stats[c].scanned = scanned;
    chunk_stats[c].final_threshold = accumulator.threshold();
    chunk_stats[c].ops = accumulator.ops();
    chunk_stats[c].ops += scan_ops;
    chunk_results[c] = accumulator.TakeResult();
    // Self-measured work time of this chunk on its executing thread;
    // pool queueing time never enters the sum.
    chunk_stats[c].cpu_seconds = SecondsSince(chunk_start);
  };

  // Chunk 0 — the prefix the sequential scan would consume first — runs
  // before the fan-out so its final threshold seeds every later chunk.
  scan_chunk(0, options.initial_threshold);

  if (broadcast_filter == nullptr) {
    later_seed = &chunk_results[0];
  } else {
    combined_seed.points.Reserve(broadcast_filter->size() +
                                 chunk_results[0].size());
    combined_seed.f.reserve(broadcast_filter->size() +
                            chunk_results[0].size());
    for (size_t i = 0; i < broadcast_filter->size(); ++i) {
      combined_seed.points.AppendFrom(broadcast_filter->points, i);
      combined_seed.f.push_back(broadcast_filter->f[i]);
    }
    for (size_t i = 0; i < chunk_results[0].size(); ++i) {
      combined_seed.points.AppendFrom(chunk_results[0].points, i);
      combined_seed.f.push_back(chunk_results[0].f[i]);
    }
    later_seed = &combined_seed;
  }

  // Deterministic seeds: chunk c starts from the tightest bound derivable
  // from chunk 0's scan and the first point of chunks 1..c-1. Observation 5
  // holds for the dist_U of any point (accepted or not), so the seed only
  // prunes dominated points; and because the seeds depend on the input
  // alone, per-chunk scan counts never vary with scheduling.
  std::vector<double> seeds(num_chunks);
  {
    // Seed rows sit on pages the chunk scans themselves examine (every
    // chunk reads at least its first position), so they add no page
    // charges of their own.
    StoreCursor seed_cursor(input);
    double bound = chunk_stats[0].final_threshold;
    for (size_t c = 1; c < num_chunks; ++c) {
      seeds[c] = bound;
      bound = std::min(bound, DistU(seed_cursor.row(c * chunk_size), u));
    }
  }
  pool->ParallelFor(num_chunks - 1,
                    [&](size_t i) { scan_chunk(i + 1, seeds[i + 1]); });

  // Cross-filter: the final skyline is exactly the survivors that no
  // other survivor dominates. Any input point that dominates a survivor
  // resolves — through chunk evictions and threshold witnesses, both of
  // which strictly dominate what they prune — to a survivor that also
  // dominates it, so filtering against the survivor union alone is
  // exact. The test is order-independent (a point never dominates
  // itself or an equal projection), which makes this stage
  // embarrassingly parallel, unlike a serial Algorithm 2 re-merge whose
  // single accumulator pass would bound the speedup on skyline-heavy
  // stores.
  size_t total = 0;
  for (const ResultList& r : chunk_results) {
    total += r.size();
  }
  const int k = u.Count();
  std::vector<double> proj(total * static_cast<size_t>(k));
  {
    size_t offset = 0;
    for (const ResultList& r : chunk_results) {
      for (size_t i = 0; i < r.size(); ++i, ++offset) {
        const double* p = r.points[i];
        double* row = proj.data() + offset * static_cast<size_t>(k);
        int j = 0;
        for (int dim : u) {
          row[j++] = p[dim];
        }
      }
    }
  }
  std::vector<uint64_t> payloads(total);
  std::iota(payloads.begin(), payloads.end(), uint64_t{0});
  const auto filter_start = std::chrono::steady_clock::now();
  const RTree tree = RTree::BulkLoad(k, proj.data(), payloads.data(), total);
  const double bulk_load_s = SecondsSince(filter_start);
  std::vector<uint8_t> keep(total, 0);
  constexpr size_t kFilterBlock = 1024;
  const size_t num_blocks = (total + kFilterBlock - 1) / kFilterBlock;
  // Per-block local counters/timers, folded in block order afterwards:
  // the shared tree is traversed concurrently, so counting through a
  // shared accumulator would race (and break cross-thread determinism).
  std::vector<uint64_t> block_visits(num_blocks, 0);
  std::vector<double> block_cpu(num_blocks, 0.0);
  pool->ParallelFor(num_blocks, [&](size_t b) {
    const auto block_start = std::chrono::steady_clock::now();
    const size_t begin = b * kFilterBlock;
    const size_t end = std::min(total, begin + kFilterBlock);
    for (size_t i = begin; i < end; ++i) {
      keep[i] = !tree.AnyDominates(proj.data() + i * static_cast<size_t>(k),
                                   options.ext, &block_visits[b]);
    }
    block_cpu[b] = SecondsSince(block_start);
  });

  // Concatenating in chunk order restores the original (f, position)
  // order, and the final threshold — min dist_U over the survivors —
  // matches the sequential accumulator's (every evicted point has an
  // evictor chain ending in a survivor with dist_U no larger).
  ResultList merged(dims);
  double final_threshold = options.initial_threshold;
  {
    size_t offset = 0;
    for (const ResultList& r : chunk_results) {
      for (size_t i = 0; i < r.size(); ++i, ++offset) {
        if (!keep[offset]) {
          continue;
        }
        merged.points.AppendFrom(r.points, i);
        merged.f.push_back(r.f[i]);
        final_threshold = std::min(final_threshold, DistU(r.points[i], u));
      }
    }
  }
  if (stats != nullptr) {
    stats->scanned = 0;
    stats->ops = OpCounts{};
    stats->cpu_seconds = 0.0;
    // Fixed summation order (chunks ascending, then the cross-filter's
    // bulk load and blocks ascending) keeps both the counts and the
    // measured-seconds sum independent of scheduling.
    for (const ThresholdScanStats& chunk : chunk_stats) {
      stats->scanned += chunk.scanned;
      stats->ops += chunk.ops;
      stats->cpu_seconds += chunk.cpu_seconds;
    }
    stats->ops.sort_steps += SortCost(total);
    stats->cpu_seconds += bulk_load_s;
    for (size_t b = 0; b < num_blocks; ++b) {
      stats->ops.rtree_node_visits += block_visits[b];
      stats->cpu_seconds += block_cpu[b];
    }
    stats->final_threshold = final_threshold;
  }
  return merged;
}

}  // namespace skypeer
