#include "skypeer/algo/nn_skyline.h"

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "skypeer/common/macros.h"
#include "skypeer/rtree/rtree.h"

namespace skypeer {

PointSet NnSkyline(const PointSet& input, Subspace u, NnSkylineStats* stats) {
  SKYPEER_CHECK(!u.empty());
  const int k = u.Count();
  PointSet result(input.dims());
  if (input.empty()) {
    if (stats != nullptr) {
      *stats = NnSkylineStats{};
    }
    return result;
  }

  // R-tree over the u-projection, payload = row index.
  std::vector<double> proj(input.size() * static_cast<size_t>(k));
  std::vector<uint64_t> rows(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    int c = 0;
    for (int dim : u) {
      proj[i * k + c] = input[i][dim];
      ++c;
    }
    rows[i] = i;
  }
  RTree tree = RTree::BulkLoad(k, proj.data(), rows.data(), input.size());

  /// A to-do region: only upper bounds ever tighten, so a dominator of
  /// any region point is itself in the region — region NNs are global
  /// skyline points.
  struct Region {
    std::vector<double> hi;
    uint32_t strict_mask;
  };
  const std::vector<double> lo(k, -std::numeric_limits<double>::infinity());
  std::vector<Region> todo;
  todo.push_back(
      Region{std::vector<double>(k, std::numeric_limits<double>::infinity()),
             0});

  NnSkylineStats counters;
  std::set<uint64_t> emitted;
  std::vector<double> nn(k);
  while (!todo.empty()) {
    counters.max_todo = std::max(counters.max_todo, todo.size());
    const Region region = std::move(todo.back());
    todo.pop_back();
    uint64_t row = 0;
    ++counters.nn_queries;
    if (!tree.NearestBySum(lo.data(), region.hi.data(), region.strict_mask,
                           nn.data(), &row)) {
      continue;  // Empty region.
    }
    // Overlapping subregions rediscover points; emit each once.
    if (emitted.insert(row).second) {
      result.AppendFrom(input, row);
    }
    // Split: one subregion per dimension, strictly below the new point.
    for (int d = 0; d < k; ++d) {
      if (nn[d] <= lo[d]) {
        continue;  // Cannot shrink below the data range.
      }
      Region sub;
      sub.hi = region.hi;
      sub.hi[d] = nn[d];
      sub.strict_mask = region.strict_mask | (uint32_t{1} << d);
      todo.push_back(std::move(sub));
    }
  }

  // Equality pass: points tying an emitted point on every queried
  // coordinate share its (non-)domination status, hence are skyline
  // members the strict splits skipped.
  const size_t representatives = result.size();
  std::vector<uint64_t> ties;
  for (size_t i = 0; i < representatives; ++i) {
    int c = 0;
    for (int dim : u) {
      nn[c++] = result[i][dim];
    }
    ties.clear();
    tree.WindowQuery(nn.data(), nn.data(), &ties);
    for (uint64_t row : ties) {
      if (emitted.insert(row).second) {
        result.AppendFrom(input, row);
      }
    }
  }

  if (stats != nullptr) {
    *stats = counters;
  }
  return result;
}

}  // namespace skypeer
