#ifndef SKYPEER_ALGO_BITMAP_SKYLINE_H_
#define SKYPEER_ALGO_BITMAP_SKYLINE_H_

#include "skypeer/common/point_set.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// \brief Bitmap skyline (Tan, Eng & Ooi, VLDB'01 — the paper's
/// reference [16], the first progressive skyline technique).
///
/// Every dimension is rank-discretized over its distinct values and
/// represented as cumulative bit-slices: `P_d(r)` = the set of points
/// whose dimension-d value is among the r smallest ranks. A point `p` is
/// then dominated iff
///
///     (AND_{d in U} P_d(rank_d(p)))  AND  (OR_{d in U} P_d(rank_d(p)-1))
///
/// is non-empty after removing `p` itself — the first factor is
/// "<= p on every queried dimension", the second "strictly < on at least
/// one". The whole dominance test is word-parallel bit arithmetic.
///
/// The structure answers any subspace (slices are per-dimension), and
/// the `ext` flavor swaps the AND factor for strict slices. Memory is
/// O(n * sum_d |distinct values of d|) bits, the method's classic
/// trade-off: superb on low-cardinality (discrete) domains, heavy on
/// continuous ones.
class BitmapSkyline {
 public:
  /// Builds the bit-slices over `points`.
  explicit BitmapSkyline(const PointSet& points);

  /// The skyline of the indexed points on subspace `u`, in input order.
  PointSet Skyline(Subspace u, bool ext = false) const;

  /// True if the indexed point at row `i` is dominated by any other
  /// indexed point on `u` (strictly everywhere when `ext`).
  bool IsDominated(size_t i, Subspace u, bool ext = false) const;

  /// Total bitmap memory in bytes (the method's cost driver).
  size_t bitmap_bytes() const;

 private:
  /// One dimension's cumulative slices: `slices[r]` holds the points
  /// with rank <= r, as packed 64-bit words.
  struct Dimension {
    std::vector<std::vector<uint64_t>> slices;
    /// rank of each point on this dimension.
    std::vector<uint32_t> ranks;
  };

  const std::vector<uint64_t>* SliceAtMost(int dim, size_t i) const;
  const std::vector<uint64_t>* SliceBelow(int dim, size_t i) const;

  PointSet points_;
  size_t words_ = 0;
  std::vector<Dimension> dims_;
};

}  // namespace skypeer

#endif  // SKYPEER_ALGO_BITMAP_SKYLINE_H_
