#include "skypeer/algo/extended_skyline.h"

namespace skypeer {

ResultList ExtendedSkyline(const PointSet& points, Subspace u,
                           ThresholdScanStats* stats) {
  ResultList sorted = BuildSortedByF(points);
  ThresholdScanOptions options;
  options.ext = true;
  ResultList result = SortedSkyline(sorted, u, options, stats);
  if (stats != nullptr) {
    // SortedSkyline overwrote stats; fold in the f-sort's work after it.
    stats->ops.sort_steps += SortCost(points.size());
  }
  return result;
}

ResultList ExtendedSkyline(const PointSet& points, ThresholdScanStats* stats) {
  return ExtendedSkyline(points, Subspace::FullSpace(points.dims()), stats);
}

}  // namespace skypeer
