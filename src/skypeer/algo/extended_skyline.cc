#include "skypeer/algo/extended_skyline.h"

namespace skypeer {

ResultList ExtendedSkyline(const PointSet& points, Subspace u,
                           ThresholdScanStats* stats) {
  ResultList sorted = BuildSortedByF(points);
  ThresholdScanOptions options;
  options.ext = true;
  return SortedSkyline(sorted, u, options, stats);
}

ResultList ExtendedSkyline(const PointSet& points, ThresholdScanStats* stats) {
  return ExtendedSkyline(points, Subspace::FullSpace(points.dims()), stats);
}

}  // namespace skypeer
