#ifndef SKYPEER_ALGO_BNL_H_
#define SKYPEER_ALGO_BNL_H_

#include "skypeer/common/op_counts.h"
#include "skypeer/common/point_set.h"
#include "skypeer/common/subspace.h"

namespace skypeer {

/// \brief Block-Nested-Loops skyline (Börzsönyi et al., ICDE'01), the
/// classic baseline: every point is compared against a window of current
/// candidates.
///
/// Since the library is main-memory, the window is unbounded (a single
/// "block"). Returns the skyline of `input` on subspace `u`, in input
/// order; with `ext` the extended skyline (strict dominance) instead.
/// When `ops` is non-null the scalar dominance calls performed are added
/// to `ops->dominance_tests` and the points consumed to
/// `ops->scan_steps`.
PointSet BnlSkyline(const PointSet& input, Subspace u, bool ext = false,
                    OpCounts* ops = nullptr);

}  // namespace skypeer

#endif  // SKYPEER_ALGO_BNL_H_
