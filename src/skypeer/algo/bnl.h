#ifndef SKYPEER_ALGO_BNL_H_
#define SKYPEER_ALGO_BNL_H_

#include "skypeer/common/op_counts.h"
#include "skypeer/common/point_set.h"
#include "skypeer/common/subspace.h"
#include "skypeer/storage/store_view.h"

namespace skypeer {

/// \brief Block-Nested-Loops skyline (Börzsönyi et al., ICDE'01), the
/// classic baseline: every point is compared against a window of current
/// candidates.
///
/// Since the library is main-memory, the window is unbounded (a single
/// "block"). Returns the skyline of `input` on subspace `u`, in input
/// order; with `ext` the extended skyline (strict dominance) instead.
/// When `ops` is non-null the scalar dominance calls performed are added
/// to `ops->dominance_tests` and the points consumed to
/// `ops->scan_steps`.
PointSet BnlSkyline(const PointSet& input, Subspace u, bool ext = false,
                    OpCounts* ops = nullptr);

/// \brief `BnlSkyline` over a store view (resident or paged).
///
/// The window holds row *copies* instead of indices into the input, so a
/// paged store streams through the cursor exactly once; comparison order,
/// result order and dominance-test counts are identical to `BnlSkyline`
/// over the materialized store. `ops` additionally charges the logical
/// pages of the full-store scan (`ChargeScanPages`) — identically for
/// both store modes.
PointSet BnlSkylineView(const StoreView& input, Subspace u, bool ext = false,
                        OpCounts* ops = nullptr);

}  // namespace skypeer

#endif  // SKYPEER_ALGO_BNL_H_
