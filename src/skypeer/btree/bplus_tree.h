#ifndef SKYPEER_BTREE_BPLUS_TREE_H_
#define SKYPEER_BTREE_BPLUS_TREE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "skypeer/common/macros.h"

namespace skypeer {

/// \brief In-memory B+-tree mapping a double key to 64-bit payloads,
/// duplicate keys allowed.
///
/// This is the index structure SUBSKY (Tao et al., ICDE'06) builds over
/// its one-dimensional transform — the approach the paper's §5.1 mapping
/// is "inspired by". Leaves are chained for ordered scans; the anchored
/// subspace-skyline comparator iterates them in ascending key order and
/// stops at its pruning threshold.
///
/// Operations: `Insert`, `Erase` (one matching (key, payload) pair),
/// ordered iteration from a lower bound via `Cursor`, and structural
/// validation for tests.
class BPlusTree {
 public:
  /// `max_keys` is the per-node capacity (>= 4); minimum fill is half.
  explicit BPlusTree(int max_keys = 32);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts a (key, payload) entry; duplicates (even identical pairs)
  /// are kept.
  void Insert(double key, uint64_t payload);

  /// Removes one entry equal to (key, payload). Returns false if absent.
  bool Erase(double key, uint64_t payload);

  /// True if some entry has exactly this (key, payload).
  bool Contains(double key, uint64_t payload) const;

  /// Appends the payloads of all entries with key in [lo, hi].
  void RangeQuery(double lo, double hi, std::vector<uint64_t>* payloads) const;

  /// Removes all entries.
  void Clear();

  /// Forward iterator over entries in non-decreasing key order.
  class Cursor {
   public:
    /// True while the cursor points at an entry.
    bool Valid() const { return leaf_ != nullptr; }
    double key() const;
    uint64_t payload() const;
    /// Advances to the next entry in key order.
    void Next();

   private:
    friend class BPlusTree;
    Cursor(const struct BPlusTreeNode* leaf, int index)
        : leaf_(leaf), index_(index) {}
    const struct BPlusTreeNode* leaf_;
    int index_;
  };

  /// Cursor at the smallest entry (invalid if empty).
  Cursor Begin() const;

  /// Cursor at the first entry with key >= `key` (invalid if none).
  Cursor LowerBound(double key) const;

  /// Validates structural invariants (sorted keys, fill factors, uniform
  /// depth, separator consistency, leaf chain completeness). Aborts on
  /// violation; returns the entry count. Test helper.
  size_t CheckInvariants() const;

  /// Height of the tree (1 = the root is a leaf).
  int height() const;

 private:
  struct BPlusTreeNode* FindLeaf(double key) const;

  int max_keys_;
  int min_keys_;
  size_t size_ = 0;
  std::unique_ptr<struct BPlusTreeNode> root_;
};

}  // namespace skypeer

#endif  // SKYPEER_BTREE_BPLUS_TREE_H_
