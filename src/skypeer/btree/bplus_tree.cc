#include "skypeer/btree/bplus_tree.h"

#include <algorithm>
#include <limits>

namespace skypeer {

/// B+-tree node. Leaves hold parallel `keys`/`payloads` and chain through
/// `next`; internal nodes hold `keys.size() + 1` children with `keys` as
/// separators: subtree `i` holds keys <= keys[i] <= subtree `i+1` (equal
/// keys may sit on either side of a separator).
struct BPlusTreeNode {
  explicit BPlusTreeNode(bool is_leaf) : leaf(is_leaf) {}

  bool leaf;
  std::vector<double> keys;
  std::vector<uint64_t> payloads;                        // leaf only
  std::vector<std::unique_ptr<BPlusTreeNode>> children;  // internal only
  BPlusTreeNode* next = nullptr;                         // leaf chain
};

namespace {

using Node = BPlusTreeNode;

/// Result of a recursive insert: set when the node split.
struct SplitResult {
  double separator = 0.0;
  std::unique_ptr<Node> right;
};

}  // namespace

BPlusTree::BPlusTree(int max_keys)
    : max_keys_(max_keys),
      min_keys_(max_keys / 2),
      root_(std::make_unique<Node>(/*is_leaf=*/true)) {
  SKYPEER_CHECK(max_keys >= 4);
}

BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

void BPlusTree::Clear() {
  root_ = std::make_unique<Node>(/*is_leaf=*/true);
  size_ = 0;
}

// --- insertion ---------------------------------------------------------------

namespace {

SplitResult SplitLeaf(Node* node) {
  const size_t mid = node->keys.size() / 2;
  auto right = std::make_unique<Node>(/*is_leaf=*/true);
  right->keys.assign(node->keys.begin() + mid, node->keys.end());
  right->payloads.assign(node->payloads.begin() + mid, node->payloads.end());
  node->keys.resize(mid);
  node->payloads.resize(mid);
  right->next = node->next;
  node->next = right.get();
  SplitResult result;
  result.separator = right->keys.front();
  result.right = std::move(right);
  return result;
}

SplitResult SplitInternal(Node* node) {
  const size_t mid = node->keys.size() / 2;
  auto right = std::make_unique<Node>(/*is_leaf=*/false);
  SplitResult result;
  result.separator = node->keys[mid];
  right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
  for (size_t i = mid + 1; i < node->children.size(); ++i) {
    right->children.push_back(std::move(node->children[i]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  result.right = std::move(right);
  return result;
}

SplitResult InsertRec(Node* node, double key, uint64_t payload, int max_keys) {
  if (node->leaf) {
    // Equal keys append after existing ones (upper bound).
    const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    const size_t pos = static_cast<size_t>(it - node->keys.begin());
    node->keys.insert(it, key);
    node->payloads.insert(node->payloads.begin() + pos, payload);
    if (static_cast<int>(node->keys.size()) > max_keys) {
      return SplitLeaf(node);
    }
    return {};
  }
  const size_t child_index = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  SplitResult child_split =
      InsertRec(node->children[child_index].get(), key, payload, max_keys);
  if (child_split.right != nullptr) {
    node->keys.insert(node->keys.begin() + child_index, child_split.separator);
    node->children.insert(node->children.begin() + child_index + 1,
                          std::move(child_split.right));
    if (static_cast<int>(node->keys.size()) > max_keys) {
      return SplitInternal(node);
    }
  }
  return {};
}

}  // namespace

void BPlusTree::Insert(double key, uint64_t payload) {
  SplitResult split = InsertRec(root_.get(), key, payload, max_keys_);
  if (split.right != nullptr) {
    auto new_root = std::make_unique<Node>(/*is_leaf=*/false);
    new_root->keys.push_back(split.separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split.right));
    root_ = std::move(new_root);
  }
  ++size_;
}

// --- deletion ----------------------------------------------------------------

namespace {

/// Restores the fill invariant of `parent->children[c]` after a removal,
/// by borrowing from or merging with an adjacent sibling.
void RebalanceChild(Node* parent, size_t c, int min_keys) {
  Node* child = parent->children[c].get();
  if (static_cast<int>(child->keys.size()) >= min_keys) {
    return;
  }
  Node* left = c > 0 ? parent->children[c - 1].get() : nullptr;
  Node* right =
      c + 1 < parent->children.size() ? parent->children[c + 1].get() : nullptr;

  if (left != nullptr && static_cast<int>(left->keys.size()) > min_keys) {
    // Borrow the left sibling's largest entry/child.
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), left->keys.back());
      child->payloads.insert(child->payloads.begin(), left->payloads.back());
      left->keys.pop_back();
      left->payloads.pop_back();
      parent->keys[c - 1] = child->keys.front();
    } else {
      child->keys.insert(child->keys.begin(), parent->keys[c - 1]);
      parent->keys[c - 1] = left->keys.back();
      left->keys.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
    }
    return;
  }
  if (right != nullptr && static_cast<int>(right->keys.size()) > min_keys) {
    // Borrow the right sibling's smallest entry/child.
    if (child->leaf) {
      child->keys.push_back(right->keys.front());
      child->payloads.push_back(right->payloads.front());
      right->keys.erase(right->keys.begin());
      right->payloads.erase(right->payloads.begin());
      parent->keys[c] = right->keys.front();
    } else {
      child->keys.push_back(parent->keys[c]);
      parent->keys[c] = right->keys.front();
      right->keys.erase(right->keys.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
    }
    return;
  }

  // Merge with a sibling (one of them must exist unless parent is a
  // degenerate root, which the caller shrinks).
  if (left != nullptr) {
    // Merge child into left.
    if (child->leaf) {
      left->keys.insert(left->keys.end(), child->keys.begin(),
                        child->keys.end());
      left->payloads.insert(left->payloads.end(), child->payloads.begin(),
                            child->payloads.end());
      left->next = child->next;
    } else {
      left->keys.push_back(parent->keys[c - 1]);
      left->keys.insert(left->keys.end(), child->keys.begin(),
                        child->keys.end());
      for (auto& grandchild : child->children) {
        left->children.push_back(std::move(grandchild));
      }
    }
    parent->keys.erase(parent->keys.begin() + (c - 1));
    parent->children.erase(parent->children.begin() + c);
  } else if (right != nullptr) {
    // Merge right into child.
    if (child->leaf) {
      child->keys.insert(child->keys.end(), right->keys.begin(),
                         right->keys.end());
      child->payloads.insert(child->payloads.end(), right->payloads.begin(),
                             right->payloads.end());
      child->next = right->next;
    } else {
      child->keys.push_back(parent->keys[c]);
      child->keys.insert(child->keys.end(), right->keys.begin(),
                         right->keys.end());
      for (auto& grandchild : right->children) {
        child->children.push_back(std::move(grandchild));
      }
    }
    parent->keys.erase(parent->keys.begin() + c);
    parent->children.erase(parent->children.begin() + c + 1);
  }
}

bool EraseRec(Node* node, double key, uint64_t payload, int min_keys) {
  if (node->leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    for (; it != node->keys.end() && *it == key; ++it) {
      const size_t pos = static_cast<size_t>(it - node->keys.begin());
      if (node->payloads[pos] == payload) {
        node->keys.erase(it);
        node->payloads.erase(node->payloads.begin() + pos);
        return true;
      }
    }
    return false;
  }
  // Equal keys may straddle separators: try every child whose range can
  // contain `key`.
  const size_t first = static_cast<size_t>(
      std::lower_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  const size_t last = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  for (size_t c = first; c <= last && c < node->children.size(); ++c) {
    if (EraseRec(node->children[c].get(), key, payload, min_keys)) {
      RebalanceChild(node, c, min_keys);
      return true;
    }
  }
  return false;
}

}  // namespace

bool BPlusTree::Erase(double key, uint64_t payload) {
  if (!EraseRec(root_.get(), key, payload, min_keys_)) {
    return false;
  }
  if (!root_->leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children[0]);
  }
  --size_;
  return true;
}

// --- lookup ------------------------------------------------------------------

BPlusTreeNode* BPlusTree::FindLeaf(double key) const {
  Node* node = root_.get();
  while (!node->leaf) {
    const size_t child_index = static_cast<size_t>(
        std::lower_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    node = node->children[child_index].get();
  }
  return node;
}

double BPlusTree::Cursor::key() const {
  SKYPEER_DCHECK(Valid());
  return leaf_->keys[index_];
}

uint64_t BPlusTree::Cursor::payload() const {
  SKYPEER_DCHECK(Valid());
  return leaf_->payloads[index_];
}

void BPlusTree::Cursor::Next() {
  SKYPEER_DCHECK(Valid());
  ++index_;
  while (leaf_ != nullptr &&
         index_ >= static_cast<int>(leaf_->keys.size())) {
    leaf_ = leaf_->next;
    index_ = 0;
  }
}

BPlusTree::Cursor BPlusTree::Begin() const {
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
  }
  if (node->keys.empty()) {
    return Cursor(nullptr, 0);
  }
  return Cursor(node, 0);
}

BPlusTree::Cursor BPlusTree::LowerBound(double key) const {
  const Node* leaf = FindLeaf(key);
  const int index = static_cast<int>(
      std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key) -
      leaf->keys.begin());
  Cursor cursor(leaf, index);
  // The routed leaf can be exhausted (all keys < `key`); walk the chain.
  while (cursor.leaf_ != nullptr &&
         cursor.index_ >= static_cast<int>(cursor.leaf_->keys.size())) {
    cursor.leaf_ = cursor.leaf_->next;
    cursor.index_ = 0;
  }
  return cursor;
}

bool BPlusTree::Contains(double key, uint64_t payload) const {
  for (Cursor cursor = LowerBound(key); cursor.Valid() && cursor.key() == key;
       cursor.Next()) {
    if (cursor.payload() == payload) {
      return true;
    }
  }
  return false;
}

void BPlusTree::RangeQuery(double lo, double hi,
                           std::vector<uint64_t>* payloads) const {
  for (Cursor cursor = LowerBound(lo); cursor.Valid() && cursor.key() <= hi;
       cursor.Next()) {
    payloads->push_back(cursor.payload());
  }
}

// --- validation --------------------------------------------------------------

namespace {

struct ValidationResult {
  size_t entries = 0;
  int depth = 0;
  double min_key = std::numeric_limits<double>::infinity();
  double max_key = -std::numeric_limits<double>::infinity();
  const Node* first_leaf = nullptr;
  const Node* last_leaf = nullptr;
};

ValidationResult ValidateRec(const Node* node, int max_keys, int min_keys,
                             bool is_root) {
  SKYPEER_CHECK(static_cast<int>(node->keys.size()) <= max_keys);
  SKYPEER_CHECK(std::is_sorted(node->keys.begin(), node->keys.end()));
  ValidationResult result;
  if (node->leaf) {
    if (!is_root) {
      SKYPEER_CHECK(static_cast<int>(node->keys.size()) >= min_keys);
    }
    SKYPEER_CHECK(node->payloads.size() == node->keys.size());
    SKYPEER_CHECK(node->children.empty());
    result.entries = node->keys.size();
    result.depth = 1;
    if (!node->keys.empty()) {
      result.min_key = node->keys.front();
      result.max_key = node->keys.back();
    }
    result.first_leaf = node;
    result.last_leaf = node;
    return result;
  }
  SKYPEER_CHECK(node->payloads.empty());
  SKYPEER_CHECK(node->children.size() == node->keys.size() + 1);
  if (!is_root) {
    SKYPEER_CHECK(static_cast<int>(node->keys.size()) >= min_keys);
  } else {
    SKYPEER_CHECK(node->children.size() >= 2);
  }
  int child_depth = -1;
  const Node* previous_last_leaf = nullptr;
  for (size_t c = 0; c < node->children.size(); ++c) {
    ValidationResult child = ValidateRec(node->children[c].get(), max_keys,
                                         min_keys, /*is_root=*/false);
    SKYPEER_CHECK(child.entries > 0);
    // Separator bounds (equal keys may straddle, so bounds are weak
    // inequalities).
    if (c > 0) {
      SKYPEER_CHECK(node->keys[c - 1] <= child.min_key);
    }
    if (c < node->keys.size()) {
      SKYPEER_CHECK(child.max_key <= node->keys[c]);
    }
    if (child_depth == -1) {
      child_depth = child.depth;
      result.first_leaf = child.first_leaf;
      result.min_key = child.min_key;
    } else {
      SKYPEER_CHECK(child_depth == child.depth);
      // Leaf chain stitches consecutive subtrees together.
      SKYPEER_CHECK(previous_last_leaf->next == child.first_leaf);
    }
    previous_last_leaf = child.last_leaf;
    result.entries += child.entries;
    result.max_key = child.max_key;
  }
  result.depth = child_depth + 1;
  result.last_leaf = previous_last_leaf;
  return result;
}

}  // namespace

size_t BPlusTree::CheckInvariants() const {
  ValidationResult result =
      ValidateRec(root_.get(), max_keys_, min_keys_, /*is_root=*/true);
  SKYPEER_CHECK(result.entries == size_);
  // The chain ends at the rightmost leaf.
  SKYPEER_CHECK(result.last_leaf->next == nullptr);
  return result.entries;
}

int BPlusTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

}  // namespace skypeer
