# Empty compiler generated dependencies file for skypeer_cli.
# This may be replaced when dependencies are built.
