file(REMOVE_RECURSE
  "CMakeFiles/skypeer_cli.dir/skypeer_cli.cc.o"
  "CMakeFiles/skypeer_cli.dir/skypeer_cli.cc.o.d"
  "skypeer_cli"
  "skypeer_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skypeer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
