# Empty dependencies file for extended_skyline_test.
# This may be replaced when dependencies are built.
