file(REMOVE_RECURSE
  "CMakeFiles/extended_skyline_test.dir/extended_skyline_test.cc.o"
  "CMakeFiles/extended_skyline_test.dir/extended_skyline_test.cc.o.d"
  "extended_skyline_test"
  "extended_skyline_test.pdb"
  "extended_skyline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
