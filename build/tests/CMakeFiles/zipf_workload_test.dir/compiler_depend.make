# Empty compiler generated dependencies file for zipf_workload_test.
# This may be replaced when dependencies are built.
