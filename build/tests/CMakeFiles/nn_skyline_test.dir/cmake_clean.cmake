file(REMOVE_RECURSE
  "CMakeFiles/nn_skyline_test.dir/nn_skyline_test.cc.o"
  "CMakeFiles/nn_skyline_test.dir/nn_skyline_test.cc.o.d"
  "nn_skyline_test"
  "nn_skyline_test.pdb"
  "nn_skyline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
