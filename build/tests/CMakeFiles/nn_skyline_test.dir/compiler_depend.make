# Empty compiler generated dependencies file for nn_skyline_test.
# This may be replaced when dependencies are built.
