# Empty dependencies file for super_peer_test.
# This may be replaced when dependencies are built.
