file(REMOVE_RECURSE
  "CMakeFiles/super_peer_test.dir/super_peer_test.cc.o"
  "CMakeFiles/super_peer_test.dir/super_peer_test.cc.o.d"
  "super_peer_test"
  "super_peer_test.pdb"
  "super_peer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/super_peer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
