file(REMOVE_RECURSE
  "CMakeFiles/anchored_skyline_test.dir/anchored_skyline_test.cc.o"
  "CMakeFiles/anchored_skyline_test.dir/anchored_skyline_test.cc.o.d"
  "anchored_skyline_test"
  "anchored_skyline_test.pdb"
  "anchored_skyline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchored_skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
