# Empty dependencies file for anchored_skyline_test.
# This may be replaced when dependencies are built.
