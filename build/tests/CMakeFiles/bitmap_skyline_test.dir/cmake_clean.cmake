file(REMOVE_RECURSE
  "CMakeFiles/bitmap_skyline_test.dir/bitmap_skyline_test.cc.o"
  "CMakeFiles/bitmap_skyline_test.dir/bitmap_skyline_test.cc.o.d"
  "bitmap_skyline_test"
  "bitmap_skyline_test.pdb"
  "bitmap_skyline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmap_skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
