# Empty dependencies file for bitmap_skyline_test.
# This may be replaced when dependencies are built.
