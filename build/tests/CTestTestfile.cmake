# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/algo_test[1]_include.cmake")
include("/root/repo/build/tests/extended_skyline_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/churn_test[1]_include.cmake")
include("/root/repo/build/tests/constrained_test[1]_include.cmake")
include("/root/repo/build/tests/skyband_test[1]_include.cmake")
include("/root/repo/build/tests/super_peer_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/anchored_skyline_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/peer_test[1]_include.cmake")
include("/root/repo/build/tests/top_k_dominating_test[1]_include.cmake")
include("/root/repo/build/tests/zipf_workload_test[1]_include.cmake")
include("/root/repo/build/tests/nn_skyline_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/network_edge_test[1]_include.cmake")
include("/root/repo/build/tests/bitmap_skyline_test[1]_include.cmake")
