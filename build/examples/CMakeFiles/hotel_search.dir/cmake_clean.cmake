file(REMOVE_RECURSE
  "CMakeFiles/hotel_search.dir/hotel_search.cc.o"
  "CMakeFiles/hotel_search.dir/hotel_search.cc.o.d"
  "hotel_search"
  "hotel_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotel_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
