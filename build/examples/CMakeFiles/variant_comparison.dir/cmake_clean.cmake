file(REMOVE_RECURSE
  "CMakeFiles/variant_comparison.dir/variant_comparison.cc.o"
  "CMakeFiles/variant_comparison.dir/variant_comparison.cc.o.d"
  "variant_comparison"
  "variant_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
