# Empty compiler generated dependencies file for variant_comparison.
# This may be replaced when dependencies are built.
