# Empty dependencies file for skycube_explorer.
# This may be replaced when dependencies are built.
