file(REMOVE_RECURSE
  "CMakeFiles/skycube_explorer.dir/skycube_explorer.cc.o"
  "CMakeFiles/skycube_explorer.dir/skycube_explorer.cc.o.d"
  "skycube_explorer"
  "skycube_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skycube_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
