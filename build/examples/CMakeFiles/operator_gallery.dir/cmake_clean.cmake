file(REMOVE_RECURSE
  "CMakeFiles/operator_gallery.dir/operator_gallery.cc.o"
  "CMakeFiles/operator_gallery.dir/operator_gallery.cc.o.d"
  "operator_gallery"
  "operator_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
