# Empty compiler generated dependencies file for operator_gallery.
# This may be replaced when dependencies are built.
