# Empty compiler generated dependencies file for skypeer_rtree.
# This may be replaced when dependencies are built.
