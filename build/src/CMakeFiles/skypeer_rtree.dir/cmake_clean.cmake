file(REMOVE_RECURSE
  "CMakeFiles/skypeer_rtree.dir/skypeer/rtree/rtree.cc.o"
  "CMakeFiles/skypeer_rtree.dir/skypeer/rtree/rtree.cc.o.d"
  "libskypeer_rtree.a"
  "libskypeer_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skypeer_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
