file(REMOVE_RECURSE
  "libskypeer_rtree.a"
)
