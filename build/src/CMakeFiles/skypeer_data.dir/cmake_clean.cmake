file(REMOVE_RECURSE
  "CMakeFiles/skypeer_data.dir/skypeer/data/generator.cc.o"
  "CMakeFiles/skypeer_data.dir/skypeer/data/generator.cc.o.d"
  "CMakeFiles/skypeer_data.dir/skypeer/data/partition.cc.o"
  "CMakeFiles/skypeer_data.dir/skypeer/data/partition.cc.o.d"
  "libskypeer_data.a"
  "libskypeer_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skypeer_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
