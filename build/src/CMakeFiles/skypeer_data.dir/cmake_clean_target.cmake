file(REMOVE_RECURSE
  "libskypeer_data.a"
)
