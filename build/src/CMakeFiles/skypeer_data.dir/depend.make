# Empty dependencies file for skypeer_data.
# This may be replaced when dependencies are built.
