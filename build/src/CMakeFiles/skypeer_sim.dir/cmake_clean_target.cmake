file(REMOVE_RECURSE
  "libskypeer_sim.a"
)
