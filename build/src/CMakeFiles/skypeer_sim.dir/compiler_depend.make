# Empty compiler generated dependencies file for skypeer_sim.
# This may be replaced when dependencies are built.
