file(REMOVE_RECURSE
  "CMakeFiles/skypeer_sim.dir/skypeer/sim/simulator.cc.o"
  "CMakeFiles/skypeer_sim.dir/skypeer/sim/simulator.cc.o.d"
  "libskypeer_sim.a"
  "libskypeer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skypeer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
