file(REMOVE_RECURSE
  "CMakeFiles/skypeer_btree.dir/skypeer/btree/bplus_tree.cc.o"
  "CMakeFiles/skypeer_btree.dir/skypeer/btree/bplus_tree.cc.o.d"
  "libskypeer_btree.a"
  "libskypeer_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skypeer_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
