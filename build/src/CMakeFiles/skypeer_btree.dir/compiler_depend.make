# Empty compiler generated dependencies file for skypeer_btree.
# This may be replaced when dependencies are built.
