file(REMOVE_RECURSE
  "libskypeer_btree.a"
)
