file(REMOVE_RECURSE
  "CMakeFiles/skypeer_common.dir/skypeer/common/point_set.cc.o"
  "CMakeFiles/skypeer_common.dir/skypeer/common/point_set.cc.o.d"
  "CMakeFiles/skypeer_common.dir/skypeer/common/status.cc.o"
  "CMakeFiles/skypeer_common.dir/skypeer/common/status.cc.o.d"
  "CMakeFiles/skypeer_common.dir/skypeer/common/subspace.cc.o"
  "CMakeFiles/skypeer_common.dir/skypeer/common/subspace.cc.o.d"
  "libskypeer_common.a"
  "libskypeer_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skypeer_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
