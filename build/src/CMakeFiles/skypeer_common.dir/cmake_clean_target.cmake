file(REMOVE_RECURSE
  "libskypeer_common.a"
)
