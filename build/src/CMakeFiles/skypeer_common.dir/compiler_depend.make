# Empty compiler generated dependencies file for skypeer_common.
# This may be replaced when dependencies are built.
