
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skypeer/common/point_set.cc" "src/CMakeFiles/skypeer_common.dir/skypeer/common/point_set.cc.o" "gcc" "src/CMakeFiles/skypeer_common.dir/skypeer/common/point_set.cc.o.d"
  "/root/repo/src/skypeer/common/status.cc" "src/CMakeFiles/skypeer_common.dir/skypeer/common/status.cc.o" "gcc" "src/CMakeFiles/skypeer_common.dir/skypeer/common/status.cc.o.d"
  "/root/repo/src/skypeer/common/subspace.cc" "src/CMakeFiles/skypeer_common.dir/skypeer/common/subspace.cc.o" "gcc" "src/CMakeFiles/skypeer_common.dir/skypeer/common/subspace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
