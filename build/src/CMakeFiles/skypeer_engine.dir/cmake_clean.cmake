file(REMOVE_RECURSE
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/experiment.cc.o"
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/experiment.cc.o.d"
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/network_builder.cc.o"
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/network_builder.cc.o.d"
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/persistence.cc.o"
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/persistence.cc.o.d"
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/query.cc.o"
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/query.cc.o.d"
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/super_peer.cc.o"
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/super_peer.cc.o.d"
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/wire.cc.o"
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/wire.cc.o.d"
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/zipf_workload.cc.o"
  "CMakeFiles/skypeer_engine.dir/skypeer/engine/zipf_workload.cc.o.d"
  "libskypeer_engine.a"
  "libskypeer_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skypeer_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
