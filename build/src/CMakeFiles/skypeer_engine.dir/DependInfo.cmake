
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skypeer/engine/experiment.cc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/experiment.cc.o" "gcc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/experiment.cc.o.d"
  "/root/repo/src/skypeer/engine/network_builder.cc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/network_builder.cc.o" "gcc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/network_builder.cc.o.d"
  "/root/repo/src/skypeer/engine/persistence.cc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/persistence.cc.o" "gcc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/persistence.cc.o.d"
  "/root/repo/src/skypeer/engine/query.cc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/query.cc.o" "gcc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/query.cc.o.d"
  "/root/repo/src/skypeer/engine/super_peer.cc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/super_peer.cc.o" "gcc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/super_peer.cc.o.d"
  "/root/repo/src/skypeer/engine/wire.cc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/wire.cc.o" "gcc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/wire.cc.o.d"
  "/root/repo/src/skypeer/engine/zipf_workload.cc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/zipf_workload.cc.o" "gcc" "src/CMakeFiles/skypeer_engine.dir/skypeer/engine/zipf_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skypeer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_btree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
