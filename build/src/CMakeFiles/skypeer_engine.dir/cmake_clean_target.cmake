file(REMOVE_RECURSE
  "libskypeer_engine.a"
)
