# Empty compiler generated dependencies file for skypeer_engine.
# This may be replaced when dependencies are built.
