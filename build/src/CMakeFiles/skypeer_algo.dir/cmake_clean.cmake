file(REMOVE_RECURSE
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/anchored_skyline.cc.o"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/anchored_skyline.cc.o.d"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/bitmap_skyline.cc.o"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/bitmap_skyline.cc.o.d"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/bnl.cc.o"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/bnl.cc.o.d"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/constrained.cc.o"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/constrained.cc.o.d"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/divide_conquer.cc.o"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/divide_conquer.cc.o.d"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/extended_skyline.cc.o"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/extended_skyline.cc.o.d"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/merge.cc.o"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/merge.cc.o.d"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/nn_skyline.cc.o"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/nn_skyline.cc.o.d"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/sfs.cc.o"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/sfs.cc.o.d"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/skyband.cc.o"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/skyband.cc.o.d"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/skycube.cc.o"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/skycube.cc.o.d"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/sorted_skyline.cc.o"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/sorted_skyline.cc.o.d"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/top_k_dominating.cc.o"
  "CMakeFiles/skypeer_algo.dir/skypeer/algo/top_k_dominating.cc.o.d"
  "libskypeer_algo.a"
  "libskypeer_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skypeer_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
