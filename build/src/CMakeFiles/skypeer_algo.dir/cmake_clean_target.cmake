file(REMOVE_RECURSE
  "libskypeer_algo.a"
)
