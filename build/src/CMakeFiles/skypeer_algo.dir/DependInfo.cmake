
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skypeer/algo/anchored_skyline.cc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/anchored_skyline.cc.o" "gcc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/anchored_skyline.cc.o.d"
  "/root/repo/src/skypeer/algo/bitmap_skyline.cc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/bitmap_skyline.cc.o" "gcc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/bitmap_skyline.cc.o.d"
  "/root/repo/src/skypeer/algo/bnl.cc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/bnl.cc.o" "gcc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/bnl.cc.o.d"
  "/root/repo/src/skypeer/algo/constrained.cc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/constrained.cc.o" "gcc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/constrained.cc.o.d"
  "/root/repo/src/skypeer/algo/divide_conquer.cc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/divide_conquer.cc.o" "gcc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/divide_conquer.cc.o.d"
  "/root/repo/src/skypeer/algo/extended_skyline.cc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/extended_skyline.cc.o" "gcc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/extended_skyline.cc.o.d"
  "/root/repo/src/skypeer/algo/merge.cc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/merge.cc.o" "gcc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/merge.cc.o.d"
  "/root/repo/src/skypeer/algo/nn_skyline.cc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/nn_skyline.cc.o" "gcc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/nn_skyline.cc.o.d"
  "/root/repo/src/skypeer/algo/sfs.cc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/sfs.cc.o" "gcc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/sfs.cc.o.d"
  "/root/repo/src/skypeer/algo/skyband.cc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/skyband.cc.o" "gcc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/skyband.cc.o.d"
  "/root/repo/src/skypeer/algo/skycube.cc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/skycube.cc.o" "gcc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/skycube.cc.o.d"
  "/root/repo/src/skypeer/algo/sorted_skyline.cc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/sorted_skyline.cc.o" "gcc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/sorted_skyline.cc.o.d"
  "/root/repo/src/skypeer/algo/top_k_dominating.cc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/top_k_dominating.cc.o" "gcc" "src/CMakeFiles/skypeer_algo.dir/skypeer/algo/top_k_dominating.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skypeer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_btree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
