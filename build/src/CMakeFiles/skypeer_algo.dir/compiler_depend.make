# Empty compiler generated dependencies file for skypeer_algo.
# This may be replaced when dependencies are built.
