# Empty compiler generated dependencies file for skypeer_topology.
# This may be replaced when dependencies are built.
