file(REMOVE_RECURSE
  "CMakeFiles/skypeer_topology.dir/skypeer/topology/graph.cc.o"
  "CMakeFiles/skypeer_topology.dir/skypeer/topology/graph.cc.o.d"
  "CMakeFiles/skypeer_topology.dir/skypeer/topology/overlay.cc.o"
  "CMakeFiles/skypeer_topology.dir/skypeer/topology/overlay.cc.o.d"
  "libskypeer_topology.a"
  "libskypeer_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skypeer_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
