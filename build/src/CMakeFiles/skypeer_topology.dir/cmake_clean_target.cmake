file(REMOVE_RECURSE
  "libskypeer_topology.a"
)
