# Empty dependencies file for bench_fig3a_preprocessing.
# This may be replaced when dependencies are built.
