file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3a_preprocessing.dir/bench_fig3a_preprocessing.cc.o"
  "CMakeFiles/bench_fig3a_preprocessing.dir/bench_fig3a_preprocessing.cc.o.d"
  "bench_fig3a_preprocessing"
  "bench_fig3a_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
