# Empty compiler generated dependencies file for bench_fig3c_total_time.
# This may be replaced when dependencies are built.
