# Empty compiler generated dependencies file for bench_fig3f_speedup.
# This may be replaced when dependencies are built.
