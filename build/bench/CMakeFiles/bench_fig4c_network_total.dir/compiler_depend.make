# Empty compiler generated dependencies file for bench_fig4c_network_total.
# This may be replaced when dependencies are built.
