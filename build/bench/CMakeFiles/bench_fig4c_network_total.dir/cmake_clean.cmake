file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4c_network_total.dir/bench_fig4c_network_total.cc.o"
  "CMakeFiles/bench_fig4c_network_total.dir/bench_fig4c_network_total.cc.o.d"
  "bench_fig4c_network_total"
  "bench_fig4c_network_total.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4c_network_total.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
