# Empty dependencies file for bench_fig4a_k_scaling.
# This may be replaced when dependencies are built.
