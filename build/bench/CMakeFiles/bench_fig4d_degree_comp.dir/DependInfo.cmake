
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4d_degree_comp.cc" "bench/CMakeFiles/bench_fig4d_degree_comp.dir/bench_fig4d_degree_comp.cc.o" "gcc" "bench/CMakeFiles/bench_fig4d_degree_comp.dir/bench_fig4d_degree_comp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skypeer_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skypeer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
