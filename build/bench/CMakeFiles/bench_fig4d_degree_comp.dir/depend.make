# Empty dependencies file for bench_fig4d_degree_comp.
# This may be replaced when dependencies are built.
