# Empty dependencies file for bench_fig4e_degree_total.
# This may be replaced when dependencies are built.
