file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4e_degree_total.dir/bench_fig4e_degree_total.cc.o"
  "CMakeFiles/bench_fig4e_degree_total.dir/bench_fig4e_degree_total.cc.o.d"
  "bench_fig4e_degree_total"
  "bench_fig4e_degree_total.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4e_degree_total.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
