# Empty dependencies file for bench_fig3d_volume.
# This may be replaced when dependencies are built.
