# Empty dependencies file for bench_fig4f_points_per_peer.
# This may be replaced when dependencies are built.
