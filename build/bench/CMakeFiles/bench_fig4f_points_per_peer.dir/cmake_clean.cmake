file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4f_points_per_peer.dir/bench_fig4f_points_per_peer.cc.o"
  "CMakeFiles/bench_fig4f_points_per_peer.dir/bench_fig4f_points_per_peer.cc.o.d"
  "bench_fig4f_points_per_peer"
  "bench_fig4f_points_per_peer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4f_points_per_peer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
