# Empty dependencies file for bench_fig3b_comp_time.
# This may be replaced when dependencies are built.
