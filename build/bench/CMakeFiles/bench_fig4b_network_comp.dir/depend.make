# Empty dependencies file for bench_fig4b_network_comp.
# This may be replaced when dependencies are built.
