file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_network_comp.dir/bench_fig4b_network_comp.cc.o"
  "CMakeFiles/bench_fig4b_network_comp.dir/bench_fig4b_network_comp.cc.o.d"
  "bench_fig4b_network_comp"
  "bench_fig4b_network_comp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_network_comp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
