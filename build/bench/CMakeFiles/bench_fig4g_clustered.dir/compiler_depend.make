# Empty compiler generated dependencies file for bench_fig4g_clustered.
# This may be replaced when dependencies are built.
