file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4g_clustered.dir/bench_fig4g_clustered.cc.o"
  "CMakeFiles/bench_fig4g_clustered.dir/bench_fig4g_clustered.cc.o.d"
  "bench_fig4g_clustered"
  "bench_fig4g_clustered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4g_clustered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
