# Empty compiler generated dependencies file for bench_ablation_extstore.
# This may be replaced when dependencies are built.
