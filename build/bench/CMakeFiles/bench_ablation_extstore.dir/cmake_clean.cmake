file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_extstore.dir/bench_ablation_extstore.cc.o"
  "CMakeFiles/bench_ablation_extstore.dir/bench_ablation_extstore.cc.o.d"
  "bench_ablation_extstore"
  "bench_ablation_extstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_extstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
