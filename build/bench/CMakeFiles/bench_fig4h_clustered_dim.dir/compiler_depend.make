# Empty compiler generated dependencies file for bench_fig4h_clustered_dim.
# This may be replaced when dependencies are built.
