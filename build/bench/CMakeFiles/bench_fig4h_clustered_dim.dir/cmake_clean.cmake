file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4h_clustered_dim.dir/bench_fig4h_clustered_dim.cc.o"
  "CMakeFiles/bench_fig4h_clustered_dim.dir/bench_fig4h_clustered_dim.cc.o.d"
  "bench_fig4h_clustered_dim"
  "bench_fig4h_clustered_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4h_clustered_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
