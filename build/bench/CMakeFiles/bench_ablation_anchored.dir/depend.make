# Empty dependencies file for bench_ablation_anchored.
# This may be replaced when dependencies are built.
