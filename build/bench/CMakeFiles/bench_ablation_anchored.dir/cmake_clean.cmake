file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_anchored.dir/bench_ablation_anchored.cc.o"
  "CMakeFiles/bench_ablation_anchored.dir/bench_ablation_anchored.cc.o.d"
  "bench_ablation_anchored"
  "bench_ablation_anchored.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_anchored.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
