# Empty compiler generated dependencies file for bench_fig3e_query_dim.
# This may be replaced when dependencies are built.
