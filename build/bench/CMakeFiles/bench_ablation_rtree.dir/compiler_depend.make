# Empty compiler generated dependencies file for bench_ablation_rtree.
# This may be replaced when dependencies are built.
