// Tests for the synthetic data generators and the horizontal partitioner.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/data/partition.h"

namespace skypeer {
namespace {

TEST(Generator, UniformShapeAndRange) {
  Rng rng(1);
  PointSet data = GenerateUniform(6, 1000, &rng, 500);
  ASSERT_EQ(data.size(), 1000u);
  EXPECT_EQ(data.dims(), 6);
  EXPECT_EQ(data.id(0), 500u);
  EXPECT_EQ(data.id(999), 1499u);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int d = 0; d < 6; ++d) {
      EXPECT_GE(data[i][d], 0.0);
      EXPECT_LT(data[i][d], 1.0);
    }
  }
}

TEST(Generator, UniformMomentsRoughlyCorrect) {
  Rng rng(2);
  PointSet data = GenerateUniform(2, 20000, &rng);
  double sum = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    sum += data[i][0];
  }
  EXPECT_NEAR(sum / data.size(), 0.5, 0.01);
}

TEST(Generator, UniformDeterministicBySeed) {
  Rng rng1(42);
  Rng rng2(42);
  PointSet a = GenerateUniform(3, 50, &rng1);
  PointSet b = GenerateUniform(3, 50, &rng2);
  EXPECT_EQ(a.values(), b.values());
}

TEST(Generator, ClusteredConcentratesAroundCentroid) {
  Rng rng(3);
  const std::vector<double> centroid = {0.5, 0.5, 0.5};
  PointSet data = GenerateClustered(centroid, 20000, kClusterStdDev, &rng);
  // Mean near centroid, per-axis variance near 0.025 (clipping at the
  // unit-box boundary shrinks it slightly).
  for (int d = 0; d < 3; ++d) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
      sum += data[i][d];
      sum_sq += data[i][d] * data[i][d];
    }
    const double mean = sum / data.size();
    const double var = sum_sq / data.size() - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.01);
    EXPECT_NEAR(var, 0.025, 0.004);
  }
}

TEST(Generator, ClusteredClampsToUnitBox) {
  Rng rng(4);
  const std::vector<double> centroid = {0.01, 0.99};
  PointSet data = GenerateClustered(centroid, 5000, kClusterStdDev, &rng);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_GE(data[i][0], 0.0);
    EXPECT_LE(data[i][0], 1.0);
    EXPECT_GE(data[i][1], 0.0);
    EXPECT_LE(data[i][1], 1.0);
  }
}

TEST(Generator, RandomCentroidInUnitBox) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> c = RandomCentroid(7, &rng);
    ASSERT_EQ(c.size(), 7u);
    for (double v : c) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(Generator, CorrelatedHasPositiveCorrelation) {
  Rng rng(6);
  PointSet data = GenerateCorrelated(2, 20000, &rng);
  double sx = 0;
  double sy = 0;
  double sxy = 0;
  double sxx = 0;
  double syy = 0;
  const double n = static_cast<double>(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    const double x = data[i][0];
    const double y = data[i][1];
    sx += x;
    sy += y;
    sxy += x * y;
    sxx += x * x;
    syy += y * y;
  }
  const double corr = (n * sxy - sx * sy) /
                      std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  EXPECT_GT(corr, 0.8);
}

TEST(Generator, AnticorrelatedHasNegativeCorrelation) {
  Rng rng(7);
  PointSet data = GenerateAnticorrelated(2, 20000, &rng);
  double sx = 0;
  double sy = 0;
  double sxy = 0;
  double sxx = 0;
  double syy = 0;
  const double n = static_cast<double>(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    const double x = data[i][0];
    const double y = data[i][1];
    sx += x;
    sy += y;
    sxy += x * y;
    sxx += x * x;
    syy += y * y;
  }
  const double corr = (n * sxy - sx * sy) /
                      std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  EXPECT_LT(corr, -0.3);
}

TEST(Generator, DistributionNames) {
  EXPECT_STREQ(DistributionName(Distribution::kUniform), "uniform");
  EXPECT_STREQ(DistributionName(Distribution::kClustered), "clustered");
  EXPECT_STREQ(DistributionName(Distribution::kCorrelated), "correlated");
  EXPECT_STREQ(DistributionName(Distribution::kAnticorrelated),
               "anticorrelated");
}

// --- partitioner --------------------------------------------------------

TEST(Partition, EvenSlicesCoverEverythingOnce) {
  Rng rng(8);
  PointSet all = GenerateUniform(3, 103, &rng);
  const auto parts = PartitionEvenly(all, 10);
  ASSERT_EQ(parts.size(), 10u);
  size_t total = 0;
  std::set<PointId> seen;
  for (const PointSet& part : parts) {
    total += part.size();
    EXPECT_TRUE(part.size() == 10 || part.size() == 11);
    for (PointId id : part.Ids()) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(total, all.size());
  EXPECT_EQ(seen.size(), all.size());
}

TEST(Partition, SinglePart) {
  Rng rng(9);
  PointSet all = GenerateUniform(2, 20, &rng);
  const auto parts = PartitionEvenly(all, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 20u);
}

TEST(Partition, MorePartsThanPoints) {
  Rng rng(10);
  PointSet all = GenerateUniform(2, 3, &rng);
  const auto parts = PartitionEvenly(all, 5);
  ASSERT_EQ(parts.size(), 5u);
  size_t total = 0;
  for (const PointSet& part : parts) {
    EXPECT_LE(part.size(), 1u);
    total += part.size();
  }
  EXPECT_EQ(total, 3u);
}

TEST(Partition, ShuffledCoversEverythingOnce) {
  Rng data_rng(11);
  PointSet all = GenerateUniform(2, 57, &data_rng);
  Rng rng(12);
  const auto parts = PartitionShuffled(all, 7, &rng);
  std::set<PointId> seen;
  for (const PointSet& part : parts) {
    for (PointId id : part.Ids()) {
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), all.size());
}

TEST(Partition, ShuffledActuallyShuffles) {
  Rng data_rng(13);
  PointSet all = GenerateUniform(1, 100, &data_rng);
  Rng rng(14);
  const auto parts = PartitionShuffled(all, 2, &rng);
  // The first slice of an unshuffled split would be ids 0..49 exactly.
  std::vector<PointId> ids = parts[0].Ids();
  std::sort(ids.begin(), ids.end());
  bool is_prefix = true;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] != i) {
      is_prefix = false;
      break;
    }
  }
  EXPECT_FALSE(is_prefix);
}

}  // namespace
}  // namespace skypeer
