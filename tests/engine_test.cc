// Integration tests of the SKYPEER engine: the paper's correctness claim
// (exact answers for every variant, §5.2), pre-processing semantics
// (§5.3), flood/duplicate handling, metrics invariants and the workload
// driver.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/common/subspace.h"
#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

NetworkConfig SmallConfig(uint64_t seed) {
  NetworkConfig config;
  config.num_peers = 60;
  config.num_super_peers = 12;
  config.points_per_peer = 40;
  config.dims = 5;
  config.degree_sp = 3.0;
  config.seed = seed;
  config.retain_peer_data = true;
  return config;
}

// --- configuration validation -------------------------------------------

TEST(NetworkConfigValidation, RejectsBadValues) {
  NetworkConfig config;
  config.dims = 0;
  EXPECT_FALSE(SkypeerNetwork::Validate(config).ok());
  config.dims = 40;
  EXPECT_FALSE(SkypeerNetwork::Validate(config).ok());
  config = NetworkConfig();
  config.points_per_peer = -1;
  EXPECT_FALSE(SkypeerNetwork::Validate(config).ok());
  config = NetworkConfig();
  config.bandwidth = 0.0;
  EXPECT_FALSE(SkypeerNetwork::Validate(config).ok());
  config = NetworkConfig();
  config.latency = -0.5;
  EXPECT_FALSE(SkypeerNetwork::Validate(config).ok());
  config = NetworkConfig();
  config.num_peers = 10;
  config.num_super_peers = 11;
  EXPECT_FALSE(SkypeerNetwork::Validate(config).ok());
  EXPECT_TRUE(SkypeerNetwork::Validate(NetworkConfig()).ok());
}

// --- pre-processing -------------------------------------------------------

TEST(Preprocess, StatsAreConsistent) {
  SkypeerNetwork network(SmallConfig(1));
  PreprocessStats stats = network.Preprocess();
  EXPECT_EQ(stats.total_points, 60u * 40u);
  EXPECT_GT(stats.peer_ext_points, 0u);
  EXPECT_LE(stats.peer_ext_points, stats.total_points);
  EXPECT_LE(stats.super_peer_ext_points, stats.peer_ext_points);
  EXPECT_GT(stats.sel_p(), 0.0);
  EXPECT_LE(stats.sel_p(), 1.0);
  EXPECT_LE(stats.sel_sp(), stats.sel_p());
  EXPECT_LE(stats.sel_ratio(), 1.0);
}

TEST(Preprocess, SuperPeerStoreIsExtSkylineOfItsPeersData) {
  // Rebuild the per-super-peer union from retained data using peer ids
  // and verify each store equals its ext-skyline.
  NetworkConfig config = SmallConfig(2);
  SkypeerNetwork network(config);
  network.Preprocess();
  const PointSet& all = network.all_data();
  for (int sp = 0; sp < network.num_super_peers(); ++sp) {
    PointSet sp_data(config.dims);
    for (int peer : network.overlay().super_peer_peers[sp]) {
      // Peer `peer` generated ids [peer*ppp, (peer+1)*ppp).
      const PointId lo = static_cast<PointId>(peer) * config.points_per_peer;
      const PointId hi = lo + config.points_per_peer;
      for (size_t i = 0; i < all.size(); ++i) {
        if (all.id(i) >= lo && all.id(i) < hi) {
          sp_data.AppendFrom(all, i);
        }
      }
    }
    const std::vector<PointId> expected = SortedIds(BnlSkyline(
        sp_data, Subspace::FullSpace(config.dims), /*ext=*/true));
    EXPECT_EQ(SortedIds(network.super_peer(sp).store().points), expected)
        << "super-peer " << sp;
    EXPECT_TRUE(network.super_peer(sp).store().IsSorted());
  }
}

TEST(Preprocess, StoresTotalMatchesStats) {
  SkypeerNetwork network(SmallConfig(3));
  PreprocessStats stats = network.Preprocess();
  size_t total = 0;
  for (int sp = 0; sp < network.num_super_peers(); ++sp) {
    total += network.super_peer(sp).store().size();
  }
  EXPECT_EQ(total, stats.super_peer_ext_points);
}

// --- exactness sweep (the paper's correctness theorem) --------------------

class ExactnessTest : public ::testing::TestWithParam<
                          std::tuple<Distribution, Variant, int>> {};

TEST_P(ExactnessTest, DistributedAnswerEqualsCentralizedSkyline) {
  const auto [distribution, variant, k] = GetParam();
  NetworkConfig config = SmallConfig(1000 + static_cast<int>(distribution));
  config.distribution = distribution;
  SkypeerNetwork network(config);
  network.Preprocess();

  const auto tasks =
      GenerateWorkload(config.dims, k, /*num_queries=*/6,
                       network.num_super_peers(), /*seed=*/99 + k);
  for (const QueryTask& task : tasks) {
    QueryResult result =
        network.ExecuteQuery(task.subspace, task.initiator_sp, variant);
    EXPECT_EQ(SortedIds(result.skyline.points),
              SortedIds(network.GroundTruthSkyline(task.subspace)))
        << VariantName(variant) << " u=" << task.subspace.ToString()
        << " init=" << task.initiator_sp;
    EXPECT_TRUE(result.skyline.IsSorted());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactnessTest,
    ::testing::Combine(::testing::Values(Distribution::kUniform,
                                         Distribution::kClustered,
                                         Distribution::kAnticorrelated),
                       ::testing::ValuesIn(kAllVariants),
                       ::testing::Values(1, 2, 3, 5)),
    [](const auto& info) {
      return std::string(DistributionName(std::get<0>(info.param))) + "_" +
             VariantName(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

// Exhaustive over all subspaces of a small network.
TEST(Exactness, AllSubspacesAllVariants) {
  NetworkConfig config = SmallConfig(7);
  config.dims = 4;
  SkypeerNetwork network(config);
  network.Preprocess();
  for (Subspace u : AllSubspaces(4)) {
    const std::vector<PointId> truth =
        SortedIds(network.GroundTruthSkyline(u));
    for (Variant variant : kAllVariants) {
      QueryResult result = network.ExecuteQuery(u, /*initiator_sp=*/0,
                                                variant);
      EXPECT_EQ(SortedIds(result.skyline.points), truth)
          << VariantName(variant) << " " << u.ToString();
    }
  }
}

// Dense backbone floods produce many duplicate query deliveries; the
// protocol must still terminate and stay exact.
TEST(Exactness, DenseBackboneWithDuplicates) {
  NetworkConfig config = SmallConfig(8);
  config.num_super_peers = 10;
  config.degree_sp = 8.0;  // Nearly complete graph.
  SkypeerNetwork network(config);
  network.Preprocess();
  const Subspace u = Subspace::FromDims({0, 1, 4});
  const auto truth = SortedIds(network.GroundTruthSkyline(u));
  for (Variant variant : kAllVariants) {
    QueryResult result = network.ExecuteQuery(u, 4, variant);
    EXPECT_EQ(SortedIds(result.skyline.points), truth)
        << VariantName(variant);
  }
}

TEST(Exactness, SingleSuperPeerDegenerateNetwork) {
  NetworkConfig config = SmallConfig(9);
  config.num_super_peers = 1;
  SkypeerNetwork network(config);
  network.Preprocess();
  const Subspace u = Subspace::FromDims({1, 2});
  const auto truth = SortedIds(network.GroundTruthSkyline(u));
  for (Variant variant : kAllVariants) {
    QueryResult result = network.ExecuteQuery(u, 0, variant);
    EXPECT_EQ(SortedIds(result.skyline.points), truth);
    EXPECT_EQ(result.metrics.bytes_transferred, 0u);  // Nobody to talk to.
  }
}

TEST(Exactness, TwoSuperPeers) {
  NetworkConfig config = SmallConfig(10);
  config.num_super_peers = 2;
  SkypeerNetwork network(config);
  network.Preprocess();
  const Subspace u = Subspace::FullSpace(config.dims);
  const auto truth = SortedIds(network.GroundTruthSkyline(u));
  for (Variant variant : kAllVariants) {
    for (int initiator : {0, 1}) {
      QueryResult result = network.ExecuteQuery(u, initiator, variant);
      EXPECT_EQ(SortedIds(result.skyline.points), truth);
    }
  }
}

TEST(Exactness, EmptyPeersYieldEmptySkyline) {
  NetworkConfig config = SmallConfig(11);
  config.points_per_peer = 0;
  SkypeerNetwork network(config);
  network.Preprocess();
  for (Variant variant : kAllVariants) {
    QueryResult result =
        network.ExecuteQuery(Subspace::FromDims({0}), 0, variant);
    EXPECT_TRUE(result.skyline.empty()) << VariantName(variant);
  }
}

TEST(Exactness, FilterBroadcastStaysExact) {
  // The sampled filter-point broadcast is a pure communication
  // optimization: with --filter-set on, every variant still answers with
  // the exact centralized skyline (filter points prune only what the
  // initiator's own merge input would have removed).
  NetworkConfig config = SmallConfig(21);
  config.filter_set_size = 8;
  SkypeerNetwork network(config);
  network.Preprocess();
  const auto tasks = GenerateWorkload(config.dims, 3, /*num_queries=*/6,
                                      network.num_super_peers(), /*seed=*/33);
  for (const QueryTask& task : tasks) {
    const auto truth = SortedIds(network.GroundTruthSkyline(task.subspace));
    for (Variant variant : kAllVariants) {
      QueryResult result =
          network.ExecuteQuery(task.subspace, task.initiator_sp, variant);
      EXPECT_EQ(SortedIds(result.skyline.points), truth)
          << VariantName(variant) << " u=" << task.subspace.ToString();
    }
    QueryResult pipe = network.ExecuteQuery(task.subspace, task.initiator_sp,
                                            Variant::kPipeline);
    EXPECT_EQ(SortedIds(pipe.skyline.points), truth);
  }
}

TEST(Exactness, RepeatedQueriesAreStable) {
  NetworkConfig config = SmallConfig(12);
  SkypeerNetwork network(config);
  network.Preprocess();
  const Subspace u = Subspace::FromDims({0, 3});
  const auto first =
      SortedIds(network.ExecuteQuery(u, 2, Variant::kFTPM).skyline.points);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(
        SortedIds(network.ExecuteQuery(u, 2, Variant::kFTPM).skyline.points),
        first);
  }
}

TEST(Exactness, ResultIdsAreUnique) {
  NetworkConfig config = SmallConfig(13);
  SkypeerNetwork network(config);
  network.Preprocess();
  QueryResult result =
      network.ExecuteQuery(Subspace::FromDims({0, 1}), 1, Variant::kRTPM);
  const auto ids = SortedIds(result.skyline.points);
  const std::set<PointId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), ids.size());
}

// --- metrics invariants ----------------------------------------------------

TEST(Metrics, BasicSanity) {
  SkypeerNetwork network(SmallConfig(14));
  network.Preprocess();
  for (Variant variant : kAllVariants) {
    QueryResult result =
        network.ExecuteQuery(Subspace::FromDims({0, 2}), 3, variant);
    EXPECT_GT(result.metrics.total_time_s, 0.0);
    EXPECT_GE(result.metrics.total_time_s,
              result.metrics.computational_time_s);
    EXPECT_GT(result.metrics.bytes_transferred, 0u);
    EXPECT_GE(result.metrics.messages,
              static_cast<uint64_t>(network.num_super_peers() - 1));
    EXPECT_EQ(result.metrics.result_size, result.skyline.size());
  }
}

// With zero CPU the byte accounting is fully deterministic, enabling the
// paper's qualitative claims to be asserted exactly.
class DeterministicVolumeTest : public ::testing::Test {
 protected:
  static NetworkConfig Config(uint64_t seed) {
    NetworkConfig config = SmallConfig(seed);
    config.measure_cpu = false;
    return config;
  }
};

TEST_F(DeterministicVolumeTest, ProgressiveMergingNeverShipsMore) {
  SkypeerNetwork network(Config(15));
  network.Preprocess();
  const auto tasks = GenerateWorkload(5, 3, 8, network.num_super_peers(), 5);
  for (const QueryTask& task : tasks) {
    const auto ftfm =
        network.ExecuteQuery(task.subspace, task.initiator_sp, Variant::kFTFM);
    const auto ftpm =
        network.ExecuteQuery(task.subspace, task.initiator_sp, Variant::kFTPM);
    const auto rtfm =
        network.ExecuteQuery(task.subspace, task.initiator_sp, Variant::kRTFM);
    const auto rtpm =
        network.ExecuteQuery(task.subspace, task.initiator_sp, Variant::kRTPM);
    EXPECT_LE(ftpm.metrics.bytes_transferred, ftfm.metrics.bytes_transferred);
    EXPECT_LE(rtpm.metrics.bytes_transferred, rtfm.metrics.bytes_transferred);
  }
}

TEST_F(DeterministicVolumeTest, RefinedThresholdNeverShipsMoreThanFixed) {
  SkypeerNetwork network(Config(16));
  network.Preprocess();
  const auto tasks = GenerateWorkload(5, 2, 8, network.num_super_peers(), 6);
  for (const QueryTask& task : tasks) {
    const auto ftfm =
        network.ExecuteQuery(task.subspace, task.initiator_sp, Variant::kFTFM);
    const auto rtfm =
        network.ExecuteQuery(task.subspace, task.initiator_sp, Variant::kRTFM);
    EXPECT_LE(rtfm.metrics.bytes_transferred, ftfm.metrics.bytes_transferred);
  }
}

TEST_F(DeterministicVolumeTest, ThresholdedVariantsBeatNaive) {
  SkypeerNetwork network(Config(17));
  network.Preprocess();
  const auto tasks = GenerateWorkload(5, 3, 8, network.num_super_peers(), 7);
  for (const QueryTask& task : tasks) {
    const auto naive = network.ExecuteQuery(task.subspace, task.initiator_sp,
                                            Variant::kNaive);
    for (Variant variant :
         {Variant::kFTFM, Variant::kFTPM, Variant::kRTFM, Variant::kRTPM}) {
      const auto v =
          network.ExecuteQuery(task.subspace, task.initiator_sp, variant);
      EXPECT_LE(v.metrics.bytes_transferred, naive.metrics.bytes_transferred)
          << VariantName(variant);
    }
  }
}

TEST_F(DeterministicVolumeTest, VolumeIsSeedDeterministic) {
  const Subspace u = Subspace::FromDims({0, 4});
  uint64_t bytes[2];
  for (int round = 0; round < 2; ++round) {
    SkypeerNetwork network(Config(18));
    network.Preprocess();
    bytes[round] =
        network.ExecuteQuery(u, 1, Variant::kFTPM).metrics.bytes_transferred;
  }
  EXPECT_EQ(bytes[0], bytes[1]);
}

// --- cache filter path vs. fresh threshold scan ----------------------------

/// Full content signature of a result list: (id, f, coords) per entry.
std::vector<std::vector<double>> FullSignature(const ResultList& list) {
  std::vector<std::vector<double>> rows;
  rows.reserve(list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    std::vector<double> row;
    row.push_back(static_cast<double>(list.points.id(i)));
    row.push_back(list.f[i]);
    for (int d = 0; d < list.points.dims(); ++d) {
      row.push_back(list.points[i][d]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(CacheEquivalence, FilterPathRepliesMatchFreshScansForAllVariants) {
  // The cache path answers a query by replaying the cached unconstrained
  // scan trace under the incoming threshold; the reply — and hence
  // every transfer-derived metric — must match the fresh threshold scan
  // for the same (subspace, threshold_in) at every super-peer. (A cached
  // skyline *list* would not suffice: the store is f-sorted in full
  // space while dominance is tested in the query subspace, so the
  // truncated scan can keep a point whose dominator lies beyond the
  // threshold cutoff — the unconstrained skyline has already dropped
  // it.) RT*M tightens thresholds mid-stream along the flood, so
  // repeating each subspace from several initiators exercises cache hits
  // under different (and progressively tighter) incoming thresholds.
  NetworkConfig scan_config = SmallConfig(19);
  scan_config.measure_cpu = false;  // Virtual clocks must be exact.
  NetworkConfig cache_config = scan_config;
  cache_config.enable_cache = true;
  cache_config.scan_chunk_size = 37;

  SkypeerNetwork scan_network(scan_config);
  scan_network.Preprocess();
  SkypeerNetwork cache_network(cache_config);
  cache_network.Preprocess();

  const std::vector<Subspace> subspaces = {Subspace::FromDims({0, 2}),
                                           Subspace::FromDims({1, 3, 4}),
                                           Subspace::FromDims({2})};
  for (Variant variant : kAllVariants) {
    for (int round = 0; round < 3; ++round) {  // Round > 0: cache hits.
      for (size_t s = 0; s < subspaces.size(); ++s) {
        const int initiator = static_cast<int>((round * 5 + s * 3) %
                                               scan_network.num_super_peers());
        const QueryResult scan =
            scan_network.ExecuteQuery(subspaces[s], initiator, variant);
        const QueryResult cache =
            cache_network.ExecuteQuery(subspaces[s], initiator, variant);
        const std::string context = std::string(VariantName(variant)) +
                                    " u=" + subspaces[s].ToString() +
                                    " round " + std::to_string(round);
        EXPECT_EQ(FullSignature(cache.skyline), FullSignature(scan.skyline))
            << context;
        EXPECT_EQ(cache.metrics.bytes_transferred,
                  scan.metrics.bytes_transferred)
            << context;
        EXPECT_EQ(cache.metrics.messages, scan.metrics.messages) << context;
        EXPECT_EQ(cache.metrics.result_size, scan.metrics.result_size)
            << context;
        EXPECT_EQ(cache.metrics.total_time_s, scan.metrics.total_time_s)
            << context;
        EXPECT_EQ(cache.metrics.computational_time_s,
                  scan.metrics.computational_time_s)
            << context;
        EXPECT_EQ(cache.metrics.super_peers_participated,
                  scan.metrics.super_peers_participated)
            << context;
      }
    }
  }
}

// --- workload driver -------------------------------------------------------

TEST(Workload, GeneratesRequestedShape) {
  const auto tasks = GenerateWorkload(8, 3, 100, 50, 42);
  ASSERT_EQ(tasks.size(), 100u);
  for (const QueryTask& task : tasks) {
    EXPECT_EQ(task.subspace.Count(), 3);
    EXPECT_TRUE(Subspace::FullSpace(8).IsSupersetOf(task.subspace));
    EXPECT_GE(task.initiator_sp, 0);
    EXPECT_LT(task.initiator_sp, 50);
  }
}

TEST(Workload, DeterministicBySeed) {
  const auto a = GenerateWorkload(8, 3, 20, 10, 1);
  const auto b = GenerateWorkload(8, 3, 20, 10, 1);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].subspace, b[i].subspace);
    EXPECT_EQ(a[i].initiator_sp, b[i].initiator_sp);
  }
}

TEST(Workload, CoversDifferentSubspaces) {
  const auto tasks = GenerateWorkload(8, 3, 60, 10, 3);
  std::set<uint32_t> masks;
  for (const QueryTask& task : tasks) {
    masks.insert(task.subspace.mask());
  }
  EXPECT_GT(masks.size(), 10u);  // C(8,3) = 56 possible.
}

TEST(Workload, RunWorkloadAggregates) {
  SkypeerNetwork network(SmallConfig(19));
  network.Preprocess();
  const auto tasks = GenerateWorkload(5, 2, 5, network.num_super_peers(), 9);
  const AggregateMetrics aggregate =
      RunWorkload(&network, tasks, Variant::kFTPM);
  EXPECT_EQ(aggregate.queries, 5u);
  EXPECT_GT(aggregate.avg_total_s(), 0.0);
  EXPECT_GT(aggregate.avg_kb(), 0.0);
  EXPECT_GT(aggregate.avg_result(), 0.0);
  EXPECT_GT(aggregate.avg_messages(), 0.0);
}

}  // namespace
}  // namespace skypeer

namespace skypeer {
namespace {

TEST(MetricSeries, Statistics) {
  MetricSeries series;
  EXPECT_EQ(series.mean(), 0.0);
  EXPECT_EQ(series.Percentile(50), 0.0);
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    series.Add(v);
  }
  EXPECT_EQ(series.count(), 5u);
  EXPECT_DOUBLE_EQ(series.mean(), 3.0);
  EXPECT_EQ(series.min(), 1.0);
  EXPECT_EQ(series.max(), 5.0);
  EXPECT_EQ(series.Percentile(50), 3.0);
  EXPECT_EQ(series.Percentile(100), 5.0);
  EXPECT_EQ(series.Percentile(0), 1.0);
  EXPECT_EQ(series.Percentile(90), 5.0);
  EXPECT_EQ(series.Percentile(20), 1.0);
}

TEST(MetricSeries, DegenerateCasesAreDefinedNotNan) {
  // Empty series and percentile edges are defined values, never NaN or
  // out-of-bounds reads: mean/min/max of an empty series are 0.0,
  // Percentile clamps rank 0 to the minimum, and a zero-query aggregate
  // reports zeros across the board.
  MetricSeries empty;
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.min(), 0.0);
  EXPECT_EQ(empty.max(), 0.0);
  EXPECT_EQ(empty.Percentile(0), 0.0);
  EXPECT_EQ(empty.Percentile(100), 0.0);

  MetricSeries one;
  one.Add(2.5);
  EXPECT_EQ(one.Percentile(0), 2.5);  // Rank clamp: Percentile(0) ≡ min.
  EXPECT_EQ(one.Percentile(100), 2.5);
  EXPECT_EQ(one.min(), 2.5);

  AggregateMetrics aggregate;
  EXPECT_EQ(aggregate.queries, 0u);
  EXPECT_EQ(aggregate.avg_kb(), 0.0);
  EXPECT_EQ(aggregate.avg_total_s(), 0.0);
  EXPECT_EQ(aggregate.avg_coverage(), 0.0);
}

TEST(Metrics, CoverageIsDefinedWithoutAReliabilityReport) {
  // With the reliable protocol off, super_peers_total stays 0 — no
  // coverage report exists, and that degenerate case is defined as full
  // coverage rather than a division by zero.
  QueryMetrics metrics;
  EXPECT_EQ(metrics.super_peers_total, 0);
  EXPECT_EQ(metrics.coverage(), 1.0);
  metrics.super_peers_total = 8;
  metrics.super_peers_reached = 2;
  EXPECT_DOUBLE_EQ(metrics.coverage(), 0.25);
}

TEST(MetricSeries, AggregatePopulatesAllSeries) {
  AggregateMetrics aggregate;
  QueryMetrics metrics;
  metrics.computational_time_s = 0.5;
  metrics.total_time_s = 2.0;
  metrics.bytes_transferred = 2048;
  metrics.messages = 10;
  metrics.result_size = 7;
  metrics.store_points_scanned = 100;
  aggregate.Add(metrics);
  aggregate.Add(metrics);
  EXPECT_EQ(aggregate.queries, 2u);
  EXPECT_DOUBLE_EQ(aggregate.avg_comp_s(), 0.5);
  EXPECT_DOUBLE_EQ(aggregate.avg_total_s(), 2.0);
  EXPECT_DOUBLE_EQ(aggregate.avg_kb(), 2.0);
  EXPECT_DOUBLE_EQ(aggregate.avg_messages(), 10.0);
  EXPECT_DOUBLE_EQ(aggregate.avg_result(), 7.0);
  EXPECT_DOUBLE_EQ(aggregate.scanned.mean(), 100.0);
}

TEST(HypercubeNetwork, QueriesStayExact) {
  NetworkConfig config = SmallConfig(77);
  config.topology = BackboneTopology::kHypercube;
  SkypeerNetwork network(config);
  network.Preprocess();
  const Subspace u = Subspace::FromDims({0, 2});
  const auto truth = SortedIds(network.GroundTruthSkyline(u));
  for (Variant variant : kAllVariants) {
    QueryResult result = network.ExecuteQuery(u, 3, variant);
    EXPECT_EQ(SortedIds(result.skyline.points), truth) << VariantName(variant);
  }
  QueryResult pipe = network.ExecuteQuery(u, 3, Variant::kPipeline);
  EXPECT_EQ(SortedIds(pipe.skyline.points), truth);
}

}  // namespace
}  // namespace skypeer
