// Tests of the nearest-neighbor skyline algorithm (Kossmann et al.,
// VLDB'02) and of RTree::NearestBySum.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <tuple>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/nn_skyline.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/rtree/rtree.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

// --- RTree::NearestBySum ----------------------------------------------------

TEST(NearestBySum, EmptyTree) {
  RTree tree(2);
  const double lo[] = {-1e300, -1e300};
  const double hi[] = {1e300, 1e300};
  double point[2];
  uint64_t payload = 0;
  EXPECT_FALSE(tree.NearestBySum(lo, hi, 0, point, &payload));
}

TEST(NearestBySum, FindsGlobalMinSum) {
  Rng rng(1);
  PointSet data = GenerateUniform(3, 500, &rng);
  RTree tree(3);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(data[i], i);
  }
  const double lo[] = {-1e300, -1e300, -1e300};
  const double hi[] = {1e300, 1e300, 1e300};
  double point[3];
  uint64_t payload = 0;
  ASSERT_TRUE(tree.NearestBySum(lo, hi, 0, point, &payload));

  double best = std::numeric_limits<double>::infinity();
  size_t best_row = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    const double sum = data[i][0] + data[i][1] + data[i][2];
    if (sum < best) {
      best = sum;
      best_row = i;
    }
  }
  EXPECT_EQ(payload, best_row);
  EXPECT_DOUBLE_EQ(point[0] + point[1] + point[2], best);
}

TEST(NearestBySum, RespectsBoxAndStrictness) {
  PointSet data(2, {{0.1, 0.1}, {0.5, 0.5}, {0.5, 0.9}, {0.8, 0.2}});
  RTree tree(2);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(data[i], i);
  }
  double point[2];
  uint64_t payload = 0;
  // Box excluding the global minimum.
  const double lo[] = {0.3, 0.0};
  const double hi[] = {0.5, 1.0};
  ASSERT_TRUE(tree.NearestBySum(lo, hi, 0, point, &payload));
  EXPECT_EQ(payload, 1u);  // (0.5, 0.5) has the smallest sum in the box.

  // Strict upper bound on dim 0 excludes x == 0.5 entirely.
  EXPECT_FALSE(tree.NearestBySum(lo, hi, /*strict_upper_mask=*/1u, point,
                                 &payload));

  // Strict on dim 1 only: (0.5, 0.5) still qualifies (0.5 < 1.0).
  ASSERT_TRUE(tree.NearestBySum(lo, hi, /*strict_upper_mask=*/2u, point,
                                &payload));
  EXPECT_EQ(payload, 1u);
}

TEST(NearestBySum, MatchesBruteForceOnRandomBoxes) {
  Rng rng(2);
  PointSet data = GenerateUniform(3, 400, &rng);
  RTree tree(3);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(data[i], i);
  }
  for (int trial = 0; trial < 40; ++trial) {
    double lo[3];
    double hi[3];
    for (int d = 0; d < 3; ++d) {
      lo[d] = rng.Uniform() * 0.5;
      hi[d] = lo[d] + rng.Uniform() * 0.5;
    }
    const uint32_t mask = static_cast<uint32_t>(rng.UniformInt(0, 7));
    double best = std::numeric_limits<double>::infinity();
    bool found = false;
    for (size_t i = 0; i < data.size(); ++i) {
      bool inside = true;
      double sum = 0.0;
      for (int d = 0; d < 3; ++d) {
        const bool strict = (mask >> d & 1u) != 0;
        if (data[i][d] < lo[d] ||
            (strict ? data[i][d] >= hi[d] : data[i][d] > hi[d])) {
          inside = false;
          break;
        }
        sum += data[i][d];
      }
      if (inside && sum < best) {
        best = sum;
        found = true;
      }
    }
    double point[3];
    uint64_t payload = 0;
    ASSERT_EQ(tree.NearestBySum(lo, hi, mask, point, &payload), found);
    if (found) {
      EXPECT_DOUBLE_EQ(point[0] + point[1] + point[2], best);
    }
  }
}

// --- NN-skyline ---------------------------------------------------------------

class NnSkylineTest
    : public ::testing::TestWithParam<std::tuple<Distribution, int, int>> {};

TEST_P(NnSkylineTest, MatchesBnl) {
  const auto [distribution, dims, n] = GetParam();
  Rng rng(300 + dims + n);
  PointSet data(dims);
  switch (distribution) {
    case Distribution::kUniform:
      data = GenerateUniform(dims, n, &rng);
      break;
    case Distribution::kClustered:
      data = GenerateClustered(RandomCentroid(dims, &rng), n, kClusterStdDev,
                               &rng);
      break;
    case Distribution::kAnticorrelated:
      data = GenerateAnticorrelated(dims, n, &rng);
      break;
    default:
      data = GenerateCorrelated(dims, n, &rng);
      break;
  }
  std::vector<Subspace> subspaces = {Subspace::FullSpace(dims),
                                     Subspace::FromDims({0})};
  if (dims >= 3) {
    subspaces.push_back(Subspace::FromDims({0, 2}));
  }
  for (Subspace u : subspaces) {
    NnSkylineStats stats;
    PointSet result = NnSkyline(data, u, &stats);
    EXPECT_EQ(SortedIds(result), SortedIds(BnlSkyline(data, u)))
        << DistributionName(distribution) << " u=" << u.ToString();
    EXPECT_GE(stats.nn_queries, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NnSkylineTest,
    ::testing::Combine(::testing::Values(Distribution::kUniform,
                                         Distribution::kClustered,
                                         Distribution::kCorrelated,
                                         Distribution::kAnticorrelated),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(50, 500)),
    [](const auto& info) {
      return std::string(DistributionName(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(NnSkyline, EmptyInput) {
  NnSkylineStats stats;
  EXPECT_TRUE(NnSkyline(PointSet(3), Subspace::FullSpace(3), &stats).empty());
  EXPECT_EQ(stats.nn_queries, 0u);
}

TEST(NnSkyline, GriddedDataWithTies) {
  // Duplicate coordinates exercise the strict splits + equality pass.
  Rng rng(7);
  PointSet data(3);
  for (int i = 0; i < 300; ++i) {
    double row[3];
    for (int d = 0; d < 3; ++d) {
      row[d] = rng.UniformInt(0, 3) / 4.0;
    }
    data.Append(row, i);
  }
  for (Subspace u : AllSubspaces(3)) {
    EXPECT_EQ(SortedIds(NnSkyline(data, u)), SortedIds(BnlSkyline(data, u)))
        << u.ToString();
  }
}

TEST(NnSkyline, ExactDuplicatePoints) {
  PointSet data(2, {{0.2, 0.8}, {0.2, 0.8}, {0.2, 0.8}, {0.5, 0.5}});
  const auto result = SortedIds(NnSkyline(data, Subspace::FullSpace(2)));
  EXPECT_EQ(result, (std::vector<PointId>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace skypeer
