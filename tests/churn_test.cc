// Tests of dynamic membership (peer joins and departures — the paper's
// §5.3 join protocol and its future-work failure handling) and of the
// per-subspace result cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

NetworkConfig DynamicConfig(uint64_t seed) {
  NetworkConfig config;
  config.num_peers = 40;
  config.num_super_peers = 8;
  config.points_per_peer = 30;
  config.dims = 4;
  config.seed = seed;
  config.retain_peer_data = true;
  config.dynamic_membership = true;
  return config;
}

void ExpectAllVariantsExact(SkypeerNetwork* network, Subspace u) {
  const auto truth = SortedIds(network->GroundTruthSkyline(u));
  for (Variant variant : kAllVariants) {
    QueryResult result = network->ExecuteQuery(u, 0, variant);
    EXPECT_EQ(SortedIds(result.skyline.points), truth) << VariantName(variant);
  }
}

TEST(Churn, JoinRequiresDynamicMembership) {
  NetworkConfig config = DynamicConfig(1);
  config.dynamic_membership = false;
  SkypeerNetwork network(config);
  network.Preprocess();
  Rng rng(9);
  Status status = network.JoinPeer(0, GenerateUniform(4, 10, &rng));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(Churn, JoinBeforePreprocessFails) {
  SkypeerNetwork network(DynamicConfig(2));
  Rng rng(9);
  Status status = network.JoinPeer(0, GenerateUniform(4, 10, &rng));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(Churn, JoinRejectsBadArguments) {
  SkypeerNetwork network(DynamicConfig(3));
  network.Preprocess();
  Rng rng(9);
  EXPECT_EQ(network.JoinPeer(99, GenerateUniform(4, 10, &rng)).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(network.JoinPeer(0, GenerateUniform(3, 10, &rng)).code(),
            StatusCode::kInvalidArgument);
}

TEST(Churn, JoinedPeerContributesToQueries) {
  SkypeerNetwork network(DynamicConfig(4));
  network.Preprocess();
  const Subspace u = Subspace::FromDims({0, 2});

  // A joining peer with an unbeatable point.
  PointSet data(4, {{0.0, 0.0, 0.0, 0.0}});
  int peer_id = -1;
  ASSERT_TRUE(network.JoinPeer(3, std::move(data), &peer_id).ok());
  EXPECT_EQ(peer_id, 40);

  QueryResult result = network.ExecuteQuery(u, 5, Variant::kFTPM);
  // The origin dominates everything strictly: it is the only skyline
  // point, under the id assigned at join time (40 peers * 30 points).
  ASSERT_EQ(result.skyline.size(), 1u);
  EXPECT_EQ(result.skyline.points.id(0), 40u * 30u);
  ExpectAllVariantsExact(&network, u);
}

TEST(Churn, SequenceOfJoinsStaysExact) {
  SkypeerNetwork network(DynamicConfig(5));
  network.Preprocess();
  Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    const int sp = static_cast<int>(rng.UniformInt(0, 7));
    ASSERT_TRUE(
        network.JoinPeer(sp, GenerateUniform(4, 20, &rng)).ok());
    ExpectAllVariantsExact(&network, Subspace::FromDims({1, 3}));
    ExpectAllVariantsExact(&network, Subspace::FullSpace(4));
  }
  EXPECT_EQ(network.total_points(), 40u * 30u + 5u * 20u);
}

TEST(Churn, RemoveUnknownPeerFails) {
  SkypeerNetwork network(DynamicConfig(6));
  network.Preprocess();
  EXPECT_EQ(network.RemovePeer(1234).code(), StatusCode::kNotFound);
}

TEST(Churn, RemovedPeerStopsContributing) {
  SkypeerNetwork network(DynamicConfig(7));
  network.Preprocess();
  const Subspace u = Subspace::FullSpace(4);

  // Find the peer owning the first skyline point and remove it.
  QueryResult before = network.ExecuteQuery(u, 0, Variant::kFTFM);
  ASSERT_FALSE(before.skyline.empty());
  const PointId witness = before.skyline.points.id(0);
  const int owner = static_cast<int>(witness / 30);  // 30 points per peer.
  ASSERT_TRUE(network.RemovePeer(owner).ok());

  QueryResult after = network.ExecuteQuery(u, 0, Variant::kFTFM);
  for (PointId id : after.skyline.points.Ids()) {
    EXPECT_TRUE(id < static_cast<PointId>(owner) * 30 ||
                id >= static_cast<PointId>(owner + 1) * 30);
  }
  ExpectAllVariantsExact(&network, u);
  EXPECT_EQ(network.total_points(), 39u * 30u);
}

TEST(Churn, RemovalResurrectsExtDominatedPoints) {
  // The reason super-peers retain per-peer lists: removing the peer that
  // ext-dominated a point must bring that point back.
  SkypeerNetwork network(DynamicConfig(8));
  network.Preprocess();
  const Subspace u = Subspace::FromDims({0, 1});

  // Join a dominator peer, then remove it again.
  int dominator_id = -1;
  PointSet dominator(4, {{0.0, 0.0, 0.0, 0.0}});
  const auto truth_before = SortedIds(network.GroundTruthSkyline(u));
  ASSERT_TRUE(network.JoinPeer(0, std::move(dominator), &dominator_id).ok());
  QueryResult dominated = network.ExecuteQuery(u, 0, Variant::kRTPM);
  EXPECT_EQ(dominated.skyline.size(), 1u);

  ASSERT_TRUE(network.RemovePeer(dominator_id).ok());
  QueryResult restored = network.ExecuteQuery(u, 0, Variant::kRTPM);
  EXPECT_EQ(SortedIds(restored.skyline.points), truth_before);
}

TEST(Churn, DrainAllPeersOfOneSuperPeer) {
  SkypeerNetwork network(DynamicConfig(9));
  network.Preprocess();
  const std::vector<int> victims = network.overlay().super_peer_peers[2];
  for (int peer : victims) {
    ASSERT_TRUE(network.RemovePeer(peer).ok());
  }
  EXPECT_TRUE(network.super_peer(2).store().empty());
  ExpectAllVariantsExact(&network, Subspace::FromDims({0, 3}));
}

TEST(Churn, DrainedSuperPeerStillAnswersWithChunkedScans) {
  // Regression: rebuilding a store from zero retained lists used to trip
  // `SKYPEER_CHECK(dims > 0)` inside MergeSortedSkylines (no dims
  // source). The drained super-peer must keep serving exact answers —
  // here additionally with the chunked parallel scan path enabled at the
  // surviving super-peers.
  NetworkConfig config = DynamicConfig(11);
  config.scan_chunk_size = 16;
  SkypeerNetwork network(config);
  network.Preprocess();
  const std::vector<int> victims = network.overlay().super_peer_peers[3];
  ASSERT_FALSE(victims.empty());
  for (int peer : victims) {
    ASSERT_TRUE(network.RemovePeer(peer).ok());
  }
  EXPECT_TRUE(network.super_peer(3).store().empty());
  ExpectAllVariantsExact(&network, Subspace::FromDims({1, 2}));
  ExpectAllVariantsExact(&network, Subspace::FullSpace(4));
  // The drained super-peer can also initiate.
  const QueryResult from_drained =
      network.ExecuteQuery(Subspace::FromDims({0, 3}), 3, Variant::kRTPM);
  EXPECT_EQ(SortedIds(from_drained.skyline.points),
            SortedIds(network.GroundTruthSkyline(Subspace::FromDims({0, 3}))));
}

TEST(Churn, MixedJoinLeaveStress) {
  SkypeerNetwork network(DynamicConfig(10));
  network.Preprocess();
  Rng rng(4242);
  std::vector<int> removable;
  for (int peer = 0; peer < 40; ++peer) {
    removable.push_back(peer);
  }
  for (int round = 0; round < 12; ++round) {
    if (rng.Uniform() < 0.5 || removable.empty()) {
      int peer_id = -1;
      const int sp = static_cast<int>(rng.UniformInt(0, 7));
      ASSERT_TRUE(network
                      .JoinPeer(sp,
                                GenerateUniform(4, 1 + round % 25, &rng),
                                &peer_id)
                      .ok());
      removable.push_back(peer_id);
    } else {
      const size_t victim = rng.UniformInt(0, removable.size() - 1);
      ASSERT_TRUE(network.RemovePeer(removable[victim]).ok());
      removable.erase(removable.begin() + victim);
    }
  }
  ExpectAllVariantsExact(&network, Subspace::FromDims({0, 1, 2}));
  ExpectAllVariantsExact(&network, Subspace::FullSpace(4));
}

// --- result cache ---------------------------------------------------------

TEST(Cache, CachedQueriesStayExact) {
  NetworkConfig config = DynamicConfig(11);
  config.enable_cache = true;
  SkypeerNetwork network(config);
  network.Preprocess();
  const auto tasks = GenerateWorkload(4, 2, 10, network.num_super_peers(), 3);
  for (const QueryTask& task : tasks) {
    const auto truth = SortedIds(network.GroundTruthSkyline(task.subspace));
    for (Variant variant : kAllVariants) {
      QueryResult result =
          network.ExecuteQuery(task.subspace, task.initiator_sp, variant);
      EXPECT_EQ(SortedIds(result.skyline.points), truth)
          << VariantName(variant) << " " << task.subspace.ToString();
    }
    // Repeat (cache hit path).
    QueryResult repeat =
        network.ExecuteQuery(task.subspace, task.initiator_sp,
                             Variant::kRTPM);
    EXPECT_EQ(SortedIds(repeat.skyline.points), truth);
  }
}

TEST(Cache, InvalidatedByChurn) {
  NetworkConfig config = DynamicConfig(12);
  config.enable_cache = true;
  SkypeerNetwork network(config);
  network.Preprocess();
  const Subspace u = Subspace::FromDims({0, 2});

  // Warm the cache.
  network.ExecuteQuery(u, 0, Variant::kFTPM);

  // Join a dominator: the cached lists must not leak stale results.
  ASSERT_TRUE(network.JoinPeer(1, PointSet(4, {{0, 0, 0, 0}})).ok());
  QueryResult result = network.ExecuteQuery(u, 0, Variant::kFTPM);
  ASSERT_EQ(result.skyline.size(), 1u);
  EXPECT_EQ(SortedIds(result.skyline.points),
            SortedIds(network.GroundTruthSkyline(u)));
}

TEST(Cache, MatchesUncachedAcrossSeeds) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    NetworkConfig cached_config = DynamicConfig(seed);
    cached_config.enable_cache = true;
    NetworkConfig plain_config = DynamicConfig(seed);

    SkypeerNetwork cached(cached_config);
    cached.Preprocess();
    SkypeerNetwork plain(plain_config);
    plain.Preprocess();

    const auto tasks = GenerateWorkload(4, 3, 6, cached.num_super_peers(),
                                        seed);
    for (const QueryTask& task : tasks) {
      for (Variant variant : {Variant::kFTFM, Variant::kRTPM}) {
        const auto a = SortedIds(
            cached.ExecuteQuery(task.subspace, task.initiator_sp, variant)
                .skyline.points);
        const auto b = SortedIds(
            plain.ExecuteQuery(task.subspace, task.initiator_sp, variant)
                .skyline.points);
        EXPECT_EQ(a, b);
      }
    }
  }
}

}  // namespace
}  // namespace skypeer
