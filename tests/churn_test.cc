// Tests of dynamic membership (peer joins and departures — the paper's
// §5.3 join protocol and its future-work failure handling) and of the
// per-subspace result cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/common/dominance_batch.h"
#include "skypeer/common/rng.h"
#include "skypeer/common/thread_pool.h"
#include "skypeer/data/generator.h"
#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"
#include "skypeer/storage/buffer_manager.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

NetworkConfig DynamicConfig(uint64_t seed) {
  NetworkConfig config;
  config.num_peers = 40;
  config.num_super_peers = 8;
  config.points_per_peer = 30;
  config.dims = 4;
  config.seed = seed;
  config.retain_peer_data = true;
  config.dynamic_membership = true;
  return config;
}

void ExpectAllVariantsExact(SkypeerNetwork* network, Subspace u) {
  const auto truth = SortedIds(network->GroundTruthSkyline(u));
  for (Variant variant : kAllVariants) {
    QueryResult result = network->ExecuteQuery(u, 0, variant);
    EXPECT_EQ(SortedIds(result.skyline.points), truth) << VariantName(variant);
  }
}

TEST(Churn, JoinRequiresDynamicMembership) {
  NetworkConfig config = DynamicConfig(1);
  config.dynamic_membership = false;
  SkypeerNetwork network(config);
  network.Preprocess();
  Rng rng(9);
  Status status = network.JoinPeer(0, GenerateUniform(4, 10, &rng));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(Churn, JoinBeforePreprocessFails) {
  SkypeerNetwork network(DynamicConfig(2));
  Rng rng(9);
  Status status = network.JoinPeer(0, GenerateUniform(4, 10, &rng));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(Churn, JoinRejectsBadArguments) {
  SkypeerNetwork network(DynamicConfig(3));
  network.Preprocess();
  Rng rng(9);
  EXPECT_EQ(network.JoinPeer(99, GenerateUniform(4, 10, &rng)).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(network.JoinPeer(0, GenerateUniform(3, 10, &rng)).code(),
            StatusCode::kInvalidArgument);
}

TEST(Churn, JoinedPeerContributesToQueries) {
  SkypeerNetwork network(DynamicConfig(4));
  network.Preprocess();
  const Subspace u = Subspace::FromDims({0, 2});

  // A joining peer with an unbeatable point.
  PointSet data(4, {{0.0, 0.0, 0.0, 0.0}});
  int peer_id = -1;
  ASSERT_TRUE(network.JoinPeer(3, std::move(data), &peer_id).ok());
  EXPECT_EQ(peer_id, 40);

  QueryResult result = network.ExecuteQuery(u, 5, Variant::kFTPM);
  // The origin dominates everything strictly: it is the only skyline
  // point, under the id assigned at join time (40 peers * 30 points).
  ASSERT_EQ(result.skyline.size(), 1u);
  EXPECT_EQ(result.skyline.points.id(0), 40u * 30u);
  ExpectAllVariantsExact(&network, u);
}

TEST(Churn, SequenceOfJoinsStaysExact) {
  SkypeerNetwork network(DynamicConfig(5));
  network.Preprocess();
  Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    const int sp = static_cast<int>(rng.UniformInt(0, 7));
    ASSERT_TRUE(
        network.JoinPeer(sp, GenerateUniform(4, 20, &rng)).ok());
    ExpectAllVariantsExact(&network, Subspace::FromDims({1, 3}));
    ExpectAllVariantsExact(&network, Subspace::FullSpace(4));
  }
  EXPECT_EQ(network.total_points(), 40u * 30u + 5u * 20u);
}

TEST(Churn, RemoveUnknownPeerFails) {
  SkypeerNetwork network(DynamicConfig(6));
  network.Preprocess();
  EXPECT_EQ(network.RemovePeer(1234).code(), StatusCode::kNotFound);
}

TEST(Churn, RemovedPeerStopsContributing) {
  SkypeerNetwork network(DynamicConfig(7));
  network.Preprocess();
  const Subspace u = Subspace::FullSpace(4);

  // Find the peer owning the first skyline point and remove it.
  QueryResult before = network.ExecuteQuery(u, 0, Variant::kFTFM);
  ASSERT_FALSE(before.skyline.empty());
  const PointId witness = before.skyline.points.id(0);
  const int owner = static_cast<int>(witness / 30);  // 30 points per peer.
  ASSERT_TRUE(network.RemovePeer(owner).ok());

  QueryResult after = network.ExecuteQuery(u, 0, Variant::kFTFM);
  for (PointId id : after.skyline.points.Ids()) {
    EXPECT_TRUE(id < static_cast<PointId>(owner) * 30 ||
                id >= static_cast<PointId>(owner + 1) * 30);
  }
  ExpectAllVariantsExact(&network, u);
  EXPECT_EQ(network.total_points(), 39u * 30u);
}

TEST(Churn, RemovalResurrectsExtDominatedPoints) {
  // The reason super-peers retain per-peer lists: removing the peer that
  // ext-dominated a point must bring that point back.
  SkypeerNetwork network(DynamicConfig(8));
  network.Preprocess();
  const Subspace u = Subspace::FromDims({0, 1});

  // Join a dominator peer, then remove it again.
  int dominator_id = -1;
  PointSet dominator(4, {{0.0, 0.0, 0.0, 0.0}});
  const auto truth_before = SortedIds(network.GroundTruthSkyline(u));
  ASSERT_TRUE(network.JoinPeer(0, std::move(dominator), &dominator_id).ok());
  QueryResult dominated = network.ExecuteQuery(u, 0, Variant::kRTPM);
  EXPECT_EQ(dominated.skyline.size(), 1u);

  ASSERT_TRUE(network.RemovePeer(dominator_id).ok());
  QueryResult restored = network.ExecuteQuery(u, 0, Variant::kRTPM);
  EXPECT_EQ(SortedIds(restored.skyline.points), truth_before);
}

TEST(Churn, DrainAllPeersOfOneSuperPeer) {
  SkypeerNetwork network(DynamicConfig(9));
  network.Preprocess();
  const std::vector<int> victims = network.overlay().super_peer_peers[2];
  for (int peer : victims) {
    ASSERT_TRUE(network.RemovePeer(peer).ok());
  }
  EXPECT_TRUE(network.super_peer(2).store().empty());
  ExpectAllVariantsExact(&network, Subspace::FromDims({0, 3}));
}

TEST(Churn, DrainedSuperPeerStillAnswersWithChunkedScans) {
  // Regression: rebuilding a store from zero retained lists used to trip
  // `SKYPEER_CHECK(dims > 0)` inside MergeSortedSkylines (no dims
  // source). The drained super-peer must keep serving exact answers —
  // here additionally with the chunked parallel scan path enabled at the
  // surviving super-peers.
  NetworkConfig config = DynamicConfig(11);
  config.scan_chunk_size = 16;
  SkypeerNetwork network(config);
  network.Preprocess();
  const std::vector<int> victims = network.overlay().super_peer_peers[3];
  ASSERT_FALSE(victims.empty());
  for (int peer : victims) {
    ASSERT_TRUE(network.RemovePeer(peer).ok());
  }
  EXPECT_TRUE(network.super_peer(3).store().empty());
  ExpectAllVariantsExact(&network, Subspace::FromDims({1, 2}));
  ExpectAllVariantsExact(&network, Subspace::FullSpace(4));
  // The drained super-peer can also initiate.
  const QueryResult from_drained =
      network.ExecuteQuery(Subspace::FromDims({0, 3}), 3, Variant::kRTPM);
  EXPECT_EQ(SortedIds(from_drained.skyline.points),
            SortedIds(network.GroundTruthSkyline(Subspace::FromDims({0, 3}))));
}

TEST(Churn, MixedJoinLeaveStress) {
  SkypeerNetwork network(DynamicConfig(10));
  network.Preprocess();
  Rng rng(4242);
  std::vector<int> removable;
  for (int peer = 0; peer < 40; ++peer) {
    removable.push_back(peer);
  }
  for (int round = 0; round < 12; ++round) {
    if (rng.Uniform() < 0.5 || removable.empty()) {
      int peer_id = -1;
      const int sp = static_cast<int>(rng.UniformInt(0, 7));
      ASSERT_TRUE(network
                      .JoinPeer(sp,
                                GenerateUniform(4, 1 + round % 25, &rng),
                                &peer_id)
                      .ok());
      removable.push_back(peer_id);
    } else {
      const size_t victim = rng.UniformInt(0, removable.size() - 1);
      ASSERT_TRUE(network.RemovePeer(removable[victim]).ok());
      removable.erase(removable.begin() + victim);
    }
  }
  ExpectAllVariantsExact(&network, Subspace::FromDims({0, 1, 2}));
  ExpectAllVariantsExact(&network, Subspace::FullSpace(4));
}

// --- result cache ---------------------------------------------------------

TEST(Cache, CachedQueriesStayExact) {
  NetworkConfig config = DynamicConfig(11);
  config.enable_cache = true;
  SkypeerNetwork network(config);
  network.Preprocess();
  const auto tasks = GenerateWorkload(4, 2, 10, network.num_super_peers(), 3);
  for (const QueryTask& task : tasks) {
    const auto truth = SortedIds(network.GroundTruthSkyline(task.subspace));
    for (Variant variant : kAllVariants) {
      QueryResult result =
          network.ExecuteQuery(task.subspace, task.initiator_sp, variant);
      EXPECT_EQ(SortedIds(result.skyline.points), truth)
          << VariantName(variant) << " " << task.subspace.ToString();
    }
    // Repeat (cache hit path).
    QueryResult repeat =
        network.ExecuteQuery(task.subspace, task.initiator_sp,
                             Variant::kRTPM);
    EXPECT_EQ(SortedIds(repeat.skyline.points), truth);
  }
}

TEST(Cache, InvalidatedByChurn) {
  NetworkConfig config = DynamicConfig(12);
  config.enable_cache = true;
  SkypeerNetwork network(config);
  network.Preprocess();
  const Subspace u = Subspace::FromDims({0, 2});

  // Warm the cache.
  network.ExecuteQuery(u, 0, Variant::kFTPM);

  // Join a dominator: the cached lists must not leak stale results.
  ASSERT_TRUE(network.JoinPeer(1, PointSet(4, {{0, 0, 0, 0}})).ok());
  QueryResult result = network.ExecuteQuery(u, 0, Variant::kFTPM);
  ASSERT_EQ(result.skyline.size(), 1u);
  EXPECT_EQ(SortedIds(result.skyline.points),
            SortedIds(network.GroundTruthSkyline(u)));
}

TEST(Cache, MatchesUncachedAcrossSeeds) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    NetworkConfig cached_config = DynamicConfig(seed);
    cached_config.enable_cache = true;
    NetworkConfig plain_config = DynamicConfig(seed);

    SkypeerNetwork cached(cached_config);
    cached.Preprocess();
    SkypeerNetwork plain(plain_config);
    plain.Preprocess();

    const auto tasks = GenerateWorkload(4, 3, 6, cached.num_super_peers(),
                                        seed);
    for (const QueryTask& task : tasks) {
      for (Variant variant : {Variant::kFTFM, Variant::kRTPM}) {
        const auto a = SortedIds(
            cached.ExecuteQuery(task.subspace, task.initiator_sp, variant)
                .skyline.points);
        const auto b = SortedIds(
            plain.ExecuteQuery(task.subspace, task.initiator_sp, variant)
                .skyline.points);
        EXPECT_EQ(a, b);
      }
    }
  }
}

// --- epoch-versioned stores ---------------------------------------------

std::vector<std::vector<double>> StoreSignature(const ResultList& list) {
  std::vector<std::vector<double>> rows;
  rows.reserve(list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    std::vector<double> row;
    row.push_back(static_cast<double>(list.points.id(i)));
    row.push_back(list.f[i]);
    for (int d = 0; d < list.points.dims(); ++d) {
      row.push_back(list.points[i][d]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(Epochs, PinServesRetiredStoreUntilUnpin) {
  Rng rng(3);
  SuperPeer sp(0, /*dims=*/3, WireModel{});
  EXPECT_EQ(sp.store_epoch(), 0u);

  const ResultList first = BuildSortedByF(GenerateUniform(3, 64, &rng));
  sp.SetStore(first);
  EXPECT_EQ(sp.store_epoch(), 1u);
  EXPECT_EQ(sp.RetiredEpochCount(), 0u);

  // A pinned epoch survives a later install and keeps serving scans.
  const uint64_t pinned = sp.PinStoreEpoch();
  EXPECT_EQ(pinned, 1u);
  const ResultList second = BuildSortedByF(GenerateUniform(3, 32, &rng));
  sp.SetStore(second);
  EXPECT_EQ(sp.store_epoch(), 2u);
  EXPECT_EQ(sp.RetiredEpochCount(), 1u);
  EXPECT_EQ(sp.View().size(), first.size());
  EXPECT_EQ(sp.MaterializeStore().size(), second.size());

  // Releasing the last pin drops the retired epoch and the view snaps to
  // the current store.
  sp.UnpinStoreEpoch(pinned);
  EXPECT_EQ(sp.RetiredEpochCount(), 0u);
  EXPECT_EQ(sp.View().size(), second.size());

  // Pinning with no intervening install retires nothing.
  const uint64_t current = sp.PinStoreEpoch();
  EXPECT_EQ(current, 2u);
  sp.UnpinStoreEpoch(current);
  EXPECT_EQ(sp.RetiredEpochCount(), 0u);
  EXPECT_EQ(sp.View().size(), second.size());
}

TEST(Epochs, PagedPinKeepsRetiredPagesReadable) {
  Rng rng(4);
  BufferManager buffer(/*page_size=*/4096, /*capacity=*/4);
  SuperPeer sp(0, /*dims=*/3, WireModel{});
  sp.ConfigurePaging(&buffer, 4096);

  const ResultList first = BuildSortedByF(GenerateUniform(3, 96, &rng));
  sp.SetStore(first);
  const uint64_t pinned = sp.PinStoreEpoch();

  const ResultList second = BuildSortedByF(GenerateUniform(3, 48, &rng));
  sp.SetStore(second);
  EXPECT_EQ(sp.RetiredEpochCount(), 1u);

  // The retired epoch's pages are intact: decoding the pinned view
  // reproduces the first store bit-for-bit even though a newer paged
  // store has been installed over it.
  StoreView view = sp.View();
  ASSERT_TRUE(view.paged());
  EXPECT_EQ(StoreSignature(view.paged_store()->Materialize()),
            StoreSignature(first));
  EXPECT_EQ(StoreSignature(sp.MaterializeStore()), StoreSignature(second));

  sp.UnpinStoreEpoch(pinned);
  EXPECT_EQ(sp.RetiredEpochCount(), 0u);
  EXPECT_EQ(StoreSignature(sp.View().paged_store()->Materialize()),
            StoreSignature(second));
}

// --- scheduled churn ------------------------------------------------------

void ExpectSameMetrics(const QueryMetrics& a, const QueryMetrics& b,
                       const std::string& context, bool include_ops) {
  EXPECT_EQ(a.computational_time_s, b.computational_time_s) << context;
  EXPECT_EQ(a.total_time_s, b.total_time_s) << context;
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << context;
  EXPECT_EQ(a.messages, b.messages) << context;
  EXPECT_EQ(a.result_size, b.result_size) << context;
  EXPECT_EQ(a.store_points_scanned, b.store_points_scanned) << context;
  EXPECT_EQ(a.local_result_points, b.local_result_points) << context;
  EXPECT_EQ(a.super_peers_participated, b.super_peers_participated)
      << context;
  EXPECT_EQ(a.partial, b.partial) << context;
  EXPECT_EQ(a.covered, b.covered) << context;
  EXPECT_EQ(a.retransmits, b.retransmits) << context;
  EXPECT_EQ(a.hops_gave_up, b.hops_gave_up) << context;
  EXPECT_EQ(a.messages_dropped, b.messages_dropped) << context;
  if (include_ops) {
    EXPECT_TRUE(a.ops == b.ops) << context << "\n  a: " << a.ops.ToString()
                                << "\n  b: " << b.ops.ToString();
  }
}

std::vector<Variant> SixVariants() {
  std::vector<Variant> variants(kAllVariants, kAllVariants + 5);
  variants.push_back(Variant::kPipeline);
  return variants;
}

// The tentpole property test: a network that executes a seeded churn
// plan while serving queries is bit-identical, query for query AND store
// for store, to (a) a network that interleaves the same events directly
// between queries and (b) the same replay with incremental maintenance
// replaced by full store rebuilds — across all six variants, 1/2/8
// threads, resident and paged stores, plain and
// cache+filter-set+block-skip compositions.
//
// The alignment works because a scheduled slot-q event batch is applied
// *after* the q-th query pins its epochs: query q observes membership
// after slots 0..q-1, exactly like a replay network that runs query q
// first and then applies slot q's events.
TEST(ScheduledChurn, MatchesDirectReplayAndRebuildOracle) {
  const std::vector<Variant> variants = SixVariants();
  const sim::ChurnPlan plan =
      sim::ChurnPlan::Seeded(/*num_events=*/6, /*rate=*/0.05, /*seed=*/99,
                             /*num_slots=*/4, /*num_super_peers=*/8);
  ASSERT_EQ(plan.size(), 6u);
  const std::vector<QueryTask> tasks = GenerateWorkload(4, 2, 8, 8, 17);

  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalConcurrency(threads);
    for (bool paged : {false, true}) {
      for (bool composed : {false, true}) {
        NetworkConfig base = DynamicConfig(21);
        base.measure_cpu = false;  // Virtual clocks for exact comparison.
        if (paged) {
          base.buffer_pages = 4;
          base.page_size = 4096;
        }
        if (composed) {
          base.enable_cache = true;
          base.filter_set_size = 6;
          base.block_skip = true;
        }
        NetworkConfig rebuild_config = base;
        rebuild_config.incremental_maintenance = false;

        SkypeerNetwork scheduled(base);
        scheduled.Preprocess();
        scheduled.SetChurnPlan(plan);
        SkypeerNetwork replay(base);
        replay.Preprocess();
        SkypeerNetwork rebuild(rebuild_config);
        rebuild.Preprocess();

        for (size_t q = 0; q < tasks.size(); ++q) {
          const QueryTask& task = tasks[q];
          const Variant variant = variants[q % variants.size()];
          const std::string context =
              "threads=" + std::to_string(threads) +
              " paged=" + std::to_string(paged) +
              " composed=" + std::to_string(composed) +
              " q=" + std::to_string(q) + " " + VariantName(variant);

          const QueryResult a =
              scheduled.ExecuteQuery(task.subspace, task.initiator_sp,
                                     variant);
          const QueryResult b =
              replay.ExecuteQuery(task.subspace, task.initiator_sp, variant);
          const QueryResult c =
              rebuild.ExecuteQuery(task.subspace, task.initiator_sp,
                                   variant);

          EXPECT_EQ(StoreSignature(a.skyline), StoreSignature(b.skyline))
              << context;
          EXPECT_EQ(StoreSignature(b.skyline), StoreSignature(c.skyline))
              << context;
          // The scheduled run's in-flight queries additionally count the
          // slot's maintenance ops (charged via node timers), so its op
          // counters are only comparable once the plan is exhausted.
          const bool past_plan = static_cast<int>(q) > plan.MaxSlot();
          ExpectSameMetrics(a.metrics, b.metrics, context + " a/b",
                            /*include_ops=*/past_plan);
          ExpectSameMetrics(b.metrics, c.metrics, context + " b/c",
                            /*include_ops=*/true);

          // Mirror the slot on the replay networks after their queries.
          const auto [begin, end] = plan.SlotRange(static_cast<int>(q));
          for (size_t i = begin; i < end; ++i) {
            ASSERT_TRUE(replay.ApplyChurnEvent(plan.events[i]).ok())
                << context;
            ASSERT_TRUE(rebuild.ApplyChurnEvent(plan.events[i]).ok())
                << context;
          }

          // Stores bit-identical across all three networks after every
          // step — incremental maintenance vs full rebuild included.
          for (int sp = 0; sp < 8; ++sp) {
            const auto sig =
                StoreSignature(scheduled.super_peer(sp).MaterializeStore());
            EXPECT_EQ(sig,
                      StoreSignature(replay.super_peer(sp).MaterializeStore()))
                << context << " sp=" << sp;
            EXPECT_EQ(
                sig,
                StoreSignature(rebuild.super_peer(sp).MaterializeStore()))
                << context << " sp=" << sp;
          }
        }

        // All three applied the same events.
        EXPECT_EQ(scheduled.churn_stats().joins, replay.churn_stats().joins);
        EXPECT_EQ(scheduled.churn_stats().removals,
                  replay.churn_stats().removals);
        EXPECT_EQ(scheduled.churn_stats().replacements,
                  replay.churn_stats().replacements);
        EXPECT_EQ(scheduled.churn_stats().skipped,
                  replay.churn_stats().skipped);
        EXPECT_EQ(scheduled.churn_stats().joins +
                      scheduled.churn_stats().removals +
                      scheduled.churn_stats().replacements +
                      scheduled.churn_stats().skipped,
                  plan.size());

        // The churned network still answers exactly against ground truth
        // at its final membership.
        ExpectAllVariantsExact(&scheduled, Subspace::FromDims({0, 2, 3}));
        ExpectAllVariantsExact(&scheduled, Subspace::FullSpace(4));
      }
    }
  }
  ThreadPool::SetGlobalConcurrency(1);
}

// Fixed seed => bit-identical queries and simulated metrics while churn
// maintenance is being charged on node timers, under the counted unit
// cost model, at any thread count and in both store modes.
TEST(ScheduledChurn, DeterministicAcrossRepeatsThreadsAndStoreModes) {
  const std::vector<Variant> variants = SixVariants();
  const std::vector<QueryTask> tasks = GenerateWorkload(4, 2, 6, 8, 23);

  NetworkConfig base = DynamicConfig(29);
  base.cost_model = CostModel::Unit();
  base.churn_events = 6;
  base.churn_seed = 55;

  auto run = [&](const NetworkConfig& config) {
    SkypeerNetwork network(config);
    network.Preprocess();
    std::vector<QueryResult> results;
    for (size_t q = 0; q < tasks.size(); ++q) {
      results.push_back(network.ExecuteQuery(
          tasks[q].subspace, tasks[q].initiator_sp,
          variants[q % variants.size()]));
    }
    return results;
  };

  ThreadPool::SetGlobalConcurrency(1);
  const std::vector<QueryResult> reference = run(base);

  auto expect_same = [&](const std::vector<QueryResult>& other,
                         const std::string& label) {
    ASSERT_EQ(other.size(), reference.size()) << label;
    for (size_t q = 0; q < reference.size(); ++q) {
      const std::string context = label + " q=" + std::to_string(q);
      EXPECT_EQ(StoreSignature(other[q].skyline),
                StoreSignature(reference[q].skyline))
          << context;
      ExpectSameMetrics(other[q].metrics, reference[q].metrics, context,
                        /*include_ops=*/true);
    }
  };

  expect_same(run(base), "repeat");
  for (int threads : {2, 8}) {
    ThreadPool::SetGlobalConcurrency(threads);
    expect_same(run(base), "threads=" + std::to_string(threads));
  }
  ThreadPool::SetGlobalConcurrency(1);

  NetworkConfig paged = base;
  paged.buffer_pages = 4;
  paged.page_size = 4096;
  expect_same(run(paged), "paged");

  SetForceScalarKernels(true);
  expect_same(run(base), "forced-scalar");
  SetForceScalarKernels(false);
}

// Scheduled churn composes with crash-fault injection: events landing on
// a crashed super-peer still change membership (the overlay outlives the
// crash) but their maintenance timers are suppressed like any other
// delivery, and the whole composition stays deterministic, coverage sets
// included.
TEST(ScheduledChurn, ComposesWithCrashFaultsDeterministically) {
  NetworkConfig config = DynamicConfig(31);
  config.cost_model = CostModel::Unit();
  config.reliable = true;
  config.fault_seed = 77;
  config.crashed_sps = {5};
  config.churn_events = 5;
  config.churn_seed = 88;

  auto run = [&](int threads) {
    ThreadPool::SetGlobalConcurrency(threads);
    SkypeerNetwork network(config);
    network.Preprocess();
    std::vector<QueryResult> results;
    const std::vector<QueryTask> tasks = GenerateWorkload(4, 2, 8, 8, 41);
    for (size_t q = 0; q < tasks.size(); ++q) {
      results.push_back(network.ExecuteQuery(tasks[q].subspace,
                                             tasks[q].initiator_sp,
                                             Variant::kRTPM));
    }
    return results;
  };

  const std::vector<QueryResult> first = run(1);
  const std::vector<QueryResult> second = run(4);
  ThreadPool::SetGlobalConcurrency(1);
  ASSERT_EQ(first.size(), second.size());
  for (size_t q = 0; q < first.size(); ++q) {
    const std::string context = "q=" + std::to_string(q);
    EXPECT_EQ(StoreSignature(first[q].skyline),
              StoreSignature(second[q].skyline))
        << context;
    ExpectSameMetrics(first[q].metrics, second[q].metrics, context,
                      /*include_ops=*/true);
    // The crashed super-peer never reports in.
    for (int sp : first[q].metrics.covered) EXPECT_NE(sp, 5) << context;
  }
}

// --- incremental membership maintenance -----------------------------------

// With `verify_maintenance` every incremental removal is checked in-line
// against the full-rebuild oracle (a mismatch aborts); this drives the
// checked path through a long mixed join/leave/replace history.
TEST(Maintenance, IncrementalMatchesRebuildOracleUnderStress) {
  NetworkConfig config = DynamicConfig(14);
  config.verify_maintenance = true;
  config.block_skip = true;
  SkypeerNetwork network(config);
  network.Preprocess();

  Rng rng(99);
  for (int round = 0; round < 12; ++round) {
    const int sp = static_cast<int>(rng.UniformInt(0, 7));
    switch (round % 3) {
      case 0: {
        PointSet data = GenerateUniform(4, 20, &rng);
        ASSERT_TRUE(network.JoinPeer(sp, std::move(data)).ok());
        break;
      }
      case 1: {
        const auto& peers = network.overlay().super_peer_peers[sp];
        if (!peers.empty()) {
          const int victim =
              peers[rng.UniformInt(0, static_cast<int>(peers.size()) - 1)];
          ASSERT_TRUE(network.RemovePeer(victim).ok());
        }
        break;
      }
      default: {
        const auto& peers = network.overlay().super_peer_peers[sp];
        if (!peers.empty()) {
          const int victim =
              peers[rng.UniformInt(0, static_cast<int>(peers.size()) - 1)];
          PointSet data = GenerateUniform(4, 15, &rng);
          ASSERT_TRUE(network.ReplacePeerData(victim, std::move(data)).ok());
        }
        break;
      }
    }
    if (round % 4 == 3) {
      ExpectAllVariantsExact(&network, Subspace::FromDims({1, 3}));
    }
  }
  ExpectAllVariantsExact(&network, Subspace::FullSpace(4));
}

// Regression: removing the *last* peer of a super-peer must rebuild the
// zone-map summary through the shared install path — a stale summary
// would let --block-skip skip phantom blocks (or scan freed ones).
TEST(Maintenance, DrainedSuperPeerServesBlockSkipQueries) {
  NetworkConfig config = DynamicConfig(13);
  config.block_skip = true;
  SkypeerNetwork network(config);
  network.Preprocess();

  const std::vector<int> victims = network.overlay().super_peer_peers[2];
  ASSERT_FALSE(victims.empty());
  for (int peer : victims) {
    ASSERT_TRUE(network.RemovePeer(peer).ok());
  }
  EXPECT_EQ(network.super_peer(2).StoreSize(), 0u);
  ASSERT_TRUE(network.super_peer(2).View().summary() != nullptr);
  EXPECT_TRUE(network.super_peer(2).View().empty());

  ExpectAllVariantsExact(&network, Subspace::FromDims({0, 3}));
  ExpectAllVariantsExact(&network, Subspace::FullSpace(4));
  // A query initiated at the drained node must still work.
  const Subspace u = Subspace::FromDims({1, 2});
  QueryResult from_drained = network.ExecuteQuery(u, 2, Variant::kRTFM);
  EXPECT_EQ(SortedIds(from_drained.skyline.points),
            SortedIds(network.GroundTruthSkyline(u)));
}

}  // namespace
}  // namespace skypeer
