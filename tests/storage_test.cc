// Tests of the paged-store subsystem: `PageLayout` geometry and logical
// page charging, the pinning `BufferManager` (residency, deterministic
// second-chance eviction, write-once pages, prefetch), `PagedStore`
// round-trips, and the property that a `StoreCursor` over a paged store
// enumerates exactly the `ResultList` order — for random sizes including
// non-multiples of the 8-wide block and several page sizes.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <future>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/common/dominance_batch.h"
#include "skypeer/common/op_counts.h"
#include "skypeer/common/rng.h"
#include "skypeer/common/thread_pool.h"
#include "skypeer/data/generator.h"
#include "skypeer/storage/buffer_manager.h"
#include "skypeer/storage/page_layout.h"
#include "skypeer/storage/paged_store.h"
#include "skypeer/storage/store_view.h"

namespace skypeer {
namespace {

// --- PageLayout geometry ----------------------------------------------------

TEST(PageLayout, BlockAndPageGeometry) {
  // dims=6: a block is (6+2)*8 doubles = 512 bytes, so a 4 KiB page
  // holds 8 blocks = 64 points.
  const PageLayout six(4096, 6);
  EXPECT_EQ(six.bytes_per_block(), 512u);
  EXPECT_EQ(six.doubles_per_block(), 64u);
  EXPECT_EQ(six.blocks_per_page(), 8u);
  EXPECT_EQ(six.points_per_page(), 64u);

  // dims=4: 384-byte blocks do not divide 4096 — the page-tail slack
  // (4096 - 10*384 = 256 bytes) is simply unused.
  const PageLayout four(4096, 4);
  EXPECT_EQ(four.bytes_per_block(), 384u);
  EXPECT_EQ(four.blocks_per_page(), 10u);
  EXPECT_EQ(four.points_per_page(), 80u);

  EXPECT_EQ(four.PagesForPoints(0), 0u);
  EXPECT_EQ(four.PagesForPoints(1), 1u);
  EXPECT_EQ(four.PagesForPoints(80), 1u);
  EXPECT_EQ(four.PagesForPoints(81), 2u);
  EXPECT_EQ(four.PagesForPoints(801), 11u);
}

TEST(PageLayout, ScanExaminedCountsTheRejectedProbe) {
  // A threshold scan that stops early reads one rejected f past the
  // consumed prefix; a scan that exhausts [begin, end) does not.
  EXPECT_EQ(ScanExamined(0, 100, 10), 11u);
  EXPECT_EQ(ScanExamined(0, 100, 100), 100u);
  EXPECT_EQ(ScanExamined(40, 100, 60), 60u);
  EXPECT_EQ(ScanExamined(40, 100, 0), 1u);
  EXPECT_EQ(ScanExamined(0, 0, 0), 0u);
}

TEST(PageLayout, ChargeScanPagesSpansTheExaminedPrefix) {
  const PageLayout layout(4096, 6);  // 64 points per page.
  OpCounts ops;

  // Nothing examined: nothing charged.
  ChargeScanPages(layout, 0, 0, 0, &ops);
  EXPECT_EQ(ops.page_reads, 0u);
  EXPECT_EQ(ops.page_bytes, 0u);

  // 10 consumed + 1 probe, all inside page 0.
  ChargeScanPages(layout, 0, 1000, 10, &ops);
  EXPECT_EQ(ops.page_reads, 1u);
  EXPECT_EQ(ops.page_bytes, 4096u);

  // 63 consumed + probe at position 63: still one page.
  ops = OpCounts();
  ChargeScanPages(layout, 0, 1000, 63, &ops);
  EXPECT_EQ(ops.page_reads, 1u);

  // 64 consumed + probe at position 64: crosses into page 1.
  ops = OpCounts();
  ChargeScanPages(layout, 0, 1000, 64, &ops);
  EXPECT_EQ(ops.page_reads, 2u);

  // A chunk starting mid-store is charged from its own first page.
  ops = OpCounts();
  ChargeScanPages(layout, 64, 128, 64, &ops);
  EXPECT_EQ(ops.page_reads, 1u);

  // A chunk straddling a page boundary pays both pages.
  ops = OpCounts();
  ChargeScanPages(layout, 60, 128, 8, &ops);
  EXPECT_EQ(ops.page_reads, 2u);
  EXPECT_EQ(ops.page_bytes, 2u * 4096u);
}

TEST(PageLayout, SnapChunkToPagesRoundsUpToWholePages) {
  const PageLayout layout(4096, 6);  // 64 points per page.
  EXPECT_EQ(SnapChunkToPages(layout, 0), 0u);  // 0 = sequential stays 0.
  EXPECT_EQ(SnapChunkToPages(layout, 1), 64u);
  EXPECT_EQ(SnapChunkToPages(layout, 64), 64u);
  EXPECT_EQ(SnapChunkToPages(layout, 65), 128u);
  EXPECT_EQ(SnapChunkToPages(layout, 128), 128u);
}

// --- BufferManager ----------------------------------------------------------

std::vector<std::byte> PatternPage(size_t page_size, uint8_t seed) {
  std::vector<std::byte> bytes(page_size);
  for (size_t i = 0; i < page_size; ++i) {
    bytes[i] = static_cast<std::byte>((seed + i) & 0xff);
  }
  return bytes;
}

TEST(BufferManager, PinReadsBackWrittenPages) {
  BufferManager buffer(4096, 4);
  std::vector<uint64_t> pages;
  for (uint8_t p = 0; p < 3; ++p) {
    const uint64_t id = buffer.AllocatePage();
    buffer.WritePage(id, PatternPage(4096, p).data());
    pages.push_back(id);
  }
  for (uint8_t p = 0; p < 3; ++p) {
    const std::byte* data = buffer.Pin(pages[p]);
    EXPECT_EQ(std::memcmp(data, PatternPage(4096, p).data(), 4096), 0)
        << "page " << int{p};
    buffer.Unpin(pages[p]);
  }
  BufferManager::Stats stats = buffer.stats();
  EXPECT_EQ(stats.pages_written, 3u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 0u);

  // Re-pinning resident pages is a hit, no read.
  for (uint64_t id : pages) {
    buffer.Pin(id);
    buffer.Unpin(id);
  }
  stats = buffer.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(BufferManager, EvictsUnpinnedPagesAndReloadsThemCorrectly) {
  // 2 frames, 4 pages: streaming through them forces evictions, and a
  // reloaded page must carry its original bytes.
  BufferManager buffer(4096, 2);
  std::vector<uint64_t> pages;
  for (uint8_t p = 0; p < 4; ++p) {
    const uint64_t id = buffer.AllocatePage();
    buffer.WritePage(id, PatternPage(4096, p).data());
    pages.push_back(id);
  }
  for (int round = 0; round < 3; ++round) {
    for (uint8_t p = 0; p < 4; ++p) {
      const std::byte* data = buffer.Pin(pages[p]);
      EXPECT_EQ(std::memcmp(data, PatternPage(4096, p).data(), 4096), 0)
          << "round " << round << " page " << int{p};
      buffer.Unpin(pages[p]);
    }
  }
  const BufferManager::Stats stats = buffer.stats();
  // Every pin of this access pattern misses (4 pages cycling through 2
  // frames), and each miss after the pool filled evicts.
  EXPECT_EQ(stats.misses, 12u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.evictions, 10u);
}

TEST(BufferManager, EvictionIsDeterministic) {
  // The second-chance sweep is a pure function of the pin/unpin
  // sequence: two managers fed the same operations report the same
  // statistics.
  auto run = [] {
    BufferManager buffer(4096, 3);
    std::vector<uint64_t> pages;
    for (uint8_t p = 0; p < 6; ++p) {
      const uint64_t id = buffer.AllocatePage();
      buffer.WritePage(id, PatternPage(4096, p).data());
      pages.push_back(id);
    }
    // A mixed pattern with re-references.
    const size_t order[] = {0, 1, 2, 0, 3, 4, 0, 5, 1, 2, 3};
    for (size_t i : order) {
      buffer.Pin(pages[i]);
      buffer.Unpin(pages[i]);
    }
    return buffer.stats();
  };
  const BufferManager::Stats a = run();
  const BufferManager::Stats b = run();
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.hits + a.misses, 11u);
}

TEST(BufferManager, DroppedPageOffsetIsReusedWithoutStaleReads) {
  // Dropping a resident page frees its file offset; a new page written
  // over the same offset must read back its own bytes, and the dropped
  // id is gone from the pool (ids are never recycled).
  BufferManager buffer(4096, 2);
  const uint64_t old_id = buffer.AllocatePage();
  buffer.WritePage(old_id, PatternPage(4096, 7).data());
  buffer.Pin(old_id);
  buffer.Unpin(old_id);
  buffer.DropPage(old_id);

  const uint64_t new_id = buffer.AllocatePage();
  EXPECT_NE(new_id, old_id);
  buffer.WritePage(new_id, PatternPage(4096, 9).data());
  const std::byte* data = buffer.Pin(new_id);
  EXPECT_EQ(std::memcmp(data, PatternPage(4096, 9).data(), 4096), 0);
  buffer.Unpin(new_id);
}

TEST(BufferManager, PrefetchedPageServesAHit) {
  // Deterministic prefetch-hit: ThreadPool(2) runs one worker draining
  // a FIFO queue, so a marker task submitted after Prefetch completes
  // only after the prefetch read finished — the following Pin must be
  // served from the prefetched frame without a read.
  ThreadPool pool(2);
  BufferManager buffer(4096, 4, &pool);
  const uint64_t id = buffer.AllocatePage();
  buffer.WritePage(id, PatternPage(4096, 3).data());

  buffer.Prefetch(id);
  pool.Submit([] {}).get();  // Barrier: the prefetch read has completed.

  const std::byte* data = buffer.Pin(id);
  EXPECT_EQ(std::memcmp(data, PatternPage(4096, 3).data(), 4096), 0);
  buffer.Unpin(id);

  const BufferManager::Stats stats = buffer.stats();
  EXPECT_EQ(stats.prefetches_issued, 1u);
  EXPECT_EQ(stats.prefetch_hits, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(BufferManager, PinClaimsAQueuedPrefetch) {
  // A Pin that catches up with a still-queued prefetch performs the read
  // itself instead of waiting on pool scheduling. Block the pool's one
  // worker so the prefetch task cannot run before the Pin (ThreadPool(1)
  // would run Submit inline on this thread and self-block).
  ThreadPool pool(2);
  BufferManager buffer(4096, 4, &pool);
  const uint64_t id = buffer.AllocatePage();
  buffer.WritePage(id, PatternPage(4096, 5).data());

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto blocker = pool.Submit([released] { released.wait(); });

  buffer.Prefetch(id);  // Queued behind the blocker.
  const std::byte* data = buffer.Pin(id);
  EXPECT_EQ(std::memcmp(data, PatternPage(4096, 5).data(), 4096), 0);
  buffer.Unpin(id);
  release.set_value();
  blocker.get();

  const BufferManager::Stats stats = buffer.stats();
  EXPECT_EQ(stats.prefetches_issued, 1u);
  EXPECT_EQ(stats.prefetch_hits, 0u);  // Claimed, not served.
  EXPECT_EQ(stats.misses, 1u);
}

TEST(BufferManager, PinWaitsForAFrameWhenAllArePinned) {
  // With every frame pinned, a Pin of a non-resident page blocks until
  // an Unpin frees capacity — the cursors' release-before-next-pin
  // discipline guarantees this always happens.
  BufferManager buffer(4096, 2);
  std::vector<uint64_t> pages;
  for (uint8_t p = 0; p < 3; ++p) {
    const uint64_t id = buffer.AllocatePage();
    buffer.WritePage(id, PatternPage(4096, p).data());
    pages.push_back(id);
  }
  buffer.Pin(pages[0]);
  buffer.Pin(pages[1]);

  std::atomic<bool> pinned{false};
  std::thread waiter([&] {
    const std::byte* data = buffer.Pin(pages[2]);
    pinned = true;
    EXPECT_EQ(std::memcmp(data, PatternPage(4096, 2).data(), 4096), 0);
    buffer.Unpin(pages[2]);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pinned.load());
  buffer.Unpin(pages[0]);
  waiter.join();
  EXPECT_TRUE(pinned.load());
  buffer.Unpin(pages[1]);
}

// --- PagedStore / StoreCursor ----------------------------------------------

/// Exact content comparison of two result lists.
void ExpectListsEqual(const ResultList& a, const ResultList& b,
                      const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  ASSERT_EQ(a.points.dims(), b.points.dims()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.points.id(i), b.points.id(i)) << context << " index " << i;
    EXPECT_EQ(a.f[i], b.f[i]) << context << " index " << i;
    for (int d = 0; d < a.points.dims(); ++d) {
      EXPECT_EQ(a.points[i][d], b.points[i][d])
          << context << " index " << i << " dim " << d;
    }
  }
}

TEST(PagedStore, BuildMaterializeRoundTripsExactly) {
  Rng rng(11);
  BufferManager buffer(4096, 3);
  for (size_t n : {0u, 1u, 7u, 64u, 200u}) {
    const ResultList list = BuildSortedByF(GenerateUniform(5, n, &rng));
    const PagedStore store = PagedStore::Build(list, &buffer);
    EXPECT_EQ(store.size(), n);
    EXPECT_EQ(store.num_pages(), store.layout().PagesForPoints(n));
    ExpectListsEqual(store.Materialize(), list,
                     "round trip n=" + std::to_string(n));
  }
}

TEST(PagedStore, ReleaseDropsEveryPage) {
  BufferManager buffer(4096, 3);
  Rng rng(13);
  const ResultList list = BuildSortedByF(GenerateUniform(4, 300, &rng));
  PagedStore store = PagedStore::Build(list, &buffer);
  ASSERT_GT(store.num_pages(), 1u);
  store.Release();
  EXPECT_FALSE(store.valid());
  EXPECT_EQ(store.size(), 0u);
  // The freed offsets are reused: a rebuilt store reads back exactly.
  const PagedStore rebuilt = PagedStore::Build(list, &buffer);
  ExpectListsEqual(rebuilt.Materialize(), list, "rebuilt store");
}

TEST(StoreCursor, EnumeratesExactlyTheResultListOrder) {
  // The property test: for random store sizes — including sizes that are
  // not multiples of the 8-wide block or of a page — and several page
  // sizes, a cursor over the paged store returns exactly the f, id and
  // row sequence of the source `ResultList`, both in sequential order
  // and under random access, through a pool far smaller than the store.
  Rng rng(17);
  const size_t page_sizes[] = {4096, 8192, 65536};
  const int dims_choices[] = {2, 5, 9};
  for (size_t page_size : page_sizes) {
    BufferManager buffer(page_size, 2);
    for (int dims : dims_choices) {
      for (int trial = 0; trial < 3; ++trial) {
        // Sizes deliberately off-grid: never a multiple of 8 on trial 1+.
        const size_t n = 1 + rng.UniformInt(0, 400);
        const ResultList list = BuildSortedByF(GenerateUniform(dims, n, &rng));
        const PagedStore store = PagedStore::Build(list, &buffer);
        const StoreView paged(&store);
        ASSERT_EQ(paged.size(), list.size());
        ASSERT_TRUE(paged.paged());
        const std::string context = "page_size=" + std::to_string(page_size) +
                                    " dims=" + std::to_string(dims) +
                                    " n=" + std::to_string(n);

        // Sequential enumeration.
        {
          StoreCursor cursor(paged);
          for (size_t i = 0; i < list.size(); ++i) {
            EXPECT_EQ(cursor.f(i), list.f[i]) << context << " i=" << i;
            EXPECT_EQ(cursor.id(i), list.points.id(i)) << context << " i=" << i;
            const double* row = cursor.row(i);
            for (int d = 0; d < dims; ++d) {
              EXPECT_EQ(row[d], list.points[i][d])
                  << context << " i=" << i << " d=" << d;
            }
          }
        }

        // Random access (backward page moves included).
        {
          std::vector<size_t> order(list.size());
          std::iota(order.begin(), order.end(), size_t{0});
          std::shuffle(order.begin(), order.end(), rng.engine());
          StoreCursor cursor(paged);
          for (size_t i : order) {
            EXPECT_EQ(cursor.f(i), list.f[i]) << context << " i=" << i;
            EXPECT_EQ(cursor.id(i), list.points.id(i)) << context;
          }
        }

        // The in-memory view of the same list agrees index for index.
        {
          const StoreView resident(&list, page_size);
          EXPECT_EQ(resident.layout().points_per_page(),
                    paged.layout().points_per_page())
              << context;
          StoreCursor a(paged);
          StoreCursor b(resident);
          for (size_t i = 0; i < list.size(); ++i) {
            EXPECT_EQ(a.f(i), b.f(i)) << context;
            EXPECT_EQ(a.id(i), b.id(i)) << context;
          }
        }
      }
    }
  }
}

TEST(StoreCursor, ConcurrentCursorsShareATinyPool) {
  // Many cursors over the same store on a 2-frame pool: the
  // release-before-next-pin discipline keeps them all making progress.
  Rng rng(23);
  BufferManager buffer(4096, 2);
  const ResultList list = BuildSortedByF(GenerateUniform(6, 500, &rng));
  const PagedStore store = PagedStore::Build(list, &buffer);
  ASSERT_GT(store.num_pages(), 4u);

  ThreadPool pool(8);
  std::atomic<size_t> mismatches{0};
  pool.ParallelFor(8, [&](size_t worker) {
    const StoreView view(&store);
    StoreCursor cursor(view);
    // Each worker walks the whole store from a different starting page.
    const size_t start = worker * 61 % list.size();
    for (size_t step = 0; step < list.size(); ++step) {
      const size_t i = (start + step) % list.size();
      if (cursor.f(i) != list.f[i] || cursor.id(i) != list.points.id(i)) {
        ++mismatches;
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace skypeer
