// Randomized end-to-end protocol fuzzing: random small networks, random
// churn interleaved with random queries under every variant, always
// cross-checked against the centralized oracle. One seed per test case;
// any failure reproduces deterministically.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

class ProtocolFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProtocolFuzzTest, RandomNetworkRandomChurnStaysExact) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  NetworkConfig config;
  config.num_peers = static_cast<int>(rng.UniformInt(4, 60));
  config.num_super_peers =
      static_cast<int>(rng.UniformInt(1, std::min(10, config.num_peers)));
  config.points_per_peer = static_cast<int>(rng.UniformInt(0, 60));
  config.dims = static_cast<int>(rng.UniformInt(2, 7));
  config.degree_sp = rng.Uniform(0.0, 6.0);
  config.topology = rng.Uniform() < 0.3 ? BackboneTopology::kHypercube
                                        : BackboneTopology::kWaxman;
  config.distribution = static_cast<Distribution>(rng.UniformInt(0, 3));
  config.enable_cache = rng.Uniform() < 0.5;
  config.dynamic_membership = true;
  config.retain_peer_data = true;
  config.seed = rng.Fork();

  SkypeerNetwork network(config);
  network.Preprocess();

  std::vector<int> removable;
  for (int peer = 0; peer < config.num_peers; ++peer) {
    removable.push_back(peer);
  }

  for (int step = 0; step < 8; ++step) {
    // Random churn action.
    const double action = rng.Uniform();
    if (action < 0.3) {
      const int sp =
          static_cast<int>(rng.UniformInt(0, network.num_super_peers() - 1));
      const size_t n = static_cast<size_t>(rng.UniformInt(0, 40));
      int peer_id = -1;
      Rng data_rng(rng.Fork());
      ASSERT_TRUE(network
                      .JoinPeer(sp, GenerateUniform(config.dims, n, &data_rng),
                                &peer_id)
                      .ok());
      removable.push_back(peer_id);
    } else if (action < 0.5 && !removable.empty()) {
      const size_t victim = rng.UniformInt(0, removable.size() - 1);
      ASSERT_TRUE(network.RemovePeer(removable[victim]).ok());
      removable.erase(removable.begin() + victim);
    }

    // Random query under a random variant (pipeline included).
    std::vector<int> dims_pool(config.dims);
    for (int d = 0; d < config.dims; ++d) {
      dims_pool[d] = d;
    }
    std::shuffle(dims_pool.begin(), dims_pool.end(), rng.engine());
    const int k = static_cast<int>(rng.UniformInt(1, config.dims));
    const Subspace u = Subspace::FromDims(
        std::vector<int>(dims_pool.begin(), dims_pool.begin() + k));
    const int initiator =
        static_cast<int>(rng.UniformInt(0, network.num_super_peers() - 1));
    const Variant variant = static_cast<Variant>(rng.UniformInt(0, 5));

    const QueryResult result = network.ExecuteQuery(u, initiator, variant);
    EXPECT_EQ(SortedIds(result.skyline.points),
              SortedIds(network.GroundTruthSkyline(u)))
        << "seed=" << seed << " step=" << step << " u=" << u.ToString()
        << " variant=" << VariantName(variant) << " init=" << initiator;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

}  // namespace
}  // namespace skypeer
