// Randomized end-to-end protocol fuzzing: random small networks, random
// churn interleaved with random queries under every variant, always
// cross-checked against the centralized oracle. One seed per test case;
// any failure reproduces deterministically.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

class ProtocolFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProtocolFuzzTest, RandomNetworkRandomChurnStaysExact) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  NetworkConfig config;
  config.num_peers = static_cast<int>(rng.UniformInt(4, 60));
  config.num_super_peers =
      static_cast<int>(rng.UniformInt(1, std::min(10, config.num_peers)));
  config.points_per_peer = static_cast<int>(rng.UniformInt(0, 60));
  config.dims = static_cast<int>(rng.UniformInt(2, 7));
  config.degree_sp = rng.Uniform(0.0, 6.0);
  config.topology = rng.Uniform() < 0.3 ? BackboneTopology::kHypercube
                                        : BackboneTopology::kWaxman;
  config.distribution = static_cast<Distribution>(rng.UniformInt(0, 3));
  config.enable_cache = rng.Uniform() < 0.5;
  config.dynamic_membership = true;
  config.retain_peer_data = true;
  config.seed = rng.Fork();

  SkypeerNetwork network(config);
  network.Preprocess();

  std::vector<int> removable;
  for (int peer = 0; peer < config.num_peers; ++peer) {
    removable.push_back(peer);
  }

  for (int step = 0; step < 8; ++step) {
    // Random churn action.
    const double action = rng.Uniform();
    if (action < 0.3) {
      const int sp =
          static_cast<int>(rng.UniformInt(0, network.num_super_peers() - 1));
      const size_t n = static_cast<size_t>(rng.UniformInt(0, 40));
      int peer_id = -1;
      Rng data_rng(rng.Fork());
      ASSERT_TRUE(network
                      .JoinPeer(sp, GenerateUniform(config.dims, n, &data_rng),
                                &peer_id)
                      .ok());
      removable.push_back(peer_id);
    } else if (action < 0.5 && !removable.empty()) {
      const size_t victim = rng.UniformInt(0, removable.size() - 1);
      ASSERT_TRUE(network.RemovePeer(removable[victim]).ok());
      removable.erase(removable.begin() + victim);
    }

    // Random query under a random variant (pipeline included).
    std::vector<int> dims_pool(config.dims);
    for (int d = 0; d < config.dims; ++d) {
      dims_pool[d] = d;
    }
    std::shuffle(dims_pool.begin(), dims_pool.end(), rng.engine());
    const int k = static_cast<int>(rng.UniformInt(1, config.dims));
    const Subspace u = Subspace::FromDims(
        std::vector<int>(dims_pool.begin(), dims_pool.begin() + k));
    const int initiator =
        static_cast<int>(rng.UniformInt(0, network.num_super_peers() - 1));
    const Variant variant = static_cast<Variant>(rng.UniformInt(0, 5));

    const QueryResult result = network.ExecuteQuery(u, initiator, variant);
    EXPECT_EQ(SortedIds(result.skyline.points),
              SortedIds(network.GroundTruthSkyline(u)))
        << "seed=" << seed << " step=" << step << " u=" << u.ToString()
        << " variant=" << VariantName(variant) << " init=" << initiator;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

/// Fuzzing of the reliable protocol under message loss and delay jitter:
/// retransmissions create duplicated deliveries, jitter reorders them
/// across links, and reroute detours produce stale/echoed envelopes —
/// the answer must stay bit-identical to the centralized oracle with
/// full coverage, query after query on the same network.
class ReliableFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReliableFuzzTest, LossAndReorderingNeverCorruptTheAnswer) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  NetworkConfig config;
  config.num_peers = static_cast<int>(rng.UniformInt(8, 50));
  config.num_super_peers =
      static_cast<int>(rng.UniformInt(2, std::min(9, config.num_peers)));
  config.points_per_peer = static_cast<int>(rng.UniformInt(1, 40));
  config.dims = static_cast<int>(rng.UniformInt(2, 6));
  config.degree_sp = rng.Uniform(1.0, 5.0);
  config.retain_peer_data = true;
  config.measure_cpu = false;
  config.seed = rng.Fork();
  config.reliable = true;
  config.fault_seed = rng.Fork();
  config.drop_prob = rng.Uniform(0.0, 0.35);
  config.delay_jitter = rng.Uniform(0.0, 0.2);

  SkypeerNetwork network(config);
  network.Preprocess();

  for (int step = 0; step < 6; ++step) {
    std::vector<int> dims_pool(config.dims);
    for (int d = 0; d < config.dims; ++d) {
      dims_pool[d] = d;
    }
    std::shuffle(dims_pool.begin(), dims_pool.end(), rng.engine());
    const int k = static_cast<int>(rng.UniformInt(1, config.dims));
    const Subspace u = Subspace::FromDims(
        std::vector<int>(dims_pool.begin(), dims_pool.begin() + k));
    const int initiator =
        static_cast<int>(rng.UniformInt(0, network.num_super_peers() - 1));
    const Variant variant = static_cast<Variant>(rng.UniformInt(0, 5));

    const QueryResult result = network.ExecuteQuery(u, initiator, variant);
    EXPECT_EQ(SortedIds(result.skyline.points),
              SortedIds(network.GroundTruthSkyline(u)))
        << "seed=" << seed << " step=" << step << " u=" << u.ToString()
        << " variant=" << VariantName(variant) << " init=" << initiator
        << " drop=" << config.drop_prob << " jitter=" << config.delay_jitter;
    EXPECT_FALSE(result.metrics.partial);
    EXPECT_EQ(result.metrics.super_peers_reached, network.num_super_peers());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReliableFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{17}));

/// Crash fuzzing: a random super-peer is down for good. Whatever subset
/// the protocol reports as covered, the answer must be the *exact*
/// skyline of exactly those stores — degraded, never wrong — and the
/// crashed node must not appear in the report.
class CrashFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashFuzzTest, PartialAnswersAreExactOverTheReportedCoverage) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  NetworkConfig config;
  config.num_peers = static_cast<int>(rng.UniformInt(12, 50));
  config.num_super_peers = static_cast<int>(rng.UniformInt(3, 9));
  config.points_per_peer = static_cast<int>(rng.UniformInt(1, 40));
  config.dims = static_cast<int>(rng.UniformInt(2, 6));
  config.degree_sp = rng.Uniform(1.0, 5.0);
  config.measure_cpu = false;
  config.seed = rng.Fork();
  config.reliable = true;
  config.max_retries = 2;
  const int crashed =
      static_cast<int>(rng.UniformInt(0, config.num_super_peers - 1));
  config.crashed_sps = {crashed};

  SkypeerNetwork network(config);
  network.Preprocess();

  for (int step = 0; step < 4; ++step) {
    std::vector<int> dims_pool(config.dims);
    for (int d = 0; d < config.dims; ++d) {
      dims_pool[d] = d;
    }
    std::shuffle(dims_pool.begin(), dims_pool.end(), rng.engine());
    const int k = static_cast<int>(rng.UniformInt(1, config.dims));
    const Subspace u = Subspace::FromDims(
        std::vector<int>(dims_pool.begin(), dims_pool.begin() + k));
    int initiator =
        static_cast<int>(rng.UniformInt(0, network.num_super_peers() - 1));
    if (initiator == crashed) {
      initiator = (initiator + 1) % network.num_super_peers();
    }
    const Variant variant = static_cast<Variant>(rng.UniformInt(0, 5));

    const QueryResult result = network.ExecuteQuery(u, initiator, variant);
    EXPECT_TRUE(result.metrics.partial)
        << "seed=" << seed << " step=" << step;
    EXPECT_EQ(std::count(result.metrics.covered.begin(),
                         result.metrics.covered.end(), crashed),
              0);
    // Exactness over the reported coverage: re-derive the skyline from
    // the covered stores alone.
    PointSet covered_union(network.dims());
    for (int sp : result.metrics.covered) {
      const PointSet& store = network.super_peer(sp).store().points;
      for (size_t i = 0; i < store.size(); ++i) {
        covered_union.Append(store[i], store.id(i));
      }
    }
    EXPECT_EQ(SortedIds(result.skyline.points),
              SortedIds(BnlSkyline(covered_union, u)))
        << "seed=" << seed << " step=" << step << " u=" << u.ToString()
        << " variant=" << VariantName(variant) << " init=" << initiator;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace skypeer
