// Tests of the Bitmap skyline method (Tan et al., VLDB'01).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "skypeer/algo/bitmap_skyline.h"
#include "skypeer/algo/bnl.h"
#include "skypeer/common/dominance.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

PointSet Gridded(int dims, size_t n, int levels, uint64_t seed) {
  Rng rng(seed);
  PointSet data(dims);
  for (size_t i = 0; i < n; ++i) {
    double row[kMaxDims];
    for (int d = 0; d < dims; ++d) {
      row[d] = rng.UniformInt(0, levels - 1) / static_cast<double>(levels);
    }
    data.Append(row, i);
  }
  return data;
}

TEST(BitmapSkyline, HandChecked) {
  PointSet data(2, {{1, 3}, {2, 2}, {3, 1}, {3, 3}, {1, 3}});
  BitmapSkyline bitmap(data);
  const Subspace u = Subspace::FullSpace(2);
  // (3,3) dominated by (2,2); duplicate (1,3) points both undominated.
  EXPECT_EQ(SortedIds(bitmap.Skyline(u)), (std::vector<PointId>{0, 1, 2, 4}));
  EXPECT_FALSE(bitmap.IsDominated(0, u));
  EXPECT_TRUE(bitmap.IsDominated(3, u));
  // Strict: nothing ext-dominates the duplicates either.
  EXPECT_FALSE(bitmap.IsDominated(4, u, /*ext=*/true));
}

TEST(BitmapSkyline, EmptyAndSingle) {
  PointSet empty(3);
  BitmapSkyline bitmap_empty(empty);
  EXPECT_TRUE(bitmap_empty.Skyline(Subspace::FullSpace(3)).empty());

  PointSet one(3, {{0.5, 0.5, 0.5}});
  BitmapSkyline bitmap_one(one);
  EXPECT_EQ(bitmap_one.Skyline(Subspace::FullSpace(3)).size(), 1u);
}

TEST(BitmapSkyline, MatchesBnlAcrossSubspaces) {
  PointSet data = Gridded(4, 300, 6, 1);
  BitmapSkyline bitmap(data);
  for (Subspace u : AllSubspaces(4)) {
    for (bool ext : {false, true}) {
      EXPECT_EQ(SortedIds(bitmap.Skyline(u, ext)),
                SortedIds(BnlSkyline(data, u, ext)))
          << u.ToString() << (ext ? " ext" : "");
    }
  }
}

TEST(BitmapSkyline, MatchesBnlOnContinuousData) {
  Rng rng(2);
  PointSet data = GenerateUniform(3, 400, &rng);
  BitmapSkyline bitmap(data);
  for (Subspace u : {Subspace::FullSpace(3), Subspace::FromDims({0, 2})}) {
    EXPECT_EQ(SortedIds(bitmap.Skyline(u)), SortedIds(BnlSkyline(data, u)));
  }
}

TEST(BitmapSkyline, IsDominatedMatchesDirectTest) {
  PointSet data = Gridded(3, 200, 4, 3);
  BitmapSkyline bitmap(data);
  const Subspace u = Subspace::FromDims({0, 2});
  for (size_t i = 0; i < data.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < data.size() && !dominated; ++j) {
      dominated = i != j && Dominates(data[j], data[i], u);
    }
    EXPECT_EQ(bitmap.IsDominated(i, u), dominated) << i;
  }
}

TEST(BitmapSkyline, MemoryReflectsCardinality) {
  // 4 discrete levels vs continuous values: the bitmap for the discrete
  // data is far smaller (fewer slices per dimension).
  PointSet discrete = Gridded(3, 512, 4, 4);
  Rng rng(5);
  PointSet continuous = GenerateUniform(3, 512, &rng);
  BitmapSkyline discrete_bitmap(discrete);
  BitmapSkyline continuous_bitmap(continuous);
  EXPECT_LT(discrete_bitmap.bitmap_bytes() * 20,
            continuous_bitmap.bitmap_bytes());
  // 3 dims * 4 slices * 8 words... exact: 3 * 4 * ceil(512/64)*8 bytes.
  EXPECT_EQ(discrete_bitmap.bitmap_bytes(), 3u * 4u * 8u * 8u);
}

}  // namespace
}  // namespace skypeer
