// Randomized cross-invariant property tests tying the library's pieces
// together: algebraic laws of skyline/ext-skyline computation, the
// threshold-filter equivalence behind the result cache, and the
// distribution theorem behind SKYPEER itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/extended_skyline.h"
#include "skypeer/algo/merge.h"
#include "skypeer/algo/sfs.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/dominance.h"
#include "skypeer/common/mapping.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/data/partition.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

PointSet RandomData(int dims, size_t n, uint64_t seed, bool gridded) {
  Rng rng(seed);
  if (!gridded) {
    return GenerateUniform(dims, n, &rng);
  }
  PointSet data(dims);
  for (size_t i = 0; i < n; ++i) {
    double row[kMaxDims];
    for (int d = 0; d < dims; ++d) {
      row[d] = rng.UniformInt(0, 5) / 6.0;
    }
    data.Append(row, i);
  }
  return data;
}

class PropertyTest : public ::testing::TestWithParam<std::tuple<int, bool>> {
 protected:
  int dims() const { return std::get<0>(GetParam()); }
  bool gridded() const { return std::get<1>(GetParam()); }
};

// ext(ext(S)) == ext(S): the extended skyline is idempotent.
TEST_P(PropertyTest, ExtSkylineIdempotent) {
  PointSet data = RandomData(dims(), 400, 11 * dims(), gridded());
  ResultList once = ExtendedSkyline(data);
  ResultList twice = ExtendedSkyline(once.points);
  EXPECT_EQ(SortedIds(once.points), SortedIds(twice.points));
}

// SKY(ext(S)) == SKY(S): computing the skyline over the extended skyline
// loses nothing — the foundation of querying super-peer stores.
TEST_P(PropertyTest, SkylineOfExtSkylineIsSkyline) {
  PointSet data = RandomData(dims(), 400, 13 * dims(), gridded());
  ResultList ext = ExtendedSkyline(data);
  for (Subspace u : SubspacesOfSize(dims(), std::max(1, dims() - 2))) {
    EXPECT_EQ(SortedIds(BnlSkyline(ext.points, u)),
              SortedIds(BnlSkyline(data, u)))
        << u.ToString();
  }
}

// Merge is associative: merge(merge(A,B),C) == merge(A,B,C).
TEST_P(PropertyTest, MergeAssociative) {
  std::vector<ResultList> lists;
  for (int l = 0; l < 3; ++l) {
    lists.push_back(
        BuildSortedByF(RandomData(dims(), 120, 100 * l + dims(), gridded())));
  }
  const Subspace u = Subspace::FullSpace(dims());
  ResultList ab = MergeSortedSkylines(
      std::vector<const ResultList*>{&lists[0], &lists[1]}, u);
  ResultList ab_c = MergeSortedSkylines(
      std::vector<const ResultList*>{&ab, &lists[2]}, u);
  ResultList abc = MergeSortedSkylines(lists, u);
  EXPECT_EQ(SortedIds(ab_c.points), SortedIds(abc.points));
}

// The distribution theorem: the skyline of a horizontally partitioned
// dataset is the merge of the partition skylines.
TEST_P(PropertyTest, DistributionTheorem) {
  PointSet all = RandomData(dims(), 600, 17 * dims(), gridded());
  Rng rng(3);
  const auto parts = PartitionShuffled(all, 7, &rng);
  for (Subspace u :
       {Subspace::FullSpace(dims()), Subspace::FromDims({0, dims() - 1})}) {
    std::vector<ResultList> locals;
    for (const PointSet& part : parts) {
      locals.push_back(BuildSortedByF(SfsSkyline(part, u)));
    }
    EXPECT_EQ(SortedIds(MergeSortedSkylines(locals, u).points),
              SortedIds(SfsSkyline(all, u)))
        << u.ToString();
  }
}

// Threshold-filter equivalence (the cache's correctness argument): a
// scan under initial threshold t equals the unconstrained scan filtered
// in f-order with an evolving threshold.
TEST_P(PropertyTest, ThresholdFilterEquivalence) {
  PointSet data = RandomData(dims(), 500, 19 * dims(), gridded());
  ResultList sorted = BuildSortedByF(data);
  Rng rng(5);
  for (Subspace u :
       {Subspace::FullSpace(dims()), Subspace::FromDims({0, 1})}) {
    ResultList full = SortedSkyline(sorted, u);
    for (int trial = 0; trial < 10; ++trial) {
      const double t = rng.Uniform();
      ThresholdScanOptions options;
      options.initial_threshold = t;
      ResultList scanned = SortedSkyline(sorted, u, options);

      // Filter the unconstrained result.
      std::vector<PointId> filtered;
      double threshold = t;
      for (size_t i = 0; i < full.size(); ++i) {
        if (full.f[i] > threshold) {
          break;
        }
        filtered.push_back(full.points.id(i));
        threshold = std::min(threshold, DistU(full.points[i], u));
      }
      std::sort(filtered.begin(), filtered.end());
      EXPECT_EQ(SortedIds(scanned.points), filtered)
          << "t=" << t << " u=" << u.ToString();
    }
  }
}

// Scan results are insensitive to input order among equal-f points and to
// the dominance-test backend.
TEST_P(PropertyTest, ScanOrderInsensitive) {
  PointSet data = RandomData(dims(), 300, 23 * dims(), gridded());
  ResultList sorted = BuildSortedByF(data);
  const Subspace u = Subspace::FullSpace(dims());
  ThresholdScanOptions rtree_options;
  rtree_options.use_rtree = true;
  ThresholdScanOptions linear_options;
  linear_options.use_rtree = false;
  const auto a = SortedIds(SortedSkyline(sorted, u, rtree_options).points);
  const auto b = SortedIds(SortedSkyline(sorted, u, linear_options).points);
  EXPECT_EQ(a, b);

  // Shuffle the raw input; BuildSortedByF re-sorts (stable), results match.
  Rng rng(7);
  PointSet shuffled(data.dims());
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::shuffle(order.begin(), order.end(), rng.engine());
  for (size_t i : order) {
    shuffled.AppendFrom(data, i);
  }
  const auto c =
      SortedIds(SortedSkyline(BuildSortedByF(shuffled), u).points);
  EXPECT_EQ(a, c);
}

// Thresholds reported by the scan are achievable: every reported final
// threshold equals min(initial, min dist_U over the result).
TEST_P(PropertyTest, FinalThresholdIsTight) {
  PointSet data = RandomData(dims(), 200, 29 * dims(), gridded());
  ResultList sorted = BuildSortedByF(data);
  const Subspace u = Subspace::FullSpace(dims());
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const double t = 0.2 + rng.Uniform();
    ThresholdScanOptions options;
    options.initial_threshold = t;
    ThresholdScanStats stats;
    ResultList result = SortedSkyline(sorted, u, options, &stats);
    double expected = t;
    for (size_t i = 0; i < result.size(); ++i) {
      expected = std::min(expected, DistU(result.points[i], u));
    }
    EXPECT_DOUBLE_EQ(stats.final_threshold, expected);
  }
}

// Exhaustive two-point dominance orderings: for every per-dimension
// relation pattern in {p<q, p==q, p>q}^k (k up to 4, so 3^4 = 81 patterns)
// embedded at random dimension positions of a larger space,
// Dominates/ExtDominates/CompareDominance must agree with the
// ground truth derived from the pattern and with each other — pinning the
// early-exit in CompareDominance against the two boolean predicates.
// Equal-coordinate patterns are included (a point never dominates itself).
TEST(CompareDominanceTest, ExhaustiveTwoPointOrderings) {
  Rng rng(41);
  for (int k = 1; k <= 4; ++k) {
    int combos = 1;
    for (int i = 0; i < k; ++i) {
      combos *= 3;
    }
    for (int combo = 0; combo < combos; ++combo) {
      // Random embedding: k relation-carrying dimensions inside a larger
      // space; the remaining dimensions get random values that must not
      // affect any subspace-u outcome.
      const int dims = k + static_cast<int>(rng.UniformInt(0, 4));
      std::vector<int> all_dims(dims);
      for (int d = 0; d < dims; ++d) {
        all_dims[d] = d;
      }
      std::shuffle(all_dims.begin(), all_dims.end(), rng.engine());
      std::vector<int> u_dims(all_dims.begin(), all_dims.begin() + k);
      const Subspace u = Subspace::FromDims(u_dims);

      double p[kMaxDims];
      double q[kMaxDims];
      for (int d = 0; d < dims; ++d) {
        p[d] = rng.Uniform();
        q[d] = rng.Uniform();
      }
      bool any_lt = false;
      bool any_gt = false;
      bool all_lt = true;
      bool all_gt = true;
      int digits = combo;
      for (int j = 0; j < k; ++j) {
        const int rel = digits % 3;
        digits /= 3;
        const int d = u_dims[j];
        const double base = rng.Uniform();
        if (rel == 0) {  // p < q on d
          p[d] = base;
          q[d] = base + 0.5;
          any_lt = true;
          all_gt = false;
        } else if (rel == 1) {  // p == q on d
          p[d] = base;
          q[d] = base;
          all_lt = false;
          all_gt = false;
        } else {  // p > q on d
          p[d] = base + 0.5;
          q[d] = base;
          any_gt = true;
          all_lt = false;
        }
      }
      const bool expect_p_dom = any_lt && !any_gt;
      const bool expect_q_dom = any_gt && !any_lt;
      EXPECT_EQ(Dominates(p, q, u), expect_p_dom) << u.ToString();
      EXPECT_EQ(Dominates(q, p, u), expect_q_dom) << u.ToString();
      EXPECT_EQ(ExtDominates(p, q, u), all_lt) << u.ToString();
      EXPECT_EQ(ExtDominates(q, p, u), all_gt) << u.ToString();

      const DomRelation rel = CompareDominance(p, q, u);
      const DomRelation rev = CompareDominance(q, p, u);
      const DomRelation expect_rel =
          expect_p_dom ? DomRelation::kPDominatesQ
                       : (expect_q_dom ? DomRelation::kQDominatesP
                                       : DomRelation::kIncomparable);
      const DomRelation expect_rev =
          expect_q_dom ? DomRelation::kPDominatesQ
                       : (expect_p_dom ? DomRelation::kQDominatesP
                                       : DomRelation::kIncomparable);
      EXPECT_EQ(rel, expect_rel) << u.ToString();
      EXPECT_EQ(rev, expect_rev) << u.ToString();

      // Ext-dominance implies dominance (on non-equal points), and each
      // point trivially never dominates itself.
      if (all_lt) {
        EXPECT_TRUE(Dominates(p, q, u));
      }
      EXPECT_FALSE(Dominates(p, p, u));
      EXPECT_FALSE(ExtDominates(p, p, u));
      EXPECT_EQ(CompareDominance(p, p, u), DomRelation::kIncomparable);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PropertyTest,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8),
                                            ::testing::Bool()),
                         [](const auto& info) {
                           return "d" +
                                  std::to_string(std::get<0>(info.param)) +
                                  (std::get<1>(info.param) ? "_grid"
                                                           : "_cont");
                         });

}  // namespace
}  // namespace skypeer
