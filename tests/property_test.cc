// Randomized cross-invariant property tests tying the library's pieces
// together: algebraic laws of skyline/ext-skyline computation, the
// threshold-filter equivalence behind the result cache, and the
// distribution theorem behind SKYPEER itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/extended_skyline.h"
#include "skypeer/algo/merge.h"
#include "skypeer/algo/sfs.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/mapping.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/data/partition.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

PointSet RandomData(int dims, size_t n, uint64_t seed, bool gridded) {
  Rng rng(seed);
  if (!gridded) {
    return GenerateUniform(dims, n, &rng);
  }
  PointSet data(dims);
  for (size_t i = 0; i < n; ++i) {
    double row[kMaxDims];
    for (int d = 0; d < dims; ++d) {
      row[d] = rng.UniformInt(0, 5) / 6.0;
    }
    data.Append(row, i);
  }
  return data;
}

class PropertyTest : public ::testing::TestWithParam<std::tuple<int, bool>> {
 protected:
  int dims() const { return std::get<0>(GetParam()); }
  bool gridded() const { return std::get<1>(GetParam()); }
};

// ext(ext(S)) == ext(S): the extended skyline is idempotent.
TEST_P(PropertyTest, ExtSkylineIdempotent) {
  PointSet data = RandomData(dims(), 400, 11 * dims(), gridded());
  ResultList once = ExtendedSkyline(data);
  ResultList twice = ExtendedSkyline(once.points);
  EXPECT_EQ(SortedIds(once.points), SortedIds(twice.points));
}

// SKY(ext(S)) == SKY(S): computing the skyline over the extended skyline
// loses nothing — the foundation of querying super-peer stores.
TEST_P(PropertyTest, SkylineOfExtSkylineIsSkyline) {
  PointSet data = RandomData(dims(), 400, 13 * dims(), gridded());
  ResultList ext = ExtendedSkyline(data);
  for (Subspace u : SubspacesOfSize(dims(), std::max(1, dims() - 2))) {
    EXPECT_EQ(SortedIds(BnlSkyline(ext.points, u)),
              SortedIds(BnlSkyline(data, u)))
        << u.ToString();
  }
}

// Merge is associative: merge(merge(A,B),C) == merge(A,B,C).
TEST_P(PropertyTest, MergeAssociative) {
  std::vector<ResultList> lists;
  for (int l = 0; l < 3; ++l) {
    lists.push_back(
        BuildSortedByF(RandomData(dims(), 120, 100 * l + dims(), gridded())));
  }
  const Subspace u = Subspace::FullSpace(dims());
  ResultList ab = MergeSortedSkylines(
      std::vector<const ResultList*>{&lists[0], &lists[1]}, u);
  ResultList ab_c = MergeSortedSkylines(
      std::vector<const ResultList*>{&ab, &lists[2]}, u);
  ResultList abc = MergeSortedSkylines(lists, u);
  EXPECT_EQ(SortedIds(ab_c.points), SortedIds(abc.points));
}

// The distribution theorem: the skyline of a horizontally partitioned
// dataset is the merge of the partition skylines.
TEST_P(PropertyTest, DistributionTheorem) {
  PointSet all = RandomData(dims(), 600, 17 * dims(), gridded());
  Rng rng(3);
  const auto parts = PartitionShuffled(all, 7, &rng);
  for (Subspace u :
       {Subspace::FullSpace(dims()), Subspace::FromDims({0, dims() - 1})}) {
    std::vector<ResultList> locals;
    for (const PointSet& part : parts) {
      locals.push_back(BuildSortedByF(SfsSkyline(part, u)));
    }
    EXPECT_EQ(SortedIds(MergeSortedSkylines(locals, u).points),
              SortedIds(SfsSkyline(all, u)))
        << u.ToString();
  }
}

// Threshold-filter equivalence (the cache's correctness argument): a
// scan under initial threshold t equals the unconstrained scan filtered
// in f-order with an evolving threshold.
TEST_P(PropertyTest, ThresholdFilterEquivalence) {
  PointSet data = RandomData(dims(), 500, 19 * dims(), gridded());
  ResultList sorted = BuildSortedByF(data);
  Rng rng(5);
  for (Subspace u :
       {Subspace::FullSpace(dims()), Subspace::FromDims({0, 1})}) {
    ResultList full = SortedSkyline(sorted, u);
    for (int trial = 0; trial < 10; ++trial) {
      const double t = rng.Uniform();
      ThresholdScanOptions options;
      options.initial_threshold = t;
      ResultList scanned = SortedSkyline(sorted, u, options);

      // Filter the unconstrained result.
      std::vector<PointId> filtered;
      double threshold = t;
      for (size_t i = 0; i < full.size(); ++i) {
        if (full.f[i] > threshold) {
          break;
        }
        filtered.push_back(full.points.id(i));
        threshold = std::min(threshold, DistU(full.points[i], u));
      }
      std::sort(filtered.begin(), filtered.end());
      EXPECT_EQ(SortedIds(scanned.points), filtered)
          << "t=" << t << " u=" << u.ToString();
    }
  }
}

// Scan results are insensitive to input order among equal-f points and to
// the dominance-test backend.
TEST_P(PropertyTest, ScanOrderInsensitive) {
  PointSet data = RandomData(dims(), 300, 23 * dims(), gridded());
  ResultList sorted = BuildSortedByF(data);
  const Subspace u = Subspace::FullSpace(dims());
  ThresholdScanOptions rtree_options;
  rtree_options.use_rtree = true;
  ThresholdScanOptions linear_options;
  linear_options.use_rtree = false;
  const auto a = SortedIds(SortedSkyline(sorted, u, rtree_options).points);
  const auto b = SortedIds(SortedSkyline(sorted, u, linear_options).points);
  EXPECT_EQ(a, b);

  // Shuffle the raw input; BuildSortedByF re-sorts (stable), results match.
  Rng rng(7);
  PointSet shuffled(data.dims());
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::shuffle(order.begin(), order.end(), rng.engine());
  for (size_t i : order) {
    shuffled.AppendFrom(data, i);
  }
  const auto c =
      SortedIds(SortedSkyline(BuildSortedByF(shuffled), u).points);
  EXPECT_EQ(a, c);
}

// Thresholds reported by the scan are achievable: every reported final
// threshold equals min(initial, min dist_U over the result).
TEST_P(PropertyTest, FinalThresholdIsTight) {
  PointSet data = RandomData(dims(), 200, 29 * dims(), gridded());
  ResultList sorted = BuildSortedByF(data);
  const Subspace u = Subspace::FullSpace(dims());
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const double t = 0.2 + rng.Uniform();
    ThresholdScanOptions options;
    options.initial_threshold = t;
    ThresholdScanStats stats;
    ResultList result = SortedSkyline(sorted, u, options, &stats);
    double expected = t;
    for (size_t i = 0; i < result.size(); ++i) {
      expected = std::min(expected, DistU(result.points[i], u));
    }
    EXPECT_DOUBLE_EQ(stats.final_threshold, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PropertyTest,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8),
                                            ::testing::Bool()),
                         [](const auto& info) {
                           return "d" +
                                  std::to_string(std::get<0>(info.param)) +
                                  (std::get<1>(info.param) ? "_grid"
                                                           : "_cont");
                         });

}  // namespace
}  // namespace skypeer
