// Edge-case tests of the SkypeerNetwork facade that the main engine and
// churn suites do not cover: snapshot-restored networks vs churn,
// degenerate shapes, and cross-feature interactions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/engine/network_builder.h"
#include "skypeer/engine/persistence.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

NetworkConfig BaseConfig(uint64_t seed) {
  NetworkConfig config;
  config.num_peers = 30;
  config.num_super_peers = 6;
  config.points_per_peer = 25;
  config.dims = 4;
  config.seed = seed;
  return config;
}

TEST(NetworkEdge, RestoredNetworkRefusesChurn) {
  const std::string path =
      std::string(::testing::TempDir()) + "/edge_stores.bin";
  NetworkConfig config = BaseConfig(1);
  config.dynamic_membership = true;
  SkypeerNetwork original(config);
  original.Preprocess();
  ASSERT_TRUE(SaveStores(original, path).ok());

  SkypeerNetwork restored(config);
  ASSERT_TRUE(LoadStores(&restored, path).ok());
  // Queries work...
  QueryResult result =
      restored.ExecuteQuery(Subspace::FromDims({0, 1}), 0, Variant::kFTPM);
  EXPECT_GT(result.skyline.size(), 0u);
  // ... but removal fails cleanly: the snapshot carries no per-peer
  // lists (network-level ranges are also absent).
  EXPECT_FALSE(restored.RemovePeer(0).ok());
  std::remove(path.c_str());
}

TEST(NetworkEdge, CacheAndChurnAndPipelineTogether) {
  NetworkConfig config = BaseConfig(2);
  config.dynamic_membership = true;
  config.retain_peer_data = true;
  config.enable_cache = true;
  SkypeerNetwork network(config);
  network.Preprocess();
  const Subspace u = Subspace::FromDims({1, 3});

  // Warm cache, churn, and re-query under the pipeline variant.
  network.ExecuteQuery(u, 0, Variant::kRTPM);
  Rng rng(9);
  ASSERT_TRUE(network.JoinPeer(2, GenerateUniform(4, 15, &rng)).ok());
  QueryResult result = network.ExecuteQuery(u, 1, Variant::kPipeline);
  EXPECT_EQ(SortedIds(result.skyline.points),
            SortedIds(network.GroundTruthSkyline(u)));
}

TEST(NetworkEdge, SinglePointUniverse) {
  NetworkConfig config = BaseConfig(3);
  config.num_peers = 1;
  config.num_super_peers = 1;
  config.points_per_peer = 1;
  config.retain_peer_data = true;
  SkypeerNetwork network(config);
  network.Preprocess();
  for (Variant variant : kAllVariants) {
    QueryResult result =
        network.ExecuteQuery(Subspace::FullSpace(4), 0, variant);
    ASSERT_EQ(result.skyline.size(), 1u) << VariantName(variant);
    EXPECT_EQ(result.skyline.points.id(0), 0u);
  }
}

TEST(NetworkEdge, OneDimensionalData) {
  NetworkConfig config = BaseConfig(4);
  config.dims = 1;
  config.retain_peer_data = true;
  SkypeerNetwork network(config);
  network.Preprocess();
  const Subspace u = Subspace::FullSpace(1);
  const auto truth = SortedIds(network.GroundTruthSkyline(u));
  EXPECT_GE(truth.size(), 1u);
  for (Variant variant : kAllVariants) {
    EXPECT_EQ(SortedIds(network.ExecuteQuery(u, 0, variant).skyline.points),
              truth);
  }
}

TEST(NetworkEdge, MaxDimensionalityData) {
  NetworkConfig config = BaseConfig(5);
  config.dims = 32;  // kMaxDims.
  config.num_peers = 8;
  config.num_super_peers = 2;
  config.points_per_peer = 10;
  config.retain_peer_data = true;
  SkypeerNetwork network(config);
  network.Preprocess();
  const Subspace u = Subspace::FromDims({0, 15, 31});
  const auto truth = SortedIds(network.GroundTruthSkyline(u));
  EXPECT_EQ(SortedIds(
                network.ExecuteQuery(u, 0, Variant::kRTPM).skyline.points),
            truth);
}

TEST(NetworkEdge, HighLatencyLinksOnlyShiftTotalTime) {
  NetworkConfig fast = BaseConfig(6);
  fast.measure_cpu = false;
  NetworkConfig slow = BaseConfig(6);
  slow.measure_cpu = false;
  slow.latency = 0.5;
  SkypeerNetwork fast_network(fast);
  fast_network.Preprocess();
  SkypeerNetwork slow_network(slow);
  slow_network.Preprocess();
  const Subspace u = Subspace::FromDims({0, 2});
  const auto fast_result = fast_network.ExecuteQuery(u, 0, Variant::kFTPM);
  const auto slow_result = slow_network.ExecuteQuery(u, 0, Variant::kFTPM);
  EXPECT_EQ(SortedIds(fast_result.skyline.points),
            SortedIds(slow_result.skyline.points));
  EXPECT_EQ(fast_result.metrics.bytes_transferred,
            slow_result.metrics.bytes_transferred);
  EXPECT_GT(slow_result.metrics.total_time_s,
            fast_result.metrics.total_time_s + 1.0);
}

TEST(NetworkEdge, BandwidthScalesTransferTime) {
  // Doubling bandwidth roughly halves transfer-dominated total time
  // (zero CPU, zero latency).
  NetworkConfig narrow = BaseConfig(7);
  narrow.measure_cpu = false;
  narrow.bandwidth = 2048.0;
  NetworkConfig wide = BaseConfig(7);
  wide.measure_cpu = false;
  wide.bandwidth = 4096.0;
  SkypeerNetwork narrow_network(narrow);
  narrow_network.Preprocess();
  SkypeerNetwork wide_network(wide);
  wide_network.Preprocess();
  const Subspace u = Subspace::FromDims({1, 2});
  const double narrow_t =
      narrow_network.ExecuteQuery(u, 0, Variant::kFTFM).metrics.total_time_s;
  const double wide_t =
      wide_network.ExecuteQuery(u, 0, Variant::kFTFM).metrics.total_time_s;
  EXPECT_NEAR(narrow_t / wide_t, 2.0, 0.2);
}

}  // namespace
}  // namespace skypeer
