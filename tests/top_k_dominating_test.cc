// Tests of the top-k dominating query operator.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/top_k_dominating.h"
#include "skypeer/common/dominance.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"

namespace skypeer {
namespace {

TEST(TopKDominating, HandChecked) {
  // Chain: a=(1,1) dominates b, c, d; b=(2,2) dominates c, d; c=(3,3)
  // dominates d; e=(0.5, 4) dominates d — §3.1 dominance needs `<=` on
  // every dimension and `<` on at least one, and (0.5, 4) vs (4, 4) is
  // strictly smaller on the first dimension and equal on the second.
  PointSet data(2, {{1, 1}, {2, 2}, {3, 3}, {4, 4}, {0.5, 4}});
  const auto scores = DominationScores(data, Subspace::FullSpace(2));
  EXPECT_EQ(scores, (std::vector<size_t>{3, 2, 1, 0, 1}));

  const auto top = TopKDominating(data, Subspace::FullSpace(2), 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 0u);
  EXPECT_EQ(top[0].score, 3u);
  EXPECT_EQ(top[1].id, 1u);
  // c and e tie at score 1; the lower id wins the last slot.
  EXPECT_EQ(top[2].id, 2u);
  EXPECT_EQ(top[2].score, 1u);
}

TEST(TopKDominating, TiesBreakById) {
  PointSet data(1, {{1.0}, {1.0}, {2.0}});
  // Neither of the tied points dominates the other; both dominate #2.
  const auto top = TopKDominating(data, Subspace::FullSpace(1), 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 0u);
  EXPECT_EQ(top[0].score, 1u);
  EXPECT_EQ(top[1].id, 1u);
  EXPECT_EQ(top[1].score, 1u);
}

TEST(TopKDominating, KLargerThanDataset) {
  PointSet data(2, {{1, 1}, {2, 2}});
  EXPECT_EQ(TopKDominating(data, Subspace::FullSpace(2), 10).size(), 2u);
}

TEST(TopKDominating, EmptyInput) {
  PointSet data(3);
  EXPECT_TRUE(TopKDominating(data, Subspace::FullSpace(3), 5).empty());
  EXPECT_TRUE(DominationScores(data, Subspace::FullSpace(3)).empty());
}

TEST(TopKDominating, ScoresMatchBruteForce) {
  Rng rng(1);
  PointSet data = GenerateUniform(4, 200, &rng);
  for (Subspace u : {Subspace::FullSpace(4), Subspace::FromDims({1, 3})}) {
    const auto scores = DominationScores(data, u);
    for (size_t i = 0; i < data.size(); ++i) {
      size_t expected = 0;
      for (size_t j = 0; j < data.size(); ++j) {
        if (i != j && Dominates(data[i], data[j], u)) {
          ++expected;
        }
      }
      EXPECT_EQ(scores[i], expected) << "point " << i << " " << u.ToString();
    }
  }
}

TEST(TopKDominating, TopOneIsASkylinePoint) {
  // The maximum-score point cannot be dominated (its dominator would
  // score strictly higher), so it is on the skyline.
  for (uint64_t seed : {2u, 3u, 4u}) {
    Rng rng(seed);
    PointSet data = GenerateUniform(3, 300, &rng);
    const Subspace u = Subspace::FullSpace(3);
    const auto top = TopKDominating(data, u, 1);
    ASSERT_EQ(top.size(), 1u);
    const auto skyline = BnlSkyline(data, u).Ids();
    EXPECT_TRUE(std::find(skyline.begin(), skyline.end(), top[0].id) !=
                skyline.end());
  }
}

TEST(TopKDominating, ScoresAreDescending) {
  Rng rng(5);
  PointSet data = GenerateAnticorrelated(3, 250, &rng);
  const auto top = TopKDominating(data, Subspace::FullSpace(3), 50);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
  // Exactly k distinct points.
  std::set<PointId> ids;
  for (const DominatingPoint& p : top) {
    ids.insert(p.id);
  }
  EXPECT_EQ(ids.size(), top.size());
}

}  // namespace
}  // namespace skypeer
