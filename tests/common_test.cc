// Unit tests for the common module: Subspace, PointSet, dominance tests,
// the f/dist_U mapping, Status and Rng.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "skypeer/common/dominance.h"
#include "skypeer/common/mapping.h"
#include "skypeer/common/point_set.h"
#include "skypeer/common/rng.h"
#include "skypeer/common/status.h"
#include "skypeer/common/subspace.h"

namespace skypeer {
namespace {

// --- Subspace ---------------------------------------------------------------

TEST(Subspace, DefaultIsEmpty) {
  Subspace s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Count(), 0);
}

TEST(Subspace, FullSpace) {
  Subspace s = Subspace::FullSpace(5);
  EXPECT_EQ(s.Count(), 5);
  for (int d = 0; d < 5; ++d) {
    EXPECT_TRUE(s.Contains(d));
  }
  EXPECT_FALSE(s.Contains(5));
}

TEST(Subspace, FullSpaceMaxDims) {
  Subspace s = Subspace::FullSpace(32);
  EXPECT_EQ(s.Count(), 32);
  EXPECT_TRUE(s.Contains(31));
}

TEST(SubspaceDeathTest, FullSpaceRejectsOutOfRangeDims) {
  // A 40-d config used to be silently truncated to a 32-d subspace; it
  // must abort instead. dims == kMaxDims stays valid (tested above).
  EXPECT_DEATH(Subspace::FullSpace(kMaxDims + 1), "dims <= kMaxDims");
  EXPECT_DEATH(Subspace::FullSpace(40), "dims <= kMaxDims");
  EXPECT_DEATH(Subspace::FullSpace(-1), "dims >= 0");
  EXPECT_EQ(Subspace::FullSpace(0).Count(), 0);  // Empty-set sentinel.
}

TEST(Subspace, FromDims) {
  Subspace s = Subspace::FromDims({1, 4, 7});
  EXPECT_EQ(s.Count(), 3);
  EXPECT_TRUE(s.Contains(1));
  EXPECT_TRUE(s.Contains(4));
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(0));
  EXPECT_EQ(s.Dims(), (std::vector<int>{1, 4, 7}));
}

TEST(Subspace, FromDimsVector) {
  std::vector<int> dims = {0, 3};
  EXPECT_EQ(Subspace::FromDims(dims), Subspace::FromDims({0, 3}));
}

TEST(Subspace, IterationAscending) {
  Subspace s = Subspace::FromDims({6, 0, 3});
  std::vector<int> seen;
  for (int dim : s) {
    seen.push_back(dim);
  }
  EXPECT_EQ(seen, (std::vector<int>{0, 3, 6}));
}

TEST(Subspace, IterationOfEmptySetIsEmpty) {
  int iterations = 0;
  for (int dim : Subspace()) {
    (void)dim;
    ++iterations;
  }
  EXPECT_EQ(iterations, 0);
}

TEST(Subspace, SupersetRelation) {
  Subspace big = Subspace::FromDims({0, 1, 2, 5});
  Subspace small = Subspace::FromDims({1, 5});
  EXPECT_TRUE(big.IsSupersetOf(small));
  EXPECT_FALSE(small.IsSupersetOf(big));
  EXPECT_TRUE(big.IsSupersetOf(big));
  EXPECT_TRUE(big.IsSupersetOf(Subspace()));
}

TEST(Subspace, ToString) {
  EXPECT_EQ(Subspace::FromDims({0, 2, 5}).ToString(), "{0,2,5}");
  EXPECT_EQ(Subspace().ToString(), "{}");
}

TEST(Subspace, AllSubspacesCount) {
  EXPECT_EQ(AllSubspaces(1).size(), 1u);
  EXPECT_EQ(AllSubspaces(3).size(), 7u);
  EXPECT_EQ(AllSubspaces(5).size(), 31u);
}

TEST(Subspace, AllSubspacesAreDistinctAndNonEmpty) {
  std::set<uint32_t> masks;
  for (Subspace s : AllSubspaces(4)) {
    EXPECT_FALSE(s.empty());
    masks.insert(s.mask());
  }
  EXPECT_EQ(masks.size(), 15u);
}

TEST(Subspace, SubspacesOfSize) {
  // C(5, 2) = 10.
  const std::vector<Subspace> pairs = SubspacesOfSize(5, 2);
  EXPECT_EQ(pairs.size(), 10u);
  for (Subspace s : pairs) {
    EXPECT_EQ(s.Count(), 2);
  }
  EXPECT_EQ(SubspacesOfSize(5, 5).size(), 1u);
  EXPECT_EQ(SubspacesOfSize(5, 1).size(), 5u);
}

// --- PointSet ---------------------------------------------------------------

TEST(PointSet, EmptyOnConstruction) {
  PointSet points(3);
  EXPECT_EQ(points.dims(), 3);
  EXPECT_EQ(points.size(), 0u);
  EXPECT_TRUE(points.empty());
}

TEST(PointSet, InitializerListConstruction) {
  PointSet points(2, {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0][0], 1.0);
  EXPECT_EQ(points[0][1], 2.0);
  EXPECT_EQ(points[2][1], 6.0);
  EXPECT_EQ(points.id(0), 0u);
  EXPECT_EQ(points.id(2), 2u);
}

TEST(PointSet, AppendAndAccess) {
  PointSet points(3);
  const double row[] = {0.5, 0.25, 0.75};
  points.Append(row, 42);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points.id(0), 42u);
  EXPECT_EQ(points[0][2], 0.75);
}

TEST(PointSet, AppendFromCopiesIdAndCoords) {
  PointSet a(2, {{1.0, 2.0}, {3.0, 4.0}});
  PointSet b(2);
  b.AppendFrom(a, 1);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.id(0), 1u);
  EXPECT_EQ(b[0][0], 3.0);
}

TEST(PointSet, AppendAll) {
  PointSet a(2, {{1.0, 2.0}});
  PointSet b(2, {{3.0, 4.0}, {5.0, 6.0}});
  a.AppendAll(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2][0], 5.0);
}

TEST(PointSet, Permute) {
  PointSet points(1, {{10.0}, {20.0}, {30.0}});
  points.Permute({2, 0, 1});
  EXPECT_EQ(points[0][0], 30.0);
  EXPECT_EQ(points[1][0], 10.0);
  EXPECT_EQ(points[2][0], 20.0);
  EXPECT_EQ(points.id(0), 2u);
}

TEST(PointSet, ContainsId) {
  PointSet points(1, {{1.0}, {2.0}});
  EXPECT_TRUE(points.ContainsId(0));
  EXPECT_TRUE(points.ContainsId(1));
  EXPECT_FALSE(points.ContainsId(7));
}

TEST(PointSet, ClearKeepsDims) {
  PointSet points(4, {{1, 2, 3, 4}});
  points.Clear();
  EXPECT_TRUE(points.empty());
  EXPECT_EQ(points.dims(), 4);
}

TEST(PointSet, MutableRow) {
  PointSet points(2, {{1.0, 2.0}});
  points.mutable_row(0)[1] = 9.0;
  EXPECT_EQ(points[0][1], 9.0);
}

// --- dominance --------------------------------------------------------------

TEST(Dominance, BasicDomination) {
  const double p[] = {1.0, 2.0};
  const double q[] = {2.0, 3.0};
  Subspace u = Subspace::FullSpace(2);
  EXPECT_TRUE(Dominates(p, q, u));
  EXPECT_FALSE(Dominates(q, p, u));
}

TEST(Dominance, EqualPointsDoNotDominate) {
  const double p[] = {1.0, 2.0};
  const double q[] = {1.0, 2.0};
  Subspace u = Subspace::FullSpace(2);
  EXPECT_FALSE(Dominates(p, q, u));
  EXPECT_FALSE(Dominates(q, p, u));
}

TEST(Dominance, PartialTieStillDominates) {
  const double p[] = {1.0, 2.0};
  const double q[] = {1.0, 3.0};
  Subspace u = Subspace::FullSpace(2);
  EXPECT_TRUE(Dominates(p, q, u));
  // Ext-dominance requires strictness on *every* dimension.
  EXPECT_FALSE(ExtDominates(p, q, u));
}

TEST(Dominance, ExtDominationIsStrictEverywhere) {
  const double p[] = {1.0, 2.0};
  const double q[] = {2.0, 3.0};
  Subspace u = Subspace::FullSpace(2);
  EXPECT_TRUE(ExtDominates(p, q, u));
  EXPECT_FALSE(ExtDominates(q, p, u));
}

TEST(Dominance, SubspaceRestriction) {
  // p is worse on dim 1 but better on dim 0.
  const double p[] = {1.0, 5.0};
  const double q[] = {2.0, 3.0};
  EXPECT_FALSE(Dominates(p, q, Subspace::FullSpace(2)));
  EXPECT_TRUE(Dominates(p, q, Subspace::FromDims({0})));
  EXPECT_TRUE(Dominates(q, p, Subspace::FromDims({1})));
}

TEST(Dominance, ExtImpliesRegular) {
  Rng rng(3);
  Subspace u = Subspace::FullSpace(4);
  for (int trial = 0; trial < 200; ++trial) {
    double p[4];
    double q[4];
    for (int d = 0; d < 4; ++d) {
      p[d] = rng.Uniform();
      q[d] = rng.Uniform();
    }
    if (ExtDominates(p, q, u)) {
      EXPECT_TRUE(Dominates(p, q, u));
    }
  }
}

TEST(Dominance, EqualPointsAreIncomparable) {
  // Equal coordinates on every queried dimension: neither point
  // dominates, and the three-way relation agrees.
  const double p[] = {1.0, 2.0, 3.0};
  const double q[] = {1.0, 2.0, 3.0};
  for (Subspace u : AllSubspaces(3)) {
    EXPECT_FALSE(Dominates(p, q, u)) << u.ToString();
    EXPECT_FALSE(Dominates(q, p, u)) << u.ToString();
    EXPECT_EQ(CompareDominance(p, q, u), DomRelation::kIncomparable)
        << u.ToString();
  }
}

TEST(Dominance, DuplicateCoordinatesOnQueriedDims) {
  // Points that differ only outside the queried subspace are equal
  // *within* it — duplicates under u must behave like equal points.
  const double p[] = {1.0, 2.0, 9.0};
  const double q[] = {1.0, 2.0, 4.0};
  const Subspace u = Subspace::FromDims({0, 1});
  EXPECT_FALSE(Dominates(p, q, u));
  EXPECT_FALSE(Dominates(q, p, u));
  EXPECT_EQ(CompareDominance(p, q, u), DomRelation::kIncomparable);
  // On the full space the third dimension decides.
  EXPECT_TRUE(Dominates(q, p, Subspace::FullSpace(3)));
  EXPECT_EQ(CompareDominance(p, q, Subspace::FullSpace(3)),
            DomRelation::kQDominatesP);
}

TEST(Dominance, SingleStrictDimensionSuffices) {
  // The §3.1 boundary case the top-k hand-check tripped over: smaller on
  // one dimension, equal on the rest, still dominates.
  const double p[] = {0.5, 4.0};
  const double q[] = {4.0, 4.0};
  const Subspace u = Subspace::FullSpace(2);
  EXPECT_TRUE(Dominates(p, q, u));
  EXPECT_FALSE(Dominates(q, p, u));
  EXPECT_EQ(CompareDominance(p, q, u), DomRelation::kPDominatesQ);
  // Ext-dominance still fails: the tie on dimension 1 breaks strictness.
  EXPECT_FALSE(ExtDominates(p, q, u));
}

TEST(Dominance, CompareMatchesPairwiseTests) {
  Rng rng(11);
  Subspace u = Subspace::FromDims({0, 2});
  for (int trial = 0; trial < 300; ++trial) {
    double p[3];
    double q[3];
    for (int d = 0; d < 3; ++d) {
      // Coarse grid so ties occur often.
      p[d] = std::floor(rng.Uniform() * 4) / 4.0;
      q[d] = std::floor(rng.Uniform() * 4) / 4.0;
    }
    const DomRelation rel = CompareDominance(p, q, u);
    EXPECT_EQ(rel == DomRelation::kPDominatesQ, Dominates(p, q, u));
    EXPECT_EQ(rel == DomRelation::kQDominatesP, Dominates(q, p, u));
  }
}

// --- mapping ----------------------------------------------------------------

TEST(Mapping, MinCoord) {
  const double p[] = {3.0, 1.0, 2.0};
  EXPECT_EQ(MinCoord(p, 3), 1.0);
  EXPECT_EQ(MinCoord(p, 1), 3.0);
}

TEST(Mapping, DistU) {
  const double p[] = {3.0, 1.0, 2.0};
  EXPECT_EQ(DistU(p, Subspace::FullSpace(3)), 3.0);
  EXPECT_EQ(DistU(p, Subspace::FromDims({1, 2})), 2.0);
  EXPECT_EQ(DistU(p, Subspace::FromDims({1})), 1.0);
}

TEST(Mapping, FNeverExceedsDistU) {
  // f(p) = min over all dims <= max over any subset, the inequality
  // Observation 5 rests on.
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    double p[6];
    for (int d = 0; d < 6; ++d) {
      p[d] = rng.Uniform();
    }
    for (Subspace u : AllSubspaces(6)) {
      EXPECT_LE(MinCoord(p, 6), DistU(p, u));
    }
  }
}

// Observation 5, directly: if f(q) > dist_U(p) then p dominates (and even
// ext-dominates) q on U.
TEST(Mapping, Observation5Pruning) {
  Rng rng(6);
  for (int trial = 0; trial < 500; ++trial) {
    double p[4];
    double q[4];
    for (int d = 0; d < 4; ++d) {
      p[d] = rng.Uniform();
      q[d] = rng.Uniform();
    }
    for (Subspace u : AllSubspaces(4)) {
      if (MinCoord(q, 4) > DistU(p, u)) {
        EXPECT_TRUE(Dominates(p, q, u));
        EXPECT_TRUE(ExtDominates(p, q, u));
      }
    }
  }
}

// --- Status -----------------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dims");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dims");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(Status, AllCodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

namespace status_macro {
Status Fails() { return Status::Internal("boom"); }
Status Propagates() {
  SKYPEER_RETURN_IF_ERROR(Fails());
  return Status::OK();
}
Status PassesThrough() {
  SKYPEER_RETURN_IF_ERROR(Status::OK());
  return Status::NotFound("reached end");
}
}  // namespace status_macro

TEST(Status, ReturnIfErrorMacro) {
  EXPECT_EQ(status_macro::Propagates().code(), StatusCode::kInternal);
  EXPECT_EQ(status_macro::PassesThrough().code(), StatusCode::kNotFound);
}

// --- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicBySeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    const double y = rng.Uniform(2.0, 5.0);
    EXPECT_GE(y, 2.0);
    EXPECT_LT(y, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(9);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(1.0, 0.5);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(77);
  const uint64_t child_seed = parent.Fork();
  Rng parent_copy(77);
  EXPECT_EQ(parent_copy.Fork(), child_seed);  // Fork is deterministic.
  Rng child(child_seed);
  // Child stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.Uniform() == child.Uniform()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace skypeer
