// Tests of the SUBSKY-style cluster-anchored subspace skyline index.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "skypeer/algo/anchored_skyline.h"
#include "skypeer/algo/bnl.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

PointSet MakeData(Distribution distribution, int dims, size_t n,
                  uint64_t seed) {
  Rng rng(seed);
  switch (distribution) {
    case Distribution::kUniform:
      return GenerateUniform(dims, n, &rng);
    case Distribution::kClustered: {
      // A genuinely multi-modal dataset: several clusters.
      PointSet data(dims);
      for (int c = 0; c < 4; ++c) {
        PointSet part = GenerateClustered(RandomCentroid(dims, &rng), n / 4,
                                          kClusterStdDev, &rng, c * n);
        data.AppendAll(part);
      }
      return data;
    }
    case Distribution::kCorrelated:
      return GenerateCorrelated(dims, n, &rng);
    case Distribution::kAnticorrelated:
      return GenerateAnticorrelated(dims, n, &rng);
  }
  return PointSet(dims);
}

TEST(AnchoredSkyline, EmptyInput) {
  AnchoredSkylineIndex index(PointSet(3), {});
  EXPECT_EQ(index.num_clusters(), 0);
  EXPECT_TRUE(index.Query(Subspace::FullSpace(3)).empty());
}

TEST(AnchoredSkyline, FewerPointsThanAnchors) {
  PointSet data(2, {{0.5, 0.5}, {0.2, 0.9}});
  AnchoredSkylineIndex::Options options;
  options.num_anchors = 16;
  AnchoredSkylineIndex index(data, options);
  EXPECT_LE(index.num_clusters(), 2);
  EXPECT_EQ(SortedIds(index.Query(Subspace::FullSpace(2))),
            (std::vector<PointId>{0, 1}));
}

TEST(AnchoredSkyline, ClusterSizesCoverData) {
  PointSet data = MakeData(Distribution::kClustered, 4, 800, 3);
  AnchoredSkylineIndex index(data, {});
  size_t total = 0;
  for (int c = 0; c < index.num_clusters(); ++c) {
    total += index.cluster_size(c);
    EXPECT_EQ(index.cluster_lower_corner(c).size(), 4u);
  }
  EXPECT_EQ(total, data.size());
}

class AnchoredEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Distribution, int, int>> {};

TEST_P(AnchoredEquivalenceTest, MatchesBnlOnAllQueriedSubspaces) {
  const auto [distribution, dims, anchors] = GetParam();
  PointSet data = MakeData(distribution, dims, 600,
                           100 + dims + anchors);
  AnchoredSkylineIndex::Options options;
  options.num_anchors = anchors;
  AnchoredSkylineIndex index(data, options);

  std::vector<Subspace> subspaces = {Subspace::FullSpace(dims),
                                     Subspace::FromDims({0})};
  if (dims >= 3) {
    subspaces.push_back(Subspace::FromDims({0, 2}));
    subspaces.push_back(Subspace::FromDims({1, 2}));
  }
  for (Subspace u : subspaces) {
    ThresholdScanStats stats;
    PointSet result = index.Query(u, &stats);
    EXPECT_EQ(SortedIds(result), SortedIds(BnlSkyline(data, u)))
        << DistributionName(distribution) << " u=" << u.ToString();
    EXPECT_LE(stats.scanned, data.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnchoredEquivalenceTest,
    ::testing::Combine(::testing::Values(Distribution::kUniform,
                                         Distribution::kClustered,
                                         Distribution::kAnticorrelated),
                       ::testing::Values(2, 4, 6),
                       ::testing::Values(1, 4, 12)),
    [](const auto& info) {
      return std::string(DistributionName(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_a" +
             std::to_string(std::get<2>(info.param));
    });

TEST(AnchoredSkyline, GriddedDataWithTies) {
  Rng rng(7);
  PointSet data(3);
  for (int i = 0; i < 400; ++i) {
    double row[3];
    for (int d = 0; d < 3; ++d) {
      row[d] = rng.UniformInt(0, 4) / 5.0;
    }
    data.Append(row, i);
  }
  AnchoredSkylineIndex index(data, {});
  for (Subspace u : AllSubspaces(3)) {
    EXPECT_EQ(SortedIds(index.Query(u)), SortedIds(BnlSkyline(data, u)))
        << u.ToString();
  }
}

TEST(AnchoredSkyline, PrunesScansOnClusteredData) {
  // On multi-modal data per-cluster anchors tighten the pruning bound:
  // the multi-anchor index must consume no more points than the
  // single-anchor one, and both must prune something.
  PointSet data = MakeData(Distribution::kClustered, 5, 4000, 9);
  AnchoredSkylineIndex::Options multi;
  multi.num_anchors = 8;
  AnchoredSkylineIndex::Options single;
  single.num_anchors = 1;
  ThresholdScanStats multi_stats;
  ThresholdScanStats single_stats;
  AnchoredSkylineIndex(data, multi).Query(Subspace::FromDims({0, 1, 2}),
                                          &multi_stats);
  AnchoredSkylineIndex(data, single).Query(Subspace::FromDims({0, 1, 2}),
                                           &single_stats);
  EXPECT_LE(multi_stats.scanned, single_stats.scanned);
  EXPECT_LT(multi_stats.scanned, data.size());
}

TEST(AnchoredSkyline, MoreAnchorsNeverHurtCorrectness) {
  PointSet data = MakeData(Distribution::kUniform, 4, 500, 11);
  const auto truth = SortedIds(BnlSkyline(data, Subspace::FullSpace(4)));
  for (int anchors : {1, 2, 3, 5, 9, 17}) {
    AnchoredSkylineIndex::Options options;
    options.num_anchors = anchors;
    AnchoredSkylineIndex index(data, options);
    EXPECT_EQ(SortedIds(index.Query(Subspace::FullSpace(4))), truth)
        << anchors << " anchors";
  }
}

}  // namespace
}  // namespace skypeer
