// Tests of the k-skyband operator.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/skyband.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(Skyband, BandOneIsSkyline) {
  Rng rng(1);
  PointSet data = GenerateUniform(4, 300, &rng);
  for (Subspace u : {Subspace::FullSpace(4), Subspace::FromDims({1, 3})}) {
    EXPECT_EQ(SortedIds(KSkyband(data, u, 1)), SortedIds(BnlSkyline(data, u)));
  }
}

TEST(Skyband, BandsAreNested) {
  Rng rng(2);
  PointSet data = GenerateUniform(3, 200, &rng);
  const Subspace u = Subspace::FullSpace(3);
  std::vector<PointId> previous;
  for (int band = 1; band <= 5; ++band) {
    const std::vector<PointId> current = SortedIds(KSkyband(data, u, band));
    EXPECT_TRUE(std::includes(current.begin(), current.end(),
                              previous.begin(), previous.end()))
        << "band " << band;
    EXPECT_GE(current.size(), previous.size());
    previous = current;
  }
}

TEST(Skyband, LargeBandReturnsEverything) {
  Rng rng(3);
  PointSet data = GenerateUniform(2, 50, &rng);
  EXPECT_EQ(KSkyband(data, Subspace::FullSpace(2), 1000).size(), data.size());
}

TEST(Skyband, HandChecked) {
  // Chain a < b < c < d on both dims: a dominates all, b dominated by 1,
  // c by 2, d by 3.
  PointSet data(2, {{1, 1}, {2, 2}, {3, 3}, {4, 4}});
  const Subspace u = Subspace::FullSpace(2);
  EXPECT_EQ(SortedIds(KSkyband(data, u, 1)), (std::vector<PointId>{0}));
  EXPECT_EQ(SortedIds(KSkyband(data, u, 2)), (std::vector<PointId>{0, 1}));
  EXPECT_EQ(SortedIds(KSkyband(data, u, 3)), (std::vector<PointId>{0, 1, 2}));
  EXPECT_EQ(SortedIds(KSkyband(data, u, 4)),
            (std::vector<PointId>{0, 1, 2, 3}));
}

TEST(Skyband, DominanceCount) {
  PointSet data(2, {{1, 1}, {2, 2}, {3, 3}});
  const Subspace u = Subspace::FullSpace(2);
  EXPECT_EQ(DominanceCount(data, data[0], u), 0u);
  EXPECT_EQ(DominanceCount(data, data[1], u), 1u);
  EXPECT_EQ(DominanceCount(data, data[2], u), 2u);
  const double outside[] = {0.5, 0.5};
  EXPECT_EQ(DominanceCount(data, outside, u), 0u);
}

TEST(Skyband, MembershipMatchesDominanceCount) {
  Rng rng(4);
  PointSet data = GenerateUniform(3, 150, &rng);
  const Subspace u = Subspace::FromDims({0, 2});
  for (int band : {1, 2, 4}) {
    PointSet result = KSkyband(data, u, band);
    std::vector<PointId> ids = result.Ids();
    for (size_t i = 0; i < data.size(); ++i) {
      const bool in_band =
          std::find(ids.begin(), ids.end(), data.id(i)) != ids.end();
      EXPECT_EQ(in_band,
                DominanceCount(data, data[i], u) < static_cast<size_t>(band));
    }
  }
}

}  // namespace
}  // namespace skypeer

namespace skypeer {
namespace {

PointSet GriddedData(int dims, size_t n, int levels, uint64_t seed) {
  Rng rng(seed);
  PointSet data(dims);
  for (size_t i = 0; i < n; ++i) {
    double row[kMaxDims];
    for (int d = 0; d < dims; ++d) {
      row[d] = rng.UniformInt(0, levels - 1) / static_cast<double>(levels);
    }
    data.Append(row, i);
  }
  return data;
}

TEST(ExtKSkyband, BandOneIsExtendedSkyline) {
  PointSet data = GriddedData(4, 250, 5, 1);
  for (Subspace u : {Subspace::FullSpace(4), Subspace::FromDims({0, 2})}) {
    EXPECT_EQ(SortedIds(ExtKSkyband(data, u, 1)),
              SortedIds(BnlSkyline(data, u, /*ext=*/true)));
  }
}

TEST(ExtKSkyband, ContainsRegularSkyband) {
  // Ext-dominance is stricter, so fewer dominators per point: the
  // extended band is a superset of the regular one.
  PointSet data = GriddedData(3, 300, 4, 2);
  const Subspace u = Subspace::FullSpace(3);
  for (int band : {1, 2, 4}) {
    const auto regular = SortedIds(KSkyband(data, u, band));
    const auto extended = SortedIds(ExtKSkyband(data, u, band));
    EXPECT_TRUE(std::includes(extended.begin(), extended.end(),
                              regular.begin(), regular.end()))
        << "band " << band;
  }
}

// The skyband analogue of Observation 4: SKYBAND_V(k) is contained in
// ext-SKYBAND_U(k) for every V subset of U — the property enabling
// distributed subspace k-skyband queries from extended-skyband stores.
TEST(ExtKSkyband, Observation4Analogue) {
  PointSet data = GriddedData(4, 250, 4, 3);
  for (int band : {1, 2, 3}) {
    const auto ext_full = SortedIds(
        ExtKSkyband(data, Subspace::FullSpace(4), band));
    for (Subspace v : AllSubspaces(4)) {
      for (PointId id : KSkyband(data, v, band).Ids()) {
        EXPECT_TRUE(std::binary_search(ext_full.begin(), ext_full.end(), id))
            << "band " << band << " V=" << v.ToString() << " point " << id;
      }
    }
  }
}

// Distribution property: the global k-skyband is contained in the union
// of local k-skybands (a point's global dominators include its local
// ones), so skyband queries decompose across peers like skylines do.
TEST(ExtKSkyband, LocalBandsCoverGlobalBand) {
  PointSet data = GriddedData(3, 400, 5, 4);
  // Split into 4 partitions.
  std::vector<PointSet> parts(4, PointSet(3));
  for (size_t i = 0; i < data.size(); ++i) {
    parts[i % 4].AppendFrom(data, i);
  }
  const Subspace u = Subspace::FullSpace(3);
  for (int band : {1, 3}) {
    std::set<PointId> local_union;
    for (const PointSet& part : parts) {
      for (PointId id : KSkyband(part, u, band).Ids()) {
        local_union.insert(id);
      }
    }
    for (PointId id : KSkyband(data, u, band).Ids()) {
      EXPECT_EQ(local_union.count(id), 1u) << "band " << band;
    }
  }
}

}  // namespace
}  // namespace skypeer
