// Tests for the Graph primitive, the Waxman generator and the two-tier
// overlay builder.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "skypeer/common/rng.h"
#include "skypeer/topology/graph.h"
#include "skypeer/topology/overlay.h"

namespace skypeer {
namespace {

TEST(Graph, AddEdgeBasics) {
  Graph g(4);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(0, 1));  // Duplicate.
  EXPECT_FALSE(g.AddEdge(1, 0));  // Duplicate, reversed.
  EXPECT_FALSE(g.AddEdge(2, 2));  // Self-loop.
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(Graph, AverageDegree) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.5);  // 2*3/4.
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  EXPECT_FALSE(g.IsConnected());
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.IsConnected());
}

TEST(Graph, SingleNodeIsConnected) {
  Graph g(1);
  EXPECT_TRUE(g.IsConnected());
}

TEST(Graph, HopDistances) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  const auto dist = g.HopDistances(0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[4], -1);  // Unreachable.
}

TEST(Graph, AveragePathLengthOnPath) {
  // Path 0-1-2: distances from 0 are {1,2}, from 1 {1,1}, from 2 {1,2}.
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  Rng rng(1);
  const double apl = g.AveragePathLength(50, &rng);
  EXPECT_GT(apl, 1.0);
  EXPECT_LT(apl, 2.0);
}

TEST(Waxman, ConnectedAtAllSizes) {
  for (int n : {1, 2, 5, 40, 200}) {
    Rng rng(100 + n);
    Graph g = GenerateWaxmanGraph(n, 4.0, &rng);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_TRUE(g.IsConnected()) << "n=" << n;
  }
}

TEST(Waxman, HitsTargetAverageDegree) {
  for (double target : {4.0, 5.0, 6.0, 7.0}) {
    Rng rng(static_cast<uint64_t>(target * 13));
    Graph g = GenerateWaxmanGraph(400, target, &rng);
    // Within 15% of the requested degree (connectivity repair adds a few
    // edges; sampling adds noise).
    EXPECT_NEAR(g.AverageDegree(), target, 0.15 * target)
        << "target " << target;
  }
}

TEST(Waxman, HigherDegreeShortensPaths) {
  Rng rng4(7);
  Rng rng7(7);
  Graph sparse = GenerateWaxmanGraph(300, 4.0, &rng4);
  Graph dense = GenerateWaxmanGraph(300, 7.0, &rng7);
  Rng apl_rng(1);
  Rng apl_rng2(1);
  EXPECT_LT(dense.AveragePathLength(50, &apl_rng2),
            sparse.AveragePathLength(50, &apl_rng));
}

TEST(Waxman, DeterministicBySeed) {
  Rng a(55);
  Rng b(55);
  Graph ga = GenerateWaxmanGraph(100, 4.0, &a);
  Graph gb = GenerateWaxmanGraph(100, 4.0, &b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ga.Neighbors(i), gb.Neighbors(i));
  }
}

TEST(Waxman, ZeroDegreeStillConnects) {
  // Even with target degree 0 the repair pass yields a spanning structure.
  Rng rng(3);
  Graph g = GenerateWaxmanGraph(20, 0.0, &rng);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_GE(g.num_edges(), 19u);
}

// --- overlay ------------------------------------------------------------

TEST(Overlay, DefaultSuperPeerRule) {
  EXPECT_EQ(DefaultNumSuperPeers(4000), 200);    // 5%.
  EXPECT_EQ(DefaultNumSuperPeers(12000), 600);   // 5%.
  EXPECT_EQ(DefaultNumSuperPeers(20000), 200);   // 1% from 20000 on.
  EXPECT_EQ(DefaultNumSuperPeers(80000), 800);   // 1%.
  EXPECT_EQ(DefaultNumSuperPeers(5), 1);         // At least one.
}

TEST(Overlay, ValidateRejectsBadConfigs) {
  OverlayConfig config;
  config.num_peers = 0;
  EXPECT_FALSE(ValidateOverlayConfig(config).ok());
  config.num_peers = 10;
  config.num_super_peers = 20;
  EXPECT_FALSE(ValidateOverlayConfig(config).ok());
  config.num_super_peers = 2;
  config.degree_sp = -1.0;
  EXPECT_FALSE(ValidateOverlayConfig(config).ok());
  config.degree_sp = 4.0;
  EXPECT_TRUE(ValidateOverlayConfig(config).ok());
}

TEST(Overlay, EvenPeerAssignment) {
  OverlayConfig config;
  config.num_peers = 103;
  config.num_super_peers = 10;
  config.seed = 5;
  Overlay overlay = BuildOverlay(config);
  EXPECT_EQ(overlay.num_peers(), 103);
  EXPECT_EQ(overlay.num_super_peers(), 10);
  size_t total = 0;
  for (const auto& peers : overlay.super_peer_peers) {
    EXPECT_TRUE(peers.size() == 10 || peers.size() == 11);
    total += peers.size();
  }
  EXPECT_EQ(total, 103u);
  // Mapping is consistent both ways.
  for (int peer = 0; peer < overlay.num_peers(); ++peer) {
    const int sp = overlay.peer_super_peer[peer];
    const auto& list = overlay.super_peer_peers[sp];
    EXPECT_TRUE(std::find(list.begin(), list.end(), peer) != list.end());
  }
}

TEST(Overlay, PaperDefaultsProduceConnectedBackbone) {
  OverlayConfig config;
  config.num_peers = 4000;
  config.degree_sp = 4.0;
  config.seed = 11;
  Overlay overlay = BuildOverlay(config);
  EXPECT_EQ(overlay.num_super_peers(), 200);
  EXPECT_TRUE(overlay.backbone.IsConnected());
  EXPECT_NEAR(overlay.backbone.AverageDegree(), 4.0, 1.0);
}

TEST(Overlay, SingleSuperPeerDegenerate) {
  OverlayConfig config;
  config.num_peers = 12;
  config.num_super_peers = 1;
  Overlay overlay = BuildOverlay(config);
  EXPECT_EQ(overlay.num_super_peers(), 1);
  EXPECT_EQ(overlay.super_peer_peers[0].size(), 12u);
  EXPECT_EQ(overlay.backbone.num_edges(), 0u);
}

}  // namespace
}  // namespace skypeer

namespace skypeer {
namespace {

// --- HyperCuP-style hypercube backbone ------------------------------------

TEST(Hypercube, ExactPowerOfTwo) {
  Graph g = GenerateHypercubeGraph(16);
  EXPECT_TRUE(g.IsConnected());
  // A full 4-cube: every node has degree exactly 4.
  for (int node = 0; node < 16; ++node) {
    EXPECT_EQ(g.Neighbors(node).size(), 4u) << "node " << node;
  }
  EXPECT_EQ(g.num_edges(), 32u);  // 16 * 4 / 2.
}

TEST(Hypercube, PartialCubeStaysConnected) {
  for (int n : {1, 2, 3, 5, 11, 100, 200, 750}) {
    Graph g = GenerateHypercubeGraph(n);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_TRUE(g.IsConnected()) << "n=" << n;
  }
}

TEST(Hypercube, LogarithmicDiameter) {
  Graph g = GenerateHypercubeGraph(256);
  const auto dist = g.HopDistances(0);
  const int diameter = *std::max_element(dist.begin(), dist.end());
  EXPECT_LE(diameter, 8);  // log2(256).
}

TEST(Hypercube, Deterministic) {
  Graph a = GenerateHypercubeGraph(77);
  Graph b = GenerateHypercubeGraph(77);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int node = 0; node < 77; ++node) {
    EXPECT_EQ(a.Neighbors(node), b.Neighbors(node));
  }
}

TEST(Hypercube, OverlayIntegration) {
  OverlayConfig config;
  config.num_peers = 640;
  config.num_super_peers = 64;
  config.topology = BackboneTopology::kHypercube;
  Overlay overlay = BuildOverlay(config);
  EXPECT_TRUE(overlay.backbone.IsConnected());
  EXPECT_DOUBLE_EQ(overlay.backbone.AverageDegree(), 6.0);  // log2(64).
  EXPECT_STREQ(BackboneTopologyName(BackboneTopology::kHypercube),
               "hypercube");
  EXPECT_STREQ(BackboneTopologyName(BackboneTopology::kWaxman), "waxman");
}

}  // namespace
}  // namespace skypeer
