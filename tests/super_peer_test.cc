// Direct unit tests of the SuperPeer node: pre-processing status paths,
// churn semantics at the node level, and protocol statistics — below the
// SkypeerNetwork facade.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/extended_skyline.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/engine/network_builder.h"
#include "skypeer/engine/super_peer.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

ResultList MakeExt(int dims, size_t n, uint64_t seed, PointId first_id) {
  Rng rng(seed);
  return ExtendedSkyline(GenerateUniform(dims, n, &rng, first_id));
}

TEST(SuperPeerUnit, EmptyStoreBeforePreprocessing) {
  SuperPeer sp(0, 4, WireModel{});
  EXPECT_TRUE(sp.store().empty());
  sp.FinalizePreprocessing();
  EXPECT_TRUE(sp.store().empty());
}

TEST(SuperPeerUnit, MergeEqualsExtSkylineOfUnion) {
  SuperPeer sp(0, 4, WireModel{});
  Rng rng(1);
  PointSet all(4);
  for (int peer = 0; peer < 4; ++peer) {
    PointSet data = GenerateUniform(4, 60, &rng, peer * 100);
    all.AppendAll(data);
    sp.AddPeerList(peer, ExtendedSkyline(data));
  }
  sp.FinalizePreprocessing();
  EXPECT_EQ(SortedIds(sp.store().points),
            SortedIds(BnlSkyline(all, Subspace::FullSpace(4), /*ext=*/true)));
  EXPECT_TRUE(sp.store().IsSorted());
}

TEST(SuperPeerUnit, JoinBeforeFinalizeFails) {
  SuperPeer sp(0, 4, WireModel{});
  Status status = sp.JoinPeer(1, MakeExt(4, 10, 2, 0));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SuperPeerUnit, JoinDimensionMismatchFails) {
  SuperPeer sp(0, 4, WireModel{});
  sp.FinalizePreprocessing();
  Status status = sp.JoinPeer(1, MakeExt(3, 10, 3, 0));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SuperPeerUnit, JoinDuplicateIdFailsWhenRetained) {
  SuperPeer sp(0, 4, WireModel{});
  sp.set_retain_peer_lists(true);
  sp.AddPeerList(5, MakeExt(4, 20, 4, 0));
  sp.FinalizePreprocessing();
  EXPECT_TRUE(sp.JoinPeer(6, MakeExt(4, 20, 5, 100)).ok());
  EXPECT_EQ(sp.JoinPeer(6, MakeExt(4, 20, 6, 200)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sp.RetainedPeerIds(), (std::vector<int>{5, 6}));
}

TEST(SuperPeerUnit, JoinMergesIncrementally) {
  SuperPeer sp(0, 4, WireModel{});
  Rng rng(7);
  PointSet first = GenerateUniform(4, 80, &rng, 0);
  sp.AddPeerList(0, ExtendedSkyline(first));
  sp.FinalizePreprocessing();

  PointSet second = GenerateUniform(4, 80, &rng, 1000);
  ASSERT_TRUE(sp.JoinPeer(1, ExtendedSkyline(second)).ok());

  PointSet all(4);
  all.AppendAll(first);
  all.AppendAll(second);
  EXPECT_EQ(SortedIds(sp.store().points),
            SortedIds(BnlSkyline(all, Subspace::FullSpace(4), /*ext=*/true)));
}

TEST(SuperPeerUnit, RemoveWithoutRetentionFails) {
  SuperPeer sp(0, 4, WireModel{});
  sp.AddPeerList(0, MakeExt(4, 10, 8, 0));
  sp.FinalizePreprocessing();
  EXPECT_EQ(sp.RemovePeer(0).code(), StatusCode::kFailedPrecondition);
}

TEST(SuperPeerUnit, RemoveUnknownFails) {
  SuperPeer sp(0, 4, WireModel{});
  sp.set_retain_peer_lists(true);
  sp.AddPeerList(0, MakeExt(4, 10, 9, 0));
  sp.FinalizePreprocessing();
  EXPECT_EQ(sp.RemovePeer(3).code(), StatusCode::kNotFound);
}

TEST(SuperPeerUnit, RemoveRebuildsStore) {
  SuperPeer sp(0, 4, WireModel{});
  sp.set_retain_peer_lists(true);
  Rng rng(10);
  PointSet keep = GenerateUniform(4, 60, &rng, 0);
  sp.AddPeerList(0, ExtendedSkyline(keep));
  // A dominating peer whose departure must resurrect `keep`'s points.
  PointSet dominator(4, {{0, 0, 0, 0}});
  {
    PointSet with_id(4);
    with_id.Append(dominator[0], 9999);
    sp.AddPeerList(1, ExtendedSkyline(with_id));
  }
  sp.FinalizePreprocessing();
  ASSERT_EQ(sp.store().size(), 1u);  // The origin ext-dominates everything.

  ASSERT_TRUE(sp.RemovePeer(1).ok());
  EXPECT_EQ(SortedIds(sp.store().points),
            SortedIds(BnlSkyline(keep, Subspace::FullSpace(4), /*ext=*/true)));
}

TEST(SuperPeerUnit, LastQueryStatsBeforeAnyQuery) {
  SuperPeer sp(0, 4, WireModel{});
  const SuperPeer::LastQueryStats stats = sp.last_query_stats();
  EXPECT_FALSE(stats.participated);
  EXPECT_EQ(stats.scanned, 0u);
  EXPECT_EQ(stats.local_result, 0u);
}

// --- protocol statistics through the network facade -----------------------

TEST(ProtocolStats, AllSuperPeersParticipate) {
  NetworkConfig config;
  config.num_peers = 50;
  config.num_super_peers = 10;
  config.points_per_peer = 40;
  config.dims = 5;
  config.seed = 20;
  SkypeerNetwork network(config);
  network.Preprocess();
  for (Variant variant : kAllVariants) {
    QueryResult result =
        network.ExecuteQuery(Subspace::FromDims({0, 1}), 2, variant);
    EXPECT_EQ(result.metrics.super_peers_participated, 10)
        << VariantName(variant);
    EXPECT_GT(result.metrics.local_result_points, 0u);
    EXPECT_GE(result.metrics.local_result_points, result.metrics.result_size);
  }
}

TEST(ProtocolStats, NaiveScansEntireStores) {
  NetworkConfig config;
  config.num_peers = 50;
  config.num_super_peers = 10;
  config.points_per_peer = 40;
  config.dims = 5;
  config.seed = 21;
  SkypeerNetwork network(config);
  const PreprocessStats pre = network.Preprocess();
  QueryResult naive =
      network.ExecuteQuery(Subspace::FromDims({0, 3}), 0, Variant::kNaive);
  EXPECT_EQ(naive.metrics.store_points_scanned, pre.super_peer_ext_points);
}

TEST(ProtocolStats, ThresholdPrunesScans) {
  NetworkConfig config;
  config.num_peers = 200;
  config.num_super_peers = 20;
  config.points_per_peer = 100;
  config.dims = 5;
  config.seed = 22;
  config.measure_cpu = false;
  SkypeerNetwork network(config);
  const PreprocessStats pre = network.Preprocess();
  for (Variant variant :
       {Variant::kFTFM, Variant::kFTPM, Variant::kRTFM, Variant::kRTPM}) {
    QueryResult result =
        network.ExecuteQuery(Subspace::FromDims({1, 2}), 3, variant);
    EXPECT_LT(result.metrics.store_points_scanned, pre.super_peer_ext_points)
        << VariantName(variant);
  }
  // Refinement can only tighten: RTFM never scans more than FTFM.
  QueryResult ftfm =
      network.ExecuteQuery(Subspace::FromDims({1, 2}), 3, Variant::kFTFM);
  QueryResult rtfm =
      network.ExecuteQuery(Subspace::FromDims({1, 2}), 3, Variant::kRTFM);
  EXPECT_LE(rtfm.metrics.store_points_scanned,
            ftfm.metrics.store_points_scanned);
}

TEST(ProtocolStats, ReplacePeerDataUpdatesAnswers) {
  NetworkConfig config;
  config.num_peers = 30;
  config.num_super_peers = 6;
  config.points_per_peer = 20;
  config.dims = 4;
  config.seed = 23;
  config.dynamic_membership = true;
  config.retain_peer_data = true;
  SkypeerNetwork network(config);
  network.Preprocess();
  const Subspace u = Subspace::FullSpace(4);

  // Replace peer 4's data with a single dominating point.
  ASSERT_TRUE(
      network.ReplacePeerData(4, PointSet(4, {{0, 0, 0, 0}})).ok());
  QueryResult result = network.ExecuteQuery(u, 1, Variant::kFTPM);
  ASSERT_EQ(result.skyline.size(), 1u);
  EXPECT_EQ(SortedIds(result.skyline.points),
            SortedIds(network.GroundTruthSkyline(u)));
  EXPECT_EQ(network.total_points(), 29u * 20u + 1u);

  // The old peer id is gone; the replacement got a fresh one.
  EXPECT_EQ(network.ReplacePeerData(4, PointSet(4, {{1, 1, 1, 1}})).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace skypeer
