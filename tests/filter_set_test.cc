// Unit and integration tests of the sampled filter-point broadcast
// (algo/filter_set.h): deterministic selection with per-dimension minima,
// exact up-rounding quantization onto the wire grid, fingerprinting,
// seeded-scan equivalence (subset + merge-identity, across the direct,
// chunked, traced and replayed scan forms) and the filter-aware trace
// cache key — both at the cache unit level and end to end through two
// initiators sharing one cached network.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/filter_set.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/op_counts.h"
#include "skypeer/common/subspace.h"
#include "skypeer/engine/network_builder.h"
#include "skypeer/engine/subspace_cache.h"

namespace skypeer {
namespace {

NetworkConfig SmallConfig(uint64_t seed) {
  NetworkConfig config;
  config.num_peers = 40;
  config.num_super_peers = 8;
  config.points_per_peer = 30;
  config.dims = 5;
  config.seed = seed;
  config.measure_cpu = false;
  return config;
}

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Full content signature of a result list: (id, f, coords) per entry.
std::vector<std::vector<double>> FullSignature(const ResultList& list) {
  std::vector<std::vector<double>> rows;
  rows.reserve(list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    std::vector<double> row;
    row.push_back(static_cast<double>(list.points.id(i)));
    row.push_back(list.f[i]);
    for (int d = 0; d < list.points.dims(); ++d) {
      row.push_back(list.points[i][d]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// --- selection ----------------------------------------------------------

TEST(SelectFilterSet, EmptyBudgetOrInputYieldsEmptyFilter) {
  SkypeerNetwork network(SmallConfig(31));
  network.Preprocess();
  const ResultList& local = network.super_peer(0).store();
  const Subspace u = Subspace::FromDims({0, 2});
  EXPECT_TRUE(SelectFilterSet(local, u, 0, nullptr).empty());
  const ResultList empty(network.dims());
  EXPECT_TRUE(SelectFilterSet(empty, u, 8, nullptr).empty());
  EXPECT_EQ(BuildQueryFilter(local, u, 0, nullptr), nullptr);
  EXPECT_EQ(BuildQueryFilter(empty, u, 8, nullptr), nullptr);
}

TEST(SelectFilterSet, RespectsBudgetDeterministicallyAndChargesOneScanPass) {
  SkypeerNetwork network(SmallConfig(31));
  network.Preprocess();
  const ResultList& local = network.super_peer(1).store();
  const Subspace u = Subspace::FromDims({0, 1, 3});
  OpCounts ops;
  const ResultList a = SelectFilterSet(local, u, 8, &ops);
  EXPECT_GT(a.size(), 0u);
  EXPECT_LE(a.size(), 8u);
  EXPECT_EQ(ops.scan_steps, local.size());
  // Selection is a pure function of (list, subspace, budget).
  const ResultList b = SelectFilterSet(local, u, 8, nullptr);
  EXPECT_EQ(FullSignature(a), FullSignature(b));
  // The boxed protocol form carries the identical content.
  const auto boxed = BuildQueryFilter(local, u, 8, nullptr);
  ASSERT_NE(boxed, nullptr);
  EXPECT_EQ(FullSignature(*boxed), FullSignature(a));
}

TEST(SelectFilterSet, QuantizesEveryCoordinateUpOntoTheWireGrid) {
  // Filter points keep their source ids, so each can be matched back to
  // its row: every coordinate rounds *up* onto the 1/128 grid by less
  // than one grid step, and f is recomputed from the quantized row.
  SkypeerNetwork network(SmallConfig(33));
  network.Preprocess();
  const ResultList& local = network.super_peer(2).store();
  const Subspace u = Subspace::FromDims({1, 2, 4});
  const ResultList filter = SelectFilterSet(local, u, 12, nullptr);
  ASSERT_GT(filter.size(), 0u);
  for (size_t i = 0; i < filter.size(); ++i) {
    size_t src = local.size();
    for (size_t j = 0; j < local.size(); ++j) {
      if (local.points.id(j) == filter.points.id(i)) {
        src = j;
        break;
      }
    }
    ASSERT_LT(src, local.size()) << "filter id not found in the source list";
    double min_coord = std::numeric_limits<double>::infinity();
    for (int d = 0; d < network.dims(); ++d) {
      const double x = local.points[src][d];
      const double q = filter.points[i][d];
      EXPECT_GE(q, x);
      EXPECT_LT(q - x, 1.0 / kFilterGridDenominator);
      EXPECT_EQ(q * kFilterGridDenominator,
                std::floor(q * kFilterGridDenominator))
          << "coordinate off the wire grid";
      min_coord = std::min(min_coord, q);
    }
    EXPECT_EQ(filter.f[i], min_coord);
  }
}

TEST(SelectFilterSet, IncludesThePerDimensionMinima) {
  SkypeerNetwork network(SmallConfig(35));
  network.Preprocess();
  const ResultList& local = network.super_peer(4).store();
  const Subspace u = Subspace::FromDims({0, 3});
  const ResultList filter = SelectFilterSet(local, u, 8, nullptr);
  ASSERT_GT(filter.size(), 0u);
  for (int dim : u) {
    double min_coord = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < local.size(); ++i) {
      min_coord = std::min(min_coord, local.points[i][dim]);
    }
    // Quantization is monotone, so the quantized minimum is the minimum
    // quantized coordinate — the strongest single-axis pruner survives.
    const double expected = std::ceil(min_coord * kFilterGridDenominator) /
                            kFilterGridDenominator;
    bool found = false;
    for (size_t i = 0; i < filter.size(); ++i) {
      found = found || filter.points[i][dim] == expected;
    }
    EXPECT_TRUE(found) << "minimum of dim " << dim << " missing";
  }
}

TEST(FilterFingerprint, IsNonzeroStableAndDiscriminating) {
  SkypeerNetwork network(SmallConfig(37));
  network.Preprocess();
  const ResultList& local = network.super_peer(0).store();
  const Subspace u = Subspace::FromDims({0, 1, 2});
  const ResultList eight = SelectFilterSet(local, u, 8, nullptr);
  const ResultList four = SelectFilterSet(local, u, 4, nullptr);
  const uint64_t fp_eight = FilterFingerprint(eight);
  const uint64_t fp_four = FilterFingerprint(four);
  EXPECT_NE(fp_eight, 0u);  // 0 is reserved for "no filter".
  EXPECT_NE(fp_four, 0u);
  EXPECT_NE(fp_eight, fp_four);
  EXPECT_EQ(fp_eight, FilterFingerprint(SelectFilterSet(local, u, 8, nullptr)));
  EXPECT_NE(FilterFingerprint(ResultList(network.dims())), 0u);
}

// --- seeded scans -------------------------------------------------------

TEST(SeededScan, FilteredResultIsASubsetAndMergesToTheSameSkyline) {
  SkypeerNetwork network(SmallConfig(39));
  network.Preprocess();
  const Subspace u = Subspace::FromDims({1, 3});
  const ResultList& store_a = network.super_peer(0).store();
  const ResultList& store_b = network.super_peer(3).store();

  // The initiator's local subspace skyline — the broadcast's source.
  const ResultList local_a = SortedSkyline(store_a, u);
  const ResultList filter = SelectFilterSet(local_a, u, 8, nullptr);
  ASSERT_GT(filter.size(), 0u);

  const ResultList unfiltered = SortedSkyline(store_b, u);
  ThresholdScanOptions options;
  options.filter = &filter;
  const ResultList filtered = SortedSkyline(store_b, u, options);

  // Subset: seeds can only remove result rows, never add or alter them
  // (seeds are emit-flagged off, so none appears in the result).
  std::set<std::vector<double>> rows;
  for (auto& row : FullSignature(unfiltered)) {
    rows.insert(std::move(row));
  }
  for (const auto& row : FullSignature(filtered)) {
    EXPECT_EQ(rows.count(row), 1u) << "row not in the unfiltered result";
  }
  EXPECT_LE(filtered.size(), unfiltered.size());

  // Merge identity: A ∪ filtered-B and A ∪ unfiltered-B have the same
  // skyline — everything the filter pruned was merge-discarded anyway.
  PointSet merged_unfiltered(network.dims());
  PointSet merged_filtered(network.dims());
  for (size_t i = 0; i < local_a.size(); ++i) {
    merged_unfiltered.AppendFrom(local_a.points, i);
    merged_filtered.AppendFrom(local_a.points, i);
  }
  for (size_t i = 0; i < unfiltered.size(); ++i) {
    merged_unfiltered.AppendFrom(unfiltered.points, i);
  }
  for (size_t i = 0; i < filtered.size(); ++i) {
    merged_filtered.AppendFrom(filtered.points, i);
  }
  EXPECT_EQ(SortedIds(BnlSkyline(merged_filtered, u)),
            SortedIds(BnlSkyline(merged_unfiltered, u)));
}

TEST(SeededScan, ChunkedTracedAndReplayedScansAgreeWithTheDirectScan) {
  SkypeerNetwork network(SmallConfig(41));
  network.Preprocess();
  const Subspace u = Subspace::FromDims({0, 2, 4});
  const ResultList local_a = SortedSkyline(network.super_peer(1).store(), u);
  const ResultList filter = SelectFilterSet(local_a, u, 8, nullptr);
  ASSERT_GT(filter.size(), 0u);
  const ResultList& store_b = network.super_peer(5).store();

  ThresholdScanOptions options;
  options.filter = &filter;
  ThresholdScanStats direct_stats;
  const ResultList direct = SortedSkyline(store_b, u, options, &direct_stats);

  // Traced scan: identical result, scan count and final threshold.
  ScanTrace trace;
  ThresholdScanStats traced_stats;
  const ResultList traced =
      TracedSortedSkyline(store_b, u, options, &traced_stats, &trace);
  EXPECT_EQ(FullSignature(traced), FullSignature(direct));
  EXPECT_EQ(traced_stats.scanned, direct_stats.scanned);
  EXPECT_EQ(traced_stats.final_threshold, direct_stats.final_threshold);

  // Replaying the filtered trace under a tighter threshold reproduces
  // the direct filtered scan at that threshold exactly.
  const double tight = direct_stats.final_threshold;
  ThresholdScanOptions tight_options = options;
  tight_options.initial_threshold = tight;
  ThresholdScanStats want_stats;
  const ResultList want = SortedSkyline(store_b, u, tight_options, &want_stats);
  ThresholdScanStats replay_stats;
  const ResultList got = ReplayScanTrace(store_b, trace, tight, &replay_stats);
  EXPECT_EQ(FullSignature(got), FullSignature(want));
  EXPECT_EQ(replay_stats.scanned, want_stats.scanned);
  EXPECT_EQ(replay_stats.final_threshold, want_stats.final_threshold);

  // The chunked parallel scan seeds every chunk with the filter and
  // cross-filters to the identical result (scan counts may differ).
  ThresholdScanStats chunk_stats;
  const ResultList chunked =
      ParallelSortedSkyline(store_b, u, /*chunk_size=*/16, options,
                            &chunk_stats);
  EXPECT_EQ(FullSignature(chunked), FullSignature(direct));
  EXPECT_EQ(chunk_stats.final_threshold, direct_stats.final_threshold);
}

// --- filter-aware trace cache -------------------------------------------

TEST(TraceCache, FilterFingerprintSeparatesEntries) {
  SubspaceScanTraceCache cache;
  const uint32_t mask = 0b10110;
  const uint64_t fp = 0x1234abcdULL;
  const auto unfiltered_trace = std::make_shared<const ScanTrace>();
  const auto filtered_trace = std::make_shared<const ScanTrace>();

  EXPECT_EQ(cache.Lookup(0, 0, mask, 0), nullptr);
  cache.Insert(0, 0, mask, 0, unfiltered_trace);
  // A no-filter trace must never answer for a filtered query (and vice
  // versa): the fingerprint is part of the key.
  EXPECT_EQ(cache.Lookup(0, 0, mask, fp), nullptr);
  cache.Insert(0, 0, mask, fp, filtered_trace);
  EXPECT_EQ(cache.Lookup(0, 0, mask, 0), unfiltered_trace);
  EXPECT_EQ(cache.Lookup(0, 0, mask, fp), filtered_trace);
  EXPECT_EQ(cache.size(), 2u);

  // Concurrent fillers converge on the first published trace.
  EXPECT_EQ(cache.Insert(0, 0, mask, 0, std::make_shared<const ScanTrace>()),
            unfiltered_trace);

  cache.Invalidate(0);
  EXPECT_EQ(cache.Lookup(0, 0, mask, 0), nullptr);
  EXPECT_EQ(cache.Lookup(0, 0, mask, fp), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TraceCache, FilteredCachedQueriesMatchUncachedFromEveryInitiator) {
  // Two initiators alternate over the same subspace, so every super-peer
  // is eventually scanned both under its *own* filter context (as the
  // non-initiating receiver of two different broadcast filters) and
  // unfiltered (as the initiator): a cached trace recorded under one
  // filter fingerprint must never answer for another, or the replayed
  // survivors — and every transfer-derived metric — would drift from the
  // scan network's.
  NetworkConfig scan_config = SmallConfig(43);
  scan_config.filter_set_size = 8;
  NetworkConfig cache_config = scan_config;
  cache_config.enable_cache = true;

  SkypeerNetwork scan_network(scan_config);
  scan_network.Preprocess();
  SkypeerNetwork cache_network(cache_config);
  cache_network.Preprocess();

  const Subspace u = Subspace::FromDims({0, 2, 4});
  for (int round = 0; round < 3; ++round) {  // Round > 0: cache hits.
    for (int initiator : {0, 5}) {
      for (Variant variant : {Variant::kFTPM, Variant::kRTFM}) {
        const QueryResult scan =
            scan_network.ExecuteQuery(u, initiator, variant);
        const QueryResult cache =
            cache_network.ExecuteQuery(u, initiator, variant);
        const std::string context = std::string(VariantName(variant)) +
                                    " initiator " + std::to_string(initiator) +
                                    " round " + std::to_string(round);
        EXPECT_EQ(FullSignature(cache.skyline), FullSignature(scan.skyline))
            << context;
        EXPECT_EQ(cache.metrics.bytes_transferred,
                  scan.metrics.bytes_transferred)
            << context;
        EXPECT_EQ(cache.metrics.messages, scan.metrics.messages) << context;
        EXPECT_EQ(cache.metrics.result_size, scan.metrics.result_size)
            << context;
        EXPECT_EQ(cache.metrics.total_time_s, scan.metrics.total_time_s)
            << context;
        EXPECT_EQ(cache.metrics.computational_time_s,
                  scan.metrics.computational_time_s)
            << context;
      }
    }
  }
}

}  // namespace
}  // namespace skypeer
