// Block-skipping threshold scans (`ThresholdScanOptions::block_skip`):
// consulting the store's zone-map summary before each 8-wide block is
// invisible to everything the scan reports except the new
// `summary_tests`/`blocks_skipped` charges and reduced scan-step /
// page-read charges. The randomized property test below drives the
// plain scan and its block-skip twin through random dimensionalities,
// distributions, subspaces, dominance semantics, thresholds, filter
// seeds, page sizes and both store modes, and asserts identical
// skylines, scan counts, final thresholds and window evolution
// (recorded traces), plus bit-identical op counts across store modes
// and kernels. Replays of skip traces must reproduce the direct scan
// under any tighter threshold, and chunked scans must stay
// thread-count invariant — the properties the speculative-RT path
// depends on.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "skypeer/algo/filter_set.h"
#include "skypeer/algo/result_list.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/dominance_batch.h"
#include "skypeer/common/rng.h"
#include "skypeer/common/thread_pool.h"
#include "skypeer/data/generator.h"
#include "skypeer/storage/buffer_manager.h"
#include "skypeer/storage/page_layout.h"
#include "skypeer/storage/paged_store.h"
#include "skypeer/storage/store_summary.h"
#include "skypeer/storage/store_view.h"

namespace skypeer {
namespace {

// --- satellite: chunk/block alignment ---------------------------------------

TEST(BlockSkipAlignment, PagesHoldWholeBlocksAndChunksSnapToBlocks) {
  // The skip-aware cursor and the summary index both assume a store
  // block never straddles a page and a parallel chunk never splits a
  // block. Both hold by construction: pages hold whole blocks
  // (`PageLayout::points_per_page`) and `SnapChunkToPages` rounds
  // chunks up to whole pages.
  for (int dims = 1; dims <= 16; ++dims) {
    for (size_t page_size : {1024u, 2048u, 4096u, 8192u, 65536u}) {
      const size_t bytes_per_block =
          (static_cast<size_t>(dims) + 2) * kDomBlockWidth * sizeof(double);
      if (page_size < bytes_per_block) {
        continue;  // A page must hold at least one whole block.
      }
      const PageLayout layout(page_size, dims);
      EXPECT_EQ(layout.points_per_page() % kDomBlockWidth, 0u)
          << "dims=" << dims << " page_size=" << page_size;
      for (size_t chunk : {1u, 7u, 8u, 63u, 100u, 1024u}) {
        EXPECT_EQ(SnapChunkToPages(layout, chunk) % kDomBlockWidth, 0u)
            << "dims=" << dims << " page_size=" << page_size
            << " chunk=" << chunk;
      }
    }
  }
}

// --- randomized scan equivalence ---------------------------------------------

PointSet RandomData(int dims, size_t n, int distribution, Rng* rng) {
  switch (distribution) {
    case 0:
      return GenerateUniform(dims, n, rng);
    case 1:
      return GenerateCorrelated(dims, n, rng);
    default:
      return GenerateAnticorrelated(dims, n, rng);
  }
}

Subspace RandomSubspace(int dims, Rng* rng) {
  std::vector<int> chosen;
  for (int d = 0; d < dims; ++d) {
    if (rng->Uniform() < 0.5) {
      chosen.push_back(d);
    }
  }
  if (chosen.empty()) {
    chosen.push_back(static_cast<int>(rng->UniformInt(0, dims - 1)));
  }
  return Subspace::FromDims(chosen);
}

void ExpectSameResult(const ResultList& a, const ResultList& b,
                      const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.points.id(i), b.points.id(i)) << context << " row " << i;
    EXPECT_EQ(a.f[i], b.f[i]) << context << " row " << i;
  }
}

TEST(BlockSkipProperty, RandomizedScanEquivalence) {
  Rng rng(20260808);
  for (int trial = 0; trial < 30; ++trial) {
    const int dims = 2 + static_cast<int>(rng.UniformInt(0, 4));
    const size_t n = 32 + rng.UniformInt(0, 600);
    const size_t page_size = rng.Uniform() < 0.5 ? 1024 : 4096;
    const ResultList sorted =
        BuildSortedByF(RandomData(dims, n, trial % 3, &rng));
    const PageLayout layout(page_size, dims);
    const StoreSummary summary = StoreSummary::Build(sorted, layout);
    const StoreView plain_view(&sorted, page_size);
    const StoreView skip_view(&sorted, page_size, &summary);

    const Subspace u = RandomSubspace(dims, &rng);
    ThresholdScanOptions plain_options;
    plain_options.ext = rng.Uniform() < 0.3;
    plain_options.use_rtree = rng.Uniform() < 0.5;

    // Sometimes seed the window with a broadcast filter set from a
    // disjoint list, sometimes constrain the initial threshold.
    ResultList filter(dims);
    if (rng.Uniform() < 0.5) {
      const ResultList initiator =
          BuildSortedByF(RandomData(dims, n / 2 + 1, trial % 3, &rng));
      filter = SelectFilterSet(SortedSkyline(initiator, u), u,
                               1 + rng.UniformInt(0, 7), nullptr);
      if (!filter.empty()) {
        plain_options.filter = &filter;
      }
    }
    if (rng.Uniform() < 0.4) {
      plain_options.initial_threshold = sorted.f[rng.UniformInt(0, n - 1)];
    }
    ThresholdScanOptions skip_options = plain_options;
    skip_options.block_skip = true;

    const std::string context = "trial " + std::to_string(trial);
    ThresholdScanStats plain_stats;
    ScanTrace plain_trace;
    const ResultList plain = TracedSortedSkyline(plain_view, u, plain_options,
                                                 &plain_stats, &plain_trace);
    ThresholdScanStats skip_stats;
    ScanTrace skip_trace;
    const ResultList skip = TracedSortedSkyline(skip_view, u, skip_options,
                                                &skip_stats, &skip_trace);

    // Identical answer, scan count, threshold and window evolution.
    ExpectSameResult(plain, skip, context);
    EXPECT_EQ(plain_stats.scanned, skip_stats.scanned) << context;
    EXPECT_EQ(plain_stats.final_threshold, skip_stats.final_threshold)
        << context;
    EXPECT_EQ(plain_trace.accepted, skip_trace.accepted) << context;
    EXPECT_EQ(plain_trace.dist_u, skip_trace.dist_u) << context;
    EXPECT_EQ(plain_trace.evicted_at, skip_trace.evicted_at) << context;
    EXPECT_FALSE(plain_trace.block_skip) << context;
    EXPECT_TRUE(skip_trace.block_skip) << context;

    // Op counts: a plain scan never charges the skip counters, and
    // skipping only ever removes per-point work.
    EXPECT_EQ(plain_stats.ops.summary_tests, 0u) << context;
    EXPECT_EQ(plain_stats.ops.blocks_skipped, 0u) << context;
    EXPECT_LE(skip_stats.ops.dominance_tests, plain_stats.ops.dominance_tests)
        << context;
    EXPECT_LE(skip_stats.ops.scan_steps, plain_stats.ops.scan_steps)
        << context;
    EXPECT_LE(skip_stats.ops.page_reads, plain_stats.ops.page_reads)
        << context;

    // Both store modes and both kernel families report bit-identical op
    // counts under skipping.
    BufferManager buffer(page_size, 4, ThreadPool::Global());
    const PagedStore paged_store = PagedStore::Build(sorted, &buffer);
    const StoreView paged(&paged_store);
    ThresholdScanStats paged_stats;
    const ResultList paged_result =
        SortedSkyline(paged, u, skip_options, &paged_stats);
    ExpectSameResult(skip, paged_result, context + " paged");
    EXPECT_TRUE(paged_stats.ops == skip_stats.ops)
        << context << "\n  resident: " << skip_stats.ops.ToString()
        << "\n  paged:    " << paged_stats.ops.ToString();

    SetForceScalarKernels(true);
    ThresholdScanStats scalar_stats;
    const ResultList scalar_result =
        SortedSkyline(skip_view, u, skip_options, &scalar_stats);
    SetForceScalarKernels(false);
    ExpectSameResult(skip, scalar_result, context + " scalar");
    EXPECT_TRUE(scalar_stats.ops == skip_stats.ops)
        << context << "\n  simd:   " << skip_stats.ops.ToString()
        << "\n  scalar: " << scalar_stats.ops.ToString();
  }
}

TEST(BlockSkipProperty, NoSummaryFallsBackToThePlainScan) {
  // `block_skip` on a view without an attached summary is the plain
  // scan, bit for bit — the engine relies on this when a store has no
  // summary (e.g. an empty one).
  Rng rng(5);
  const ResultList sorted = BuildSortedByF(GenerateUniform(4, 200, &rng));
  const StoreView view(&sorted, 4096);
  ASSERT_EQ(view.summary(), nullptr);
  const Subspace u = Subspace::FromDims({0, 2});
  ThresholdScanOptions skip_options;
  skip_options.block_skip = true;
  ThresholdScanStats plain_stats, skip_stats;
  const ResultList plain = SortedSkyline(view, u, {}, &plain_stats);
  const ResultList skip = SortedSkyline(view, u, skip_options, &skip_stats);
  ExpectSameResult(plain, skip, "no summary");
  EXPECT_TRUE(plain_stats.ops == skip_stats.ops);
  EXPECT_EQ(skip_stats.ops.summary_tests, 0u);
}

// --- replay prefix-equivalence -----------------------------------------------

TEST(BlockSkipProperty, ReplayMatchesDirectScanUnderTighterThresholds) {
  // The speculative-RT staging path records one traced scan per store
  // and replays it under every later (tighter) threshold; with skipping
  // the replay reconstructs the skip charges from `block_rejected`. The
  // replay must match the direct block-skip scan under the same
  // threshold, operation for operation.
  Rng rng(99);
  for (int trial = 0; trial < 12; ++trial) {
    const int dims = 3 + static_cast<int>(rng.UniformInt(0, 2));
    const size_t n = 64 + rng.UniformInt(0, 400);
    const ResultList sorted =
        BuildSortedByF(RandomData(dims, n, trial % 3, &rng));
    const PageLayout layout(4096, dims);
    const StoreSummary summary = StoreSummary::Build(sorted, layout);
    const StoreView view(&sorted, 4096, &summary);
    const Subspace u = RandomSubspace(dims, &rng);

    ThresholdScanOptions options;
    options.use_rtree = rng.Uniform() < 0.5;
    options.block_skip = true;
    ThresholdScanStats recorded_stats;
    ScanTrace trace;
    TracedSortedSkyline(view, u, options, &recorded_stats, &trace);

    for (int probe = 0; probe < 6; ++probe) {
      const double tighter =
          recorded_stats.final_threshold * rng.Uniform();
      ThresholdScanOptions direct_options = options;
      direct_options.initial_threshold = tighter;
      ThresholdScanStats direct_stats;
      const ResultList direct =
          SortedSkyline(view, u, direct_options, &direct_stats);
      ThresholdScanStats replay_stats;
      const ResultList replayed =
          ReplayScanTrace(view, trace, tighter, &replay_stats);
      const std::string context = "trial " + std::to_string(trial) +
                                  " threshold " + std::to_string(tighter);
      ExpectSameResult(direct, replayed, context);
      EXPECT_EQ(direct_stats.scanned, replay_stats.scanned) << context;
      EXPECT_EQ(direct_stats.final_threshold, replay_stats.final_threshold)
          << context;
      EXPECT_TRUE(direct_stats.ops == replay_stats.ops)
          << context << "\n  direct: " << direct_stats.ops.ToString()
          << "\n  replay: " << replay_stats.ops.ToString();
    }
  }
}

// --- chunked scans -----------------------------------------------------------

TEST(BlockSkipProperty, ChunkedMatchesSequentialResultAndIsThreadInvariant) {
  Rng rng(11);
  const int dims = 5;
  const ResultList sorted =
      BuildSortedByF(GenerateCorrelated(dims, 3000, &rng));
  const PageLayout layout(1024, dims);
  const StoreSummary summary = StoreSummary::Build(sorted, layout);
  const StoreView view(&sorted, 1024, &summary);

  for (const Subspace u :
       {Subspace::FromDims({0, 3}), Subspace::FullSpace(dims)}) {
    ThresholdScanOptions options;
    options.block_skip = true;
    ThresholdScanStats seq_stats;
    const ResultList seq = SortedSkyline(view, u, options, &seq_stats);

    for (size_t chunk : {64u, 256u}) {
      ThreadPool::SetGlobalConcurrency(1);
      ThresholdScanStats one_stats;
      const ResultList one =
          ParallelSortedSkyline(view, u, chunk, options, &one_stats);
      ThreadPool::SetGlobalConcurrency(8);
      ThresholdScanStats eight_stats;
      const ResultList eight =
          ParallelSortedSkyline(view, u, chunk, options, &eight_stats);
      ThreadPool::SetGlobalConcurrency(1);

      const std::string context = "chunk " + std::to_string(chunk);
      // Chunked result identical to sequential; chunked op counts are
      // their own deterministic quantity, identical across thread
      // counts.
      ExpectSameResult(seq, one, context);
      ExpectSameResult(seq, eight, context);
      EXPECT_EQ(one_stats.scanned, eight_stats.scanned) << context;
      EXPECT_TRUE(one_stats.ops == eight_stats.ops)
          << context << "\n  t1: " << one_stats.ops.ToString()
          << "\n  t8: " << eight_stats.ops.ToString();
    }
  }
}

}  // namespace
}  // namespace skypeer
