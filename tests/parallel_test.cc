// Tests of the worker thread pool and of the engine's parallel-execution
// guarantee: any `--threads` setting produces bit-identical query results
// and simulated metrics; only host wall-clock time may differ.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "skypeer/common/dominance_batch.h"
#include "skypeer/common/thread_pool.h"
#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"

namespace skypeer {
namespace {

// --- thread pool ------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) {
    h = 0;
  }
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ConcurrencyOneRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), std::this_thread::get_id());
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, SubmitResolvesFutureAndPropagatesExceptions) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto ok = pool.Submit([&] { ++ran; });
  ok.get();
  EXPECT_EQ(ran.load(), 1);

  auto bad = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](size_t i) {
                                  if (i % 7 == 3) {
                                    throw std::runtime_error("bad index");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // The batch driver nests per-query ParallelFor inside workload-level
  // ParallelFor on the same pool; the caller must make progress even
  // when every worker is busy with an outer task.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(16, [&](size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 8 * 16);
}

TEST(ThreadPool, GlobalConcurrencyIsAdjustable) {
  ThreadPool::SetGlobalConcurrency(3);
  EXPECT_EQ(ThreadPool::GlobalConcurrency(), 3);
  EXPECT_EQ(ThreadPool::Global()->num_threads(), 3);
  ThreadPool::SetGlobalConcurrency(1);
  EXPECT_EQ(ThreadPool::Global()->num_threads(), 1);
}

// --- engine determinism -----------------------------------------------------

NetworkConfig SmallConfig() {
  NetworkConfig config;
  config.num_peers = 40;
  config.num_super_peers = 8;
  config.points_per_peer = 30;
  config.dims = 4;
  config.seed = 7;
  // Virtual clocks must not depend on host timing for exact comparison.
  config.measure_cpu = false;
  return config;
}

/// Full content signature of a result list: (id, f, coords) per entry.
std::vector<std::vector<double>> Signature(const ResultList& list) {
  std::vector<std::vector<double>> rows;
  rows.reserve(list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    std::vector<double> row;
    row.push_back(static_cast<double>(list.points.id(i)));
    row.push_back(list.f[i]);
    for (int d = 0; d < list.points.dims(); ++d) {
      row.push_back(list.points[i][d]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void ExpectMetricsEqual(const QueryMetrics& a, const QueryMetrics& b,
                        const char* context) {
  EXPECT_EQ(a.computational_time_s, b.computational_time_s) << context;
  EXPECT_EQ(a.total_time_s, b.total_time_s) << context;
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << context;
  EXPECT_EQ(a.messages, b.messages) << context;
  EXPECT_EQ(a.result_size, b.result_size) << context;
  EXPECT_EQ(a.store_points_scanned, b.store_points_scanned) << context;
  EXPECT_EQ(a.local_result_points, b.local_result_points) << context;
  EXPECT_EQ(a.super_peers_participated, b.super_peers_participated) << context;
}

TEST(ParallelDeterminism, PreprocessingIsThreadCountInvariant) {
  const NetworkConfig config = SmallConfig();

  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork sequential(config);
  const PreprocessStats seq_stats = sequential.Preprocess();

  ThreadPool::SetGlobalConcurrency(4);
  SkypeerNetwork parallel(config);
  const PreprocessStats par_stats = parallel.Preprocess();
  ThreadPool::SetGlobalConcurrency(1);

  EXPECT_EQ(seq_stats.total_points, par_stats.total_points);
  EXPECT_EQ(seq_stats.peer_ext_points, par_stats.peer_ext_points);
  EXPECT_EQ(seq_stats.super_peer_ext_points, par_stats.super_peer_ext_points);
  ASSERT_EQ(sequential.num_super_peers(), parallel.num_super_peers());
  for (int sp = 0; sp < sequential.num_super_peers(); ++sp) {
    EXPECT_EQ(Signature(sequential.super_peer(sp).store()),
              Signature(parallel.super_peer(sp).store()))
        << "store of super-peer " << sp;
  }
}

TEST(ParallelDeterminism, QueriesMatchSequentialForAllVariants) {
  const NetworkConfig config = SmallConfig();
  const std::vector<QueryTask> tasks =
      GenerateWorkload(config.dims, 2, 6, config.num_super_peers, 42);

  struct Reference {
    std::vector<std::vector<double>> skyline;
    QueryMetrics metrics;
  };

  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork sequential(config);
  sequential.Preprocess();
  std::vector<std::vector<Reference>> references;
  std::vector<Variant> variants(kAllVariants, kAllVariants + 5);
  variants.push_back(Variant::kPipeline);
  for (Variant variant : variants) {
    std::vector<Reference> per_task;
    for (const QueryTask& task : tasks) {
      const QueryResult result =
          sequential.ExecuteQuery(task.subspace, task.initiator_sp, variant);
      per_task.push_back({Signature(result.skyline), result.metrics});
    }
    references.push_back(std::move(per_task));
  }

  ThreadPool::SetGlobalConcurrency(4);
  SkypeerNetwork parallel(config);
  parallel.Preprocess();
  for (size_t v = 0; v < variants.size(); ++v) {
    for (size_t t = 0; t < tasks.size(); ++t) {
      const QueryResult result = parallel.ExecuteQuery(
          tasks[t].subspace, tasks[t].initiator_sp, variants[v]);
      const std::string context =
          std::string(VariantName(variants[v])) + " task " + std::to_string(t);
      EXPECT_EQ(Signature(result.skyline), references[v][t].skyline)
          << context;
      ExpectMetricsEqual(result.metrics, references[v][t].metrics,
                         context.c_str());
    }
  }
  ThreadPool::SetGlobalConcurrency(1);
}

TEST(ParallelDeterminism, WorkloadAggregatesMatchSequential) {
  const NetworkConfig config = SmallConfig();
  const std::vector<QueryTask> tasks =
      GenerateWorkload(config.dims, 3, 8, config.num_super_peers, 5);

  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork sequential(config);
  sequential.Preprocess();
  ThreadPool::SetGlobalConcurrency(4);
  SkypeerNetwork parallel(config);
  parallel.Preprocess();
  EXPECT_TRUE(parallel.SupportsParallelWorkloads());

  for (Variant variant : kAllVariants) {
    ThreadPool::SetGlobalConcurrency(1);
    const AggregateMetrics seq = RunWorkload(&sequential, tasks, variant);
    ThreadPool::SetGlobalConcurrency(4);
    const AggregateMetrics par = RunWorkload(&parallel, tasks, variant);
    EXPECT_EQ(seq.queries, par.queries) << VariantName(variant);
    // Sample-for-sample equality: aggregation happens in task order
    // regardless of which worker executed which query.
    EXPECT_EQ(seq.comp_s.samples(), par.comp_s.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.total_s.samples(), par.total_s.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.kb.samples(), par.kb.samples()) << VariantName(variant);
    EXPECT_EQ(seq.messages.samples(), par.messages.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.result.samples(), par.result.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.scanned.samples(), par.scanned.samples())
        << VariantName(variant);
  }
  ThreadPool::SetGlobalConcurrency(1);
}

// --- chunked threshold scans ------------------------------------------------

/// Same as ExpectMetricsEqual minus store_points_scanned: chunked scans
/// may scan extra points past per-chunk thresholds, so the scan count is
/// comparable only between runs with the same chunk size.
void ExpectMetricsEqualExceptScanned(const QueryMetrics& a,
                                     const QueryMetrics& b,
                                     const char* context) {
  EXPECT_EQ(a.computational_time_s, b.computational_time_s) << context;
  EXPECT_EQ(a.total_time_s, b.total_time_s) << context;
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << context;
  EXPECT_EQ(a.messages, b.messages) << context;
  EXPECT_EQ(a.result_size, b.result_size) << context;
  EXPECT_EQ(a.local_result_points, b.local_result_points) << context;
  EXPECT_EQ(a.super_peers_participated, b.super_peers_participated) << context;
}

TEST(ChunkedScanDeterminism, MatchesSequentialScanAtAnyThreadCount) {
  // The tentpole guarantee: chunk_size > 0 must reproduce the sequential
  // scan bit-for-bit — skylines, volume, messages, and (with
  // measure_cpu=false) simulated times — at any thread count.
  const std::vector<QueryTask> tasks =
      GenerateWorkload(4, 2, 6, SmallConfig().num_super_peers, 19);
  std::vector<Variant> variants(kAllVariants, kAllVariants + 5);
  variants.push_back(Variant::kPipeline);

  struct Reference {
    std::vector<std::vector<double>> skyline;
    QueryMetrics metrics;
  };

  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork sequential(SmallConfig());
  sequential.Preprocess();
  std::vector<std::vector<Reference>> references;
  for (Variant variant : variants) {
    std::vector<Reference> per_task;
    for (const QueryTask& task : tasks) {
      const QueryResult result =
          sequential.ExecuteQuery(task.subspace, task.initiator_sp, variant);
      per_task.push_back({Signature(result.skyline), result.metrics});
    }
    references.push_back(std::move(per_task));
  }

  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalConcurrency(threads);
    NetworkConfig chunked_config = SmallConfig();
    chunked_config.scan_chunk_size = 16;
    SkypeerNetwork chunked(chunked_config);
    chunked.Preprocess();
    for (size_t v = 0; v < variants.size(); ++v) {
      for (size_t t = 0; t < tasks.size(); ++t) {
        const QueryResult result = chunked.ExecuteQuery(
            tasks[t].subspace, tasks[t].initiator_sp, variants[v]);
        const std::string context = std::string(VariantName(variants[v])) +
                                    " task " + std::to_string(t) +
                                    " threads " + std::to_string(threads);
        EXPECT_EQ(Signature(result.skyline), references[v][t].skyline)
            << context;
        ExpectMetricsEqualExceptScanned(result.metrics,
                                        references[v][t].metrics,
                                        context.c_str());
      }
    }
  }
  ThreadPool::SetGlobalConcurrency(1);
}

TEST(ChunkedScanDeterminism, ScanCountsInvariantAcrossThreadCounts) {
  // For a FIXED chunk size, every metric — including the scan count — is
  // a pure function of the data, independent of scheduling.
  const std::vector<QueryTask> tasks =
      GenerateWorkload(4, 2, 5, SmallConfig().num_super_peers, 23);

  std::vector<std::vector<std::vector<double>>> ref_skylines;
  std::vector<QueryMetrics> ref_metrics;
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalConcurrency(threads);
    NetworkConfig config = SmallConfig();
    config.scan_chunk_size = 16;
    SkypeerNetwork network(config);
    network.Preprocess();
    size_t index = 0;
    for (const QueryTask& task : tasks) {
      for (Variant variant : kAllVariants) {
        const QueryResult result =
            network.ExecuteQuery(task.subspace, task.initiator_sp, variant);
        if (threads == 1) {
          ref_skylines.push_back(Signature(result.skyline));
          ref_metrics.push_back(result.metrics);
        } else {
          const std::string context = std::string(VariantName(variant)) +
                                      " threads " + std::to_string(threads);
          ASSERT_LT(index, ref_metrics.size());
          EXPECT_EQ(Signature(result.skyline), ref_skylines[index])
              << context;
          ExpectMetricsEqual(result.metrics, ref_metrics[index],
                             context.c_str());
        }
        ++index;
      }
    }
  }
  ThreadPool::SetGlobalConcurrency(1);
}

TEST(ChunkedScanDeterminism, ChunkedWorkloadAggregatesMatchSequential) {
  const std::vector<QueryTask> tasks =
      GenerateWorkload(4, 3, 8, SmallConfig().num_super_peers, 31);

  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork sequential(SmallConfig());
  sequential.Preprocess();

  NetworkConfig chunked_config = SmallConfig();
  chunked_config.scan_chunk_size = 64;
  ThreadPool::SetGlobalConcurrency(4);
  SkypeerNetwork chunked(chunked_config);
  chunked.Preprocess();
  EXPECT_TRUE(chunked.SupportsParallelWorkloads());

  for (Variant variant : kAllVariants) {
    ThreadPool::SetGlobalConcurrency(1);
    const AggregateMetrics seq = RunWorkload(&sequential, tasks, variant);
    ThreadPool::SetGlobalConcurrency(4);
    const AggregateMetrics par = RunWorkload(&chunked, tasks, variant);
    EXPECT_EQ(seq.queries, par.queries) << VariantName(variant);
    EXPECT_EQ(seq.comp_s.samples(), par.comp_s.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.total_s.samples(), par.total_s.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.kb.samples(), par.kb.samples()) << VariantName(variant);
    EXPECT_EQ(seq.messages.samples(), par.messages.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.result.samples(), par.result.samples())
        << VariantName(variant);
  }
  ThreadPool::SetGlobalConcurrency(1);
}

// --- speculative RT*M / pipeline staging -------------------------------------

const std::vector<Variant> kRefinedVariants = {
    Variant::kRTFM, Variant::kRTPM, Variant::kPipeline};

struct Reference {
  std::vector<std::vector<double>> skyline;
  QueryMetrics metrics;
  std::vector<double> final_thresholds;  // Per super-peer.
};

std::vector<double> CollectFinalThresholds(const SkypeerNetwork& network) {
  std::vector<double> thresholds;
  thresholds.reserve(network.num_super_peers());
  for (int sp = 0; sp < network.num_super_peers(); ++sp) {
    thresholds.push_back(network.super_peer(sp).last_query_stats()
                             .final_threshold);
  }
  return thresholds;
}

/// Sequential (threads=1, speculation off) per-variant/per-task
/// references for `config`.
std::vector<std::vector<Reference>> SequentialReferences(
    NetworkConfig config, const std::vector<QueryTask>& tasks) {
  config.speculative_rt = false;
  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork sequential(config);
  sequential.Preprocess();
  std::vector<std::vector<Reference>> references;
  for (Variant variant : kRefinedVariants) {
    std::vector<Reference> per_task;
    for (const QueryTask& task : tasks) {
      const QueryResult result =
          sequential.ExecuteQuery(task.subspace, task.initiator_sp, variant);
      per_task.push_back({Signature(result.skyline), result.metrics,
                          CollectFinalThresholds(sequential)});
    }
    references.push_back(std::move(per_task));
  }
  return references;
}

void ExpectSpeculativeMatchesReferences(
    NetworkConfig config, const std::vector<QueryTask>& tasks,
    const std::vector<std::vector<Reference>>& references,
    bool compare_scanned) {
  config.speculative_rt = true;
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalConcurrency(threads);
    SkypeerNetwork speculative(config);
    speculative.Preprocess();
    for (size_t v = 0; v < kRefinedVariants.size(); ++v) {
      for (size_t t = 0; t < tasks.size(); ++t) {
        const QueryResult result = speculative.ExecuteQuery(
            tasks[t].subspace, tasks[t].initiator_sp, kRefinedVariants[v]);
        const std::string context =
            std::string(VariantName(kRefinedVariants[v])) + " task " +
            std::to_string(t) + " threads " + std::to_string(threads);
        EXPECT_EQ(Signature(result.skyline), references[v][t].skyline)
            << context;
        if (compare_scanned) {
          ExpectMetricsEqual(result.metrics, references[v][t].metrics,
                             context.c_str());
        } else {
          ExpectMetricsEqualExceptScanned(result.metrics,
                                          references[v][t].metrics,
                                          context.c_str());
        }
        // The refined thresholds every node ended with — the values RT*M
        // forwards — must survive the reconcile bit-identically.
        EXPECT_EQ(CollectFinalThresholds(speculative),
                  references[v][t].final_thresholds)
            << context;
      }
    }
  }
  ThreadPool::SetGlobalConcurrency(1);
}

TEST(SpeculativeRtDeterminism, MatchesSequentialAtAnyThreadCount) {
  // The tentpole guarantee: with --speculative-rt the refined-threshold
  // variants (RTFM, RTPM) and the pipeline produce bit-identical
  // skylines, volume, messages, scan counts, per-node final thresholds
  // and simulated times (measure_cpu=false) at 1, 2 and 8 threads.
  const NetworkConfig config = SmallConfig();
  const std::vector<QueryTask> tasks =
      GenerateWorkload(config.dims, 2, 6, config.num_super_peers, 47);
  const auto references = SequentialReferences(config, tasks);
  ExpectSpeculativeMatchesReferences(config, tasks, references,
                                     /*compare_scanned=*/true);
}

TEST(SpeculativeRtDeterminism, ComposesWithChunkedScans) {
  // Speculation + --scan-chunk: hop-1 nodes consume the staged chunked
  // scan on the exact-threshold match, deeper nodes rerun inline — both
  // reproduce the non-speculative chunked execution exactly (including
  // the chunked scan counters, which are compared against a chunked
  // sequential reference of the same chunk size).
  NetworkConfig config = SmallConfig();
  config.scan_chunk_size = 16;
  const std::vector<QueryTask> tasks =
      GenerateWorkload(config.dims, 2, 5, config.num_super_peers, 53);
  const auto references = SequentialReferences(config, tasks);
  ExpectSpeculativeMatchesReferences(config, tasks, references,
                                     /*compare_scanned=*/true);
}

TEST(SpeculativeRtDeterminism, ComposesWithResultCache) {
  // Speculation + --cache: the speculative wave warms the shared trace
  // cache (same pure function of the store the protocol run would
  // insert) and the reconcile replays it at the refined threshold; the
  // replay is identical on hit and miss, so all metrics match the
  // sequential cache-enabled run.
  NetworkConfig config = SmallConfig();
  config.enable_cache = true;
  const std::vector<QueryTask> tasks =
      GenerateWorkload(config.dims, 2, 5, config.num_super_peers, 59);
  const auto references = SequentialReferences(config, tasks);
  ExpectSpeculativeMatchesReferences(config, tasks, references,
                                     /*compare_scanned=*/true);
}

TEST(SpeculativeRtDeterminism, SpeculativeWorkloadAggregatesMatch) {
  // Speculation inside the parallel workload driver: replicas stage
  // speculatively per query while the batch fans out over clones.
  const NetworkConfig config = SmallConfig();
  const std::vector<QueryTask> tasks =
      GenerateWorkload(config.dims, 3, 8, config.num_super_peers, 61);

  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork sequential(config);
  sequential.Preprocess();

  NetworkConfig spec_config = config;
  spec_config.speculative_rt = true;
  ThreadPool::SetGlobalConcurrency(4);
  SkypeerNetwork speculative(spec_config);
  speculative.Preprocess();

  for (Variant variant : kRefinedVariants) {
    ThreadPool::SetGlobalConcurrency(1);
    const AggregateMetrics seq = RunWorkload(&sequential, tasks, variant);
    ThreadPool::SetGlobalConcurrency(4);
    const AggregateMetrics par = RunWorkload(&speculative, tasks, variant);
    EXPECT_EQ(seq.queries, par.queries) << VariantName(variant);
    EXPECT_EQ(seq.comp_s.samples(), par.comp_s.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.total_s.samples(), par.total_s.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.kb.samples(), par.kb.samples()) << VariantName(variant);
    EXPECT_EQ(seq.messages.samples(), par.messages.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.result.samples(), par.result.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.scanned.samples(), par.scanned.samples())
        << VariantName(variant);
  }
  ThreadPool::SetGlobalConcurrency(1);
}

// --- shared result cache -----------------------------------------------------

TEST(SharedCacheWorkloads, CacheEnabledAggregatesMatchSequential) {
  // The lifted SupportsParallelWorkloads restriction: with the cache on,
  // replicas share one thread-safe cache whose entries are pure
  // functions of (store, subspace) and whose scan counters are identical
  // on hit and miss — so parallel workload aggregates match the
  // sequential ones sample for sample.
  NetworkConfig config = SmallConfig();
  config.enable_cache = true;
  // Repeat subspaces so the workload actually exercises cache hits.
  std::vector<QueryTask> tasks =
      GenerateWorkload(config.dims, 3, 4, config.num_super_peers, 67);
  const std::vector<QueryTask> base = tasks;
  tasks.insert(tasks.end(), base.begin(), base.end());
  tasks.insert(tasks.end(), base.begin(), base.end());

  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork sequential(config);
  sequential.Preprocess();
  ThreadPool::SetGlobalConcurrency(4);
  SkypeerNetwork parallel(config);
  parallel.Preprocess();
  EXPECT_TRUE(parallel.SupportsParallelWorkloads());

  std::vector<Variant> variants(kAllVariants, kAllVariants + 5);
  variants.push_back(Variant::kPipeline);
  for (Variant variant : variants) {
    ThreadPool::SetGlobalConcurrency(1);
    const AggregateMetrics seq = RunWorkload(&sequential, tasks, variant);
    ThreadPool::SetGlobalConcurrency(4);
    const AggregateMetrics par = RunWorkload(&parallel, tasks, variant);
    EXPECT_EQ(seq.queries, par.queries) << VariantName(variant);
    EXPECT_EQ(seq.comp_s.samples(), par.comp_s.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.total_s.samples(), par.total_s.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.kb.samples(), par.kb.samples()) << VariantName(variant);
    EXPECT_EQ(seq.messages.samples(), par.messages.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.result.samples(), par.result.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.scanned.samples(), par.scanned.samples())
        << VariantName(variant);
  }
  ThreadPool::SetGlobalConcurrency(1);
}

TEST(SharedCacheWorkloads, CloneSharesWarmCacheEntries) {
  ThreadPool::SetGlobalConcurrency(1);
  NetworkConfig config = SmallConfig();
  config.enable_cache = true;
  SkypeerNetwork network(config);
  network.Preprocess();

  // Warm the cache on the original, then query the clone: results and
  // metrics must match a fresh sequential execution exactly (cached
  // entries are pure functions of the stores the clone copied).
  const Subspace u = Subspace::FromDims({1, 2});
  const QueryResult original = network.ExecuteQuery(u, 3, Variant::kRTPM);
  const auto clone = network.CloneForQueries();
  const QueryResult replica = clone->ExecuteQuery(u, 3, Variant::kRTPM);
  EXPECT_EQ(Signature(original.skyline), Signature(replica.skyline));
  ExpectMetricsEqual(original.metrics, replica.metrics, "warm clone RTPM");
}

// --- per-network pool --------------------------------------------------------

TEST(PerNetworkPool, ScopedPoolMatchesGlobalSequential) {
  // NetworkConfig::threads scopes concurrency to the instance: with the
  // process-global pool pinned to 1 thread, a network configured with 4
  // private threads must still produce the sequential results.
  ThreadPool::SetGlobalConcurrency(1);
  const NetworkConfig config = SmallConfig();
  SkypeerNetwork sequential(config);
  sequential.Preprocess();

  NetworkConfig pooled_config = config;
  pooled_config.threads = 4;
  pooled_config.speculative_rt = true;
  pooled_config.scan_chunk_size = 16;
  SkypeerNetwork pooled(pooled_config);
  EXPECT_EQ(pooled.pool()->num_threads(), 4);
  EXPECT_EQ(ThreadPool::Global()->num_threads(), 1);
  pooled.Preprocess();

  const std::vector<QueryTask> tasks =
      GenerateWorkload(config.dims, 2, 5, config.num_super_peers, 71);
  std::vector<Variant> variants(kAllVariants, kAllVariants + 5);
  variants.push_back(Variant::kPipeline);
  for (Variant variant : variants) {
    for (const QueryTask& task : tasks) {
      const QueryResult seq =
          sequential.ExecuteQuery(task.subspace, task.initiator_sp, variant);
      const QueryResult par =
          pooled.ExecuteQuery(task.subspace, task.initiator_sp, variant);
      const std::string context = std::string(VariantName(variant));
      EXPECT_EQ(Signature(seq.skyline), Signature(par.skyline)) << context;
      // Chunked scans may consume more points than sequential ones.
      ExpectMetricsEqualExceptScanned(par.metrics, seq.metrics,
                                      context.c_str());
    }
  }
}

TEST(PerNetworkPool, CloneSharesTheParentPool) {
  ThreadPool::SetGlobalConcurrency(1);
  NetworkConfig config = SmallConfig();
  config.threads = 3;
  SkypeerNetwork network(config);
  network.Preprocess();
  const auto clone = network.CloneForQueries();
  EXPECT_EQ(clone->pool(), network.pool());
  EXPECT_EQ(clone->pool()->num_threads(), 3);

  const Subspace u = Subspace::FromDims({0, 2});
  const QueryResult original = network.ExecuteQuery(u, 1, Variant::kFTPM);
  const QueryResult replica = clone->ExecuteQuery(u, 1, Variant::kFTPM);
  EXPECT_EQ(Signature(original.skyline), Signature(replica.skyline));
  ExpectMetricsEqual(original.metrics, replica.metrics, "pooled clone FTPM");
}

// --- kernel dispatch bit-identity --------------------------------------------

TEST(KernelDispatchDeterminism, ForcedScalarMatchesDispatchedAcrossVariants) {
  // The SIMD tentpole guarantee: the dispatched (AVX2/NEON) dominance
  // kernels reproduce the forced-scalar execution bit-identically —
  // skylines, scan counts, volume, messages and simulated times
  // (measure_cpu=false) — across all five variants plus the pipeline, at
  // 1/2/8 threads, composed with --scan-chunk, --speculative-rt and
  // --cache.
  const std::vector<QueryTask> tasks =
      GenerateWorkload(4, 2, 4, SmallConfig().num_super_peers, 83);
  std::vector<Variant> variants(kAllVariants, kAllVariants + 5);
  variants.push_back(Variant::kPipeline);

  std::vector<NetworkConfig> compositions;
  compositions.push_back(SmallConfig());  // plain
  {
    NetworkConfig chunked = SmallConfig();
    chunked.scan_chunk_size = 16;
    compositions.push_back(chunked);
  }
  {
    NetworkConfig speculative = SmallConfig();
    speculative.speculative_rt = true;
    compositions.push_back(speculative);
  }
  {
    NetworkConfig cached = SmallConfig();
    cached.enable_cache = true;
    compositions.push_back(cached);
  }

  for (size_t composition = 0; composition < compositions.size();
       ++composition) {
    const NetworkConfig& config = compositions[composition];

    SetForceScalarKernels(true);
    ThreadPool::SetGlobalConcurrency(1);
    SkypeerNetwork scalar_net(config);
    scalar_net.Preprocess();
    std::vector<std::vector<Reference>> references;
    for (Variant variant : variants) {
      std::vector<Reference> per_task;
      for (const QueryTask& task : tasks) {
        const QueryResult result =
            scalar_net.ExecuteQuery(task.subspace, task.initiator_sp, variant);
        per_task.push_back({Signature(result.skyline), result.metrics,
                            CollectFinalThresholds(scalar_net)});
      }
      references.push_back(std::move(per_task));
    }

    SetForceScalarKernels(false);
    for (int threads : {1, 2, 8}) {
      ThreadPool::SetGlobalConcurrency(threads);
      SkypeerNetwork dispatched(config);
      dispatched.Preprocess();
      for (size_t v = 0; v < variants.size(); ++v) {
        for (size_t t = 0; t < tasks.size(); ++t) {
          const QueryResult result = dispatched.ExecuteQuery(
              tasks[t].subspace, tasks[t].initiator_sp, variants[v]);
          const std::string context =
              "composition " + std::to_string(composition) + " " +
              VariantName(variants[v]) + " task " + std::to_string(t) +
              " threads " + std::to_string(threads);
          EXPECT_EQ(Signature(result.skyline), references[v][t].skyline)
              << context;
          ExpectMetricsEqual(result.metrics, references[v][t].metrics,
                             context.c_str());
          EXPECT_EQ(CollectFinalThresholds(dispatched),
                    references[v][t].final_thresholds)
              << context;
        }
      }
    }
  }
  ThreadPool::SetGlobalConcurrency(1);
}

TEST(ParallelDeterminism, FaultedRunsAreThreadCountInvariant) {
  // Fault injection composes with every parallel-execution feature: the
  // fault pattern is a pure function of the (virtual-time) event
  // sequence and the fault seed, so results, coverage and transport
  // statistics are bit-identical at any thread count — also when chunked
  // scans, speculative staging and the subspace cache are on.
  constexpr Variant kFaultedVariants[] = {Variant::kNaive, Variant::kFTPM,
                                          Variant::kRTFM, Variant::kRTPM,
                                          Variant::kPipeline};
  const Subspace u = Subspace::FromDims({0, 1, 3});

  for (const bool features : {false, true}) {
    NetworkConfig config = SmallConfig();
    config.reliable = true;
    config.drop_prob = 0.2;
    config.delay_jitter = 0.05;
    config.fault_seed = 21;
    config.crashed_sps = {5};
    config.max_retries = 2;
    if (features) {
      config.scan_chunk_size = 64;
      config.speculative_rt = true;
      config.enable_cache = true;
      config.filter_set_size = 6;
    }

    struct Reference {
      std::vector<std::vector<double>> skyline;
      QueryMetrics metrics;
    };
    std::vector<Reference> references;

    ThreadPool::SetGlobalConcurrency(1);
    {
      SkypeerNetwork sequential(config);
      sequential.Preprocess();
      for (Variant variant : kFaultedVariants) {
        const QueryResult result = sequential.ExecuteQuery(u, 0, variant);
        references.push_back({Signature(result.skyline), result.metrics});
      }
    }

    for (const int threads : {2, 8}) {
      ThreadPool::SetGlobalConcurrency(threads);
      SkypeerNetwork parallel(config);
      parallel.Preprocess();
      for (size_t v = 0; v < std::size(kFaultedVariants); ++v) {
        const std::string context =
            "features=" + std::to_string(features) + " threads=" +
            std::to_string(threads) + " variant=" + std::to_string(v);
        const QueryResult result =
            parallel.ExecuteQuery(u, 0, kFaultedVariants[v]);
        EXPECT_EQ(Signature(result.skyline), references[v].skyline)
            << context;
        const QueryMetrics& want = references[v].metrics;
        EXPECT_EQ(result.metrics.total_time_s, want.total_time_s) << context;
        EXPECT_EQ(result.metrics.bytes_transferred, want.bytes_transferred)
            << context;
        EXPECT_EQ(result.metrics.messages, want.messages) << context;
        EXPECT_EQ(result.metrics.partial, want.partial) << context;
        EXPECT_EQ(result.metrics.covered, want.covered) << context;
        EXPECT_EQ(result.metrics.retransmits, want.retransmits) << context;
        EXPECT_EQ(result.metrics.hops_gave_up, want.hops_gave_up) << context;
        EXPECT_EQ(result.metrics.messages_dropped, want.messages_dropped)
            << context;
      }
    }
    ThreadPool::SetGlobalConcurrency(1);
  }
}

TEST(ParallelDeterminism, CloneForQueriesAnswersLikeTheOriginal) {
  ThreadPool::SetGlobalConcurrency(1);
  const NetworkConfig config = SmallConfig();
  SkypeerNetwork network(config);
  network.Preprocess();
  const auto clone = network.CloneForQueries();

  const Subspace u = Subspace::FromDims({0, 3});
  const QueryResult original = network.ExecuteQuery(u, 2, Variant::kRTPM);
  const QueryResult replica = clone->ExecuteQuery(u, 2, Variant::kRTPM);
  EXPECT_EQ(Signature(original.skyline), Signature(replica.skyline));
  ExpectMetricsEqual(original.metrics, replica.metrics, "clone RTPM");
}

// --- sampled filter-point broadcast ------------------------------------------

TEST(FilterBroadcastDeterminism, MatchesUnfilteredOracleAcrossCompositions) {
  // The filter-broadcast guarantee: the sampled filter set attached to
  // the flooded query changes what is *shipped*, never what is
  // *answered*. For all five variants plus the pipeline the filtered
  // skyline is bit-identical to the unfiltered oracle's at 1, 2 and 8
  // threads, composed with --scan-chunk, --speculative-rt and --cache —
  // and the filtered run's own simulated metrics are thread-count
  // invariant.
  const std::vector<QueryTask> tasks =
      GenerateWorkload(4, 2, 4, SmallConfig().num_super_peers, 91);
  std::vector<Variant> variants(kAllVariants, kAllVariants + 5);
  variants.push_back(Variant::kPipeline);

  std::vector<NetworkConfig> compositions;
  compositions.push_back(SmallConfig());  // plain
  {
    NetworkConfig chunked = SmallConfig();
    chunked.scan_chunk_size = 16;
    compositions.push_back(chunked);
  }
  {
    NetworkConfig speculative = SmallConfig();
    speculative.speculative_rt = true;
    compositions.push_back(speculative);
  }
  {
    NetworkConfig cached = SmallConfig();
    cached.enable_cache = true;
    compositions.push_back(cached);
  }

  using SkylineSig = std::vector<std::vector<double>>;
  for (size_t composition = 0; composition < compositions.size();
       ++composition) {
    // Unfiltered sequential oracle of this composition.
    ThreadPool::SetGlobalConcurrency(1);
    std::vector<std::vector<SkylineSig>> oracle;
    {
      SkypeerNetwork network(compositions[composition]);
      network.Preprocess();
      for (Variant variant : variants) {
        std::vector<SkylineSig> per_task;
        for (const QueryTask& task : tasks) {
          per_task.push_back(Signature(
              network.ExecuteQuery(task.subspace, task.initiator_sp, variant)
                  .skyline));
        }
        oracle.push_back(std::move(per_task));
      }
    }

    NetworkConfig filtered = compositions[composition];
    filtered.filter_set_size = 8;
    std::vector<std::vector<QueryMetrics>> reference(variants.size());
    for (int threads : {1, 2, 8}) {
      ThreadPool::SetGlobalConcurrency(threads);
      SkypeerNetwork network(filtered);
      network.Preprocess();
      for (size_t v = 0; v < variants.size(); ++v) {
        for (size_t t = 0; t < tasks.size(); ++t) {
          const QueryResult result = network.ExecuteQuery(
              tasks[t].subspace, tasks[t].initiator_sp, variants[v]);
          const std::string context =
              "composition " + std::to_string(composition) + " " +
              VariantName(variants[v]) + " task " + std::to_string(t) +
              " threads " + std::to_string(threads);
          EXPECT_EQ(Signature(result.skyline), oracle[v][t]) << context;
          if (threads == 1) {
            reference[v].push_back(result.metrics);
          } else {
            ExpectMetricsEqual(result.metrics, reference[v][t],
                               context.c_str());
          }
        }
      }
    }
  }
  ThreadPool::SetGlobalConcurrency(1);
}

TEST(FilterBroadcastDeterminism, NaiveIgnoresTheFilterAndLocalScansShrink) {
  // The naive variant broadcasts no threshold and no filter: its metrics
  // with --filter-set on are identical to the unfiltered run's. The
  // thresholded variants do attach the filter, whose seeds can only
  // shrink local results — never grow them — and across a workload the
  // pruning is strictly visible.
  ThreadPool::SetGlobalConcurrency(1);
  const NetworkConfig plain = SmallConfig();
  NetworkConfig with_filter = plain;
  with_filter.filter_set_size = 8;

  SkypeerNetwork unfiltered_net(plain);
  unfiltered_net.Preprocess();
  SkypeerNetwork filtered_net(with_filter);
  filtered_net.Preprocess();

  const std::vector<QueryTask> tasks =
      GenerateWorkload(plain.dims, 2, 6, plain.num_super_peers, 97);
  size_t unfiltered_local = 0;
  size_t filtered_local = 0;
  for (const QueryTask& task : tasks) {
    const QueryResult naive_plain = unfiltered_net.ExecuteQuery(
        task.subspace, task.initiator_sp, Variant::kNaive);
    const QueryResult naive_filtered = filtered_net.ExecuteQuery(
        task.subspace, task.initiator_sp, Variant::kNaive);
    ExpectMetricsEqual(naive_filtered.metrics, naive_plain.metrics,
                       "naive ignores the filter");
    for (Variant variant : {Variant::kFTFM, Variant::kFTPM, Variant::kRTFM,
                            Variant::kRTPM, Variant::kPipeline}) {
      const QueryResult plain_run = unfiltered_net.ExecuteQuery(
          task.subspace, task.initiator_sp, variant);
      const QueryResult filtered_run = filtered_net.ExecuteQuery(
          task.subspace, task.initiator_sp, variant);
      EXPECT_LE(filtered_run.metrics.local_result_points,
                plain_run.metrics.local_result_points)
          << VariantName(variant);
      unfiltered_local += plain_run.metrics.local_result_points;
      filtered_local += filtered_run.metrics.local_result_points;
    }
  }
  EXPECT_LT(filtered_local, unfiltered_local);
}

}  // namespace
}  // namespace skypeer
