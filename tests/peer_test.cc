// Unit tests of the Peer class (pre-processing participant).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/engine/peer.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(Peer, HoldsItsPartition) {
  Rng rng(1);
  PointSet data = GenerateUniform(4, 50, &rng, 100);
  Peer peer(7, std::move(data));
  EXPECT_EQ(peer.id(), 7);
  EXPECT_EQ(peer.data_size(), 50u);
  EXPECT_EQ(peer.data().size(), 50u);
  EXPECT_FALSE(peer.ext_computed());
}

TEST(Peer, ExtendedSkylineMatchesDirectComputation) {
  Rng rng(2);
  PointSet data = GenerateUniform(4, 200, &rng);
  PointSet copy = data;
  Peer peer(0, std::move(data));
  const ResultList& ext = peer.ComputeExtendedSkyline();
  EXPECT_TRUE(peer.ext_computed());
  EXPECT_EQ(SortedIds(ext.points),
            SortedIds(BnlSkyline(copy, Subspace::FullSpace(4), /*ext=*/true)));
  EXPECT_TRUE(ext.IsSorted());
}

TEST(Peer, ComputeIsIdempotent) {
  Rng rng(3);
  Peer peer(0, GenerateUniform(3, 80, &rng));
  const size_t first = peer.ComputeExtendedSkyline().size();
  EXPECT_EQ(peer.ComputeExtendedSkyline().size(), first);
}

TEST(Peer, DiscardDataKeepsSkylineAndSize) {
  Rng rng(4);
  Peer peer(0, GenerateUniform(3, 60, &rng));
  peer.ComputeExtendedSkyline();
  const size_t ext_size = peer.extended_skyline().size();
  peer.DiscardData();
  EXPECT_TRUE(peer.data().empty());
  EXPECT_EQ(peer.data_size(), 60u);  // Statistic survives.
  EXPECT_EQ(peer.extended_skyline().size(), ext_size);
}

TEST(Peer, DiscardExtendedSkyline) {
  Rng rng(5);
  Peer peer(0, GenerateUniform(3, 60, &rng));
  peer.ComputeExtendedSkyline();
  peer.DiscardExtendedSkyline();
  EXPECT_TRUE(peer.extended_skyline().empty());
}

TEST(Peer, EmptyPartition) {
  Peer peer(0, PointSet(5));
  EXPECT_EQ(peer.data_size(), 0u);
  EXPECT_TRUE(peer.ComputeExtendedSkyline().empty());
}

}  // namespace
}  // namespace skypeer
