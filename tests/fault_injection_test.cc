// End-to-end tests of deterministic fault injection and the reliable
// query protocol: the two anchor invariants (losses/delays plus retries
// reproduce the fault-free answer bit for bit; permanent crashes yield
// the exact skyline of the reachable stores, flagged partial with an
// accurate coverage report), deadline semantics, reroute recovery,
// determinism per fault seed and protocol-state hygiene across
// back-to-back executions.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/common/subspace.h"
#include "skypeer/engine/network_builder.h"
#include "skypeer/sim/fault_plan.h"

namespace skypeer {
namespace {

constexpr Variant kVariantsWithPipeline[] = {
    Variant::kNaive, Variant::kFTFM, Variant::kFTPM,
    Variant::kRTFM,  Variant::kRTPM, Variant::kPipeline};

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

NetworkConfig BaseConfig() {
  NetworkConfig config;
  config.num_peers = 120;
  config.num_super_peers = 8;
  config.points_per_peer = 30;
  config.dims = 5;
  config.seed = 11;
  config.measure_cpu = false;
  config.retain_peer_data = true;
  config.reliable = true;
  return config;
}

/// The oracle for partial results: the exact subspace skyline over the
/// union of the listed super-peers' stores (stores are extended
/// skylines, so this equals the skyline of the covered raw data).
std::vector<PointId> ReachableSkylineIds(const SkypeerNetwork& network,
                                         const std::vector<int>& reachable,
                                         Subspace u) {
  PointSet all(network.dims());
  for (int sp : reachable) {
    const PointSet& store = network.super_peer(sp).store().points;
    for (size_t i = 0; i < store.size(); ++i) {
      all.Append(store[i], store.id(i));
    }
  }
  return SortedIds(BnlSkyline(all, u));
}

// --- anchor invariant 1: losses and delays are invisible ----------------

TEST(FaultInjection, LossAndJitterWithRetriesMatchFaultFreeBitForBit) {
  const Subspace u = Subspace::FromDims({0, 2, 4});

  NetworkConfig clean = BaseConfig();
  SkypeerNetwork reference(clean);
  reference.Preprocess();

  NetworkConfig lossy = BaseConfig();
  lossy.drop_prob = 0.2;
  lossy.delay_jitter = 0.05;
  lossy.fault_seed = 99;
  SkypeerNetwork faulted(lossy);
  faulted.Preprocess();

  for (Variant variant : kVariantsWithPipeline) {
    QueryResult want = reference.ExecuteQuery(u, /*initiator_sp=*/0, variant);
    QueryResult got = faulted.ExecuteQuery(u, /*initiator_sp=*/0, variant);
    EXPECT_EQ(SortedIds(got.skyline.points), SortedIds(want.skyline.points))
        << "variant " << static_cast<int>(variant);
    EXPECT_FALSE(got.metrics.partial);
    EXPECT_EQ(got.metrics.super_peers_reached, got.metrics.super_peers_total);
    EXPECT_GT(got.metrics.retransmits, 0u);
    EXPECT_GT(got.metrics.messages_dropped, 0u);
    // The answer also matches the centralized oracle.
    EXPECT_EQ(SortedIds(got.skyline.points),
              SortedIds(faulted.GroundTruthSkyline(u)));
  }
}

// --- anchor invariant 2: crashes degrade to the reachable subset --------

TEST(FaultInjection, CrashedSuperPeerYieldsExactReachableSkyline) {
  const Subspace u = Subspace::FromDims({1, 2, 3});
  const int crashed = 2;

  NetworkConfig config = BaseConfig();
  config.crashed_sps = {crashed};
  config.max_retries = 2;
  SkypeerNetwork network(config);
  network.Preprocess();

  std::vector<int> reachable;
  for (int sp = 0; sp < network.num_super_peers(); ++sp) {
    if (sp != crashed) {
      reachable.push_back(sp);
    }
  }
  const std::vector<PointId> expected =
      ReachableSkylineIds(network, reachable, u);

  for (Variant variant : kVariantsWithPipeline) {
    QueryResult result = network.ExecuteQuery(u, /*initiator_sp=*/0, variant);
    EXPECT_EQ(SortedIds(result.skyline.points), expected)
        << "variant " << static_cast<int>(variant);
    EXPECT_TRUE(result.metrics.partial);
    EXPECT_EQ(result.metrics.super_peers_reached,
              network.num_super_peers() - 1);
    EXPECT_EQ(std::find(result.metrics.covered.begin(),
                        result.metrics.covered.end(), crashed),
              result.metrics.covered.end());
    EXPECT_GT(result.metrics.hops_gave_up, 0u);
  }
}

TEST(FaultInjection, CrashedInitiatorFailsGracefully) {
  NetworkConfig config = BaseConfig();
  config.crashed_sps = {3};
  config.max_retries = 1;
  SkypeerNetwork network(config);
  network.Preprocess();

  const Subspace u = Subspace::FromDims({0, 1});
  QueryResult result = network.ExecuteQuery(u, /*initiator_sp=*/3,
                                            Variant::kFTPM);
  EXPECT_EQ(result.skyline.size(), 0u);
  EXPECT_TRUE(result.metrics.partial);
  EXPECT_EQ(result.metrics.super_peers_reached, 0);
}

// --- deadline: graceful truncation, never a hang ------------------------

TEST(FaultInjection, DeadlineYieldsInitiatorLocalPartialResult) {
  NetworkConfig config = BaseConfig();
  // Every round trip costs at least 0.4 s of latency; a 50 ms deadline
  // fires before any reply can arrive, so the initiator answers with its
  // own store only.
  config.latency = 0.2;
  config.query_deadline = 0.05;
  SkypeerNetwork network(config);
  network.Preprocess();

  const Subspace u = Subspace::FromDims({0, 3});
  const int initiator = 1;
  QueryResult result = network.ExecuteQuery(u, initiator, Variant::kFTPM);
  EXPECT_TRUE(result.metrics.partial);
  EXPECT_EQ(result.metrics.super_peers_reached, 1);
  EXPECT_EQ(result.metrics.covered, std::vector<int>{initiator});
  EXPECT_EQ(SortedIds(result.skyline.points),
            ReachableSkylineIds(network, {initiator}, u));
}

// --- reroute recovery around a dead backbone edge -----------------------

TEST(FaultInjection, LinkOutageIsRoutedAroundWithFullCoverage) {
  NetworkConfig config = BaseConfig();
  config.max_retries = 2;
  SkypeerNetwork network(config);
  network.Preprocess();

  const int initiator = 0;
  const int neighbor =
      network.overlay().backbone.Neighbors(initiator).front();
  // The backbone keeps the rest of the graph connected without this edge
  // (degree ~4 on 8 nodes); the flood reaches `neighbor` through another
  // path while the initiator's direct hop gives up.
  sim::FaultPlan plan;
  plan.seed = 5;
  plan.TakeLinkDown(initiator, neighbor, 0.0,
                    std::numeric_limits<double>::infinity());
  network.SetFaultPlan(plan);

  const Subspace u = Subspace::FromDims({0, 1, 4});
  const auto truth = SortedIds(network.GroundTruthSkyline(u));
  for (Variant variant : kAllVariants) {
    QueryResult result = network.ExecuteQuery(u, initiator, variant);
    EXPECT_EQ(SortedIds(result.skyline.points), truth)
        << "variant " << static_cast<int>(variant);
    EXPECT_FALSE(result.metrics.partial);
    EXPECT_EQ(result.metrics.super_peers_reached,
              network.num_super_peers());
    EXPECT_GT(result.metrics.hops_gave_up, 0u);
  }
}

// --- determinism --------------------------------------------------------

TEST(FaultInjection, SameFaultSeedReproducesRunExactly) {
  NetworkConfig config = BaseConfig();
  config.drop_prob = 0.25;
  config.delay_jitter = 0.1;
  config.fault_seed = 1234;

  const Subspace u = Subspace::FromDims({0, 1, 2});
  SkypeerNetwork a(config);
  a.Preprocess();
  SkypeerNetwork b(config);
  b.Preprocess();

  for (Variant variant : kVariantsWithPipeline) {
    QueryResult ra = a.ExecuteQuery(u, /*initiator_sp=*/2, variant);
    QueryResult rb = b.ExecuteQuery(u, /*initiator_sp=*/2, variant);
    EXPECT_EQ(SortedIds(ra.skyline.points), SortedIds(rb.skyline.points));
    EXPECT_EQ(ra.metrics.total_time_s, rb.metrics.total_time_s);
    EXPECT_EQ(ra.metrics.bytes_transferred, rb.metrics.bytes_transferred);
    EXPECT_EQ(ra.metrics.messages, rb.metrics.messages);
    EXPECT_EQ(ra.metrics.retransmits, rb.metrics.retransmits);
    EXPECT_EQ(ra.metrics.messages_dropped, rb.metrics.messages_dropped);
  }
}

// --- protocol-state hygiene across executions ---------------------------

TEST(FaultInjection, BackToBackFaultedQueriesStayCleanAndIdentical) {
  NetworkConfig config = BaseConfig();
  config.drop_prob = 0.2;
  config.fault_seed = 77;
  SkypeerNetwork network(config);
  network.Preprocess();

  const Subspace u = Subspace::FromDims({1, 3, 4});
  const auto truth = SortedIds(network.GroundTruthSkyline(u));
  for (Variant variant : kVariantsWithPipeline) {
    // The fault RNG is reseeded per run, so re-executing the same query
    // replays the same fault pattern: the runs must agree on everything —
    // any leftover transport state (sequence numbers, dedup sets, timers)
    // from the first execution would perturb the second.
    QueryResult first = network.ExecuteQuery(u, /*initiator_sp=*/4, variant);
    QueryResult second = network.ExecuteQuery(u, /*initiator_sp=*/4, variant);
    EXPECT_EQ(SortedIds(first.skyline.points), truth)
        << "variant " << static_cast<int>(variant);
    EXPECT_EQ(SortedIds(second.skyline.points), truth);
    EXPECT_EQ(first.metrics.total_time_s, second.metrics.total_time_s);
    EXPECT_EQ(first.metrics.bytes_transferred,
              second.metrics.bytes_transferred);
    EXPECT_EQ(first.metrics.retransmits, second.metrics.retransmits);
  }
}

TEST(FaultInjection, CrashThenCleanQueryRecoversFullCoverage) {
  // A crash-degraded execution must not poison the next one: install a
  // crash plan, run, clear it, run again — the second answer is complete.
  NetworkConfig config = BaseConfig();
  config.max_retries = 1;
  SkypeerNetwork network(config);
  network.Preprocess();

  const Subspace u = Subspace::FromDims({2, 4});
  sim::FaultPlan crash;
  crash.seed = 3;
  crash.CrashNode(5);
  network.SetFaultPlan(crash);
  QueryResult degraded = network.ExecuteQuery(u, 0, Variant::kRTPM);
  EXPECT_TRUE(degraded.metrics.partial);

  network.SetFaultPlan(sim::FaultPlan{});  // Fault-free again.
  QueryResult clean = network.ExecuteQuery(u, 0, Variant::kRTPM);
  EXPECT_FALSE(clean.metrics.partial);
  EXPECT_EQ(SortedIds(clean.skyline.points),
            SortedIds(network.GroundTruthSkyline(u)));
}

// --- sampled filter-point broadcast under faults ------------------------

TEST(FaultInjection, FilteredLossAndJitterMatchTheUnfilteredFaultFreeOracle) {
  // The broadcast filter rides the reliable envelopes: with losses and
  // jitter the filtered answer still equals the *unfiltered* fault-free
  // oracle bit for bit, with full coverage — retransmitted queries carry
  // the identical filter object, and filter points only prune what the
  // initiator's own merge input would have removed.
  const Subspace u = Subspace::FromDims({0, 2, 4});

  SkypeerNetwork reference(BaseConfig());
  reference.Preprocess();

  NetworkConfig lossy = BaseConfig();
  lossy.filter_set_size = 8;
  lossy.drop_prob = 0.2;
  lossy.delay_jitter = 0.05;
  lossy.fault_seed = 99;
  SkypeerNetwork faulted(lossy);
  faulted.Preprocess();

  for (Variant variant : kVariantsWithPipeline) {
    QueryResult want = reference.ExecuteQuery(u, /*initiator_sp=*/0, variant);
    QueryResult got = faulted.ExecuteQuery(u, /*initiator_sp=*/0, variant);
    EXPECT_EQ(SortedIds(got.skyline.points), SortedIds(want.skyline.points))
        << "variant " << static_cast<int>(variant);
    EXPECT_FALSE(got.metrics.partial);
    EXPECT_EQ(got.metrics.super_peers_reached, got.metrics.super_peers_total);
    EXPECT_GT(got.metrics.messages_dropped, 0u);
  }
}

TEST(FaultInjection, FilteredCrashYieldsExactReachableSkyline) {
  // A crash degrades a filtered query exactly like an unfiltered one:
  // the answer is the precise skyline of the reachable stores and the
  // coverage report is unchanged.
  const Subspace u = Subspace::FromDims({1, 2, 3});
  const int crashed = 2;

  NetworkConfig config = BaseConfig();
  config.filter_set_size = 8;
  config.crashed_sps = {crashed};
  config.max_retries = 2;
  SkypeerNetwork network(config);
  network.Preprocess();

  std::vector<int> reachable;
  for (int sp = 0; sp < network.num_super_peers(); ++sp) {
    if (sp != crashed) {
      reachable.push_back(sp);
    }
  }
  const std::vector<PointId> expected =
      ReachableSkylineIds(network, reachable, u);

  for (Variant variant : kVariantsWithPipeline) {
    QueryResult result = network.ExecuteQuery(u, /*initiator_sp=*/0, variant);
    EXPECT_EQ(SortedIds(result.skyline.points), expected)
        << "variant " << static_cast<int>(variant);
    EXPECT_TRUE(result.metrics.partial);
    EXPECT_EQ(result.metrics.super_peers_reached,
              network.num_super_peers() - 1);
  }
}

// --- configuration validation -------------------------------------------

TEST(FaultInjection, ValidationRejectsFaultsWithoutReliableTransport) {
  NetworkConfig config = BaseConfig();
  config.reliable = false;
  config.drop_prob = 0.1;
  EXPECT_FALSE(SkypeerNetwork::Validate(config).ok());

  config.drop_prob = 0.0;
  config.crashed_sps = {1};
  EXPECT_FALSE(SkypeerNetwork::Validate(config).ok());

  config.crashed_sps.clear();
  EXPECT_TRUE(SkypeerNetwork::Validate(config).ok());

  config.reliable = true;
  config.drop_prob = 1.0;  // Certain loss can never finish.
  EXPECT_FALSE(SkypeerNetwork::Validate(config).ok());
}

}  // namespace
}  // namespace skypeer
