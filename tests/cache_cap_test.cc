// Tests of the bounded per-subspace trace cache (`--cache-cap`):
// least-recently-used eviction with deterministic order, byte
// accounting, thread safety under concurrent fill, and the engine-level
// guarantee that a capped cache changes no simulated metric — an evicted
// entry is refilled by the same pure function, and the miss path replays
// identically to the hit path.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/thread_pool.h"
#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"
#include "skypeer/engine/subspace_cache.h"

namespace skypeer {
namespace {

std::shared_ptr<const ScanTrace> MakeTrace(size_t events) {
  auto trace = std::make_shared<ScanTrace>();
  trace->accepted.assign(events, 1);
  trace->dist_u.assign(events, 0.5);
  return trace;
}

TEST(CacheCap, EvictsTheLeastRecentlyUsedEntry) {
  SubspaceScanTraceCache cache(/*max_entries=*/2);
  cache.Insert(0, 0, 0b01, 0, MakeTrace(4));
  cache.Insert(0, 0, 0b10, 0, MakeTrace(4));
  EXPECT_EQ(cache.size(), 2u);

  // Touch the first entry, then overflow: the untouched one goes.
  EXPECT_NE(cache.Lookup(0, 0, 0b01, 0), nullptr);
  cache.Insert(0, 0, 0b11, 0, MakeTrace(4));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup(0, 0, 0b01, 0), nullptr);
  EXPECT_EQ(cache.Lookup(0, 0, 0b10, 0), nullptr);  // Evicted.
  EXPECT_NE(cache.Lookup(0, 0, 0b11, 0), nullptr);

  const SubspaceScanTraceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(CacheCap, InsertRefreshesRecencyAndReinsertDoesNotDuplicate) {
  SubspaceScanTraceCache cache(2);
  const auto first = cache.Insert(0, 0, 0b01, 0, MakeTrace(4));
  cache.Insert(0, 0, 0b10, 0, MakeTrace(4));
  // Re-inserting an existing key returns the published trace and
  // refreshes it, so the *other* entry is the LRU victim.
  const auto again = cache.Insert(0, 0, 0b01, 0, MakeTrace(99));
  EXPECT_EQ(again.get(), first.get());  // First publisher wins.
  cache.Insert(0, 0, 0b11, 0, MakeTrace(4));
  EXPECT_NE(cache.Lookup(0, 0, 0b01, 0), nullptr);
  EXPECT_EQ(cache.Lookup(0, 0, 0b10, 0), nullptr);
}

TEST(CacheCap, UnboundedCacheNeverEvicts) {
  SubspaceScanTraceCache cache;  // max_entries = 0.
  for (uint32_t mask = 1; mask <= 64; ++mask) {
    cache.Insert(0, 0, mask, 0, MakeTrace(2));
  }
  EXPECT_EQ(cache.size(), 64u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CacheCap, ByteAccountingTracksResidentTraces) {
  SubspaceScanTraceCache cache(8);
  const auto a = MakeTrace(10);
  const auto b = MakeTrace(20);
  cache.Insert(0, 0, 0b01, 0, a);
  cache.Insert(1, 0, 0b01, 0, b);
  EXPECT_EQ(cache.stats().bytes, a->ByteSize() + b->ByteSize());

  cache.Invalidate(0);
  EXPECT_EQ(cache.stats().bytes, b->ByteSize());
  EXPECT_EQ(cache.size(), 1u);

  cache.Invalidate(1);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CacheCap, EvictionOrderIsDeterministic) {
  // The same lookup/insert sequence produces the same survivors and the
  // same statistics on every run.
  auto run = [] {
    SubspaceScanTraceCache cache(3);
    for (int sp = 0; sp < 2; ++sp) {
      for (uint32_t mask = 1; mask <= 5; ++mask) {
        cache.Insert(sp, 0, mask, 0, MakeTrace(mask));
        cache.Lookup(sp, 0, 1, 0);  // Keep (sp, 1) hot.
      }
    }
    std::vector<bool> present;
    for (int sp = 0; sp < 2; ++sp) {
      for (uint32_t mask = 1; mask <= 5; ++mask) {
        present.push_back(cache.Lookup(sp, 0, mask, 0) != nullptr);
      }
    }
    return std::make_pair(present, cache.stats());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second.hits, b.second.hits);
  EXPECT_EQ(a.second.misses, b.second.misses);
  EXPECT_EQ(a.second.evictions, b.second.evictions);
  EXPECT_EQ(a.second.bytes, b.second.bytes);
}

TEST(CacheCap, ConcurrentFillRespectsTheCap) {
  SubspaceScanTraceCache cache(4);
  ThreadPool pool(8);
  pool.ParallelFor(64, [&](size_t i) {
    const int sp = static_cast<int>(i % 4);
    const uint32_t mask = static_cast<uint32_t>(1 + i % 11);
    cache.Insert(sp, 0, mask, 0, MakeTrace(1 + i % 3));
    cache.Lookup(sp, 0, mask, 0);
    if (i % 16 == 0) {
      cache.Invalidate(sp);
    }
  });
  EXPECT_LE(cache.size(), 4u);
  const SubspaceScanTraceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, cache.size());
}

// --- engine-level: a capped cache changes no simulated metric ---------------

NetworkConfig CachedConfig(size_t cap) {
  NetworkConfig config;
  config.num_peers = 40;
  config.num_super_peers = 8;
  config.points_per_peer = 30;
  config.dims = 4;
  config.seed = 7;
  config.measure_cpu = false;
  config.enable_cache = true;
  config.cache_max_entries = cap;
  return config;
}

TEST(CacheCap, TinyCapMatchesUnboundedMetricsExactly) {
  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork unbounded(CachedConfig(0));
  unbounded.Preprocess();
  // Cap of 2 against 8 super-peers and several subspaces: constant
  // thrash.
  SkypeerNetwork capped(CachedConfig(2));
  capped.Preprocess();

  // Repeat subspaces so hits, misses and evictions all occur.
  std::vector<QueryTask> tasks =
      GenerateWorkload(4, 2, 5, CachedConfig(0).num_super_peers, 107);
  const std::vector<QueryTask> base = tasks;
  tasks.insert(tasks.end(), base.begin(), base.end());

  for (const QueryTask& task : tasks) {
    for (Variant variant : kAllVariants) {
      const QueryResult a =
          unbounded.ExecuteQuery(task.subspace, task.initiator_sp, variant);
      const QueryResult b =
          capped.ExecuteQuery(task.subspace, task.initiator_sp, variant);
      EXPECT_EQ(a.skyline.points.Ids(), b.skyline.points.Ids())
          << VariantName(variant);
      EXPECT_EQ(a.metrics.computational_time_s, b.metrics.computational_time_s)
          << VariantName(variant);
      EXPECT_EQ(a.metrics.total_time_s, b.metrics.total_time_s)
          << VariantName(variant);
      EXPECT_EQ(a.metrics.bytes_transferred, b.metrics.bytes_transferred)
          << VariantName(variant);
      EXPECT_EQ(a.metrics.store_points_scanned, b.metrics.store_points_scanned)
          << VariantName(variant);
      EXPECT_TRUE(a.metrics.ops == b.metrics.ops) << VariantName(variant);
    }
  }
  // The capped instance really evicted; the unbounded one never does.
  EXPECT_GT(capped.result_cache()->stats().evictions, 0u);
  EXPECT_EQ(unbounded.result_cache()->stats().evictions, 0u);
  EXPECT_LE(capped.result_cache()->size(), 2u);
}

TEST(CacheCap, WorkloadAggregateReportsCacheCounters) {
  ThreadPool::SetGlobalConcurrency(1);
  // Cap 8 = one query's worth of entries (one per super-peer), so an
  // immediately repeated subspace hits while a different subspace
  // evicts — exercising hits, misses and evictions in one workload.
  SkypeerNetwork network(CachedConfig(8));
  network.Preprocess();
  const std::vector<QueryTask> base =
      GenerateWorkload(4, 2, 4, CachedConfig(0).num_super_peers, 109);
  std::vector<QueryTask> tasks;
  for (const QueryTask& task : base) {
    tasks.push_back(task);
    tasks.push_back(task);  // Adjacent repeat: hits while resident.
  }

  const AggregateMetrics aggregate =
      RunWorkload(&network, tasks, Variant::kRTPM);
  EXPECT_GT(aggregate.cache_misses, 0u);
  EXPECT_GT(aggregate.cache_hits, 0u);
  EXPECT_GT(aggregate.cache_evictions, 0u);
  EXPECT_LE(aggregate.cache_entries, 8u);
  EXPECT_GT(aggregate.cache_bytes, 0u);
}

}  // namespace
}  // namespace skypeer
