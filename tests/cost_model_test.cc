// Tests of the deterministic ops-count cost model: OpCounts accounting,
// CostModel profiles, MetricSeries percentile edge ranks, and the
// engine-level guarantee that under counted charging every QueryMetrics
// field — including both time metrics — is bit-identical across runs,
// thread counts, kernel dispatch and feature compositions.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "skypeer/common/dominance_batch.h"
#include "skypeer/common/op_counts.h"
#include "skypeer/common/thread_pool.h"
#include "skypeer/engine/cost_model.h"
#include "skypeer/engine/experiment.h"
#include "skypeer/engine/metrics.h"
#include "skypeer/engine/network_builder.h"

namespace skypeer {
namespace {

// --- OpCounts ---------------------------------------------------------------

TEST(OpCounts, AccumulatesFieldwise) {
  OpCounts a;
  a.dominance_tests = 3;
  a.rtree_node_visits = 5;
  a.scan_steps = 7;
  OpCounts b;
  b.dominance_tests = 10;
  b.merge_pulls = 2;
  b.sort_steps = 4;
  b.bytes_serialized = 100;
  a += b;
  EXPECT_EQ(a.dominance_tests, 13u);
  EXPECT_EQ(a.rtree_node_visits, 5u);
  EXPECT_EQ(a.scan_steps, 7u);
  EXPECT_EQ(a.merge_pulls, 2u);
  EXPECT_EQ(a.sort_steps, 4u);
  EXPECT_EQ(a.bytes_serialized, 100u);
  EXPECT_EQ(a.total(), 13u + 5u + 7u + 2u + 4u + 100u);

  const OpCounts c = a + OpCounts{};
  EXPECT_EQ(c, a);
  EXPECT_NE(c, b);
}

TEST(OpCounts, SortCostIsNCeilLogN) {
  EXPECT_EQ(SortCost(0), 0u);
  EXPECT_EQ(SortCost(1), 0u);
  EXPECT_EQ(SortCost(2), 2u);   // 2 * ceil(log2 2) = 2 * 1
  EXPECT_EQ(SortCost(3), 6u);   // 3 * 2
  EXPECT_EQ(SortCost(4), 8u);   // 4 * 2
  EXPECT_EQ(SortCost(5), 15u);  // 5 * 3
  EXPECT_EQ(SortCost(8), 24u);  // 8 * 3
  EXPECT_EQ(SortCost(9), 36u);  // 9 * 4
  EXPECT_EQ(SortCost(1024), 1024u * 10u);
  EXPECT_EQ(SortCost(1025), 1025u * 11u);
}

// --- CostModel --------------------------------------------------------------

TEST(CostModel, UnitSecondsEqualTotalOps) {
  OpCounts ops;
  ops.dominance_tests = 11;
  ops.rtree_node_visits = 13;
  ops.scan_steps = 17;
  ops.merge_pulls = 19;
  ops.sort_steps = 23;
  ops.bytes_serialized = 29;
  const CostModel unit = CostModel::Unit();
  EXPECT_TRUE(unit.counted());
  EXPECT_DOUBLE_EQ(unit.Seconds(ops), static_cast<double>(ops.total()));
}

TEST(CostModel, CalibratedSecondsIsTheDotProduct) {
  const CostModel model = CostModel::Calibrated();
  OpCounts ops;
  ops.dominance_tests = 1000;
  ops.bytes_serialized = 4096;
  const double expected = 1000 * model.dominance_test_s +
                          4096 * model.byte_s;
  EXPECT_DOUBLE_EQ(model.Seconds(ops), expected);
  EXPECT_EQ(CostModel::Measured().counted(), false);
  EXPECT_DOUBLE_EQ(CostModel::Measured().Seconds(OpCounts{}), 0.0);
}

TEST(CostModel, ProfileRoundTripsExactly) {
  CostModel model = CostModel::Calibrated();
  model.dominance_test_s = 3.25e-9;
  model.rtree_node_visit_s = 1.75e-8;
  model.scan_step_s = 1.0e-12;
  model.merge_pull_s = 6.5e-8;
  model.sort_step_s = 9.125e-9;
  model.byte_s = 2.0e-10;

  CostModel loaded = CostModel::Calibrated();
  ASSERT_TRUE(loaded.LoadProfileString(model.ToProfileString()));
  EXPECT_EQ(loaded.dominance_test_s, model.dominance_test_s);
  EXPECT_EQ(loaded.rtree_node_visit_s, model.rtree_node_visit_s);
  EXPECT_EQ(loaded.scan_step_s, model.scan_step_s);
  EXPECT_EQ(loaded.merge_pull_s, model.merge_pull_s);
  EXPECT_EQ(loaded.sort_step_s, model.sort_step_s);
  EXPECT_EQ(loaded.byte_s, model.byte_s);
}

TEST(CostModel, ProfileIgnoresCommentsAndRejectsGarbage) {
  CostModel model = CostModel::Calibrated();
  EXPECT_TRUE(model.LoadProfileString(
      "# a comment\n\nunknown_key=1.0\ndominance_test_s=5e-9\n"));
  EXPECT_EQ(model.dominance_test_s, 5e-9);
  EXPECT_FALSE(model.LoadProfileString("dominance_test_s=not-a-number\n"));
  EXPECT_FALSE(model.LoadProfileString("no equals sign here\n"));
}

TEST(CostModel, ModeNamesParseAndPrint) {
  CostModelMode mode;
  ASSERT_TRUE(ParseCostModelMode("measured", &mode));
  EXPECT_EQ(mode, CostModelMode::kMeasured);
  ASSERT_TRUE(ParseCostModelMode("calibrated", &mode));
  EXPECT_EQ(mode, CostModelMode::kCalibrated);
  ASSERT_TRUE(ParseCostModelMode("unit", &mode));
  EXPECT_EQ(mode, CostModelMode::kUnit);
  EXPECT_FALSE(ParseCostModelMode("bogus", &mode));
  EXPECT_STREQ(CostModelModeName(CostModelMode::kMeasured), "measured");
  EXPECT_STREQ(CostModelModeName(CostModelMode::kCalibrated), "calibrated");
  EXPECT_STREQ(CostModelModeName(CostModelMode::kUnit), "unit");
}

// --- MetricSeries::Percentile edge ranks ------------------------------------

TEST(MetricSeries, PercentileOfSingleSampleIsThatSample) {
  MetricSeries series;
  series.Add(42.0);
  EXPECT_EQ(series.Percentile(0), 42.0);
  EXPECT_EQ(series.Percentile(50), 42.0);
  EXPECT_EQ(series.Percentile(100), 42.0);
}

TEST(MetricSeries, PercentileNearestRankEdges) {
  MetricSeries series;
  // Unsorted on purpose; Percentile sorts internally.
  series.Add(3.0);
  series.Add(1.0);
  series.Add(4.0);
  series.Add(2.0);
  EXPECT_EQ(series.Percentile(0), 1.0);    // rank clamps up to 1
  EXPECT_EQ(series.Percentile(25), 1.0);   // ceil(0.25 * 4) = 1
  EXPECT_EQ(series.Percentile(50), 2.0);   // ceil(0.50 * 4) = 2
  EXPECT_EQ(series.Percentile(75), 3.0);
  EXPECT_EQ(series.Percentile(100), 4.0);  // maximum
  EXPECT_EQ(series.Percentile(51), 3.0);   // ceil(0.51 * 4) = 3
}

TEST(MetricSeries, PercentileOfEmptySeriesIsZero) {
  MetricSeries series;
  EXPECT_EQ(series.Percentile(0), 0.0);
  EXPECT_EQ(series.Percentile(100), 0.0);
}

// --- counted-charging determinism -------------------------------------------

std::vector<Variant> AllSixVariants() {
  std::vector<Variant> variants(kAllVariants, kAllVariants + 5);
  variants.push_back(Variant::kPipeline);
  return variants;
}

/// Full content signature of a result list: (id, f, coords) per entry.
std::vector<std::vector<double>> Signature(const ResultList& list) {
  std::vector<std::vector<double>> rows;
  rows.reserve(list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    std::vector<double> row;
    row.push_back(static_cast<double>(list.points.id(i)));
    row.push_back(list.f[i]);
    for (int d = 0; d < list.points.dims(); ++d) {
      row.push_back(list.points[i][d]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void ExpectOpsEqual(const OpCounts& a, const OpCounts& b,
                    const std::string& context) {
  EXPECT_EQ(a.dominance_tests, b.dominance_tests) << context;
  EXPECT_EQ(a.rtree_node_visits, b.rtree_node_visits) << context;
  EXPECT_EQ(a.scan_steps, b.scan_steps) << context;
  EXPECT_EQ(a.merge_pulls, b.merge_pulls) << context;
  EXPECT_EQ(a.sort_steps, b.sort_steps) << context;
  EXPECT_EQ(a.bytes_serialized, b.bytes_serialized) << context;
}

/// Bit-exact comparison of every QueryMetrics field; the time metrics use
/// EXPECT_EQ on the doubles deliberately — counted charging promises bit
/// identity, not approximate equality.
void ExpectMetricsBitIdentical(const QueryMetrics& a, const QueryMetrics& b,
                               const std::string& context) {
  EXPECT_EQ(a.computational_time_s, b.computational_time_s) << context;
  EXPECT_EQ(a.total_time_s, b.total_time_s) << context;
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << context;
  EXPECT_EQ(a.messages, b.messages) << context;
  EXPECT_EQ(a.result_size, b.result_size) << context;
  EXPECT_EQ(a.store_points_scanned, b.store_points_scanned) << context;
  EXPECT_EQ(a.local_result_points, b.local_result_points) << context;
  EXPECT_EQ(a.super_peers_participated, b.super_peers_participated) << context;
  EXPECT_EQ(a.partial, b.partial) << context;
  EXPECT_EQ(a.super_peers_reached, b.super_peers_reached) << context;
  EXPECT_EQ(a.retransmits, b.retransmits) << context;
  EXPECT_EQ(a.covered, b.covered) << context;
  ExpectOpsEqual(a.ops, b.ops, context);
}

struct RunRecord {
  std::vector<std::vector<double>> skyline;
  QueryMetrics metrics;
};

NetworkConfig CountedConfig() {
  NetworkConfig config;
  config.num_peers = 40;
  config.num_super_peers = 8;
  config.points_per_peer = 30;
  config.dims = 4;
  config.seed = 7;
  // measure_cpu stays on: calibrated charging must be deterministic even
  // though the host clock is running.
  config.cost_model = CostModel::Calibrated();
  return config;
}

std::vector<QueryTask> CountedTasks(const NetworkConfig& config) {
  return GenerateWorkload(config.dims, 2, 5, config.num_super_peers, 42);
}

/// Builds, preprocesses and queries one network; returns per-(variant,
/// task) records plus the preprocessing stats.
std::vector<RunRecord> RunAllVariants(const NetworkConfig& config,
                                      const std::vector<QueryTask>& tasks,
                                      PreprocessStats* stats_out = nullptr) {
  SkypeerNetwork network(config);
  const PreprocessStats stats = network.Preprocess();
  if (stats_out != nullptr) {
    *stats_out = stats;
  }
  std::vector<RunRecord> records;
  for (Variant variant : AllSixVariants()) {
    for (const QueryTask& task : tasks) {
      const QueryResult result =
          network.ExecuteQuery(task.subspace, task.initiator_sp, variant);
      records.push_back({Signature(result.skyline), result.metrics});
    }
  }
  return records;
}

void ExpectRunsBitIdentical(const std::vector<RunRecord>& a,
                            const std::vector<RunRecord>& b,
                            const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  const std::vector<Variant> variants = AllSixVariants();
  const size_t per_variant = a.size() / variants.size();
  for (size_t i = 0; i < a.size(); ++i) {
    const std::string context = label + " " +
                                VariantName(variants[i / per_variant]) +
                                " task " + std::to_string(i % per_variant);
    EXPECT_EQ(a[i].skyline, b[i].skyline) << context;
    ExpectMetricsBitIdentical(a[i].metrics, b[i].metrics, context);
  }
}

TEST(CountedDeterminism, RepeatedRunsAreBitIdentical) {
  const NetworkConfig config = CountedConfig();
  const std::vector<QueryTask> tasks = CountedTasks(config);
  ThreadPool::SetGlobalConcurrency(1);
  const std::vector<RunRecord> first = RunAllVariants(config, tasks);
  const std::vector<RunRecord> second = RunAllVariants(config, tasks);
  ExpectRunsBitIdentical(first, second, "repeat");
}

TEST(CountedDeterminism, TimesAreThreadCountInvariant) {
  NetworkConfig config = CountedConfig();
  // Chunked scans exercise the parallel path whose measured-mode charge
  // used to depend on pool contention.
  config.scan_chunk_size = 16;
  const std::vector<QueryTask> tasks = CountedTasks(config);

  ThreadPool::SetGlobalConcurrency(1);
  PreprocessStats stats1;
  const std::vector<RunRecord> reference =
      RunAllVariants(config, tasks, &stats1);

  for (int threads : {2, 8}) {
    ThreadPool::SetGlobalConcurrency(threads);
    PreprocessStats stats;
    const std::vector<RunRecord> run = RunAllVariants(config, tasks, &stats);
    ExpectRunsBitIdentical(reference, run,
                           "threads=" + std::to_string(threads));
    // Preprocessing CPU charges are counted too.
    EXPECT_EQ(stats.peer_cpu_s, stats1.peer_cpu_s) << threads;
    EXPECT_EQ(stats.super_peer_cpu_s, stats1.super_peer_cpu_s) << threads;
    ExpectOpsEqual(stats.peer_ops, stats1.peer_ops, "peer ops");
    ExpectOpsEqual(stats.super_peer_ops, stats1.super_peer_ops, "sp ops");
  }
  ThreadPool::SetGlobalConcurrency(1);
}

TEST(CountedDeterminism, TimesAreKernelDispatchInvariant) {
  const NetworkConfig config = CountedConfig();
  const std::vector<QueryTask> tasks = CountedTasks(config);
  ThreadPool::SetGlobalConcurrency(1);

  SetForceScalarKernels(false);
  const std::vector<RunRecord> simd = RunAllVariants(config, tasks);
  SetForceScalarKernels(true);
  const std::vector<RunRecord> scalar = RunAllVariants(config, tasks);
  SetForceScalarKernels(false);
  ExpectRunsBitIdentical(simd, scalar, "scalar-vs-simd");
}

TEST(CountedDeterminism, FeatureCompositionsAreDeterministic) {
  struct Composition {
    const char* name;
    void (*apply)(NetworkConfig*);
  };
  const Composition compositions[] = {
      {"speculative-rt",
       [](NetworkConfig* c) { c->speculative_rt = true; }},
      {"cache", [](NetworkConfig* c) { c->enable_cache = true; }},
      {"chunked+speculative",
       [](NetworkConfig* c) {
         c->scan_chunk_size = 16;
         c->speculative_rt = true;
       }},
      {"faulted",
       [](NetworkConfig* c) {
         c->reliable = true;
         c->drop_prob = 0.05;
         c->fault_seed = 99;
       }},
  };
  for (const Composition& composition : compositions) {
    NetworkConfig config = CountedConfig();
    composition.apply(&config);
    const std::vector<QueryTask> tasks = CountedTasks(config);

    ThreadPool::SetGlobalConcurrency(1);
    const std::vector<RunRecord> first = RunAllVariants(config, tasks);
    const std::vector<RunRecord> second = RunAllVariants(config, tasks);
    ExpectRunsBitIdentical(first, second,
                           std::string(composition.name) + " repeat");

    ThreadPool::SetGlobalConcurrency(4);
    const std::vector<RunRecord> threaded = RunAllVariants(config, tasks);
    ThreadPool::SetGlobalConcurrency(1);
    ExpectRunsBitIdentical(first, threaded,
                           std::string(composition.name) + " threads=4");
  }
}

TEST(CountedDeterminism, UnitModeExposesOpCountsAsSeconds) {
  NetworkConfig config = CountedConfig();
  config.cost_model = CostModel::Unit();
  const std::vector<QueryTask> tasks = CountedTasks(config);
  ThreadPool::SetGlobalConcurrency(1);

  SkypeerNetwork network(config);
  network.Preprocess();
  const QueryResult result = network.ExecuteQuery(
      tasks[0].subspace, tasks[0].initiator_sp, Variant::kRTPM);
  // Under the unit model every counted op charges one virtual second, so
  // the computational time — the critical path of CPU charges through
  // the reply tree — is a whole number of seconds, positive, and at most
  // the network-wide op total (the critical path cannot exceed the sum
  // of all nodes' work).
  EXPECT_GT(result.metrics.ops.total(), 0u);
  EXPECT_GT(result.metrics.computational_time_s, 0.0);
  EXPECT_EQ(result.metrics.computational_time_s,
            std::floor(result.metrics.computational_time_s));
  EXPECT_LE(result.metrics.computational_time_s,
            static_cast<double>(result.metrics.ops.total()));
}

// --- measured-mode charging (satellite fix) ---------------------------------

// The pre-fix bug: chunked parallel scans charged the initiator's wall
// clock — including thread-pool queueing — so running with many threads
// inflated `computational_time_s` with contention noise. Post-fix the
// charge is the sum of per-chunk self-measured work times, which is
// bounded by the actual work regardless of the thread count. Queries run
// one at a time (only the scan chunks parallelize) and the bounds are
// generous two-sided ratios with an additive floor, so the test stays
// robust on loaded CI hosts while still catching the order-of-magnitude
// drift the bug produced.
TEST(MeasuredCharging, ChunkedScanChargeExcludesPoolContention) {
  NetworkConfig config;
  config.num_peers = 32;
  config.num_super_peers = 4;
  config.points_per_peer = 600;
  config.dims = 8;
  config.seed = 3;
  config.scan_chunk_size = 64;
  ASSERT_FALSE(config.cost_model.counted());  // measured is the default

  const std::vector<QueryTask> tasks =
      GenerateWorkload(config.dims, 3, 6, config.num_super_peers, 11);

  auto charge_sum = [&](SkypeerNetwork* network) {
    double sum = 0.0;
    for (const QueryTask& task : tasks) {
      const QueryResult result =
          network->ExecuteQuery(task.subspace, task.initiator_sp,
                                Variant::kRTPM);
      sum += result.metrics.computational_time_s;
    }
    return sum;
  };

  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork sequential(config);
  sequential.Preprocess();
  const double t1 = charge_sum(&sequential);

  ThreadPool::SetGlobalConcurrency(8);
  SkypeerNetwork parallel(config);
  parallel.Preprocess();
  const double t8 = charge_sum(&parallel);
  ThreadPool::SetGlobalConcurrency(1);

  ASSERT_GT(t1, 0.0);
  const double slack = 0.02;  // absolute floor for tiny workloads
  EXPECT_LT(t8, t1 * 5.0 + slack)
      << "threads=8 charge inflated over threads=1: " << t8 << " vs " << t1;
  EXPECT_GT(t8 + slack, t1 * 0.2)
      << "threads=8 charge implausibly small: " << t8 << " vs " << t1;
}

}  // namespace
}  // namespace skypeer
