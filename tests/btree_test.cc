// Unit and property tests of the B+-tree substrate: structural
// invariants under churn, cursor semantics with duplicate keys, and
// differential testing against a sorted reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "skypeer/btree/bplus_tree.h"
#include "skypeer/common/rng.h"

namespace skypeer {
namespace {

TEST(BPlusTree, EmptyTree) {
  BPlusTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.LowerBound(0.0).Valid());
  EXPECT_FALSE(tree.Contains(1.0, 1));
  EXPECT_FALSE(tree.Erase(1.0, 1));
  tree.CheckInvariants();
}

TEST(BPlusTree, SingleEntry) {
  BPlusTree tree;
  tree.Insert(0.5, 42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Contains(0.5, 42));
  EXPECT_FALSE(tree.Contains(0.5, 43));
  EXPECT_FALSE(tree.Contains(0.4, 42));
  BPlusTree::Cursor cursor = tree.Begin();
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), 0.5);
  EXPECT_EQ(cursor.payload(), 42u);
  cursor.Next();
  EXPECT_FALSE(cursor.Valid());
}

TEST(BPlusTree, OrderedIteration) {
  BPlusTree tree(4);
  Rng rng(1);
  std::vector<double> keys;
  for (int i = 0; i < 500; ++i) {
    const double key = rng.Uniform();
    keys.push_back(key);
    tree.Insert(key, i);
  }
  tree.CheckInvariants();
  std::sort(keys.begin(), keys.end());
  size_t index = 0;
  for (BPlusTree::Cursor cursor = tree.Begin(); cursor.Valid();
       cursor.Next()) {
    ASSERT_LT(index, keys.size());
    EXPECT_EQ(cursor.key(), keys[index]);
    ++index;
  }
  EXPECT_EQ(index, keys.size());
}

TEST(BPlusTree, DuplicateKeysAllKept) {
  BPlusTree tree(4);
  for (uint64_t p = 0; p < 50; ++p) {
    tree.Insert(1.0, p);
    tree.Insert(2.0, p);
  }
  EXPECT_EQ(tree.size(), 100u);
  tree.CheckInvariants();
  size_t ones = 0;
  for (BPlusTree::Cursor cursor = tree.LowerBound(1.0);
       cursor.Valid() && cursor.key() == 1.0; cursor.Next()) {
    ++ones;
  }
  EXPECT_EQ(ones, 50u);
  for (uint64_t p = 0; p < 50; ++p) {
    EXPECT_TRUE(tree.Contains(1.0, p));
    EXPECT_TRUE(tree.Contains(2.0, p));
  }
  // Erase each duplicate individually.
  for (uint64_t p = 0; p < 50; ++p) {
    EXPECT_TRUE(tree.Erase(1.0, p));
    EXPECT_FALSE(tree.Contains(1.0, p));
    tree.CheckInvariants();
  }
  EXPECT_EQ(tree.size(), 50u);
}

TEST(BPlusTree, LowerBoundSemantics) {
  BPlusTree tree(4);
  for (double key : {0.1, 0.2, 0.2, 0.3, 0.7}) {
    tree.Insert(key, static_cast<uint64_t>(key * 100));
  }
  EXPECT_EQ(tree.LowerBound(0.0).key(), 0.1);
  EXPECT_EQ(tree.LowerBound(0.15).key(), 0.2);
  EXPECT_EQ(tree.LowerBound(0.2).key(), 0.2);
  EXPECT_EQ(tree.LowerBound(0.31).key(), 0.7);
  EXPECT_FALSE(tree.LowerBound(0.71).Valid());
}

TEST(BPlusTree, RangeQuery) {
  BPlusTree tree(4);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(i / 100.0, i);
  }
  std::vector<uint64_t> payloads;
  tree.RangeQuery(0.25, 0.50, &payloads);
  ASSERT_EQ(payloads.size(), 26u);  // Keys 0.25 .. 0.50 inclusive.
  EXPECT_EQ(payloads.front(), 25u);
  EXPECT_EQ(payloads.back(), 50u);
}

TEST(BPlusTree, ClearResets) {
  BPlusTree tree(4);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(i * 0.01, i);
  }
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1);
  tree.CheckInvariants();
  tree.Insert(1.0, 1);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTree, MoveConstruction) {
  BPlusTree tree(4);
  tree.Insert(0.5, 9);
  BPlusTree moved(std::move(tree));
  EXPECT_TRUE(moved.Contains(0.5, 9));
  EXPECT_EQ(moved.size(), 1u);
}

TEST(BPlusTree, GrowsLogarithmically) {
  BPlusTree tree(8);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    tree.Insert(rng.Uniform(), i);
  }
  tree.CheckInvariants();
  EXPECT_GE(tree.height(), 4);
  EXPECT_LE(tree.height(), 8);
}

class BPlusTreeChurnTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {
 protected:
  int max_keys() const { return std::get<0>(GetParam()); }
  int operations() const { return std::get<1>(GetParam()); }
  bool discrete() const { return std::get<2>(GetParam()); }
};

TEST_P(BPlusTreeChurnTest, MatchesReferenceMultimap) {
  BPlusTree tree(max_keys());
  std::multimap<double, uint64_t> reference;
  Rng rng(3000 + max_keys() + operations());
  uint64_t next_payload = 0;
  std::vector<std::pair<double, uint64_t>> live;

  for (int op = 0; op < operations(); ++op) {
    const double action = rng.Uniform();
    if (action < 0.6 || live.empty()) {
      const double key =
          discrete() ? rng.UniformInt(0, 9) / 10.0 : rng.Uniform();
      tree.Insert(key, next_payload);
      reference.emplace(key, next_payload);
      live.push_back({key, next_payload});
      ++next_payload;
    } else {
      const size_t victim = rng.UniformInt(0, live.size() - 1);
      const auto [key, payload] = live[victim];
      EXPECT_TRUE(tree.Erase(key, payload));
      for (auto it = reference.lower_bound(key); it != reference.end();
           ++it) {
        if (it->second == payload) {
          reference.erase(it);
          break;
        }
      }
      live.erase(live.begin() + victim);
    }
    EXPECT_EQ(tree.size(), reference.size());
    if (op % 64 == 0) {
      tree.CheckInvariants();
      // Full ordered scan agrees with the reference.
      auto it = reference.begin();
      for (BPlusTree::Cursor cursor = tree.Begin(); cursor.Valid();
           cursor.Next(), ++it) {
        ASSERT_TRUE(it != reference.end());
        EXPECT_EQ(cursor.key(), it->first);
      }
      EXPECT_TRUE(it == reference.end());
    }
  }
  tree.CheckInvariants();

  // Drain completely.
  for (const auto& [key, payload] : live) {
    EXPECT_TRUE(tree.Erase(key, payload));
  }
  EXPECT_TRUE(tree.empty());
  tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BPlusTreeChurnTest,
    ::testing::Combine(::testing::Values(4, 6, 32),
                       ::testing::Values(300, 2000),
                       ::testing::Bool()),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_ops" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_discrete" : "_cont");
    });

}  // namespace
}  // namespace skypeer
