// Tests of the constrained subspace skyline operator.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/constrained.h"
#include "skypeer/common/dominance.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(Constraint, Validation) {
  RangeConstraint constraint;
  constraint.dims = Subspace::FromDims({0, 2});
  constraint.lo = {0.1, 0.2};
  constraint.hi = {0.5, 0.8};
  EXPECT_TRUE(ValidateConstraint(constraint).ok());

  constraint.lo = {0.1};
  EXPECT_FALSE(ValidateConstraint(constraint).ok());

  constraint.lo = {0.6, 0.2};
  EXPECT_FALSE(ValidateConstraint(constraint).ok());  // lo > hi on dim 0.

  EXPECT_TRUE(ValidateConstraint(RangeConstraint::None()).ok());
}

TEST(Constraint, MatchesIsClosedRange) {
  RangeConstraint constraint;
  constraint.dims = Subspace::FromDims({1});
  constraint.lo = {0.25};
  constraint.hi = {0.75};
  const double inside[] = {0.0, 0.5};
  const double at_lo[] = {0.0, 0.25};
  const double at_hi[] = {0.0, 0.75};
  const double below[] = {0.0, 0.2};
  const double above[] = {0.0, 0.8};
  EXPECT_TRUE(constraint.Matches(inside));
  EXPECT_TRUE(constraint.Matches(at_lo));
  EXPECT_TRUE(constraint.Matches(at_hi));
  EXPECT_FALSE(constraint.Matches(below));
  EXPECT_FALSE(constraint.Matches(above));
}

TEST(ConstrainedSkyline, UnconstrainedEqualsPlainSkyline) {
  Rng rng(1);
  PointSet data = GenerateUniform(4, 300, &rng);
  const Subspace u = Subspace::FromDims({0, 3});
  EXPECT_EQ(
      SortedIds(ConstrainedSkyline(data, u, RangeConstraint::None())),
      SortedIds(BnlSkyline(data, u)));
}

TEST(ConstrainedSkyline, MatchesBruteForce) {
  Rng rng(2);
  PointSet data = GenerateUniform(3, 400, &rng);
  RangeConstraint constraint;
  constraint.dims = Subspace::FromDims({0, 1});
  constraint.lo = {0.3, 0.0};
  constraint.hi = {0.9, 0.6};
  const Subspace u = Subspace::FullSpace(3);

  // Brute force: filter then quadratic skyline.
  std::vector<PointId> expected;
  for (size_t i = 0; i < data.size(); ++i) {
    if (!constraint.Matches(data[i])) {
      continue;
    }
    bool dominated = false;
    for (size_t j = 0; j < data.size() && !dominated; ++j) {
      dominated = i != j && constraint.Matches(data[j]) &&
                  Dominates(data[j], data[i], u);
    }
    if (!dominated) {
      expected.push_back(data.id(i));
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(SortedIds(ConstrainedSkyline(data, u, constraint)), expected);
  EXPECT_FALSE(expected.empty());
}

TEST(ConstrainedSkyline, ExcludedDominatorResurrectsPoints) {
  // (0.1, 0.1) dominates (0.5, 0.5); constraining coordinates to
  // [0.4, 1.0] excludes the dominator and (0.5, 0.5) becomes skyline.
  PointSet data(2, {{0.1, 0.1}, {0.5, 0.5}, {0.6, 0.9}});
  RangeConstraint constraint;
  constraint.dims = Subspace::FullSpace(2);
  constraint.lo = {0.4, 0.4};
  constraint.hi = {1.0, 1.0};
  const auto result =
      SortedIds(ConstrainedSkyline(data, Subspace::FullSpace(2), constraint));
  EXPECT_EQ(result, (std::vector<PointId>{1}));
}

TEST(ConstrainedSkyline, EmptyRegionYieldsEmptyResult) {
  Rng rng(3);
  PointSet data = GenerateUniform(2, 100, &rng);
  RangeConstraint constraint;
  constraint.dims = Subspace::FromDims({0});
  constraint.lo = {2.0};  // Outside the unit box.
  constraint.hi = {3.0};
  EXPECT_TRUE(
      ConstrainedSkyline(data, Subspace::FullSpace(2), constraint).empty());
}

TEST(ConstrainedSkyline, ConstraintOnNonQueriedDimension) {
  // Constrain dim 2, query dims {0, 1}: the constraint selects the
  // participants, the skyline is computed on the queried dims only.
  PointSet data(3, {{0.1, 0.1, 0.9},    // Best on {0,1} but excluded.
                    {0.2, 0.2, 0.1},    // Eligible, skyline.
                    {0.3, 0.3, 0.2}});  // Eligible, dominated by #1.
  RangeConstraint constraint;
  constraint.dims = Subspace::FromDims({2});
  constraint.lo = {0.0};
  constraint.hi = {0.5};
  const auto result = SortedIds(
      ConstrainedSkyline(data, Subspace::FromDims({0, 1}), constraint));
  EXPECT_EQ(result, (std::vector<PointId>{1}));
}

}  // namespace
}  // namespace skypeer
