// Tests for the centralized skyline substrate: cross-algorithm
// equivalence (BNL = SFS = D&C = SortedSkyline) over a parameterized
// sweep, SkylineAccumulator semantics, Algorithm 2 merging, and the
// f-sorted list builder.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/divide_conquer.h"
#include "skypeer/algo/merge.h"
#include "skypeer/algo/result_list.h"
#include "skypeer/algo/sfs.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/dominance.h"
#include "skypeer/common/rng.h"
#include "skypeer/common/thread_pool.h"
#include "skypeer/data/generator.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

PointSet MakeData(Distribution distribution, int dims, size_t n,
                  uint64_t seed) {
  Rng rng(seed);
  switch (distribution) {
    case Distribution::kUniform:
      return GenerateUniform(dims, n, &rng);
    case Distribution::kClustered:
      return GenerateClustered(RandomCentroid(dims, &rng), n, kClusterStdDev,
                               &rng);
    case Distribution::kCorrelated:
      return GenerateCorrelated(dims, n, &rng);
    case Distribution::kAnticorrelated:
      return GenerateAnticorrelated(dims, n, &rng);
  }
  return PointSet(dims);
}

// Reference skyline: quadratic double loop, no cleverness at all.
std::vector<PointId> ReferenceSkyline(const PointSet& points, Subspace u,
                                      bool ext) {
  std::vector<PointId> result;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i == j) {
        continue;
      }
      dominated = ext ? ExtDominates(points[j], points[i], u)
                      : Dominates(points[j], points[i], u);
    }
    if (!dominated) {
      result.push_back(points.id(i));
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

// --- fixed, hand-checked instances -------------------------------------

TEST(Bnl, PaperFigure2PeerA) {
  // Peer P_A from the paper's Figure 2: A1..A5, dimensionality 4.
  // Skyline = {A1, A2, A4, A5}; ext-skyline additionally contains A3.
  PointSet data(4, {{2, 2, 2, 2},    // A1 (id 0)
                    {1, 3, 2, 3},    // A2 (id 1)
                    {1, 3, 5, 4},    // A3 (id 2)
                    {2, 3, 2, 1},    // A4 (id 3)
                    {5, 2, 4, 1}});  // A5 (id 4)
  Subspace full = Subspace::FullSpace(4);
  EXPECT_EQ(SortedIds(BnlSkyline(data, full)),
            (std::vector<PointId>{0, 1, 3, 4}));
  EXPECT_EQ(SortedIds(BnlSkyline(data, full, /*ext=*/true)),
            (std::vector<PointId>{0, 1, 2, 3, 4}));
}

TEST(Bnl, PaperFigure2PeerC) {
  // Peer P_C: skyline {C4}; ext-skyline {C4, C5} per the paper's text.
  PointSet data(4, {{5, 7, 6, 8},    // C1 (id 0)
                    {7, 5, 8, 5},    // C2 (id 1)
                    {6, 5, 5, 6},    // C3 (id 2)
                    {1, 1, 3, 4},    // C4 (id 3)
                    {6, 6, 6, 4}});  // C5 (id 4)
  Subspace full = Subspace::FullSpace(4);
  EXPECT_EQ(SortedIds(BnlSkyline(data, full)), (std::vector<PointId>{3}));
  EXPECT_EQ(SortedIds(BnlSkyline(data, full, /*ext=*/true)),
            (std::vector<PointId>{3, 4}));
}

TEST(Bnl, AllEqualPointsAreAllSkyline) {
  PointSet data(2, {{1, 1}, {1, 1}, {1, 1}});
  EXPECT_EQ(BnlSkyline(data, Subspace::FullSpace(2)).size(), 3u);
  EXPECT_EQ(BnlSkyline(data, Subspace::FullSpace(2), true).size(), 3u);
}

TEST(Bnl, SingleDimension) {
  PointSet data(3, {{5, 0, 0}, {3, 9, 9}, {3, 1, 1}, {4, 0, 0}});
  // On dim 0 only: minimum value 3 appears twice; both are skyline.
  EXPECT_EQ(SortedIds(BnlSkyline(data, Subspace::FromDims({0}))),
            (std::vector<PointId>{1, 2}));
}

TEST(Bnl, EmptyInput) {
  PointSet data(2);
  EXPECT_TRUE(BnlSkyline(data, Subspace::FullSpace(2)).empty());
}

TEST(SortedSkyline, StatsReportScanAndThreshold) {
  // Points sorted by f: the scan must stop early.
  PointSet data(2, {{0.1, 0.1},    // f=0.1, dist=0.1 -> threshold 0.1
                    {0.2, 0.05},   // f=0.05 ... appears first after sort
                    {0.5, 0.6},    // f=0.5 > 0.1: never scanned
                    {0.9, 0.8}});  // f=0.8: never scanned
  ResultList sorted = BuildSortedByF(data);
  ThresholdScanStats stats;
  ResultList result =
      SortedSkyline(sorted, Subspace::FullSpace(2), {}, &stats);
  EXPECT_EQ(stats.scanned, 2u);
  EXPECT_EQ(stats.final_threshold, 0.1);
  EXPECT_EQ(SortedIds(result.points), (std::vector<PointId>{0, 1}));
}

TEST(SortedSkyline, InitialThresholdPrunesEverything) {
  PointSet data(2, {{0.5, 0.5}, {0.6, 0.7}});
  ResultList sorted = BuildSortedByF(data);
  ThresholdScanOptions options;
  options.initial_threshold = 0.2;  // Smaller than every f.
  ThresholdScanStats stats;
  ResultList result =
      SortedSkyline(sorted, Subspace::FullSpace(2), options, &stats);
  EXPECT_TRUE(result.empty());
  EXPECT_EQ(stats.scanned, 0u);
}

TEST(SortedSkyline, TieWithThresholdIsNotLost) {
  // q ties p on every queried dimension and has f == dist_U(p): a scan
  // with a strict `<` stop condition would drop it. Exactness requires
  // both in the skyline.
  PointSet data(2, {{0.3, 0.3}, {0.3, 0.3}});
  ResultList sorted = BuildSortedByF(data);
  ResultList result = SortedSkyline(sorted, Subspace::FullSpace(2));
  EXPECT_EQ(result.size(), 2u);
}

TEST(BuildSortedByF, SortsAndComputesF) {
  PointSet data(3, {{0.9, 0.5, 0.7}, {0.2, 0.8, 0.4}, {0.6, 0.1, 0.9}});
  ResultList sorted = BuildSortedByF(data);
  ASSERT_TRUE(sorted.IsSorted());
  EXPECT_EQ(sorted.f, (std::vector<double>{0.1, 0.2, 0.5}));
  EXPECT_EQ(sorted.points.id(0), 2u);
  EXPECT_EQ(sorted.points.id(1), 1u);
  EXPECT_EQ(sorted.points.id(2), 0u);
}

TEST(ResultList, IsSortedDetectsViolations) {
  ResultList list(2);
  PointSet data(2, {{0.5, 0.5}, {0.1, 0.9}});
  list.points.AppendAll(data);
  list.f = {0.5, 0.1};
  EXPECT_FALSE(list.IsSorted());
  list.f = {0.1, 0.5};
  EXPECT_TRUE(list.IsSorted());
  list.f = {0.1};
  EXPECT_FALSE(list.IsSorted());  // Not parallel.
}

// --- SkylineAccumulator -------------------------------------------------

TEST(SkylineAccumulator, EvictsDominatedEarlierPoints) {
  // Earlier point with smaller f can still be dominated by a later point.
  ThresholdScanOptions options;
  SkylineAccumulator acc(2, Subspace::FullSpace(2), options);
  const double a[] = {0.1, 0.9};  // f = 0.1
  const double b[] = {0.2, 0.3};  // f = 0.2, incomparable to a
  const double c[] = {0.2, 0.25};  // dominates b (later f? 0.2 == 0.2)
  EXPECT_TRUE(acc.Offer(a, 1, 0.1));
  EXPECT_TRUE(acc.Offer(b, 2, 0.2));
  EXPECT_TRUE(acc.Offer(c, 3, 0.2));
  EXPECT_EQ(acc.alive(), 2u);
  ResultList result = acc.TakeResult();
  EXPECT_EQ(SortedIds(result.points), (std::vector<PointId>{1, 3}));
}

TEST(SkylineAccumulator, ThresholdMonotonicallyDecreases) {
  ThresholdScanOptions options;
  SkylineAccumulator acc(2, Subspace::FullSpace(2), options);
  Rng rng(5);
  double last = acc.threshold();
  for (int i = 0; i < 100; ++i) {
    double p[2] = {rng.Uniform(), rng.Uniform()};
    acc.Offer(p, i, std::min(p[0], p[1]));
    EXPECT_LE(acc.threshold(), last);
    last = acc.threshold();
  }
}

TEST(SkylineAccumulator, LinearAndRTreeAgree) {
  for (int dims : {2, 3, 5}) {
    PointSet data = MakeData(Distribution::kUniform, dims, 500, 11 * dims);
    ResultList sorted = BuildSortedByF(data);
    Subspace u = Subspace::FullSpace(dims);
    ThresholdScanOptions with_tree;
    with_tree.use_rtree = true;
    ThresholdScanOptions without_tree;
    without_tree.use_rtree = false;
    EXPECT_EQ(SortedIds(SortedSkyline(sorted, u, with_tree).points),
              SortedIds(SortedSkyline(sorted, u, without_tree).points));
  }
}

TEST(SkylineAccumulator, TakeResultResetsState) {
  ThresholdScanOptions options;
  SkylineAccumulator acc(2, Subspace::FullSpace(2), options);
  const double a[] = {0.5, 0.5};
  acc.Offer(a, 1, 0.5);
  ResultList first = acc.TakeResult();
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(acc.alive(), 0u);
  // Note: threshold keeps its tightened value by design; a fresh
  // accumulator is needed for an independent scan.
  ResultList second = acc.TakeResult();
  EXPECT_TRUE(second.empty());
}

// --- Algorithm 2 (merge) ------------------------------------------------

TEST(Merge, TwoListsBasic) {
  PointSet a(2, {{0.1, 0.9}, {0.8, 0.8}});
  PointSet b(2, {{0.9, 0.1}, {0.85, 0.84}});
  // Give b distinct ids.
  PointSet b_ids(2);
  b_ids.Append(b[0], 10);
  b_ids.Append(b[1], 11);
  std::vector<ResultList> lists;
  lists.push_back(BuildSortedByF(a));
  lists.push_back(BuildSortedByF(b_ids));
  ResultList merged = MergeSortedSkylines(lists, Subspace::FullSpace(2));
  // {0.1,0.9} and {0.9,0.1} are incomparable; {0.8,0.8} dominates
  // {0.85,0.84}; nothing dominates {0.8,0.8}.
  EXPECT_EQ(SortedIds(merged.points), (std::vector<PointId>{0, 1, 10}));
  EXPECT_TRUE(merged.IsSorted());
}

TEST(Merge, EquivalentToConcatenatedScan) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const int dims = 3 + trial % 3;
    std::vector<ResultList> lists;
    PointSet all(dims);
    PointId next_id = 0;
    const int num_lists = 1 + trial % 5;
    for (int l = 0; l < num_lists; ++l) {
      PointSet data =
          GenerateUniform(dims, 50 + 20 * l, &rng, next_id);
      next_id += data.size();
      all.AppendAll(data);
      // Lists must themselves be skylines? No — Algorithm 2 only needs
      // f-sorted lists; feed raw sorted data to stress it.
      lists.push_back(BuildSortedByF(data));
    }
    for (Subspace u :
         {Subspace::FullSpace(dims), Subspace::FromDims({0, 1})}) {
      ResultList merged = MergeSortedSkylines(lists, u);
      EXPECT_EQ(SortedIds(merged.points), ReferenceSkyline(all, u, false))
          << "trial " << trial << " u=" << u.ToString();
    }
  }
}

TEST(Merge, ExtMergeMatchesReference) {
  Rng rng(23);
  const int dims = 4;
  std::vector<ResultList> lists;
  PointSet all(dims);
  for (int l = 0; l < 4; ++l) {
    PointSet data = GenerateUniform(dims, 80, &rng, l * 1000);
    all.AppendAll(data);
    lists.push_back(BuildSortedByF(data));
  }
  ThresholdScanOptions options;
  options.ext = true;
  ResultList merged =
      MergeSortedSkylines(lists, Subspace::FullSpace(dims), options);
  EXPECT_EQ(SortedIds(merged.points),
            ReferenceSkyline(all, Subspace::FullSpace(dims), true));
}

TEST(Merge, SingleListEqualsSortedSkyline) {
  PointSet data = MakeData(Distribution::kUniform, 4, 200, 31);
  std::vector<ResultList> lists;
  lists.push_back(BuildSortedByF(data));
  Subspace u = Subspace::FromDims({1, 3});
  EXPECT_EQ(SortedIds(MergeSortedSkylines(lists, u).points),
            SortedIds(SortedSkyline(lists[0], u).points));
}

TEST(Merge, EmptyListsYieldEmptyResult) {
  std::vector<ResultList> lists;
  lists.emplace_back(3);
  lists.emplace_back(3);
  ResultList merged = MergeSortedSkylines(lists, Subspace::FullSpace(3));
  EXPECT_TRUE(merged.empty());
}

TEST(Merge, ZeroListsWithExplicitDimsYieldEmptyResult) {
  // A super-peer drained of every peer merges zero lists; there is no
  // dims source among the inputs, so the explicit-dims overload must
  // return an empty result instead of aborting.
  ThresholdScanOptions options;
  options.initial_threshold = 0.75;
  ThresholdScanStats stats;
  const ResultList merged = MergeSortedSkylines(
      3, std::vector<const ResultList*>{}, Subspace::FullSpace(3), options,
      &stats);
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(merged.points.dims(), 3);
  EXPECT_EQ(stats.scanned, 0u);
  EXPECT_EQ(stats.final_threshold, 0.75);

  const ResultList ext_merged = MergeSortedSkylines(
      2, std::vector<ResultList>{}, Subspace::FullSpace(2),
      ThresholdScanOptions{.ext = true});
  EXPECT_TRUE(ext_merged.empty());
  EXPECT_EQ(ext_merged.points.dims(), 2);
}

TEST(Merge, InitialThresholdPrunes) {
  PointSet data(2, {{0.5, 0.5}, {0.7, 0.8}});
  std::vector<ResultList> lists;
  lists.push_back(BuildSortedByF(data));
  ThresholdScanOptions options;
  options.initial_threshold = 0.1;
  ThresholdScanStats stats;
  ResultList merged =
      MergeSortedSkylines(lists, Subspace::FullSpace(2), options, &stats);
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(stats.scanned, 0u);
}

// --- window compaction --------------------------------------------------

/// Eviction-heavy input: ascending f (driven by dimension 1) while
/// dimension 0 descends, so on U={0} every offer strictly dominates and
/// evicts all earlier points. Without compaction the window holds every
/// point ever offered with a single survivor.
PointSet EvictionHeavyData(size_t n) {
  PointSet data(2);
  for (size_t i = 0; i < n; ++i) {
    const double row[2] = {1.0 - 0.001 * static_cast<double>(i),
                           0.001 * static_cast<double>(i)};
    data.Append(row, static_cast<PointId>(i));
  }
  return data;
}

TEST(SkylineAccumulator, CompactionKeepsResultsUnchanged) {
  const PointSet data = EvictionHeavyData(300);
  const ResultList sorted = BuildSortedByF(data);
  const Subspace u = Subspace::FromDims({0});
  for (bool use_rtree : {false, true}) {
    for (bool ext : {false, true}) {
      ThresholdScanOptions options;
      options.use_rtree = use_rtree;
      options.ext = ext;
      const ResultList result = SortedSkyline(sorted, u, options);
      EXPECT_EQ(SortedIds(result.points), ReferenceSkyline(data, u, ext))
          << "rtree=" << use_rtree << " ext=" << ext;
    }
  }
}

TEST(SkylineAccumulator, CompactionWithInterleavedSurvivors) {
  // Mix the evicting sequence with incomparable survivors so compaction
  // must preserve several alive entries, their f-order and the R-tree
  // payload renumbering, not just a single point.
  Rng rng(91);
  PointSet data(3);
  PointId id = 0;
  for (size_t i = 0; i < 400; ++i) {
    const double t = 0.001 * static_cast<double>(i);
    const double evict_row[3] = {0.9 - t, t, 0.95};
    data.Append(evict_row, id++);
    const double keep_row[3] = {rng.Uniform(), t, 0.1 + 0.5 * rng.Uniform()};
    data.Append(keep_row, id++);
  }
  const ResultList sorted = BuildSortedByF(data);
  for (Subspace u : {Subspace::FromDims({0}), Subspace::FromDims({0, 2}),
                     Subspace::FullSpace(3)}) {
    for (bool use_rtree : {false, true}) {
      ThresholdScanOptions options;
      options.use_rtree = use_rtree;
      const ResultList result = SortedSkyline(sorted, u, options);
      EXPECT_EQ(SortedIds(result.points), ReferenceSkyline(data, u, false))
          << "u=" << u.ToString() << " rtree=" << use_rtree;
      EXPECT_TRUE(result.IsSorted());
    }
  }
}

// --- cross-algorithm equivalence sweep ----------------------------------

class SkylineEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<Distribution, int, int, bool>> {
 protected:
  Distribution distribution() const { return std::get<0>(GetParam()); }
  int dims() const { return std::get<1>(GetParam()); }
  int n() const { return std::get<2>(GetParam()); }
  bool ext() const { return std::get<3>(GetParam()); }
};

TEST_P(SkylineEquivalenceTest, AllAlgorithmsAgree) {
  PointSet data =
      MakeData(distribution(), dims(), n(), 7919 * dims() + n());
  ResultList sorted = BuildSortedByF(data);
  std::vector<Subspace> subspaces = {Subspace::FullSpace(dims())};
  if (dims() >= 3) {
    subspaces.push_back(Subspace::FromDims({0, 2}));
    subspaces.push_back(Subspace::FromDims({1}));
  }
  for (Subspace u : subspaces) {
    const std::vector<PointId> expected = ReferenceSkyline(data, u, ext());
    EXPECT_EQ(SortedIds(BnlSkyline(data, u, ext())), expected)
        << "BNL " << u.ToString();
    EXPECT_EQ(SortedIds(SfsSkyline(data, u, ext())), expected)
        << "SFS " << u.ToString();
    EXPECT_EQ(SortedIds(DivideConquerSkyline(data, u, ext())), expected)
        << "D&C " << u.ToString();
    ThresholdScanOptions options;
    options.ext = ext();
    EXPECT_EQ(SortedIds(SortedSkyline(sorted, u, options).points), expected)
        << "SortedSkyline " << u.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkylineEquivalenceTest,
    ::testing::Combine(::testing::Values(Distribution::kUniform,
                                         Distribution::kClustered,
                                         Distribution::kCorrelated,
                                         Distribution::kAnticorrelated),
                       ::testing::Values(2, 4, 6),
                       ::testing::Values(40, 400),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(DistributionName(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_ext" : "_sky");
    });

// --- chunked parallel scan ----------------------------------------------

/// Full-content equality: ids, f and coordinates in list order.
void ExpectSameList(const ResultList& actual, const ResultList& expected,
                    const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual.points.id(i), expected.points.id(i)) << context;
    EXPECT_EQ(actual.f[i], expected.f[i]) << context;
    for (int d = 0; d < expected.points.dims(); ++d) {
      EXPECT_EQ(actual.points[i][d], expected.points[i][d]) << context;
    }
  }
}

TEST(ParallelSortedSkyline, BitIdenticalToSequentialScan) {
  ThreadPool pool(4);
  for (Distribution distribution :
       {Distribution::kUniform, Distribution::kAnticorrelated,
        Distribution::kCorrelated}) {
    for (int dims : {2, 4, 6}) {
      const PointSet data =
          MakeData(distribution, dims, 600, 131 * dims + 7);
      const ResultList sorted = BuildSortedByF(data);
      std::vector<Subspace> subspaces = {Subspace::FullSpace(dims),
                                         Subspace::FromDims({0})};
      if (dims >= 3) {
        subspaces.push_back(Subspace::FromDims({1, 2}));
      }
      for (Subspace u : subspaces) {
        for (bool ext : {false, true}) {
          for (bool use_rtree : {false, true}) {
            ThresholdScanOptions options;
            options.ext = ext;
            options.use_rtree = use_rtree;
            ThresholdScanStats seq_stats;
            const ResultList reference =
                SortedSkyline(sorted, u, options, &seq_stats);
            for (size_t chunk : {size_t{1}, size_t{7}, size_t{64},
                                 size_t{599}, size_t{4096}}) {
              const std::string context =
                  std::string(DistributionName(distribution)) + " d" +
                  std::to_string(dims) + " u=" + u.ToString() +
                  (ext ? " ext" : "") + (use_rtree ? " rtree" : " linear") +
                  " chunk=" + std::to_string(chunk);
              ThresholdScanStats par_stats;
              const ResultList chunked = ParallelSortedSkyline(
                  sorted, u, chunk, options, &par_stats, &pool);
              ExpectSameList(chunked, reference, context);
              EXPECT_EQ(par_stats.final_threshold, seq_stats.final_threshold)
                  << context;
              // The sum of per-chunk scans can only see *more* of the
              // input than the sequential scan's single prefix.
              EXPECT_GE(par_stats.scanned, seq_stats.scanned) << context;
              EXPECT_LE(par_stats.scanned, sorted.size()) << context;
            }
          }
        }
      }
    }
  }
}

TEST(ParallelSortedSkyline, RespectsInitialThreshold) {
  ThreadPool pool(3);
  const PointSet data = MakeData(Distribution::kUniform, 4, 500, 77);
  const ResultList sorted = BuildSortedByF(data);
  const Subspace u = Subspace::FromDims({0, 2});
  for (double threshold : {0.05, 0.3, 0.8}) {
    ThresholdScanOptions options;
    options.initial_threshold = threshold;
    ThresholdScanStats seq_stats;
    const ResultList reference = SortedSkyline(sorted, u, options, &seq_stats);
    ThresholdScanStats par_stats;
    const ResultList chunked =
        ParallelSortedSkyline(sorted, u, 32, options, &par_stats, &pool);
    ExpectSameList(chunked, reference,
                   "threshold=" + std::to_string(threshold));
    EXPECT_EQ(par_stats.final_threshold, seq_stats.final_threshold);
  }
}

TEST(ParallelSortedSkyline, ScanCountIsThreadCountInvariant) {
  // The chunk seeds depend only on the input, so `scanned` must be
  // reproducible at any pool size for a fixed chunk size.
  const PointSet data = MakeData(Distribution::kAnticorrelated, 5, 800, 13);
  const ResultList sorted = BuildSortedByF(data);
  const Subspace u = Subspace::FromDims({0, 1, 3});
  std::vector<size_t> counts;
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ThresholdScanStats stats;
    const ResultList result =
        ParallelSortedSkyline(sorted, u, 50, {}, &stats, &pool);
    EXPECT_FALSE(result.empty());
    counts.push_back(stats.scanned);
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[0], counts[2]);
}

TEST(TracedSortedSkyline, RecordingMatchesPlainScan) {
  // Recording the trace must not perturb the scan itself.
  for (Distribution distribution :
       {Distribution::kUniform, Distribution::kAnticorrelated}) {
    const PointSet data = MakeData(distribution, 4, 500, 909);
    const ResultList sorted = BuildSortedByF(data);
    const Subspace u = Subspace::FromDims({0, 2, 3});
    for (double threshold :
         {std::numeric_limits<double>::infinity(), 1.2, 0.4}) {
      ThresholdScanOptions options;
      options.initial_threshold = threshold;
      ThresholdScanStats plain_stats;
      const ResultList reference =
          SortedSkyline(sorted, u, options, &plain_stats);
      ThresholdScanStats traced_stats;
      ScanTrace trace;
      const ResultList traced =
          TracedSortedSkyline(sorted, u, options, &traced_stats, &trace);
      const std::string context = "threshold=" + std::to_string(threshold);
      ExpectSameList(traced, reference, context);
      EXPECT_EQ(traced_stats.scanned, plain_stats.scanned) << context;
      EXPECT_EQ(traced_stats.final_threshold, plain_stats.final_threshold)
          << context;
      EXPECT_EQ(trace.size(), traced_stats.scanned) << context;
      EXPECT_EQ(trace.threshold_in, threshold) << context;
    }
  }
}

TEST(ReplayScanTrace, ReproducesTighterScansExactly) {
  // The reconcile guarantee: a trace recorded under a loose threshold
  // replays the scan under ANY tighter threshold bit-identically — same
  // survivors (points evicted past the refined cut must be resurrected),
  // same scan count, same final threshold.
  for (Distribution distribution :
       {Distribution::kUniform, Distribution::kAnticorrelated,
        Distribution::kCorrelated}) {
    const PointSet data = MakeData(distribution, 5, 700, 4242);
    const ResultList sorted = BuildSortedByF(data);
    for (Subspace u : {Subspace::FromDims({0, 1, 4}),
                       Subspace::FromDims({2}), Subspace::FullSpace(5)}) {
      ThresholdScanOptions fixed_options;
      ThresholdScanStats fixed_stats;
      ScanTrace trace;
      TracedSortedSkyline(sorted, u, fixed_options, &fixed_stats, &trace);
      // Refine across the whole useful range, including the fixed
      // threshold itself and values far below it.
      std::vector<double> refined = {trace.threshold_in,
                                     fixed_stats.final_threshold};
      for (double fraction : {0.9, 0.6, 0.3, 0.1, 0.01}) {
        refined.push_back(fixed_stats.final_threshold * fraction);
      }
      for (double threshold : refined) {
        ThresholdScanOptions options;
        options.initial_threshold = threshold;
        ThresholdScanStats seq_stats;
        const ResultList reference =
            SortedSkyline(sorted, u, options, &seq_stats);
        ThresholdScanStats replay_stats;
        const ResultList replayed =
            ReplayScanTrace(sorted, trace, threshold, &replay_stats);
        const std::string context =
            std::string(DistributionName(distribution)) + " u=" +
            u.ToString() + " t=" + std::to_string(threshold);
        ExpectSameList(replayed, reference, context);
        EXPECT_EQ(replay_stats.scanned, seq_stats.scanned) << context;
        EXPECT_EQ(replay_stats.final_threshold, seq_stats.final_threshold)
            << context;
      }
    }
  }
}

TEST(ReplayScanTrace, TraceRecordedUnderFiniteThresholdReplays) {
  // Traces can themselves start from a finite threshold (an RT*M node's
  // speculative scan under the initiator's fixed value).
  const PointSet data = MakeData(Distribution::kUniform, 3, 400, 71);
  const ResultList sorted = BuildSortedByF(data);
  const Subspace u = Subspace::FromDims({0, 1});
  ThresholdScanOptions fixed_options;
  fixed_options.initial_threshold = 0.9;
  ScanTrace trace;
  ThresholdScanStats fixed_stats;
  TracedSortedSkyline(sorted, u, fixed_options, &fixed_stats, &trace);
  for (double threshold : {0.9, 0.7, 0.35, 0.05}) {
    ThresholdScanOptions options;
    options.initial_threshold = threshold;
    ThresholdScanStats seq_stats;
    const ResultList reference = SortedSkyline(sorted, u, options, &seq_stats);
    ThresholdScanStats replay_stats;
    const ResultList replayed =
        ReplayScanTrace(sorted, trace, threshold, &replay_stats);
    ExpectSameList(replayed, reference, "t=" + std::to_string(threshold));
    EXPECT_EQ(replay_stats.scanned, seq_stats.scanned);
    EXPECT_EQ(replay_stats.final_threshold, seq_stats.final_threshold);
  }
}

TEST(ParallelSortedSkyline, EmptyAndTinyInputs) {
  ThreadPool pool(2);
  const ResultList empty(3);
  const ResultList result =
      ParallelSortedSkyline(empty, Subspace::FullSpace(3), 16, {}, nullptr,
                            &pool);
  EXPECT_TRUE(result.empty());

  const PointSet one(2, {{0.4, 0.6}});
  const ResultList single = BuildSortedByF(one);
  ExpectSameList(
      ParallelSortedSkyline(single, Subspace::FullSpace(2), 1, {}, nullptr,
                            &pool),
      SortedSkyline(single, Subspace::FullSpace(2)), "single point");
}

// Ties are where skyline algorithms usually break: duplicate coordinates
// from a coarse grid.
TEST(SkylineEquivalence, GriddedDataWithManyTies) {
  Rng rng(555);
  PointSet data(3);
  for (int i = 0; i < 300; ++i) {
    double row[3];
    for (int d = 0; d < 3; ++d) {
      row[d] = rng.UniformInt(0, 3) / 4.0;
    }
    data.Append(row, i);
  }
  ResultList sorted = BuildSortedByF(data);
  for (Subspace u : AllSubspaces(3)) {
    for (bool ext : {false, true}) {
      const std::vector<PointId> expected = ReferenceSkyline(data, u, ext);
      EXPECT_EQ(SortedIds(BnlSkyline(data, u, ext)), expected);
      EXPECT_EQ(SortedIds(SfsSkyline(data, u, ext)), expected);
      EXPECT_EQ(SortedIds(DivideConquerSkyline(data, u, ext)), expected);
      ThresholdScanOptions options;
      options.ext = ext;
      EXPECT_EQ(SortedIds(SortedSkyline(sorted, u, options).points),
                expected);
    }
  }
}

}  // namespace
}  // namespace skypeer
