// Tests of store snapshots: save a preprocessed network, restore into a
// fresh one, and verify identical query answers; plus error paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"
#include "skypeer/engine/persistence.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

NetworkConfig Config(uint64_t seed) {
  NetworkConfig config;
  config.num_peers = 50;
  config.num_super_peers = 10;
  config.points_per_peer = 40;
  config.dims = 5;
  config.seed = seed;
  return config;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Persistence, RoundTripPreservesAnswers) {
  const std::string path = TempPath("stores_roundtrip.bin");
  NetworkConfig config = Config(1);

  SkypeerNetwork original(config);
  original.Preprocess();
  ASSERT_TRUE(SaveStores(original, path).ok());

  SkypeerNetwork restored(config);
  ASSERT_FALSE(restored.preprocessed());
  ASSERT_TRUE(LoadStores(&restored, path).ok());
  EXPECT_TRUE(restored.preprocessed());

  // Stores are byte-identical in content.
  for (int sp = 0; sp < original.num_super_peers(); ++sp) {
    EXPECT_EQ(SortedIds(restored.super_peer(sp).store().points),
              SortedIds(original.super_peer(sp).store().points));
  }

  const auto tasks = GenerateWorkload(5, 3, 6, original.num_super_peers(), 7);
  for (const QueryTask& task : tasks) {
    for (Variant variant : {Variant::kFTPM, Variant::kNaive}) {
      const auto a = SortedIds(
          original.ExecuteQuery(task.subspace, task.initiator_sp, variant)
              .skyline.points);
      const auto b = SortedIds(
          restored.ExecuteQuery(task.subspace, task.initiator_sp, variant)
              .skyline.points);
      EXPECT_EQ(a, b);
    }
  }
  std::remove(path.c_str());
}

TEST(Persistence, SaveRequiresPreprocessedNetwork) {
  SkypeerNetwork network(Config(2));
  EXPECT_EQ(SaveStores(network, TempPath("never_written.bin")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Persistence, LoadMissingFileFails) {
  SkypeerNetwork network(Config(3));
  EXPECT_EQ(LoadStores(&network, TempPath("does_not_exist.bin")).code(),
            StatusCode::kNotFound);
}

TEST(Persistence, LoadRejectsShapeMismatch) {
  const std::string path = TempPath("stores_shape.bin");
  NetworkConfig config = Config(4);
  SkypeerNetwork original(config);
  original.Preprocess();
  ASSERT_TRUE(SaveStores(original, path).ok());

  NetworkConfig other_dims = Config(4);
  other_dims.dims = 6;
  SkypeerNetwork wrong_dims(other_dims);
  EXPECT_EQ(LoadStores(&wrong_dims, path).code(),
            StatusCode::kInvalidArgument);

  NetworkConfig other_sp = Config(4);
  other_sp.num_super_peers = 5;
  SkypeerNetwork wrong_sp(other_sp);
  EXPECT_EQ(LoadStores(&wrong_sp, path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Persistence, LoadRejectsCorruptedFile) {
  const std::string path = TempPath("stores_corrupt.bin");
  NetworkConfig config = Config(5);
  SkypeerNetwork original(config);
  original.Preprocess();
  ASSERT_TRUE(SaveStores(original, path).ok());

  // Truncate the file.
  {
    std::FILE* file = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(file, nullptr);
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    std::fclose(file);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  }
  SkypeerNetwork restored(config);
  EXPECT_FALSE(LoadStores(&restored, path).ok());
  std::remove(path.c_str());
}

TEST(Persistence, LoadIntoPreprocessedNetworkFails) {
  const std::string path = TempPath("stores_twice.bin");
  NetworkConfig config = Config(6);
  SkypeerNetwork original(config);
  original.Preprocess();
  ASSERT_TRUE(SaveStores(original, path).ok());
  // `original` is already preprocessed; AdoptStores must refuse.
  EXPECT_EQ(LoadStores(&original, path).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(Persistence, AdoptStoresValidatesInput) {
  SkypeerNetwork network(Config(7));
  std::vector<ResultList> too_few;
  too_few.emplace_back(5);
  EXPECT_EQ(network.AdoptStores(std::move(too_few)).code(),
            StatusCode::kInvalidArgument);

  std::vector<ResultList> wrong_dims;
  for (int i = 0; i < 10; ++i) {
    wrong_dims.emplace_back(4);
  }
  EXPECT_EQ(network.AdoptStores(std::move(wrong_dims)).code(),
            StatusCode::kInvalidArgument);

  std::vector<ResultList> unsorted;
  for (int i = 0; i < 10; ++i) {
    unsorted.emplace_back(5);
  }
  PointSet bad(5, {{0.9, 0.9, 0.9, 0.9, 0.9}, {0.1, 0.1, 0.1, 0.1, 0.1}});
  unsorted[0].points.AppendAll(bad);
  unsorted[0].f = {0.9, 0.1};  // Not sorted.
  EXPECT_EQ(network.AdoptStores(std::move(unsorted)).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace skypeer
