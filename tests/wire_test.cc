// Tests of the binary wire codec and its agreement with the WireModel
// byte accounting used by the simulator.

#include <gtest/gtest.h>

#include <vector>

#include "skypeer/algo/result_list.h"
#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"
#include "skypeer/engine/query.h"
#include "skypeer/engine/wire.h"

namespace skypeer {
namespace {

ResultList MakeList(int dims, size_t n, uint64_t seed) {
  Rng rng(seed);
  return BuildSortedByF(GenerateUniform(dims, n, &rng));
}

TEST(Wire, RoundTripProjectedValues) {
  ResultList list = MakeList(6, 50, 1);
  const Subspace u = Subspace::FromDims({1, 3, 5});
  const std::vector<uint8_t> encoded = EncodeResultList(list, u);

  WireList decoded;
  ASSERT_TRUE(DecodeResultList(encoded.data(), encoded.size(), &decoded).ok());
  EXPECT_EQ(decoded.subspace, u);
  ASSERT_EQ(decoded.size(), list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(decoded.ids[i], list.points.id(i));
    EXPECT_EQ(decoded.f[i], list.f[i]);
    int c = 0;
    for (int dim : u) {
      EXPECT_EQ(decoded.coords[i * 3 + c], list.points[i][dim]);
      ++c;
    }
  }
}

TEST(Wire, EmptyListRoundTrips) {
  ResultList list(4);
  const Subspace u = Subspace::FromDims({0, 2});
  const std::vector<uint8_t> encoded = EncodeResultList(list, u);
  WireList decoded;
  ASSERT_TRUE(DecodeResultList(encoded.data(), encoded.size(), &decoded).ok());
  EXPECT_EQ(decoded.size(), 0u);
  EXPECT_EQ(decoded.subspace, u);
}

TEST(Wire, EncodedSizeMatchesFormula) {
  for (int k : {1, 2, 3, 5}) {
    std::vector<int> dims_list(k);
    for (int i = 0; i < k; ++i) {
      dims_list[i] = i;
    }
    const Subspace u = Subspace::FromDims(dims_list);
    for (size_t n : {0u, 1u, 17u, 200u}) {
      ResultList list = MakeList(5, n, 10 * k + n);
      const std::vector<uint8_t> encoded = EncodeResultList(list, u);
      EXPECT_EQ(encoded.size(), EncodedListBytes(k, n));
    }
  }
}

TEST(Wire, PerPointCostMatchesWireModel) {
  // The simulator's WireModel charges PointBytes(k) per point; the real
  // codec's marginal cost per point must agree.
  const WireModel model;
  for (int k : {2, 3, 4}) {
    const size_t marginal = EncodedListBytes(k, 11) - EncodedListBytes(k, 10);
    EXPECT_EQ(marginal, model.PointBytes(k));
  }
}

TEST(Wire, RejectsBadMagic) {
  ResultList list = MakeList(4, 5, 2);
  std::vector<uint8_t> encoded =
      EncodeResultList(list, Subspace::FromDims({0, 1}));
  encoded[0] ^= 0xff;
  WireList decoded;
  EXPECT_FALSE(
      DecodeResultList(encoded.data(), encoded.size(), &decoded).ok());
}

TEST(Wire, RejectsTruncation) {
  ResultList list = MakeList(4, 5, 3);
  const std::vector<uint8_t> encoded =
      EncodeResultList(list, Subspace::FromDims({0, 1}));
  WireList decoded;
  for (size_t cut : {encoded.size() - 1, encoded.size() / 2, size_t{3}}) {
    EXPECT_FALSE(DecodeResultList(encoded.data(), cut, &decoded).ok())
        << "cut " << cut;
  }
}

TEST(Wire, RejectsEmptyMask) {
  ResultList list = MakeList(4, 2, 4);
  std::vector<uint8_t> encoded =
      EncodeResultList(list, Subspace::FromDims({0}));
  // Zero out the mask field (bytes 4..7).
  encoded[4] = encoded[5] = encoded[6] = encoded[7] = 0;
  WireList decoded;
  EXPECT_FALSE(
      DecodeResultList(encoded.data(), encoded.size(), &decoded).ok());
}

TEST(Wire, RejectsSizeMismatchedHeader) {
  ResultList list = MakeList(4, 3, 5);
  std::vector<uint8_t> encoded =
      EncodeResultList(list, Subspace::FromDims({0, 1}));
  // Claim one more point than present.
  encoded[8] += 1;
  WireList decoded;
  EXPECT_FALSE(
      DecodeResultList(encoded.data(), encoded.size(), &decoded).ok());
}

}  // namespace
}  // namespace skypeer
