// Property tests of the paper's theoretical core (§4): the extended
// skyline and Observations 1-5, cross-checked against the SkyCube oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "skypeer/algo/bnl.h"
#include "skypeer/algo/extended_skyline.h"
#include "skypeer/algo/skycube.h"
#include "skypeer/common/dominance.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::set<PointId> IdSet(const std::vector<PointId>& ids) {
  return std::set<PointId>(ids.begin(), ids.end());
}

PointSet MakeData(Distribution distribution, int dims, size_t n,
                  uint64_t seed) {
  Rng rng(seed);
  switch (distribution) {
    case Distribution::kUniform:
      return GenerateUniform(dims, n, &rng);
    case Distribution::kClustered:
      return GenerateClustered(RandomCentroid(dims, &rng), n, kClusterStdDev,
                               &rng);
    case Distribution::kCorrelated:
      return GenerateCorrelated(dims, n, &rng);
    case Distribution::kAnticorrelated:
      return GenerateAnticorrelated(dims, n, &rng);
  }
  return PointSet(dims);
}

// Gridded data maximizes coordinate ties, the regime the extended skyline
// exists for (points tying a skyline point on some dimension).
PointSet MakeGridded(int dims, size_t n, int grid, uint64_t seed) {
  Rng rng(seed);
  PointSet data(dims);
  for (size_t i = 0; i < n; ++i) {
    double row[kMaxDims];
    for (int d = 0; d < dims; ++d) {
      row[d] = rng.UniformInt(0, grid - 1) / static_cast<double>(grid);
    }
    data.Append(row, i);
  }
  return data;
}

// Observation 3: SKY_U is contained in ext-SKY_U.
TEST(ExtendedSkyline, Observation3SkylineContainedInExtSkyline) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    PointSet data = MakeGridded(4, 200, 5, seed);
    for (Subspace u : AllSubspaces(4)) {
      const auto sky = IdSet(SortedIds(BnlSkyline(data, u)));
      const auto ext = IdSet(SortedIds(BnlSkyline(data, u, /*ext=*/true)));
      EXPECT_TRUE(
          std::includes(ext.begin(), ext.end(), sky.begin(), sky.end()))
          << "seed " << seed << " u=" << u.ToString();
    }
  }
}

// Observation 4: SKY_V ⊆ ext-SKY_U for every V ⊆ U — in particular, the
// extended skyline of the full space can answer ANY subspace query.
TEST(ExtendedSkyline, Observation4AnswersAllSubspaces) {
  for (Distribution distribution :
       {Distribution::kUniform, Distribution::kClustered,
        Distribution::kAnticorrelated}) {
    PointSet data = MakeData(distribution, 5, 300, 17);
    SkyCube cube(data);
    const auto ext = IdSet(SortedIds(ExtendedSkyline(data).points));
    for (Subspace u : AllSubspaces(5)) {
      for (PointId id : cube.Skyline(u)) {
        EXPECT_TRUE(ext.count(id) > 0)
            << DistributionName(distribution) << " point " << id
            << " of SKY_" << u.ToString() << " missing from ext-SKY_D";
      }
    }
  }
}

TEST(ExtendedSkyline, Observation4OnGriddedData) {
  PointSet data = MakeGridded(4, 400, 4, 99);
  SkyCube cube(data);
  const auto ext = IdSet(SortedIds(ExtendedSkyline(data).points));
  for (PointId id : cube.UnionOfAllSkylines()) {
    EXPECT_TRUE(ext.count(id) > 0);
  }
}

// Observation 4 with nested subspaces: SKY_V ⊆ ext-SKY_U whenever V ⊆ U,
// not only for U = D.
TEST(ExtendedSkyline, Observation4NestedSubspaces) {
  PointSet data = MakeGridded(4, 250, 5, 123);
  for (Subspace u : AllSubspaces(4)) {
    const auto ext_u = IdSet(SortedIds(BnlSkyline(data, u, /*ext=*/true)));
    for (Subspace v : AllSubspaces(4)) {
      if (!u.IsSupersetOf(v)) {
        continue;
      }
      for (PointId id : BnlSkyline(data, v).Ids()) {
        EXPECT_TRUE(ext_u.count(id) > 0)
            << "V=" << v.ToString() << " U=" << u.ToString();
      }
    }
  }
}

// Observation 1: no containment relationship between subspace skylines in
// general — find concrete witnesses both ways.
TEST(ExtendedSkyline, Observation1NoContainment) {
  // p = (1, 5), q = (2, 2), r = (5, 1):
  // SKY_{0} = {p}, SKY_{0,1} = {p, q, r}.
  PointSet data(2, {{1, 5}, {2, 2}, {5, 1}});
  const auto sky_0 = SortedIds(BnlSkyline(data, Subspace::FromDims({0})));
  const auto sky_01 = SortedIds(BnlSkyline(data, Subspace::FullSpace(2)));
  EXPECT_EQ(sky_0, (std::vector<PointId>{0}));
  EXPECT_EQ(sky_01, (std::vector<PointId>{0, 1, 2}));

  // Conversely a point can be in a subspace skyline without being in the
  // superspace skyline: s = (1, 5), t = (1, 4). On {0} both are skyline
  // (tied minimum); on {0,1} t dominates s.
  PointSet data2(2, {{1, 5}, {1, 4}});
  const auto sky2_0 = SortedIds(BnlSkyline(data2, Subspace::FromDims({0})));
  const auto sky2_01 = SortedIds(BnlSkyline(data2, Subspace::FullSpace(2)));
  EXPECT_EQ(sky2_0, (std::vector<PointId>{0, 1}));
  EXPECT_EQ(sky2_01, (std::vector<PointId>{1}));
}

// The paper's Figure 1(a) narrative: a point (m) that belongs to the
// ext-skyline yet to NO subspace skyline — the price of losslessness.
TEST(ExtendedSkyline, ExtSkylineCanExceedUnionOfSkylines) {
  // a = (0.5, 7) owns SKY_{x}; b = (3, 1) owns SKY_{y}; k = (1, 4) is in
  // SKY_{xy}; m = (1, 6) (id 1) ties k on x, is dominated by k, beaten by
  // a on x alone — so m is in NO subspace skyline. Yet nobody is strictly
  // smaller than m on both dims, so m is in the ext-skyline.
  PointSet data(2, {{1, 4}, {1, 6}, {3, 1}, {0.5, 7}});
  SkyCube cube(data);
  const auto union_ids = IdSet(cube.UnionOfAllSkylines());
  EXPECT_EQ(union_ids.count(1), 0u);  // m in no subspace skyline.
  const auto ext = IdSet(SortedIds(ExtendedSkyline(data).points));
  EXPECT_EQ(ext.count(1), 1u);  // Yet m is in the ext-skyline.
}

// ... and the counterpart: e = (4, 5) dominated by i = (3, 2) strictly on
// both dims is NOT in the ext-skyline.
TEST(ExtendedSkyline, StrictlyDominatedPointExcluded) {
  PointSet data(2, {{3, 2}, {4, 5}});
  const auto ext = IdSet(SortedIds(ExtendedSkyline(data).points));
  EXPECT_EQ(ext.count(1), 0u);
}

TEST(ExtendedSkyline, MatchesBnlExtOnAllDistributions) {
  for (Distribution distribution :
       {Distribution::kUniform, Distribution::kClustered,
        Distribution::kCorrelated, Distribution::kAnticorrelated}) {
    PointSet data = MakeData(distribution, 6, 500, 31337);
    EXPECT_EQ(
        SortedIds(ExtendedSkyline(data).points),
        SortedIds(BnlSkyline(data, Subspace::FullSpace(6), /*ext=*/true)))
        << DistributionName(distribution);
  }
}

TEST(ExtendedSkyline, ResultIsSortedByF) {
  PointSet data = MakeData(Distribution::kUniform, 5, 400, 3);
  ResultList ext = ExtendedSkyline(data);
  EXPECT_TRUE(ext.IsSorted());
}

TEST(ExtendedSkyline, SubspaceVariantRestrictsDominance) {
  PointSet data = MakeGridded(4, 200, 4, 5);
  Subspace u = Subspace::FromDims({0, 3});
  EXPECT_EQ(SortedIds(ExtendedSkyline(data, u).points),
            SortedIds(BnlSkyline(data, u, /*ext=*/true)));
}

// The selectivity property behind Fig 3(a): ext-skyline grows with d.
TEST(ExtendedSkyline, SelectivityGrowsWithDimensionality) {
  double previous = 0.0;
  for (int dims : {2, 4, 6, 8}) {
    PointSet data = MakeData(Distribution::kUniform, dims, 2000, 40 + dims);
    const double fraction =
        static_cast<double>(ExtendedSkyline(data).size()) / data.size();
    EXPECT_GT(fraction, previous) << "dims " << dims;
    previous = fraction;
  }
  EXPECT_GT(previous, 0.4);  // At d=8 nearly half the points survive.
}

// --- SkyCube oracle sanity ----------------------------------------------

TEST(SkyCube, MatchesDirectBnl) {
  PointSet data = MakeData(Distribution::kUniform, 4, 100, 77);
  SkyCube cube(data);
  for (Subspace u : AllSubspaces(4)) {
    EXPECT_EQ(cube.Skyline(u), BnlSkyline(data, u).Ids());
  }
}

TEST(SkyCube, UnionContainsFullSpaceSkyline) {
  PointSet data = MakeData(Distribution::kClustered, 4, 150, 78);
  SkyCube cube(data);
  const auto union_ids = IdSet(cube.UnionOfAllSkylines());
  for (PointId id : cube.Skyline(Subspace::FullSpace(4))) {
    EXPECT_EQ(union_ids.count(id), 1u);
  }
}

TEST(SkyCube, SingletonSubspacesContainMinima) {
  PointSet data = MakeData(Distribution::kUniform, 3, 60, 79);
  SkyCube cube(data);
  for (int d = 0; d < 3; ++d) {
    double best = 2.0;
    for (size_t i = 0; i < data.size(); ++i) {
      best = std::min(best, data[i][d]);
    }
    for (PointId id : cube.Skyline(Subspace::FromDims({d}))) {
      // Every singleton-subspace skyline point attains the dimension
      // minimum.
      for (size_t i = 0; i < data.size(); ++i) {
        if (data.id(i) == id) {
          EXPECT_EQ(data[i][d], best);
        }
      }
    }
  }
}

}  // namespace
}  // namespace skypeer
