// Equivalence suite for the batched dominance kernels: every batched
// result must match the scalar dominance.h predicates lane by lane, for
// both the forced-scalar and the runtime-dispatched implementation, on
// sizes that exercise partial final blocks and killed lanes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "skypeer/algo/sorted_skyline.h"
#include "skypeer/common/dominance.h"
#include "skypeer/common/dominance_batch.h"
#include "skypeer/common/mapping.h"
#include "skypeer/common/rng.h"
#include "skypeer/data/generator.h"

namespace skypeer {
namespace {

/// Restores runtime dispatch when a test that forced the scalar path exits.
struct ScopedKernelMode {
  explicit ScopedKernelMode(bool force_scalar) {
    SetForceScalarKernels(force_scalar);
  }
  ~ScopedKernelMode() { SetForceScalarKernels(false); }
};

/// Gridded coordinates make equal values (and thus tie-sensitive lanes)
/// common; continuous coordinates exercise the generic ordering.
PointSet RandomPoints(int k, size_t n, uint64_t seed, bool gridded) {
  Rng rng(seed);
  PointSet data(k);
  for (size_t i = 0; i < n; ++i) {
    double row[kMaxDims];
    for (int d = 0; d < k; ++d) {
      row[d] = gridded ? rng.UniformInt(0, 3) / 4.0 : rng.Uniform();
    }
    data.Append(row, i);
  }
  return data;
}

constexpr int kDimSweep[] = {1, 2, 3, 5, 8, 13};
constexpr size_t kSizeSweep[] = {0, 1, 5, 7, 8, 9, 16, 33, 100};

class KernelEquivalenceTest : public ::testing::TestWithParam<bool> {
 protected:
  bool force_scalar() const { return GetParam(); }
};

TEST_P(KernelEquivalenceTest, BlockedMatchesScalarLaneByLane) {
  ScopedKernelMode mode(force_scalar());
  for (int k : kDimSweep) {
    const Subspace full = Subspace::FullSpace(k);
    for (size_t n : kSizeSweep) {
      for (bool gridded : {false, true}) {
        const uint64_t seed = 1000 * k + 10 * n + gridded;
        PointSet window = RandomPoints(k, n, seed, gridded);
        BlockedProjection blocked(k);
        for (size_t i = 0; i < n; ++i) {
          blocked.Append(window[i]);
        }
        ASSERT_EQ(blocked.size(), n);

        PointSet queries = RandomPoints(k, 32, seed ^ 0xabcd, gridded);
        std::vector<uint8_t> masks(blocked.num_blocks());
        std::vector<uint8_t> flags(n);
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          const double* q = queries[qi];
          for (bool strict : {false, true}) {
            // Forward: does any window point dominate q?
            bool expect_any = false;
            for (size_t i = 0; i < n; ++i) {
              expect_any =
                  expect_any || (strict ? ExtDominates(window[i], q, full)
                                        : Dominates(window[i], q, full));
            }
            EXPECT_EQ(AnyDominates(blocked, q, strict), expect_any)
                << "k=" << k << " n=" << n << " strict=" << strict;
            EXPECT_EQ(AnyDominatesRows(window.values().data(),
                                       static_cast<size_t>(k), n, k, q,
                                       strict),
                      expect_any);

            // Reverse: which window points does q dominate?
            DominatedMask(blocked, q, strict, masks.data());
            DominatedFlagsRows(window.values().data(), static_cast<size_t>(k),
                               n, k, q, strict, flags.data());
            for (size_t i = 0; i < n; ++i) {
              const bool expect = strict ? ExtDominates(q, window[i], full)
                                         : Dominates(q, window[i], full);
              EXPECT_EQ((masks[i / kDomBlockWidth] >> (i % kDomBlockWidth)) & 1,
                        expect ? 1 : 0)
                  << "k=" << k << " n=" << n << " i=" << i
                  << " strict=" << strict;
              EXPECT_EQ(flags[i] != 0, expect);
            }
            // Padding bits past size() must be clear.
            if (n % kDomBlockWidth != 0 && !masks.empty()) {
              EXPECT_EQ(masks.back() >> (n % kDomBlockWidth), 0);
            }
          }
        }
      }
    }
  }
}

TEST_P(KernelEquivalenceTest, KilledLanesNeverDominate) {
  ScopedKernelMode mode(force_scalar());
  for (int k : {2, 5}) {
    const Subspace full = Subspace::FullSpace(k);
    const size_t n = 21;
    PointSet window = RandomPoints(k, n, 7 * k, /*gridded=*/true);
    BlockedProjection blocked(k);
    for (size_t i = 0; i < n; ++i) {
      blocked.Append(window[i]);
    }
    // Kill every third entry; the survivors alone define forward results.
    std::vector<bool> alive(n, true);
    for (size_t i = 0; i < n; i += 3) {
      blocked.Kill(i);
      alive[i] = false;
    }
    PointSet queries = RandomPoints(k, 16, 99 * k, /*gridded=*/true);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const double* q = queries[qi];
      for (bool strict : {false, true}) {
        bool expect_any = false;
        for (size_t i = 0; i < n; ++i) {
          if (alive[i]) {
            expect_any =
                expect_any || (strict ? ExtDominates(window[i], q, full)
                                      : Dominates(window[i], q, full));
          }
        }
        EXPECT_EQ(AnyDominates(blocked, q, strict), expect_any);
      }
    }
  }
}

TEST_P(KernelEquivalenceTest, BatchMinCoordBitwiseEqual) {
  ScopedKernelMode mode(force_scalar());
  for (int dims : kDimSweep) {
    for (size_t n : kSizeSweep) {
      PointSet data = RandomPoints(dims, n, 31 * dims + n, /*gridded=*/false);
      std::vector<double> batched(n);
      BatchMinCoord(data.values().data(), n, dims, batched.data());
      for (size_t i = 0; i < n; ++i) {
        const double expect = MinCoord(data[i], dims);
        // Bitwise equality, not just numeric: f-values feed sort keys and
        // thresholds that must not depend on the kernel path.
        EXPECT_EQ(batched[i], expect) << "dims=" << dims << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, KernelEquivalenceTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "forced_scalar" : "dispatched";
                         });

TEST(BlockedProjectionTest, AppendRowRoundTripAndBookkeeping) {
  BlockedProjection blocked(3);
  EXPECT_TRUE(blocked.empty());
  EXPECT_EQ(blocked.num_blocks(), 0u);
  PointSet data = RandomPoints(3, 19, 5, /*gridded=*/false);
  for (size_t i = 0; i < data.size(); ++i) {
    blocked.Append(data[i]);
  }
  EXPECT_EQ(blocked.size(), 19u);
  EXPECT_EQ(blocked.num_blocks(), 3u);
  double row[3];
  for (size_t i = 0; i < data.size(); ++i) {
    blocked.Row(i, row);
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(row[d], data[i][d]);
    }
  }
  blocked.Kill(4);
  blocked.Row(4, row);
  for (int d = 0; d < 3; ++d) {
    EXPECT_TRUE(std::isinf(row[d]));
  }
  blocked.Clear();
  EXPECT_TRUE(blocked.empty());
  EXPECT_EQ(blocked.num_blocks(), 0u);
}

TEST(KernelDispatchTest, ForceScalarPinsTheMode) {
  const DomKernelMode detected = ActiveDomKernelMode();
  EXPECT_STRNE(DomKernelModeName(detected), "unknown");
  SetForceScalarKernels(true);
  EXPECT_EQ(ActiveDomKernelMode(), DomKernelMode::kScalar);
  SetForceScalarKernels(false);
  EXPECT_EQ(ActiveDomKernelMode(), detected);
}

// A pathological evict-heavy stream — every offer dominates and evicts the
// previous survivor, so one point is alive while the window accretes dead
// slots — must stay bounded by the compaction policy, including a custom
// tighter `compact_min_window`.
TEST(AccumulatorCompactionTest, EvictHeavyStreamKeepsWindowBounded) {
  for (bool use_rtree : {false, true}) {
    for (size_t min_window : {size_t{64}, size_t{16}}) {
      ThresholdScanOptions options;
      options.use_rtree = use_rtree;
      options.compact_min_window = min_window;
      SkylineAccumulator accumulator(2, Subspace::FullSpace(2), options);
      size_t max_window = 0;
      const size_t kOffers = 4000;
      for (size_t i = 0; i < kOffers; ++i) {
        // Constant first coordinate keeps f = min coord non-decreasing;
        // the strictly shrinking second coordinate means each point
        // dominates (and evicts) its predecessor.
        const double p[2] = {0.25, 1.0 - static_cast<double>(i) / 8000.0};
        EXPECT_TRUE(accumulator.Offer(p, i, 0.25));
        max_window = std::max(max_window, accumulator.window_size());
        EXPECT_EQ(accumulator.alive(), 1u);
      }
      // alive == 1 < fraction * size triggers compaction as soon as the
      // window reaches `min_window`, so it can never exceed it.
      EXPECT_LE(max_window, min_window)
          << "use_rtree=" << use_rtree << " min_window=" << min_window;
      ResultList result = accumulator.TakeResult();
      ASSERT_EQ(result.size(), 1u);
      EXPECT_EQ(result.points.id(0), kOffers - 1);
    }
  }
}

// The compaction policy defaults reproduce the historical rule exactly, so
// scan results and stats must not depend on the thresholds chosen — only
// the window footprint does.
TEST(AccumulatorCompactionTest, PolicyDoesNotChangeResults) {
  PointSet data = RandomPoints(4, 600, 77, /*gridded=*/true);
  ResultList sorted = BuildSortedByF(data);
  const Subspace u = Subspace::FullSpace(4);
  ThresholdScanOptions defaults;
  ThresholdScanStats default_stats;
  ResultList expect = SortedSkyline(sorted, u, defaults, &default_stats);
  for (size_t min_window : {size_t{4}, size_t{16}, size_t{1000000}}) {
    for (double fraction : {0.25, 0.5, 0.9}) {
      ThresholdScanOptions options;
      options.compact_min_window = min_window;
      options.compact_live_fraction = fraction;
      ThresholdScanStats stats;
      ResultList got = SortedSkyline(sorted, u, options, &stats);
      EXPECT_EQ(got.points.Ids(), expect.points.Ids());
      EXPECT_EQ(got.f, expect.f);
      EXPECT_EQ(stats.scanned, default_stats.scanned);
      EXPECT_EQ(stats.final_threshold, default_stats.final_threshold);
    }
  }
}

// End-to-end scan bit-identity between the forced-scalar and dispatched
// kernels, on both the linear-window and the R-tree paths.
TEST(KernelDispatchTest, SortedSkylineBitIdenticalAcrossModes) {
  for (int dims : {2, 4, 8}) {
    PointSet data = RandomPoints(dims, 800, 13 * dims, /*gridded=*/true);
    const Subspace u = Subspace::FullSpace(dims);
    for (bool use_rtree : {false, true}) {
      ThresholdScanOptions options;
      options.use_rtree = use_rtree;
      ResultList scalar_result(dims);
      ThresholdScanStats scalar_stats;
      {
        ScopedKernelMode mode(/*force_scalar=*/true);
        ResultList sorted = BuildSortedByF(data);
        scalar_result = SortedSkyline(sorted, u, options, &scalar_stats);
      }
      ResultList dispatched_result(dims);
      ThresholdScanStats dispatched_stats;
      {
        ScopedKernelMode mode(/*force_scalar=*/false);
        ResultList sorted = BuildSortedByF(data);
        dispatched_result = SortedSkyline(sorted, u, options, &dispatched_stats);
      }
      EXPECT_EQ(scalar_result.points.Ids(), dispatched_result.points.Ids());
      EXPECT_EQ(scalar_result.f, dispatched_result.f);
      EXPECT_EQ(scalar_result.points.values(),
                dispatched_result.points.values());
      EXPECT_EQ(scalar_stats.scanned, dispatched_stats.scanned);
      EXPECT_EQ(scalar_stats.final_threshold, dispatched_stats.final_threshold);
    }
  }
}

}  // namespace
}  // namespace skypeer
