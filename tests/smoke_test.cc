// End-to-end smoke test: a tiny SKYPEER network answers a subspace query
// exactly, for every variant.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"

namespace skypeer {
namespace {

TEST(Smoke, AllVariantsMatchGroundTruth) {
  NetworkConfig config;
  config.num_peers = 40;
  config.num_super_peers = 8;
  config.points_per_peer = 30;
  config.dims = 4;
  config.seed = 99;
  config.retain_peer_data = true;
  SkypeerNetwork network(config);
  network.Preprocess();

  const Subspace u = Subspace::FromDims({0, 2});
  std::vector<PointId> truth = network.GroundTruthSkyline(u).Ids();
  std::sort(truth.begin(), truth.end());
  ASSERT_FALSE(truth.empty());

  for (Variant variant : kAllVariants) {
    QueryResult result = network.ExecuteQuery(u, /*initiator_sp=*/3, variant);
    std::vector<PointId> ids = result.skyline.points.Ids();
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, truth) << VariantName(variant);
    EXPECT_GT(result.metrics.total_time_s, 0.0) << VariantName(variant);
    EXPECT_GT(result.metrics.bytes_transferred, 0u) << VariantName(variant);
  }
}

}  // namespace
}  // namespace skypeer
