// Tests of the pipelined query variant (Euler-tour walk, Wu et al. style)
// and of Graph::EulerTourWalk.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "skypeer/common/rng.h"
#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"
#include "skypeer/topology/graph.h"

namespace skypeer {
namespace {

std::vector<PointId> SortedIds(const PointSet& points) {
  std::vector<PointId> ids = points.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

// --- Euler tour walk -------------------------------------------------------

void CheckWalk(const Graph& graph, int root) {
  const std::vector<int> walk = graph.EulerTourWalk(root);
  ASSERT_FALSE(walk.empty());
  EXPECT_EQ(walk.front(), root);
  EXPECT_EQ(walk.back(), root);
  std::set<int> visited(walk.begin(), walk.end());
  // Every node reachable from root appears.
  const std::vector<int> dist = graph.HopDistances(root);
  for (int node = 0; node < graph.num_nodes(); ++node) {
    EXPECT_EQ(visited.count(node) == 1, dist[node] >= 0) << "node " << node;
  }
  // Consecutive entries are adjacent.
  for (size_t i = 1; i < walk.size(); ++i) {
    EXPECT_TRUE(graph.HasEdge(walk[i - 1], walk[i]))
        << walk[i - 1] << " -> " << walk[i];
  }
  // Length of a spanning-tree Euler tour: 2 * (visited - 1) + 1.
  EXPECT_EQ(walk.size(), 2 * (visited.size() - 1) + 1);
}

TEST(EulerTour, SingleNode) {
  Graph g(1);
  EXPECT_EQ(g.EulerTourWalk(0), (std::vector<int>{0}));
}

TEST(EulerTour, Path) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.EulerTourWalk(0), (std::vector<int>{0, 1, 2, 1, 0}));
  CheckWalk(g, 1);
}

TEST(EulerTour, Star) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  CheckWalk(g, 0);
  CheckWalk(g, 2);
}

TEST(EulerTour, RandomGraphs) {
  for (int n : {5, 40, 200}) {
    Rng rng(n);
    Graph g = GenerateWaxmanGraph(n, 4.0, &rng);
    CheckWalk(g, 0);
    CheckWalk(g, n / 2);
  }
}

TEST(EulerTour, DeepPathNoStackOverflow) {
  constexpr int kN = 200000;
  Graph g(kN);
  for (int i = 1; i < kN; ++i) {
    g.AddEdge(i - 1, i);
  }
  const std::vector<int> walk = g.EulerTourWalk(0);
  EXPECT_EQ(walk.size(), 2u * (kN - 1) + 1);
}

// --- pipelined variant -------------------------------------------------------

NetworkConfig SmallConfig(uint64_t seed) {
  NetworkConfig config;
  config.num_peers = 60;
  config.num_super_peers = 12;
  config.points_per_peer = 40;
  config.dims = 5;
  config.degree_sp = 3.0;
  config.seed = seed;
  config.retain_peer_data = true;
  return config;
}

TEST(Pipeline, ExactOnAllSubspaces) {
  NetworkConfig config = SmallConfig(1);
  config.dims = 4;
  SkypeerNetwork network(config);
  network.Preprocess();
  for (Subspace u : AllSubspaces(4)) {
    QueryResult result = network.ExecuteQuery(u, 0, Variant::kPipeline);
    EXPECT_EQ(SortedIds(result.skyline.points),
              SortedIds(network.GroundTruthSkyline(u)))
        << u.ToString();
    EXPECT_TRUE(result.skyline.IsSorted());
  }
}

TEST(Pipeline, ExactAcrossDistributionsAndInitiators) {
  for (Distribution distribution :
       {Distribution::kUniform, Distribution::kClustered,
        Distribution::kAnticorrelated}) {
    NetworkConfig config = SmallConfig(2 + static_cast<int>(distribution));
    config.distribution = distribution;
    SkypeerNetwork network(config);
    network.Preprocess();
    const auto tasks = GenerateWorkload(5, 3, 5, network.num_super_peers(), 9);
    for (const QueryTask& task : tasks) {
      QueryResult result = network.ExecuteQuery(task.subspace,
                                                task.initiator_sp,
                                                Variant::kPipeline);
      EXPECT_EQ(SortedIds(result.skyline.points),
                SortedIds(network.GroundTruthSkyline(task.subspace)))
          << DistributionName(distribution);
    }
  }
}

TEST(Pipeline, MessageCountEqualsWalkLength) {
  NetworkConfig config = SmallConfig(7);
  config.measure_cpu = false;
  SkypeerNetwork network(config);
  network.Preprocess();
  const std::vector<int> walk = network.overlay().backbone.EulerTourWalk(4);
  QueryResult result = network.ExecuteQuery(Subspace::FromDims({0, 1}), 4,
                                            Variant::kPipeline);
  // One message per walk edge, times two runs is folded into the metrics
  // of the first run only.
  EXPECT_EQ(result.metrics.messages, walk.size() - 1);
  EXPECT_EQ(result.metrics.super_peers_participated,
            network.num_super_peers());
}

TEST(Pipeline, SingleSuperPeer) {
  NetworkConfig config = SmallConfig(8);
  config.num_super_peers = 1;
  SkypeerNetwork network(config);
  network.Preprocess();
  QueryResult result =
      network.ExecuteQuery(Subspace::FromDims({2}), 0, Variant::kPipeline);
  EXPECT_EQ(SortedIds(result.skyline.points),
            SortedIds(network.GroundTruthSkyline(Subspace::FromDims({2}))));
  EXPECT_EQ(result.metrics.messages, 0u);
}

TEST(Pipeline, SerialLatencyExceedsTreeVariant) {
  // The walk is serial (~2 N_sp transfers end to end) while FTPM floods a
  // tree; on a non-trivial backbone with zero CPU the pipeline's total
  // time must be larger.
  NetworkConfig config = SmallConfig(9);
  config.measure_cpu = false;
  SkypeerNetwork network(config);
  network.Preprocess();
  const Subspace u = Subspace::FromDims({0, 3});
  const auto pipe = network.ExecuteQuery(u, 2, Variant::kPipeline);
  const auto ftpm = network.ExecuteQuery(u, 2, Variant::kFTPM);
  EXPECT_GT(pipe.metrics.total_time_s, ftpm.metrics.total_time_s);
  // Both are exact, so result sizes agree.
  EXPECT_EQ(pipe.metrics.result_size, ftpm.metrics.result_size);
}

TEST(Pipeline, ThresholdTravelsAndPrunes) {
  NetworkConfig config = SmallConfig(10);
  config.measure_cpu = false;
  SkypeerNetwork network(config);
  const PreprocessStats pre = network.Preprocess();
  QueryResult result = network.ExecuteQuery(Subspace::FromDims({1, 4}), 0,
                                            Variant::kPipeline);
  // The travelling threshold prunes later stores: strictly fewer points
  // scanned than the naive full-store sweep.
  EXPECT_LT(result.metrics.store_points_scanned, pre.super_peer_ext_points);
}

}  // namespace
}  // namespace skypeer
