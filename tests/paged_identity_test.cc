// The beyond-RAM tentpole guarantee: serving super-peer stores through
// the paged blocked-SoA storage subsystem (`--buffer-pages`) is
// invisible to everything the simulation reports. Skylines, transfer
// volume, messages, scan counts, op counts — including the logical
// `page_reads`/`page_bytes`, which are charged identically in both
// modes — and simulated times are bit-identical between the in-memory
// and the paged store, for all five variants plus the pipeline, at 1, 2
// and 8 threads, with forced-scalar and dispatched SIMD kernels,
// composed with --scan-chunk, --speculative-rt, --cache, --filter-set
// and fault injection. Only the out-of-band physical pool counters may
// differ.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "skypeer/common/dominance_batch.h"
#include "skypeer/common/rng.h"
#include "skypeer/common/thread_pool.h"
#include "skypeer/data/generator.h"
#include "skypeer/engine/experiment.h"
#include "skypeer/engine/network_builder.h"
#include "skypeer/engine/persistence.h"

namespace skypeer {
namespace {

NetworkConfig BaseConfig() {
  NetworkConfig config;
  config.num_peers = 40;
  config.num_super_peers = 8;
  config.points_per_peer = 30;
  config.dims = 4;
  config.seed = 7;
  config.measure_cpu = false;  // Virtual clocks for exact comparison.
  return config;
}

/// The same network, stores spilled through a deliberately tiny pool: 4
/// frames of 4 KiB against 8 stores of several pages each, so scans
/// continuously fault, evict and prefetch.
NetworkConfig Paged(NetworkConfig config) {
  config.buffer_pages = 4;
  config.page_size = 4096;
  return config;
}

std::vector<std::vector<double>> Signature(const ResultList& list) {
  std::vector<std::vector<double>> rows;
  rows.reserve(list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    std::vector<double> row;
    row.push_back(static_cast<double>(list.points.id(i)));
    row.push_back(list.f[i]);
    for (int d = 0; d < list.points.dims(); ++d) {
      row.push_back(list.points[i][d]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Every simulated quantity, including the op counts (page charges among
/// them) and the reliability fields.
void ExpectMetricsIdentical(const QueryMetrics& a, const QueryMetrics& b,
                            const std::string& context) {
  EXPECT_EQ(a.computational_time_s, b.computational_time_s) << context;
  EXPECT_EQ(a.total_time_s, b.total_time_s) << context;
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << context;
  EXPECT_EQ(a.messages, b.messages) << context;
  EXPECT_EQ(a.result_size, b.result_size) << context;
  EXPECT_EQ(a.store_points_scanned, b.store_points_scanned) << context;
  EXPECT_EQ(a.local_result_points, b.local_result_points) << context;
  EXPECT_EQ(a.super_peers_participated, b.super_peers_participated) << context;
  EXPECT_TRUE(a.ops == b.ops)
      << context << "\n  in-memory: " << b.ops.ToString()
      << "\n  paged:     " << a.ops.ToString();
  EXPECT_EQ(a.partial, b.partial) << context;
  EXPECT_EQ(a.covered, b.covered) << context;
  EXPECT_EQ(a.retransmits, b.retransmits) << context;
  EXPECT_EQ(a.hops_gave_up, b.hops_gave_up) << context;
  EXPECT_EQ(a.messages_dropped, b.messages_dropped) << context;
}

TEST(PagedIdentity, MatchesInMemoryForAllVariantsThreadsKernelsCompositions) {
  const std::vector<QueryTask> tasks =
      GenerateWorkload(4, 2, 3, BaseConfig().num_super_peers, 101);
  std::vector<Variant> variants(kAllVariants, kAllVariants + 5);
  variants.push_back(Variant::kPipeline);

  std::vector<std::pair<std::string, NetworkConfig>> compositions;
  compositions.emplace_back("plain", BaseConfig());
  {
    NetworkConfig chunked = BaseConfig();
    chunked.scan_chunk_size = 16;
    compositions.emplace_back("chunked", chunked);
  }
  {
    NetworkConfig speculative = BaseConfig();
    speculative.speculative_rt = true;
    compositions.emplace_back("speculative", speculative);
  }
  {
    NetworkConfig cached = BaseConfig();
    cached.enable_cache = true;
    compositions.emplace_back("cached", cached);
  }
  {
    NetworkConfig filtered = BaseConfig();
    filtered.filter_set_size = 8;
    compositions.emplace_back("filtered", filtered);
  }
  {
    NetworkConfig skipping = BaseConfig();
    skipping.block_skip = true;
    compositions.emplace_back("block-skip", skipping);
  }
  {
    // Everything at once, under injected faults.
    NetworkConfig faulted = BaseConfig();
    faulted.scan_chunk_size = 64;
    faulted.speculative_rt = true;
    faulted.enable_cache = true;
    faulted.filter_set_size = 6;
    faulted.block_skip = true;
    faulted.reliable = true;
    faulted.drop_prob = 0.2;
    faulted.delay_jitter = 0.05;
    faulted.fault_seed = 21;
    faulted.crashed_sps = {5};
    faulted.max_retries = 2;
    compositions.emplace_back("faulted", faulted);
  }

  struct Reference {
    std::vector<std::vector<double>> skyline;
    QueryMetrics metrics;
  };

  for (const auto& [name, config] : compositions) {
    // In-memory sequential scalar reference.
    SetForceScalarKernels(true);
    ThreadPool::SetGlobalConcurrency(1);
    std::vector<std::vector<Reference>> references;
    {
      SkypeerNetwork in_memory(config);
      in_memory.Preprocess();
      EXPECT_EQ(in_memory.buffer_manager(), nullptr);
      for (Variant variant : variants) {
        std::vector<Reference> per_task;
        for (const QueryTask& task : tasks) {
          const QueryResult result =
              in_memory.ExecuteQuery(task.subspace, task.initiator_sp, variant);
          per_task.push_back({Signature(result.skyline), result.metrics});
        }
        references.push_back(std::move(per_task));
      }
    }

    for (const bool force_scalar : {true, false}) {
      SetForceScalarKernels(force_scalar);
      for (int threads : {1, 2, 8}) {
        ThreadPool::SetGlobalConcurrency(threads);
        SkypeerNetwork paged(Paged(config));
        paged.Preprocess();
        ASSERT_NE(paged.buffer_manager(), nullptr);
        for (size_t v = 0; v < variants.size(); ++v) {
          for (size_t t = 0; t < tasks.size(); ++t) {
            const QueryResult result = paged.ExecuteQuery(
                tasks[t].subspace, tasks[t].initiator_sp, variants[v]);
            const std::string context =
                name + " " + VariantName(variants[v]) + " task " +
                std::to_string(t) + " threads " + std::to_string(threads) +
                (force_scalar ? " scalar" : " simd");
            EXPECT_EQ(Signature(result.skyline), references[v][t].skyline)
                << context;
            ExpectMetricsIdentical(result.metrics, references[v][t].metrics,
                                   context);
          }
        }
        // The pool physically paged: out-of-band evidence the run did
        // not silently fall back to resident stores.
        EXPECT_GT(paged.buffer_manager()->stats().misses, 0u) << name;
      }
    }
  }
  SetForceScalarKernels(false);
  ThreadPool::SetGlobalConcurrency(1);
}

TEST(PagedIdentity, LogicalPageChargesAreNonZeroAndEqualInBothModes) {
  // The charging design in one assertion: both modes report the same
  // positive page_reads/page_bytes, and the buffer pool's physical read
  // count is unrelated to them (a tiny pool re-reads pages the logical
  // model charges once).
  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork in_memory(BaseConfig());
  in_memory.Preprocess();
  SkypeerNetwork paged(Paged(BaseConfig()));
  paged.Preprocess();

  const Subspace u = Subspace::FromDims({0, 2});
  const QueryResult mem = in_memory.ExecuteQuery(u, 0, Variant::kRTPM);
  const QueryResult pgd = paged.ExecuteQuery(u, 0, Variant::kRTPM);
  EXPECT_GT(mem.metrics.ops.page_reads, 0u);
  EXPECT_EQ(mem.metrics.ops.page_reads, pgd.metrics.ops.page_reads);
  EXPECT_EQ(mem.metrics.ops.page_bytes, pgd.metrics.ops.page_bytes);
  EXPECT_EQ(mem.metrics.ops.page_bytes,
            mem.metrics.ops.page_reads * 4096u);
}

// --- churn on a paged network ------------------------------------------------

NetworkConfig DynamicPaged(uint64_t seed) {
  NetworkConfig config = Paged(BaseConfig());
  config.seed = seed;
  config.retain_peer_data = true;
  config.dynamic_membership = true;
  return config;
}

TEST(PagedChurn, JoinsAndRemovalsRebuildPagedStoresExactly) {
  // Regression for store replacement under paging: every join/removal
  // rebuilds the super-peer's `PagedStore` with fresh page ids and drops
  // the old pages; queries after each step must match the in-memory
  // network operation for operation.
  ThreadPool::SetGlobalConcurrency(1);
  NetworkConfig mem_config = DynamicPaged(31);
  mem_config.buffer_pages = 0;
  SkypeerNetwork in_memory(mem_config);
  in_memory.Preprocess();
  SkypeerNetwork paged(DynamicPaged(31));
  paged.Preprocess();

  const uint64_t pages_after_build =
      paged.buffer_manager()->stats().pages_written;
  EXPECT_GT(pages_after_build, 0u);

  Rng data_rng_a(55);
  Rng data_rng_b(55);
  Rng plan(77);
  std::vector<int> removable;
  for (int peer = 0; peer < 40; ++peer) {
    removable.push_back(peer);
  }
  for (int round = 0; round < 8; ++round) {
    if (plan.Uniform() < 0.5 || removable.empty()) {
      const int sp = static_cast<int>(plan.UniformInt(0, 7));
      const int n = 1 + round % 25;
      int id_a = -1;
      int id_b = -1;
      ASSERT_TRUE(
          in_memory.JoinPeer(sp, GenerateUniform(4, n, &data_rng_a), &id_a)
              .ok());
      ASSERT_TRUE(
          paged.JoinPeer(sp, GenerateUniform(4, n, &data_rng_b), &id_b).ok());
      ASSERT_EQ(id_a, id_b);
      removable.push_back(id_a);
    } else {
      const size_t victim = plan.UniformInt(0, removable.size() - 1);
      ASSERT_TRUE(in_memory.RemovePeer(removable[victim]).ok());
      ASSERT_TRUE(paged.RemovePeer(removable[victim]).ok());
      removable.erase(removable.begin() + victim);
    }
    for (Variant variant : {Variant::kFTFM, Variant::kRTPM}) {
      const Subspace u = Subspace::FromDims({1, 3});
      const QueryResult a = in_memory.ExecuteQuery(u, 0, variant);
      const QueryResult b = paged.ExecuteQuery(u, 0, variant);
      const std::string context =
          "round " + std::to_string(round) + " " + VariantName(variant);
      EXPECT_EQ(Signature(a.skyline), Signature(b.skyline)) << context;
      ExpectMetricsIdentical(b.metrics, a.metrics, context);
    }
    // The rebuilt stores match content-wise, and the rebuilds actually
    // spilled new pages.
    for (int sp = 0; sp < paged.num_super_peers(); ++sp) {
      EXPECT_EQ(Signature(paged.super_peer(sp).MaterializeStore()),
                Signature(in_memory.super_peer(sp).store()))
          << "round " << round << " store " << sp;
    }
  }
  EXPECT_GT(paged.buffer_manager()->stats().pages_written, pages_after_build);
}

TEST(PagedChurn, DrainedSuperPeerHoldsAnEmptyPagedStore) {
  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork paged(DynamicPaged(32));
  paged.Preprocess();
  const std::vector<int> victims = paged.overlay().super_peer_peers[2];
  ASSERT_FALSE(victims.empty());
  for (int peer : victims) {
    ASSERT_TRUE(paged.RemovePeer(peer).ok());
  }
  EXPECT_EQ(paged.super_peer(2).StoreSize(), 0u);
  EXPECT_TRUE(paged.super_peer(2).MaterializeStore().empty());
  // The drained super-peer still answers and initiates exactly.
  NetworkConfig mem_config = DynamicPaged(32);
  mem_config.buffer_pages = 0;
  SkypeerNetwork in_memory(mem_config);
  in_memory.Preprocess();
  for (int peer : victims) {
    ASSERT_TRUE(in_memory.RemovePeer(peer).ok());
  }
  const Subspace u = Subspace::FromDims({0, 3});
  const QueryResult a = in_memory.ExecuteQuery(u, 2, Variant::kRTPM);
  const QueryResult b = paged.ExecuteQuery(u, 2, Variant::kRTPM);
  EXPECT_EQ(Signature(a.skyline), Signature(b.skyline));
  ExpectMetricsIdentical(b.metrics, a.metrics, "drained initiator");
}

TEST(PagedChurn, ScheduledChurnPlanMatchesInMemoryQueryForQuery) {
  // Scheduled churn under fire: the same seeded churn plan executes on a
  // paged and an in-memory network while queries are in flight. Pinned
  // epochs hold retired pages alive through each install, and every
  // query — including the ones whose slot applies joins/removals/
  // replacements mid-simulation — must stay bit-identical across store
  // modes, maintenance op charges included.
  for (int threads : {1, 8}) {
    ThreadPool::SetGlobalConcurrency(threads);
    NetworkConfig mem_config = DynamicPaged(33);
    mem_config.buffer_pages = 0;
    mem_config.churn_events = 6;
    mem_config.churn_seed = 5;
    NetworkConfig paged_config = DynamicPaged(33);
    paged_config.churn_events = 6;
    paged_config.churn_seed = 5;

    SkypeerNetwork in_memory(mem_config);
    in_memory.Preprocess();
    SkypeerNetwork paged(paged_config);
    paged.Preprocess();
    ASSERT_EQ(in_memory.churn_plan().size(), 6u);

    std::vector<Variant> variants(kAllVariants, kAllVariants + 5);
    variants.push_back(Variant::kPipeline);
    const std::vector<QueryTask> tasks = GenerateWorkload(4, 2, 8, 8, 61);
    for (size_t q = 0; q < tasks.size(); ++q) {
      const Variant variant = variants[q % variants.size()];
      const std::string context = "threads=" + std::to_string(threads) +
                                  " q=" + std::to_string(q) + " " +
                                  VariantName(variant);
      const QueryResult a = in_memory.ExecuteQuery(
          tasks[q].subspace, tasks[q].initiator_sp, variant);
      const QueryResult b =
          paged.ExecuteQuery(tasks[q].subspace, tasks[q].initiator_sp,
                             variant);
      EXPECT_EQ(Signature(a.skyline), Signature(b.skyline)) << context;
      ExpectMetricsIdentical(b.metrics, a.metrics, context);
    }
    // Both executed the identical schedule, and the post-churn stores
    // still match row for row.
    EXPECT_EQ(paged.churn_stats().joins, in_memory.churn_stats().joins);
    EXPECT_EQ(paged.churn_stats().removals, in_memory.churn_stats().removals);
    EXPECT_EQ(paged.churn_stats().replacements,
              in_memory.churn_stats().replacements);
    EXPECT_TRUE(paged.churn_stats().maintenance_ops ==
                in_memory.churn_stats().maintenance_ops);
    for (int sp = 0; sp < paged.num_super_peers(); ++sp) {
      EXPECT_EQ(Signature(paged.super_peer(sp).MaterializeStore()),
                Signature(in_memory.super_peer(sp).store()))
          << "store " << sp;
    }
  }
  ThreadPool::SetGlobalConcurrency(1);
}

// --- workloads, clones, persistence ------------------------------------------

TEST(PagedWorkloads, ParallelAggregatesMatchInMemorySequential) {
  const std::vector<QueryTask> tasks =
      GenerateWorkload(4, 3, 8, BaseConfig().num_super_peers, 103);

  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork in_memory(BaseConfig());
  in_memory.Preprocess();
  ThreadPool::SetGlobalConcurrency(4);
  SkypeerNetwork paged(Paged(BaseConfig()));
  paged.Preprocess();
  EXPECT_TRUE(paged.SupportsParallelWorkloads());

  for (Variant variant : kAllVariants) {
    ThreadPool::SetGlobalConcurrency(1);
    const AggregateMetrics seq = RunWorkload(&in_memory, tasks, variant);
    ThreadPool::SetGlobalConcurrency(4);
    const AggregateMetrics par = RunWorkload(&paged, tasks, variant);
    EXPECT_EQ(seq.queries, par.queries) << VariantName(variant);
    EXPECT_EQ(seq.comp_s.samples(), par.comp_s.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.total_s.samples(), par.total_s.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.kb.samples(), par.kb.samples()) << VariantName(variant);
    EXPECT_EQ(seq.messages.samples(), par.messages.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.result.samples(), par.result.samples())
        << VariantName(variant);
    EXPECT_EQ(seq.scanned.samples(), par.scanned.samples())
        << VariantName(variant);
    EXPECT_TRUE(seq.total_ops == par.total_ops) << VariantName(variant);
    // Physical counters: zero without a pool, busy with one.
    EXPECT_EQ(seq.buffer_hits + seq.buffer_misses, 0u);
    EXPECT_GT(par.buffer_misses, 0u);
  }
  ThreadPool::SetGlobalConcurrency(1);
}

TEST(PagedWorkloads, CloneForQueriesBuildsAPrivatePool) {
  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork paged(Paged(BaseConfig()));
  paged.Preprocess();
  const auto clone = paged.CloneForQueries();
  ASSERT_NE(clone->buffer_manager(), nullptr);
  EXPECT_NE(clone->buffer_manager(), paged.buffer_manager());

  const Subspace u = Subspace::FromDims({0, 2});
  const QueryResult original = paged.ExecuteQuery(u, 3, Variant::kRTPM);
  const QueryResult replica = clone->ExecuteQuery(u, 3, Variant::kRTPM);
  EXPECT_EQ(Signature(original.skyline), Signature(replica.skyline));
  ExpectMetricsIdentical(replica.metrics, original.metrics, "paged clone");
}

TEST(PagedWorkloads, PersistenceRoundTripsThroughMaterializedStores) {
  // SaveStores materializes paged stores; a snapshot taken from a paged
  // network restores into an in-memory network (and vice versa) with
  // bit-identical answers.
  ThreadPool::SetGlobalConcurrency(1);
  SkypeerNetwork paged(Paged(BaseConfig()));
  paged.Preprocess();
  const std::string path = ::testing::TempDir() + "/paged_stores.bin";
  ASSERT_TRUE(SaveStores(paged, path).ok());

  SkypeerNetwork in_memory(BaseConfig());
  ASSERT_TRUE(LoadStores(&in_memory, path).ok());
  SkypeerNetwork reloaded_paged(Paged(BaseConfig()));
  ASSERT_TRUE(LoadStores(&reloaded_paged, path).ok());

  const Subspace u = Subspace::FromDims({1, 2});
  const QueryResult direct = paged.ExecuteQuery(u, 0, Variant::kFTPM);
  const QueryResult via_memory = in_memory.ExecuteQuery(u, 0, Variant::kFTPM);
  const QueryResult via_paged =
      reloaded_paged.ExecuteQuery(u, 0, Variant::kFTPM);
  EXPECT_EQ(Signature(direct.skyline), Signature(via_memory.skyline));
  EXPECT_EQ(Signature(direct.skyline), Signature(via_paged.skyline));
  ExpectMetricsIdentical(via_memory.metrics, direct.metrics, "snapshot mem");
  ExpectMetricsIdentical(via_paged.metrics, direct.metrics, "snapshot paged");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace skypeer
